package mir

import (
	"math/rand"
	"runtime"
	"testing"
)

func TestMonitorLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps, us := fixture(rng, 200, 12, 3, 5)
	const m = 6
	mo, err := NewMonitor(ps, us, m)
	if err != nil {
		t.Fatal(err)
	}
	if mo.NumUsers() != 12 {
		t.Fatalf("NumUsers = %d", mo.NumUsers())
	}

	verify := func() {
		t.Helper()
		reg := mo.Region()
		for probe := 0; probe < 600; probe++ {
			p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
			cov := mo.Coverage(p)
			if cov == m || cov == m-1 {
				continue // skip near-threshold points
			}
			if (cov >= m) != reg.Contains(p) {
				t.Fatalf("monitor contract violated at %v: coverage %d, contains %v",
					p, cov, reg.Contains(p))
			}
		}
	}
	verify()

	// Arrivals.
	var handles []int
	for i := 0; i < 4; i++ {
		_, newbies := fixture(rng, 1, 1, 3, 3)
		h, err := mo.UserArrived(newbies[0])
		if err != nil {
			t.Fatal(err)
		}
		handles = append(handles, h)
		verify()
	}
	if mo.NumUsers() != 16 {
		t.Fatalf("NumUsers after arrivals = %d", mo.NumUsers())
	}

	// Departures: two originals, two newcomers.
	for _, h := range []int{0, 5, handles[0], handles[2]} {
		if err := mo.UserDeparted(h); err != nil {
			t.Fatal(err)
		}
		verify()
	}
	if mo.NumUsers() != 12 {
		t.Fatalf("NumUsers after departures = %d", mo.NumUsers())
	}

	// Error paths.
	if err := mo.UserDeparted(0); err == nil {
		t.Error("double departure accepted")
	}
	if _, err := mo.UserArrived(User{Weights: []float64{1}, K: 1}); err == nil {
		t.Error("wrong-dimension arrival accepted")
	}
}

// TestMonitorParallelDeterminism replays one random arrival/departure
// script against monitors running at different worker counts and demands
// byte-identical regions after every event: same cell count, same cell
// order, and per-cell identical constraint lists. This pins the dynamic
// path (Maintainer reprocessing through the task-parallel frontier) to
// the same determinism contract as one-shot computations.
func TestMonitorParallelDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ps, us := fixture(rng, 250, 16, 3, 5)
	const m = 7

	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	mos := make([]*Monitor, len(workerCounts))
	for i, w := range workerCounts {
		mo, err := NewMonitorOptions(ps, us, m, &Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		mos[i] = mo
	}

	check := func(step int) {
		t.Helper()
		ref := mos[0].Region().Cells()
		for i, mo := range mos[1:] {
			got := mo.Region().Cells()
			if len(got) != len(ref) {
				t.Fatalf("step %d workers=%d: %d cells, want %d",
					step, workerCounts[i+1], len(got), len(ref))
			}
			for ci := range ref {
				a, b := ref[ci].Constraints(), got[ci].Constraints()
				if len(a) != len(b) {
					t.Fatalf("step %d workers=%d cell %d: %d constraints, want %d",
						step, workerCounts[i+1], ci, len(b), len(a))
				}
				for j := range a {
					if a[j].T != b[j].T {
						t.Fatalf("step %d workers=%d cell %d constraint %d: thresholds differ",
							step, workerCounts[i+1], ci, j)
					}
					for k := range a[j].W {
						if a[j].W[k] != b[j].W[k] {
							t.Fatalf("step %d workers=%d cell %d constraint %d coord %d differs",
								step, workerCounts[i+1], ci, j, k)
						}
					}
				}
			}
		}
	}
	check(-1)

	// One deterministic event script, replayed against every monitor.
	eventRng := rand.New(rand.NewSource(67))
	handles := make([]int, 16)
	for i := range handles {
		handles[i] = i
	}
	for step := 0; step < 10; step++ {
		if len(handles) > m+2 && eventRng.Intn(2) == 0 {
			pick := eventRng.Intn(len(handles))
			h := handles[pick]
			handles = append(handles[:pick], handles[pick+1:]...)
			for i, mo := range mos {
				if err := mo.UserDeparted(h); err != nil {
					t.Fatalf("step %d workers=%d depart: %v", step, workerCounts[i], err)
				}
			}
		} else {
			_, newcomer := fixture(eventRng, 1, 1, 3, 4)
			var newH int
			for i, mo := range mos {
				h, err := mo.UserArrived(newcomer[0])
				if err != nil {
					t.Fatalf("step %d workers=%d arrive: %v", step, workerCounts[i], err)
				}
				if i == 0 {
					newH = h
				} else if h != newH {
					t.Fatalf("step %d: handles diverge: %d vs %d", step, h, newH)
				}
			}
			handles = append(handles, newH)
		}
		check(step)
	}
}

func TestNewMonitorValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps, us := fixture(rng, 50, 6, 2, 3)
	if _, err := NewMonitor(ps, us, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewMonitor(ps, us, 7); err == nil {
		t.Error("m>|U| accepted")
	}
	if _, err := NewMonitor(nil, us, 3); err == nil {
		t.Error("empty products accepted")
	}
}

func TestReverseTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps, us := fixture(rng, 150, 15, 3, 5)
	a, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for pi := range ps {
		rset, err := a.ReverseTopK(pi)
		if err != nil {
			t.Fatal(err)
		}
		total += len(rset)
		// Cross-check against coverage counting.
		if got := a.Coverage(ps[pi]); got != len(rset) {
			t.Fatalf("product %d: reverse top-k %d vs coverage %d", pi, len(rset), got)
		}
	}
	// Each user contributes exactly k entries across all reverse top-k
	// sets (her top-k products), so the grand total is |U| * k.
	if want := 15 * 5; total != want {
		t.Errorf("sum of reverse top-k sizes = %d, want %d", total, want)
	}
	if _, err := a.ReverseTopK(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := a.ReverseTopK(999); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestMostInfluential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps, us := fixture(rng, 120, 20, 3, 5)
	a, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	top := a.MostInfluential(5)
	if len(top) != 5 {
		t.Fatalf("got %d results", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Coverage > top[i-1].Coverage {
			t.Error("results not sorted by coverage")
		}
	}
	// The most influential product's coverage must match a direct count.
	if got := a.Coverage(ps[top[0].ProductIndex]); got != top[0].Coverage {
		t.Errorf("coverage mismatch: %d vs %d", got, top[0].Coverage)
	}
	// No other product may beat the reported leader.
	for pi := range ps {
		if a.Coverage(ps[pi]) > top[0].Coverage {
			t.Fatalf("product %d beats the reported most influential", pi)
		}
	}
	if got := a.MostInfluential(0); got != nil {
		t.Error("n=0 should return nil")
	}
	if got := a.MostInfluential(10_000); len(got) != 120 {
		t.Errorf("n beyond |P| should clamp, got %d", len(got))
	}
}

// assertRegionsIdentical compares two public regions cell by cell with
// exact float equality — the byte-identity contract.
func assertRegionsIdentical(t *testing.T, label string, want, got *Region) {
	t.Helper()
	wc, gc := want.Cells(), got.Cells()
	if len(wc) != len(gc) {
		t.Fatalf("%s: %d cells, want %d", label, len(gc), len(wc))
	}
	for ci := range wc {
		a, b := wc[ci].Constraints(), gc[ci].Constraints()
		if len(a) != len(b) {
			t.Fatalf("%s: cell %d: %d constraints, want %d", label, ci, len(b), len(a))
		}
		for j := range a {
			if a[j].T != b[j].T {
				t.Fatalf("%s: cell %d constraint %d: thresholds differ", label, ci, j)
			}
			for k := range a[j].W {
				if a[j].W[k] != b[j].W[k] {
					t.Fatalf("%s: cell %d constraint %d coord %d differs", label, ci, j, k)
				}
			}
		}
	}
}

// TestMonitorHandleContractUnderFailures is the handle-contract property
// test: rejected arrivals must not consume a handle or leave partial
// state. It interleaves malformed arrivals (wrong dimensionality both
// ways, k=0, k>|P|) with good events against a mirror Monitor that
// receives only the good events; after every step the handles, the
// populations, and the regions must agree, and every rejected arrival
// must return -1 while leaving NextHandle unchanged.
func TestMonitorHandleContractUnderFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ps, us := fixture(rng, 150, 12, 3, 4)
	const m = 6
	mo, err := NewMonitor(ps, us, m)
	if err != nil {
		t.Fatal(err)
	}
	mirror, err := NewMonitor(ps, us, m)
	if err != nil {
		t.Fatal(err)
	}

	badArrivals := []User{
		{Weights: []float64{0.5, 0.5}, K: 2},           // too few weights
		{Weights: []float64{0.2, 0.2, 0.2, 0.4}, K: 2}, // too many
		{Weights: []float64{0.3, 0.3, 0.4}, K: 0},      // k too small
		{Weights: []float64{0.3, 0.3, 0.4}, K: 151},    // k beyond |P|
	}
	live := make([]int, 12)
	for i := range live {
		live[i] = i
	}
	for step := 0; step < 24; step++ {
		switch {
		case step%3 == 1: // malformed arrival
			before := mo.NextHandle()
			h, err := mo.UserArrived(badArrivals[step%len(badArrivals)])
			if err == nil {
				t.Fatalf("step %d: malformed arrival accepted", step)
			}
			if h != -1 {
				t.Fatalf("step %d: rejected arrival returned handle %d, want -1", step, h)
			}
			if mo.NextHandle() != before {
				t.Fatalf("step %d: rejected arrival consumed a handle (%d -> %d)",
					step, before, mo.NextHandle())
			}
		case step%3 == 2 && len(live) > m+1: // departure
			pick := live[rng.Intn(len(live))]
			for i, h := range live {
				if h == pick {
					live = append(live[:i], live[i+1:]...)
					break
				}
			}
			if err := mo.UserDeparted(pick); err != nil {
				t.Fatalf("step %d: depart %d: %v", step, pick, err)
			}
			if err := mirror.UserDeparted(pick); err != nil {
				t.Fatalf("step %d: mirror depart %d: %v", step, pick, err)
			}
		default: // good arrival
			_, newcomer := fixture(rng, 1, 1, 3, 3)
			want := mo.NextHandle()
			if want != mirror.NextHandle() {
				t.Fatalf("step %d: monitors disagree on next handle: %d vs %d",
					step, want, mirror.NextHandle())
			}
			h, err := mo.UserArrived(newcomer[0])
			if err != nil {
				t.Fatalf("step %d: arrival: %v", step, err)
			}
			hm, err := mirror.UserArrived(newcomer[0])
			if err != nil {
				t.Fatalf("step %d: mirror arrival: %v", step, err)
			}
			if h != want || hm != want {
				t.Fatalf("step %d: handles %d/%d, predicted %d", step, h, hm, want)
			}
			live = append(live, h)
		}
		if mo.NumUsers() != mirror.NumUsers() {
			t.Fatalf("step %d: populations diverged: %d vs %d",
				step, mo.NumUsers(), mirror.NumUsers())
		}
	}
	assertRegionsIdentical(t, "after failure churn", mirror.Region(), mo.Region())
}

// TestMonitorApplyEvents checks the public batch path: same handles and a
// byte-identical region vs one-at-a-time application, batch atomicity on a
// bad event, and departures of same-batch arrivals.
func TestMonitorApplyEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ps, us := fixture(rng, 150, 12, 3, 4)
	const m = 6
	batch, err := NewMonitor(ps, us, m)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := NewMonitor(ps, us, m)
	if err != nil {
		t.Fatal(err)
	}
	_, newbies := fixture(rng, 1, 3, 3, 4)
	events := []MonitorEvent{
		Arrival(newbies[0]),
		Departure(3),
		Arrival(newbies[1]),
		Departure(12), // the first arrival in this very batch
		Arrival(newbies[2]),
		Departure(7),
	}
	handles, err := batch.ApplyEvents(events)
	if err != nil {
		t.Fatal(err)
	}
	wantHandles := []int{12, -1, 13, -1, 14, -1}
	for i := range wantHandles {
		if handles[i] != wantHandles[i] {
			t.Fatalf("handles = %v, want %v", handles, wantHandles)
		}
	}
	for _, ev := range events {
		if ev.Arrive {
			if _, err := seq.UserArrived(ev.User); err != nil {
				t.Fatal(err)
			}
		} else if err := seq.UserDeparted(ev.Handle); err != nil {
			t.Fatal(err)
		}
	}
	assertRegionsIdentical(t, "batch vs sequential", seq.Region(), batch.Region())
	if batch.NumUsers() != seq.NumUsers() {
		t.Fatalf("NumUsers %d vs %d", batch.NumUsers(), seq.NumUsers())
	}

	// Atomicity: a bad event anywhere rejects the whole batch untouched.
	before := batch.Region()
	users, next := batch.NumUsers(), batch.NextHandle()
	if _, err := batch.ApplyEvents([]MonitorEvent{
		Arrival(newbies[0]),
		Departure(999),
	}); err == nil {
		t.Fatal("batch with bad departure accepted")
	}
	if batch.NumUsers() != users || batch.NextHandle() != next {
		t.Fatalf("failed batch mutated state: users %d->%d next %d->%d",
			users, batch.NumUsers(), next, batch.NextHandle())
	}
	assertRegionsIdentical(t, "after rejected batch", before, batch.Region())
	if h, err := batch.ApplyEvents(nil); err != nil || h != nil {
		t.Fatalf("empty batch: handles %v err %v", h, err)
	}
}

// TestMonitorApplyEventsEmptyNoOp pins the empty-batch contract the
// daemon's drain loop relies on (an empty drain must not bump the served
// epoch): nil and zero-length batches return (nil, nil) and leave the
// Monitor completely untouched — population, handle counter, region
// bytes, and the maintenance work counters all unchanged.
func TestMonitorApplyEventsEmptyNoOp(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ps, us := fixture(rng, 120, 10, 3, 4)
	mo, err := NewMonitor(ps, us, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Churn once so the routing counters are nonzero and a spurious sweep
	// afterwards would be visible.
	_, newbies := fixture(rng, 1, 1, 3, 4)
	if _, err := mo.UserArrived(newbies[0]); err != nil {
		t.Fatal(err)
	}
	before := mo.Region()
	users, next, stats := mo.NumUsers(), mo.NextHandle(), before.Stats()
	for _, events := range [][]MonitorEvent{nil, {}} {
		handles, err := mo.ApplyEvents(events)
		if handles != nil || err != nil {
			t.Fatalf("empty batch: handles %v err %v, want nil nil", handles, err)
		}
	}
	if mo.NumUsers() != users || mo.NextHandle() != next {
		t.Fatalf("empty batch moved population: users %d->%d next %d->%d",
			users, mo.NumUsers(), next, mo.NextHandle())
	}
	after := mo.Region()
	assertRegionsIdentical(t, "after empty batches", before, after)
	if got := after.Stats(); got != stats {
		t.Fatalf("empty batch did maintenance work:\n before %+v\n after  %+v", stats, got)
	}
}

// TestMonitorSnapshot checks that snapshots answer from capture-time
// state, stay coherent while the Monitor churns, and agree with the
// Monitor's own queries at capture time.
func TestMonitorSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ps, us := fixture(rng, 120, 10, 3, 4)
	const m = 5
	mo, err := NewMonitor(ps, us, m)
	if err != nil {
		t.Fatal(err)
	}
	snap := mo.Snapshot()
	if snap.NumUsers() != mo.NumUsers() {
		t.Fatalf("snapshot NumUsers %d, monitor %d", snap.NumUsers(), mo.NumUsers())
	}
	assertRegionsIdentical(t, "snapshot vs monitor", mo.Region(), snap.Region())
	probes := make([][]float64, 40)
	wantCov := make([]int, len(probes))
	for i := range probes {
		probes[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		wantCov[i] = mo.Coverage(probes[i])
		if snap.Coverage(probes[i]) != wantCov[i] {
			t.Fatalf("snapshot coverage disagrees at capture time")
		}
	}
	wantInfl := snap.MostInfluential(5)
	wantGap := snap.MinBoundaryGap(probes[0])

	// Churn the monitor; the snapshot must not move.
	for i := 0; i < 5; i++ {
		_, newbies := fixture(rng, 1, 1, 3, 3)
		if _, err := mo.UserArrived(newbies[0]); err != nil {
			t.Fatal(err)
		}
		if err := mo.UserDeparted(i); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range probes {
		if got := snap.Coverage(p); got != wantCov[i] {
			t.Fatalf("snapshot coverage drifted at probe %d: %d vs %d", i, got, wantCov[i])
		}
	}
	gotInfl := snap.MostInfluential(5)
	for i := range wantInfl {
		if gotInfl[i] != wantInfl[i] {
			t.Fatalf("snapshot influence drifted: %v vs %v", gotInfl, wantInfl)
		}
	}
	if got := snap.MinBoundaryGap(probes[0]); got != wantGap {
		t.Fatalf("snapshot boundary gap drifted: %v vs %v", got, wantGap)
	}
}
