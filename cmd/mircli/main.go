// Command mircli runs mIR and standing top-k influence queries from the
// shell, over CSV files or generated datasets.
//
// Data sources (mutually exclusive with -gen-*):
//
//	-products file.csv    one product per row, d attribute columns in [0,1]
//	-users file.csv       one user per row: k, then d weight columns
//
// or generation:
//
//	-gen-products IND|COR|ANTI -gen-users CL|UN -n 10000 -u 500 -d 4 -k 10
//
// Queries:
//
//	mircli -query region -m 250            # m-impact region summary
//	mircli -query contains -m 250 -point 0.7,0.8,0.6,0.9
//	mircli -query co -m 250 -cost l2       # cheapest influential product
//	mircli -query improve -target 3 -budget 0.4
//	mircli -query budgeted-co -budget 1.2
//	mircli -query cheapest-upgrade -target 3 -m 250
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"mir"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mircli: ")

	productsFile := flag.String("products", "", "CSV file of products")
	usersFile := flag.String("users", "", "CSV file of users (k + weights per row)")
	genProducts := flag.String("gen-products", "IND", "generate products: IND, COR, ANTI")
	genUsers := flag.String("gen-users", "CL", "generate users: CL, UN")
	n := flag.Int("n", 10000, "generated product count")
	u := flag.Int("u", 500, "generated user count")
	d := flag.Int("d", 4, "generated dimensionality")
	k := flag.Int("k", 10, "generated per-user k")
	seed := flag.Int64("seed", 1, "generation seed")

	query := flag.String("query", "region", "region | contains | coverage | co | improve | budgeted-co | cheapest-upgrade | stats")
	m := flag.Int("m", 0, "coverage threshold (default |U|/2)")
	point := flag.String("point", "", "comma-separated attribute vector")
	costName := flag.String("cost", "l2", "cost model: l2 | l1")
	budget := flag.Float64("budget", 0.5, "budget for improve / budgeted-co")
	target := flag.Int("target", 0, "product index for improve / cheapest-upgrade")
	flag.Parse()

	products, users := loadData(*productsFile, *usersFile, *genProducts, *genUsers, *n, *u, *d, *k, *seed)
	if *m == 0 {
		*m = len(users) / 2
		if *m < 1 {
			*m = 1
		}
	}
	cost := mir.L2()
	if strings.EqualFold(*costName, "l1") {
		cost = mir.L1()
	}

	an, err := mir.NewAnalyzer(products, users, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: |P|=%d |U|=%d d=%d\n", an.NumProducts(), an.NumUsers(), an.Dim())

	switch *query {
	case "region":
		reg, err := an.ImpactRegion(*m)
		if err != nil {
			log.Fatal(err)
		}
		st := reg.Stats()
		fmt.Printf("m=%d impact region: %d cells\n", *m, reg.NumCells())
		if an.Dim() == 2 {
			fmt.Printf("area: %.4f\n", reg.Area())
		}
		fmt.Printf("work: %d arrangement cells, %d splits, %d LP tests, %d fast tests\n",
			st.Cells, st.Splits, st.ContainmentTests, st.FastTests)
		fmt.Printf("early decisions: %d reported, %d eliminated\n",
			st.EarlyReported, st.EarlyEliminated)
	case "contains":
		p := parsePoint(*point, an.Dim())
		reg, err := an.ImpactRegion(*m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("point %v: coverage %d, in m=%d region: %v\n",
			p, an.Coverage(p), *m, reg.Contains(p))
	case "coverage":
		p := parsePoint(*point, an.Dim())
		fmt.Printf("point %v covers %d of %d users\n", p, an.Coverage(p), an.NumUsers())
	case "co":
		pl, err := an.CostOptimal(*m, cost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cheapest product covering >=%d users (%s cost):\n", *m, cost.Name())
		fmt.Printf("  point %v\n  cost %.4f, coverage %d\n", fmtVec(pl.Point), pl.Cost, pl.Coverage)
	case "improve":
		up, err := mir.Improve(products, users, *target, *budget, cost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("best upgrade of product %d within budget %.3f:\n", *target, *budget)
		fmt.Printf("  from %v\n  to   %v\n  coverage %d -> %d (cost %.4f)\n",
			fmtVec(products[*target]), fmtVec(up.Point), up.BaseCoverage, up.Coverage, up.Cost)
	case "budgeted-co":
		pl, err := an.BudgetedCostOptimal(*budget, cost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("max-coverage product within budget %.3f:\n  point %v\n  coverage %d (cost %.4f)\n",
			*budget, fmtVec(pl.Point), pl.Coverage, pl.Cost)
	case "cheapest-upgrade":
		up, err := mir.CheapestUpgrade(products, users, *target, *m, cost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cheapest upgrade of product %d reaching %d users:\n  to %v\n  cost %.4f (coverage %d)\n",
			*target, *m, fmtVec(up.Point), up.Cost, up.Coverage)
	case "stats":
		num, avg := an.Groups()
		fmt.Printf("user groups: %d (avg %.1f users per group)\n", num, avg)
	default:
		log.Fatalf("unknown query %q", *query)
	}
}

func loadData(pFile, uFile, genP, genU string, n, u, d, k int, seed int64) ([][]float64, []mir.User) {
	if (pFile == "") != (uFile == "") {
		log.Fatal("provide both -products and -users, or neither")
	}
	if pFile != "" {
		products, err := mir.LoadProductsCSV(pFile)
		if err != nil {
			log.Fatal(err)
		}
		users, err := mir.LoadUsersCSV(uFile)
		if err != nil {
			log.Fatal(err)
		}
		return products, users
	}
	var pd mir.ProductDist
	switch strings.ToUpper(genP) {
	case "COR":
		pd = mir.Correlated
	case "ANTI":
		pd = mir.AntiCorrelated
	default:
		pd = mir.Independent
	}
	ud := mir.Clustered
	if strings.EqualFold(genU, "UN") {
		ud = mir.Uniform
	}
	return mir.SynthProducts(pd, n, d, seed), mir.SynthUsers(ud, u, d, k, seed+1)
}

func parsePoint(s string, d int) []float64 {
	if s == "" {
		log.Fatal("-point required for this query")
	}
	parts := strings.Split(s, ",")
	if len(parts) != d {
		log.Fatalf("point has %d coordinates, dataset has %d attributes", len(parts), d)
	}
	p := make([]float64, d)
	for i, part := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			log.Fatalf("bad coordinate %q: %v", part, err)
		}
		p[i] = x
	}
	return p
}

func fmtVec(v []float64) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4f", x)
	}
	b.WriteByte(')')
	return b.String()
}
