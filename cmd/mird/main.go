// Command mird is the standing mIR daemon: it owns a live m-impact
// region over a dynamic user population and serves it over HTTP.
//
// Population events are ingested through a bounded coalescing queue —
// bursts that arrive while a maintenance pass runs are applied together
// as ONE pass, with a region byte-identical to one-at-a-time application.
// Reads are answered from epoch-stamped immutable snapshots and never
// block ingestion.
//
// Endpoints:
//
//	POST   /users                {"weights":[...],"k":5} -> 202 {"handle":h}
//	DELETE /users/{handle}       retire a user            -> 202
//	GET    /region               current region cells (H-representations)
//	GET    /coverage?point=x,y   coverage / membership / boundary gap
//	GET    /stats                epoch, population, queue depth, counters
//	GET    /influence/topn?n=5   most influential products
//	GET    /watch?product=3      SSE alerts on region/membership changes
//
// A full ingest queue answers 429 with Retry-After — backpressure, not
// buffering without bound. On SIGINT/SIGTERM the daemon stops accepting
// events, applies everything already accepted, and exits.
//
// The dataset comes from CSV files (-products/-users) or generation
// (-gen-products/-gen-users with -n/-u/-d/-k/-seed), exactly as in
// mircli.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mir"
	"mir/internal/dist"
)

func main() {
	// The procpool executor re-execs this binary as a shard worker; when
	// the marker env var is set, this process IS the worker and must not
	// parse flags, load data, or listen.
	dist.MaybeWorker()

	log.SetFlags(0)
	log.SetPrefix("mird: ")

	addr := flag.String("addr", "localhost:7017", "listen address")
	productsFile := flag.String("products", "", "CSV file of products")
	usersFile := flag.String("users", "", "CSV file of users (k + weights per row)")
	genProducts := flag.String("gen-products", "IND", "generate products: IND, COR, ANTI")
	genUsers := flag.String("gen-users", "CL", "generate users: CL, UN")
	n := flag.Int("n", 10000, "generated product count")
	u := flag.Int("u", 500, "generated user count")
	d := flag.Int("d", 4, "generated dimensionality")
	k := flag.Int("k", 10, "generated per-user k")
	seed := flag.Int64("seed", 1, "generation seed")
	m := flag.Int("m", 0, "coverage threshold (default |U|/2)")
	queueCap := flag.Int("queue", 1024, "ingest queue capacity (backpressure bound)")
	workers := flag.Int("workers", 0, "maintenance worker count (0 = all cores)")
	executor := flag.String("executor", "inproc", "full-build executor to verify at startup: inproc, or procpool (multi-process shard workers; the daemon refuses to serve unless the pool's region is byte-identical to the in-process build)")
	shards := flag.Int("shards", 4, "space-sharding factor for the procpool executor probe (>= 2)")
	flag.Parse()

	products, users := loadData(*productsFile, *usersFile, *genProducts, *genUsers, *n, *u, *d, *k, *seed)
	if *m == 0 {
		*m = len(users) / 2
		if *m < 1 {
			*m = 1
		}
	}

	t0 := time.Now()
	mo, err := mir.NewMonitorOptions(products, users, *m, &mir.Options{Workers: *workers})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("initial region: |P|=%d |U|=%d d=%d m=%d, %d cells in %v",
		len(products), len(users), len(products[0]), *m, mo.Region().NumCells(), time.Since(t0))

	ex, err := runExecProbe(*executor, *shards, *workers, products, users, *m)
	if err != nil {
		log.Fatal(err)
	}
	if ex.Name != "inproc" {
		log.Printf("executor %s verified: shards=%d cells=%d in %.3fs, dispatched=%d respawned=%d shipped=%dB",
			ex.Name, ex.Shards, ex.ProbeCells, ex.ProbeSeconds,
			ex.Info.DispatchedShards, ex.Info.RespawnedWorkers, ex.Info.ShippedBytes)
	}

	srv := newServer(mo, products, *queueCap)
	srv.exec = ex
	srv.start()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.handler()}

	go func() {
		log.Printf("listening on http://%s", *addr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down: draining accepted events")
	srv.stop() // apply everything accepted, then stop the writer
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	log.Printf("final state: %d users, epoch %d", mo.NumUsers(), srv.cur.Load().epoch)
}

// loadData mirrors mircli's data sourcing.
func loadData(pFile, uFile, genP, genU string, n, u, d, k int, seed int64) ([][]float64, []mir.User) {
	if (pFile == "") != (uFile == "") {
		log.Fatal("provide both -products and -users, or neither")
	}
	if pFile != "" {
		products, err := mir.LoadProductsCSV(pFile)
		if err != nil {
			log.Fatal(err)
		}
		users, err := mir.LoadUsersCSV(uFile)
		if err != nil {
			log.Fatal(err)
		}
		return products, users
	}
	var pd mir.ProductDist
	switch strings.ToUpper(genP) {
	case "COR":
		pd = mir.Correlated
	case "ANTI":
		pd = mir.AntiCorrelated
	default:
		pd = mir.Independent
	}
	ud := mir.Clustered
	if strings.EqualFold(genU, "UN") {
		ud = mir.Uniform
	}
	return mir.SynthProducts(pd, n, d, seed), mir.SynthUsers(ud, u, d, k, seed+1)
}
