package main

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mir"
	"mir/internal/eventq"
)

// queuedEvent is one accepted ingest request: the population event plus,
// for arrivals, the handle the ingest layer promised the client.
type queuedEvent struct {
	ev     mir.MonitorEvent
	handle int // predicted handle for arrivals, -1 for departures
}

// epochSnap is one immutable generation of daemon state. The writer
// builds a fresh one after every drained burst and swaps the pointer;
// readers load it and answer entirely from it, so a read never blocks a
// maintenance pass and never observes a half-applied batch.
type epochSnap struct {
	epoch   uint64
	snap    *mir.Snapshot
	cells   int
	applied uint64 // cumulative events applied across all epochs
	// lastDrain is the size of the burst this epoch applied in one pass.
	// Together with the live queue depth/capacity it makes backpressure
	// observable before the 429 path fires: drains pinned at queue capacity
	// mean maintenance is running behind ingest.
	lastDrain int
	// drainDur is how long that maintenance pass took (apply + snapshot
	// rebuild). The 429 path derives its Retry-After hint from it: the last
	// observed pass duration is the best available estimate of when queue
	// capacity frees up.
	drainDur time.Duration
}

// server is the standing mIR daemon: a Monitor owned by one writer
// goroutine, a bounded coalescing ingest queue in front of it, and
// epoch-stamped snapshots behind it.
//
// Ingest correctness hinges on enqueue-time validation: the mutex-guarded
// shadow state (nextHandle, present) tracks the population exactly as it
// will stand after every queued event applies, and events enter the FIFO
// queue in the same order the shadow state advanced. ApplyEvents performs
// the same sequential validation, so an event accepted here cannot be
// rejected there — which is what lets the daemon answer clients before
// the event is applied, and what keeps one bad request from poisoning a
// coalesced batch (batches are atomic).
type server struct {
	mo       *mir.Monitor
	products [][]float64
	q        *eventq.Queue[queuedEvent]

	mu         sync.Mutex // guards the ingest shadow state below
	nextHandle int
	present    map[int]bool
	closing    bool

	cur  atomic.Pointer[epochSnap]
	hub  *watchHub
	done chan struct{} // closed when the writer has drained and exited

	// exec records the startup executor probe (see runExecProbe); its
	// counters are immutable once the daemon serves, so /stats reads them
	// without synchronization.
	exec *execStatus
}

func newServer(mo *mir.Monitor, products [][]float64, queueCap int) *server {
	s := &server{
		mo:         mo,
		products:   products,
		q:          eventq.New[queuedEvent](queueCap),
		nextHandle: mo.NextHandle(),
		present:    make(map[int]bool),
		hub:        newWatchHub(),
		done:       make(chan struct{}),
		exec:       &execStatus{Name: "inproc"},
	}
	for h := 0; h < mo.NumUsers(); h++ {
		s.present[h] = true
	}
	s.cur.Store(&epochSnap{epoch: 0, snap: mo.Snapshot(), cells: mo.Region().NumCells()})
	return s
}

// start launches the writer goroutine. The Monitor must not be touched by
// anyone else from here on.
func (s *server) start() {
	go s.writerLoop()
}

// stop closes ingest, waits for the writer to drain every accepted event,
// and returns. Pending events are applied, not dropped: a client that got
// a 202 gets its event in the final region.
func (s *server) stop() {
	s.mu.Lock()
	s.closing = true
	s.mu.Unlock()
	s.q.Close()
	<-s.done
}

// writerLoop is the single consumer: each iteration drains the burst that
// accumulated during the previous maintenance pass and applies it as ONE
// Maintainer pass — N events, one staging sweep — then publishes a new
// epoch. Coalescing is the daemon's throughput mechanism; the batch
// determinism contract (byte-identical to one-at-a-time) is what makes it
// invisible to clients.
func (s *server) writerLoop() {
	defer close(s.done)
	var buf []queuedEvent
	for {
		var more bool
		buf, more = s.q.Drain(buf[:0])
		if len(buf) > 0 {
			passStart := time.Now()
			events := make([]mir.MonitorEvent, len(buf))
			for i, qe := range buf {
				events[i] = qe.ev
			}
			handles, err := s.mo.ApplyEvents(events)
			if err != nil {
				// Enqueue-time validation makes this unreachable; if it
				// ever trips, the shadow state diverged from the
				// Maintainer and continuing would serve wrong answers.
				log.Panicf("mird: accepted batch rejected by maintainer: %v", err)
			}
			for i, qe := range buf {
				if qe.handle >= 0 && handles[i] != qe.handle {
					log.Panicf("mird: handle prediction broken: promised %d, assigned %d",
						qe.handle, handles[i])
				}
			}
			prev := s.cur.Load()
			next := &epochSnap{
				epoch:     prev.epoch + 1,
				snap:      s.mo.Snapshot(),
				applied:   prev.applied + uint64(len(buf)),
				lastDrain: len(buf),
			}
			next.cells = next.snap.Region().NumCells()
			next.drainDur = time.Since(passStart)
			s.cur.Store(next)
			s.hub.notify()
		}
		if !more {
			return
		}
	}
}

// handler builds the HTTP API.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /users", s.handleArrive)
	mux.HandleFunc("DELETE /users/{handle}", s.handleDepart)
	mux.HandleFunc("GET /region", s.handleRegion)
	mux.HandleFunc("GET /coverage", s.handleCoverage)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /influence/topn", s.handleInfluence)
	mux.HandleFunc("GET /watch", s.handleWatch)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retryAfterHint converts the last observed maintenance-pass duration
// into whole seconds for the Retry-After header: the queue frees up when
// the current pass finishes, and the previous pass is the best estimate
// of how long that takes. Clamped to [1, 30] — HTTP wants a positive
// integer, and anything past half a minute says "come back later", not
// "wait out this pass".
func retryAfterHint(lastPass time.Duration) int {
	secs := int(math.Ceil(lastPass.Seconds()))
	if secs < 1 {
		return 1
	}
	if secs > 30 {
		return 30
	}
	return secs
}

// tooBusy is the backpressure response: the queue is full because
// maintenance is behind, so the client should retry once the in-flight
// pass has likely drained it.
func (s *server) tooBusy(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterHint(s.cur.Load().drainDur)))
	httpError(w, http.StatusTooManyRequests, "ingest queue full, retry")
}

type arriveRequest struct {
	Weights []float64 `json:"weights"`
	K       int       `json:"k"`
}

func (s *server) handleArrive(w http.ResponseWriter, r *http.Request) {
	var req arriveRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	// The same checks ApplyEvents will apply, performed against the shadow
	// state so a rejection here costs nothing and an acceptance is final.
	if len(req.Weights) != len(s.products[0]) {
		httpError(w, http.StatusBadRequest, "user has %d weights, catalog dimensionality is %d",
			len(req.Weights), len(s.products[0]))
		return
	}
	if req.K < 1 || req.K > len(s.products) {
		httpError(w, http.StatusBadRequest, "k=%d out of range [1,%d]", req.K, len(s.products))
		return
	}
	h := s.nextHandle
	err := s.q.Enqueue(queuedEvent{
		ev:     mir.Arrival(mir.User{Weights: req.Weights, K: req.K}),
		handle: h,
	})
	switch err {
	case nil:
		s.nextHandle++
		s.present[h] = true
		writeJSON(w, http.StatusAccepted, map[string]int{"handle": h})
	case eventq.ErrFull:
		s.tooBusy(w)
	default:
		httpError(w, http.StatusServiceUnavailable, "shutting down")
	}
}

func (s *server) handleDepart(w http.ResponseWriter, r *http.Request) {
	h, err := strconv.Atoi(r.PathValue("handle"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad handle: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	// present reflects every already-queued event, so a duplicate DELETE
	// for a departure still in the queue is caught here (404), never
	// coalesced into a batch it would invalidate.
	if !s.present[h] {
		httpError(w, http.StatusNotFound, "no such user %d", h)
		return
	}
	switch err := s.q.Enqueue(queuedEvent{ev: mir.Departure(h), handle: -1}); err {
	case nil:
		delete(s.present, h)
		writeJSON(w, http.StatusAccepted, map[string]int{"handle": h})
	case eventq.ErrFull:
		s.tooBusy(w)
	default:
		httpError(w, http.StatusServiceUnavailable, "shutting down")
	}
}

type constraintJSON struct {
	W []float64 `json:"w"`
	T float64   `json:"t"`
}

type cellJSON struct {
	Constraints []constraintJSON `json:"constraints"`
}

func (s *server) handleRegion(w http.ResponseWriter, r *http.Request) {
	es := s.cur.Load()
	reg := es.snap.Region()
	cells := make([]cellJSON, 0, reg.NumCells())
	for _, c := range reg.Cells() {
		cs := c.Constraints()
		cj := cellJSON{Constraints: make([]constraintJSON, len(cs))}
		for i, h := range cs {
			cj.Constraints[i] = constraintJSON{W: h.W, T: h.T}
		}
		cells = append(cells, cj)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch": es.epoch,
		"m":     reg.M(),
		"dim":   reg.Dim(),
		"cells": cells,
	})
}

func parsePointParam(r *http.Request, dim int) ([]float64, error) {
	raw := r.URL.Query().Get("point")
	if raw == "" {
		return nil, fmt.Errorf("missing point parameter")
	}
	parts := strings.Split(raw, ",")
	if len(parts) != dim {
		return nil, fmt.Errorf("point has %d coordinates, want %d", len(parts), dim)
	}
	p := make([]float64, dim)
	for i, part := range parts {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad coordinate %q", part)
		}
		p[i] = x
	}
	return p, nil
}

func (s *server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	es := s.cur.Load()
	p, err := parsePointParam(r, es.snap.Region().Dim())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":       es.epoch,
		"coverage":    es.snap.Coverage(p),
		"inRegion":    es.snap.Region().Contains(p),
		"boundaryGap": es.snap.MinBoundaryGap(p),
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	es := s.cur.Load()
	st := es.snap.Region().Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":            es.epoch,
		"numUsers":         es.snap.NumUsers(),
		"numProducts":      len(s.products),
		"cells":            es.cells,
		"applied":          es.applied,
		"queueLen":         s.q.Len(),
		"queueCap":         s.q.Cap(),
		"lastDrainSize":    es.lastDrain,
		"lastDrainSeconds": es.drainDur.Seconds(),
		"countDesyncs":     st.CountDesyncs,
		// Routed-maintenance locality profile (cumulative since startup):
		// leaves visited by event application, subtree skips proven safe,
		// and leaves re-verified. routedLeaves/applied is the sublinearity
		// signal the BENCH_DYN gate tracks.
		"routedLeaves":    st.RoutedLeaves,
		"skippedSubtrees": st.SkippedSubtrees,
		"touchedFrontier": st.TouchedFrontier,
		// Startup executor probe (immutable after startup): which full-build
		// executor was verified and, for procpool, the transport counters of
		// that verification build. Maintenance itself always runs in-process.
		"executor":          s.exec.Name,
		"executorShards":    s.exec.Shards,
		"dispatchedShards":  s.exec.Info.DispatchedShards,
		"respawnedWorkers":  s.exec.Info.RespawnedWorkers,
		"fallbackInProcess": s.exec.Info.FallbackInProcess,
		"shippedBytes":      s.exec.Info.ShippedBytes,
	})
}

func (s *server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	n := 10
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "bad n %q", raw)
			return
		}
		n = v
	}
	es := s.cur.Load()
	top := es.snap.MostInfluential(n)
	out := make([]map[string]int, len(top))
	for i, in := range top {
		out[i] = map[string]int{"product": in.ProductIndex, "coverage": in.Coverage}
	}
	writeJSON(w, http.StatusOK, map[string]any{"epoch": es.epoch, "top": out})
}

// watchHub fans epoch ticks out to SSE clients. Each client owns a
// buffered tick channel; notify never blocks the writer — a slow client
// misses intermediate ticks but always reads the LATEST snapshot when it
// wakes, so no state change goes unobserved, only unreported
// intermediates (exactly the coalescing semantics of the ingest side).
type watchHub struct {
	mu      sync.Mutex
	clients map[chan struct{}]bool
}

func newWatchHub() *watchHub {
	return &watchHub{clients: make(map[chan struct{}]bool)}
}

func (h *watchHub) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	h.mu.Lock()
	h.clients[ch] = true
	h.mu.Unlock()
	return ch
}

func (h *watchHub) unsubscribe(ch chan struct{}) {
	h.mu.Lock()
	delete(h.clients, ch)
	h.mu.Unlock()
}

func (h *watchHub) notify() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.clients {
		select {
		case ch <- struct{}{}:
		default: // client already has a pending tick
		}
	}
}

// watchState is one client's view of the alert-relevant state: the region
// cell count plus, per watched product, whether it currently sits in the
// region.
type watchState struct {
	cells  int
	member map[int]bool
}

func (s *server) watchStateAt(es *epochSnap, watched []int) watchState {
	ws := watchState{cells: es.cells, member: make(map[int]bool, len(watched))}
	reg := es.snap.Region()
	for _, pi := range watched {
		ws.member[pi] = reg.Contains(s.products[pi])
	}
	return ws
}

// handleWatch streams server-sent events: one "change" event whenever the
// region's cell count or a watched product's region membership differs
// from the previous epoch the client saw. ?product=i (repeatable) selects
// the watched products.
func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	var watched []int
	for _, raw := range r.URL.Query()["product"] {
		pi, err := strconv.Atoi(raw)
		if err != nil || pi < 0 || pi >= len(s.products) {
			httpError(w, http.StatusBadRequest, "bad product %q", raw)
			return
		}
		watched = append(watched, pi)
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	es := s.cur.Load()
	prev := s.watchStateAt(es, watched)
	fmt.Fprintf(w, "event: hello\ndata: {\"epoch\":%d,\"cells\":%d}\n\n", es.epoch, prev.cells)
	flusher.Flush()

	ticks := s.hub.subscribe()
	defer s.hub.unsubscribe(ticks)
	lastEpoch := es.epoch
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.done:
			return
		case <-ticks:
		}
		es := s.cur.Load()
		if es.epoch == lastEpoch {
			continue
		}
		lastEpoch = es.epoch
		cur := s.watchStateAt(es, watched)
		changed := cur.cells != prev.cells
		var flips []string
		for _, pi := range watched {
			if cur.member[pi] != prev.member[pi] {
				changed = true
				flips = append(flips, fmt.Sprintf("{\"product\":%d,\"inRegion\":%v}", pi, cur.member[pi]))
			}
		}
		if changed {
			fmt.Fprintf(w, "event: change\ndata: {\"epoch\":%d,\"cells\":%d,\"flips\":[%s]}\n\n",
				es.epoch, cur.cells, strings.Join(flips, ","))
			flusher.Flush()
		}
		prev = cur
	}
}
