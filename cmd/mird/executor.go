package main

import (
	"fmt"
	"math"
	"time"

	"mir"
	"mir/internal/core"
	"mir/internal/dist"
	"mir/internal/geom"
	"mir/internal/topk"
)

// execStatus is the daemon's record of its startup executor probe,
// served under /stats. The Monitor's incremental maintenance always
// runs in-process and single-tree (see mir.Options.Shards), so executor
// selection governs the full-region build path: with -executor procpool
// the daemon builds its starting region once more through the
// multi-process worker pool and refuses to serve unless that build is
// byte-identical to the in-process one — a deployment-time verification
// that the worker binary, protocol, and environment produce the same
// regions this process does.
type execStatus struct {
	Name   string // "inproc" or "procpool"
	Shards int    // probe shard count (0 when no probe ran)
	Info   dist.ExecInfo
	// ProbeSeconds is the wall time of the pool build alone; ProbeCells
	// its cell count (equal to the in-process twin's by construction).
	ProbeSeconds float64
	ProbeCells   int
}

// runExecProbe verifies the selected executor at startup. For "inproc"
// there is nothing to verify — the Monitor's own build already ran in
// this process — and the returned status only names the executor. For
// "procpool" it builds the region twice at the given shard count, once
// in-process and once through dist.ProcPool, and compares the results
// cell for cell with bitwise float equality.
func runExecProbe(executor string, shards, workers int, products [][]float64, users []mir.User, m int) (*execStatus, error) {
	switch executor {
	case "", "inproc":
		return &execStatus{Name: "inproc"}, nil
	case "procpool":
	default:
		return nil, fmt.Errorf("unknown -executor %q (want inproc or procpool)", executor)
	}
	if shards < 2 {
		return nil, fmt.Errorf("-executor procpool needs -shards >= 2 (got %d): the pool dispatches shard builds, and a single shard has nothing to dispatch", shards)
	}
	ps := make([]geom.Vector, len(products))
	for i, p := range products {
		ps[i] = geom.Vector(p)
	}
	us := make([]topk.UserPref, len(users))
	for i, u := range users {
		us[i] = topk.UserPref{W: geom.Vector(u.Weights), K: u.K}
	}
	opts := core.Options{Workers: workers, Shards: shards}
	inst, err := core.NewInstanceOpts(ps, us, opts)
	if err != nil {
		return nil, fmt.Errorf("executor probe: %w", err)
	}
	twin, err := core.AA(inst, m, opts)
	if err != nil {
		return nil, fmt.Errorf("executor probe (in-process build): %w", err)
	}
	pool := &dist.ProcPool{}
	start := time.Now()
	reg, err := pool.BuildRegion(inst, m, opts)
	if err != nil {
		return nil, fmt.Errorf("executor probe (procpool build): %w", err)
	}
	probeSecs := time.Since(start).Seconds()
	if err := probeRegionsEqual(twin, reg); err != nil {
		return nil, fmt.Errorf("executor probe: procpool region diverges from in-process build: %w", err)
	}
	return &execStatus{
		Name:         pool.Name(),
		Shards:       shards,
		Info:         pool.Info(),
		ProbeSeconds: probeSecs,
		ProbeCells:   len(reg.Cells),
	}, nil
}

// probeRegionsEqual compares two builds of the same configuration cell
// for cell with bitwise float equality — the executor identity contract
// checked on the daemon's actual dataset.
func probeRegionsEqual(want, got *core.Region) error {
	if len(want.Cells) != len(got.Cells) {
		return fmt.Errorf("%d cells vs %d", len(got.Cells), len(want.Cells))
	}
	for i := range want.Cells {
		wc, gc := want.Cells[i], got.Cells[i]
		if len(wc.Hs) != len(gc.Hs) {
			return fmt.Errorf("cell %d: %d halfspaces vs %d", i, len(gc.Hs), len(wc.Hs))
		}
		for j := range wc.Hs {
			if math.Float64bits(wc.Hs[j].T) != math.Float64bits(gc.Hs[j].T) {
				return fmt.Errorf("cell %d halfspace %d: thresholds differ", i, j)
			}
			for d := range wc.Hs[j].W {
				if math.Float64bits(wc.Hs[j].W[d]) != math.Float64bits(gc.Hs[j].W[d]) {
					return fmt.Errorf("cell %d halfspace %d coord %d: coefficients differ", i, j, d)
				}
			}
		}
	}
	return nil
}
