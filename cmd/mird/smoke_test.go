package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"mir"
	"mir/internal/dist"
)

// TestMain lets the executor-probe smoke re-exec this test binary as a
// shard worker, exactly as the mird binary itself embeds the worker.
func TestMain(m *testing.M) {
	dist.MaybeWorker()
	os.Exit(m.Run())
}

func testMonitor(t *testing.T, nP, nU, d, k, m int) (*mir.Monitor, [][]float64) {
	t.Helper()
	products := mir.SynthProducts(mir.Independent, nP, d, 11)
	users := mir.SynthUsers(mir.Clustered, nU, d, k, 12)
	mo, err := mir.NewMonitor(products, users, m)
	if err != nil {
		t.Fatal(err)
	}
	return mo, products
}

func postArrival(client *http.Client, base string, weights []float64, k int) (int, int, error) {
	body, _ := json.Marshal(map[string]any{"weights": weights, "k": k})
	resp, err := client.Post(base+"/users", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, -1, err
	}
	defer resp.Body.Close()
	var out struct {
		Handle int `json:"handle"`
	}
	out.Handle = -1
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out.Handle, nil
}

func deleteUser(client *http.Client, base string, handle int) (int, error) {
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/users/%d", base, handle), nil)
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// TestMirdSmokeReadsDuringWrites is the daemon's core concurrency smoke
// (run under -race by `make mird-smoke`): writer goroutines push
// arrival/departure bursts — retrying on 429 backpressure — while reader
// goroutines hammer every read endpoint; every read must succeed and each
// reader must observe a non-decreasing epoch. After a graceful stop, the
// population must equal the initial users plus the net accepted events.
func TestMirdSmokeReadsDuringWrites(t *testing.T) {
	mo, products := testMonitor(t, 200, 16, 3, 5, 6)
	srv := newServer(mo, products, 64)
	srv.start()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	client := ts.Client()

	const writers, eventsPerWriter = 2, 15
	var mu sync.Mutex
	netUsers := 16

	var wg sync.WaitGroup
	for wtr := 0; wtr < writers; wtr++ {
		wg.Add(1)
		go func(wtr int) {
			defer wg.Done()
			var mine []int
			for i := 0; i < eventsPerWriter; i++ {
				w := []float64{0.2 + 0.01*float64(wtr), 0.3 + 0.01*float64(i), 0.5}
				for {
					status, h, err := postArrival(client, ts.URL, w, 4)
					if err != nil {
						t.Errorf("writer %d: %v", wtr, err)
						return
					}
					if status == http.StatusAccepted {
						if h < 0 {
							t.Errorf("writer %d: accepted arrival without handle", wtr)
							return
						}
						mine = append(mine, h)
						mu.Lock()
						netUsers++
						mu.Unlock()
						break
					}
					if status != http.StatusTooManyRequests {
						t.Errorf("writer %d: arrival status %d", wtr, status)
						return
					}
					time.Sleep(2 * time.Millisecond)
				}
				// Depart an earlier arrival of ours every third event.
				if i%3 == 2 {
					h := mine[0]
					mine = mine[1:]
					for {
						status, err := deleteUser(client, ts.URL, h)
						if err != nil {
							t.Errorf("writer %d: %v", wtr, err)
							return
						}
						if status == http.StatusAccepted {
							mu.Lock()
							netUsers--
							mu.Unlock()
							break
						}
						if status != http.StatusTooManyRequests {
							t.Errorf("writer %d: depart status %d", wtr, status)
							return
						}
						time.Sleep(2 * time.Millisecond)
					}
				}
			}
		}(wtr)
	}

	stopReaders := make(chan struct{})
	var rg sync.WaitGroup
	paths := []string{"/stats", "/region", "/coverage?point=0.5,0.5,0.5", "/influence/topn?n=3"}
	for rd := 0; rd < 4; rd++ {
		rg.Add(1)
		go func(rd int) {
			defer rg.Done()
			lastEpoch := float64(-1)
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				resp, err := client.Get(ts.URL + paths[rd%len(paths)])
				if err != nil {
					t.Errorf("reader %d: %v", rd, err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: status %d", rd, resp.StatusCode)
					resp.Body.Close()
					return
				}
				var out map[string]any
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					t.Errorf("reader %d: decode: %v", rd, err)
					resp.Body.Close()
					return
				}
				resp.Body.Close()
				epoch, ok := out["epoch"].(float64)
				if !ok {
					t.Errorf("reader %d: response without epoch: %v", rd, out)
					return
				}
				if epoch < lastEpoch {
					t.Errorf("reader %d: epoch went backward: %v after %v", rd, epoch, lastEpoch)
					return
				}
				lastEpoch = epoch
			}
		}(rd)
	}

	wg.Wait()
	close(stopReaders)
	rg.Wait()
	srv.stop()

	if got := mo.NumUsers(); got != netUsers {
		t.Fatalf("final population %d, accepted net %d", got, netUsers)
	}
	es := srv.cur.Load()
	if es.epoch == 0 {
		t.Fatal("no epochs published")
	}
	if want := uint64(writers * (eventsPerWriter + eventsPerWriter/3)); es.applied != want {
		t.Fatalf("applied %d events, want %d", es.applied, want)
	}
	// Post-drain region must equal a from-scratch Monitor fed nothing (the
	// daemon's own Monitor IS the from-scratch state after stop); sanity:
	// stats endpoint still serves and reports zero desyncs and empty queue.
	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		QueueLen      int     `json:"queueLen"`
		QueueCap      *int    `json:"queueCap"`
		LastDrainSize *int    `json:"lastDrainSize"`
		Applied       uint64  `json:"applied"`
		CountDesyncs  int64   `json:"countDesyncs"`
		NumUsers      int     `json:"numUsers"`
		RoutedLeaves  *int    `json:"routedLeaves"`
		Executor      *string `json:"executor"`
		Dispatched    *int    `json:"dispatchedShards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.QueueLen != 0 || st.CountDesyncs != 0 || st.NumUsers != netUsers {
		t.Fatalf("final stats: %+v (want empty queue, zero desyncs, %d users)", st, netUsers)
	}
	// Backpressure observability: queue capacity and the last drained burst
	// size must be served (pointers distinguish a missing field from a zero
	// value). Every event applied through a drain, so the last drain is
	// between 1 and the queue capacity, and the routed-maintenance profile
	// must be present for dashboards to derive touched-leaves/event.
	if st.QueueCap == nil || *st.QueueCap != 64 {
		t.Fatalf("stats queueCap = %v, want 64", st.QueueCap)
	}
	if st.LastDrainSize == nil || *st.LastDrainSize < 1 || *st.LastDrainSize > 64 {
		t.Fatalf("stats lastDrainSize = %v, want within [1,64]", st.LastDrainSize)
	}
	if st.RoutedLeaves == nil || *st.RoutedLeaves <= 0 {
		t.Fatalf("stats routedLeaves = %v, want positive after %d applied events", st.RoutedLeaves, st.Applied)
	}
	// Executor observability: a server without a procpool probe reports the
	// in-process executor and zero dispatched shards (pointers distinguish a
	// missing field from the zero value).
	if st.Executor == nil || *st.Executor != "inproc" {
		t.Fatalf("stats executor = %v, want inproc", st.Executor)
	}
	if st.Dispatched == nil || *st.Dispatched != 0 {
		t.Fatalf("stats dispatchedShards = %v, want 0 without a procpool probe", st.Dispatched)
	}
}

// TestMirdSmokeCoalescedEqualsSequential drives the same event stream
// through the daemon (where bursts coalesce into batched passes) and
// through a plain sequential Monitor, then demands byte-identical
// regions.
func TestMirdSmokeCoalescedEqualsSequential(t *testing.T) {
	mo, products := testMonitor(t, 150, 12, 3, 4, 5)
	ref, _ := testMonitor(t, 150, 12, 3, 4, 5)
	srv := newServer(mo, products, 128)
	srv.start()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	client := ts.Client()

	users := mir.SynthUsers(mir.Uniform, 10, 3, 3, 99)
	for i, u := range users {
		status, h, err := postArrival(client, ts.URL, u.Weights, u.K)
		if err != nil || status != http.StatusAccepted {
			t.Fatalf("arrival %d: status %d err %v", i, status, err)
		}
		if rh, err := ref.UserArrived(u); err != nil || rh != h {
			t.Fatalf("arrival %d: daemon handle %d, reference %d (err %v)", i, h, rh, err)
		}
		if i%2 == 1 {
			status, err := deleteUser(client, ts.URL, i/2)
			if err != nil || status != http.StatusAccepted {
				t.Fatalf("depart %d: status %d err %v", i/2, status, err)
			}
			if err := ref.UserDeparted(i / 2); err != nil {
				t.Fatal(err)
			}
		}
	}
	srv.stop()

	want, got := ref.Region(), mo.Region()
	wc, gc := want.Cells(), got.Cells()
	if len(wc) != len(gc) {
		t.Fatalf("daemon region has %d cells, sequential %d", len(gc), len(wc))
	}
	for ci := range wc {
		a, b := wc[ci].Constraints(), gc[ci].Constraints()
		if len(a) != len(b) {
			t.Fatalf("cell %d: %d constraints vs %d", ci, len(b), len(a))
		}
		for j := range a {
			if a[j].T != b[j].T {
				t.Fatalf("cell %d constraint %d: thresholds differ", ci, j)
			}
			for x := range a[j].W {
				if a[j].W[x] != b[j].W[x] {
					t.Fatalf("cell %d constraint %d coord %d differs", ci, j, x)
				}
			}
		}
	}
}

// TestMirdSmokeValidationAndBackpressure pins the ingest status codes:
// 400 on malformed arrivals, 404 on unknown or already-queued departures,
// 429 + Retry-After when the queue is full (writer deliberately not
// started), and 503 after shutdown.
func TestMirdSmokeValidationAndBackpressure(t *testing.T) {
	mo, products := testMonitor(t, 100, 8, 3, 4, 4)
	srv := newServer(mo, products, 2) // writer NOT started: queue fills deterministically
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	client := ts.Client()

	if status, _, _ := postArrival(client, ts.URL, []float64{0.5, 0.5}, 3); status != http.StatusBadRequest {
		t.Fatalf("wrong-dimension arrival: status %d", status)
	}
	if status, _, _ := postArrival(client, ts.URL, []float64{0.3, 0.3, 0.4}, 0); status != http.StatusBadRequest {
		t.Fatalf("k=0 arrival: status %d", status)
	}
	if status, _, _ := postArrival(client, ts.URL, []float64{0.3, 0.3, 0.4}, 101); status != http.StatusBadRequest {
		t.Fatalf("k>|P| arrival: status %d", status)
	}
	if status, _ := deleteUser(client, ts.URL, 999); status != http.StatusNotFound {
		t.Fatalf("unknown departure: status %d", status)
	}

	// Fill the queue: a queued departure makes its handle immediately
	// invalid for a second DELETE even though nothing has applied yet.
	if status, _ := deleteUser(client, ts.URL, 0); status != http.StatusAccepted {
		t.Fatalf("first departure: status %d", status)
	}
	if status, _ := deleteUser(client, ts.URL, 0); status != http.StatusNotFound {
		t.Fatalf("duplicate queued departure: status %d", status)
	}
	if status, _ := deleteUser(client, ts.URL, 1); status != http.StatusAccepted {
		t.Fatalf("second departure: status %d", status)
	}

	// Queue (cap 2) is now full: backpressure, with a Retry-After hint.
	body, _ := json.Marshal(map[string]any{"weights": []float64{0.3, 0.3, 0.4}, "k": 3})
	resp, err := client.Post(ts.URL+"/users", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("full queue: status %d, want 429", resp.StatusCode)
	}
	// The hint is derived from the last observed drain duration, clamped
	// to [1, 30] seconds; no pass has run yet, so it must be the floor.
	retryAfter, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("429 Retry-After %q is not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if retryAfter < 1 || retryAfter > 30 {
		t.Fatalf("429 Retry-After %d outside [1, 30]", retryAfter)
	}
	if retryAfter != 1 {
		t.Fatalf("429 Retry-After %d before any drain, want the 1s floor", retryAfter)
	}

	// Drain-then-shutdown: both queued departures must apply.
	srv.start()
	srv.stop()
	if got := mo.NumUsers(); got != 6 {
		t.Fatalf("population after drain %d, want 6", got)
	}
	if status, _, _ := postArrival(client, ts.URL, []float64{0.3, 0.3, 0.4}, 3); status != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown arrival: status %d, want 503", status)
	}
}

// TestMirdSmokeWatch subscribes an SSE client and verifies it receives a
// change alert when departures reshape the region, carrying a watched
// product's membership flip when one occurs.
func TestMirdSmokeWatch(t *testing.T) {
	mo, products := testMonitor(t, 150, 14, 3, 5, 7)
	srv := newServer(mo, products, 64)
	srv.start()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/watch?product=0&product=1&product=2", nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch status %d", resp.StatusCode)
	}

	events := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				events <- strings.TrimPrefix(line, "event: ")
			}
		}
		close(events)
	}()
	select {
	case ev := <-events:
		if ev != "hello" {
			t.Fatalf("first SSE event %q, want hello", ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no hello event")
	}

	// Shrink the population hard: with m fixed at 7 and users leaving,
	// the region must change shape (eventually emptying), firing alerts.
	client := ts.Client()
	for h := 0; h < 7; h++ {
		for {
			status, err := deleteUser(client, ts.URL, h)
			if err != nil {
				t.Fatal(err)
			}
			if status == http.StatusAccepted {
				break
			}
			if status != http.StatusTooManyRequests {
				t.Fatalf("depart %d: status %d", h, status)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	gotChange := false
	deadline := time.After(15 * time.Second)
	for !gotChange {
		select {
		case ev, ok := <-events:
			if !ok {
				t.Fatal("SSE stream closed without a change event")
			}
			if ev == "change" {
				gotChange = true
			}
		case <-deadline:
			t.Fatal("no change event within deadline")
		}
	}
	cancel() // release the watch handler before stopping
	srv.stop()
}

// TestRetryAfterHint pins the drain-duration → Retry-After mapping:
// ceiling to whole seconds, clamped to [1, 30].
func TestRetryAfterHint(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},                     // no drain observed yet: the floor
		{10 * time.Millisecond, 1}, // sub-second passes round up to 1
		{time.Second, 1},
		{1100 * time.Millisecond, 2},
		{4500 * time.Millisecond, 5},
		{29*time.Second + 500*time.Millisecond, 30},
		{45 * time.Second, 30}, // ceiling
		{5 * time.Minute, 30},
	}
	for _, tc := range cases {
		if got := retryAfterHint(tc.d); got != tc.want {
			t.Errorf("retryAfterHint(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestStatsLastDrainSeconds pins that /stats exposes the observed drain
// interval once a pass has run — the same number the 429 hint derives
// from.
func TestStatsLastDrainSeconds(t *testing.T) {
	mo, products := testMonitor(t, 100, 8, 3, 4, 4)
	srv := newServer(mo, products, 8)
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	client := ts.Client()

	if status, _ := deleteUser(client, ts.URL, 0); status != http.StatusAccepted {
		t.Fatalf("departure not accepted: %d", status)
	}
	srv.start()
	srv.stop() // drains the queue, so one pass has definitely run

	resp, err := client.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	secs, ok := stats["lastDrainSeconds"].(float64)
	if !ok {
		t.Fatalf("stats missing lastDrainSeconds: %v", stats)
	}
	if secs <= 0 || secs > 60 {
		t.Fatalf("lastDrainSeconds %g implausible for a one-event drain", secs)
	}
	if size, _ := stats["lastDrainSize"].(float64); size != 1 {
		t.Fatalf("lastDrainSize %v, want 1", stats["lastDrainSize"])
	}
}

// TestMirdSmokeExecutorProbe runs the procpool startup probe end to end:
// the pool re-execs this test binary as shard workers, the probe demands
// byte-identity with the in-process build, and the resulting counters
// surface through /stats. Flag validation rejects unknown executors and
// undispatchable shard counts before any build starts.
func TestMirdSmokeExecutorProbe(t *testing.T) {
	mo, products := testMonitor(t, 200, 16, 3, 5, 6)
	users := mir.SynthUsers(mir.Clustered, 16, 3, 5, 12) // same seed as testMonitor
	ex, err := runExecProbe("procpool", 2, 2, products, users, 6)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Name != "procpool" || ex.Shards != 2 {
		t.Fatalf("probe status %+v, want procpool over 2 shards", ex)
	}
	if ex.Info.DispatchedShards != 2 || ex.Info.FallbackInProcess != 0 {
		t.Fatalf("probe dispatched %d shards with %d fallbacks, want all 2 through workers",
			ex.Info.DispatchedShards, ex.Info.FallbackInProcess)
	}
	if ex.Info.ShippedBytes <= 0 || ex.ProbeCells <= 0 {
		t.Fatalf("probe shipped %d bytes for %d cells, want both positive",
			ex.Info.ShippedBytes, ex.ProbeCells)
	}

	srv := newServer(mo, products, 8)
	srv.exec = ex
	srv.start()
	defer srv.stop()
	ts := httptest.NewServer(srv.handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Executor   *string `json:"executor"`
		Shards     *int    `json:"executorShards"`
		Dispatched *int    `json:"dispatchedShards"`
		Respawned  *int    `json:"respawnedWorkers"`
		Fallback   *int    `json:"fallbackInProcess"`
		Shipped    *int64  `json:"shippedBytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Executor == nil || *st.Executor != "procpool" {
		t.Fatalf("stats executor = %v, want procpool", st.Executor)
	}
	if st.Shards == nil || *st.Shards != 2 || st.Dispatched == nil || *st.Dispatched != 2 {
		t.Fatalf("stats executorShards = %v dispatchedShards = %v, want 2 and 2", st.Shards, st.Dispatched)
	}
	if st.Respawned == nil || *st.Respawned != 0 || st.Fallback == nil || *st.Fallback != 0 {
		t.Fatalf("stats respawnedWorkers = %v fallbackInProcess = %v, want 0 and 0", st.Respawned, st.Fallback)
	}
	if st.Shipped == nil || *st.Shipped <= 0 {
		t.Fatalf("stats shippedBytes = %v, want positive", st.Shipped)
	}

	if _, err := runExecProbe("warp", 2, 1, products, users, 6); err == nil {
		t.Fatal("unknown executor accepted")
	}
	if _, err := runExecProbe("procpool", 1, 1, products, users, 6); err == nil {
		t.Fatal("undispatchable shard count accepted")
	}
	// inproc needs no probe: nothing built, nothing dispatched.
	in, err := runExecProbe("inproc", 4, 1, products, users, 6)
	if err != nil || in.Name != "inproc" || in.Info.DispatchedShards != 0 {
		t.Fatalf("inproc probe = %+v, %v; want a bare inproc status", in, err)
	}
}
