// Command mirbench regenerates every table and figure of the paper's
// evaluation (Section 6) on this reproduction. Each experiment prints the
// same series the paper plots — running time, cell counts, group counts,
// pruning ratios — as aligned text tables.
//
// Hardware differs from the paper's testbed and the real datasets are
// replaced by synthetic stand-ins (see DESIGN.md), so absolute numbers are
// not comparable; the trends and orders-of-magnitude gaps are. The default
// -scale keeps a full run in the minutes range; -paper restores the
// paper's cardinalities (hours).
//
// Usage:
//
//	mirbench -list
//	mirbench -fig 10a
//	mirbench -fig all -scale 0.05
//	mirbench -json BENCH_AA.json
//	mirbench -fig 10a -cpuprofile cpu.pb -memprofile mem.pb
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"

	"mir/internal/dist"
)

// experiment is one reproducible figure or table.
type experiment struct {
	id    string
	title string
	run   func(cfg config)
}

var experiments []experiment

func register(id, title string, run func(cfg config)) {
	experiments = append(experiments, experiment{id, title, run})
}

func main() {
	// The multi-process executor re-execs this binary as a shard worker;
	// when the marker env var is set, this process IS the worker and must
	// not parse flags or run experiments.
	dist.MaybeWorker()

	fig := flag.String("fig", "", "experiment to run (see -list), or 'all'")
	list := flag.Bool("list", false, "list experiments and the parameter grid")
	scale := flag.Float64("scale", 0.01, "fraction of the paper's cardinalities to use")
	paper := flag.Bool("paper", false, "use the paper's full cardinalities (slow)")
	seed := flag.Int64("seed", 1, "dataset seed")
	workers := flag.Int("workers", 0, "cap on CPU cores used (0 = all); 1 reproduces the sequential engine")
	jsonPath := flag.String("json", "", "run the AA benchmark matrix and write a machine-readable report to this path")
	baseline := flag.String("baseline", "", "with -json: committed BENCH_AA.json to gate against (fails if workers=1 allocs/op regress >10%)")
	jsonTopkPath := flag.String("json-topk", "", "run the indexed all-top-k preprocessing matrix and write a machine-readable report to this path")
	baselineTopk := flag.String("baseline-topk", "", "with -json-topk: committed BENCH_TOPK.json to gate against (fails if scanned-products/user regress >10%)")
	jsonDynPath := flag.String("json-dyn", "", "run the dynamic-maintenance events/sec matrix and write a machine-readable report to this path")
	baselineDyn := flag.String("baseline-dyn", "", "with -json-dyn: committed BENCH_DYN.json to gate against (fails if touched-leaves/event or events/sec regress >10%, or the routed/sweep locality ratio drops below 5x)")
	jsonDistPath := flag.String("json-dist", "", "run the multi-process executor tier (in-process vs procpool twins) and write a machine-readable report to this path; fails on any identity, wall-factor, or worker-RSS gate")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile at exit to this path")
	flag.Parse()

	// The engine sizes its worker pools from GOMAXPROCS, so capping it here
	// bounds both the preprocessing fan-out and the AA classification pool.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fatal(err)
			}
		}()
	}

	cfg := newConfig(*scale, *paper, *seed)
	if *list {
		printList(cfg)
		return
	}
	if *jsonPath != "" || *jsonTopkPath != "" || *jsonDynPath != "" || *jsonDistPath != "" {
		if *jsonPath != "" {
			if err := runJSONBench(cfg, *jsonPath, *baseline); err != nil {
				fatal(err)
			}
		}
		if *jsonTopkPath != "" {
			if err := runTopkBench(cfg, *jsonTopkPath, *baselineTopk); err != nil {
				fatal(err)
			}
		}
		if *jsonDynPath != "" {
			if err := runDynBench(cfg, *jsonDynPath, *baselineDyn); err != nil {
				fatal(err)
			}
		}
		if *jsonDistPath != "" {
			if err := runDistBench(cfg, *jsonDistPath); err != nil {
				fatal(err)
			}
		}
		return
	}
	if *baseline != "" {
		fmt.Fprintln(os.Stderr, "mirbench: -baseline requires -json")
		os.Exit(2)
	}
	if *baselineTopk != "" {
		fmt.Fprintln(os.Stderr, "mirbench: -baseline-topk requires -json-topk")
		os.Exit(2)
	}
	if *baselineDyn != "" {
		fmt.Fprintln(os.Stderr, "mirbench: -baseline-dyn requires -json-dyn")
		os.Exit(2)
	}
	if *fig == "" {
		fmt.Fprintln(os.Stderr, "mirbench: specify -fig <id> or -list")
		os.Exit(2)
	}
	if *fig == "all" {
		for _, e := range experiments {
			runOne(e, cfg)
		}
		return
	}
	for _, e := range experiments {
		if strings.EqualFold(e.id, *fig) {
			runOne(e, cfg)
			return
		}
	}
	fmt.Fprintf(os.Stderr, "mirbench: unknown experiment %q (see -list)\n", *fig)
	os.Exit(2)
}

// fatal reports an operational error. It exits without running deferred
// profile flushes — acceptable, since a failed run has nothing to profile.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "mirbench: %v\n", err)
	os.Exit(1)
}

func runOne(e experiment, cfg config) {
	fmt.Printf("==== %s: %s ====\n", e.id, e.title)
	e.run(cfg)
	fmt.Println()
}

func printList(cfg config) {
	fmt.Println("parameter grid (Table 2, scaled):")
	fmt.Printf("  |P| default %d   (paper 1.0M; tested 0.1M..2.0M scaled)\n", cfg.nP)
	fmt.Printf("  |U| default %d   (paper 10K; tested 1K..1M scaled)\n", cfg.nU)
	fmt.Printf("  d   default %d    (tested 2..7)\n", cfg.d)
	fmt.Printf("  k   default %d   (tested 1..80)\n", cfg.k)
	fmt.Printf("  m   default 0.5x|U| (tested 0.001x..0.9x)\n")
	fmt.Println("\nexperiments:")
	ids := make([]experiment, len(experiments))
	copy(ids, experiments)
	sort.Slice(ids, func(a, b int) bool { return ids[a].id < ids[b].id })
	for _, e := range ids {
		fmt.Printf("  %-5s %s\n", e.id, e.title)
	}
}
