package main

import (
	"fmt"

	"mir/internal/core"
	"mir/internal/data"
	"mir/internal/geom"
)

func init() {
	register("7", "TripAdvisor case study: 2-D regions per aspect pair (TA-like data)", fig7)
	register("8", "TA: AA vs BSL running time vs k, m, d, |U|", fig8)
	register("9", "HOTEL/HOUSE/NBA stand-ins: time and memory vs m", fig9)
	register("10a", "product distribution (IND/COR/ANTI): time vs m, group counts", fig10a)
	register("10b", "user sets (CL/TA/UN): time vs m", fig10b)
	register("11a", "time vs k (CL/TA/UN users)", fig11a)
	register("11b", "number of groups and average group size vs k", fig11b)
	register("12a", "time vs d (CL/TA/UN users)", fig12a)
	register("12b", "arrangement cells vs d", fig12b)
	register("13a", "time vs |P|", fig13a)
	register("13b", "time vs |U|", fig13b)
}

// taInstance builds the TA-like instance at the requested projection.
func taInstance(cfg config, nU, d, k int, off int64) *core.Instance {
	rng := cfg.rng(off)
	nHotels := scaled(data.TripAdvisorHotels, maxf(cfg.scale, 0.2), 200)
	nUsersAll := scaled(data.TripAdvisorUsers, cfg.scale, 400)
	if nU > nUsersAll {
		nU = nUsersAll
	}
	ps, ws := data.TripAdvisor(rng, nHotels, nUsersAll)
	ps = projectTo(ps, d)
	ws = projectUsers(ws, d)
	// Random |U|-sample of the full user set, as in the paper.
	idx := rng.Perm(len(ws))[:nU]
	sample := make([]geom.Vector, nU)
	for i, j := range idx {
		sample[i] = ws[j]
	}
	inst, err := core.NewInstance(ps, withK(sample, k))
	if err != nil {
		panic(err)
	}
	return inst
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func fig7(cfg config) {
	pairs := [][2]int{{1, 2}, {3, 4}} // room-location, cleanliness-front desk
	aspects := []string{"value", "room", "location", "cleanliness", "front desk", "service", "business service"}
	rngBase := cfg.rng(70)
	nHotels := scaled(data.TripAdvisorHotels, maxf(cfg.scale, 0.2), 200)
	nUsers := scaled(data.TripAdvisorUsers, cfg.scale, 400)
	// The 2-D case study is run on a bounded sample: past ~600 users the
	// arrangement growth dominates without changing the picture.
	if nUsers > 600 && cfg.scale < 1 {
		nUsers = 600
	}
	header("aspect pair", "m", "cells", "area", "hotels in R", "time(s)")
	for _, pair := range pairs {
		ps, ws := data.TripAdvisorProjected(rngBase, nHotels, nUsers, []int{pair[0], pair[1]})
		inst, err := core.NewInstance(ps, withK(ws, cfg.k))
		if err != nil {
			panic(err)
		}
		m := mOf(0.5, nUsers)
		var reg *core.Region
		secs := timeIt(func() {
			reg, err = core.AA(inst, m, core.Options{})
			if err != nil {
				panic(err)
			}
		})
		inside := 0
		for _, p := range ps {
			if reg.Contains(p) {
				inside++
			}
		}
		row(fmt.Sprintf("%s-%s", aspects[pair[0]], aspects[pair[1]]),
			m, len(reg.Cells), reg.Area2D(), inside, secs)
	}
	fmt.Println("(the more strongly correlated pair yields the larger region, matching the")
	fmt.Println(" paper's Figure 7 discussion)")
}

func fig8(cfg config) {
	// BSL becomes intractable quickly; cap its user count like the paper's
	// 10-hour force stop.
	bslCap := 400

	fmt.Println("-- (a) varying k --")
	header("k", "AA(s)", "BSL(s)")
	for _, k := range []int{1, 5, 10, 20, 40, 80} {
		inst := taInstance(cfg, cfg.nU, cfg.d, k, int64(80+k))
		m := mOf(0.5, len(inst.Users))
		aaS := timeIt(func() { mustAA(inst, m, core.Options{}) })
		bslS := "-"
		if len(inst.Users) <= bslCap {
			bslS = fmt.Sprintf("%.4f", timeIt(func() { mustBSL(inst, m) }))
		}
		row(k, aaS, bslS)
	}

	fmt.Println("-- (b) varying m --")
	header("m/|U|", "AA(s)", "BSL(s)")
	inst := taInstance(cfg, cfg.nU, cfg.d, cfg.k, 81)
	for _, frac := range mFracs {
		m := mOf(frac, len(inst.Users))
		aaS := timeIt(func() { mustAA(inst, m, core.Options{}) })
		bslS := "-"
		if len(inst.Users) <= bslCap {
			bslS = fmt.Sprintf("%.4f", timeIt(func() { mustBSL(inst, m) }))
		}
		row(frac, aaS, bslS)
	}

	fmt.Println("-- (c) varying d --")
	header("d", "|U|", "AA(s)", "BSL(s)")
	for _, d := range []int{2, 3, 4, 5, 6, 7} {
		inst := taInstance(cfg, cfg.uFor(d), d, cfg.k, int64(82+d))
		m := mOf(0.5, len(inst.Users))
		aaS := timeIt(func() { mustAA(inst, m, core.Options{}) })
		bslS := "-"
		if len(inst.Users) <= bslCap && d <= 3 {
			bslS = fmt.Sprintf("%.4f", timeIt(func() { mustBSL(inst, m) }))
		}
		row(d, len(inst.Users), aaS, bslS)
	}

	fmt.Println("-- (d) varying |U| --")
	header("|U|", "AA(s)", "BSL(s)")
	for _, nU := range []int{cfg.nU / 10, cfg.nU / 2, cfg.nU, cfg.nU * 2} {
		if nU < 10 {
			continue
		}
		inst := taInstance(cfg, nU, cfg.d, cfg.k, int64(90+nU))
		m := mOf(0.5, len(inst.Users))
		aaS := timeIt(func() { mustAA(inst, m, core.Options{}) })
		bslS := "-"
		if len(inst.Users) <= bslCap {
			bslS = fmt.Sprintf("%.4f", timeIt(func() { mustBSL(inst, m) }))
		}
		row(len(inst.Users), aaS, bslS)
	}
}

func fig9(cfg config) {
	sets := []struct {
		name string
		n, d int
	}{
		{"HOTEL", scaled(data.HotelN, cfg.scale, 400), data.HotelD},
		{"HOUSE", scaled(data.HouseN, cfg.scale, 400), data.HouseD},
		{"NBA", scaled(data.NBAN, maxf(cfg.scale, 0.05), 400), data.NBAD},
	}
	header("dataset", "|U|", "m/|U|", "time(s)", "mem(MB)")
	for _, s := range sets {
		inst := cfg.instance(s.name, "CL", s.n, cfg.uFor(s.d), s.d, cfg.k, 900)
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			m := mOf(frac, len(inst.Users))
			secs := timeIt(func() { mustAA(inst, m, core.Options{}) })
			row(s.name, len(inst.Users), frac, secs, memMB())
		}
	}
}

func fig10a(cfg config) {
	header("products", "m/|U|", "time(s)", "groups")
	for _, kind := range []string{"COR", "IND", "ANTI"} {
		inst := cfg.instance(kind, "CL", cfg.nP, cfg.nU, cfg.d, cfg.k, 100)
		gs := inst.GroupStats()
		for _, frac := range mFracs {
			m := mOf(frac, len(inst.Users))
			secs := timeIt(func() { mustAA(inst, m, core.Options{}) })
			row(kind, frac, secs, gs.NumGroups)
		}
	}
}

func fig10b(cfg config) {
	header("users", "m/|U|", "time(s)", "groups")
	for _, kind := range []string{"CL", "TA", "UN"} {
		inst := cfg.instance("IND", kind, cfg.nP, cfg.nU, cfg.d, cfg.k, 101)
		gs := inst.GroupStats()
		for _, frac := range mFracs {
			m := mOf(frac, len(inst.Users))
			secs := timeIt(func() { mustAA(inst, m, core.Options{}) })
			row(kind, frac, secs, gs.NumGroups)
		}
	}
}

func fig11a(cfg config) {
	header("users", "k", "time(s)")
	for _, kind := range []string{"CL", "TA", "UN"} {
		for _, k := range []int{1, 5, 10, 20, 40, 80} {
			inst := cfg.instance("IND", kind, cfg.nP, cfg.nU, cfg.d, k, int64(110+k))
			m := mOf(0.5, len(inst.Users))
			secs := timeIt(func() { mustAA(inst, m, core.Options{}) })
			row(kind, k, secs)
		}
	}
}

func fig11b(cfg config) {
	header("users", "k", "groups", "avg size", "avg hull")
	for _, kind := range []string{"CL", "TA", "UN"} {
		for _, k := range []int{1, 5, 10, 20, 40, 80} {
			inst := cfg.instance("IND", kind, cfg.nP, cfg.nU, cfg.d, k, int64(115+k))
			gs := inst.GroupStats()
			row(kind, k, gs.NumGroups, gs.AvgSize, gs.AvgHullSize)
		}
	}
}

func fig12a(cfg config) {
	header("users", "d", "|U|", "time(s)")
	for _, kind := range []string{"CL", "TA", "UN"} {
		for _, d := range []int{2, 3, 4, 5, 6, 7} {
			inst := cfg.instance("IND", kind, cfg.nP, cfg.uFor(d), d, cfg.k, int64(120+d))
			m := mOf(0.5, len(inst.Users))
			secs := timeIt(func() { mustAA(inst, m, core.Options{}) })
			row(kind, d, len(inst.Users), secs)
		}
	}
}

func fig12b(cfg config) {
	header("users", "d", "|U|", "cells")
	for _, kind := range []string{"CL", "TA", "UN"} {
		for _, d := range []int{2, 3, 4, 5, 6, 7} {
			inst := cfg.instance("IND", kind, cfg.nP, cfg.uFor(d), d, cfg.k, int64(125+d))
			m := mOf(0.5, len(inst.Users))
			reg := mustAA(inst, m, core.Options{})
			row(kind, d, len(inst.Users), reg.Stats.Cells)
		}
	}
}

func fig13a(cfg config) {
	header("users", "|P|", "time(s)")
	for _, kind := range []string{"CL", "TA", "UN"} {
		for _, mul := range []float64{0.1, 0.5, 1.0, 1.5, 2.0} {
			nP := int(float64(cfg.nP) * mul)
			if nP < 100 {
				nP = 100
			}
			inst := cfg.instance("IND", kind, nP, cfg.nU, cfg.d, cfg.k, int64(130+int(10*mul)))
			m := mOf(0.5, len(inst.Users))
			secs := timeIt(func() { mustAA(inst, m, core.Options{}) })
			row(kind, nP, secs)
		}
	}
}

func fig13b(cfg config) {
	header("users", "|U|", "time(s)")
	for _, kind := range []string{"CL", "TA", "UN"} {
		for _, mul := range []float64{0.25, 0.5, 1.0, 2.0} {
			nU := int(float64(cfg.nU) * mul)
			if nU < 10 {
				nU = 10
			}
			inst := cfg.instance("IND", kind, cfg.nP, nU, cfg.d, cfg.k, int64(140+int(10*mul)))
			m := mOf(0.5, len(inst.Users))
			secs := timeIt(func() { mustAA(inst, m, core.Options{}) })
			row(kind, len(inst.Users), secs)
		}
	}
}

func mustAA(inst *core.Instance, m int, opts core.Options) *core.Region {
	reg, err := core.AA(inst, m, opts)
	if err != nil {
		panic(err)
	}
	return reg
}

func mustBSL(inst *core.Instance, m int) *core.Region {
	reg, err := core.BSL(inst, m)
	if err != nil {
		panic(err)
	}
	return reg
}
