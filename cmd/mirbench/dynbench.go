package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"mir/internal/core"
	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// The -json-dyn mode measures the standing (maintained) path the way the
// -json mode measures preprocessing: a machine-readable matrix of
// sustained events/sec and touched-leaves/event under mixed
// arrival/departure streams, per dataset, user tier, worker count, and
// routing mode. The routed rows exercise the MBB-routed pruned descent;
// the DisableRouting rows re-measure the historical every-leaf sweep on
// the same stream and are the locality baseline: their regions are
// byte-identical (see TestRoutingByteIdentical), so the only difference
// is how many leaves each event had to visit.
//
// The user axis is capped far below the paper's 10^6 stream sizes on
// purpose: the maintained arrangement is a halfspace arrangement over the
// *resident* users, and its cell count grows exponentially with |U|
// (thousands of cells by |U|=160 at d=3 already). The stream length, not
// the resident population, is the scalable axis of the standing problem —
// EXPERIMENTS.md documents the scaling protocol. Tiers below keep a full
// matrix in the minutes range while leaving the largest tier big enough
// for the >=5x locality gate to be meaningful.
//
// The timed section applies one event per ApplyBatch: the standing
// problem is event-at-a-time maintenance, and per-event cost is exactly
// what the routed descent makes sublinear (a coalesced batch would let
// the full sweep amortize its |tree| pass over the whole batch,
// measuring the daemon's coalescing win rather than routing's). The
// untimed warmup prefix runs batched: it exists to reach the standing
// steady state — the arrangement refined against the pool's geometry and
// the decision proofs mined back to headroom — before measurement
// starts, and region state is batch-partition-invariant by construction.
const (
	dynBenchP     = 2000
	dynBenchD     = 3
	dynBenchK     = 10
	dynBenchSteps = 120               // timed events per stream
	dynBenchWarm  = 2 * dynBenchSteps // untimed steady-state prefix
	dynBenchBatch = 12                // warmup events per ApplyBatch
	dynBenchRuns  = 2                 // timed stream repetitions (fresh maintainer each)
)

var dynBenchUsers = []int{40, 80, 160}

// dynResult is one (dataset, users, workers, routing) cell.
type dynResult struct {
	Dataset  string `json:"dataset"`
	Products int    `json:"products"`
	Users    int    `json:"users"` // resident users at stream start
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	M        int    `json:"m"`
	Workers  int    `json:"workers"`
	Routed   bool   `json:"routed"`
	Events   int    `json:"events"`
	Warmup   int    `json:"warmup"`
	Runs     int    `json:"runs"`

	// EventsPerSec is the sustained throughput of the best timed stream
	// (build excluded; the stream is batched ApplyBatch calls).
	EventsPerSec float64 `json:"events_per_sec"`
	// TouchedLeavesPerEvent is the locality metric: RoutedLeaves (leaf
	// visits charged by event staging) divided by the stream length. It is
	// deterministic for a fixed configuration and worker count, so — unlike
	// the wall numbers — it gates CI hard.
	TouchedLeavesPerEvent float64 `json:"touched_leaves_per_event"`
	// SkippedSubtreesPerEvent and FrontierPerEvent complete the routing
	// profile: subtrees proven skippable per event, and leaves bucketed for
	// re-verification per event (identical routed vs swept by design).
	SkippedSubtreesPerEvent float64 `json:"skipped_subtrees_per_event"`
	FrontierPerEvent        float64 `json:"frontier_per_event"`
	// Cells is the arrangement's cumulative leaf-creation counter after the
	// stream — the |tree| the sweep pays and the router avoids.
	Cells      int `json:"cells"`
	FinalUsers int `json:"final_users"`
	// CountDesyncs surfaces strip-time accounting wobble at bench scale
	// (deeply refined cells hugging repeated session halfspaces can flip a
	// tolerance-thin classification between count and un-count). It is a
	// shared-path numeric artifact, not a routing one, which is exactly how
	// it gates: runDynBench fails if the routed and swept rows of the same
	// configuration ever disagree.
	CountDesyncs int `json:"count_desyncs"`
}

// dynReport is the top-level BENCH_DYN.json document.
type dynReport struct {
	Command string `json:"command"`
	hostMeta
	Seed    int64       `json:"seed"`
	Results []dynResult `json:"results"`
}

// dynScript builds a reproducible session stream over a finite user pool:
// arrivals bring a random offline pool member back online (same weights
// and k — a returning user), departures take a random online one, and the
// population is held within a small band around nU. Both properties are
// the standing regime, not conveniences. The balance keeps the population
// near the level m was chosen for: a net-growing stream under a fixed m
// drags every eliminated cell toward the revival threshold together, the
// whole arrangement becomes frontier, and the right tool is
// re-preprocessing, not incremental maintenance. The finite pool keeps
// the halfspace geometry recurrent: the arrangement refines against the
// pool once and then converges, the way a stable user base behaves —
// whereas a stream of never-seen-before preference vectors adds novel
// cutting planes forever and measures arrangement construction, not
// maintenance.
func dynScript(rng *rand.Rand, pool []topk.UserPref, nU, steps int) []core.Event {
	events := make([]core.Event, 0, steps)
	online := make([]int, nU)  // pool indices currently resident
	handles := make([]int, nU) // their maintainer handles, parallel
	for i := range online {
		online[i] = i
		handles[i] = i
	}
	offline := make([]int, 0, len(pool)-nU)
	for i := nU; i < len(pool); i++ {
		offline = append(offline, i)
	}
	next := nU
	for len(events) < steps {
		arrive := rng.Intn(2) == 0
		if len(offline) == 0 || len(online) >= nU+2 {
			arrive = false
		} else if len(online) <= nU-2 {
			arrive = true
		}
		if arrive {
			j := rng.Intn(len(offline))
			pi := offline[j]
			offline = append(offline[:j], offline[j+1:]...)
			u := pool[pi]
			events = append(events, core.Event{Kind: core.EventArrive,
				User: topk.UserPref{W: append(geom.Vector(nil), u.W...), K: u.K}})
			online = append(online, pi)
			handles = append(handles, next)
			next++
		} else {
			i := rng.Intn(len(online))
			events = append(events, core.Event{Kind: core.EventDepart, Handle: handles[i]})
			offline = append(offline, online[i])
			online = append(online[:i], online[i+1:]...)
			handles = append(handles[:i], handles[i+1:]...)
		}
	}
	return events
}

// dynMatrix is the (workers, routing) grid per (dataset, users) point.
// The swept baseline runs at one worker only: its locality counters are
// deterministic there, and the worker axis of the swept mode adds cost
// without information (worker-count identity is property-tested, not
// benchmarked).
var dynMatrix = []struct {
	workers int
	routed  bool
}{
	{1, true},
	{4, true},
	{1, false},
}

// runDynBench measures the dynamic-maintenance matrix and writes the
// report to path; with a baseline it then gates through checkDynBaseline.
func runDynBench(cfg config, path, baselinePath string) error {
	report := dynReport{
		Command:  "mirbench -json-dyn",
		hostMeta: currentHost(),
		Seed:     cfg.seed,
	}
	for _, dataset := range []string{"IND", "ANTI"} {
		for ti, nU := range dynBenchUsers {
			rng := cfg.rng(int64(211 + ti))
			ps := cfg.products(dataset, dynBenchP, dynBenchD, rng)
			// The session pool: nU initial residents plus a 25% offline
			// reserve drawn from the same clustered population.
			pool := data.WithK(cfg.users("CL", nU+nU/4, dynBenchD, rng), dynBenchK)
			us := pool[:nU]
			events := dynScript(rng, pool, nU, dynBenchWarm+dynBenchSteps)
			m := nU / 2
			var desyncRef = -1
			for _, cell := range dynMatrix {
				opts := core.Options{Workers: cell.workers, DisableRouting: !cell.routed}
				res := dynResult{
					Dataset:  dataset,
					Products: dynBenchP,
					Users:    nU,
					Dim:      dynBenchD,
					K:        dynBenchK,
					M:        m,
					Workers:  cell.workers,
					Routed:   cell.routed,
					Events:   dynBenchSteps,
					Warmup:   dynBenchWarm,
					Runs:     dynBenchRuns,
				}
				best := -1.0
				for r := 0; r < dynBenchRuns; r++ {
					// Fresh maintainer per repetition: the stream mutates the
					// arrangement, so a warm rerun would measure a different
					// state. The build and the warmup prefix are excluded
					// from the timed section; counters are snapshotted after
					// warmup so the profile covers the timed events only.
					inst, err := core.NewInstanceOpts(ps, append([]topk.UserPref(nil), us...), opts)
					if err != nil {
						return fmt.Errorf("%s |U|=%d: %w", dataset, nU, err)
					}
					mt, err := core.NewMaintainer(inst, m, opts)
					if err != nil {
						return fmt.Errorf("%s |U|=%d: %w", dataset, nU, err)
					}
					for lo := 0; lo < dynBenchWarm; lo += dynBenchBatch {
						hi := lo + dynBenchBatch
						if hi > dynBenchWarm {
							hi = dynBenchWarm
						}
						if _, err := mt.ApplyBatch(events[lo:hi]); err != nil {
							return fmt.Errorf("%s |U|=%d routed=%v: warmup [%d,%d): %w",
								dataset, nU, cell.routed, lo, hi, err)
						}
					}
					st0 := mt.Region().Stats
					timed := events[dynBenchWarm:]
					start := time.Now()
					for ei := range timed {
						if _, err := mt.ApplyBatch(timed[ei : ei+1]); err != nil {
							return fmt.Errorf("%s |U|=%d routed=%v: event %d: %w",
								dataset, nU, cell.routed, ei, err)
						}
					}
					wall := time.Since(start).Seconds()
					if best < 0 || wall < best {
						best = wall
					}
					if r == 0 {
						st1 := mt.Region().Stats
						n := float64(len(timed))
						res.TouchedLeavesPerEvent = float64(st1.RoutedLeaves-st0.RoutedLeaves) / n
						res.SkippedSubtreesPerEvent = float64(st1.SkippedSubtrees-st0.SkippedSubtrees) / n
						res.FrontierPerEvent = float64(st1.TouchedFrontier-st0.TouchedFrontier) / n
						res.Cells = st1.Cells
						res.FinalUsers = mt.NumUsers()
						res.CountDesyncs = int(st1.CountDesyncs)
					}
				}
				// Desync counts must be identical across every (workers,
				// routing) row of a configuration: they are a shared-path
				// tolerance artifact, and any divergence means the routed
				// descent classified something the sweep did not.
				if desyncRef < 0 {
					desyncRef = res.CountDesyncs
				} else if res.CountDesyncs != desyncRef {
					return fmt.Errorf("%s |U|=%d workers=%d routed=%v: %d count desyncs, other rows saw %d",
						dataset, nU, cell.workers, cell.routed, res.CountDesyncs, desyncRef)
				}
				res.EventsPerSec = float64(dynBenchSteps) / best
				report.Results = append(report.Results, res)
				fmt.Printf("%-5s |U|=%-4d workers=%d routed=%-5v  %9.0f events/s  %10.1f leaves/event  %8.1f skips/event  %6d cells\n",
					dataset, nU, cell.workers, cell.routed, res.EventsPerSec,
					res.TouchedLeavesPerEvent, res.SkippedSubtreesPerEvent, res.Cells)
			}
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if baselinePath != "" {
		return checkDynBaseline(report, baselinePath)
	}
	return nil
}

// Gate tolerances. Touched-leaves/event is deterministic for a fixed
// configuration, so anything past 10% growth over the committed baseline
// is a real locality regression (a lost deferral proof, a bounds refresh
// gone too wide). Events/sec is wall-clock and gates with the same 10%
// from the issue's contract, but only on the workers=1 rows, where the
// measurement is least scheduler-noisy. dynLocalityFloor is the absolute
// gate of the optimization itself: on the matrix's largest user tier the
// routed rows must touch at least 5x fewer leaves per event than the
// full-sweep baseline rows, fresh-report against fresh-report, so the
// check cannot rot with the committed file.
const (
	dynTouchedRegressTolerance = 1.10
	dynEventsRegressTolerance  = 0.90
	dynLocalityFloor           = 5.0
)

// checkDynBaseline gates a fresh -json-dyn report against the committed
// BENCH_DYN.json: per-row touched-leaves/event (all rows; deterministic)
// and events/sec (workers=1 rows) within tolerance, plus the absolute
// >=5x routed-vs-sweep locality ratio on the largest user tier.
func checkDynBaseline(fresh dynReport, baselinePath string) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base dynReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	type key struct {
		dataset string
		users   int
		workers int
		routed  bool
	}
	ref := make(map[key]dynResult)
	for _, r := range base.Results {
		ref[key{r.Dataset, r.Users, r.Workers, r.Routed}] = r
	}
	if len(ref) == 0 {
		return fmt.Errorf("baseline %s: no rows to compare against", baselinePath)
	}
	var failures []string
	maxUsers := 0
	for _, r := range fresh.Results {
		if r.Users > maxUsers {
			maxUsers = r.Users
		}
	}
	sweep := make(map[string]dynResult) // largest-tier workers=1 sweep rows by dataset
	for _, r := range fresh.Results {
		if r.Users == maxUsers && r.Workers == 1 && !r.Routed {
			sweep[r.Dataset] = r
		}
	}
	for _, r := range fresh.Results {
		k := key{r.Dataset, r.Users, r.Workers, r.Routed}
		want, ok := ref[k]
		if !ok {
			fmt.Printf("baseline: no reference for %s |U|=%d workers=%d routed=%v; skipping\n",
				r.Dataset, r.Users, r.Workers, r.Routed)
			continue
		}
		status := "ok"
		limit := want.TouchedLeavesPerEvent * dynTouchedRegressTolerance
		if r.TouchedLeavesPerEvent > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s |U|=%d workers=%d routed=%v: %.1f touched leaves/event vs baseline %.1f (limit %.1f)",
				r.Dataset, r.Users, r.Workers, r.Routed,
				r.TouchedLeavesPerEvent, want.TouchedLeavesPerEvent, limit))
		}
		if r.Workers == 1 && r.EventsPerSec < want.EventsPerSec*dynEventsRegressTolerance {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s |U|=%d workers=%d routed=%v: %.0f events/s vs baseline %.0f (floor %.0f)",
				r.Dataset, r.Users, r.Workers, r.Routed,
				r.EventsPerSec, want.EventsPerSec, want.EventsPerSec*dynEventsRegressTolerance))
		}
		if r.Users == maxUsers && r.Workers == 1 && r.Routed {
			sw, ok := sweep[r.Dataset]
			if !ok {
				failures = append(failures, fmt.Sprintf(
					"%s |U|=%d: no workers=1 sweep row to compute the locality ratio", r.Dataset, r.Users))
			} else if r.TouchedLeavesPerEvent*dynLocalityFloor > sw.TouchedLeavesPerEvent {
				status = "FAIL"
				failures = append(failures, fmt.Sprintf(
					"%s |U|=%d: routed touches %.1f leaves/event, sweep %.1f — below the %gx locality floor",
					r.Dataset, r.Users, r.TouchedLeavesPerEvent, sw.TouchedLeavesPerEvent, dynLocalityFloor))
			}
		}
		fmt.Printf("baseline %-4s %-5s |U|=%-4d workers=%d routed=%-5v  %10.1f leaves/event vs %10.1f  %9.0f events/s vs %9.0f\n",
			status, r.Dataset, r.Users, r.Workers, r.Routed,
			r.TouchedLeavesPerEvent, want.TouchedLeavesPerEvent, r.EventsPerSec, want.EventsPerSec)
	}
	if len(failures) > 0 {
		return fmt.Errorf("dynamic-maintenance matrix regressed beyond tolerance:\n  %s",
			joinLines(failures))
	}
	fmt.Println("dyn baseline check passed")
	return nil
}
