package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mir/internal/core"
)

// The -json mode freezes the AA benchmark of bench_test.go into a
// machine-readable artifact: per product distribution (IND/COR/ANTI),
// pruning setting, and worker count, the wall time, allocation profile,
// the arrangement's LP-call counters, and (at workers > 1) the frontier
// scheduler's execution profile. CI regenerates the file on every run and
// uploads it, so performance regressions show up as diffs against the
// committed BENCH_AA.json rather than as anecdotes; the workers=1 rows
// additionally gate CI through -baseline (see checkBaseline).
//
// The workload matches the in-repo Go benchmarks (BenchmarkAAParallel):
// |P|=5000, |U|=80 clustered users, d=3, k=10, m=|U|/2. The matrix runs
// workers=1 with pruning on and off and with warm-started LPs on and off
// (the deterministic reference rows; the warm/cold pair measures the
// pivot reduction of basis reuse), then workers=2 and 4 with everything
// on (the scaling rows). Only the seed is taken from the command line.
const (
	jsonBenchP    = 5000
	jsonBenchU    = 80
	jsonBenchD    = 3
	jsonBenchK    = 10
	jsonBenchRuns = 3
)

// benchResult is one (dataset, pruning, workers) cell of the benchmark
// matrix.
type benchResult struct {
	Dataset  string `json:"dataset"`
	Products int    `json:"products"`
	Users    int    `json:"users"`
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	M        int    `json:"m"`
	Pruning  bool   `json:"pruning"`
	// WarmStart records whether LP solves re-entered parent-cell bases;
	// the warm/cold workers=1 pair differs only in the pivot counters.
	WarmStart bool `json:"warm_start"`
	Workers   int  `json:"workers"`
	Runs      int  `json:"runs"`

	// WallSeconds is the fastest of Runs measured executions (the standard
	// benchmarking convention: minimum wall time is the least noisy
	// estimator on a shared machine).
	WallSeconds float64 `json:"wall_seconds"`
	// AllocsPerOp and BytesPerOp are runtime.MemStats deltas (Mallocs,
	// TotalAlloc) averaged over the measured runs, matching the semantics
	// of testing.B's allocs/op and B/op.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`

	// Stats carries the algorithm counters, including the LP-call numbers:
	// ContainmentTests (classification feasibility solves), HullTests
	// (convex-hull membership solves), and PruneLPTests / PrunedRows from
	// split-time redundancy elimination. Every recorded counter is
	// deterministic across worker counts; the schedule-sensitive
	// StealCount and MaxFrontier are zeroed here and reported under Sched.
	Stats core.Stats `json:"stats"`

	// Sched is the frontier scheduler's execution profile (steal traffic,
	// peak frontier width, per-worker cell loads) from the warm-up run.
	// Present only at Workers > 1; its numbers vary run to run — the
	// scheduler promises identical results, not identical schedules.
	Sched *core.SchedStats `json:"sched,omitempty"`
}

// benchReport is the top-level BENCH_AA.json document.
type benchReport struct {
	Command   string        `json:"command"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Seed      int64         `json:"seed"`
	Results   []benchResult `json:"results"`
}

// jsonBenchMatrix is the (pruning, warm-start, workers) grid measured per
// dataset. The {pruning, cold, 1} row is the warm-start ablation reference:
// its Stats differ from {pruning, warm, 1} only in the LP effort counters.
var jsonBenchMatrix = []struct {
	pruning bool
	warm    bool
	workers int
}{
	{true, true, 1},
	{true, false, 1},
	{false, true, 1},
	{true, true, 2},
	{true, true, 4},
}

// runJSONBench measures the AA matrix and writes the report to path. When
// baselinePath is non-empty the fresh report is then gated against the
// committed reference (see checkBaseline) and an error is returned on
// regression.
func runJSONBench(cfg config, path, baselinePath string) error {
	report := benchReport{
		Command:   "mirbench -json",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seed:      cfg.seed,
	}
	m := jsonBenchU / 2
	for _, dataset := range []string{"IND", "COR", "ANTI"} {
		inst := cfg.instance(dataset, "CL", jsonBenchP, jsonBenchU, jsonBenchD, jsonBenchK, 101)
		for _, cell := range jsonBenchMatrix {
			opts := core.Options{
				Workers:          cell.workers,
				DisablePruning:   !cell.pruning,
				DisableWarmStart: !cell.warm,
			}
			res := benchResult{
				Dataset:   dataset,
				Products:  jsonBenchP,
				Users:     jsonBenchU,
				Dim:       jsonBenchD,
				K:         jsonBenchK,
				M:         m,
				Pruning:   cell.pruning,
				WarmStart: cell.warm,
				Workers:   cell.workers,
				Runs:      jsonBenchRuns,
			}
			// Warm-up run: populates the scratch pools and JIT-independent
			// caches so the measured runs see steady state, and supplies the
			// Stats (the recorded counters are identical across runs and
			// worker counts; see TestFrontierParallelByteIdentical).
			reg, err := core.AA(inst, m, opts)
			if err != nil {
				return fmt.Errorf("%s pruning=%v warm=%v workers=%d: %w",
					dataset, cell.pruning, cell.warm, cell.workers, err)
			}
			res.Stats = reg.Stats
			res.Stats.StealCount, res.Stats.MaxFrontier = 0, 0
			res.Sched = reg.Sched

			var allocs, bytes uint64
			best := -1.0
			var ms0, ms1 runtime.MemStats
			for r := 0; r < jsonBenchRuns; r++ {
				runtime.GC()
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				if _, err := core.AA(inst, m, opts); err != nil {
					return err
				}
				wall := time.Since(start).Seconds()
				runtime.ReadMemStats(&ms1)
				allocs += ms1.Mallocs - ms0.Mallocs
				bytes += ms1.TotalAlloc - ms0.TotalAlloc
				if best < 0 || wall < best {
					best = wall
				}
			}
			res.WallSeconds = best
			res.AllocsPerOp = allocs / jsonBenchRuns
			res.BytesPerOp = bytes / jsonBenchRuns
			report.Results = append(report.Results, res)
			fmt.Printf("%-5s pruning=%-5v warm=%-5v workers=%d  %8.3fs  %9d allocs/op  %9d pivots/op  %6d steals\n",
				dataset, cell.pruning, cell.warm, cell.workers, res.WallSeconds, res.AllocsPerOp,
				res.Stats.Pivots, schedSteals(res.Sched))
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	if baselinePath != "" {
		return checkBaseline(report, baselinePath)
	}
	return nil
}

func schedSteals(s *core.SchedStats) int {
	if s == nil {
		return 0
	}
	return s.Steals
}

// allocRegressionTolerance is the allowed growth of workers=1 allocs/op
// over the committed baseline before checkBaseline fails: allocation
// counts at one worker are deterministic, so anything past noise is a
// real regression (a lost pooled buffer, a reintroduced per-cell clone).
// pivotRegressionTolerance plays the same role for the simplex pivot
// counters: workers=1 pivot counts are exactly reproducible for a fixed
// configuration, so a >10% jump means warm starts stopped landing (stale
// keys, broken basis handoff) or a solver change made the search walk.
const (
	allocRegressionTolerance = 1.10
	pivotRegressionTolerance = 1.10
)

// checkBaseline compares the fresh report's workers=1 rows against the
// committed BENCH_AA.json and fails on an allocs/op or pivots/op
// regression beyond the tolerances above. Only the single-worker rows
// gate: their counts are exactly reproducible, while multi-worker rows
// jitter with the schedule (per-worker scratch grows with steal traffic).
// Wall times never gate — CI machines are too noisy for that.
func checkBaseline(fresh benchReport, baselinePath string) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	type key struct {
		dataset string
		pruning bool
		warm    bool
	}
	type refRow struct {
		allocs uint64
		pivots int64
	}
	ref := make(map[key]refRow)
	for _, r := range base.Results {
		// Reports written before the workers axis existed carry Workers=0;
		// those rows were measured at one worker. Reports written before the
		// warm-start axis carry WarmStart=false on every row.
		if r.Workers == 1 || r.Workers == 0 {
			ref[key{r.Dataset, r.Pruning, r.WarmStart}] = refRow{r.AllocsPerOp, r.Stats.Pivots}
		}
	}
	if len(ref) == 0 {
		return fmt.Errorf("baseline %s: no workers=1 rows to compare against", baselinePath)
	}
	var failures []string
	for _, r := range fresh.Results {
		if r.Workers != 1 {
			continue
		}
		want, ok := ref[key{r.Dataset, r.Pruning, r.WarmStart}]
		if !ok && r.WarmStart {
			// Pre-warm-start baseline: its rows are cold and unlabeled, and
			// still gate the allocation counts of today's warm rows.
			want, ok = ref[key{r.Dataset, r.Pruning, false}]
		}
		if !ok {
			fmt.Printf("baseline: no reference for %s pruning=%v warm=%v; skipping\n",
				r.Dataset, r.Pruning, r.WarmStart)
			continue
		}
		limit := uint64(float64(want.allocs) * allocRegressionTolerance)
		status := "ok"
		if r.AllocsPerOp > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s pruning=%v warm=%v: %d allocs/op vs baseline %d (limit %d)",
				r.Dataset, r.Pruning, r.WarmStart, r.AllocsPerOp, want.allocs, limit))
		}
		// Pivot gate: skipped when the baseline predates the pivot counters
		// (its rows report zero pivots) or records a different warm setting.
		pivotLimit := int64(float64(want.pivots) * pivotRegressionTolerance)
		if want.pivots > 0 && r.Stats.Pivots > pivotLimit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s pruning=%v warm=%v: %d pivots/op vs baseline %d (limit %d)",
				r.Dataset, r.Pruning, r.WarmStart, r.Stats.Pivots, want.pivots, pivotLimit))
		}
		fmt.Printf("baseline %-4s %-5s pruning=%-5v warm=%-5v  %9d allocs/op vs %9d  %9d pivots/op vs %9d\n",
			status, r.Dataset, r.Pruning, r.WarmStart, r.AllocsPerOp, want.allocs,
			r.Stats.Pivots, want.pivots)
	}
	if len(failures) > 0 {
		return fmt.Errorf("workers=1 counters regressed beyond tolerance:\n  %s",
			joinLines(failures))
	}
	fmt.Println("baseline check passed")
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
