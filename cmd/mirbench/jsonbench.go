package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mir/internal/core"
)

// The -json mode freezes the AA benchmark of bench_test.go into a
// machine-readable artifact: per product distribution (IND/COR/ANTI),
// pruning setting, and worker count, the wall time, allocation profile,
// the arrangement's LP-call counters, and (at workers > 1) the frontier
// scheduler's execution profile. CI regenerates the file on every run and
// uploads it, so performance regressions show up as diffs against the
// committed BENCH_AA.json rather than as anecdotes; the workers=1 rows
// additionally gate CI through -baseline (see checkBaseline).
//
// The workload matches the in-repo Go benchmarks (BenchmarkAAParallel):
// |P|=5000, |U|=80 clustered users, d=3, k=10, m=|U|/2. The matrix runs
// workers=1 with pruning on and off and with warm-started LPs on and off
// (the deterministic reference rows; the warm/cold pair measures the
// pivot reduction of basis reuse), then workers=2 and 4 with everything
// on (the scaling rows). Only the seed is taken from the command line.
const (
	jsonBenchP    = 5000
	jsonBenchU    = 80
	jsonBenchD    = 3
	jsonBenchK    = 10
	jsonBenchRuns = 3
)

// The shard-scaling tier: a larger user population (the regime sharding
// exists for) on the IND dataset, measured at Shards ∈ {1,2,4,8} with
// Workers=8. m = |U|/2 spreads the region boundary across shard boxes,
// which is the balance-relevant (and hardest) case for the decomposition.
const (
	jsonShardU       = 160
	jsonShardM       = jsonShardU / 2
	jsonShardWorkers = 8
)

var jsonShardMatrix = []int{1, 2, 4, 8}

// benchResult is one (dataset, pruning, workers) cell of the benchmark
// matrix.
type benchResult struct {
	Dataset  string `json:"dataset"`
	Products int    `json:"products"`
	Users    int    `json:"users"`
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	M        int    `json:"m"`
	Pruning  bool   `json:"pruning"`
	// WarmStart records whether LP solves re-entered parent-cell bases;
	// the warm/cold workers=1 pair differs only in the pivot counters.
	WarmStart bool `json:"warm_start"`
	// ScalarKernels marks the kernel-ablation row: the run selected the
	// historical scalar numeric loops (core.Options.DisableKernels)
	// instead of the blocked kernels. Rows without the field (legacy
	// reports included) ran the kernels. The scalar row's Stats must be
	// byte-identical to its kernels-on twin — checkKernelIdentity
	// enforces that on every fresh report — so only its wall time
	// carries information.
	ScalarKernels bool `json:"scalar_kernels,omitempty"`
	Workers       int  `json:"workers"`
	// Shards is the space-sharding factor (1 = the single-tree build;
	// legacy reports carry 0, which means the same). ShardCells is the
	// per-shard arrangement-cell count in shard-ID order — deterministic
	// for a fixed shard count, and the source of the balance gate.
	Shards     int   `json:"shards"`
	ShardCells []int `json:"shard_cells,omitempty"`
	// Executor names the shard executor that built the row: "" (legacy
	// rows included) is the in-process build, "procpool" the
	// multi-process worker pool (internal/dist). Executor rows are twins
	// of an in-process row with the same shape; checkDistExecutor gates
	// their stats identical and their wall/RSS bounded, and the scaling
	// and baseline gates skip them. WorkerMaxRSSBytes is the largest
	// peak RSS any worker process reached during the measured builds —
	// the per-process memory bound the GC-isolation argument rests on
	// (0 on platforms without rusage reporting).
	Executor          string `json:"executor,omitempty"`
	WorkerMaxRSSBytes int64  `json:"worker_max_rss_bytes,omitempty"`
	Runs              int    `json:"runs"`

	// WallSeconds is the fastest of Runs measured executions (the standard
	// benchmarking convention: minimum wall time is the least noisy
	// estimator on a shared machine).
	WallSeconds float64 `json:"wall_seconds"`
	// AllocsPerOp and BytesPerOp are runtime.MemStats deltas (Mallocs,
	// TotalAlloc) averaged over the measured runs, matching the semantics
	// of testing.B's allocs/op and B/op.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`

	// Stats carries the algorithm counters, including the LP-call numbers:
	// ContainmentTests (classification feasibility solves), HullTests
	// (convex-hull membership solves), and PruneLPTests / PrunedRows from
	// split-time redundancy elimination. Every recorded counter is
	// deterministic across worker counts; the schedule-sensitive
	// StealCount and MaxFrontier are zeroed here and reported under Sched.
	Stats core.Stats `json:"stats"`

	// Sched is the frontier scheduler's execution profile (steal traffic,
	// peak frontier width, per-worker cell loads) from the warm-up run.
	// Present only at Workers > 1; its numbers vary run to run — the
	// scheduler promises identical results, not identical schedules.
	Sched *core.SchedStats `json:"sched,omitempty"`
}

// benchReport is the top-level BENCH_AA.json document.
type benchReport struct {
	Command string `json:"command"`
	hostMeta
	Seed    int64         `json:"seed"`
	Results []benchResult `json:"results"`
}

// jsonBenchMatrix is the (pruning, warm-start, kernels, workers) grid
// measured per dataset. The {pruning, cold, 1} row is the warm-start
// ablation reference: its Stats differ from {pruning, warm, 1} only in
// the LP effort counters. The scalar row is the kernel ablation: the
// same configuration on the historical scalar numeric loops, whose
// Stats must match the default row exactly (checkKernelIdentity) while
// its wall time shows what the blocked kernels buy.
var jsonBenchMatrix = []struct {
	pruning bool
	warm    bool
	scalar  bool
	workers int
}{
	{true, true, false, 1},
	{true, false, false, 1},
	{false, true, false, 1},
	{true, true, true, 1},
	{true, true, false, 2},
	{true, true, false, 4},
}

// runJSONBench measures the AA matrix and writes the report to path. When
// baselinePath is non-empty the fresh report is then gated against the
// committed reference (see checkBaseline) and an error is returned on
// regression.
func runJSONBench(cfg config, path, baselinePath string) error {
	report := benchReport{
		Command:  "mirbench -json",
		hostMeta: currentHost(),
		Seed:     cfg.seed,
	}
	m := jsonBenchU / 2
	for _, dataset := range []string{"IND", "COR", "ANTI"} {
		inst := cfg.instance(dataset, "CL", jsonBenchP, jsonBenchU, jsonBenchD, jsonBenchK, 101)
		for _, cell := range jsonBenchMatrix {
			opts := core.Options{
				Workers:          cell.workers,
				DisablePruning:   !cell.pruning,
				DisableWarmStart: !cell.warm,
				DisableKernels:   cell.scalar,
			}
			res := benchResult{
				Dataset:       dataset,
				Products:      jsonBenchP,
				Users:         jsonBenchU,
				Dim:           jsonBenchD,
				K:             jsonBenchK,
				M:             m,
				Pruning:       cell.pruning,
				WarmStart:     cell.warm,
				ScalarKernels: cell.scalar,
				Workers:       cell.workers,
				Shards:        1,
				Runs:          jsonBenchRuns,
			}
			if _, err := measureAA(inst, m, opts, &res); err != nil {
				return fmt.Errorf("%s pruning=%v warm=%v scalar=%v workers=%d: %w",
					dataset, cell.pruning, cell.warm, cell.scalar, cell.workers, err)
			}
			report.Results = append(report.Results, res)
			fmt.Printf("%-5s pruning=%-5v warm=%-5v scalar=%-5v workers=%d  %8.3fs  %9d allocs/op  %9d pivots/op  %6d steals\n",
				dataset, cell.pruning, cell.warm, cell.scalar, cell.workers, res.WallSeconds, res.AllocsPerOp,
				res.Stats.Pivots, schedSteals(res.Sched))
		}
	}
	// Shard-scaling axis: the larger IND tier at Workers=8 across the
	// shard matrix. The Shards=1 row is the single-tree reference the
	// shard gates compare against (fresh vs fresh, so machine speed
	// divides out of the wall ratio).
	shardInst := cfg.instance("IND", "CL", jsonBenchP, jsonShardU, jsonBenchD, jsonBenchK, 101)
	var distTwin *core.Region
	for _, shards := range jsonShardMatrix {
		opts := core.Options{Workers: jsonShardWorkers, Shards: shards}
		res := benchResult{
			Dataset:   "IND",
			Products:  jsonBenchP,
			Users:     jsonShardU,
			Dim:       jsonBenchD,
			K:         jsonBenchK,
			M:         jsonShardM,
			Pruning:   true,
			WarmStart: true,
			Workers:   jsonShardWorkers,
			Shards:    shards,
			Runs:      jsonBenchRuns,
		}
		reg, err := measureAA(shardInst, jsonShardM, opts, &res)
		if err != nil {
			return fmt.Errorf("shard tier shards=%d: %w", shards, err)
		}
		if shards == distShards {
			distTwin = reg
		}
		report.Results = append(report.Results, res)
		fmt.Printf("IND   |U|=%d shards=%d workers=%d  %8.3fs  %9d bytes/op  cells=%d prescreened=%d\n",
			jsonShardU, shards, jsonShardWorkers, res.WallSeconds, res.BytesPerOp,
			res.Stats.Cells, res.Stats.PrescreenedOut)
	}
	// Executor axis: the multi-process twin of the Shards=distShards row,
	// with a cell-for-cell differential against the in-process build.
	if err := measureDistRows(&report, shardInst, []int{distShards}, map[int]*core.Region{distShards: distTwin}); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	// The shard and kernel gates compare rows of the fresh report against
	// each other, so they run on every -json invocation, baseline or not.
	// The shard wall floor keys off the CPU count the report itself
	// records — a committed fact, not whatever machine re-runs the check.
	if err := checkShardScaling(report, report.NumCPU); err != nil {
		return err
	}
	if err := checkKernelIdentity(report); err != nil {
		return err
	}
	if err := checkDistExecutor(report); err != nil {
		return err
	}
	if baselinePath != "" {
		return checkBaseline(report, baselinePath)
	}
	return nil
}

// Shard-scaling gates. Every gate compares rows of the same fresh report
// (never the committed baseline), so machine speed divides out and the
// gates hold on any host:
//
//   - prescreen: every Shards>1 row must absorb a nonzero number of
//     halfspaces (PrescreenedOut > 0) — the band-bound prescreen going
//     silent means shard boxes stopped excluding any user boundary.
//   - balance: on the largest shard row, total cells / max per-shard
//     cells must stay >= shardBalanceFloor. This is the deterministic
//     upper-bound witness for parallel speedup: no schedule can beat it,
//     and a decomposition that admits >= 3x keeps it >= 3.
//   - allocation: the largest shard row's mean per-shard footprint
//     (BytesPerOp / Shards) must stay under shardAllocFraction of the
//     single-tree build's BytesPerOp — sharding must split the working
//     set, not replicate it.
//   - wall: on hosts with >= shardWallGateCPUs CPUs, the measured
//     speedup wall(Shards=1)/wall(largest) must reach
//     shardWallSpeedupMin. On smaller hosts there is no parallelism to
//     measure and the balance gate is the machine-independent form of
//     the same contract, so wall is reported but not enforced.
const (
	shardBalanceFloor   = 3.0
	shardAllocFraction  = 0.5
	shardWallSpeedupMin = 3.0
	shardWallGateCPUs   = 8
)

func checkShardScaling(report benchReport, numCPU int) error {
	rows := make(map[int]benchResult)
	for _, r := range report.Results {
		// Executor rows are shape-twins of the in-process shard rows and
		// would silently overwrite them in this map; they have their own
		// gates (checkDistExecutor).
		if r.Users == jsonShardU && r.Workers == jsonShardWorkers && r.Shards >= 1 && r.Executor == "" {
			rows[r.Shards] = r
		}
	}
	var failures []string
	for _, s := range jsonShardMatrix {
		r, ok := rows[s]
		if !ok {
			failures = append(failures, fmt.Sprintf("shards=%d: row missing from report", s))
			continue
		}
		if s > 1 && r.Stats.PrescreenedOut == 0 {
			failures = append(failures, fmt.Sprintf(
				"shards=%d: prescreen absorbed no halfspaces", s))
		}
	}
	single, haveSingle := rows[1]
	topShards := jsonShardMatrix[len(jsonShardMatrix)-1]
	top, haveTop := rows[topShards]
	if haveTop {
		maxCells := 0
		for _, c := range top.ShardCells {
			if c > maxCells {
				maxCells = c
			}
		}
		if maxCells <= 0 {
			failures = append(failures, fmt.Sprintf(
				"shards=%d: no per-shard cell counts recorded", topShards))
		} else {
			balance := float64(top.Stats.Cells) / float64(maxCells)
			fmt.Printf("shard balance shards=%d: %d cells / %d max-shard = %.2f (floor %.1f)\n",
				topShards, top.Stats.Cells, maxCells, balance, shardBalanceFloor)
			if balance < shardBalanceFloor {
				failures = append(failures, fmt.Sprintf(
					"shards=%d: balance %.2f below floor %.1f (largest shard holds %d of %d cells)",
					topShards, balance, shardBalanceFloor, maxCells, top.Stats.Cells))
			}
		}
	}
	if haveSingle && haveTop {
		perShard := top.BytesPerOp / uint64(topShards)
		limit := uint64(shardAllocFraction * float64(single.BytesPerOp))
		fmt.Printf("shard alloc shards=%d: %d bytes/shard vs limit %d (%.0f%% of single-tree %d)\n",
			topShards, perShard, limit, shardAllocFraction*100, single.BytesPerOp)
		if perShard > limit {
			failures = append(failures, fmt.Sprintf(
				"shards=%d: per-shard footprint %d bytes exceeds %.0f%% of single-tree %d bytes",
				topShards, perShard, shardAllocFraction*100, single.BytesPerOp))
		}
		speedup := single.WallSeconds / top.WallSeconds
		if numCPU >= shardWallGateCPUs {
			fmt.Printf("shard wall shards=%d: %.2fx speedup over single tree (floor %.1fx)\n",
				topShards, speedup, shardWallSpeedupMin)
			if speedup < shardWallSpeedupMin {
				failures = append(failures, fmt.Sprintf(
					"shards=%d: wall speedup %.2fx below %.1fx on a %d-CPU host",
					topShards, speedup, shardWallSpeedupMin, numCPU))
			}
		} else {
			fmt.Printf("shard wall shards=%d: %.2fx measured on %d CPUs — not enforced below %d CPUs (balance gate stands in)\n",
				topShards, speedup, numCPU, shardWallGateCPUs)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("shard scaling gates failed:\n  %s", joinLines(failures))
	}
	fmt.Println("shard scaling check passed")
	return nil
}

// checkKernelIdentity enforces the DisableKernels contract on a fresh
// report: every scalar-kernel ablation row must carry Stats exactly
// equal — every counter, pivots included — to its kernels-on twin (the
// row with the same dataset, pruning, warm-start, worker, and shard
// settings). The blocked kernels reproduce the scalar loops bit for
// bit, so any divergence means the kernels changed an answer, which no
// wall-time win excuses. The wall ratio scalar/kernels is printed but
// never gated: it is the measured pivot-path speedup, and wall noise on
// shared CI machines is exactly what the identity gate is not.
func checkKernelIdentity(report benchReport) error {
	type key struct {
		dataset string
		pruning bool
		warm    bool
		workers int
		shards  int
	}
	fast := make(map[key]benchResult)
	for _, r := range report.Results {
		if !r.ScalarKernels {
			fast[key{r.Dataset, r.Pruning, r.WarmStart, r.Workers, r.Shards}] = r
		}
	}
	var failures []string
	checked := 0
	for _, r := range report.Results {
		if !r.ScalarKernels {
			continue
		}
		k := key{r.Dataset, r.Pruning, r.WarmStart, r.Workers, r.Shards}
		twin, ok := fast[k]
		if !ok {
			failures = append(failures, fmt.Sprintf(
				"%s pruning=%v warm=%v workers=%d: scalar row has no kernels-on twin",
				r.Dataset, r.Pruning, r.WarmStart, r.Workers))
			continue
		}
		checked++
		if r.Stats != twin.Stats {
			failures = append(failures, fmt.Sprintf(
				"%s pruning=%v warm=%v workers=%d: stats diverge between kernels on and off:\n"+
					"    kernels %+v\n    scalar  %+v",
				r.Dataset, r.Pruning, r.WarmStart, r.Workers, twin.Stats, r.Stats))
			continue
		}
		fmt.Printf("kernel identity %-5s: stats identical; wall scalar/kernels = %.2fx\n",
			r.Dataset, r.WallSeconds/twin.WallSeconds)
	}
	if len(failures) > 0 {
		return fmt.Errorf("kernel identity gates failed:\n  %s", joinLines(failures))
	}
	if checked == 0 {
		fmt.Println("kernel identity: no scalar rows in report; skipping")
		return nil
	}
	fmt.Println("kernel identity check passed")
	return nil
}

// measureAA runs one warm-up execution (populating res.Stats, res.Sched,
// and res.ShardCells — all deterministic across runs) followed by
// jsonBenchRuns measured executions, recording best-of wall time and
// mean MemStats deltas. The warm-up region is returned so callers can
// run differential gates against another executor's build of the same
// configuration.
func measureAA(inst *core.Instance, m int, opts core.Options, res *benchResult) (*core.Region, error) {
	return measureBuild(func() (*core.Region, error) { return core.AA(inst, m, opts) }, res)
}

// measureBuild is measureAA generalized over the region builder — the
// executor axis measures dist.ProcPool builds through the same warm-up
// plus best-of-runs protocol so its rows are comparable cell for cell.
func measureBuild(build func() (*core.Region, error), res *benchResult) (*core.Region, error) {
	reg, err := build()
	if err != nil {
		return nil, err
	}
	res.Stats = reg.Stats
	res.Stats.StealCount, res.Stats.MaxFrontier = 0, 0
	res.Sched = reg.Sched
	res.ShardCells = append([]int(nil), reg.ShardCells...)

	var allocs, bytes uint64
	best := -1.0
	var ms0, ms1 runtime.MemStats
	for r := 0; r < jsonBenchRuns; r++ {
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		if _, err := build(); err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		runtime.ReadMemStats(&ms1)
		allocs += ms1.Mallocs - ms0.Mallocs
		bytes += ms1.TotalAlloc - ms0.TotalAlloc
		if best < 0 || wall < best {
			best = wall
		}
	}
	res.WallSeconds = best
	res.AllocsPerOp = allocs / jsonBenchRuns
	res.BytesPerOp = bytes / jsonBenchRuns
	return reg, nil
}

func schedSteals(s *core.SchedStats) int {
	if s == nil {
		return 0
	}
	return s.Steals
}

// allocRegressionTolerance is the allowed growth of workers=1 allocs/op
// over the committed baseline before checkBaseline fails: allocation
// counts at one worker are deterministic, so anything past noise is a
// real regression (a lost pooled buffer, a reintroduced per-cell clone).
// pivotRegressionTolerance plays the same role for the simplex pivot
// counters: workers=1 pivot counts are exactly reproducible for a fixed
// configuration, so a >10% jump means warm starts stopped landing (stale
// keys, broken basis handoff) or a solver change made the search walk.
const (
	allocRegressionTolerance = 1.10
	pivotRegressionTolerance = 1.10
)

// checkBaseline compares the fresh report's workers=1 rows against the
// committed BENCH_AA.json and fails on an allocs/op or pivots/op
// regression beyond the tolerances above. Only the single-worker rows
// gate: their counts are exactly reproducible, while multi-worker rows
// jitter with the schedule (per-worker scratch grows with steal traffic).
// Wall times never gate — CI machines are too noisy for that.
func checkBaseline(fresh benchReport, baselinePath string) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base benchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", baselinePath, err)
	}
	type key struct {
		dataset string
		pruning bool
		warm    bool
	}
	type refRow struct {
		allocs uint64
		pivots int64
	}
	ref := make(map[key]refRow)
	for _, r := range base.Results {
		// Reports written before the workers axis existed carry Workers=0;
		// those rows were measured at one worker. Reports written before the
		// warm-start axis carry WarmStart=false on every row.
		if (r.Workers == 1 || r.Workers == 0) && !r.ScalarKernels {
			ref[key{r.Dataset, r.Pruning, r.WarmStart}] = refRow{r.AllocsPerOp, r.Stats.Pivots}
		}
	}
	if len(ref) == 0 {
		return fmt.Errorf("baseline %s: no workers=1 rows to compare against", baselinePath)
	}
	var failures []string
	for _, r := range fresh.Results {
		if r.Workers != 1 || r.ScalarKernels {
			// Scalar-kernel rows are gated by checkKernelIdentity against
			// their in-report twin, not against the baseline.
			continue
		}
		want, ok := ref[key{r.Dataset, r.Pruning, r.WarmStart}]
		if !ok && r.WarmStart {
			// Pre-warm-start baseline: its rows are cold and unlabeled, and
			// still gate the allocation counts of today's warm rows.
			want, ok = ref[key{r.Dataset, r.Pruning, false}]
		}
		if !ok {
			fmt.Printf("baseline: no reference for %s pruning=%v warm=%v; skipping\n",
				r.Dataset, r.Pruning, r.WarmStart)
			continue
		}
		limit := uint64(float64(want.allocs) * allocRegressionTolerance)
		status := "ok"
		if r.AllocsPerOp > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s pruning=%v warm=%v: %d allocs/op vs baseline %d (limit %d)",
				r.Dataset, r.Pruning, r.WarmStart, r.AllocsPerOp, want.allocs, limit))
		}
		// Pivot gate: skipped when the baseline predates the pivot counters
		// (its rows report zero pivots) or records a different warm setting.
		pivotLimit := int64(float64(want.pivots) * pivotRegressionTolerance)
		if want.pivots > 0 && r.Stats.Pivots > pivotLimit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s pruning=%v warm=%v: %d pivots/op vs baseline %d (limit %d)",
				r.Dataset, r.Pruning, r.WarmStart, r.Stats.Pivots, want.pivots, pivotLimit))
		}
		fmt.Printf("baseline %-4s %-5s pruning=%-5v warm=%-5v  %9d allocs/op vs %9d  %9d pivots/op vs %9d\n",
			status, r.Dataset, r.Pruning, r.WarmStart, r.AllocsPerOp, want.allocs,
			r.Stats.Pivots, want.pivots)
	}
	if len(failures) > 0 {
		return fmt.Errorf("workers=1 counters regressed beyond tolerance:\n  %s",
			joinLines(failures))
	}
	fmt.Println("baseline check passed")
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
