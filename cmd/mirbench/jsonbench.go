package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"mir/internal/core"
)

// The -json mode freezes the AA benchmark of bench_test.go into a
// machine-readable artifact: per product distribution (IND/COR/ANTI) and
// pruning setting, the wall time, allocation profile, and the
// arrangement's LP-call counters. CI regenerates the file on every run and
// uploads it, so performance regressions show up as diffs against the
// committed BENCH_AA.json rather than as anecdotes.
//
// The workload matches the in-repo Go benchmarks (BenchmarkAAParallel):
// |P|=5000, |U|=80 clustered users, d=3, k=10, m=|U|/2, Workers=1 for
// run-to-run determinism. Only the seed is taken from the command line.
const (
	jsonBenchP    = 5000
	jsonBenchU    = 80
	jsonBenchD    = 3
	jsonBenchK    = 10
	jsonBenchRuns = 3
)

// benchResult is one (dataset, pruning) cell of the benchmark matrix.
type benchResult struct {
	Dataset  string `json:"dataset"`
	Products int    `json:"products"`
	Users    int    `json:"users"`
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	M        int    `json:"m"`
	Pruning  bool   `json:"pruning"`
	Runs     int    `json:"runs"`

	// WallSeconds is the fastest of Runs measured executions (the standard
	// benchmarking convention: minimum wall time is the least noisy
	// estimator on a shared machine).
	WallSeconds float64 `json:"wall_seconds"`
	// AllocsPerOp and BytesPerOp are runtime.MemStats deltas (Mallocs,
	// TotalAlloc) averaged over the measured runs, matching the semantics
	// of testing.B's allocs/op and B/op.
	AllocsPerOp uint64 `json:"allocs_per_op"`
	BytesPerOp  uint64 `json:"bytes_per_op"`

	// Stats carries the algorithm counters, including the LP-call numbers:
	// ContainmentTests (classification feasibility solves), HullTests
	// (convex-hull membership solves), and PruneLPTests / PrunedRows from
	// split-time redundancy elimination.
	Stats core.Stats `json:"stats"`
}

// benchReport is the top-level BENCH_AA.json document.
type benchReport struct {
	Command   string        `json:"command"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"num_cpu"`
	Seed      int64         `json:"seed"`
	Results   []benchResult `json:"results"`
}

// runJSONBench measures the AA matrix and writes the report to path.
func runJSONBench(cfg config, path string) error {
	report := benchReport{
		Command:   "mirbench -json",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seed:      cfg.seed,
	}
	m := jsonBenchU / 2
	for _, dataset := range []string{"IND", "COR", "ANTI"} {
		inst := cfg.instance(dataset, "CL", jsonBenchP, jsonBenchU, jsonBenchD, jsonBenchK, 101)
		for _, pruning := range []bool{true, false} {
			opts := core.Options{Workers: 1, DisablePruning: !pruning}
			res := benchResult{
				Dataset:  dataset,
				Products: jsonBenchP,
				Users:    jsonBenchU,
				Dim:      jsonBenchD,
				K:        jsonBenchK,
				M:        m,
				Pruning:  pruning,
				Runs:     jsonBenchRuns,
			}
			// Warm-up run: populates the scratch pools and JIT-independent
			// caches so the measured runs see steady state, and supplies the
			// Stats (identical across runs at Workers=1).
			reg, err := core.AA(inst, m, opts)
			if err != nil {
				return fmt.Errorf("%s pruning=%v: %w", dataset, pruning, err)
			}
			res.Stats = reg.Stats

			var allocs, bytes uint64
			best := -1.0
			var ms0, ms1 runtime.MemStats
			for r := 0; r < jsonBenchRuns; r++ {
				runtime.GC()
				runtime.ReadMemStats(&ms0)
				start := time.Now()
				if _, err := core.AA(inst, m, opts); err != nil {
					return err
				}
				wall := time.Since(start).Seconds()
				runtime.ReadMemStats(&ms1)
				allocs += ms1.Mallocs - ms0.Mallocs
				bytes += ms1.TotalAlloc - ms0.TotalAlloc
				if best < 0 || wall < best {
					best = wall
				}
			}
			res.WallSeconds = best
			res.AllocsPerOp = allocs / jsonBenchRuns
			res.BytesPerOp = bytes / jsonBenchRuns
			report.Results = append(report.Results, res)
			fmt.Printf("%-5s pruning=%-5v  %8.3fs  %9d allocs/op  %9d prune-LPs  %6d rows pruned\n",
				dataset, pruning, res.WallSeconds, res.AllocsPerOp,
				res.Stats.PruneLPTests, res.Stats.PrunedRows)
		}
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
