package main

import (
	"fmt"

	"mir/internal/core"
	"mir/internal/data"
	"mir/internal/quadtree"
)

func init() {
	register("14a", "CO: mIR-based AA vs YZZL-style quadtree, varying m (HOUSE d=3, k=1)", fig14a)
	register("14b", "CO: mIR-based AA vs YZZL-style quadtree, varying d", fig14b)
	register("15a", "IS: exact solve time vs budget B (CL/TA/UN users)", fig15a)
	register("15b", "budgeted CO: solve time vs budget B", fig15b)
}

// coSetup mirrors the Figure 14 setup: d attributes of HOUSE, CL users
// with 1M vectors (scaled), k = 1.
func coSetup(cfg config, d int, off int64) *core.Instance {
	nU := scaled(1_000_000, cfg.scale/20, 40) // the CO experiment used 1M users
	nP := scaled(data.HouseN, cfg.scale, 300)
	return cfg.instance("HOUSE", "CL", nP, nU, d, 1, off)
}

// coSetup14b halves the user count per dimension above 3: the CO search
// frontier grows exponentially with d for both solvers.
func coSetup14b(cfg config, d int, off int64) *core.Instance {
	nU := scaled(1_000_000, cfg.scale/20, 40)
	for dd := 4; dd <= d; dd++ {
		nU /= 2
	}
	if nU < 40 {
		nU = 40
	}
	nP := scaled(data.HouseN, cfg.scale, 300)
	dd := d
	if dd > data.HouseD {
		dd = data.HouseD
	}
	return cfg.instance("HOUSE", "CL", nP, nU, dd, 1, off)
}

func fig14a(cfg config) {
	inst := coSetup(cfg, 3, 140)
	nU := len(inst.Users)
	qt := quadtree.DefaultSolver()
	header("m/|U|", "AA-CO(s)", "YZZL(s)", "speedup")
	for _, frac := range []float64{0.01, 0.03, 0.05, 0.1} {
		m := mOf(frac, nU)
		var aaCost float64
		aaS := timeIt(func() {
			res, err := core.SolveCOBestFirst(inst, m, core.L2Cost{}, core.Options{})
			if err != nil {
				panic(err)
			}
			aaCost = res.Cost
		})
		var qtCost float64
		qtErr := false
		qtS := timeIt(func() {
			res, err := qt.SolveCO(inst, m)
			if err != nil {
				qtErr = true
				return
			}
			qtCost = res.Cost
		})
		if qtErr {
			row(frac, aaS, "DNF", "-")
			continue
		}
		if diff := aaCost - qtCost; diff > 1e-4 || diff < -1e-4 {
			fmt.Printf("  WARNING: cost mismatch AA=%.6f YZZL=%.6f\n", aaCost, qtCost)
		}
		row(frac, aaS, qtS, qtS/aaS)
	}
}

func fig14b(cfg config) {
	header("d", "|U|", "AA-CO(s)", "YZZL(s)")
	for _, d := range []int{2, 3, 4, 5} {
		inst := coSetup14b(cfg, d, int64(145+d))
		m := mOf(0.05, len(inst.Users))
		aaS := timeIt(func() {
			if _, err := core.SolveCOBestFirst(inst, m, core.L2Cost{}, core.Options{}); err != nil {
				panic(err)
			}
		})
		// Emulate the paper's one-day cutoff with the node budget.
		qt := quadtree.Solver{MinLeaf: 1.0 / 16, MaxNodes: 300_000}
		qtOut := "DNF"
		if d <= 4 {
			secs := timeIt(func() {
				if _, err := qt.SolveCO(inst, m); err != nil {
					qtOut = "DNF"
				} else {
					qtOut = ""
				}
			})
			if qtOut == "" {
				qtOut = fmt.Sprintf("%.4f", secs)
			}
		}
		row(d, len(inst.Users), aaS, qtOut)
	}
	fmt.Println("(DNF mirrors the paper: YZZL fails to terminate for d >= 5)")
}

func fig15a(cfg config) {
	header("users", "budget B", "time(s)", "coverage")
	for _, kind := range []string{"CL", "TA", "UN"} {
		rng := cfg.rng(150)
		ps := cfg.products("IND", cfg.nP, cfg.d, rng)
		ws := cfg.users(kind, cfg.nU, cfg.d, rng)
		pIdx := rng.Intn(len(ps))
		for _, budget := range []float64{0.1, 0.2, 0.4, 0.8} {
			var cov int
			secs := timeIt(func() {
				res, err := core.SolveIS(ps, withK(ws, cfg.k), pIdx, budget, core.L2Cost{}, core.Options{})
				if err != nil {
					panic(err)
				}
				cov = res.Coverage
			})
			row(kind, budget, secs, cov)
		}
	}
}

func fig15b(cfg config) {
	header("users", "budget B", "time(s)", "coverage")
	for _, kind := range []string{"CL", "TA", "UN"} {
		inst := cfg.instance("IND", kind, cfg.nP, cfg.nU, cfg.d, cfg.k, 155)
		for _, budget := range []float64{0.7, 1.1, 1.5, 1.9} {
			var cov int
			secs := timeIt(func() {
				res, err := core.SolveBudgetedCO(inst, budget, core.L2Cost{}, core.Options{})
				if err != nil {
					panic(err)
				}
				cov = res.Coverage
			})
			row(kind, budget, secs, cov)
		}
	}
}
