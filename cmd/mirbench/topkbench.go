package main

import (
	"encoding/json"
	"fmt"
	"os"

	"mir/internal/geom"
	"mir/internal/topk"
)

// The -json-topk mode freezes the preprocessing benchmark into a
// machine-readable artifact: per product distribution (IND/COR/ANTI),
// dimensionality, and user cardinality, the layered index's build time,
// the indexed all-top-k wall time, and the scanned-products and
// layer-prune counters, next to the full-skyband scan they replace.
// CI regenerates the file on every run; the committed BENCH_TOPK.json is
// the reference the -baseline-topk gate compares against.
//
// The matrix follows the acceptance grid of the indexed-engine issue:
// |P|=20,000 products, k=10 for every user, IND/COR/ANTI at d=3..5 with
// |U|=20,000, plus a users axis |U| ∈ {10^4, 10^5, 10^6} at d=3 — the
// million-user preprocessing target. The indexed rows run at one worker:
// the search counters are deterministic for every worker count (see
// TestIndexAllTopKWorkersByteIdentical), so the single-worker rows are
// the reproducible reference, and wall times stay comparable across
// rows. The naive reference scans the kmax-skyband for every user, so
// its scanned-products/user is exactly |Skyband(k)| — no run needed for
// the reduction ratio — and its wall time is measured only where |U|
// keeps it affordable.
const (
	topkBenchP    = 20_000
	topkBenchK    = 10
	topkBenchRuns = 3
	// topkNaiveUserCap bounds the rows whose naive wall time is measured;
	// above it (the 10^6-user row) only the indexed engine runs and the
	// naive cost is reported through SkybandSize alone.
	topkNaiveUserCap = 200_000
)

// minTopkScanRatio is the aggregate reduction the indexed engine must
// deliver over the full-skyband scan: total products a skyband scan
// would score across the whole matrix, divided by the products the
// index actually scored. The counters behind it are deterministic, so
// the gate is exact — no tolerance.
const minTopkScanRatio = 5.0

// The kernel scan-wall sweep: for every d-sweep cell the full product
// matrix is scored against a fixed panel of the cell's first
// topkScanPanel users, once through the blocked kernels
// (geom.DotRows) and once through the historical scalar loops
// (geom.DotRowsScalar), same process, fresh-vs-fresh. This is the
// dot-product wall the layered index spends on every granule bound and
// block scan, isolated from heap traffic and index bookkeeping so the
// ratio measures the kernels and nothing else. The aggregate ratio
// (total scalar wall / total kernel wall across the matrix) must reach
// minKernelScanSpeedup; the per-cell ratios are recorded for the
// committed report. topkScanReps panel passes amortize timer
// resolution within each measured run.
const (
	topkScanPanel        = 64
	topkScanReps         = 3
	minKernelScanSpeedup = 2.0
)

// topkScanRegressionTolerance is the allowed growth of a cell's
// scanned-products/user over the committed baseline. Like the allocs/op
// and pivots/op gates, the counter is exactly reproducible for a fixed
// seed, so a >10% jump means the index's bounds got looser (a layer
// ordering change, a bound granularity regression), not noise.
const topkScanRegressionTolerance = 1.10

// topkBenchResult is one (dataset, dim, users) cell of the matrix.
type topkBenchResult struct {
	Dataset  string `json:"dataset"`
	Products int    `json:"products"`
	Users    int    `json:"users"`
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	Workers  int    `json:"workers"`
	Runs     int    `json:"runs"`

	// Layers and LayerSizes describe the built index: dominance-peel
	// bands, outermost first.
	Layers     int   `json:"layers"`
	LayerSizes []int `json:"layer_sizes"`

	// BuildSeconds is the one-off index construction cost; WallSeconds is
	// the fastest of Runs indexed all-top-k executions. NaiveWallSeconds
	// is a single full-skyband scan over the same users, 0 when skipped
	// (rows above topkNaiveUserCap).
	BuildSeconds     float64 `json:"build_seconds"`
	WallSeconds      float64 `json:"wall_seconds"`
	NaiveWallSeconds float64 `json:"naive_wall_seconds,omitempty"`

	// ScannedProducts and LayerPrunes are the search counters summed over
	// all users (deterministic for every worker count); the PerUser pair
	// divides by |U|. SkybandSize is what the naive path scores per user,
	// and Ratio = SkybandSize / ScannedPerUser is the reduction the
	// acceptance gate aggregates.
	ScannedProducts    int64   `json:"scanned_products"`
	LayerPrunes        int64   `json:"layer_prunes"`
	ScannedPerUser     float64 `json:"scanned_per_user"`
	LayerPrunesPerUser float64 `json:"layer_prunes_per_user"`
	SkybandSize        int     `json:"skyband_size"`
	Ratio              float64 `json:"ratio"`

	// ScanWallSeconds and ScanWallScalarSeconds are the kernel scan-wall
	// sweep (see the constants above): the wall of scoring the full
	// product matrix against the cell's user panel through the blocked
	// kernels and through the historical scalar loops. ScanSpeedup is
	// their ratio. Populated on the d-sweep cells only.
	ScanWallSeconds       float64 `json:"scan_wall_seconds,omitempty"`
	ScanWallScalarSeconds float64 `json:"scan_wall_scalar_seconds,omitempty"`
	ScanSpeedup           float64 `json:"scan_speedup,omitempty"`
}

// topkBenchReport is the top-level BENCH_TOPK.json document.
type topkBenchReport struct {
	Command string `json:"command"`
	hostMeta
	Seed           int64   `json:"seed"`
	AggregateRatio float64 `json:"aggregate_ratio"`
	// ScanSpeedup is the aggregate kernel scan-wall ratio: total scalar
	// sweep wall over total kernel sweep wall across every measured
	// cell. Gated at minKernelScanSpeedup by checkKernelScanSpeedup.
	ScanSpeedup float64           `json:"scan_speedup"`
	Results     []topkBenchResult `json:"results"`
}

// topkBenchCells is the measured grid: the d-sweep at |U|=20,000 for
// every distribution, then the users axis at d=3 on IND up to 10^6.
var topkBenchCells = []struct {
	dataset string
	dim     int
	users   int
}{
	{"IND", 3, 20_000}, {"IND", 4, 20_000}, {"IND", 5, 20_000},
	{"COR", 3, 20_000}, {"COR", 4, 20_000}, {"COR", 5, 20_000},
	{"ANTI", 3, 20_000}, {"ANTI", 4, 20_000}, {"ANTI", 5, 20_000},
	{"IND", 3, 10_000}, {"IND", 3, 100_000}, {"IND", 3, 1_000_000},
}

// runTopkBench measures the preprocessing matrix, writes the report to
// path, and enforces the aggregate scan-reduction gate. When
// baselinePath is non-empty the per-cell counters are additionally
// gated against the committed reference (see checkTopkBaseline).
func runTopkBench(cfg config, path, baselinePath string) error {
	report := topkBenchReport{
		Command:  "mirbench -json-topk",
		hostMeta: currentHost(),
		Seed:     cfg.seed,
	}
	var naiveTotal, indexedTotal float64
	for off, cell := range topkBenchCells {
		rng := cfg.rng(int64(3000 + off))
		ps := cfg.products(cell.dataset, topkBenchP, cell.dim, rng)
		us := withK(cfg.users("CL", cell.users, cell.dim, rng), topkBenchK)

		res := topkBenchResult{
			Dataset:  cell.dataset,
			Products: topkBenchP,
			Users:    cell.users,
			Dim:      cell.dim,
			K:        topkBenchK,
			Workers:  1,
			Runs:     topkBenchRuns,
		}

		var ix *topk.Index
		res.BuildSeconds = timeIt(func() { ix = topk.NewIndex(ps) })
		res.Layers = ix.NumLayers()
		res.LayerSizes = ix.LayerSizes()

		// Warm-up run supplies the counters (identical across runs and
		// worker counts); the measured runs take the minimum wall time.
		indexed, st := ix.AllTopKWorkers(us, 1)
		res.ScannedProducts = st.ScannedProducts
		res.LayerPrunes = st.LayerPrunes
		res.ScannedPerUser = float64(st.ScannedProducts) / float64(cell.users)
		res.LayerPrunesPerUser = float64(st.LayerPrunes) / float64(cell.users)
		best := -1.0
		for r := 0; r < topkBenchRuns; r++ {
			wall := timeIt(func() { indexed, _ = ix.AllTopKWorkers(us, 1) })
			if best < 0 || wall < best {
				best = wall
			}
		}
		res.WallSeconds = best

		// The scalar-kernel twin: the same index rerun on the historical
		// scalar loops. The kernels are bit-identical, so every result and
		// both search counters must match exactly — the scanned/user the
		// baseline gates is unchanged by the kernel setting, which is what
		// lets the scan-wall speedup below claim a free lunch.
		if cell.users <= topkNaiveUserCap {
			ix.SetKernels(false)
			scalarRes, scalarSt := ix.AllTopKWorkers(us, 1)
			ix.SetKernels(true)
			if scalarSt != st {
				return fmt.Errorf("%s d=%d |U|=%d: search counters diverge kernels on/off: %+v vs %+v",
					cell.dataset, cell.dim, cell.users, st, scalarSt)
			}
			for i := range scalarRes {
				if scalarRes[i] != indexed[i] {
					return fmt.Errorf("%s d=%d |U|=%d user %d: kernels %+v vs scalar %+v",
						cell.dataset, cell.dim, cell.users, i, indexed[i], scalarRes[i])
				}
			}
		}

		// The kernel scan-wall sweep, on the d-sweep cells (the users
		// axis reuses the d=3 matrix and would re-measure the same flat).
		if cell.users == 20_000 {
			flat := make([]float64, 0, len(ps)*cell.dim)
			for _, p := range ps {
				flat = append(flat, p...)
			}
			panel := make([]geom.Vector, 0, topkScanPanel)
			for i := 0; i < topkScanPanel && i < len(us); i++ {
				panel = append(panel, us[i].W)
			}
			out := make([]float64, len(ps))
			res.ScanWallSeconds = scanWall(flat, cell.dim, panel, out, geom.DotRows)
			res.ScanWallScalarSeconds = scanWall(flat, cell.dim, panel, out, geom.DotRowsScalar)
			res.ScanSpeedup = res.ScanWallScalarSeconds / res.ScanWallSeconds
		}

		res.SkybandSize = len(topk.Skyband(ps, topkBenchK))
		if cell.users <= topkNaiveUserCap {
			var naive []topk.KthResult
			res.NaiveWallSeconds = timeIt(func() { naive = topk.AllTopKWorkers(ps, us, 1) })
			for i := range naive {
				if naive[i] != indexed[i] {
					return fmt.Errorf("%s d=%d |U|=%d user %d: indexed %+v vs naive %+v",
						cell.dataset, cell.dim, cell.users, i, indexed[i], naive[i])
				}
			}
		}
		res.Ratio = float64(res.SkybandSize) / res.ScannedPerUser
		naiveTotal += float64(res.SkybandSize) * float64(cell.users)
		indexedTotal += float64(res.ScannedProducts)
		report.Results = append(report.Results, res)
		fmt.Printf("%-5s d=%d |U|=%-8d build %6.3fs  indexed %7.3fs  naive %7.3fs  %8.1f scanned/user  skyband %5d  %5.1fx\n",
			cell.dataset, cell.dim, cell.users, res.BuildSeconds, res.WallSeconds,
			res.NaiveWallSeconds, res.ScannedPerUser, res.SkybandSize, res.Ratio)
	}
	report.AggregateRatio = naiveTotal / indexedTotal
	var scanFast, scanScalar float64
	for _, r := range report.Results {
		scanFast += r.ScanWallSeconds
		scanScalar += r.ScanWallScalarSeconds
	}
	if scanFast > 0 {
		report.ScanSpeedup = scanScalar / scanFast
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (aggregate reduction %.1fx)\n", path, report.AggregateRatio)

	if report.AggregateRatio < minTopkScanRatio {
		return fmt.Errorf("indexed engine scanned too much: aggregate reduction %.2fx < required %.1fx",
			report.AggregateRatio, minTopkScanRatio)
	}
	if err := checkKernelScanSpeedup(report); err != nil {
		return err
	}
	if baselinePath != "" {
		return checkTopkBaseline(report, baselinePath)
	}
	return nil
}

// scanWall measures one side of the kernel scan-wall sweep: the best of
// topkBenchRuns measured runs, each scoring the full flat product
// matrix against every panel weight topkScanReps times through dot.
// The two sides run the identical loop with only the dot function
// swapped, so their ratio isolates the kernel.
func scanWall(flat []float64, d int, panel []geom.Vector,
	out []float64, dot func([]float64, int, geom.Vector, []float64)) float64 {
	best := -1.0
	for r := 0; r < topkBenchRuns; r++ {
		wall := timeIt(func() {
			for rep := 0; rep < topkScanReps; rep++ {
				for _, w := range panel {
					dot(flat, d, w, out)
				}
			}
		})
		if best < 0 || wall < best {
			best = wall
		}
	}
	return best
}

// checkKernelScanSpeedup gates the kernel sweep: the aggregate
// scalar/kernel wall ratio must reach minKernelScanSpeedup. Both sides
// are measured in the same process moments apart (fresh vs fresh), so
// machine speed divides out and the gate holds on any host.
func checkKernelScanSpeedup(report topkBenchReport) error {
	cells := 0
	for _, r := range report.Results {
		if r.ScanWallSeconds > 0 {
			cells++
			fmt.Printf("kernel scan %-5s d=%d: %7.4fs kernels vs %7.4fs scalar  %.2fx\n",
				r.Dataset, r.Dim, r.ScanWallSeconds, r.ScanWallScalarSeconds, r.ScanSpeedup)
		}
	}
	if cells == 0 {
		fmt.Println("kernel scan: no sweep cells in report; skipping")
		return nil
	}
	fmt.Printf("kernel scan aggregate: %.2fx (floor %.1fx)\n", report.ScanSpeedup, minKernelScanSpeedup)
	if report.ScanSpeedup < minKernelScanSpeedup {
		return fmt.Errorf("kernel scan speedup %.2fx below required %.1fx",
			report.ScanSpeedup, minKernelScanSpeedup)
	}
	return nil
}

// checkTopkBaseline compares the fresh report's scanned-products/user
// against the committed BENCH_TOPK.json, cell by cell. Every gated
// counter is deterministic at a fixed seed, so — like the allocs/op and
// pivots/op gates — a miss is a real regression, not noise. Wall and
// build times never gate.
func checkTopkBaseline(fresh topkBenchReport, baselinePath string) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("topk baseline: %w", err)
	}
	var base topkBenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("topk baseline %s: %w", baselinePath, err)
	}
	type key struct {
		dataset    string
		dim, users int
	}
	ref := make(map[key]float64)
	for _, r := range base.Results {
		ref[key{r.Dataset, r.Dim, r.Users}] = r.ScannedPerUser
	}
	if len(ref) == 0 {
		return fmt.Errorf("topk baseline %s: no cells to compare against", baselinePath)
	}
	var failures []string
	for _, r := range fresh.Results {
		want, ok := ref[key{r.Dataset, r.Dim, r.Users}]
		if !ok {
			fmt.Printf("topk baseline: no reference for %s d=%d |U|=%d; skipping\n",
				r.Dataset, r.Dim, r.Users)
			continue
		}
		limit := want * topkScanRegressionTolerance
		status := "ok"
		if r.ScannedPerUser > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s d=%d |U|=%d: %.1f scanned/user vs baseline %.1f (limit %.1f)",
				r.Dataset, r.Dim, r.Users, r.ScannedPerUser, want, limit))
		}
		fmt.Printf("topk baseline %-4s %-5s d=%d |U|=%-8d  %8.1f scanned/user vs %8.1f\n",
			status, r.Dataset, r.Dim, r.Users, r.ScannedPerUser, want)
	}
	if len(failures) > 0 {
		return fmt.Errorf("scanned-products counters regressed beyond tolerance:\n  %s",
			joinLines(failures))
	}
	fmt.Println("topk baseline check passed")
	return nil
}
