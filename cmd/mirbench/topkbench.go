package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"mir/internal/topk"
)

// The -json-topk mode freezes the preprocessing benchmark into a
// machine-readable artifact: per product distribution (IND/COR/ANTI),
// dimensionality, and user cardinality, the layered index's build time,
// the indexed all-top-k wall time, and the scanned-products and
// layer-prune counters, next to the full-skyband scan they replace.
// CI regenerates the file on every run; the committed BENCH_TOPK.json is
// the reference the -baseline-topk gate compares against.
//
// The matrix follows the acceptance grid of the indexed-engine issue:
// |P|=20,000 products, k=10 for every user, IND/COR/ANTI at d=3..5 with
// |U|=20,000, plus a users axis |U| ∈ {10^4, 10^5, 10^6} at d=3 — the
// million-user preprocessing target. The indexed rows run at one worker:
// the search counters are deterministic for every worker count (see
// TestIndexAllTopKWorkersByteIdentical), so the single-worker rows are
// the reproducible reference, and wall times stay comparable across
// rows. The naive reference scans the kmax-skyband for every user, so
// its scanned-products/user is exactly |Skyband(k)| — no run needed for
// the reduction ratio — and its wall time is measured only where |U|
// keeps it affordable.
const (
	topkBenchP    = 20_000
	topkBenchK    = 10
	topkBenchRuns = 3
	// topkNaiveUserCap bounds the rows whose naive wall time is measured;
	// above it (the 10^6-user row) only the indexed engine runs and the
	// naive cost is reported through SkybandSize alone.
	topkNaiveUserCap = 200_000
)

// minTopkScanRatio is the aggregate reduction the indexed engine must
// deliver over the full-skyband scan: total products a skyband scan
// would score across the whole matrix, divided by the products the
// index actually scored. The counters behind it are deterministic, so
// the gate is exact — no tolerance.
const minTopkScanRatio = 5.0

// topkScanRegressionTolerance is the allowed growth of a cell's
// scanned-products/user over the committed baseline. Like the allocs/op
// and pivots/op gates, the counter is exactly reproducible for a fixed
// seed, so a >10% jump means the index's bounds got looser (a layer
// ordering change, a bound granularity regression), not noise.
const topkScanRegressionTolerance = 1.10

// topkBenchResult is one (dataset, dim, users) cell of the matrix.
type topkBenchResult struct {
	Dataset  string `json:"dataset"`
	Products int    `json:"products"`
	Users    int    `json:"users"`
	Dim      int    `json:"dim"`
	K        int    `json:"k"`
	Workers  int    `json:"workers"`
	Runs     int    `json:"runs"`

	// Layers and LayerSizes describe the built index: dominance-peel
	// bands, outermost first.
	Layers     int   `json:"layers"`
	LayerSizes []int `json:"layer_sizes"`

	// BuildSeconds is the one-off index construction cost; WallSeconds is
	// the fastest of Runs indexed all-top-k executions. NaiveWallSeconds
	// is a single full-skyband scan over the same users, 0 when skipped
	// (rows above topkNaiveUserCap).
	BuildSeconds     float64 `json:"build_seconds"`
	WallSeconds      float64 `json:"wall_seconds"`
	NaiveWallSeconds float64 `json:"naive_wall_seconds,omitempty"`

	// ScannedProducts and LayerPrunes are the search counters summed over
	// all users (deterministic for every worker count); the PerUser pair
	// divides by |U|. SkybandSize is what the naive path scores per user,
	// and Ratio = SkybandSize / ScannedPerUser is the reduction the
	// acceptance gate aggregates.
	ScannedProducts    int64   `json:"scanned_products"`
	LayerPrunes        int64   `json:"layer_prunes"`
	ScannedPerUser     float64 `json:"scanned_per_user"`
	LayerPrunesPerUser float64 `json:"layer_prunes_per_user"`
	SkybandSize        int     `json:"skyband_size"`
	Ratio              float64 `json:"ratio"`
}

// topkBenchReport is the top-level BENCH_TOPK.json document.
type topkBenchReport struct {
	Command        string            `json:"command"`
	GoVersion      string            `json:"go_version"`
	GOOS           string            `json:"goos"`
	GOARCH         string            `json:"goarch"`
	NumCPU         int               `json:"num_cpu"`
	Seed           int64             `json:"seed"`
	AggregateRatio float64           `json:"aggregate_ratio"`
	Results        []topkBenchResult `json:"results"`
}

// topkBenchCells is the measured grid: the d-sweep at |U|=20,000 for
// every distribution, then the users axis at d=3 on IND up to 10^6.
var topkBenchCells = []struct {
	dataset string
	dim     int
	users   int
}{
	{"IND", 3, 20_000}, {"IND", 4, 20_000}, {"IND", 5, 20_000},
	{"COR", 3, 20_000}, {"COR", 4, 20_000}, {"COR", 5, 20_000},
	{"ANTI", 3, 20_000}, {"ANTI", 4, 20_000}, {"ANTI", 5, 20_000},
	{"IND", 3, 10_000}, {"IND", 3, 100_000}, {"IND", 3, 1_000_000},
}

// runTopkBench measures the preprocessing matrix, writes the report to
// path, and enforces the aggregate scan-reduction gate. When
// baselinePath is non-empty the per-cell counters are additionally
// gated against the committed reference (see checkTopkBaseline).
func runTopkBench(cfg config, path, baselinePath string) error {
	report := topkBenchReport{
		Command:   "mirbench -json-topk",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Seed:      cfg.seed,
	}
	var naiveTotal, indexedTotal float64
	for off, cell := range topkBenchCells {
		rng := cfg.rng(int64(3000 + off))
		ps := cfg.products(cell.dataset, topkBenchP, cell.dim, rng)
		us := withK(cfg.users("CL", cell.users, cell.dim, rng), topkBenchK)

		res := topkBenchResult{
			Dataset:  cell.dataset,
			Products: topkBenchP,
			Users:    cell.users,
			Dim:      cell.dim,
			K:        topkBenchK,
			Workers:  1,
			Runs:     topkBenchRuns,
		}

		var ix *topk.Index
		res.BuildSeconds = timeIt(func() { ix = topk.NewIndex(ps) })
		res.Layers = ix.NumLayers()
		res.LayerSizes = ix.LayerSizes()

		// Warm-up run supplies the counters (identical across runs and
		// worker counts); the measured runs take the minimum wall time.
		indexed, st := ix.AllTopKWorkers(us, 1)
		res.ScannedProducts = st.ScannedProducts
		res.LayerPrunes = st.LayerPrunes
		res.ScannedPerUser = float64(st.ScannedProducts) / float64(cell.users)
		res.LayerPrunesPerUser = float64(st.LayerPrunes) / float64(cell.users)
		best := -1.0
		for r := 0; r < topkBenchRuns; r++ {
			wall := timeIt(func() { indexed, _ = ix.AllTopKWorkers(us, 1) })
			if best < 0 || wall < best {
				best = wall
			}
		}
		res.WallSeconds = best

		res.SkybandSize = len(topk.Skyband(ps, topkBenchK))
		if cell.users <= topkNaiveUserCap {
			var naive []topk.KthResult
			res.NaiveWallSeconds = timeIt(func() { naive = topk.AllTopKWorkers(ps, us, 1) })
			for i := range naive {
				if naive[i] != indexed[i] {
					return fmt.Errorf("%s d=%d |U|=%d user %d: indexed %+v vs naive %+v",
						cell.dataset, cell.dim, cell.users, i, indexed[i], naive[i])
				}
			}
		}
		res.Ratio = float64(res.SkybandSize) / res.ScannedPerUser
		naiveTotal += float64(res.SkybandSize) * float64(cell.users)
		indexedTotal += float64(res.ScannedProducts)
		report.Results = append(report.Results, res)
		fmt.Printf("%-5s d=%d |U|=%-8d build %6.3fs  indexed %7.3fs  naive %7.3fs  %8.1f scanned/user  skyband %5d  %5.1fx\n",
			cell.dataset, cell.dim, cell.users, res.BuildSeconds, res.WallSeconds,
			res.NaiveWallSeconds, res.ScannedPerUser, res.SkybandSize, res.Ratio)
	}
	report.AggregateRatio = naiveTotal / indexedTotal

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (aggregate reduction %.1fx)\n", path, report.AggregateRatio)

	if report.AggregateRatio < minTopkScanRatio {
		return fmt.Errorf("indexed engine scanned too much: aggregate reduction %.2fx < required %.1fx",
			report.AggregateRatio, minTopkScanRatio)
	}
	if baselinePath != "" {
		return checkTopkBaseline(report, baselinePath)
	}
	return nil
}

// checkTopkBaseline compares the fresh report's scanned-products/user
// against the committed BENCH_TOPK.json, cell by cell. Every gated
// counter is deterministic at a fixed seed, so — like the allocs/op and
// pivots/op gates — a miss is a real regression, not noise. Wall and
// build times never gate.
func checkTopkBaseline(fresh topkBenchReport, baselinePath string) error {
	buf, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("topk baseline: %w", err)
	}
	var base topkBenchReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("topk baseline %s: %w", baselinePath, err)
	}
	type key struct {
		dataset    string
		dim, users int
	}
	ref := make(map[key]float64)
	for _, r := range base.Results {
		ref[key{r.Dataset, r.Dim, r.Users}] = r.ScannedPerUser
	}
	if len(ref) == 0 {
		return fmt.Errorf("topk baseline %s: no cells to compare against", baselinePath)
	}
	var failures []string
	for _, r := range fresh.Results {
		want, ok := ref[key{r.Dataset, r.Dim, r.Users}]
		if !ok {
			fmt.Printf("topk baseline: no reference for %s d=%d |U|=%d; skipping\n",
				r.Dataset, r.Dim, r.Users)
			continue
		}
		limit := want * topkScanRegressionTolerance
		status := "ok"
		if r.ScannedPerUser > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s d=%d |U|=%d: %.1f scanned/user vs baseline %.1f (limit %.1f)",
				r.Dataset, r.Dim, r.Users, r.ScannedPerUser, want, limit))
		}
		fmt.Printf("topk baseline %-4s %-5s d=%d |U|=%-8d  %8.1f scanned/user vs %8.1f\n",
			status, r.Dataset, r.Dim, r.Users, r.ScannedPerUser, want)
	}
	if len(failures) > 0 {
		return fmt.Errorf("scanned-products counters regressed beyond tolerance:\n  %s",
			joinLines(failures))
	}
	fmt.Println("topk baseline check passed")
	return nil
}
