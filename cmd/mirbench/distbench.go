package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"

	"mir/internal/core"
	"mir/internal/dist"
)

// The executor axis of the AA matrix: the shard-tier configuration run
// through the multi-process worker pool (internal/dist.ProcPool), as a
// twin of the in-process row with the same shape. Three gates run
// fresh-vs-fresh on every invocation that produces executor rows:
//
//   - identity: the pool row's algorithmic Stats must equal its
//     in-process twin's exactly (transport counters excluded), and the
//     merged regions are compared cell for cell, coordinate for
//     coordinate, before the row is even recorded — the cross-process
//     byte-identity contract, enforced on real bench workloads, not
//     just unit-test instances. The row must also prove the
//     multi-process path actually ran: every shard dispatched to a
//     worker, none fallen back in-process.
//   - wall: the pool build must stay within distWallFactorMax of the
//     in-process twin. Multi-process execution pays real overhead
//     (fork+exec, a per-worker instance rebuild, frame codecs) that
//     in-process sharing gets for free, so on small instances the pool
//     LOSES — the gate bounds the loss rather than pretending there is
//     a win to measure. Fresh-vs-fresh, so machine speed divides out.
//   - RSS: no worker process may exceed distWorkerRSSCeilingBytes peak
//     resident set. This is the GC-isolation argument made checkable:
//     each worker's heap holds one shard's arrangement plus one
//     instance, bounded regardless of how many shards the whole build
//     has, where the single-process build accumulates every shard in
//     one heap. (Skipped, with a notice, where the platform reports no
//     rusage.)
const (
	distShards      = 4
	distPoolWorkers = 2
	// distWallFactorMax tolerates the pool's fixed overhead on the small
	// bench tier: two worker spawns, two instance rebuilds (the rebuild
	// repeats the parent's preprocessing), and the frame round-trips.
	// On production-sized instances the per-shard work dominates and the
	// real factor approaches 1; the bench tier is deliberately small, so
	// the bound is generous without being vacuous.
	distWallFactorMax = 3.0
	// distWorkerRSSCeilingBytes bounds one worker process's peak RSS:
	// instance (|P|=5000, |U|=160, d=3) + one shard's arrangement + Go
	// runtime, measured well under 200 MiB; 512 MiB is the alarm line
	// for a worker suddenly holding more than its shard.
	distWorkerRSSCeilingBytes = 512 << 20
)

// runDistBench is the -json-dist mode (`make bench-dist`): just the
// shard tier's executor axis — in-process and procpool twins at Shards ∈
// {2, distShards} — written to path and gated by checkDistExecutor.
// The full -json matrix also grows a procpool row; this mode is the
// cheap, focused regeneration CI runs in bench-check.
func runDistBench(cfg config, path string) error {
	report := benchReport{
		Command:  "mirbench -json-dist",
		hostMeta: currentHost(),
		Seed:     cfg.seed,
	}
	inst := cfg.instance("IND", "CL", jsonBenchP, jsonShardU, jsonBenchD, jsonBenchK, 101)
	shardsList := []int{2, distShards}
	twins := make(map[int]*core.Region, len(shardsList))
	for _, shards := range shardsList {
		opts := core.Options{Workers: jsonShardWorkers, Shards: shards}
		res := benchResult{
			Dataset:   "IND",
			Products:  jsonBenchP,
			Users:     jsonShardU,
			Dim:       jsonBenchD,
			K:         jsonBenchK,
			M:         jsonShardM,
			Pruning:   true,
			WarmStart: true,
			Workers:   jsonShardWorkers,
			Shards:    shards,
			Runs:      jsonBenchRuns,
		}
		reg, err := measureAA(inst, jsonShardM, opts, &res)
		if err != nil {
			return fmt.Errorf("dist tier inproc shards=%d: %w", shards, err)
		}
		twins[shards] = reg
		report.Results = append(report.Results, res)
		fmt.Printf("IND   |U|=%d shards=%d workers=%d inproc    %8.3fs  cells=%d\n",
			jsonShardU, shards, jsonShardWorkers, res.WallSeconds, res.Stats.Cells)
	}
	if err := measureDistRows(&report, inst, shardsList, twins); err != nil {
		return err
	}
	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return checkDistExecutor(report)
}

// measureDistRows appends one procpool row per shard count, running the
// cell-for-cell differential against the in-process twin region before
// anything is recorded: a divergence is a correctness failure, not a
// number in a report.
func measureDistRows(report *benchReport, inst *core.Instance, shardsList []int, twins map[int]*core.Region) error {
	for _, shards := range shardsList {
		opts := core.Options{Workers: jsonShardWorkers, Shards: shards}
		pool := &dist.ProcPool{Workers: distPoolWorkers}
		res := benchResult{
			Dataset:   "IND",
			Products:  jsonBenchP,
			Users:     jsonShardU,
			Dim:       jsonBenchD,
			K:         jsonBenchK,
			M:         jsonShardM,
			Pruning:   true,
			WarmStart: true,
			Workers:   jsonShardWorkers,
			Shards:    shards,
			Executor:  pool.Name(),
			Runs:      jsonBenchRuns,
		}
		reg, err := measureBuild(func() (*core.Region, error) {
			return pool.BuildRegion(inst, jsonShardM, opts)
		}, &res)
		if err != nil {
			return fmt.Errorf("dist tier procpool shards=%d: %w", shards, err)
		}
		res.WorkerMaxRSSBytes = pool.Info().MaxWorkerRSSBytes
		if twin := twins[shards]; twin != nil {
			if err := regionsEqualExact(twin, reg); err != nil {
				return fmt.Errorf("executor differential shards=%d: in-process and procpool regions diverge: %w", shards, err)
			}
			fmt.Printf("executor differential shards=%d: %d cells byte-identical across executors\n",
				shards, len(reg.Cells))
		}
		report.Results = append(report.Results, res)
		fmt.Printf("IND   |U|=%d shards=%d workers=%d procpool  %8.3fs  shipped=%dB  respawns=%d  workerRSS=%dMB\n",
			jsonShardU, shards, jsonShardWorkers, res.WallSeconds, res.Stats.ShippedBytes,
			res.Stats.RespawnedWorkers, res.WorkerMaxRSSBytes>>20)
	}
	return nil
}

// regionsEqualExact compares two regions cell for cell with bitwise
// float equality — the differential half of the executor gate.
func regionsEqualExact(want, got *core.Region) error {
	if want.Dim != got.Dim || want.M != got.M {
		return fmt.Errorf("shape: dim %d/%d m %d/%d", want.Dim, got.Dim, want.M, got.M)
	}
	if len(want.Cells) != len(got.Cells) {
		return fmt.Errorf("%d cells vs %d", len(got.Cells), len(want.Cells))
	}
	for i := range want.Cells {
		wc, gc := want.Cells[i], got.Cells[i]
		if len(wc.Hs) != len(gc.Hs) {
			return fmt.Errorf("cell %d: %d halfspaces vs %d", i, len(gc.Hs), len(wc.Hs))
		}
		for j := range wc.Hs {
			if math.Float64bits(wc.Hs[j].T) != math.Float64bits(gc.Hs[j].T) {
				return fmt.Errorf("cell %d halfspace %d: thresholds differ", i, j)
			}
			for d := range wc.Hs[j].W {
				if math.Float64bits(wc.Hs[j].W[d]) != math.Float64bits(gc.Hs[j].W[d]) {
					return fmt.Errorf("cell %d halfspace %d coord %d: coefficients differ", i, j, d)
				}
			}
		}
	}
	return nil
}

// scrubTransportStats zeroes the counters outside the executor identity
// contract before row comparison: the transport counters only the pool
// sets, and the scheduling-sensitive pair (already zeroed by
// measureBuild, zeroed again here so the gate does not depend on that).
func scrubTransportStats(s core.Stats) core.Stats {
	s.StealCount = 0
	s.MaxFrontier = 0
	s.DispatchedShards = 0
	s.RespawnedWorkers = 0
	s.FallbackInProcess = 0
	s.ShippedBytes = 0
	return s
}

// checkDistExecutor gates every executor row of a fresh report against
// its in-process twin (same dataset, users, workers, shards; Executor
// empty). Reports without executor rows (legacy, -json-topk, …) pass
// with a notice.
func checkDistExecutor(report benchReport) error {
	type key struct {
		dataset string
		users   int
		workers int
		shards  int
	}
	inproc := make(map[key]benchResult)
	for _, r := range report.Results {
		if r.Executor == "" {
			inproc[key{r.Dataset, r.Users, r.Workers, r.Shards}] = r
		}
	}
	var failures []string
	checked := 0
	for _, r := range report.Results {
		if r.Executor == "" {
			continue
		}
		checked++
		tag := fmt.Sprintf("%s |U|=%d shards=%d executor=%s", r.Dataset, r.Users, r.Shards, r.Executor)
		twin, ok := inproc[key{r.Dataset, r.Users, r.Workers, r.Shards}]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: no in-process twin row in report", tag))
			continue
		}
		if got, want := scrubTransportStats(r.Stats), scrubTransportStats(twin.Stats); got != want {
			failures = append(failures, fmt.Sprintf(
				"%s: algorithmic stats diverge from in-process twin:\n    inproc   %+v\n    %s %+v",
				tag, want, r.Executor, got))
		}
		if r.Stats.DispatchedShards != r.Shards || r.Stats.FallbackInProcess != 0 {
			failures = append(failures, fmt.Sprintf(
				"%s: multi-process path did not run all shards (dispatched %d of %d, fallback %d)",
				tag, r.Stats.DispatchedShards, r.Shards, r.Stats.FallbackInProcess))
		}
		if r.Stats.ShippedBytes <= 0 {
			failures = append(failures, fmt.Sprintf("%s: no bytes shipped recorded", tag))
		}
		factor := r.WallSeconds / twin.WallSeconds
		fmt.Printf("dist wall shards=%d: procpool %.3fs vs inproc %.3fs = %.2fx (limit %.1fx)\n",
			r.Shards, r.WallSeconds, twin.WallSeconds, factor, distWallFactorMax)
		if factor > distWallFactorMax {
			failures = append(failures, fmt.Sprintf(
				"%s: wall %.3fs is %.2fx the in-process twin's %.3fs (limit %.1fx)",
				tag, r.WallSeconds, factor, twin.WallSeconds, distWallFactorMax))
		}
		if r.WorkerMaxRSSBytes > 0 {
			fmt.Printf("dist rss shards=%d: worker peak %d MiB (ceiling %d MiB)\n",
				r.Shards, r.WorkerMaxRSSBytes>>20, int64(distWorkerRSSCeilingBytes)>>20)
			if r.WorkerMaxRSSBytes > distWorkerRSSCeilingBytes {
				failures = append(failures, fmt.Sprintf(
					"%s: worker peak RSS %d bytes exceeds ceiling %d",
					tag, r.WorkerMaxRSSBytes, int64(distWorkerRSSCeilingBytes)))
			}
		} else {
			fmt.Printf("dist rss shards=%d: no rusage on this platform; ceiling not enforced\n", r.Shards)
		}
	}
	if checked == 0 {
		fmt.Println("dist executor: no executor rows in report; skipping")
		return nil
	}
	if len(failures) > 0 {
		return fmt.Errorf("dist executor gates failed:\n  %s", joinLines(failures))
	}
	fmt.Println("dist executor check passed")
	return nil
}
