package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeReport marshals any report to a temp file for a comparator to read
// as its committed baseline.
func writeReport(t *testing.T, v any) string {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestBaselineComparators drives all three -baseline* gates (AA allocs
// and pivots, TOPK scanned/user, DYN locality) through a pass case and a
// regression case each, and pins the failure-message contract: every
// failure names the offending row and states the observed value against
// the allowed limit, so a CI log is actionable without rerunning
// anything.
func TestBaselineComparators(t *testing.T) {
	aaRow := func(allocs uint64, pivots int64) benchResult {
		r := benchResult{Dataset: "COR", Pruning: true, WarmStart: true, Workers: 1, AllocsPerOp: allocs}
		r.Stats.Pivots = pivots
		return r
	}
	topkRow := func(scanned float64) topkBenchResult {
		return topkBenchResult{Dataset: "ANTI", Dim: 4, Users: 5000, ScannedPerUser: scanned}
	}
	dynRows := func(routedTouched float64) []dynResult {
		return []dynResult{
			{Dataset: "IND", Users: 64, Workers: 1, Routed: true,
				TouchedLeavesPerEvent: routedTouched, EventsPerSec: 1000},
			{Dataset: "IND", Users: 64, Workers: 1, Routed: false,
				TouchedLeavesPerEvent: 200, EventsPerSec: 1000},
		}
	}

	cases := []struct {
		name string
		// pass must accept; fail must reject with every wantInMsg substring
		// (the row identity, the observed value, and the allowed value).
		pass      func() error
		fail      func() error
		wantInMsg []string
	}{
		{
			name: "AA allocs",
			pass: func() error {
				base := benchReport{Results: []benchResult{aaRow(100_000, 0)}}
				fresh := benchReport{Results: []benchResult{aaRow(105_000, 0)}}
				return checkBaseline(fresh, writeReport(t, base))
			},
			fail: func() error {
				base := benchReport{Results: []benchResult{aaRow(100_000, 0)}}
				fresh := benchReport{Results: []benchResult{aaRow(120_000, 0)}}
				return checkBaseline(fresh, writeReport(t, base))
			},
			wantInMsg: []string{"COR pruning=true warm=true", "120000 allocs/op", "baseline 100000", "limit 110000"},
		},
		{
			name: "AA pivots",
			pass: func() error {
				base := benchReport{Results: []benchResult{aaRow(100_000, 1000)}}
				fresh := benchReport{Results: []benchResult{aaRow(100_000, 1050)}}
				return checkBaseline(fresh, writeReport(t, base))
			},
			fail: func() error {
				base := benchReport{Results: []benchResult{aaRow(100_000, 1000)}}
				fresh := benchReport{Results: []benchResult{aaRow(100_000, 1200)}}
				return checkBaseline(fresh, writeReport(t, base))
			},
			wantInMsg: []string{"COR pruning=true warm=true", "1200 pivots/op", "baseline 1000", "limit 1100"},
		},
		{
			name: "TOPK scanned per user",
			pass: func() error {
				base := topkBenchReport{Results: []topkBenchResult{topkRow(100)}}
				fresh := topkBenchReport{Results: []topkBenchResult{topkRow(105)}}
				return checkTopkBaseline(fresh, writeReport(t, base))
			},
			fail: func() error {
				base := topkBenchReport{Results: []topkBenchResult{topkRow(100)}}
				fresh := topkBenchReport{Results: []topkBenchResult{topkRow(150)}}
				return checkTopkBaseline(fresh, writeReport(t, base))
			},
			wantInMsg: []string{"ANTI d=4 |U|=5000", "150.0 scanned/user", "baseline 100.0", "limit 110.0"},
		},
		{
			name: "DYN touched leaves",
			pass: func() error {
				base := dynReport{Results: dynRows(10)}
				fresh := dynReport{Results: dynRows(10.5)}
				return checkDynBaseline(fresh, writeReport(t, base))
			},
			fail: func() error {
				base := dynReport{Results: dynRows(10)}
				fresh := dynReport{Results: dynRows(20)}
				return checkDynBaseline(fresh, writeReport(t, base))
			},
			wantInMsg: []string{"IND |U|=64 workers=1 routed=true", "20.0 touched leaves/event", "baseline 10.0", "limit 11.0"},
		},
		{
			name: "DYN locality floor",
			pass: func() error {
				// Routed touches 40, sweep 200: exactly the 5x floor.
				base := dynReport{Results: dynRows(40)}
				fresh := dynReport{Results: dynRows(40)}
				return checkDynBaseline(fresh, writeReport(t, base))
			},
			fail: func() error {
				// 50 × 5 > 200: the routed rows lost their locality edge even
				// though they match the committed baseline exactly.
				base := dynReport{Results: dynRows(50)}
				fresh := dynReport{Results: dynRows(50)}
				return checkDynBaseline(fresh, writeReport(t, base))
			},
			wantInMsg: []string{"IND |U|=64", "routed touches 50.0 leaves/event", "sweep 200.0", "5x locality floor"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.pass(); err != nil {
				t.Fatalf("within-tolerance report rejected: %v", err)
			}
			err := tc.fail()
			if err == nil {
				t.Fatal("regressed report accepted")
			}
			for _, want := range tc.wantInMsg {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("failure message missing %q:\n%v", want, err)
				}
			}
		})
	}
}

// TestKernelIdentityGate drives checkKernelIdentity through its three
// outcomes: a scalar row whose Stats match its kernels-on twin passes, a
// counter divergence fails naming both stat blocks, and an orphaned
// scalar row fails asking for its twin. Wall times never influence the
// verdict — only the counters gate.
func TestKernelIdentityGate(t *testing.T) {
	kernelRow := func(scalar bool, pivots int64, wall float64) benchResult {
		r := benchResult{Dataset: "IND", Pruning: true, WarmStart: true,
			ScalarKernels: scalar, Workers: 1, Shards: 1, WallSeconds: wall}
		r.Stats.Pivots = pivots
		return r
	}

	pass := benchReport{Results: []benchResult{kernelRow(false, 5000, 1.0), kernelRow(true, 5000, 2.0)}}
	if err := checkKernelIdentity(pass); err != nil {
		t.Fatalf("identical stats rejected: %v", err)
	}
	// A report with no scalar rows (legacy baselines) is not an error.
	legacy := benchReport{Results: []benchResult{kernelRow(false, 5000, 1.0)}}
	if err := checkKernelIdentity(legacy); err != nil {
		t.Fatalf("legacy report rejected: %v", err)
	}

	diverged := benchReport{Results: []benchResult{kernelRow(false, 5000, 1.0), kernelRow(true, 5001, 2.0)}}
	err := checkKernelIdentity(diverged)
	if err == nil {
		t.Fatal("diverging pivot counters accepted")
	}
	for _, want := range []string{"IND pruning=true warm=true workers=1", "stats diverge between kernels on and off"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("failure message missing %q:\n%v", want, err)
		}
	}

	orphan := benchReport{Results: []benchResult{kernelRow(true, 5000, 2.0)}}
	err = checkKernelIdentity(orphan)
	if err == nil {
		t.Fatal("orphaned scalar row accepted")
	}
	if !strings.Contains(err.Error(), "no kernels-on twin") {
		t.Errorf("failure message missing twin complaint:\n%v", err)
	}
}

// TestKernelScanSpeedupGate pins the >=2x kernel sweep floor: an
// aggregate at the floor passes, below it fails stating both numbers,
// and a report without sweep cells (legacy) is skipped, not failed.
func TestKernelScanSpeedupGate(t *testing.T) {
	mk := func(fast, scalar float64) topkBenchReport {
		r := topkBenchReport{ScanSpeedup: scalar / fast}
		r.Results = []topkBenchResult{{Dataset: "IND", Dim: 3,
			ScanWallSeconds: fast, ScanWallScalarSeconds: scalar, ScanSpeedup: scalar / fast}}
		return r
	}
	if err := checkKernelScanSpeedup(mk(1.0, 2.0)); err != nil {
		t.Fatalf("at-floor speedup rejected: %v", err)
	}
	if err := checkKernelScanSpeedup(topkBenchReport{}); err != nil {
		t.Fatalf("legacy report without sweep cells rejected: %v", err)
	}
	err := checkKernelScanSpeedup(mk(1.0, 1.5))
	if err == nil {
		t.Fatal("below-floor speedup accepted")
	}
	for _, want := range []string{"1.50x", "2.0x"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("failure message missing %q:\n%v", want, err)
		}
	}
}

// TestShardScalingGate drives checkShardScaling through its four gates
// (prescreen floor, balance floor, per-shard allocation ceiling, and the
// CPU-conditioned wall floor) with synthetic shard rows, pinning both the
// accept/reject decisions and the failure-message contract.
func TestShardScalingGate(t *testing.T) {
	// shardTier builds the full Shards ∈ jsonShardMatrix row set for one
	// report: a healthy single-tree reference plus multi-shard rows whose
	// Shards=8 entry the individual cases then perturb.
	shardTier := func() []benchResult {
		rows := make([]benchResult, 0, len(jsonShardMatrix))
		for _, s := range jsonShardMatrix {
			r := benchResult{
				Dataset: "IND", Users: jsonShardU, Workers: jsonShardWorkers,
				Shards: s, BytesPerOp: 200_000_000, WallSeconds: 4.0,
			}
			r.Stats.Cells = 110_000
			if s > 1 {
				r.Stats.PrescreenedOut = int64(10 * s)
				r.ShardCells = make([]int, s)
				for i := range r.ShardCells {
					r.ShardCells[i] = 110_000 / s // perfectly balanced
				}
			}
			rows = append(rows, r)
		}
		return rows
	}
	mutate := func(f func(rows []benchResult)) benchReport {
		rows := shardTier()
		f(rows)
		return benchReport{Results: rows}
	}
	top := len(jsonShardMatrix) - 1 // index of the Shards=8 row

	if err := checkShardScaling(mutate(func([]benchResult) {}), 1); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}

	cases := []struct {
		name      string
		report    benchReport
		numCPU    int
		wantInMsg []string
	}{
		{
			name: "silent prescreen",
			report: mutate(func(rows []benchResult) {
				rows[1].Stats.PrescreenedOut = 0
			}),
			numCPU:    1,
			wantInMsg: []string{"shards=2", "prescreen absorbed no halfspaces"},
		},
		{
			name: "missing row",
			report: mutate(func(rows []benchResult) {
				rows[2].Users = 0 // drops out of the shard-tier filter
			}),
			numCPU:    1,
			wantInMsg: []string{"shards=4", "row missing from report"},
		},
		{
			name: "skewed decomposition",
			report: mutate(func(rows []benchResult) {
				// One shard holds nearly everything: balance 110000/100000 = 1.1.
				rows[top].ShardCells = []int{100_000, 2000, 2000, 2000, 1000, 1000, 1000, 1000}
			}),
			numCPU:    1,
			wantInMsg: []string{"shards=8", "balance 1.10 below floor 3.0", "largest shard holds 100000 of 110000 cells"},
		},
		{
			name: "replicated working set",
			report: mutate(func(rows []benchResult) {
				// Per-shard mean 150M vs limit 100M (half of the 200M single tree).
				rows[top].BytesPerOp = 1_200_000_000
			}),
			numCPU:    1,
			wantInMsg: []string{"shards=8", "per-shard footprint 150000000 bytes exceeds 50% of single-tree 200000000 bytes"},
		},
		{
			name: "wall floor enforced on big hosts",
			report: mutate(func(rows []benchResult) {
				rows[top].WallSeconds = 3.0 // 1.33x, below 3x
			}),
			numCPU:    8,
			wantInMsg: []string{"shards=8", "wall speedup 1.33x below 3.0x on a 8-CPU host"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkShardScaling(tc.report, tc.numCPU)
			if err == nil {
				t.Fatal("degraded report accepted")
			}
			for _, want := range tc.wantInMsg {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("failure message missing %q:\n%v", want, err)
				}
			}
		})
	}

	// The wall gate that just failed at 8 CPUs is reported but not
	// enforced on small hosts — the balance bound stands in for it.
	slow := mutate(func(rows []benchResult) { rows[top].WallSeconds = 3.0 })
	if err := checkShardScaling(slow, 1); err != nil {
		t.Fatalf("wall gate enforced on a 1-CPU host: %v", err)
	}
}

// TestDistExecutorGate drives checkDistExecutor through its outcomes:
// a procpool row whose algorithmic stats match its in-process twin (with
// transport counters allowed to differ) passes; a counter divergence, an
// undispatched shard, a missing twin, a blown wall factor, and a blown
// worker-RSS ceiling each fail naming the row and both numbers; a report
// with no executor rows (legacy) is skipped, not failed.
func TestDistExecutorGate(t *testing.T) {
	distTier := func() []benchResult {
		in := benchResult{Dataset: "IND", Users: jsonShardU, Workers: jsonShardWorkers,
			Shards: distShards, WallSeconds: 4.0}
		in.Stats.Cells = 110_000
		in.Stats.Pivots = 5000
		pp := in
		pp.Executor = "procpool"
		pp.WallSeconds = 6.0
		pp.WorkerMaxRSSBytes = 100 << 20
		// Transport counters are set only on the executor row and must not
		// trip the identity comparison.
		pp.Stats.DispatchedShards = distShards
		pp.Stats.ShippedBytes = 1 << 20
		return []benchResult{in, pp}
	}
	mutate := func(f func(rows []benchResult)) benchReport {
		rows := distTier()
		f(rows)
		return benchReport{Results: rows}
	}

	if err := checkDistExecutor(mutate(func([]benchResult) {})); err != nil {
		t.Fatalf("healthy report rejected: %v", err)
	}
	if err := checkDistExecutor(benchReport{Results: distTier()[:1]}); err != nil {
		t.Fatalf("legacy report without executor rows rejected: %v", err)
	}

	cases := []struct {
		name      string
		report    benchReport
		wantInMsg []string
	}{
		{
			name: "stats divergence",
			report: mutate(func(rows []benchResult) {
				rows[1].Stats.Pivots = 5001
			}),
			wantInMsg: []string{"executor=procpool", "algorithmic stats diverge from in-process twin"},
		},
		{
			name: "missing twin",
			report: mutate(func(rows []benchResult) {
				rows[0].Users = 0 // drops the in-process row out of the twin map
			}),
			wantInMsg: []string{"executor=procpool", "no in-process twin row in report"},
		},
		{
			name: "fallback ran shards in-process",
			report: mutate(func(rows []benchResult) {
				rows[1].Stats.DispatchedShards = distShards - 1
				rows[1].Stats.FallbackInProcess = 1
			}),
			wantInMsg: []string{"multi-process path did not run all shards", "dispatched 3 of 4, fallback 1"},
		},
		{
			name: "no shipped bytes",
			report: mutate(func(rows []benchResult) {
				rows[1].Stats.ShippedBytes = 0
			}),
			wantInMsg: []string{"no bytes shipped recorded"},
		},
		{
			name: "wall factor blown",
			report: mutate(func(rows []benchResult) {
				rows[1].WallSeconds = 16.0 // 4.00x vs limit 3.0x
			}),
			wantInMsg: []string{"wall 16.000s is 4.00x the in-process twin's 4.000s", "limit 3.0x"},
		},
		{
			name: "worker RSS over ceiling",
			report: mutate(func(rows []benchResult) {
				rows[1].WorkerMaxRSSBytes = distWorkerRSSCeilingBytes + 1
			}),
			wantInMsg: []string{"worker peak RSS", "exceeds ceiling"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkDistExecutor(tc.report)
			if err == nil {
				t.Fatal("degraded report accepted")
			}
			for _, want := range tc.wantInMsg {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("failure message missing %q:\n%v", want, err)
				}
			}
		})
	}

	// RSS 0 means the platform has no rusage reporting; the ceiling is
	// skipped rather than failed.
	noRSS := mutate(func(rows []benchResult) { rows[1].WorkerMaxRSSBytes = 0 })
	if err := checkDistExecutor(noRSS); err != nil {
		t.Fatalf("rusage-less platform rejected: %v", err)
	}
}
