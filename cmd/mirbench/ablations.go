package main

import (
	"mir/internal/core"
	"mir/internal/data"
	"mir/internal/topk"
)

func init() {
	register("16a", "specialized vs generic AA in d=2, varying |U| (+cells)", fig16a)
	register("16b", "inner-group processing on/off, varying m (+containment tests)", fig16b)
	register("16c", "fast geometric testing on/off, varying m", fig16c)
	register("16d", "early reporting / early elimination ratios vs m", fig16d)
	register("17a", "group-choice strategy: largest vs smallest vs round-robin", fig17a)
	register("17b", "diverse per-user k: fixed vs uniform vs normal", fig17b)
}

func fig16a(cfg config) {
	header("|U|", "special(s)", "cells", "generic(s)", "cells")
	for _, mul := range []float64{0.1, 0.5, 1, 2, 4} {
		nU := int(float64(cfg.nU) * mul)
		if nU < 10 {
			nU = 10
		}
		inst := cfg.instance("IND", "CL", cfg.nP, nU, 2, cfg.k, int64(160+int(10*mul)))
		m := mOf(0.5, len(inst.Users))
		var spec, gen *core.Region
		sSecs := timeIt(func() { spec = mustAA(inst, m, core.Options{}) })
		gSecs := timeIt(func() { gen = mustAA(inst, m, core.Options{Disable2D: true}) })
		row(len(inst.Users), sSecs, spec.Stats.Cells, gSecs, gen.Stats.Cells)
	}
}

func fig16b(cfg config) {
	inst := cfg.instance("IND", "CL", cfg.nP, cfg.nU, cfg.d, cfg.k, 165)
	header("m/|U|", "with(s)", "tests", "without(s)", "tests")
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m := mOf(frac, len(inst.Users))
		var with, without *core.Region
		wSecs := timeIt(func() { with = mustAA(inst, m, core.Options{}) })
		oSecs := timeIt(func() { without = mustAA(inst, m, core.Options{DisableInnerGroup: true}) })
		row(frac, wSecs, with.Stats.ContainmentTests, oSecs, without.Stats.ContainmentTests)
	}
}

func fig16c(cfg config) {
	inst := cfg.instance("IND", "CL", cfg.nP, cfg.nU, cfg.d, cfg.k, 170)
	header("m/|U|", "with(s)", "without(s)", "speedup")
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m := mOf(frac, len(inst.Users))
		wSecs := timeIt(func() { mustAA(inst, m, core.Options{}) })
		oSecs := timeIt(func() { mustAA(inst, m, core.Options{DisableFastTest: true}) })
		row(frac, wSecs, oSecs, oSecs/wSecs)
	}
}

func fig16d(cfg config) {
	header("users", "m/|U|", "early rep %", "early elim %", "combined %")
	for _, kind := range []string{"CL", "TA", "UN"} {
		inst := cfg.instance("IND", kind, cfg.nP, cfg.nU, cfg.d, cfg.k, 175)
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			m := mOf(frac, len(inst.Users))
			reg := mustAA(inst, m, core.Options{})
			st := reg.Stats
			total := float64(st.Cells)
			rep := 100 * float64(st.EarlyReported) / total
			elim := 100 * float64(st.EarlyEliminated) / total
			row(kind, frac, rep, elim, rep+elim)
		}
	}
}

func fig17a(cfg config) {
	inst := cfg.instance("IND", "CL", cfg.nP, cfg.nU, cfg.d, cfg.k, 180)
	header("m/|U|", "largest(s)", "smallest(s)", "round-robin(s)")
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		m := mOf(frac, len(inst.Users))
		l := timeIt(func() { mustAA(inst, m, core.Options{GroupChoice: core.LargestGroup}) })
		s := timeIt(func() { mustAA(inst, m, core.Options{GroupChoice: core.SmallestGroup}) })
		r := timeIt(func() { mustAA(inst, m, core.Options{GroupChoice: core.RoundRobinGroup}) })
		row(frac, l, s, r)
	}
}

func fig17b(cfg config) {
	rng := cfg.rng(185)
	ps := cfg.products("IND", cfg.nP, cfg.d, rng)
	ws := cfg.users("CL", cfg.nU, cfg.d, rng)
	variants := []struct {
		name  string
		prefs []topk.UserPref
	}{
		{"fixed k=10", data.WithK(ws, cfg.k)},
		{"uniform[1,20)", data.WithUniformK(rng, ws, 1, 20)},
		{"normal(10,5)", data.WithNormalK(rng, ws, 10, 5, 40)},
	}
	header("k setting", "m/|U|", "time(s)", "groups")
	for _, v := range variants {
		inst, err := core.NewInstance(ps, v.prefs)
		if err != nil {
			panic(err)
		}
		gs := inst.GroupStats()
		for _, frac := range []float64{0.3, 0.5, 0.7} {
			m := mOf(frac, len(inst.Users))
			secs := timeIt(func() { mustAA(inst, m, core.Options{}) })
			row(v.name, frac, secs, gs.NumGroups)
		}
	}
}
