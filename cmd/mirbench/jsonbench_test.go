package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, report benchReport) string {
	t.Helper()
	buf, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func benchRow(dataset string, pruning bool, workers int, allocs uint64) benchResult {
	return benchResult{Dataset: dataset, Pruning: pruning, Workers: workers, AllocsPerOp: allocs}
}

func TestCheckBaselinePassesWithinTolerance(t *testing.T) {
	base := benchReport{Results: []benchResult{
		benchRow("IND", true, 1, 100_000),
		benchRow("IND", false, 1, 110_000),
	}}
	fresh := benchReport{Results: []benchResult{
		benchRow("IND", true, 1, 109_999),  // +10% exactly at the limit
		benchRow("IND", false, 1, 100_000), // improvement
		benchRow("IND", true, 4, 999_999),  // multi-worker rows never gate
	}}
	if err := checkBaseline(fresh, writeBaseline(t, base)); err != nil {
		t.Fatalf("within-tolerance report rejected: %v", err)
	}
}

func TestCheckBaselineFailsOnRegression(t *testing.T) {
	base := benchReport{Results: []benchResult{benchRow("COR", true, 1, 100_000)}}
	fresh := benchReport{Results: []benchResult{benchRow("COR", true, 1, 111_000)}}
	err := checkBaseline(fresh, writeBaseline(t, base))
	if err == nil {
		t.Fatal("11% allocs/op regression accepted")
	}
	if !strings.Contains(err.Error(), "COR") {
		t.Fatalf("error does not name the offending row: %v", err)
	}
}

func TestCheckBaselineAcceptsLegacyWorkersZero(t *testing.T) {
	// Reports written before the workers axis carry Workers=0; those rows
	// were measured at one worker and must still serve as reference.
	base := benchReport{Results: []benchResult{benchRow("ANTI", true, 0, 100_000)}}
	fresh := benchReport{Results: []benchResult{benchRow("ANTI", true, 1, 105_000)}}
	if err := checkBaseline(fresh, writeBaseline(t, base)); err != nil {
		t.Fatalf("legacy baseline rejected: %v", err)
	}
}

func TestCheckBaselineRejectsEmptyBaseline(t *testing.T) {
	base := benchReport{Results: []benchResult{benchRow("IND", true, 4, 100_000)}}
	if err := checkBaseline(benchReport{}, writeBaseline(t, base)); err == nil {
		t.Fatal("baseline without workers=1 rows accepted")
	}
}
