package main

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"mir/internal/core"
	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// config carries the scaled parameter grid of Table 2.
type config struct {
	scale float64
	seed  int64

	nP int // default product cardinality (paper: 1.0M)
	nU int // default user cardinality (paper: 10K)
	d  int // default dimensionality
	k  int // default top-k size
}

func newConfig(scale float64, paper bool, seed int64) config {
	if paper {
		scale = 1
	}
	if scale <= 0 {
		scale = 0.01
	}
	cfg := config{scale: scale, seed: seed}
	cfg.nP = scaled(1_000_000, scale, 500)
	cfg.nU = scaled(10_000, scale, 60)
	// The paper's default dimensionality is 4. A halfspace arrangement in
	// d=4 over hundreds of users is out of reach for a scaled single-core
	// run, so reduced scales default to d=3; -paper restores d=4.
	cfg.d = 4
	if scale < 0.1 {
		cfg.d = 3
	}
	cfg.k = 10
	return cfg
}

// uFor shrinks the default user count for high dimensionalities: the
// arrangement (and thus the runtime) grows exponentially with d, so the
// d-sweeps sample fewer users per added dimension. Each row of a d-sweep
// reports the |U| it actually used.
func (c config) uFor(d int) int {
	nU := c.nU
	for dd := 4; dd <= d; dd++ {
		nU /= 2
	}
	if nU < 16 {
		nU = 16
	}
	return nU
}

func scaled(paper int, scale float64, min int) int {
	n := int(float64(paper) * scale)
	if n < min {
		n = min
	}
	return n
}

// rng returns a deterministic generator offset from the config seed so
// that each experiment draws an independent stream.
func (c config) rng(offset int64) *rand.Rand {
	return rand.New(rand.NewSource(c.seed + offset*1_000_003))
}

// products generates a product set by distribution name.
func (c config) products(kind string, n, d int, rng *rand.Rand) []geom.Vector {
	switch kind {
	case "COR":
		return data.Correlated(rng, n, d)
	case "ANTI":
		return data.AntiCorrelated(rng, n, d)
	case "HOTEL":
		return projectTo(data.HotelSet(rng, n), d)
	case "HOUSE":
		return projectTo(data.HouseSet(rng, n), d)
	case "NBA":
		return projectTo(data.NBASet(rng, n), d)
	case "TA":
		ps, _ := data.TripAdvisor(rng, n, 1)
		return projectTo(ps, d)
	default: // IND
		return data.Independent(rng, n, d)
	}
}

// users generates a user weight set by distribution name.
func (c config) users(kind string, n, d int, rng *rand.Rand) []geom.Vector {
	switch kind {
	case "UN":
		return data.UniformUsers(rng, n, d)
	case "TA":
		_, ws := data.TripAdvisor(rng, 1, n)
		return projectUsers(ws, d)
	default: // CL
		return data.ClusteredUsers(rng, n, d, 5, 0.05)
	}
}

// projectTo keeps the first d attributes (for datasets with fixed native
// dimensionality, mirroring the paper's attribute-subset runs).
func projectTo(ps []geom.Vector, d int) []geom.Vector {
	if len(ps) == 0 || len(ps[0]) == d {
		return ps
	}
	if len(ps[0]) < d {
		panic(fmt.Sprintf("mirbench: dataset has %d attributes, need %d", len(ps[0]), d))
	}
	out := make([]geom.Vector, len(ps))
	for i, p := range ps {
		out[i] = p[:d]
	}
	return out
}

func projectUsers(ws []geom.Vector, d int) []geom.Vector {
	if len(ws) == 0 || len(ws[0]) == d {
		return ws
	}
	out := make([]geom.Vector, len(ws))
	for i, w := range ws {
		v := make(geom.Vector, d)
		s := 0.0
		for j := 0; j < d; j++ {
			v[j] = w[j]
			s += w[j]
		}
		if s <= 0 {
			for j := range v {
				v[j] = 1 / float64(d)
			}
		} else {
			for j := range v {
				v[j] /= s
			}
		}
		out[i] = v
	}
	return out
}

// instance assembles a preprocessed mIR instance.
func (c config) instance(pKind, uKind string, nP, nU, d, k int, off int64) *core.Instance {
	rng := c.rng(off)
	ps := c.products(pKind, nP, d, rng)
	us := data.WithK(c.users(uKind, nU, d, rng), k)
	inst, err := core.NewInstance(ps, us)
	if err != nil {
		panic(err)
	}
	return inst
}

// hostMeta records the measuring host's facts at the top of every
// BENCH_* report: toolchain, platform, CPU count, and whether the
// default rows ran the blocked numeric kernels. Gates that depend on
// the measuring machine (the shard wall floor keys off CPU count) read
// these committed facts rather than interrogating the machine that
// happens to re-run the check, so a report gates the same way on every
// host. Kernels is the report-wide default; ablation rows that flip it
// carry their own per-row flag.
type hostMeta struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	Kernels   bool   `json:"kernels"`
}

// currentHost snapshots the running machine for a fresh report.
func currentHost() hostMeta {
	return hostMeta{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Kernels:   true,
	}
}

// timeIt runs f and returns the wall-clock seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// memMB returns current live-heap megabytes after a GC — the
// memory-consumption proxy for Figure 9.
func memMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// mFracs is the paper's m sweep (fractions of |U|).
var mFracs = []float64{0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9}

func mOf(frac float64, nU int) int {
	m := int(frac * float64(nU))
	if m < 1 {
		m = 1
	}
	if m > nU {
		m = nU
	}
	return m
}

// header prints an aligned column header.
func header(cols ...string) {
	for _, c := range cols {
		fmt.Printf("%14s", c)
	}
	fmt.Println()
}

func row(vals ...interface{}) {
	for _, v := range vals {
		switch x := v.(type) {
		case float64:
			fmt.Printf("%14.4f", x)
		case string:
			fmt.Printf("%14s", x)
		default:
			fmt.Printf("%14v", x)
		}
	}
	fmt.Println()
}

// mustUsers attaches k and builds user prefs.
func withK(ws []geom.Vector, k int) []topk.UserPref { return data.WithK(ws, k) }
