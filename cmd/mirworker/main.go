// Command mirworker is a standalone shard-build worker for the
// multi-process executor (internal/dist): it speaks the framed-gob
// worker protocol on stdin/stdout and nothing else. The pool's default
// is to re-exec its own binary (mirbench, mird, and the dist tests all
// embed the worker via dist.MaybeWorker), so mirworker exists for
// deployments that want a minimal, separately-shipped worker image —
// point ProcPool.WorkerBin (or the hosting command's -worker-bin flag)
// at it. Parent and worker must be built from the same tree; the
// protocol version check turns a skew into a startup error instead of a
// wrong region.
package main

import (
	"os"

	"mir/internal/dist"
)

func main() {
	os.Exit(dist.WorkerMain(os.Stdin, os.Stdout))
}
