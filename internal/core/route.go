package core

import (
	"bytes"
	"sort"

	"mir/internal/celltree"
	"mir/internal/geom"
)

// Routed maintenance: apply each population event to the leaves it can
// actually affect instead of sweeping the whole arrangement.
//
// The maintainer keeps its staged events in a persistent log (Maintainer.log)
// and lets subtrees lag behind it. Every cell carries three bookkeeping
// fields (celltree.Cell.MaintSeq/ElimSlack/RepIn): the log index the node is
// current through, an upper bound — over the eliminated leaves below — on the
// revival slack nAlive − OutCount, and a lower bound — over the reported
// leaves below — on the coverage count InCount. Leaves settle to exact values;
// internal nodes take the max/min of their children.
//
// When a batch arrives, routeNode descends from the root. At each node it
// replays the node's pending log window against the bounds, classifying each
// event's halfspace against the node MBB (the Section 5.3 filter test lifted
// from leaves to subtree roots):
//
//   - an arrival whose halfspace strictly excludes the node MBB moves
//     neither bound: every leaf below absorbs it as OutCount++ (see
//     stageLeaf), so the alive population and the out-counts rise together
//     and the revival slack nAlive − OutCount is unchanged. One that
//     strictly covers the MBB raises both bounds by 1 (every leaf below
//     gains InCount); an inconclusive test raises only the slack bound
//     (the conservative direction — cut leaves gain a pending view, not an
//     out-count).
//   - a departure whose halfspace strictly covers the node MBB lowers both
//     bounds by 1; one that strictly excludes it changes neither; an
//     inconclusive test lowers only the coverage bound (again the
//     conservative direction for each bound).
//
// If no prefix of the window pushes the slack bound to m or the coverage
// bound below m, no decision below the node can flip: the whole subtree is
// skipped — the folded bounds and the advanced MaintSeq are the only writes.
// Otherwise the descent recurses, and leaves it reaches settle their backlog
// through Maintainer.stageLeaf, the exact same per-leaf replay the full sweep
// runs — which is why regions are byte-identical routing on or off: routing
// changes when a leaf's bookkeeping is brought current, never what any leaf
// or drain computes. A deferral proof covers every event in its window, so a
// later settle of that backlog can never fire a re-verification; fired
// buckets only ever hold indices from the newest batch (settleAll panics if
// the guarantee is violated rather than risking a silently reordered drain).
//
// The log is compacted (settleAll: settle every leaf, refresh every bound,
// truncate) once it reaches routeLogCap, keeping replay windows and the
// retained batchOps bounded.

// routeLogCap bounds the deferred-event backlog. Compaction costs one full
// sweep, amortized over at least routeLogCap events, so the per-event
// overhead it adds is |leaves|/routeLogCap — negligible next to the sweep
// per event it replaces.
const routeLogCap = 2048

// Sentinel bounds for sides a subtree does not have (no eliminated leaves /
// no reported leaves below). Quarter-range, not MinInt/MaxInt: deferral
// folds drift sentinels by one per event, and the slack headroom keeps the
// arithmetic overflow-free for any realistic event volume while preserving
// "no fire check can ever pass" on the sentinel side.
const (
	slackNegInf = -(1 << 60)
	repInfPos   = 1 << 60
)

// canDefer replays the node's pending log window against its subtree bounds
// and reports whether the whole subtree can skip the window. On success the
// folded bounds are stored, the node is marked current, and the deferral is
// counted; on failure the node is left untouched for the caller to descend.
func (mt *Maintainer) canDefer(c *celltree.Cell) bool {
	st := &mt.run.tr.Stats
	slack, in := c.ElimSlack, c.RepIn
	for e := c.MaintSeq - mt.logBase; e < len(mt.log); e++ {
		op := &mt.log[e]
		rel, conclusive := c.FastClassifyInto(op.h, st)
		if op.arrive {
			if conclusive && rel == geom.Excludes {
				continue // out rises with the population: neither bound moves
			}
			if conclusive && rel == geom.Covers {
				in++
			}
			slack++
			if slack >= mt.m {
				return false // some eliminated leaf below may revive here
			}
			continue
		}
		if conclusive && rel == geom.Excludes {
			continue // neither bound moves, no decision can flip
		}
		if conclusive && rel == geom.Covers {
			slack--
		}
		in--
		if in < mt.m {
			return false // some reported leaf below may demote here
		}
	}
	c.ElimSlack, c.RepIn = slack, in
	c.MaintSeq = mt.logBase + len(mt.log)
	st.SkippedSubtrees++
	return true
}

// routeNode brings the subtree under c current through the end of the log,
// deferring wherever canDefer proves it safe and settling (or bucketing,
// via fire) the leaves it cannot avoid.
func (mt *Maintainer) routeNode(c *celltree.Cell, fire func(e int, leaf *celltree.Cell)) {
	end := mt.logBase + len(mt.log)
	if c.MaintSeq >= end {
		return
	}
	if c.Empty {
		// Degenerate split residue: never staged, never revived. Keep the
		// sentinels explicit so a parent pullUp cannot fold zero values in.
		mt.refreshLeafBounds(c)
		c.MaintSeq = end
		c.StageSeq = end
		return
	}
	if mt.canDefer(c) {
		return
	}
	if c.IsLeaf() {
		// Stage from the payload currency, not the bounds currency: earlier
		// deferrals advanced MaintSeq while leaving the payload stale, and
		// every one of those skipped events still has to reach the pending
		// views and counts. Fires inside that [StageSeq, MaintSeq) backlog
		// are impossible — each deferred window carries a no-fire proof.
		from := c.StageSeq - mt.logBase
		if !mt.stageLeaf(c, from, fire) {
			mt.refreshLeafBounds(c)
		}
		// Fired leaves keep stale bounds for now; the post-drain refresh of
		// every fired subtree (and its ancestor chain) restores exactness.
		return
	}
	left, right := c.Children()
	mt.routeNode(left, fire)
	mt.routeNode(right, fire)
	mt.pullUp(c)
	c.MaintSeq = end
}

// refreshLeafBounds settles a leaf's routing bounds to their exact values
// for its current status and counts (sentinels on the side the leaf does
// not occupy). Valid only when the leaf is current through the log.
func (mt *Maintainer) refreshLeafBounds(c *celltree.Cell) {
	c.ElimSlack = slackNegInf
	c.RepIn = repInfPos
	if c.Empty {
		return
	}
	switch c.Status {
	case celltree.Eliminated:
		c.ElimSlack = mt.nAlive - c.OutCount
	case celltree.Reported:
		c.RepIn = c.InCount
	}
}

// pullUp recomputes an internal node's bounds from its children (max of
// revival slacks, min of coverage counts — each the conservative fold).
func (mt *Maintainer) pullUp(c *celltree.Cell) {
	left, right := c.Children()
	c.ElimSlack = max(left.ElimSlack, right.ElimSlack)
	c.RepIn = min(left.RepIn, right.RepIn)
}

// pullUpChain re-pulls bounds from c up to the root. Used after a fired
// subtree is refreshed post-drain: every ancestor on the chain was descended
// through (a deferral would have proven the fire impossible), so both
// children of each chain node hold settled bounds by the time this runs.
func (mt *Maintainer) pullUpChain(c *celltree.Cell) {
	end := mt.logBase + len(mt.log)
	for ; c != nil; c = c.Parent() {
		mt.pullUp(c)
		c.MaintSeq = end
	}
}

// refreshSubtree settles the routing bounds of every node under c to exact
// values and marks the subtree current. Valid only once every leaf below is
// current through the log (post-drain fired subtrees, compaction, init).
func (mt *Maintainer) refreshSubtree(c *celltree.Cell) {
	if c.IsLeaf() {
		mt.refreshLeafBounds(c)
		c.MaintSeq = mt.logBase + len(mt.log)
		return
	}
	left, right := c.Children()
	mt.refreshSubtree(left)
	mt.refreshSubtree(right)
	mt.pullUp(c)
	c.MaintSeq = mt.logBase + len(mt.log)
}

// pushFired reactivates and pushes a drain's fired leaves in tree-leaf
// order — the order the historical full-sweep push used, which the
// round-robin strategy's cursor evolution is sensitive to — without
// enumerating the whole tree: the bucket's cells are sorted by their
// root-to-leaf path (left before right, lexicographic). Paths are built by
// parent-pointer walks, not ID arithmetic, which wraps past depth 62.
func (mt *Maintainer) pushFired(cells []*celltree.Cell) {
	if len(cells) > 1 {
		type keyed struct {
			leaf *celltree.Cell
			path []byte
		}
		ks := make([]keyed, len(cells))
		for i, c := range cells {
			ks[i] = keyed{leaf: c, path: leafPath(c, nil)}
		}
		sort.Slice(ks, func(a, b int) bool {
			return bytes.Compare(ks[a].path, ks[b].path) < 0
		})
		for i := range ks {
			cells[i] = ks[i].leaf
		}
	}
	for _, leaf := range cells {
		mt.run.tr.Reactivate(leaf)
		if !mt.run.seq.verify(leaf) {
			mt.run.heap.Push(leaf, mt.run.priority(leaf))
		}
	}
}

// leafPath appends c's root-to-leaf turn sequence (0 = left/outside child,
// 1 = right/inside child) to dst and returns it.
func leafPath(c *celltree.Cell, dst []byte) []byte {
	start := len(dst)
	for p := c.Parent(); p != nil; c, p = p, p.Parent() {
		left, _ := p.Children()
		if c == left {
			dst = append(dst, 0)
		} else {
			dst = append(dst, 1)
		}
	}
	for i, j := start, len(dst)-1; i < j; i, j = i+1, j-1 {
		dst[i], dst[j] = dst[j], dst[i]
	}
	return dst
}

// settleAll brings every leaf current through the end of the log, refreshes
// every bound, and truncates the log (compaction). Deferral proofs cover
// every event they skip, so settling can never fire a re-verification; the
// fire callback panics to make that invariant an assertion instead of an
// assumption. The invariant tests also call this to materialize deferred
// per-leaf state before auditing payloads. Safe (a bounds refresh and
// log reset only) when routing is disabled, where every leaf is already
// current after each batch.
func (mt *Maintainer) settleAll() {
	end := mt.logBase + len(mt.log)
	mt.leavesBuf = mt.run.tr.Leaves(nil, mt.leavesBuf[:0])
	for _, leaf := range mt.leavesBuf {
		if leaf.StageSeq >= end {
			continue
		}
		mt.stageLeaf(leaf, leaf.StageSeq-mt.logBase, settleFired)
	}
	mt.refreshSubtree(mt.run.tr.Root)
	mt.logBase = end
	mt.log = mt.log[:0]
}

// settleFired is settleAll's fire callback: unreachable when the routing
// bounds are sound.
func settleFired(int, *celltree.Cell) {
	panic("core: deferred maintenance event fired at settle; routing bounds are unsound")
}
