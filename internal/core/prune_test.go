package core

import (
	"math/rand"
	"testing"
)

// TestPruningPreservesRegion pins the redundancy-elimination contract: the
// arrangement's split-time pruning changes only the internal cell
// representations, so the reported region — and every structural stat —
// is identical with pruning on or off, across dimensions, m values, and
// worker counts. Only the Prune* counters themselves may differ.
func TestPruningPreservesRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		d, nP, nU, k int
		opts         Options
	}{
		{2, 300, 40, 5, Options{}},
		{2, 300, 40, 5, Options{Disable2D: true}},
		{3, 400, 30, 8, Options{}},
		{3, 300, 24, 6, Options{DisableFastTest: true}},
		{4, 300, 20, 5, Options{}},
	}
	for ci, tc := range cases {
		inst := randomInstance(t, rng, tc.nP, tc.nU, tc.d, tc.k)
		for _, m := range []int{1, tc.nU / 4, tc.nU / 2} {
			if m < 1 {
				m = 1
			}
			on := tc.opts
			on.Workers = 1
			off := tc.opts
			off.Workers = 1
			off.DisablePruning = true
			regOn, err := AA(inst, m, on)
			if err != nil {
				t.Fatalf("case %d m=%d pruned: %v", ci, m, err)
			}
			regOff, err := AA(inst, m, off)
			if err != nil {
				t.Fatalf("case %d m=%d unpruned: %v", ci, m, err)
			}
			regionsIdentical(t, regOff, regOn)
			// Bounding boxes are derived from the raw path either way.
			if len(regOn.MBBs) != len(regOff.MBBs) {
				t.Fatalf("case %d m=%d: MBB counts differ", ci, m)
			}
			for i := range regOn.MBBs {
				for s := 0; s < 2; s++ {
					a, b := regOn.MBBs[i][s], regOff.MBBs[i][s]
					for j := range a {
						if a[j] != b[j] {
							t.Fatalf("case %d m=%d: MBB %d corner %d coord %d differs: %g vs %g",
								ci, m, i, s, j, a[j], b[j])
						}
					}
				}
			}
			// Classification work is accounted identically; the pruning
			// counters live in their own fields. The LP effort counters are
			// excluded too: pruning changes the solve workload itself (the
			// redundancy LPs only exist when it runs, and classification
			// solves see smaller representations), so pivot and solve counts
			// differ by design.
			so, sf := regOn.Stats, regOff.Stats
			so.PruneLPTests, so.PrunedRows = 0, 0
			so.Pivots, so.WarmHits, so.WarmMisses, so.ColdSolves = 0, 0, 0, 0
			sf.Pivots, sf.WarmHits, sf.WarmMisses, sf.ColdSolves = 0, 0, 0, 0
			if so != sf {
				t.Fatalf("case %d m=%d: stats diverge beyond prune counters:\non  %+v\noff %+v",
					ci, m, regOn.Stats, regOff.Stats)
			}
			if sf.PruneLPTests != 0 || sf.PrunedRows != 0 {
				t.Fatalf("case %d m=%d: unpruned run reports prune work: %+v", ci, m, sf)
			}
			if regOff.Stats.Splits > 0 && regOn.Stats.PrunedRows == 0 && tc.d > 2 {
				t.Fatalf("case %d m=%d: pruning ran but dropped nothing (%d splits)",
					ci, m, regOn.Stats.Splits)
			}
			// Pruning must also commute with the parallel execution layer.
			par := on
			par.Workers = 4
			regPar, err := AA(inst, m, par)
			if err != nil {
				t.Fatalf("case %d m=%d pruned parallel: %v", ci, m, err)
			}
			regionsIdentical(t, regOff, regPar)
		}
	}
}
