package core

import (
	"mir/internal/celltree"
	"mir/internal/geom"
)

// BSL is the baseline mIR algorithm (Section 4.2, Algorithm 1): insert the
// influential halfspace of every user, one by one, into the arrangement
// cell tree, reporting cells as soon as they cover m users and eliminating
// cells as soon as they can no longer reach m. Exact, with worst-case cost
// O(|U|^d); the paper shows it 2-3 orders of magnitude slower than AA.
//
// This implementation grants BSL the MBB fast tests (a kindness to the
// baseline — the paper's BSL uses plain containment tests), which does not
// change the trends.
func BSL(inst *Instance, m int) (*Region, error) {
	if err := inst.CheckM(m); err != nil {
		return nil, err
	}
	tr := celltree.New(geom.NewBox(inst.Dim, 0, 1))
	nU := len(inst.Users)
	verify := func(c *celltree.Cell) {
		if c.Status != celltree.Active {
			return
		}
		if c.InCount >= m {
			tr.Report(c)
		} else if nU-c.OutCount < m {
			tr.Eliminate(c)
		}
	}
	for _, h := range inst.HS {
		if tr.Root.Status != celltree.Active && tr.Root.IsLeaf() {
			break // the whole space is decided
		}
		insertHS(tr.OwnShard(), tr.Root, h, true, verify)
	}
	// Every surviving leaf has seen all users; decide it.
	var st Stats
	for _, leaf := range tr.Leaves(nil, nil) {
		verify(leaf)
	}
	return regionFromTree(tr, m, st), nil
}
