package core

import (
	"errors"
	"math"
	"sort"

	"mir/internal/celltree"
	"mir/internal/geom"
	"mir/internal/topk"
)

// ErrNoSolution is returned when no product position satisfies the
// problem's coverage requirement (e.g. the m-impact region is empty
// within the search box).
var ErrNoSolution = errors.New("core: no feasible product position")

// COResult is the outcome of an influence-based cost optimization.
type COResult struct {
	// Point is the cost-optimal position.
	Point geom.Vector
	// Cost is the creation (or upgrade) cost at Point.
	Cost float64
	// Coverage is the number of users Point covers.
	Coverage int
	// Region is the m-impact region computed along the way.
	Region *Region
}

// SolveCO solves the influence-based cost optimization problem (Yang et
// al. [67], generalized to k >= 1 as per Section 5.5): find the cheapest
// position for a new product that covers at least m users. It computes
// the m-impact region with AA and then minimizes the cost over the
// region's cells, processing cells in ascending order of a bounding-box
// cost lower bound and pruning those that cannot beat the incumbent.
func SolveCO(inst *Instance, m int, cost Cost, opts Options) (*COResult, error) {
	region, err := AA(inst, m, opts)
	if err != nil {
		return nil, err
	}
	point, c, err := minCostOverRegion(region, cost, make(geom.Vector, inst.Dim))
	if err != nil {
		return nil, err
	}
	return &COResult{
		Point:    point,
		Cost:     c,
		Coverage: inst.CountCovering(point),
		Region:   region,
	}, nil
}

// SolveThresholdedIS solves the thresholded improvement-strategy problem
// (Section 5.5's second crossbreed): find the cheapest upgrade of product
// pIdx so that the upgraded product covers at least m users. Upgrades are
// monotone (p' dominates p), so the search is the m-impact region within
// the box [p, 1]^d, with top-k thresholds computed over the competitors
// P \ {p}.
func SolveThresholdedIS(products []geom.Vector, users []topk.UserPref, pIdx int, m int, cost Cost, opts Options) (*COResult, error) {
	sub, err := competitorInstance(products, users, pIdx)
	if err != nil {
		return nil, err
	}
	if err := sub.CheckM(m); err != nil {
		return nil, err
	}
	p := products[pIdx]
	box := upgradeBox(p)
	region, err := AAWithBox(sub, m, opts, box)
	if err != nil {
		return nil, err
	}
	point, c, err := minCostOverRegion(region, cost, p)
	if err != nil {
		return nil, err
	}
	return &COResult{
		Point:    point,
		Cost:     c,
		Coverage: sub.CountCovering(point),
		Region:   region,
	}, nil
}

// SolveCOBestFirst solves CO exactly without materializing the full
// m-impact region: cells are processed in ascending order of a cost lower
// bound, cells that cannot reach m covering users are eliminated, and a
// cell wholly covering m users yields a candidate (its cheapest point).
// Because the bound is monotone down the tree, the search proves
// optimality as soon as the cheapest remaining cell cannot beat the
// incumbent — typically after exploring only the low-cost fringe of the
// region. Exact, like SolveCO, but without the Region by-product.
func SolveCOBestFirst(inst *Instance, m int, cost Cost, opts Options) (*COResult, error) {
	if err := inst.CheckM(m); err != nil {
		return nil, err
	}
	run := &aaRun{
		inst:     inst,
		m:        m,
		nU:       len(inst.Users),
		opts:     opts,
		tr:       celltree.New(geom.NewBox(inst.Dim, 0, 1)),
		mode:     modeMinCost,
		costFn:   cost,
		base:     make(geom.Vector, inst.Dim),
		bestCost: math.Inf(1),
	}
	run.seedRoot()
	run.drain()
	if run.bestPoint == nil {
		return nil, ErrNoSolution
	}
	return &COResult{
		Point:    run.bestPoint,
		Cost:     run.bestCost,
		Coverage: inst.CountCovering(run.bestPoint),
	}, nil
}

// minCostOverRegion minimizes cost.Eval(x - base) over the region's
// cells with lower-bound ordering and incumbent pruning.
func minCostOverRegion(region *Region, cost Cost, base geom.Vector) (geom.Vector, float64, error) {
	if region.IsEmpty() {
		return nil, 0, ErrNoSolution
	}
	order := make([]int, len(region.Cells))
	lbs := make([]float64, len(region.Cells))
	for i := range order {
		order[i] = i
		lbs[i] = cost.LowerBound(region.MBBs[i][0], base)
	}
	sort.Slice(order, func(a, b int) bool { return lbs[order[a]] < lbs[order[b]] })
	var best geom.Vector
	bestCost := 0.0
	for _, i := range order {
		if best != nil && lbs[i] >= bestCost {
			break // remaining cells cannot beat the incumbent
		}
		x, c, err := cost.MinOverCell(region.Cells[i], base)
		if err != nil {
			continue // numerically empty sliver
		}
		if best == nil || c < bestCost {
			best, bestCost = x, c
		}
	}
	if best == nil {
		return nil, 0, ErrNoSolution
	}
	return best, bestCost, nil
}

// AAWithBox runs AA over a restricted product-space box instead of
// [0,1]^d (used by the IS-style problems, whose search space is the part
// of product space dominating the product being upgraded).
func AAWithBox(inst *Instance, m int, opts Options, box *geom.Polytope) (*Region, error) {
	if err := inst.CheckM(m); err != nil {
		return nil, err
	}
	run := &aaRun{
		inst: inst,
		m:    m,
		nU:   len(inst.Users),
		opts: opts,
		tr:   celltree.New(box),
	}
	// The specialized 2-D path reports regions that extend to the unit
	// box; with a restricted box it remains valid (reported parts are
	// intersected with the cell), so no special handling is needed.
	run.seedRoot()
	run.drain()
	return run.region(), nil
}

// upgradeBox returns [p, 1]^d.
func upgradeBox(p geom.Vector) *geom.Polytope {
	hi := make(geom.Vector, len(p))
	for i := range hi {
		hi[i] = 1
	}
	return geom.NewBoxCorners(p, hi)
}
