package core

import "mir/internal/lp"

// GroupChoice selects which pending group AA inserts into a cell when the
// batch tests leave it undecided (paper Figure 17a ablation).
type GroupChoice int

const (
	// LargestGroup (the paper's strategy): the bigger the group, the more
	// aggressively it pushes the cell toward early reporting/elimination.
	LargestGroup GroupChoice = iota
	// SmallestGroup: the adversarial opposite, for ablation.
	SmallestGroup
	// RoundRobinGroup: rotate through pending groups.
	RoundRobinGroup
)

// Options tune the AA algorithm; the zero value enables every optimization
// (the paper's configuration). The Disable* switches exist for the
// effectiveness ablations of Section 6.4.
type Options struct {
	// Workers caps the parallel execution layer threaded through the
	// engine: the all-top-k preprocessing fan-out, instance construction
	// (halfspace + per-group hull precomputation), and AA's concurrent
	// batch classification of pending group views against a cell. 0 (the
	// default) uses every core (runtime.GOMAXPROCS); 1 reproduces the
	// original single-threaded execution exactly, byte-identical region
	// and Stats included — ablation and EXPERIMENTS.md numbers were
	// measured that way. The computed region is identical for every
	// setting; with Workers > 1 only the test counters in Stats may
	// exceed the sequential numbers (classification past a sequential
	// early-exit point is wasted rather than skipped).
	Workers int
	// Shards pre-splits product space into 2^j disjoint top-level boxes
	// (axis-aligned recursive bisection; the largest power of two <=
	// Shards) and runs a fully independent AA per box: its own cell tree,
	// staging heap, frontier scheduler, and stats accumulator, with the
	// shard's halfspace set prescreened against the box by banded corner
	// bounds so only halfspaces whose boundary can intersect the box are
	// ever classified inside it. Shard regions concatenate in shard-ID
	// order. 0 or 1 (the default) selects the historical single-tree
	// path. Sharding is a one-shot build strategy: it applies to AA (and
	// the public ImpactRegion); maintained runs (Maintainer / Monitor)
	// always build single-tree, whose incremental bookkeeping assumes one
	// arrangement.
	//
	// Determinism contract: for a fixed shard count the merged region and
	// all algorithmic stats are byte-identical for every Workers setting,
	// and Shards <= 1 is byte-identical to the unsharded build. Across
	// different shard counts the region covers exactly the same point set
	// (property-tested against the coverage oracle) but its cell
	// decomposition differs: shard boundaries are midplane cuts the
	// unsharded arrangement never makes. See DESIGN.md §12.
	Shards int
	// DisableSharding forces the single-tree path regardless of Shards —
	// the escape hatch (and ablation switch) when a caller sets Shards
	// globally but one run needs the historical build.
	DisableSharding bool
	// GroupChoice picks the insertion group (Figure 17a).
	GroupChoice GroupChoice
	// DisableFastTest turns off the MBB filter-and-refine tests of
	// Section 5.3 (Figure 16c).
	DisableFastTest bool
	// DisableInnerGroup turns off inner-group processing (Section 5.2):
	// group members are classified one by one against the cell and all
	// cutting halfspaces are inserted eagerly (Figure 16b).
	DisableInnerGroup bool
	// Disable2D turns off the specialized two-dimensional insertion of
	// Section 5.4, forcing the generic path even when d = 2 (Figure 16a).
	Disable2D bool
	// DisableGrouping makes every user its own group, degenerating AA
	// toward BSL-style one-by-one insertion (extra ablation).
	DisableGrouping bool
	// DisablePruning turns off the arrangement's split-time redundancy
	// elimination of cell H-representations (celltree.Tree.Prune). Pruning
	// only changes the internal representation, never the point sets, so
	// the computed region is identical either way; the switch exists for
	// benchmarking and for the equivalence property tests.
	DisablePruning bool
	// DisableWarmStart turns off warm-started LP solves
	// (celltree.Tree.WarmStart): every feasibility and redundancy solve
	// cold-starts as in the pre-incremental implementation. Warm starts
	// change only where the simplex search begins, never what it answers,
	// so regions, arrangements, and all Stats except the pivot counters
	// are byte-identical either way; the switch keeps the cold path
	// selectable for benchmarking and the differential property tests.
	DisableWarmStart bool
	// DisableKernels turns off the blocked numeric kernels
	// (internal/kern) everywhere they are threaded: the pivot
	// eliminations inside every LP solve (classification, redundancy,
	// hull membership), the layered index's batched scoring and bound
	// maintenance, and the shard prescreen's band construction. The
	// scalar paths selected instead are the verbatim historical loops,
	// and the kernels reproduce them bit for bit — so unlike every other
	// Disable* switch this one changes NOTHING observable: regions,
	// arrangements, and every Stats counter (pivot counts included) are
	// byte-identical either way; only wall time moves. It exists for
	// benchmarking (the bench-check kernel gates) and the differential
	// property tests.
	DisableKernels bool
	// DisableTopKIndex turns off the layered all-top-k product index
	// (topk.Index): preprocessing falls back to the skyband-pruned full
	// scan and the dynamic path's UserArrived recomputes thresholds by
	// scanning every product. The index changes only which products get
	// scored, never the selection — Kth results (index + score) are
	// byte-identical either way — so the switch exists for benchmarking
	// and the differential property tests.
	DisableTopKIndex bool
	// DisableRouting turns off MBB-routed incremental maintenance: every
	// arrival/departure event falls back to the historical full sweep that
	// stages the event onto every leaf of the arrangement. Routing defers
	// events on subtrees where conservative revival/demotion bounds prove
	// no decision can flip, settling them lazily, so per-event cost tracks
	// the event's geometric footprint instead of |tree|. Deferral changes
	// only when per-leaf bookkeeping is brought current, never what any
	// re-verification computes — maintained regions are byte-identical
	// routing on or off for every worker count (the property tests pin
	// this); the switch exists for benchmarking and those tests.
	DisableRouting bool
}

// Stats aggregates the algorithm-level counters reported in the paper's
// Section 6 (cell counts come from the arrangement's own stats).
type Stats struct {
	// Cells, Splits, ContainmentTests, FastTests mirror the arrangement.
	Cells            int
	Splits           int
	ContainmentTests int
	FastTests        int
	// Reported and Eliminated count decided cells; EarlyReported and
	// EarlyEliminated count the subset decided before their group list
	// emptied (the paper's early reporting / early elimination,
	// Figure 16d).
	Reported        int
	Eliminated      int
	EarlyReported   int
	EarlyEliminated int
	// HullTests counts convex-hull membership LPs run by inner-group
	// processing; GroupBatchHits counts whole groups decided by Lemma 3/4.
	HullTests      int
	GroupBatchHits int
	// PruneLPTests and PrunedRows mirror the arrangement's split-time
	// redundancy-elimination counters (zero when pruning is disabled).
	PruneLPTests int
	PrunedRows   int
	// Iterations counts heap pops.
	Iterations int
	// Pivots, WarmHits, WarmMisses, and ColdSolves aggregate the simplex
	// solvers' effort across every classification, redundancy, and hull
	// LP of the run (lp.Counters, summed order-free per worker like
	// PruneLPTests). Pivots is the primary cost metric of the warm-start
	// optimization: it is deterministic at workers=1 for a fixed
	// configuration, but — alone among the LP counters' peers — it is NOT
	// invariant across DisableWarmStart settings (that difference is the
	// optimization) and, in mIR frontier mode, it IS invariant across
	// worker counts (each cell's solve chain is cell-local).
	Pivots     int64
	WarmHits   int64
	WarmMisses int64
	ColdSolves int64
	// ScannedProducts and LayerPrunes profile the layered all-top-k
	// index: product rows actually scored and index blocks (the layers'
	// bound granules) skipped whole by the threshold bound, summed over
	// the instance's preprocessing and every
	// UserArrived answered from the index (zero when the index is
	// disabled). IndexPatches and IndexRebuilds mirror the index's
	// product-dynamics lifecycle counters. All four are deterministic
	// across worker counts (per-user work is partition-independent and
	// merges by summation).
	ScannedProducts int64
	LayerPrunes     int64
	IndexPatches    int64
	IndexRebuilds   int64
	// RoutedLeaves, SkippedSubtrees, and TouchedFrontier profile routed
	// incremental maintenance (zero outside maintained runs; see
	// celltree.Stats for the exact semantics). RoutedLeaves counts leaf
	// visits by event application, SkippedSubtrees counts subtree/leaf
	// deferrals proven safe by the routing bounds, and TouchedFrontier
	// counts leaves bucketed for re-verification. RoutedLeaves and
	// TouchedFrontier are deterministic across worker counts and routing
	// settings' respective modes (the full sweep stages every leaf;
	// routing's deferrals depend only on event geometry); all three merge
	// by summation, order-free.
	RoutedLeaves    int
	SkippedSubtrees int
	TouchedFrontier int
	// CountDesyncs counts the removals of a user some leaf believed decided
	// but whose halfspace then classified as cutting that leaf — an
	// accounting desynchronization between a cell's InCount/OutCount and
	// the alive population. It must stay zero: the invariant tests fail
	// when it doesn't, and a nonzero value means the affected leaf's counts
	// were left untouched (the removal had nothing sound to undo).
	CountDesyncs int64
	// ShardHalfspaces and PrescreenedOut profile the space-sharded build
	// (both zero on single-tree runs). Summed over shards: PrescreenedOut
	// counts halfspaces the banded box-corner prescreen absorbed into a
	// shard root's counts (their boundary provably misses the shard box —
	// they cost O(d) instead of per-cell classification down the shard's
	// tree), and ShardHalfspaces counts the survivors that entered the
	// shard's pending views. ShardHalfspaces + PrescreenedOut ==
	// Shards × |U|. Both are deterministic for a fixed shard count and
	// merge by summation, order-free.
	ShardHalfspaces int64
	PrescreenedOut  int64
	// StealCount counts successful frontier steals and MaxFrontier is the
	// high-water mark of in-flight cells. Unlike every counter above, the
	// two are scheduling-sensitive at Workers > 1 (they vary run to run)
	// and are excluded from the cross-worker-count determinism contract.
	// At Workers <= 1 StealCount is always 0 and MaxFrontier is the
	// deterministic high-water mark of the sequential heap.
	StealCount  int
	MaxFrontier int
	// DispatchedShards, RespawnedWorkers, FallbackInProcess, and
	// ShippedBytes profile the multi-process shard executor
	// (internal/dist); all four are zero on in-process builds.
	// DispatchedShards counts shard fragments computed in worker
	// processes, RespawnedWorkers counts workers respawned after a crash
	// or timeout, FallbackInProcess counts shards the pool computed
	// in-process after exhausting retries (or because no worker could be
	// spawned at all), and ShippedBytes totals the frame bytes written to
	// workers for the build (the once-encoded instance counted per worker
	// it was shipped to, plus every job frame). Like StealCount and
	// MaxFrontier these are transport counters, not algorithmic ones:
	// they are excluded from the executor byte-identity contract (the
	// in-process twin of any multi-process build has all four zero).
	DispatchedShards  int
	RespawnedWorkers  int
	FallbackInProcess int
	ShippedBytes      int64
}

// addLP folds a batch of solver-effort deltas into the Stats' LP counters.
func (s *Stats) addLP(d lp.Counters) {
	s.Pivots += d.Pivots
	s.WarmHits += d.WarmHits
	s.WarmMisses += d.WarmMisses
	s.ColdSolves += d.ColdSolves
}
