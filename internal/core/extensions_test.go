package core

import (
	"math"
	"math/rand"
	"testing"

	"mir/internal/data"
	"mir/internal/geom"
)

// TestSolveCOBasic: the CO optimum must cover at least m users, lie in the
// region, and no sampled point of the region may be cheaper.
func TestSolveCOBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		d := 2 + trial%3
		inst := randomInstance(t, rng, 300, 24, d, 5)
		m := 6 + 3*trial
		res, err := SolveCO(inst, m, L2Cost{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < m {
			t.Errorf("trial %d: coverage %d < m=%d at %v", trial, res.Coverage, m, res.Point)
		}
		if !res.Region.Contains(res.Point) {
			// Allow boundary wiggle: the point is on a cell face.
			nudged := res.Point.Clone()
			for j := range nudged {
				nudged[j] = math.Min(1, nudged[j]+1e-6)
			}
			if !res.Region.Contains(nudged) {
				t.Errorf("trial %d: optimum %v outside region", trial, res.Point)
			}
		}
		if math.Abs(res.Cost-res.Point.Norm()) > 1e-6 {
			t.Errorf("trial %d: cost %g != ||point|| %g", trial, res.Cost, res.Point.Norm())
		}
		// No sampled covering point is cheaper.
		for probe := 0; probe < 5000; probe++ {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			if inst.CountCovering(p) >= m && p.Norm() < res.Cost-1e-6 {
				t.Fatalf("trial %d: sampled %v covers %d users at cost %g < %g",
					trial, p, inst.CountCovering(p), p.Norm(), res.Cost)
			}
		}
	}
}

// TestSolveCOGeneralK: CO must work for k > 1 (the paper's generalization
// over Yang et al.).
func TestSolveCOGeneralK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{1, 5, 20} {
		inst := randomInstance(t, rng, 400, 20, 3, k)
		res, err := SolveCO(inst, 10, L2Cost{}, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Coverage < 10 {
			t.Errorf("k=%d: coverage %d < 10", k, res.Coverage)
		}
	}
}

// TestSolveCOAlternativeCosts exercises the L1 and weighted-L2 models.
func TestSolveCOAlternativeCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(t, rng, 300, 20, 3, 5)
	m := 10

	l1, err := SolveCO(inst, m, L1Cost{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if l1.Coverage < m {
		t.Errorf("L1 coverage %d < m", l1.Coverage)
	}
	for probe := 0; probe < 4000; probe++ {
		p := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		if inst.CountCovering(p) >= m && (L1Cost{}).Eval(p) < l1.Cost-1e-6 {
			t.Fatalf("sampled point beats L1 optimum: %g < %g", (L1Cost{}).Eval(p), l1.Cost)
		}
	}

	w := WeightedL2Cost{C: geom.Vector{4, 1, 1}}
	wres, err := SolveCO(inst, m, w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if wres.Coverage < m {
		t.Errorf("weighted coverage %d < m", wres.Coverage)
	}
	for probe := 0; probe < 4000; probe++ {
		p := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		if inst.CountCovering(p) >= m && w.Eval(p) < wres.Cost-1e-6 {
			t.Fatalf("sampled point beats weighted optimum")
		}
	}
}

func TestSolveCOInfeasible(t *testing.T) {
	// Construct an instance where no point covers both users: impossible
	// in mIR (the top corner always covers everyone), so instead check the
	// error path via an empty region... which cannot happen. Validate the
	// m-range error instead.
	rng := rand.New(rand.NewSource(9))
	inst := randomInstance(t, rng, 100, 5, 2, 3)
	if _, err := SolveCO(inst, 99, L2Cost{}, Options{}); err == nil {
		t.Error("m > |U| accepted")
	}
}

// upgradeOracle brute-forces the best coverage reachable from p within
// budget by sampling the upgrade box.
func upgradeOracle(inst *Instance, p geom.Vector, budget float64, rng *rand.Rand, probes int) int {
	best := inst.CountCovering(p)
	d := len(p)
	for i := 0; i < probes; i++ {
		q := make(geom.Vector, d)
		for j := range q {
			q[j] = p[j] + rng.Float64()*(1-p[j])
		}
		if q.Dist(p) <= budget && inst.MinBoundaryGap(q) > 1e-7 {
			if c := inst.CountCovering(q); c > best {
				best = c
			}
		}
	}
	return best
}

// TestSolveISExactness: the exact IS result must match or beat a dense
// sampling oracle, respect the budget, and report its coverage correctly.
func TestSolveISExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		d := 2 + trial%2
		ps := data.Independent(rng, 150, d)
		us := data.WithK(data.ClusteredUsers(rng, 20, d, 3, 0.08), 5)
		pIdx := rng.Intn(len(ps))
		// Keep the product low so upgrades matter.
		for j := range ps[pIdx] {
			ps[pIdx][j] *= 0.5
		}
		budget := 0.2 + 0.3*rng.Float64()
		res, err := SolveIS(ps, us, pIdx, budget, L2Cost{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > budget+1e-6 {
			t.Errorf("trial %d: cost %g exceeds budget %g", trial, res.Cost, budget)
		}
		// Verify the reported coverage and point placement.
		sub, err := competitorInstance(ps, us, pIdx)
		if err != nil {
			t.Fatal(err)
		}
		if got := sub.CountCovering(res.Point); got != res.Coverage {
			// The optimum may sit exactly on entry boundaries; allow the
			// recount to be at least the claim.
			if got < res.Coverage {
				t.Errorf("trial %d: recount %d < claimed %d", trial, got, res.Coverage)
			}
		}
		for j := range res.Point {
			if res.Point[j] < ps[pIdx][j]-1e-7 {
				t.Errorf("trial %d: downgrade in attribute %d", trial, j)
			}
		}
		if res.Coverage < res.BaseCoverage {
			t.Errorf("trial %d: upgrade lost coverage (%d < %d)",
				trial, res.Coverage, res.BaseCoverage)
		}
		// Exactness against the sampling oracle.
		oracle := upgradeOracle(sub, ps[pIdx], budget, rng, 20000)
		if res.Coverage < oracle {
			t.Errorf("trial %d: IS coverage %d below sampled %d", trial, res.Coverage, oracle)
		}
	}
}

func TestSolveISErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ps := data.Independent(rng, 50, 2)
	us := data.WithK(data.UniformUsers(rng, 8, 2), 3)
	if _, err := SolveIS(ps, us, -1, 0.5, L2Cost{}, Options{}); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := SolveIS(ps, us, 99, 0.5, L2Cost{}, Options{}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := SolveIS(ps, us, 0, -1, L2Cost{}, Options{}); err == nil {
		t.Error("negative budget accepted")
	}
}

// TestSolveISZeroBudget: with budget 0 the only option is standing still.
func TestSolveISZeroBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ps := data.Independent(rng, 100, 2)
	us := data.WithK(data.UniformUsers(rng, 10, 2), 3)
	res, err := SolveIS(ps, us, 0, 0, L2Cost{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 1e-9 {
		t.Errorf("cost %g with zero budget", res.Cost)
	}
	if res.Coverage != res.BaseCoverage {
		t.Errorf("coverage %d != base %d with zero budget", res.Coverage, res.BaseCoverage)
	}
}

// TestSolveBudgetedCO: maximum-coverage creation under budget, checked
// against a sampling oracle.
func TestSolveBudgetedCO(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 4; trial++ {
		d := 2 + trial%2
		inst := randomInstance(t, rng, 150, 16, d, 5)
		budget := 0.6 + 0.3*rng.Float64()
		res, err := SolveBudgetedCO(inst, budget, L2Cost{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost > budget+1e-6 {
			t.Errorf("trial %d: cost %g > budget %g", trial, res.Cost, budget)
		}
		// Oracle: sample the ball of radius budget (via box + filter).
		best := 0
		for probe := 0; probe < 20000; probe++ {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			if p.Norm() <= budget && inst.MinBoundaryGap(p) > 1e-7 {
				if c := inst.CountCovering(p); c > best {
					best = c
				}
			}
		}
		if res.Coverage < best {
			t.Errorf("trial %d: budgeted CO coverage %d below sampled %d",
				trial, res.Coverage, best)
		}
	}
}

// TestSolveThresholdedIS: the cheapest upgrade reaching m users.
func TestSolveThresholdedIS(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ps := data.Independent(rng, 150, 3)
	us := data.WithK(data.ClusteredUsers(rng, 16, 3, 3, 0.08), 5)
	pIdx := 0
	for j := range ps[pIdx] {
		ps[pIdx][j] *= 0.3
	}
	m := 8
	res, err := SolveThresholdedIS(ps, us, pIdx, m, L2Cost{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < m {
		t.Errorf("coverage %d < m=%d", res.Coverage, m)
	}
	sub, err := competitorInstance(ps, us, pIdx)
	if err != nil {
		t.Fatal(err)
	}
	// No sampled upgrade reaching m users may be cheaper.
	for probe := 0; probe < 20000; probe++ {
		q := make(geom.Vector, 3)
		for j := range q {
			q[j] = ps[pIdx][j] + rng.Float64()*(1-ps[pIdx][j])
		}
		if sub.CountCovering(q) >= m && q.Dist(ps[pIdx]) < res.Cost-1e-6 {
			t.Fatalf("sampled upgrade %v reaches m at cost %g < %g",
				q, q.Dist(ps[pIdx]), res.Cost)
		}
	}
}

// TestISBeatsGreedyWhenCoordinated: construct a scenario where users
// cluster so a coordinated upgrade covers many, and check IS finds it.
func TestISFindsClusterUpgrade(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	// Products spread low; users all share nearly the same preference, so
	// covering one covers all — an upgrade into their halfspace wins all.
	ps := data.Independent(rng, 80, 2)
	for i := range ps {
		ps[i] = ps[i].Scale(0.7)
	}
	ws := data.ClusteredUsers(rng, 12, 2, 1, 0.01)
	us := data.WithK(ws, 1)
	res, err := SolveIS(ps, us, 0, 2.0, L2Cost{}, Options{}) // generous budget
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage < 12 {
		t.Errorf("generous budget should cover all 12 users, got %d", res.Coverage)
	}
}

// TestSolveCOBestFirstMatchesTwoPhase: the cost-directed CO search must
// find exactly the optimum the region-based solver finds.
func TestSolveCOBestFirstMatchesTwoPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		d := 2 + trial%3
		nU := 14 + 2*trial
		inst := randomInstance(t, rng, 250, nU, d, 1+trial%5)
		m := 3 + rng.Intn(nU-4)
		slow, err := SolveCO(inst, m, L2Cost{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fast, err := SolveCOBestFirst(inst, m, L2Cost{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(slow.Cost-fast.Cost) > 1e-5 {
			t.Errorf("trial %d (d=%d m=%d): two-phase %g vs best-first %g",
				trial, d, m, slow.Cost, fast.Cost)
		}
		if fast.Coverage < m {
			t.Errorf("trial %d: best-first coverage %d < m=%d", trial, fast.Coverage, m)
		}
	}
}

// TestSolveCOBestFirstL1: best-first works with other cost models too.
func TestSolveCOBestFirstL1(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	inst := randomInstance(t, rng, 200, 16, 3, 5)
	slow, err := SolveCO(inst, 8, L1Cost{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := SolveCOBestFirst(inst, 8, L1Cost{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slow.Cost-fast.Cost) > 1e-5 {
		t.Errorf("L1: two-phase %g vs best-first %g", slow.Cost, fast.Cost)
	}
}
