package core

import (
	"mir/internal/celltree"
	"mir/internal/geom"
)

// Region is the mIR output: the maximal region of product space where any
// product covers at least m users, represented as a union of convex cells.
// Cells from arrangement-based algorithms are interior-disjoint; NVE's
// cells may overlap (their union is still exactly R).
type Region struct {
	Dim   int
	M     int
	Cells []*geom.Polytope
	// MBBs holds each cell's cached bounding box ([0] = lower corner,
	// [1] = upper), parallel to Cells; used for cost-bound pruning in the
	// CO adaptation. Nil for NVE results.
	MBBs  [][2]geom.Vector
	Stats Stats
	// Sched carries the frontier scheduler's execution profile when the
	// region was computed task-parallel (nil for sequential runs and
	// non-AA algorithms). Its values are scheduling-sensitive and excluded
	// from the determinism contract the rest of the Region obeys.
	Sched *SchedStats
	// ShardCells holds the arrangement-cell count each shard of a
	// space-sharded build created, in shard-ID order (nil for single-tree
	// runs). Deterministic per shard count; its sum is Stats.Cells minus
	// nothing — every created cell belongs to exactly one shard. The
	// total/max ratio bounds the parallel speedup the decomposition
	// admits, which is what the bench-shard balance gate checks.
	ShardCells []int
}

// Contains reports whether point p lies in the region (in at least one
// cell).
func (r *Region) Contains(p geom.Vector) bool {
	for _, c := range r.Cells {
		if c.ContainsPoint(p) {
			return true
		}
	}
	return false
}

// IsEmpty reports whether the region has no cells.
func (r *Region) IsEmpty() bool { return len(r.Cells) == 0 }

// Area2D returns the region's area for two-dimensional instances by
// clipping each cell against the unit square; it panics for other
// dimensionalities. Overlapping cells (NVE) would be double counted, so
// this is intended for arrangement-based results.
func (r *Region) Area2D() float64 {
	if r.Dim != 2 {
		panic("core: Area2D requires d=2")
	}
	a := 0.0
	for _, c := range r.Cells {
		a += geom.ClipPolytope2D(c, 0, 1).Area()
	}
	return a
}

// regionFromTree collects reported leaves into a Region and merges stats.
func regionFromTree(tr *celltree.Tree, m int, st Stats) *Region {
	st.Cells = tr.Stats.CellsCreated
	st.Splits = tr.Stats.Splits
	st.ContainmentTests += tr.Stats.ContainmentTests
	st.FastTests = tr.Stats.FastTests
	st.Reported = tr.Stats.Reported
	st.Eliminated = tr.Stats.Eliminated
	st.PruneLPTests = tr.Stats.PruneLPTests
	st.PrunedRows = tr.Stats.PrunedRows
	st.RoutedLeaves = tr.Stats.RoutedLeaves
	st.SkippedSubtrees = tr.Stats.SkippedSubtrees
	st.TouchedFrontier = tr.Stats.TouchedFrontier
	// +=, not =: the hull-membership LPs ran core-side and are already in
	// st; the tree's counters add the classification and redundancy solves.
	st.addLP(tr.Stats.LP)
	reg := &Region{Dim: tr.Dim, M: m, Stats: st}
	for _, leaf := range tr.ReportedLeaves() {
		// FullPolytope, not Polytope: the exported H-representation is the
		// raw split history, independent of the arrangement's internal
		// redundancy pruning.
		reg.Cells = append(reg.Cells, leaf.FullPolytope())
		reg.MBBs = append(reg.MBBs, [2]geom.Vector{leaf.MBBLo, leaf.MBBHi})
	}
	return reg
}
