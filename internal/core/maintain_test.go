package core

import (
	"math/rand"
	"testing"

	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// checkMaintainerOracle verifies the maintained region against the alive
// population by sampling: in-region iff covering >= m alive users.
func checkMaintainerOracle(t *testing.T, mt *Maintainer, m int, rng *rand.Rand, probes int) {
	t.Helper()
	reg := mt.Region()
	for i := 0; i < probes; i++ {
		p := make(geom.Vector, mt.dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		if mt.MinBoundaryGap(p) < 1e-6 {
			continue
		}
		covers := mt.CountCovering(p)
		if (covers >= m) != reg.Contains(p) {
			t.Fatalf("maintained region wrong at %v: covers %d (m=%d, |U|=%d) contains=%v",
				p, covers, m, mt.NumUsers(), reg.Contains(p))
		}
	}
}

func TestMaintainerAddUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := randomInstance(t, rng, 200, 15, 3, 5)
	m := 8
	mt, err := NewMaintainer(inst, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	checkMaintainerOracle(t, mt, m, rng, 1200)
	for i := 0; i < 6; i++ {
		w := data.UniformUsers(rng, 1, 3)[0]
		if _, err := mt.AddUser(topk.UserPref{W: w, K: 1 + rng.Intn(8)}); err != nil {
			t.Fatal(err)
		}
		checkMaintainerOracle(t, mt, m, rng, 800)
	}
	if mt.NumUsers() != 21 {
		t.Errorf("NumUsers = %d, want 21", mt.NumUsers())
	}
}

func TestMaintainerRemoveUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := randomInstance(t, rng, 200, 18, 3, 5)
	m := 8
	mt, err := NewMaintainer(inst, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	order := rng.Perm(18)
	for i := 0; i < 8; i++ {
		if err := mt.RemoveUser(order[i]); err != nil {
			t.Fatal(err)
		}
		checkMaintainerOracle(t, mt, m, rng, 800)
	}
	if mt.NumUsers() != 10 {
		t.Errorf("NumUsers = %d, want 10", mt.NumUsers())
	}
}

// TestMaintainerChurn interleaves arrivals and departures and cross-checks
// against a from-scratch recomputation at the end.
func TestMaintainerChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{2, 3} {
		ps := data.Independent(rng, 200, d)
		ws := data.ClusteredUsers(rng, 14, d, 3, 0.08)
		users := data.WithK(ws, 5)
		inst, err := NewInstance(ps, users)
		if err != nil {
			t.Fatal(err)
		}
		m := 7
		mt, err := NewMaintainer(inst, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		aliveSet := map[int]bool{}
		for i := 0; i < 14; i++ {
			aliveSet[i] = true
		}
		for step := 0; step < 12; step++ {
			if rng.Intn(2) == 0 || len(aliveSet) <= m {
				w := data.UniformUsers(rng, 1, d)[0]
				idx, err := mt.AddUser(topk.UserPref{W: w, K: 1 + rng.Intn(6)})
				if err != nil {
					t.Fatal(err)
				}
				aliveSet[idx] = true
			} else {
				var victim int
				for idx := range aliveSet {
					victim = idx
					break
				}
				delete(aliveSet, victim)
				if err := mt.RemoveUser(victim); err != nil {
					t.Fatal(err)
				}
			}
			checkMaintainerOracle(t, mt, m, rng, 500)
		}
		// Final cross-check against a fresh AA run over the alive users.
		var aliveUsers []topk.UserPref
		for i, u := range mt.users {
			if mt.alive[i] {
				aliveUsers = append(aliveUsers, u)
			}
		}
		fresh, err := NewInstance(ps, aliveUsers)
		if err != nil {
			t.Fatal(err)
		}
		freshReg, err := AA(fresh, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		maintained := mt.Region()
		for probe := 0; probe < 2000; probe++ {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			if fresh.MinBoundaryGap(p) < 1e-6 {
				continue
			}
			if freshReg.Contains(p) != maintained.Contains(p) {
				t.Fatalf("d=%d: maintained and fresh regions disagree at %v (covers %d)",
					d, p, fresh.CountCovering(p))
			}
		}
	}
}

func TestMaintainerErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := randomInstance(t, rng, 100, 8, 2, 3)
	mt, err := NewMaintainer(inst, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mt.AddUser(topk.UserPref{W: geom.Vector{0.5, 0.3, 0.2}, K: 3}); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := mt.AddUser(topk.UserPref{W: geom.Vector{0.5, 0.5}, K: 0}); err == nil {
		t.Error("bad k accepted")
	}
	if err := mt.RemoveUser(99); err == nil {
		t.Error("bad index accepted")
	}
	if err := mt.RemoveUser(3); err != nil {
		t.Fatal(err)
	}
	if err := mt.RemoveUser(3); err == nil {
		t.Error("double removal accepted")
	}
}

// TestMaintainerCheaperThanRecompute: incremental work after one arrival
// should create far fewer new cells than recomputing from scratch.
func TestMaintainerIncrementalWork(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	inst := randomInstance(t, rng, 400, 40, 3, 10)
	m := 20
	mt, err := NewMaintainer(inst, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cellsBefore := mt.run.tr.Stats.CellsCreated
	w := data.UniformUsers(rng, 1, 3)[0]
	if _, err := mt.AddUser(topk.UserPref{W: w, K: 10}); err != nil {
		t.Fatal(err)
	}
	added := mt.run.tr.Stats.CellsCreated - cellsBefore
	if added > cellsBefore/2 {
		t.Errorf("incremental add created %d cells on top of %d — not incremental",
			added, cellsBefore)
	}
}
