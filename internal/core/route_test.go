package core

import (
	"math/rand"
	"testing"

	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// auditAliveAccounting checks the maintained accounting invariant on a
// settled Maintainer: on every non-empty leaf the decided counts plus the
// pending view members equal the alive population, and no user is pending
// twice. Unlike auditCounts this stays meaningful after departures, whose
// halfspaces remain registered but must no longer be counted anywhere.
func auditAliveAccounting(t *testing.T, mt *Maintainer) {
	t.Helper()
	for _, leaf := range mt.run.tr.Leaves(nil, nil) {
		if leaf.Empty {
			continue
		}
		pend := map[int]bool{}
		if cg, ok := leaf.Payload.(*cellGroups); ok && cg != nil {
			for _, v := range cg.views {
				for _, ui := range v.members {
					if pend[ui] {
						t.Fatalf("leaf %d: user %d pending twice", leaf.ID, ui)
					}
					pend[ui] = true
				}
			}
		}
		if got := leaf.InCount + leaf.OutCount + len(pend); got != mt.nAlive {
			t.Fatalf("leaf %d (status %v): in=%d out=%d pending=%d sums to %d, alive %d",
				leaf.ID, leaf.Status, leaf.InCount, leaf.OutCount, len(pend), got, mt.nAlive)
		}
	}
}

// TestRoutingByteIdentical is the localized-maintenance determinism
// contract: with routing enabled (the default) the maintained arrangement
// is byte-identical to the historical every-leaf sweep selected by
// Options.DisableRouting — same cells in the same order, same halfspaces,
// same bounding boxes — across worker counts, for single-event
// application and coalesced batches alike. Only the locality profile may
// differ: the routed runs must skip subtrees and visit strictly fewer
// leaves, and both modes' routing counters must be identical for every
// worker count (they are charged between drains, outside the parallel
// sections).
func TestRoutingByteIdentical(t *testing.T) {
	baseRng := rand.New(rand.NewSource(61))
	ps := data.Independent(baseRng, 180, 3)
	us := data.WithK(data.ClusteredUsers(baseRng, 16, 3, 3, 0.08), 4)
	events := batchScript(rand.New(rand.NewSource(63)), 16, 3, 6, 36)
	m := 7

	mkMt := func(workers int, disable bool) *Maintainer {
		opts := Options{Workers: workers, DisableRouting: disable}
		inst, err := NewInstanceOpts(ps, deepCopyUsers(us), opts)
		if err != nil {
			t.Fatal(err)
		}
		mt, err := NewMaintainer(inst, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		return mt
	}
	applyChunked := func(mt *Maintainer) {
		t.Helper()
		for lo := 0; lo < len(events); lo += 9 {
			hi := lo + 9
			if hi > len(events) {
				hi = len(events)
			}
			if _, err := mt.ApplyBatch(events[lo:hi]); err != nil {
				t.Fatalf("chunk [%d,%d): %v", lo, hi, err)
			}
		}
	}
	applySingles := func(mt *Maintainer) {
		t.Helper()
		for i, ev := range events {
			var err error
			if ev.Kind == EventArrive {
				_, err = mt.AddUser(topk.UserPref{W: append(geom.Vector(nil), ev.User.W...), K: ev.User.K})
			} else {
				err = mt.RemoveUser(ev.Handle)
			}
			if err != nil {
				t.Fatalf("event %d: %v", i, err)
			}
		}
	}

	var ref *Region
	var routedCounters, sweptCounters [3]int
	for wi, workers := range []int{1, 2, 4, 8} {
		routed := mkMt(workers, false)
		swept := mkMt(workers, true)
		applyChunked(routed)
		applyChunked(swept)

		rReg, sReg := routed.Region(), swept.Region()
		batchRegionsIdentical(t, "routed vs swept (chunked)", rReg, sReg)
		if ref == nil {
			ref = rReg
		} else {
			batchRegionsIdentical(t, "across worker counts", ref, rReg)
		}
		for _, st := range []Stats{rReg.Stats, sReg.Stats} {
			if st.CountDesyncs != 0 {
				t.Fatalf("workers=%d: %d count desyncs", workers, st.CountDesyncs)
			}
		}

		// Locality: routing must actually defer work, and visit strictly
		// fewer leaves than the sweep; the sweep must never defer.
		if rReg.Stats.SkippedSubtrees == 0 {
			t.Fatalf("workers=%d: routed run skipped no subtrees", workers)
		}
		if sReg.Stats.SkippedSubtrees != 0 {
			t.Fatalf("workers=%d: swept run reports %d skipped subtrees", workers, sReg.Stats.SkippedSubtrees)
		}
		if rReg.Stats.RoutedLeaves >= sReg.Stats.RoutedLeaves {
			t.Fatalf("workers=%d: routed visited %d leaves, sweep %d — no locality win",
				workers, rReg.Stats.RoutedLeaves, sReg.Stats.RoutedLeaves)
		}
		if rReg.Stats.TouchedFrontier != sReg.Stats.TouchedFrontier {
			t.Fatalf("workers=%d: routed re-verified %d leaves, sweep %d — frontiers must agree",
				workers, rReg.Stats.TouchedFrontier, sReg.Stats.TouchedFrontier)
		}
		// Order-free merges make the profile itself deterministic across
		// worker counts (per mode).
		rc := [3]int{rReg.Stats.RoutedLeaves, rReg.Stats.SkippedSubtrees, rReg.Stats.TouchedFrontier}
		sc := [3]int{sReg.Stats.RoutedLeaves, sReg.Stats.SkippedSubtrees, sReg.Stats.TouchedFrontier}
		if wi == 0 {
			routedCounters, sweptCounters = rc, sc
		} else if rc != routedCounters || sc != sweptCounters {
			t.Fatalf("workers=%d: routing counters not worker-invariant: routed %v (want %v), swept %v (want %v)",
				workers, rc, routedCounters, sc, sweptCounters)
		}

		// Single-event application (AddUser/RemoveUser are one-event
		// batches) must land on the same bytes; batch-vs-sequential per
		// mode is already pinned elsewhere, so one worker count suffices
		// for the mode cross.
		if workers == 1 {
			routedSeq := mkMt(workers, false)
			sweptSeq := mkMt(workers, true)
			applySingles(routedSeq)
			applySingles(sweptSeq)
			batchRegionsIdentical(t, "routed single-event", rReg, routedSeq.Region())
			batchRegionsIdentical(t, "swept single-event", rReg, sweptSeq.Region())

			// Settling the routed backlog is pure bookkeeping: the region
			// does not move, and the fully-settled payloads obey the
			// maintained accounting invariant counts + pending = alive on
			// every non-empty leaf. (The exact-reclassification audit of
			// invariant_test.go is not applicable after heavy churn: it
			// re-counts departed users' halfspaces too.)
			routedSeq.settleAll()
			batchRegionsIdentical(t, "after settleAll", rReg, routedSeq.Region())
			auditAliveAccounting(t, routedSeq)
		}

		checkMaintainerOracle(t, routed, m, rand.New(rand.NewSource(67)), 400)
	}
}
