package core

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mir/internal/celltree"
	"mir/internal/geom"
)

func TestEffectiveShards(t *testing.T) {
	cases := []struct {
		opts Options
		want int
	}{
		{Options{}, 1},
		{Options{Shards: 1}, 1},
		{Options{Shards: -3}, 1},
		{Options{Shards: 2}, 2},
		{Options{Shards: 3}, 2},
		{Options{Shards: 4}, 4},
		{Options{Shards: 7}, 4},
		{Options{Shards: 8}, 8},
		{Options{Shards: 9}, 8},
		{Options{Shards: 8, DisableSharding: true}, 1},
	}
	for _, tc := range cases {
		if got := effectiveShards(tc.opts); got != tc.want {
			t.Errorf("effectiveShards(Shards=%d, disable=%v) = %d, want %d",
				tc.opts.Shards, tc.opts.DisableSharding, got, tc.want)
		}
	}
}

// TestShardBoxesPartition pins the decomposition: 2^j boxes that tile
// [0,1]^d with disjoint interiors, enumerated in bisection-path order,
// each carrying the heap ID of its virtual tree node. The split
// coordinates are data-adaptive, so the invariants are checked against a
// real instance per dimensionality.
func TestShardBoxesPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	for _, d := range []int{2, 3, 4} {
		inst := randomInstance(t, rng, 300, 24, d, 5)
		m := len(inst.Users) / 2
		for _, shards := range []int{1, 2, 4, 8, 16} {
			boxes := PlanShards(inst, m, shards)
			if len(boxes) != shards {
				t.Fatalf("d=%d shards=%d: %d boxes", d, shards, len(boxes))
			}
			vol := 0.0
			ids := make(map[int]bool)
			for s, b := range boxes {
				v := 1.0
				for j := 0; j < d; j++ {
					if b.Lo[j] >= b.Hi[j] || b.Lo[j] < 0 || b.Hi[j] > 1 {
						t.Fatalf("d=%d shards=%d box %d malformed: lo=%v hi=%v", d, shards, s, b.Lo, b.Hi)
					}
					v *= b.Hi[j] - b.Lo[j]
				}
				vol += v
				if ids[b.ID] {
					t.Fatalf("d=%d shards=%d: duplicate shard root ID %d", d, shards, b.ID)
				}
				ids[b.ID] = true
				// Heaviest-first bisection produces uneven depths, but a box
				// never needs more than shards-1 cuts above it, and its ID
				// must sit on the heap level of its own depth.
				if shards > 1 && (b.Depth < 1 || b.Depth > shards-1) {
					t.Fatalf("d=%d shards=%d box %d: depth %d out of range", d, shards, s, b.Depth)
				}
				if b.ID < (1<<b.Depth)-1 || b.ID > (1<<(b.Depth+1))-2 {
					t.Fatalf("d=%d shards=%d box %d: ID %d outside heap level %d", d, shards, s, b.ID, b.Depth)
				}
				// Interior disjointness against every earlier box.
				for r := 0; r < s; r++ {
					overlap := true
					for j := 0; j < d; j++ {
						if boxes[r].Hi[j] <= b.Lo[j] || b.Hi[j] <= boxes[r].Lo[j] {
							overlap = false
							break
						}
					}
					if overlap {
						t.Fatalf("d=%d shards=%d: boxes %d and %d overlap", d, shards, r, s)
					}
				}
			}
			if math.Abs(vol-1.0) > 1e-12 {
				t.Fatalf("d=%d shards=%d: total volume %g", d, shards, vol)
			}
		}
	}
}

// TestShardBoxIDsPrefixFree is the seam contract the multi-process wire
// protocol depends on (internal/dist ships boxes by ID and merges
// fragments in slice order): every shard root ID encodes the box's
// bisection path, no path is a prefix of another (so no shard's subtree
// of cell IDs can collide with another's), and the boxes enumerate in
// bisection-path (in-order, i.e. lexicographic path) order.
func TestShardBoxIDsPrefixFree(t *testing.T) {
	// Reconstruct the root→leaf bit path from a heap ID: child 2i+1 is
	// the low ("0") side, 2i+2 the high ("1") side.
	path := func(b ShardBox) string {
		bits := make([]byte, b.Depth)
		id := b.ID
		for l := b.Depth - 1; l >= 0; l-- {
			parent := (id - 1) / 2
			if id == 2*parent+2 {
				bits[l] = '1'
			} else {
				bits[l] = '0'
			}
			id = parent
		}
		return string(bits)
	}
	rng := rand.New(rand.NewSource(88))
	for _, d := range []int{2, 3} {
		inst := randomInstance(t, rng, 300, 24, d, 5)
		m := len(inst.Users) / 2
		for _, shards := range []int{2, 4, 8, 16} {
			boxes := PlanShards(inst, m, shards)
			paths := make([]string, len(boxes))
			for i, b := range boxes {
				paths[i] = path(b)
				if len(paths[i]) != b.Depth {
					t.Fatalf("d=%d shards=%d box %d: path %q does not match depth %d", d, shards, i, paths[i], b.Depth)
				}
			}
			for i := range paths {
				for j := range paths {
					if i != j && strings.HasPrefix(paths[j], paths[i]) {
						t.Fatalf("d=%d shards=%d: box %d path %q is a prefix of box %d path %q — their cell-ID subtrees overlap",
							d, shards, i, paths[i], j, paths[j])
					}
				}
			}
			if !sort.StringsAreSorted(paths) {
				t.Fatalf("d=%d shards=%d: boxes not in bisection-path order: %v", d, shards, paths)
			}
		}
	}
}

// TestShardedWorkerByteIdentical is the sharded analogue of the frontier
// identity property: for a fixed shard count, the merged region and all
// algorithmic stats are byte-identical for every worker count.
func TestShardedWorkerByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	cases := []struct {
		d, nP, nU, k int
		opts         Options
	}{
		{3, 400, 32, 6, Options{}},
		{3, 400, 32, 6, Options{DisablePruning: true}},
		{2, 300, 40, 5, Options{}},
		{4, 300, 24, 6, Options{}},
	}
	for ci, tc := range cases {
		inst := randomInstance(t, rng, tc.nP, tc.nU, tc.d, tc.k)
		for _, m := range []int{1, tc.nU / 3, tc.nU / 2} {
			if m < 1 {
				m = 1
			}
			for _, shards := range []int{2, 4, 8} {
				refOpts := tc.opts
				refOpts.Shards = shards
				refOpts.Workers = 1
				ref, err := AA(inst, m, refOpts)
				if err != nil {
					t.Fatalf("case %d m=%d shards=%d workers=1: %v", ci, m, shards, err)
				}
				for _, workers := range []int{2, 4, 8} {
					opts := tc.opts
					opts.Shards = shards
					opts.Workers = workers
					got, err := AA(inst, m, opts)
					if err != nil {
						t.Fatalf("case %d m=%d shards=%d workers=%d: %v", ci, m, shards, workers, err)
					}
					regionsIdentical(t, ref, got)
					sa, sb := ref.Stats, got.Stats
					sa.StealCount, sb.StealCount = 0, 0
					sa.MaxFrontier, sb.MaxFrontier = 0, 0
					if sa != sb {
						t.Fatalf("case %d m=%d shards=%d workers=%d: stats diverge:\nw=1 %+v\nw=%d %+v",
							ci, m, shards, workers, sa, workers, sb)
					}
				}
			}
		}
	}
}

// TestShardsOneIsSingleTree pins the escape hatches: Shards <= 1 and
// DisableSharding both select the historical single-tree path, byte for
// byte — region, stats (shard counters zero), and scheduler profile
// presence included.
func TestShardsOneIsSingleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	inst := randomInstance(t, rng, 400, 32, 3, 6)
	m := 16
	base, err := AA(inst, m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.ShardHalfspaces != 0 || base.Stats.PrescreenedOut != 0 {
		t.Fatalf("single-tree run has shard counters: %+v", base.Stats)
	}
	for _, opts := range []Options{
		{Workers: 1, Shards: 1},
		{Workers: 1, Shards: 0},
		{Workers: 1, Shards: 8, DisableSharding: true},
	} {
		got, err := AA(inst, m, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		regionsIdentical(t, base, got)
		if base.Stats != got.Stats {
			t.Fatalf("%+v: stats diverge from single-tree run:\nbase %+v\ngot  %+v",
				opts, base.Stats, got.Stats)
		}
	}
}

// TestShardedRegionPointSetEquivalent verifies that every shard count
// computes the same region as a point set: each merged region satisfies
// the coverage oracle, agrees with the unsharded region on sampled
// points, and (at d=2) has the same area. The cell decompositions differ
// by construction — shard boundaries are axis-aligned cuts the unsharded
// arrangement never makes — which is exactly why the equivalence is
// pinned geometrically rather than structurally.
func TestShardedRegionPointSetEquivalent(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	cases := []struct {
		d, nP, nU, k, m int
	}{
		{2, 300, 40, 5, 13},
		{3, 400, 32, 6, 16},
		{3, 400, 32, 6, 1},
		{4, 300, 24, 6, 12},
	}
	for ci, tc := range cases {
		inst := randomInstance(t, rng, tc.nP, tc.nU, tc.d, tc.k)
		base, err := AA(inst, tc.m, Options{Workers: 1})
		if err != nil {
			t.Fatalf("case %d unsharded: %v", ci, err)
		}
		for _, shards := range []int{2, 4, 8} {
			got, err := AA(inst, tc.m, Options{Workers: 1, Shards: shards})
			if err != nil {
				t.Fatalf("case %d shards=%d: %v", ci, shards, err)
			}
			checkRegionOracle(t, inst, tc.m, got, rng, 300)
			sameRegion(t, inst, base, got, rng, 300)
			if tc.d == 2 {
				a, b := base.Area2D(), got.Area2D()
				if diff := math.Abs(a - b); diff > 1e-9*(1+math.Abs(a)) {
					t.Fatalf("case %d shards=%d: area %g vs unsharded %g", ci, shards, b, a)
				}
			}
		}
	}
}

// TestShardedCounters pins the prescreen accounting: over all shards the
// classified halfspaces partition into survivors and absorbed ones
// (ShardHalfspaces + PrescreenedOut == Shards × |U|), the prescreen
// absorbs a nonzero fraction once the decomposition is fine enough
// (shards >= 4 — a single work-balanced cut can leave every boundary
// crossing both halves), and every merged cell lies inside some shard
// box.
func TestShardedCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	inst := randomInstance(t, rng, 400, 32, 3, 6)
	nU := len(inst.Users)
	m := 16
	for _, shards := range []int{2, 4, 8} {
		reg, err := AA(inst, m, Options{Workers: 1, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		total := reg.Stats.ShardHalfspaces + reg.Stats.PrescreenedOut
		if total != int64(shards*nU) {
			t.Fatalf("shards=%d: ShardHalfspaces %d + PrescreenedOut %d = %d, want %d",
				shards, reg.Stats.ShardHalfspaces, reg.Stats.PrescreenedOut, total, shards*nU)
		}
		if shards >= 4 && reg.Stats.PrescreenedOut == 0 {
			t.Fatalf("shards=%d: prescreen absorbed nothing", shards)
		}
		boxes := PlanShards(inst, m, shards)
		for i, mbb := range reg.MBBs {
			inSome := false
			for _, b := range boxes {
				ok := true
				for j := 0; j < inst.Dim; j++ {
					if mbb[0][j] < b.Lo[j]-1e-9 || mbb[1][j] > b.Hi[j]+1e-9 {
						ok = false
						break
					}
				}
				if ok {
					inSome = true
					break
				}
			}
			if !inSome {
				t.Fatalf("shards=%d: cell %d MBB %v..%v not contained in any shard box",
					shards, i, mbb[0], mbb[1])
			}
		}
	}
}

// TestShardRootIDsNamespaced pins that shard-local cell IDs inherit the
// shard root's virtual-path prefix: the merged forest's root IDs are the
// heap numbers of the bisection tree's level, so IDs are globally unique
// across shards for a fixed shard count.
func TestShardRootIDsNamespaced(t *testing.T) {
	box := geom.NewBoxCorners(geom.Vector{0, 0}, geom.Vector{0.5, 1})
	tr := celltree.NewRooted(box, 3, 2)
	if tr.Root.ID != 3 || tr.Root.Depth != 2 {
		t.Fatalf("NewRooted root = {ID %d, Depth %d}, want {3, 2}", tr.Root.ID, tr.Root.Depth)
	}
	if tr.Stats.MaxDepth != 2 {
		t.Fatalf("NewRooted MaxDepth = %d, want 2", tr.Stats.MaxDepth)
	}
	lo, hi, ok := box.MBB()
	if !ok || lo[0] != 0 || hi[0] != 0.5 {
		t.Fatalf("NewRooted box MBB = %v..%v ok=%v", lo, hi, ok)
	}
}
