package core

import (
	"mir/internal/celltree"
	"mir/internal/geom"
)

// insert2D is the specialized group insertion for d = 2 (Section 5.4,
// Algorithm 3). Within a group, all influential halfplane boundaries pass
// through the common top-k-th product r, and by Lemma 5 they are nested on
// each side of the vertical line x = r[1]: sorting members by descending
// w[1] (the view's inherited order), the part of the cell inside H_m or
// H_{t-m+1} covers at least m group members (Lemma 6) and can be reported
// outright, while members between those two indices exclude the entire
// remainder and are dropped from further consideration.
//
// It returns the group list for the cell's surviving leaves, or nil when
// the cell was decided.
func (w *aaWorker) insert2D(c *celltree.Cell, cg *cellGroups, vi int) *cellGroups {
	r := w.r
	v := cg.views[vi]
	t := len(v.members)
	m := r.m

	newCG := cg.clone()
	newCG.remove(indexOfView(newCG, v))

	hsOf := func(pos int) geom.Halfspace { return r.inst.HS[v.members[pos]] }

	switch {
	case t >= 2*m:
		// Report (H_m ∪ H_{t-m+1}) ∩ c. Survivors lie outside both, where
		// users m..t-m+1 (1-based) all exclude; only the m-1 top and m-1
		// bottom members stay relevant.
		hm, hr := hsOf(m-1), hsOf(t-m)
		w.apply2D(c, hm, hr, func(leaf *celltree.Cell, inHm, inHr bool) {
			if inHm || inHr {
				w.reportCell(leaf)
				return
			}
			leaf.OutCount += t - 2*m + 2
		})
		keep := make([]int, 0, 2*(m-1))
		for pos := 0; pos < m-1; pos++ {
			keep = append(keep, v.members[pos])
		}
		for pos := t - m + 1; pos < t; pos++ {
			keep = append(keep, v.members[pos])
		}
		if len(keep) > 0 {
			newCG.views = append(newCG.views, v.withMembers(keep))
		}

	case t >= m:
		// Report (H_m ∩ H_{t-m+1}) ∩ c; survivors learn their relation to
		// the two inserted members, who leave the group.
		lPos, rPos := m-1, t-m
		if lPos == rPos {
			// t = 2m-1: the two bounds coincide; a single halfspace decides.
			h := hsOf(lPos)
			w.apply2D(c, h, h, func(leaf *celltree.Cell, inH, _ bool) {
				if inH {
					w.reportCell(leaf)
					return
				}
				leaf.OutCount++
			})
			if rest := dropPositions(v.members, lPos, lPos); len(rest) > 0 {
				newCG.views = append(newCG.views, v.withMembers(rest))
			}
			break
		}
		hl, hr := hsOf(lPos), hsOf(rPos)
		w.apply2D(c, hl, hr, func(leaf *celltree.Cell, inL, inR bool) {
			if inL && inR {
				w.reportCell(leaf)
				return
			}
			bump(leaf, inL)
			bump(leaf, inR)
		})
		// Only the two inserted members leave the group (Algorithm 3 line
		// 11); the members between them remain undecided for survivors.
		// Note rPos < lPos here: t - m < m - 1 when t < 2m - 1.
		if rest := dropTwo(v.members, lPos, rPos); len(rest) > 0 {
			newCG.views = append(newCG.views, v.withMembers(rest))
		}

	default:
		// t < m: the group alone cannot report; insert its two extreme
		// halfplanes (the 1-D hull) and defer the rest.
		if t == 1 {
			h := hsOf(0)
			w.apply2D(c, h, h, func(leaf *celltree.Cell, inH, _ bool) {
				bump(leaf, inH)
			})
		} else {
			h1, ht := hsOf(0), hsOf(t-1)
			w.apply2D(c, h1, ht, func(leaf *celltree.Cell, in1, inT bool) {
				bump(leaf, in1)
				bump(leaf, inT)
			})
			if t > 2 {
				newCG.views = append(newCG.views, v.withMembers(v.members[1:t-1]))
			}
		}
	}
	return newCG
}

// bump adds one covering (in=true) or excluding user to the leaf.
func bump(leaf *celltree.Cell, in bool) {
	if in {
		leaf.InCount++
	} else {
		leaf.OutCount++
	}
}

// dropTwo removes the members at the two given positions (which may
// coincide).
func dropTwo(members []int, a, b int) []int {
	out := make([]int, 0, len(members))
	for pos, m := range members {
		if pos == a || pos == b {
			continue
		}
		out = append(out, m)
	}
	return out
}

// dropPositions removes members[lo..hi] (inclusive positions).
func dropPositions(members []int, lo, hi int) []int {
	out := make([]int, 0, len(members)-(hi-lo+1))
	out = append(out, members[:lo]...)
	out = append(out, members[hi+1:]...)
	return out
}

// apply2D partitions the leaf c by the boundaries of ha and hb (skipping
// duplicates and conclusive sides) and invokes f on every resulting active
// leaf with its in/out relation to each halfspace. Identical halfspaces
// (ha == hb by pointer-free value) are handled naturally: the second
// classification is conclusive after the first split.
func (w *aaWorker) apply2D(c *celltree.Cell, ha, hb geom.Halfspace, f func(leaf *celltree.Cell, inA, inB bool)) {
	if c.Status != celltree.Active {
		return
	}
	switch c.ClassifyInto(ha, w.r.fast(), w.sh.Stats()) {
	case geom.Covers:
		w.apply2Db(c, hb, true, f)
	case geom.Excludes:
		w.apply2Db(c, hb, false, f)
	default:
		l, rr := w.sh.SplitBy(c, ha)
		if rr.Status == celltree.Active {
			w.apply2Db(rr, hb, true, f)
		}
		if l.Status == celltree.Active {
			w.apply2Db(l, hb, false, f)
		}
	}
}

// apply2Db handles the second halfspace once the relation to the first is
// known.
func (w *aaWorker) apply2Db(c *celltree.Cell, hb geom.Halfspace, inA bool, f func(leaf *celltree.Cell, inA, inB bool)) {
	if c.Status != celltree.Active {
		return
	}
	switch c.ClassifyInto(hb, w.r.fast(), w.sh.Stats()) {
	case geom.Covers:
		f(c, inA, true)
	case geom.Excludes:
		f(c, inA, false)
	default:
		l, rr := w.sh.SplitBy(c, hb)
		if rr.Status == celltree.Active {
			f(rr, inA, true)
		}
		if l.Status == celltree.Active {
			f(l, inA, false)
		}
	}
}
