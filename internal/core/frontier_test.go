package core

import (
	"math/rand"
	"runtime"
	"testing"

	"mir/internal/data"
)

// TestFrontierParallelByteIdentical pins the frontier scheduler's
// determinism contract at full strength: for every worker count, the
// finished arrangement — leaf IDs, statuses, counts, depths — and the
// exported region are byte-identical to the sequential run, and every
// Stats counter matches exactly (frontier workers process cells with
// fan-out 1, so even the raw test counters cannot diverge). Only
// StealCount and MaxFrontier, which profile the schedule itself, are
// exempt.
func TestFrontierParallelByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cases := []struct {
		d, nP, nU, k int
		opts         Options
	}{
		{3, 400, 32, 6, Options{}},
		{3, 400, 32, 6, Options{DisablePruning: true}},
		{3, 400, 32, 6, Options{GroupChoice: SmallestGroup}},
		{2, 300, 40, 5, Options{}},
		{4, 300, 24, 6, Options{}},
	}
	for ci, tc := range cases {
		inst := randomInstance(t, rng, tc.nP, tc.nU, tc.d, tc.k)
		for _, m := range []int{1, tc.nU / 3, tc.nU / 2} {
			if m < 1 {
				m = 1
			}
			seqOpts := tc.opts
			seqOpts.Workers = 1
			ref, err := runAA(inst, m, seqOpts)
			if err != nil {
				t.Fatalf("case %d m=%d sequential: %v", ci, m, err)
			}
			refLeaves := ref.tr.Leaves(nil, nil)
			refReg := ref.region()
			for _, workers := range []int{2, 4, 8} {
				parOpts := tc.opts
				parOpts.Workers = workers
				got, err := runAA(inst, m, parOpts)
				if err != nil {
					t.Fatalf("case %d m=%d workers=%d: %v", ci, m, workers, err)
				}
				gotLeaves := got.tr.Leaves(nil, nil)
				if len(gotLeaves) != len(refLeaves) {
					t.Fatalf("case %d m=%d workers=%d: %d leaves, want %d",
						ci, m, workers, len(gotLeaves), len(refLeaves))
				}
				for i := range refLeaves {
					a, b := refLeaves[i], gotLeaves[i]
					if a.ID != b.ID || a.Depth != b.Depth || a.Status != b.Status ||
						a.InCount != b.InCount || a.OutCount != b.OutCount {
						t.Fatalf("case %d m=%d workers=%d leaf %d diverges: "+
							"id %d/%d depth %d/%d status %v/%v in %d/%d out %d/%d",
							ci, m, workers, i, a.ID, b.ID, a.Depth, b.Depth,
							a.Status, b.Status, a.InCount, b.InCount, a.OutCount, b.OutCount)
					}
				}
				gotReg := got.region()
				regionsIdentical(t, refReg, gotReg)
				sa, sb := refReg.Stats, gotReg.Stats
				sa.StealCount, sb.StealCount = 0, 0
				sa.MaxFrontier, sb.MaxFrontier = 0, 0
				if sa != sb {
					t.Fatalf("case %d m=%d workers=%d: stats diverge:\nseq %+v\npar %+v",
						ci, m, workers, sa, sb)
				}
				if gotReg.Sched == nil {
					t.Fatalf("case %d m=%d workers=%d: no scheduler stats", ci, m, workers)
				}
				if gotReg.Sched.Workers != workers {
					t.Fatalf("case %d m=%d workers=%d: Sched.Workers=%d",
						ci, m, workers, gotReg.Sched.Workers)
				}
				total := 0
				for _, n := range gotReg.Sched.PerWorkerCells {
					total += n
				}
				if total != gotReg.Stats.Iterations {
					t.Fatalf("case %d m=%d workers=%d: per-worker cells sum to %d, Iterations %d",
						ci, m, workers, total, gotReg.Stats.Iterations)
				}
				if refReg.Sched != nil {
					t.Fatalf("case %d m=%d: sequential run unexpectedly has scheduler stats", ci, m)
				}
			}
		}
	}
}

// TestFrontierParallelMaintainer runs the incremental path (arrivals and
// departures) at several worker counts and checks the arrangements stay
// byte-identical after every event — the dynamic counterpart of
// TestFrontierParallelByteIdentical, at the core layer.
func TestFrontierParallelMaintainer(t *testing.T) {
	m := 8
	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	mts := make([]*Maintainer, len(workerCounts))
	for i, w := range workerCounts {
		// Each maintainer needs its own instance: AddUser mutates it.
		own := randomInstance(t, rand.New(rand.NewSource(43)), 300, 20, 3, 5)
		mt, err := NewMaintainer(own, m, Options{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		mts[i] = mt
	}

	check := func(step string) {
		t.Helper()
		ref := mts[0].Region()
		for i, mt := range mts[1:] {
			got := mt.Region()
			regionsIdentical(t, ref, got)
			sa, sb := ref.Stats, got.Stats
			sa.StealCount, sb.StealCount = 0, 0
			sa.MaxFrontier, sb.MaxFrontier = 0, 0
			if sa != sb {
				t.Fatalf("%s workers=%d: stats diverge:\nseq %+v\npar %+v",
					step, workerCounts[i+1], sa, sb)
			}
		}
	}
	check("initial")

	// A deterministic event script replayed against every maintainer.
	eventRng := rand.New(rand.NewSource(97))
	handles := make([]int, 20)
	for i := range handles {
		handles[i] = i
	}
	for step := 0; step < 8; step++ {
		if len(handles) > m+2 && eventRng.Intn(2) == 0 {
			// Departure of a random live user.
			pick := eventRng.Intn(len(handles))
			h := handles[pick]
			handles = append(handles[:pick], handles[pick+1:]...)
			for i, mt := range mts {
				if err := mt.RemoveUser(h); err != nil {
					t.Fatalf("step %d workers=%d remove: %v", step, workerCounts[i], err)
				}
			}
		} else {
			// Arrival of a fresh random user.
			u := data.WithK(data.ClusteredUsers(eventRng, 1, 3, 1, 0.08), 5)[0]
			var newH int
			for i, mt := range mts {
				h, err := mt.AddUser(u)
				if err != nil {
					t.Fatalf("step %d workers=%d add: %v", step, workerCounts[i], err)
				}
				if i == 0 {
					newH = h
				} else if h != newH {
					t.Fatalf("step %d: handles diverge: %d vs %d", step, h, newH)
				}
			}
			handles = append(handles, newH)
		}
		check("step")
	}
}
