package core

import (
	"math"
	"math/rand"
	"testing"

	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// batchRegionsIdentical asserts byte-identity of two regions: same cells in the
// same order, each with the exact same halfspaces and bounding boxes.
func batchRegionsIdentical(t *testing.T, label string, a, b *Region) {
	t.Helper()
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("%s: %d cells vs %d", label, len(a.Cells), len(b.Cells))
	}
	for ci := range a.Cells {
		ha, hb := a.Cells[ci].Hs, b.Cells[ci].Hs
		if len(ha) != len(hb) {
			t.Fatalf("%s: cell %d has %d constraints vs %d", label, ci, len(ha), len(hb))
		}
		for i := range ha {
			if ha[i].T != hb[i].T {
				t.Fatalf("%s: cell %d constraint %d T %v vs %v", label, ci, i, ha[i].T, hb[i].T)
			}
			for j := range ha[i].W {
				if ha[i].W[j] != hb[i].W[j] {
					t.Fatalf("%s: cell %d constraint %d W[%d] %v vs %v",
						label, ci, i, j, ha[i].W[j], hb[i].W[j])
				}
			}
		}
		for corner := 0; corner < 2; corner++ {
			ca, cb := a.MBBs[ci][corner], b.MBBs[ci][corner]
			for j := range ca {
				if ca[j] != cb[j] {
					t.Fatalf("%s: cell %d MBB[%d][%d] %v vs %v", label, ci, corner, j, ca[j], cb[j])
				}
			}
		}
	}
}

// batchScript is a reproducible event sequence over an instance with nU
// initial users: arrivals of random users and departures of handles
// present at that point of the sequence, including departures of arrivals
// from the same script.
func batchScript(rng *rand.Rand, nU, d, kmax, steps int) []Event {
	events := make([]Event, 0, steps)
	present := make([]int, nU)
	for i := range present {
		present[i] = i
	}
	next := nU
	for len(events) < steps {
		switch {
		case rng.Intn(3) > 0 || len(present) == 0:
			w := data.UniformUsers(rng, 1, d)[0]
			events = append(events, Event{Kind: EventArrive,
				User: topk.UserPref{W: w, K: 1 + rng.Intn(kmax)}})
			present = append(present, next)
			next++
		default:
			i := rng.Intn(len(present))
			events = append(events, Event{Kind: EventDepart, Handle: present[i]})
			present = append(present[:i], present[i+1:]...)
		}
	}
	return events
}

func deepCopyUsers(users []topk.UserPref) []topk.UserPref {
	out := make([]topk.UserPref, len(users))
	for i, u := range users {
		out[i] = topk.UserPref{W: append(geom.Vector(nil), u.W...), K: u.K}
	}
	return out
}

// TestMaintainerBatchMatchesSequential is the coalescing determinism
// contract: ApplyBatch over N events yields an arrangement byte-identical
// to N AddUser/RemoveUser calls, across worker counts, both as one batch
// and chunked.
func TestMaintainerBatchMatchesSequential(t *testing.T) {
	baseRng := rand.New(rand.NewSource(41))
	ps := data.Independent(baseRng, 150, 3)
	us := data.WithK(data.ClusteredUsers(baseRng, 12, 3, 3, 0.08), 4)
	events := batchScript(rand.New(rand.NewSource(43)), 12, 3, 6, 30)
	m := 6

	var refRegion *Region
	for _, workers := range []int{1, 2, 4, 8} {
		opts := Options{Workers: workers}
		newMt := func() *Maintainer {
			inst, err := NewInstanceOpts(ps, deepCopyUsers(us), opts)
			if err != nil {
				t.Fatal(err)
			}
			mt, err := NewMaintainer(inst, m, opts)
			if err != nil {
				t.Fatal(err)
			}
			return mt
		}

		seq := newMt()
		var seqHandles []int
		for i, ev := range events {
			if ev.Kind == EventArrive {
				h, err := seq.AddUser(topk.UserPref{W: append(geom.Vector(nil), ev.User.W...), K: ev.User.K})
				if err != nil {
					t.Fatalf("workers=%d event %d: %v", workers, i, err)
				}
				seqHandles = append(seqHandles, h)
			} else {
				if err := seq.RemoveUser(ev.Handle); err != nil {
					t.Fatalf("workers=%d event %d: %v", workers, i, err)
				}
				seqHandles = append(seqHandles, -1)
			}
		}

		bat := newMt()
		handles, err := bat.ApplyBatch(events)
		if err != nil {
			t.Fatalf("workers=%d: ApplyBatch: %v", workers, err)
		}
		if len(handles) != len(seqHandles) {
			t.Fatalf("workers=%d: %d handles vs %d", workers, len(handles), len(seqHandles))
		}
		for i := range handles {
			if handles[i] != seqHandles[i] {
				t.Fatalf("workers=%d: handle[%d] = %d, sequential %d", workers, i, handles[i], seqHandles[i])
			}
		}
		if bat.NumUsers() != seq.NumUsers() {
			t.Fatalf("workers=%d: NumUsers %d vs %d", workers, bat.NumUsers(), seq.NumUsers())
		}

		chunked := newMt()
		for lo := 0; lo < len(events); lo += 7 {
			hi := lo + 7
			if hi > len(events) {
				hi = len(events)
			}
			if _, err := chunked.ApplyBatch(events[lo:hi]); err != nil {
				t.Fatalf("workers=%d: chunk [%d,%d): %v", workers, lo, hi, err)
			}
		}

		seqReg, batReg, chReg := seq.Region(), bat.Region(), chunked.Region()
		batchRegionsIdentical(t, "batch vs sequential", seqReg, batReg)
		batchRegionsIdentical(t, "chunked vs sequential", seqReg, chReg)
		if refRegion == nil {
			refRegion = batReg
		} else {
			batchRegionsIdentical(t, "across worker counts", refRegion, batReg)
		}
		for _, st := range []Stats{seqReg.Stats, batReg.Stats, chReg.Stats} {
			if st.CountDesyncs != 0 {
				t.Fatalf("workers=%d: %d count desyncs", workers, st.CountDesyncs)
			}
		}
		checkMaintainerOracle(t, bat, m, rand.New(rand.NewSource(47)), 800)
	}
}

// TestMaintainerBatchDepartJustArrived covers arrivals departed inside the
// same batch, including a user who arrives and departs with no drain in
// between.
func TestMaintainerBatchDepartJustArrived(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	ps := data.Independent(rng, 120, 2)
	us := data.WithK(data.ClusteredUsers(rng, 10, 2, 3, 0.08), 3)
	m := 5
	newMt := func() *Maintainer {
		inst, err := NewInstance(ps, deepCopyUsers(us))
		if err != nil {
			t.Fatal(err)
		}
		mt, err := NewMaintainer(inst, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return mt
	}
	w1 := data.UniformUsers(rng, 1, 2)[0]
	w2 := data.UniformUsers(rng, 1, 2)[0]
	events := []Event{
		{Kind: EventArrive, User: topk.UserPref{W: w1, K: 2}},
		{Kind: EventDepart, Handle: 10}, // the arrival above
		{Kind: EventDepart, Handle: 3},
		{Kind: EventArrive, User: topk.UserPref{W: w2, K: 4}},
		{Kind: EventDepart, Handle: 11}, // w2's handle
	}
	seq := newMt()
	for _, ev := range events {
		if ev.Kind == EventArrive {
			if _, err := seq.AddUser(topk.UserPref{W: append(geom.Vector(nil), ev.User.W...), K: ev.User.K}); err != nil {
				t.Fatal(err)
			}
		} else if err := seq.RemoveUser(ev.Handle); err != nil {
			t.Fatal(err)
		}
	}
	bat := newMt()
	handles, err := bat.ApplyBatch(events)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{10, -1, -1, 11, -1}
	for i := range want {
		if handles[i] != want[i] {
			t.Fatalf("handles = %v, want %v", handles, want)
		}
	}
	batchRegionsIdentical(t, "same-batch arrive+depart", seq.Region(), bat.Region())
	if bat.NumUsers() != 9 {
		t.Fatalf("NumUsers = %d, want 9", bat.NumUsers())
	}
}

// TestMaintainerBatchAtomicity: an invalid event anywhere in the batch
// must reject the whole batch with no state change.
func TestMaintainerBatchAtomicity(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	inst := randomInstance(t, rng, 100, 10, 3, 4)
	mt, err := NewMaintainer(inst, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := mt.Region()
	w := data.UniformUsers(rng, 1, 3)[0]
	bad := [][]Event{
		{{Kind: EventArrive, User: topk.UserPref{W: w, K: 3}}, {Kind: EventDepart, Handle: 77}},
		{{Kind: EventDepart, Handle: 2}, {Kind: EventDepart, Handle: 2}},
		{{Kind: EventArrive, User: topk.UserPref{W: w[:2], K: 3}}},
		{{Kind: EventArrive, User: topk.UserPref{W: w, K: 0}}},
		{{Kind: EventArrive, User: topk.UserPref{W: w, K: 101}}},
	}
	for i, events := range bad {
		if _, err := mt.ApplyBatch(events); err == nil {
			t.Fatalf("bad batch %d accepted", i)
		}
		if got := mt.NumUsers(); got != 10 {
			t.Fatalf("bad batch %d changed NumUsers to %d", i, got)
		}
		if n := len(mt.users); n != 10 || len(mt.run.inst.Users) != 10 ||
			len(mt.run.inst.HS) != 10 || len(mt.run.inst.Kth) != 10 || len(mt.run.inst.WProj) != 10 {
			t.Fatalf("bad batch %d left partial appends (users=%d)", i, n)
		}
	}
	batchRegionsIdentical(t, "after rejected batches", before, mt.Region())
}

// TestMaintainerAddUserAtomicity: a rejected AddUser must not consume a
// handle or leave the instance arrays partially appended.
func TestMaintainerAddUserAtomicity(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	inst := randomInstance(t, rng, 80, 8, 3, 3)
	mt, err := NewMaintainer(inst, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantNext := mt.NextHandle()
	w3 := data.UniformUsers(rng, 1, 3)[0]
	bads := []topk.UserPref{
		{W: w3[:2], K: 2},               // dim mismatch
		{W: w3, K: 0},                   // k too small
		{W: w3, K: 81},                  // k beyond |P|
		{W: append(w3, 0.1, 0.2), K: 2}, // dim mismatch the other way
	}
	for i, u := range bads {
		h, err := mt.AddUser(u)
		if err == nil {
			t.Fatalf("bad arrival %d accepted", i)
		}
		if h != -1 {
			t.Fatalf("bad arrival %d returned handle %d, want -1", i, h)
		}
		if mt.NextHandle() != wantNext {
			t.Fatalf("bad arrival %d consumed a handle: next %d, want %d", i, mt.NextHandle(), wantNext)
		}
		if len(mt.run.inst.Users) != 8 || len(mt.run.inst.HS) != 8 ||
			len(mt.run.inst.Kth) != 8 || len(mt.run.inst.WProj) != 8 {
			t.Fatalf("bad arrival %d left partial instance appends", i)
		}
	}
	if h, err := mt.AddUser(topk.UserPref{W: w3, K: 3}); err != nil || h != wantNext {
		t.Fatalf("good arrival after failures: handle %d err %v, want %d", h, err, wantNext)
	}
}

// TestMaintainerDesyncRegression exercises remove-after-reactivate churn:
// demote reported cells, revive eliminated ones, and remove users whose
// views were redistributed by those drains. The desync counter must stay
// zero and the maintained region must stay exact.
func TestMaintainerDesyncRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, d := range []int{2, 3} {
		ps := data.Independent(rng, 150, d)
		us := data.WithK(data.ClusteredUsers(rng, 12, d, 3, 0.08), 4)
		inst, err := NewInstance(ps, deepCopyUsers(us))
		if err != nil {
			t.Fatal(err)
		}
		m := 6
		mt, err := NewMaintainer(inst, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Shrink below m to demote reports, regrow to revive eliminations,
		// then remove both original and re-added users.
		for _, idx := range []int{0, 1, 2, 3, 4, 5, 6} {
			if err := mt.RemoveUser(idx); err != nil {
				t.Fatal(err)
			}
		}
		var added []int
		for i := 0; i < 7; i++ {
			w := data.UniformUsers(rng, 1, d)[0]
			h, err := mt.AddUser(topk.UserPref{W: w, K: 1 + rng.Intn(5)})
			if err != nil {
				t.Fatal(err)
			}
			added = append(added, h)
		}
		for _, idx := range []int{added[0], added[3], 7, added[5]} {
			if err := mt.RemoveUser(idx); err != nil {
				t.Fatal(err)
			}
		}
		if n := mt.run.st.CountDesyncs; n != 0 {
			t.Fatalf("d=%d: remove-after-reactivate recorded %d desyncs", d, n)
		}
		if got := mt.Region().Stats.CountDesyncs; got != 0 {
			t.Fatalf("d=%d: region stats report %d desyncs", d, got)
		}
		checkMaintainerOracle(t, mt, m, rng, 1000)
	}
}

// TestMaintainerMinBoundaryGapEmpty pins the empty-population contract:
// with nobody alive the gap is +Inf, not a finite sentinel.
func TestMaintainerMinBoundaryGapEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	inst := randomInstance(t, rng, 60, 3, 2, 2)
	mt, err := NewMaintainer(inst, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := geom.Vector{0.5, 0.5}
	if g := mt.MinBoundaryGap(p); math.IsInf(g, 1) {
		t.Fatalf("gap with 3 alive users is +Inf")
	}
	for i := 0; i < 3; i++ {
		if err := mt.RemoveUser(i); err != nil {
			t.Fatal(err)
		}
	}
	if g := mt.MinBoundaryGap(p); !math.IsInf(g, 1) {
		t.Fatalf("gap with no alive users = %v, want +Inf", g)
	}
	if g := mt.Snapshot().MinBoundaryGap(p); !math.IsInf(g, 1) {
		t.Fatalf("snapshot gap with no alive users = %v, want +Inf", g)
	}
}

// TestMaintainerSnapshotImmutable: a snapshot keeps answering from its
// capture-time state while the Maintainer churns on.
func TestMaintainerSnapshotImmutable(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	inst := randomInstance(t, rng, 120, 10, 3, 4)
	m := 5
	mt, err := NewMaintainer(inst, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snap := mt.Snapshot()
	wantUsers := snap.NumUsers()
	probes := make([]geom.Vector, 50)
	wantCover := make([]int, len(probes))
	for i := range probes {
		p := make(geom.Vector, 3)
		for j := range p {
			p[j] = rng.Float64()
		}
		probes[i] = p
		wantCover[i] = snap.CountCovering(p)
	}
	wantCells := len(snap.Region().Cells)
	wantInfl := snap.MostInfluential(5)

	for step := 0; step < 6; step++ {
		w := data.UniformUsers(rng, 1, 3)[0]
		if _, err := mt.AddUser(topk.UserPref{W: w, K: 3}); err != nil {
			t.Fatal(err)
		}
		if err := mt.RemoveUser(step); err != nil {
			t.Fatal(err)
		}
	}

	if snap.NumUsers() != wantUsers {
		t.Fatalf("snapshot NumUsers drifted: %d vs %d", snap.NumUsers(), wantUsers)
	}
	if got := len(snap.Region().Cells); got != wantCells {
		t.Fatalf("snapshot cell count drifted: %d vs %d", got, wantCells)
	}
	for i, p := range probes {
		if got := snap.CountCovering(p); got != wantCover[i] {
			t.Fatalf("snapshot coverage drifted at %v: %d vs %d", p, got, wantCover[i])
		}
	}
	gotInfl := snap.MostInfluential(5)
	for i := range wantInfl {
		if gotInfl[i] != wantInfl[i] {
			t.Fatalf("snapshot influence drifted: %v vs %v", gotInfl, wantInfl)
		}
	}
}
