package core

import (
	"math"
	"math/rand"
	"testing"

	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// TestInstanceKthIndexOnOffByteIdentical pins the engine-level contract
// of the layered index: Instance.Kth (identity and score bits) is the
// same with the index enabled or disabled, for workers 1, 2, 4, and 8.
func TestInstanceKthIndexOnOffByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, d := range []int{2, 3, 4} {
		ps := data.Independent(rng, 800, d)
		us := data.WithK(data.ClusteredUsers(rng, 90, d, 3, 0.08), 1)
		for i := range us {
			us[i].K = 1 + (i*7)%19
		}
		ref, err := NewInstanceOpts(ps, us, Options{Workers: 1, DisableTopKIndex: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			for _, disable := range []bool{false, true} {
				inst, err := NewInstanceOpts(ps, us, Options{Workers: workers, DisableTopKIndex: disable})
				if err != nil {
					t.Fatal(err)
				}
				for ui := range us {
					g, w := inst.Kth[ui], ref.Kth[ui]
					if g.Index != w.Index || math.Float64bits(g.Score) != math.Float64bits(w.Score) {
						t.Fatalf("d=%d workers=%d index-off=%v user %d: %+v vs reference %+v",
							d, workers, disable, ui, g, w)
					}
				}
				if disable && inst.TopKIndex != nil {
					t.Fatal("DisableTopKIndex left an index attached")
				}
				if !disable && inst.TopKIndex == nil {
					t.Fatal("index enabled but not attached")
				}
			}
		}
	}
}

// TestInstancePrepStatsDeterministic pins that the preprocessing search
// counters are the same for every worker count (order-free merges).
func TestInstancePrepStatsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	ps := data.Independent(rng, 1500, 3)
	us := data.WithK(data.UniformUsers(rng, 120, 3), 8)
	var want topk.SearchStats
	for i, workers := range []int{1, 2, 4, 8} {
		inst, err := NewInstanceOpts(ps, us, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if inst.Prep.ScannedProducts == 0 {
			t.Fatal("indexed preprocessing scanned nothing")
		}
		if i == 0 {
			want = inst.Prep
		} else if inst.Prep != want {
			t.Fatalf("workers=%d: prep stats %+v vs sequential %+v", workers, inst.Prep, want)
		}
	}
}

// TestMaintainerAddUserIndexOnOff runs the same arrival sequence through
// an indexed and an index-less Maintainer: the appended thresholds (and
// the regions they induce) must be byte-identical — the indexed
// UserArrived path is a pure perf optimization.
func TestMaintainerAddUserIndexOnOff(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ps := data.Independent(rng, 300, 3)
	us := data.WithK(data.ClusteredUsers(rng, 12, 3, 3, 0.08), 5)
	m := 6

	build := func(disable bool) *Maintainer {
		inst, err := NewInstanceOpts(ps, us, Options{DisableTopKIndex: disable})
		if err != nil {
			t.Fatal(err)
		}
		mt, err := NewMaintainer(inst, m, Options{DisableTopKIndex: disable})
		if err != nil {
			t.Fatal(err)
		}
		return mt
	}
	on, off := build(false), build(true)
	if on.search == nil {
		t.Fatal("indexed Maintainer has no searcher")
	}
	if off.search != nil {
		t.Fatal("index-less Maintainer got a searcher")
	}

	arrivals := data.WithK(data.UniformUsers(rng, 10, 3), 1)
	for i := range arrivals {
		arrivals[i].K = 1 + (i*3)%9
	}
	for i, u := range arrivals {
		hOn, err := on.AddUser(u)
		if err != nil {
			t.Fatal(err)
		}
		hOff, err := off.AddUser(u)
		if err != nil {
			t.Fatal(err)
		}
		if hOn != hOff {
			t.Fatalf("arrival %d: handles %d vs %d", i, hOn, hOff)
		}
		g, w := on.run.inst.Kth[hOn], off.run.inst.Kth[hOff]
		if g.Index != w.Index || math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			t.Fatalf("arrival %d: indexed threshold %+v vs scan %+v", i, g, w)
		}
	}
	if on.run.st.ScannedProducts == 0 {
		t.Error("indexed arrivals recorded no scanned products")
	}
	// Same users, same thresholds: the maintained regions must agree.
	ra, rb := on.Region(), off.Region()
	for probe := 0; probe < 2000; probe++ {
		p := make(geom.Vector, 3)
		for j := range p {
			p[j] = rng.Float64()
		}
		if on.MinBoundaryGap(p) < 1e-6 {
			continue
		}
		if ra.Contains(p) != rb.Contains(p) {
			t.Fatalf("regions disagree at %v", p)
		}
	}
}
