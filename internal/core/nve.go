package core

import (
	"mir/internal/geom"
)

// NVE is the naïve mIR algorithm (Section 4.1): for every m-sized user
// subset, intersect the members' influential halfspaces with the product
// box; the result is the union of the non-empty intersections. Exact but
// exponential — O(C(|U|, m) · m^⌊d/2⌋) — it exists as a correctness oracle
// for small instances and as the paper's point of departure.
func NVE(inst *Instance, m int) (*Region, error) {
	if err := inst.CheckM(m); err != nil {
		return nil, err
	}
	reg := &Region{Dim: inst.Dim, M: m}
	box := geom.NewBox(inst.Dim, 0, 1)
	n := len(inst.Users)

	subset := make([]int, m)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == m {
			p := box.Clone()
			for _, ui := range subset {
				p.Append(inst.HS[ui])
			}
			if !p.IsEmpty() {
				reg.Cells = append(reg.Cells, p)
			}
			return
		}
		for i := start; i <= n-(m-depth); i++ {
			subset[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return reg, nil
}
