package core

import (
	"math/rand"
	"testing"
)

// regionsIdentical asserts structural equality of two regions: same cell
// count, and per-cell identical H-representations. The parallel execution
// layer precomputes classifications concurrently but absorbs them in
// sequential order, so the arrangement trees — and therefore the reported
// cells — must match exactly, not just geometrically.
func regionsIdentical(t *testing.T, want, got *Region) {
	t.Helper()
	if want.Dim != got.Dim || want.M != got.M {
		t.Fatalf("region headers differ: (%d,%d) vs (%d,%d)", want.Dim, want.M, got.Dim, got.M)
	}
	if len(want.Cells) != len(got.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(want.Cells), len(got.Cells))
	}
	for i := range want.Cells {
		a, b := want.Cells[i], got.Cells[i]
		if len(a.Hs) != len(b.Hs) {
			t.Fatalf("cell %d: constraint counts differ: %d vs %d", i, len(a.Hs), len(b.Hs))
		}
		for j := range a.Hs {
			if a.Hs[j].T != b.Hs[j].T {
				t.Fatalf("cell %d constraint %d: thresholds differ: %g vs %g", i, j, a.Hs[j].T, b.Hs[j].T)
			}
			for k := range a.Hs[j].W {
				if a.Hs[j].W[k] != b.Hs[j].W[k] {
					t.Fatalf("cell %d constraint %d coord %d differs", i, j, k)
				}
			}
		}
	}
}

// TestAAWorkersMatchSequential pins the tentpole determinism guarantee:
// the region computed with any worker count is identical to the
// sequential (Workers: 1) run, and the structural stats (cells, splits,
// iterations, batch hits, hull tests) match too. Only the raw test
// counters may grow with Workers > 1 (work past a sequential early exit
// is wasted, not skipped).
func TestAAWorkersMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		d, nP, nU, k int
		opts         Options
	}{
		{2, 300, 40, 5, Options{}},
		{2, 300, 40, 5, Options{Disable2D: true}},
		{3, 400, 30, 8, Options{}},
		{3, 400, 30, 8, Options{DisableGrouping: true}},
		{3, 400, 30, 8, Options{DisableInnerGroup: true}},
	}
	for ci, tc := range cases {
		inst := randomInstance(t, rng, tc.nP, tc.nU, tc.d, tc.k)
		for _, m := range []int{1, tc.nU / 4, tc.nU / 2} {
			if m < 1 {
				m = 1
			}
			seqOpts := tc.opts
			seqOpts.Workers = 1
			parOpts := tc.opts
			parOpts.Workers = 4
			seq, err := AA(inst, m, seqOpts)
			if err != nil {
				t.Fatalf("case %d m=%d sequential: %v", ci, m, err)
			}
			par, err := AA(inst, m, parOpts)
			if err != nil {
				t.Fatalf("case %d m=%d parallel: %v", ci, m, err)
			}
			regionsIdentical(t, seq, par)
			if seq.Stats.Cells != par.Stats.Cells ||
				seq.Stats.Splits != par.Stats.Splits ||
				seq.Stats.Iterations != par.Stats.Iterations ||
				seq.Stats.Reported != par.Stats.Reported ||
				seq.Stats.Eliminated != par.Stats.Eliminated ||
				seq.Stats.GroupBatchHits != par.Stats.GroupBatchHits ||
				seq.Stats.HullTests != par.Stats.HullTests {
				t.Fatalf("case %d m=%d: structural stats diverge:\nseq %+v\npar %+v",
					ci, m, seq.Stats, par.Stats)
			}
		}
	}
}

// TestNewInstanceWorkersMatch pins that preprocessing is independent of
// the worker count: thresholds, halfspaces, groups, and precomputed hulls.
func TestNewInstanceWorkersMatch(t *testing.T) {
	for _, d := range []int{2, 4} {
		seqInst := randomInstance(t, rand.New(rand.NewSource(11)), 500, 60, d, 7)
		parInst, err := NewInstanceWorkers(seqInst.Products, seqInst.Users, 8)
		if err != nil {
			t.Fatal(err)
		}
		seq1, err := NewInstanceWorkers(seqInst.Products, seqInst.Users, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq1.Kth {
			if seq1.Kth[i] != parInst.Kth[i] {
				t.Fatalf("d=%d user %d: Kth differs: %+v vs %+v", d, i, seq1.Kth[i], parInst.Kth[i])
			}
			if seq1.HS[i].T != parInst.HS[i].T {
				t.Fatalf("d=%d user %d: halfspace threshold differs", d, i)
			}
		}
		if len(seq1.Groups) != len(parInst.Groups) {
			t.Fatalf("d=%d: group counts differ: %d vs %d", d, len(seq1.Groups), len(parInst.Groups))
		}
		for gi := range seq1.Groups {
			a, b := seq1.Groups[gi], parInst.Groups[gi]
			if a.Pivot != b.Pivot || len(a.Members) != len(b.Members) || len(a.Hull) != len(b.Hull) {
				t.Fatalf("d=%d group %d differs: %+v vs %+v", d, gi, a, b)
			}
			for i := range a.Hull {
				if a.Hull[i] != b.Hull[i] {
					t.Fatalf("d=%d group %d: hull position %d differs", d, gi, i)
				}
			}
		}
	}
}

// TestGroupHullPrecomputedMatchesLazy verifies the precomputed group hulls
// agree with the lazy per-view computation they replace.
func TestGroupHullPrecomputedMatchesLazy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range []int{2, 3, 5} {
		inst := randomInstance(t, rng, 400, 50, d, 6)
		for gi, g := range inst.Groups {
			if g.Hull == nil {
				t.Fatalf("d=%d group %d: hull not precomputed", d, gi)
			}
			fresh := (&view{g: g, members: g.Members}).hullPositions(inst)
			if len(fresh) != len(g.Hull) {
				t.Fatalf("d=%d group %d: hull sizes differ: %d vs %d", d, gi, len(fresh), len(g.Hull))
			}
			for i := range fresh {
				if fresh[i] != g.Hull[i] {
					t.Fatalf("d=%d group %d: hull position %d differs", d, gi, i)
				}
			}
		}
	}
}

// TestChooseViewRoundRobin pins the ablation strategy's visit order: the
// cursor starts at view 0 and advances one slot per pick (the original
// implementation incremented before the modulo, skipping view 0 and
// drifting the cursor).
func TestChooseViewRoundRobin(t *testing.T) {
	r := &aaRun{opts: Options{GroupChoice: RoundRobinGroup, Workers: 1}}
	cg := &cellGroups{views: []*view{{}, {}, {}}}
	want := []int{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := r.chooseView(cg); got != w {
			t.Fatalf("pick %d: got view %d, want %d", i, got, w)
		}
	}
	// Shrinking the list must keep picks in range and resume from the
	// cursor without re-skipping position 0.
	cg.views = cg.views[:2]
	for i := 0; i < 4; i++ {
		if got := r.chooseView(cg); got < 0 || got >= 2 {
			t.Fatalf("pick on shrunken list out of range: %d", got)
		}
	}
}

// TestAbsorbMirrorsSequentialUpdate drives absorb directly with a crafted
// relation slice and checks the swap-with-last bookkeeping keeps counts
// aligned with the views they came from.
func TestAbsorbMirrorsSequentialUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	inst := randomInstance(t, rng, 300, 24, 3, 5)
	m := 12
	seq, err := runAA(inst, m, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := runAA(inst, m, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	seqLeaves := seq.tr.Leaves(nil, nil)
	parLeaves := par.tr.Leaves(nil, nil)
	if len(seqLeaves) != len(parLeaves) {
		t.Fatalf("leaf counts differ: %d vs %d", len(seqLeaves), len(parLeaves))
	}
	for i := range seqLeaves {
		a, b := seqLeaves[i], parLeaves[i]
		if a.InCount != b.InCount || a.OutCount != b.OutCount || a.Status != b.Status {
			t.Fatalf("leaf %d diverges: in %d/%d out %d/%d status %v/%v",
				i, a.InCount, b.InCount, a.OutCount, b.OutCount, a.Status, b.Status)
		}
	}
}

// TestParallelRegionOracle cross-checks a parallel run against the
// brute-force coverage oracle, independent of the sequential comparison.
func TestParallelRegionOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := randomInstance(t, rng, 400, 30, 3, 6)
	m := 15
	reg, err := AA(inst, m, Options{Workers: 0})
	if err != nil {
		t.Fatal(err)
	}
	checkRegionOracle(t, inst, m, reg, rng, 400)
}
