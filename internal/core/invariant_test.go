package core

import (
	"math/rand"
	"testing"

	"mir/internal/celltree"
	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// auditCounts verifies the accounting invariant on every leaf of a
// finished run: InCount/OutCount match an exact reclassification of the
// non-pending users, and no user appears in two pending views. Incremental
// maintenance depends on this invariant; it also guards against double
// counting in the AA bookkeeping.
func auditCounts(t *testing.T, run *aaRun) {
	t.Helper()
	inst := run.inst
	for _, leaf := range run.tr.Leaves(nil, nil) {
		if leaf.Empty {
			continue
		}
		pend := map[int]bool{}
		if cg, ok := leaf.Payload.(*cellGroups); ok && cg != nil {
			for _, v := range cg.views {
				for _, ui := range v.members {
					if pend[ui] {
						t.Fatalf("leaf %d: user %d appears in two views", leaf.ID, ui)
					}
					pend[ui] = true
				}
			}
		}
		trueIn, trueOut := 0, 0
		borderline := false
		for ui, h := range inst.HS {
			if pend[ui] {
				continue
			}
			if boundaryHugsCell(leaf.Polytope(), h) {
				borderline = true // zero-volume tolerance artifact
				break
			}
			switch leaf.Polytope().Classify(h) {
			case geom.Covers:
				trueIn++
			case geom.Excludes:
				trueOut++
			default:
				borderline = true // tolerance flip vs decision time
			}
		}
		if borderline {
			continue
		}
		if trueIn != leaf.InCount || trueOut != leaf.OutCount {
			t.Fatalf("leaf %d (status %v): counts in=%d out=%d, reclassified in=%d out=%d (pending %d)",
				leaf.ID, leaf.Status, leaf.InCount, leaf.OutCount, trueIn, trueOut, len(pend))
		}
	}
}

// boundaryHugsCell reports whether h's boundary hyperplane passes within
// tolerance of the entire cell (possible only for degenerate, zero-volume
// cells). Counts on such cells are tolerance artifacts with no region
// semantics, so the audits skip them.
func boundaryHugsCell(p *geom.Polytope, h geom.Halfspace) bool {
	lo, _, ok1 := p.Minimize(h.W)
	hi, _, ok2 := p.Maximize(h.W)
	if !ok1 || !ok2 {
		return true
	}
	const tol = 1e-6
	return lo >= h.T-tol && hi <= h.T+tol
}

// TestCountInvariantFreshRuns audits the invariant across configurations.
// The 2-D specialized path is exempt by design (it reports cells on
// nesting arguments without materializing counts), so it runs disabled
// here; maintenance disables it for the same reason.
func TestCountInvariantFreshRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 6; trial++ {
		d := 2 + trial%3
		nU := 10 + 3*trial
		inst := randomInstance(t, rng, 150, nU, d, 4)
		for _, m := range []int{2, nU / 2, nU - 1} {
			run, err := runAA(inst, m, Options{Disable2D: true})
			if err != nil {
				t.Fatal(err)
			}
			auditCounts(t, run)
		}
	}
}

// TestCountInvariantAfterMaintenance audits the invariant after churn.
func TestCountInvariantAfterMaintenance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := randomInstance(t, rng, 150, 14, 3, 4)
	mt, err := NewMaintainer(inst, 7, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		w := data.UniformUsers(rng, 1, 3)[0]
		if _, err := mt.AddUser(topk.UserPref{W: w, K: 4}); err != nil {
			t.Fatal(err)
		}
		if err := mt.RemoveUser(i); err != nil {
			t.Fatal(err)
		}
	}
	// Routed maintenance defers events on subtrees where no decision can
	// flip, leaving per-leaf payloads intentionally stale; settle the
	// backlog so the audit sees materialized pending views and counts.
	mt.settleAll()
	// Every removal must have found its user pending or cleanly decided;
	// a recorded desync means the counts below are already suspect.
	if n := mt.run.st.CountDesyncs; n != 0 {
		t.Fatalf("maintenance churn recorded %d count desyncs", n)
	}
	// The audit must run over alive users only.
	run := mt.run
	for _, leaf := range run.tr.Leaves(nil, nil) {
		if leaf.Empty || leaf.Status == celltree.Eliminated {
			continue
		}
		pend := map[int]bool{}
		if cg, ok := leaf.Payload.(*cellGroups); ok && cg != nil {
			for _, v := range cg.views {
				for _, ui := range v.members {
					pend[ui] = true
				}
			}
		}
		in, out := 0, 0
		borderline := false
		for ui, h := range run.inst.HS {
			if !mt.alive[ui] || pend[ui] {
				continue
			}
			if boundaryHugsCell(leaf.Polytope(), h) {
				borderline = true
				break
			}
			switch leaf.Polytope().Classify(h) {
			case geom.Covers:
				in++
			case geom.Excludes:
				out++
			default:
				borderline = true
			}
		}
		if borderline {
			continue
		}
		if in != leaf.InCount || out != leaf.OutCount {
			t.Fatalf("leaf %d after churn: counts in=%d out=%d, reclassified in=%d out=%d",
				leaf.ID, leaf.InCount, leaf.OutCount, in, out)
		}
	}
}
