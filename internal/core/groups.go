package core

import (
	"sort"
	"sync/atomic"

	"mir/internal/geom"
)

// Group collects the users that share a common top-k-th product r
// (Section 5.1). All their influential-halfspace boundaries pass through
// r, which powers the batch tests of Lemmas 3 and 4, keeps the
// arrangement small (zone-theorem argument), and enables the specialized
// two-dimensional insertion of Section 5.4.
type Group struct {
	Pivot int         // product index of r
	R     geom.Vector // coordinates of r
	// Members lists user indices. For d = 2 they are sorted by descending
	// w[1] (the paper's "i-th largest w[1]" ordering behind Lemmas 5/6);
	// for d > 2 the order is ascending user index.
	Members []int
	// Hull caches the positions (into Members) of the convex-hull vertices
	// of the member weight vectors in projected weight space. NewInstance
	// precomputes it (in parallel across groups); views over the full
	// member list reuse it, and views over subsets recompute lazily.
	Hull []int
}

// buildGroups partitions users by top-k-th product.
func buildGroups(inst *Instance) []*Group {
	byPivot := make(map[int]*Group)
	var order []int
	for ui, r := range inst.Kth {
		g, ok := byPivot[r.Index]
		if !ok {
			g = &Group{Pivot: r.Index, R: inst.Products[r.Index]}
			byPivot[r.Index] = g
			order = append(order, r.Index)
		}
		g.Members = append(g.Members, ui)
	}
	sort.Ints(order)
	groups := make([]*Group, 0, len(order))
	for _, pivot := range order {
		g := byPivot[pivot]
		if inst.Dim == 2 {
			sort.Slice(g.Members, func(a, b int) bool {
				wa := inst.Users[g.Members[a]].W[0]
				wb := inst.Users[g.Members[b]].W[0]
				if wa != wb {
					return wa > wb // descending w[1] (paper indexing)
				}
				return g.Members[a] < g.Members[b]
			})
		}
		groups = append(groups, g)
	}
	return groups
}

// GroupStats summarizes grouping effectiveness (paper Figure 11b).
type GroupStats struct {
	NumGroups   int
	AvgSize     float64
	MaxSize     int
	AvgHullSize float64
}

// GroupStats computes grouping statistics for the instance, including the
// average convex-hull vertex count per group (hulls in weight space).
func (inst *Instance) GroupStats() GroupStats {
	s := GroupStats{NumGroups: len(inst.Groups)}
	if s.NumGroups == 0 {
		return s
	}
	totalHull := 0
	for _, g := range inst.Groups {
		if len(g.Members) > s.MaxSize {
			s.MaxSize = len(g.Members)
		}
		pts := make([]geom.Vector, len(g.Members))
		for i, ui := range g.Members {
			pts[i] = inst.WProj[ui]
		}
		totalHull += len(geom.ExtremePoints(pts))
	}
	s.AvgSize = float64(len(inst.Users)) / float64(s.NumGroups)
	s.AvgHullSize = float64(totalHull) / float64(s.NumGroups)
	return s
}

// view is the per-cell, copy-on-write remainder of a group: the members
// whose relation to the cell is still undecided (the entries of the
// paper's individualized c.G list). Views are immutable once shared
// between sibling cells except for the hull cache, which is computed
// lazily, holds a value that depends only on the (immutable) member list,
// and is published through an atomic pointer: sibling leaves handed the
// same view may be processed by different frontier workers, and a
// duplicated computation is cheaper than a lock.
type view struct {
	g       *Group
	members []int // user indices (inherit the group's ordering)
	// hull caches the positions (into members) of hull vertices.
	hull atomic.Pointer[[]int]
}

func newView(g *Group) *view {
	v := &view{g: g, members: g.Members}
	if g.Hull != nil {
		hull := g.Hull
		v.hull.Store(&hull)
	}
	return v
}

// hullPositions returns the positions (indices into v.members) of the
// convex-hull vertices of the view's user vectors in weight space. The
// cache fills lazily; concurrent fillers compute the same deterministic
// value (hullPositionsOf is a pure function of the member list), so the
// racing Store is idempotent. Root views arrive pre-seeded from the
// group's precomputed hull.
func (v *view) hullPositions(inst *Instance) []int {
	if p := v.hull.Load(); p != nil {
		return *p
	}
	hull := hullPositionsOf(inst, v.members)
	v.hull.Store(&hull)
	return hull
}

// hullPositionsOf returns the positions (indices into members) of the
// convex-hull vertices of the members' weight vectors in projected weight
// space. For d = 2 the members are sorted by w[1], so the 1-D hull is
// {first, last}.
func hullPositionsOf(inst *Instance, members []int) []int {
	if len(members) == 0 {
		return nil
	}
	if inst.Dim == 2 {
		if len(members) == 1 {
			return []int{0}
		}
		return []int{0, len(members) - 1}
	}
	pts := make([]geom.Vector, len(members))
	for i, ui := range members {
		pts[i] = inst.WProj[ui]
	}
	return geom.ExtremePoints(pts)
}

// withMembers derives a new view with the given member subset.
func (v *view) withMembers(members []int) *view {
	return &view{g: v.g, members: members}
}

// cellGroups is the payload a cell carries: its individualized pending
// group list. Slices of views are copied on modification; the views
// themselves are shared.
type cellGroups struct {
	views []*view
}

func (cg *cellGroups) clone() *cellGroups {
	// One slot of spare capacity: insertGroup clones a list and then
	// appends the opened view's remainder, which would otherwise force an
	// immediate reallocation.
	vs := make([]*view, len(cg.views), len(cg.views)+1)
	copy(vs, cg.views)
	return &cellGroups{views: vs}
}

// remove drops the view at position i (order not preserved).
func (cg *cellGroups) remove(i int) {
	last := len(cg.views) - 1
	cg.views[i] = cg.views[last]
	cg.views = cg.views[:last]
}

// undecided returns the total number of users still undecided for the cell.
func (cg *cellGroups) undecided() int {
	n := 0
	for _, v := range cg.views {
		n += len(v.members)
	}
	return n
}
