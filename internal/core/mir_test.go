package core

import (
	"math/rand"
	"testing"

	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// randomInstance builds a small random mIR instance.
func randomInstance(t *testing.T, rng *rand.Rand, nP, nU, d, k int) *Instance {
	t.Helper()
	ps := data.Independent(rng, nP, d)
	us := data.WithK(data.ClusteredUsers(rng, nU, d, 3, 0.08), k)
	inst, err := NewInstance(ps, us)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// checkRegionOracle samples points and verifies the fundamental mIR
// contract: a point belongs to the region iff it covers at least m users.
// Points within eps of any top-k entry boundary are skipped.
func checkRegionOracle(t *testing.T, inst *Instance, m int, reg *Region, rng *rand.Rand, probes int) {
	t.Helper()
	const eps = 1e-6
	checked := 0
	for i := 0; i < probes; i++ {
		p := make(geom.Vector, inst.Dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		if inst.MinBoundaryGap(p) < eps {
			continue
		}
		checked++
		covers := inst.CountCovering(p)
		in := reg.Contains(p)
		if (covers >= m) != in {
			t.Fatalf("oracle violation at %v: covers %d users (m=%d) but Contains=%v",
				p, covers, m, in)
		}
	}
	if checked < probes/2 {
		t.Logf("warning: only %d/%d probes usable (boundary-dense instance)", checked, probes)
	}
}

// sameRegion verifies two regions agree on sampled points.
func sameRegion(t *testing.T, inst *Instance, a, b *Region, rng *rand.Rand, probes int) {
	t.Helper()
	const eps = 1e-6
	for i := 0; i < probes; i++ {
		p := make(geom.Vector, inst.Dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		if inst.MinBoundaryGap(p) < eps {
			continue
		}
		if a.Contains(p) != b.Contains(p) {
			t.Fatalf("regions disagree at %v: %v vs %v (covers %d users)",
				p, a.Contains(p), b.Contains(p), inst.CountCovering(p))
		}
	}
}

// TestFigure1Example reproduces the paper's running example in spirit: a
// two-dimensional instance with four users where the mIR result for m=3 is
// a non-convex union of cells around the top corner.
func TestFigure1Example(t *testing.T) {
	products := []geom.Vector{
		{0.20, 0.80}, {0.45, 0.70}, {0.60, 0.60}, {0.80, 0.40},
		{0.90, 0.15}, {0.30, 0.30}, {0.55, 0.35},
	}
	users := []topk.UserPref{
		{W: geom.Vector{0.2, 0.8}, K: 1},
		{W: geom.Vector{0.4, 0.6}, K: 2},
		{W: geom.Vector{0.6, 0.4}, K: 2},
		{W: geom.Vector{0.8, 0.2}, K: 1},
	}
	inst, err := NewInstance(products, users)
	if err != nil {
		t.Fatal(err)
	}
	const m = 3
	reg, err := AA(inst, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The top corner covers everyone, hence is always in R.
	if !reg.Contains(geom.Vector{1, 1}) {
		t.Error("top corner not in region")
	}
	// The origin covers no one.
	if reg.Contains(geom.Vector{0, 0}) {
		t.Error("origin in region")
	}
	rng := rand.New(rand.NewSource(1))
	checkRegionOracle(t, inst, m, reg, rng, 4000)

	// Cross-check against NVE and BSL.
	nve, err := NVE(inst, m)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, inst, reg, nve, rng, 2000)
	bsl, err := BSL(inst, m)
	if err != nil {
		t.Fatal(err)
	}
	sameRegion(t, inst, reg, bsl, rng, 2000)
}

// TestThreeWayEquivalence cross-checks NVE, BSL and AA on random small
// instances across dimensionalities and m values (including the extremes
// m=1 — union of halfspaces — and m=|U| — intersection).
func TestThreeWayEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		d := 2 + rng.Intn(3)
		nU := 5 + rng.Intn(5)
		inst := randomInstance(t, rng, 60, nU, d, 1+rng.Intn(4))
		for _, m := range []int{1, (nU + 1) / 2, nU} {
			nve, err := NVE(inst, m)
			if err != nil {
				t.Fatal(err)
			}
			bsl, err := BSL(inst, m)
			if err != nil {
				t.Fatal(err)
			}
			aa, err := AA(inst, m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			checkRegionOracle(t, inst, m, aa, rng, 1500)
			sameRegion(t, inst, aa, nve, rng, 800)
			sameRegion(t, inst, aa, bsl, rng, 800)
		}
	}
}

// TestAAOracleLarger runs the oracle check on larger instances where NVE
// is infeasible.
func TestAAOracleLarger(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range []struct{ nP, nU, d, k, m int }{
		{500, 60, 2, 5, 30},
		{500, 60, 3, 5, 30},
		{300, 40, 4, 3, 10},
		{300, 40, 3, 10, 36},
		{1000, 100, 3, 10, 50},
	} {
		inst := randomInstance(t, rng, cfg.nP, cfg.nU, cfg.d, cfg.k)
		reg, err := AA(inst, cfg.m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkRegionOracle(t, inst, cfg.m, reg, rng, 3000)
	}
}

// TestAblationsPreserveExactness: every Options toggle must yield the same
// region (they are performance switches, not semantics switches).
func TestAblationsPreserveExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	variants := []struct {
		name string
		opts Options
	}{
		{"default", Options{}},
		{"no-fast", Options{DisableFastTest: true}},
		{"no-inner-group", Options{DisableInnerGroup: true}},
		{"no-2d", Options{Disable2D: true}},
		{"no-grouping", Options{DisableGrouping: true}},
		{"smallest-group", Options{GroupChoice: SmallestGroup}},
		{"round-robin", Options{GroupChoice: RoundRobinGroup}},
		{"everything-off", Options{
			DisableFastTest: true, DisableInnerGroup: true,
			Disable2D: true, DisableGrouping: true,
		}},
	}
	for trial := 0; trial < 4; trial++ {
		d := 2 + trial%3
		nU := 20
		inst := randomInstance(t, rng, 200, nU, d, 5)
		m := 3 + rng.Intn(nU-4)
		base, err := AA(inst, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkRegionOracle(t, inst, m, base, rng, 1500)
		for _, v := range variants[1:] {
			got, err := AA(inst, m, v.opts)
			if err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
			sameRegion(t, inst, base, got, rng, 1000)
		}
	}
}

// TestDiverseK: users with individual k values (the paper's Figure 17b
// setting) must still produce exact regions.
func TestDiverseK(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ps := data.Independent(rng, 300, 3)
	ws := data.ClusteredUsers(rng, 30, 3, 3, 0.08)
	for _, users := range [][]topk.UserPref{
		data.WithUniformK(rng, ws, 1, 20),
		data.WithNormalK(rng, ws, 10, 5, 40),
	} {
		inst, err := NewInstance(ps, users)
		if err != nil {
			t.Fatal(err)
		}
		m := 15
		reg, err := AA(inst, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		checkRegionOracle(t, inst, m, reg, rng, 2000)
	}
}

// TestRegionConnectedViaTopCorner: every cell of the region contains a
// path to the top corner conceptually; at minimum, the top corner itself
// must lie in the region whenever the region is non-empty (all influential
// halfspaces contain it — Section 4.1's observation).
func TestRegionTopCorner(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	inst := randomInstance(t, rng, 200, 20, 3, 5)
	top := geom.Vector{1, 1, 1}
	for _, m := range []int{1, 10, 20} {
		reg, err := AA(inst, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if reg.IsEmpty() {
			t.Fatalf("m=%d: region empty (top corner covers all)", m)
		}
		if !reg.Contains(top) {
			t.Errorf("m=%d: top corner missing from region", m)
		}
	}
}

// TestRegionMonotoneInM: the region for m+1 is a subset of the region for
// m (sampling check).
func TestRegionMonotoneInM(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	inst := randomInstance(t, rng, 300, 15, 3, 5)
	regs := make([]*Region, 0, 15)
	for m := 1; m <= 15; m += 4 {
		r, err := AA(inst, m, Options{})
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, r)
	}
	for probe := 0; probe < 2000; probe++ {
		p := geom.Vector{rng.Float64(), rng.Float64(), rng.Float64()}
		if inst.MinBoundaryGap(p) < 1e-6 {
			continue
		}
		for i := 1; i < len(regs); i++ {
			if regs[i].Contains(p) && !regs[i-1].Contains(p) {
				t.Fatalf("monotonicity violated at %v between m=%d and m=%d",
					p, regs[i-1].M, regs[i].M)
			}
		}
	}
}

func TestInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ps := data.Independent(rng, 50, 3)
	us := data.WithK(data.UniformUsers(rng, 10, 3), 5)

	if _, err := NewInstance(nil, us); err == nil {
		t.Error("empty products accepted")
	}
	if _, err := NewInstance(ps, nil); err == nil {
		t.Error("empty users accepted")
	}
	bad := data.WithK(data.UniformUsers(rng, 5, 4), 5) // wrong dim
	if _, err := NewInstance(ps, bad); err == nil {
		t.Error("dim mismatch accepted")
	}
	badK := data.WithK(data.UniformUsers(rng, 5, 3), 500) // k > |P|
	if _, err := NewInstance(ps, badK); err == nil {
		t.Error("k > |P| accepted")
	}

	inst, err := NewInstance(ps, us)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AA(inst, 0, Options{}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := AA(inst, 11, Options{}); err == nil {
		t.Error("m>|U| accepted")
	}
	if _, err := NVE(inst, 0); err == nil {
		t.Error("NVE m=0 accepted")
	}
	if _, err := BSL(inst, 99); err == nil {
		t.Error("BSL m>|U| accepted")
	}
}

func TestGroupStats(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	inst := randomInstance(t, rng, 300, 50, 3, 5)
	gs := inst.GroupStats()
	if gs.NumGroups < 1 || gs.NumGroups > 50 {
		t.Errorf("NumGroups = %d", gs.NumGroups)
	}
	if gs.AvgSize*float64(gs.NumGroups) != 50 {
		t.Errorf("AvgSize inconsistent: %g * %d != 50", gs.AvgSize, gs.NumGroups)
	}
	if gs.MaxSize < 1 || gs.AvgHullSize < 1 {
		t.Errorf("stats: %+v", gs)
	}
	total := 0
	for _, g := range inst.Groups {
		total += len(g.Members)
		for _, ui := range g.Members {
			if inst.Kth[ui].Index != g.Pivot {
				t.Fatalf("user %d grouped under wrong pivot", ui)
			}
		}
	}
	if total != 50 {
		t.Errorf("groups cover %d users, want 50", total)
	}
}

// TestGroups2DOrdering: for d=2, group members must be sorted by
// descending w[1] (the invariant Lemmas 5/6 rely on).
func TestGroups2DOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	inst := randomInstance(t, rng, 200, 40, 2, 5)
	for _, g := range inst.Groups {
		for i := 1; i < len(g.Members); i++ {
			if inst.Users[g.Members[i-1]].W[0] < inst.Users[g.Members[i]].W[0] {
				t.Fatal("2-D group members not sorted by descending w[1]")
			}
		}
	}
}

// TestEarlyStatsPopulated: AA on a mid-range m must exhibit both early
// reporting and early elimination (the paper's Figure 16d shows 33-49%).
func TestEarlyStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	inst := randomInstance(t, rng, 400, 60, 3, 10)
	reg, err := AA(inst, 30, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := reg.Stats
	if st.EarlyReported == 0 && st.EarlyEliminated == 0 {
		t.Error("no early decisions recorded")
	}
	if st.Cells == 0 || st.Iterations == 0 {
		t.Errorf("stats not populated: %+v", st)
	}
}

// TestBSLSlowerThanAA is a smoke check of the paper's headline claim on a
// moderate instance: AA must create far fewer cells than BSL.
func TestAAFewerCellsThanBSL(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	inst := randomInstance(t, rng, 400, 60, 3, 10)
	aa, err := AA(inst, 30, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bsl, err := BSL(inst, 30)
	if err != nil {
		t.Fatal(err)
	}
	if aa.Stats.Cells >= bsl.Stats.Cells {
		t.Errorf("AA cells %d >= BSL cells %d", aa.Stats.Cells, bsl.Stats.Cells)
	}
}
