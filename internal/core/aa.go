package core

import (
	"fmt"
	"sort"

	"mir/internal/celltree"
	"mir/internal/geom"
	"mir/internal/lp"
	"mir/internal/par"
)

// AA is the advanced mIR algorithm (Section 5, Algorithm 2). Users are
// grouped by common top-k-th product; an arrangement cell tree is grown by
// always processing the cell closest to a decision, batch-testing whole
// groups against it via convex-hull arguments (Lemmas 3/4), and — when a
// group must be opened — classifying its members through inner-group
// processing and partitioning the cell only by the hull vertices of the
// still-cutting members, deferring the rest to descendant cells. For
// two-dimensional instances a specialized insertion (Lemmas 5/6) reports
// whole sub-regions per group directly.
func AA(inst *Instance, m int, opts Options) (*Region, error) {
	if shards := effectiveShards(opts); shards > 1 {
		return aaSharded(inst, m, opts, shards)
	}
	run, err := runAA(inst, m, opts)
	if err != nil {
		return nil, err
	}
	return run.region(), nil
}

// runAA executes AA and returns the finished run (tree included), which
// incremental maintenance builds on.
func runAA(inst *Instance, m int, opts Options) (*aaRun, error) {
	if err := inst.CheckM(m); err != nil {
		return nil, err
	}
	run := &aaRun{
		inst: inst,
		m:    m,
		nU:   len(inst.Users),
		opts: opts,
		tr:   celltree.New(geom.NewBox(inst.Dim, 0, 1)),
	}
	// Charge the instance's all-top-k preprocessing effort to the run's
	// stats so the counters travel with every Region; incremental
	// maintenance adds its per-arrival search effort on top.
	run.st.ScannedProducts = inst.Prep.ScannedProducts
	run.st.LayerPrunes = inst.Prep.LayerPrunes
	if inst.TopKIndex != nil {
		run.st.IndexPatches = inst.TopKIndex.Patches()
		run.st.IndexRebuilds = inst.TopKIndex.Rebuilds()
	}
	run.seedRoot()
	run.drain()
	return run, nil
}

// runMode selects the loop's objective: computing the m-impact region, or
// maximizing coverage under a budget (the IS / budgeted-CO adaptation of
// Section 5.5).
type runMode int

const (
	modeMIR runMode = iota
	modeMaxCov
	modeMinCost
)

// aaRun holds the state of one AA execution: the instance-wide inputs,
// the arrangement, the staging heap cells wait on between drains, and the
// built-in sequential worker. All per-cell mutable state (scratch buffers,
// test counters, tree mutation) lives on aaWorker; the run itself is
// read-only while frontier workers are active, except for the fields the
// sequential-only modes use.
type aaRun struct {
	inst *Instance
	m    int
	nU   int
	opts Options
	tr   *celltree.Tree
	heap celltree.Heap
	st   Stats
	rr   int // round-robin cursor for the ablation strategy (sequential only)

	// seq is the built-in sequential worker: its shard writes straight
	// into tr.Stats and its core counters into r.st, so the sequential
	// path needs no merge step and behaves exactly like the historical
	// single-threaded loop.
	seq *aaWorker

	// sched records the frontier scheduler's execution, nil when every
	// drain ran sequentially.
	sched *SchedStats

	// Max-coverage mode (IS, budgeted CO).
	mode      runMode
	budget    float64
	costFn    Cost
	base      geom.Vector
	bestCov   int
	bestPoint geom.Vector
	bestCost  float64
}

// aaWorker is the per-goroutine execution context of the AA loop: the
// reusable scratch buffers of the per-cell hot paths, a celltree.Shard for
// subtree mutation, a private core-Stats accumulator, and the intra-cell
// fan-out degree. The sequential loop owns exactly one (fanout = Workers,
// shard = the tree's own); the frontier runs one per worker goroutine
// (fanout = 1 — parallelism comes from concurrent cells, not concurrent
// members) and merges shards and stats after the join.
type aaWorker struct {
	r      *aaRun
	sh     *celltree.Shard
	st     *Stats
	fanout int

	leavesBuf []*celltree.Cell
	isHullBuf []bool
	vcPts     []geom.Vector
	vePts     []geom.Vector
	ptsBuf    []geom.Vector
	gcBuf     []int
	geBuf     []int
	giBuf     []int
	remBuf    []int
}

func (r *aaRun) fast() bool { return !r.opts.DisableFastTest }

// workers resolves the run's parallelism degree (Options.Workers; 0 = all
// cores, 1 = sequential).
func (r *aaRun) workers() int { return par.Resolve(r.opts.Workers) }

// seedRoot attaches the full group list to the root and queues it.
func (r *aaRun) seedRoot() { r.seedRootPrescreened(nil) }

// seedRootPrescreened attaches the pending group list to the root and
// queues it. With rel == nil (the single-tree path) every member of every
// group is pending — the historical seeding, byte for byte. With a
// prescreen relation per user (the space-sharded path), members whose
// halfspace provably covers or misses the root box are absorbed into the
// root's counts up front and only the cutting members enter the views;
// group order and within-group member order are preserved, so the shard's
// run stays deterministic for every worker count.
func (r *aaRun) seedRootPrescreened(rel []geom.Relation) {
	r.seq = &aaWorker{r: r, sh: r.tr.OwnShard(), st: &r.st, fanout: r.workers()}
	r.tr.Prune = !r.opts.DisablePruning
	r.tr.WarmStart = !r.opts.DisableWarmStart
	r.tr.Kernels = !r.opts.DisableKernels
	root := r.tr.Root
	if root.Status != celltree.Active {
		return
	}
	if rel != nil {
		in, out := 0, 0
		for _, rl := range rel {
			switch rl {
			case geom.Covers:
				in++
			case geom.Excludes:
				out++
			}
		}
		root.InCount, root.OutCount = in, out
		r.st.PrescreenedOut = int64(in + out)
		r.st.ShardHalfspaces = int64(r.nU - in - out)
	}
	cg := &cellGroups{}
	for _, g := range r.inst.Groups {
		members := g.Members
		if rel != nil {
			members = cuttingMembers(g.Members, rel)
			if len(members) == 0 {
				continue
			}
		}
		switch {
		case r.opts.DisableGrouping:
			for i := range members {
				single := &Group{Pivot: g.Pivot, R: g.R, Members: members[i : i+1]}
				cg.views = append(cg.views, newView(single))
			}
		case len(members) == len(g.Members):
			cg.views = append(cg.views, newView(g))
		default:
			cg.views = append(cg.views, &view{g: g, members: members})
		}
	}
	root.Payload = cg
	if !r.seq.verify(root) {
		r.heap.Push(root, r.priority(root))
	}
}

// cuttingMembers returns the members whose prescreen relation is Cuts,
// preserving order (the d=2 paths rely on the group's member ordering).
// The full slice is returned unallocated when nothing was absorbed.
func cuttingMembers(members []int, rel []geom.Relation) []int {
	n := 0
	for _, ui := range members {
		if rel[ui] == geom.Cuts {
			n++
		}
	}
	if n == len(members) {
		return members
	}
	out := make([]int, 0, n)
	for _, ui := range members {
		if rel[ui] == geom.Cuts {
			out = append(out, ui)
		}
	}
	return out
}

// loop is the sequential drain: Algorithm 2's main iteration (and, in
// max-coverage mode, the Section 5.5 variant). The frontier scheduler
// replaces it for modeMIR when Workers > 1; see drain.
func (r *aaRun) loop() {
	w := r.seq
	for r.heap.Len() > 0 {
		c := r.heap.Pop()
		w.processCell(c, r.heap.Push)
		// High-water mark of in-flight cells (queued + the one just
		// processed), mirroring the frontier's MaxPending accounting.
		if n := r.heap.Len() + 1; n > r.st.MaxFrontier {
			r.st.MaxFrontier = n
		}
	}
}

// processCell runs one iteration of Algorithm 2 on cell c: budget/cost
// pruning (sequential modes), Update, Verify, group insertion, and the
// distribution of the surviving group list to the cell's new leaves.
// Undecided leaves are handed to push with their processing priority.
//
// In modeMIR this is the frontier's unit of work, and it commutes across
// independent cells: everything it reads is either immutable for the run
// (instance, groups, m, nU) or owned by c (counts, payload, subtree), and
// everything it writes is c's subtree or the worker's private
// accumulators. The processing order of disjoint active cells therefore
// never changes the final tree, counts, or stats sums.
func (w *aaWorker) processCell(c *celltree.Cell, push func(*celltree.Cell, float64)) {
	r := w.r
	if c.Status != celltree.Active {
		return
	}
	w.st.Iterations++
	if r.mode == modeMaxCov && r.pruneBudget(c) {
		return
	}
	if r.mode == modeMinCost && r.pruneCost(c) {
		return
	}
	w.update(c)
	if w.verify(c) {
		return
	}
	cg := c.Payload.(*cellGroups)
	if len(cg.views) == 0 {
		if r.mode == modeMaxCov {
			r.finalize(c)
			return
		}
		// With all users counted, verify must have decided the cell.
		panic(fmt.Sprintf("core: cell %d undecided with empty group list (in=%d out=%d |U|=%d)",
			c.ID, c.InCount, c.OutCount, r.nU))
	}
	vi := r.chooseView(cg)
	var newCG *cellGroups
	if r.inst.Dim == 2 && !r.opts.Disable2D && r.mode == modeMIR {
		newCG = w.insert2D(c, cg, vi)
	} else {
		newCG = w.insertGroup(c, cg, vi)
	}
	if newCG == nil {
		return // the cell was decided during group insertion
	}
	w.leavesBuf = r.tr.Leaves(c, w.leavesBuf[:0])
	// Each active leaf needs an independently mutable copy of the list;
	// newCG itself is unaliased after the distribution, so the first taker
	// can have the original. Distribution and publication are separate
	// passes: push hands a leaf to the scheduler, after which a stealing
	// worker may mutate that leaf's list in place (update/remove) — so no
	// leaf may be published while newCG is still being cloned from.
	taken := false
	for _, leaf := range w.leavesBuf {
		if leaf.Status != celltree.Active {
			continue
		}
		if taken {
			leaf.Payload = newCG.clone()
		} else {
			leaf.Payload = newCG
			taken = true
		}
	}
	for _, leaf := range w.leavesBuf {
		if leaf.Status != celltree.Active {
			continue
		}
		if !w.verify(leaf) {
			push(leaf, r.priority(leaf))
		}
	}
}

// priority is the paper's processing key: for mIR, the number of
// additional covering halfspaces needed to report or excluding halfspaces
// needed to eliminate, whichever is smaller; for max-coverage mode, cells
// with the largest known coverage first.
func (r *aaRun) priority(c *celltree.Cell) float64 {
	if r.mode == modeMaxCov {
		return -float64(c.InCount)
	}
	if r.mode == modeMinCost {
		// Cheapest-possible cells first; the bound is monotone down the
		// tree, so the first candidate popped at a bound above the
		// incumbent proves optimality.
		return r.costFn.LowerBound(c.MBBLo, r.base)
	}
	toReport := float64(r.m - c.InCount)
	toEliminate := float64(r.nU - r.m - c.OutCount + 1)
	if toReport < toEliminate {
		return toReport
	}
	return toEliminate
}

// verify implements Algorithm 2's Verify: early reporting and early
// elimination. It returns true when the cell is (now) decided. "Early"
// means some users were still undecided at decision time (Figure 16d).
// In max-coverage mode there is no fixed m: a cell is eliminated when its
// coverage upper bound cannot beat the incumbent. The max-coverage and
// min-cost branches mutate run-level incumbents and run only under the
// sequential loop.
func (w *aaWorker) verify(c *celltree.Cell) bool {
	r := w.r
	if c.Status != celltree.Active {
		return true
	}
	if r.mode == modeMaxCov {
		if r.nU-c.OutCount <= r.bestCov {
			w.sh.Eliminate(c)
			return true
		}
		return false
	}
	if r.mode == modeMinCost {
		if r.nU-c.OutCount < r.m {
			w.sh.Eliminate(c)
			return true
		}
		if c.InCount >= r.m {
			// Every point of the cell covers >= m users: its cheapest
			// point is a candidate optimum.
			if pt, cost, err := r.costFn.MinOverCell(c.Polytope(), r.base); err == nil && cost < r.bestCost {
				r.bestCost = cost
				r.bestPoint = pt
			}
			w.sh.Report(c)
			return true
		}
		return false
	}
	if c.InCount >= r.m {
		w.reportCell(c)
		return true
	}
	if r.nU-c.OutCount < r.m {
		if c.InCount+c.OutCount < r.nU {
			w.st.EarlyEliminated++
		}
		w.sh.Eliminate(c)
		return true
	}
	return false
}

// reportCell marks c as part of R, tracking early-reporting stats.
func (w *aaWorker) reportCell(c *celltree.Cell) {
	if c.Status != celltree.Active {
		return
	}
	if c.InCount+c.OutCount < w.r.nU {
		w.st.EarlyReported++
	}
	w.sh.Report(c)
}

// update is Algorithm 2's Update: test every pending group against the
// cell via Lemmas 3 and 4 and absorb fully-covering / fully-excluded
// groups into the counts. With an intra-cell fan-out the per-view
// relations are precomputed concurrently (they are mutually independent);
// absorption stays sequential so InCount/OutCount, the early-exit point,
// and the surviving view order are identical to the sequential execution.
func (w *aaWorker) update(c *celltree.Cell) {
	r := w.r
	cg := c.Payload.(*cellGroups)
	if w.fanout > 1 && len(cg.views) > 1 {
		w.absorb(c, cg, w.relationsParallel(c, cg))
		return
	}
	for vi := 0; vi < len(cg.views); {
		switch w.groupRelation(c, cg.views[vi]) {
		case geom.Covers:
			c.InCount += len(cg.views[vi].members)
			cg.remove(vi)
			w.st.GroupBatchHits++
			if r.mode == modeMIR && c.InCount >= r.m {
				return // verify will report; no need to scan further
			}
		case geom.Excludes:
			c.OutCount += len(cg.views[vi].members)
			cg.remove(vi)
			w.st.GroupBatchHits++
			if r.mode == modeMIR && r.nU-c.OutCount < r.m {
				return
			}
		default:
			vi++
		}
	}
}

// relationsParallel classifies every pending view against the cell
// concurrently, returning the relations indexed like cg.views. Test
// counters accumulate into per-goroutine Stats and merge by summation, so
// they are deterministic for any fan-out; classification the sequential
// loop would have skipped after an early exit is wasted rather than
// skipped, so the counters can exceed the fanout == 1 numbers.
func (w *aaWorker) relationsParallel(c *celltree.Cell, cg *cellGroups) []geom.Relation {
	c.Prewarm()
	workers := w.fanout
	rels := make([]geom.Relation, len(cg.views))
	stats := make([]celltree.Stats, workers)
	par.ForWorker(len(cg.views), workers, func(g, i int) {
		rels[i] = w.groupRelationInto(c, cg.views[i], &stats[g])
	})
	for _, s := range stats {
		w.sh.Stats().MergeTests(s)
	}
	return rels
}

// absorb replays the sequential absorption loop of update over
// precomputed relations, mirroring cg.remove's swap-with-last on the
// relation slice so the two stay aligned.
func (w *aaWorker) absorb(c *celltree.Cell, cg *cellGroups, rels []geom.Relation) {
	r := w.r
	drop := func(vi int) {
		cg.remove(vi)
		last := len(rels) - 1
		rels[vi] = rels[last]
		rels = rels[:last]
	}
	for vi := 0; vi < len(cg.views); {
		switch rels[vi] {
		case geom.Covers:
			c.InCount += len(cg.views[vi].members)
			drop(vi)
			w.st.GroupBatchHits++
			if r.mode == modeMIR && c.InCount >= r.m {
				return
			}
		case geom.Excludes:
			c.OutCount += len(cg.views[vi].members)
			drop(vi)
			w.st.GroupBatchHits++
			if r.mode == modeMIR && r.nU-c.OutCount < r.m {
				return
			}
		default:
			vi++
		}
	}
}

// groupRelation decides whether every member of the view covers the cell
// (Lemma 3), every member excludes it (Lemma 4), or neither, accumulating
// test counters into the worker's shard.
func (w *aaWorker) groupRelation(c *celltree.Cell, v *view) geom.Relation {
	return w.groupRelationInto(c, v, w.sh.Stats())
}

// groupRelationInto is groupRelation with the test counters accumulated
// into st, so concurrent classifications of distinct views against a
// prewarmed cell are race-free. The fast path is the dominance test of
// Section 5.3: if the cell's MBB min-corner dominates the group's common
// top-k-th product r, every product in the cell outscores r for every
// user; symmetrically for the max-corner.
func (w *aaWorker) groupRelationInto(c *celltree.Cell, v *view, st *celltree.Stats) geom.Relation {
	r := w.r
	if r.fast() {
		if c.MBBLo.WeakDominates(v.g.R) {
			return geom.Covers
		}
		if v.g.R.WeakDominates(c.MBBHi) {
			return geom.Excludes
		}
	}
	allCover, allExclude := true, true
	for _, pos := range v.hullPositions(r.inst) {
		h := r.inst.HS[v.members[pos]]
		switch c.ClassifyInto(h, r.fast(), st) {
		case geom.Covers:
			allExclude = false
		case geom.Excludes:
			allCover = false
		default:
			allCover, allExclude = false, false
		}
		if !allCover && !allExclude {
			return geom.Cuts
		}
	}
	if allCover {
		return geom.Covers
	}
	if allExclude {
		return geom.Excludes
	}
	return geom.Cuts
}

// chooseView implements the group-selection strategy (largest by default;
// Figure 17a ablates smallest and round-robin). RoundRobinGroup advances a
// run-global cursor, so the frontier scheduler is disabled for it (see
// drain); the other strategies are pure functions of the cell's list.
func (r *aaRun) chooseView(cg *cellGroups) int {
	switch r.opts.GroupChoice {
	case SmallestGroup:
		best := 0
		for i, v := range cg.views {
			if len(v.members) < len(cg.views[best].members) {
				best = i
			}
		}
		return best
	case RoundRobinGroup:
		// Pick the cursor's current position, then advance — incrementing
		// first would skip view 0 on the first pick and drift the cursor
		// one slot per call for the lifetime of the run.
		vi := r.rr % len(cg.views)
		r.rr++
		return vi
	default:
		best := 0
		for i, v := range cg.views {
			if len(v.members) > len(cg.views[best].members) {
				best = i
			}
		}
		return best
	}
}

// insertGroup implements Section 5.2's inner-group processing for the view
// at position vi of the cell's group list. It returns the group list to
// hand down to the cell's (possibly new) leaves, or nil when the cell was
// decided during processing.
func (w *aaWorker) insertGroup(c *celltree.Cell, cg *cellGroups, vi int) *cellGroups {
	r := w.r
	inst := r.inst
	v := cg.views[vi]

	var gc, ge, gi []int // positions into v.members (reusable scratch)
	if r.opts.DisableInnerGroup {
		// Ablation: classify every member with its own containment test.
		gc, ge, gi = w.gcBuf[:0], w.geBuf[:0], w.giBuf[:0]
		for pos := range v.members {
			switch c.ClassifyInto(inst.HS[v.members[pos]], r.fast(), w.sh.Stats()) {
			case geom.Covers:
				gc = append(gc, pos)
			case geom.Excludes:
				ge = append(ge, pos)
			default:
				gi = append(gi, pos)
			}
		}
	} else {
		gc, ge, gi = w.classifyByHull(c, v)
	}
	// The position lists live in the worker's scratch (the parallel
	// classification path returns fresh slices; storing those back just
	// grows the scratch). Nothing below retains them: member lists are
	// copied out before they land in views.
	w.gcBuf, w.geBuf, w.giBuf = gc[:0], ge[:0], gi[:0]
	// Keep positions ascending: views inherit the group's member ordering
	// (descending w[1] for d = 2, where the hull-extremes shortcut depends
	// on it).
	sort.Ints(gi)

	c.InCount += len(gc)
	c.OutCount += len(ge)

	// base: the pending list with the opened view removed.
	base := cg.clone()
	base.remove(indexOfView(base, v))

	// Keep c's own payload consistent with its counts at every decision
	// point: the cutting members (all of G^i) are still pending for c
	// itself. Incremental maintenance relies on this invariant
	// (counts + pending = all users) on decided cells.
	if len(gi) > 0 {
		giMembers := make([]int, len(gi))
		for i, pos := range gi {
			giMembers[i] = v.members[pos]
		}
		withGi := base.clone()
		withGi.views = append(withGi.views, v.withMembers(giMembers))
		c.Payload = withGi
	} else {
		c.Payload = base
	}

	if w.verify(c) {
		return nil
	}
	if len(gi) == 0 {
		return base
	}

	// Partition only by the hull vertices of the still-cutting members;
	// defer the rest to descendant cells (delayed insertion). The ablation
	// inserts every cutting halfspace eagerly.
	var insertPos []int
	if r.opts.DisableInnerGroup {
		insertPos = gi
	} else {
		insertPos = w.hullOfPositions(v, gi)
	}
	remainder := subtractPositions(gi, insertPos, w.remBuf[:0])
	w.remBuf = remainder[:0]
	newCG := base
	if len(remainder) > 0 {
		members := make([]int, len(remainder))
		for i, pos := range remainder {
			members[i] = v.members[pos]
		}
		newCG = base.clone()
		newCG.views = append(newCG.views, v.withMembers(members))
	}
	for _, pos := range insertPos {
		insertHS(w.sh, c, inst.HS[v.members[pos]], r.fast(), nil)
	}
	return newCG
}

// classifyByHull classifies the view's members into covering (gc),
// excluding (ge), and cutting (gi) sets using the hull-first strategy of
// Section 5.2: classify the hull vertices with geometric tests, then place
// interior members by convex-hull membership (Lemmas 3/4 make any member
// inside conv of covering vertices covering, and likewise for excluded).
// Members are pre-filtered with the O(d) MBB test. Large views fan their
// per-member classification (MBB pre-tests and hull-membership LPs) across
// the worker's fan-out; see classifyByHullParallel.
func (w *aaWorker) classifyByHull(c *celltree.Cell, v *view) (gc, ge, gi []int) {
	if w.fanout > 1 && len(v.members) >= minParallelMembers {
		return w.classifyByHullParallel(c, v)
	}
	r := w.r
	inst := r.inst
	hullPos := v.hullPositions(inst)
	// Reusable scratch: the position lists, a position-indexed hull marker,
	// and the vertex point lists (one worker goroutine owns them).
	gc, ge, gi = w.gcBuf[:0], w.geBuf[:0], w.giBuf[:0]
	if cap(w.isHullBuf) < len(v.members) {
		w.isHullBuf = make([]bool, len(v.members))
	}
	isHull := w.isHullBuf[:len(v.members)]
	for i := range isHull {
		isHull[i] = false
	}
	vcPts, vePts := w.vcPts[:0], w.vePts[:0]
	for _, pos := range hullPos {
		isHull[pos] = true
		switch c.ClassifyInto(inst.HS[v.members[pos]], r.fast(), w.sh.Stats()) {
		case geom.Covers:
			gc = append(gc, pos)
			vcPts = append(vcPts, inst.WProj[v.members[pos]])
		case geom.Excludes:
			ge = append(ge, pos)
			vePts = append(vePts, inst.WProj[v.members[pos]])
		default:
			gi = append(gi, pos)
		}
	}
	w.vcPts, w.vePts = vcPts, vePts
	for pos := range v.members {
		if isHull[pos] {
			continue
		}
		ui := v.members[pos]
		// Fast MBB pre-test on the member's own halfspace.
		if r.fast() {
			if rel, ok := c.FastClassifyInto(inst.HS[ui], w.sh.Stats()); ok {
				if rel == geom.Covers {
					gc = append(gc, pos)
				} else {
					ge = append(ge, pos)
				}
				continue
			}
		}
		switch {
		case len(vcPts) > 0 && w.inHull(inst.WProj[ui], vcPts):
			gc = append(gc, pos)
		case len(vePts) > 0 && w.inHull(inst.WProj[ui], vePts):
			ge = append(ge, pos)
		default:
			gi = append(gi, pos)
		}
	}
	return gc, ge, gi
}

// minParallelMembers gates the per-member fan-out of classifyByHull: below
// this size the goroutine handoff costs more than the LPs it spreads.
const minParallelMembers = 4

// classifyByHullParallel is classifyByHull with both stages fanned across
// the worker's fan-out: first the hull vertices are classified
// concurrently, then — once the covering/excluding vertex hulls are fixed
// — the interior members run their MBB pre-tests and hull-membership LPs
// concurrently. Results are materialized per position and appended in the
// sequential iteration order, so gc/ge/gi (and every downstream decision)
// are identical to the sequential classification for any fan-out.
func (w *aaWorker) classifyByHullParallel(c *celltree.Cell, v *view) (gc, ge, gi []int) {
	r := w.r
	inst := r.inst
	workers := w.fanout
	c.Prewarm()
	hullPos := v.hullPositions(inst)
	stats := make([]celltree.Stats, workers)

	// Stage 1: the hull vertices, via full geometric tests.
	hullRel := make([]geom.Relation, len(hullPos))
	par.ForWorker(len(hullPos), workers, func(g, i int) {
		hullRel[i] = c.ClassifyInto(inst.HS[v.members[hullPos[i]]], r.fast(), &stats[g])
	})
	isHull := make(map[int]bool, len(hullPos))
	var vc, ve []int
	for i, pos := range hullPos {
		isHull[pos] = true
		switch hullRel[i] {
		case geom.Covers:
			gc = append(gc, pos)
			vc = append(vc, pos)
		case geom.Excludes:
			ge = append(ge, pos)
			ve = append(ve, pos)
		default:
			gi = append(gi, pos)
		}
	}
	var vcPts, vePts []geom.Vector
	for _, pos := range vc {
		vcPts = append(vcPts, inst.WProj[v.members[pos]])
	}
	for _, pos := range ve {
		vePts = append(vePts, inst.WProj[v.members[pos]])
	}

	// Stage 2: interior members against the now-fixed vertex hulls.
	memRel := make([]geom.Relation, len(v.members))
	hullTests := make([]int, workers)
	hullLP := make([]lp.Counters, workers)
	par.ForWorker(len(v.members), workers, func(g, pos int) {
		if isHull[pos] {
			return
		}
		ui := v.members[pos]
		if r.fast() {
			if rel, ok := c.FastClassifyInto(inst.HS[ui], &stats[g]); ok {
				memRel[pos] = rel
				return
			}
		}
		switch {
		case len(vcPts) > 0 && func() bool {
			hullTests[g]++
			return geom.InConvexHullCounted(inst.WProj[ui], vcPts, &hullLP[g], r.opts.DisableKernels)
		}():
			memRel[pos] = geom.Covers
		case len(vePts) > 0 && func() bool {
			hullTests[g]++
			return geom.InConvexHullCounted(inst.WProj[ui], vePts, &hullLP[g], r.opts.DisableKernels)
		}():
			memRel[pos] = geom.Excludes
		default:
			memRel[pos] = geom.Cuts
		}
	})
	for _, s := range stats {
		w.sh.Stats().MergeTests(s)
	}
	for g, n := range hullTests {
		w.st.HullTests += n
		w.st.addLP(hullLP[g])
	}
	for pos := range v.members {
		if isHull[pos] {
			continue
		}
		switch memRel[pos] {
		case geom.Covers:
			gc = append(gc, pos)
		case geom.Excludes:
			ge = append(ge, pos)
		default:
			gi = append(gi, pos)
		}
	}
	return gc, ge, gi
}

// inHull wraps the hull-membership LP, counting it for the ablation stats
// and charging its pivots to the worker's own Stats (race-free per worker;
// merged order-free afterwards).
func (w *aaWorker) inHull(q geom.Vector, pts []geom.Vector) bool {
	w.st.HullTests++
	var d lp.Counters
	in := geom.InConvexHullCounted(q, pts, &d, w.r.opts.DisableKernels)
	w.st.addLP(d)
	return in
}

// hullOfPositions returns the subset of positions whose weight vectors are
// hull vertices among the given positions. The point list is assembled in
// the worker's reusable scratch.
func (w *aaWorker) hullOfPositions(v *view, positions []int) []int {
	inst := w.r.inst
	if inst.Dim == 2 {
		// Members are sorted by w[1]; the extremes are first and last.
		if len(positions) <= 2 {
			return positions
		}
		return []int{positions[0], positions[len(positions)-1]}
	}
	if cap(w.ptsBuf) < len(positions) {
		w.ptsBuf = make([]geom.Vector, len(positions))
	}
	pts := w.ptsBuf[:len(positions)]
	for i, pos := range positions {
		pts[i] = inst.WProj[v.members[pos]]
	}
	hull := geom.ExtremePoints(pts)
	out := make([]int, len(hull))
	for i, hi := range hull {
		out[i] = positions[hi]
	}
	return out
}

// subtractPositions appends the elements of all that are not in sub to dst
// and returns it. Both inputs are ascending (gi is sorted, and
// hullOfPositions preserves its input order), so a two-pointer merge
// suffices.
func subtractPositions(all, sub, dst []int) []int {
	j := 0
	for _, p := range all {
		for j < len(sub) && sub[j] < p {
			j++
		}
		if j < len(sub) && sub[j] == p {
			continue
		}
		dst = append(dst, p)
	}
	return dst
}

// indexOfView locates v in the clone (clone preserves order, so this is
// the original index, but search keeps the invariant local).
func indexOfView(cg *cellGroups, v *view) int {
	for i, x := range cg.views {
		if x == v {
			return i
		}
	}
	panic("core: view not found in group list")
}
