package core

import (
	"math"

	"mir/internal/geom"
	"mir/internal/solver"
)

// Cost models the creation or upgrade cost of a product as a monotone
// convex function of the attribute (increment) vector, as assumed by the
// CO and IS problems. Implementations must supply an exact minimizer over
// a convex cell and a cheap lower bound from the cell's bounding box.
type Cost interface {
	// Eval returns the cost of the non-negative increment vector delta.
	Eval(delta geom.Vector) float64
	// MinOverCell returns the point of poly minimizing Eval(x - base),
	// with its cost. base is the origin for creation problems or the
	// current product position for upgrade problems.
	MinOverCell(poly *geom.Polytope, base geom.Vector) (geom.Vector, float64, error)
	// LowerBound returns a valid lower bound on the cost over any region
	// whose bounding-box lower corner is mbbLo (using monotonicity:
	// every point x of the region has x >= mbbLo).
	LowerBound(mbbLo, base geom.Vector) float64
	// Name identifies the model in reports.
	Name() string
}

// clampDelta returns max(0, lo - base) componentwise: the smallest
// possible increment within a region bounded below by lo.
func clampDelta(lo, base geom.Vector) geom.Vector {
	d := make(geom.Vector, len(lo))
	for i := range lo {
		if v := lo[i] - base[i]; v > 0 {
			d[i] = v
		}
	}
	return d
}

// L2Cost is the Euclidean cost ||delta||_2 — the paper's default for both
// CO (creation cost = distance from the origin) and IS (upgrade cost =
// distance from the current product).
type L2Cost struct{}

// Eval returns the Euclidean norm of delta.
func (L2Cost) Eval(delta geom.Vector) float64 { return delta.Norm() }

// MinOverCell projects base onto the cell (an exact active-set QP).
func (L2Cost) MinOverCell(poly *geom.Polytope, base geom.Vector) (geom.Vector, float64, error) {
	return solver.Project(poly, base)
}

// LowerBound returns ||max(0, mbbLo - base)||.
func (L2Cost) LowerBound(mbbLo, base geom.Vector) float64 {
	return clampDelta(mbbLo, base).Norm()
}

// Name returns "L2".
func (L2Cost) Name() string { return "L2" }

// L1Cost is the Manhattan cost sum |delta_i|, demonstrating the paper's
// claim that the mIR reduction extends to any convex cost with an
// available solver (here a linear program).
type L1Cost struct{}

// Eval returns the L1 norm of delta.
func (L1Cost) Eval(delta geom.Vector) float64 {
	s := 0.0
	for _, x := range delta {
		s += math.Abs(x)
	}
	return s
}

// MinOverCell solves the L1 projection LP.
func (L1Cost) MinOverCell(poly *geom.Polytope, base geom.Vector) (geom.Vector, float64, error) {
	return solver.MinL1(poly, base)
}

// LowerBound returns the L1 norm of the clamped increment.
func (L1Cost) LowerBound(mbbLo, base geom.Vector) float64 {
	return L1Cost{}.Eval(clampDelta(mbbLo, base))
}

// Name returns "L1".
func (L1Cost) Name() string { return "L1" }

// WeightedL2Cost is a per-attribute weighted Euclidean cost
// sqrt(sum c_i delta_i^2): some attributes are more expensive to improve
// than others (e.g. upgrading rooms costs more than improving front-desk
// service).
type WeightedL2Cost struct {
	// C holds strictly positive per-attribute cost factors.
	C geom.Vector
}

// Eval returns sqrt(sum C_i * delta_i^2).
func (w WeightedL2Cost) Eval(delta geom.Vector) float64 {
	s := 0.0
	for i, x := range delta {
		s += w.C[i] * x * x
	}
	return math.Sqrt(s)
}

// MinOverCell rescales coordinates by sqrt(C) and projects in the scaled
// space, which turns the weighted problem into a plain Euclidean QP.
func (w WeightedL2Cost) MinOverCell(poly *geom.Polytope, base geom.Vector) (geom.Vector, float64, error) {
	d := poly.Dim
	scale := make(geom.Vector, d)
	for i := range scale {
		scale[i] = math.Sqrt(w.C[i])
	}
	// Transform constraints a·x >= b with x_i = y_i / scale_i.
	scaled := &geom.Polytope{Dim: d, Hs: make([]geom.Halfspace, len(poly.Hs))}
	for i, h := range poly.Hs {
		nw := make(geom.Vector, d)
		for j := range nw {
			nw[j] = h.W[j] / scale[j]
		}
		scaled.Hs[i] = geom.Halfspace{W: nw, T: h.T}
	}
	sBase := make(geom.Vector, d)
	for i := range sBase {
		sBase[i] = base[i] * scale[i]
	}
	y, cost, err := solver.Project(scaled, sBase)
	if err != nil {
		return nil, 0, err
	}
	x := make(geom.Vector, d)
	for i := range x {
		x[i] = y[i] / scale[i]
	}
	return x, cost, nil
}

// LowerBound evaluates the clamped increment.
func (w WeightedL2Cost) LowerBound(mbbLo, base geom.Vector) float64 {
	return w.Eval(clampDelta(mbbLo, base))
}

// Name returns "weighted-L2".
func (WeightedL2Cost) Name() string { return "weighted-L2" }
