package core

import (
	"context"
	"runtime/pprof"

	"mir/internal/celltree"
	"mir/internal/par"
)

// SchedStats describes the frontier scheduler's execution: how wide the
// frontier got, how work moved between workers, and how the cell load
// distributed. Every field except Workers is timing-dependent — it varies
// run to run and is explicitly excluded from the determinism contract the
// computed region and the algorithmic Stats counters obey. Accumulated
// across drains for maintained (incremental) runs.
type SchedStats struct {
	// Workers is the frontier's worker-goroutine count.
	Workers int
	// Steals counts successful steal operations.
	Steals int
	// MaxFrontier is the high-water mark of in-flight cells.
	MaxFrontier int
	// PerWorkerCells[i] is the number of cells worker i processed.
	PerWorkerCells []int
}

// drain processes every staged cell until the heap is empty. modeMIR runs
// with Workers > 1 go through the task-parallel frontier: cell processing
// commutes there (see aaWorker.processCell), so concurrent subtrees yield
// the identical arrangement. The sequential best-first loop is kept for
//
//   - modeMaxCov / modeMinCost: their pruning reads and writes run-global
//     incumbents (bestCov, bestCost), so correctness — not just speed —
//     depends on the globally ordered traversal;
//   - RoundRobinGroup: the ablation strategy advances a run-global cursor,
//     whose sequence would depend on scheduling.
func (r *aaRun) drain() {
	if w := r.workers(); w > 1 && r.mode == modeMIR && r.opts.GroupChoice != RoundRobinGroup {
		r.runFrontier(w)
		return
	}
	r.loop()
}

// runFrontier drains the staged heap through the work-stealing frontier
// scheduler: the staged cells seed per-worker priority queues, and each
// worker processes cells — pushing the resulting undecided leaves onto its
// own queue — until no cell is left anywhere. Each worker owns an
// aaWorker (scratch + tree shard + stats accumulator) for the duration;
// shards and counters merge by summation after the join, so the totals
// equal the sequential run's for every worker count.
func (r *aaRun) runFrontier(workers int) {
	var (
		seeds []*celltree.Cell
		pris  []float64
	)
	pprof.Do(context.Background(), pprof.Labels("mir_phase", "seed"), func(context.Context) {
		seeds = make([]*celltree.Cell, 0, r.heap.Len())
		pris = make([]float64, 0, r.heap.Len())
		r.heap.Drain(func(c *celltree.Cell, pri float64) {
			seeds = append(seeds, c)
			pris = append(pris, pri)
		})
	})
	if len(seeds) == 0 {
		return
	}
	ws := make([]*aaWorker, workers)
	for i := range ws {
		// fanout 1: frontier workers keep each cell's processing
		// single-goroutine (parallelism comes from concurrent cells), which
		// also keeps the raw test counters exactly equal to the sequential
		// run's (no wasted-work divergence past early-exit points).
		ws[i] = &aaWorker{r: r, sh: r.tr.NewShard(), st: &Stats{}, fanout: 1}
	}
	fs := par.RunFrontier(workers, seeds, pris, func(fw *par.FrontierWorker[*celltree.Cell], c *celltree.Cell) {
		ws[fw.ID()].processCell(c, fw.Push)
	})
	for _, w := range ws {
		r.tr.AbsorbShard(w.sh)
		r.st.mergeWorker(w.st)
	}
	r.recordSched(fs)
}

// recordSched folds one frontier execution into the run's scheduler
// counters, accumulating across the multiple drains of a maintained run.
func (r *aaRun) recordSched(fs par.FrontierStats) {
	r.st.StealCount += fs.Steals
	if fs.MaxPending > r.st.MaxFrontier {
		r.st.MaxFrontier = fs.MaxPending
	}
	if r.sched == nil {
		r.sched = &SchedStats{Workers: fs.Workers, PerWorkerCells: make([]int, fs.Workers)}
	}
	r.sched.Steals += fs.Steals
	if fs.MaxPending > r.sched.MaxFrontier {
		r.sched.MaxFrontier = fs.MaxPending
	}
	for i, n := range fs.PerWorker {
		if i < len(r.sched.PerWorkerCells) {
			r.sched.PerWorkerCells[i] += n
		}
	}
}

// region exports the run's current region together with the scheduler
// stats (nil when every drain ran sequentially).
func (r *aaRun) region() *Region {
	reg := regionFromTree(r.tr, r.m, r.st)
	reg.Sched = r.sched
	return reg
}

// mergeWorker folds a frontier worker's algorithm-level counters into s.
// Only the counters processCell touches appear here; the arrangement-side
// counters travel through the worker's celltree shard, and the remaining
// Stats fields are filled at export time from the tree. All merges are
// sums, hence order-independent.
func (s *Stats) mergeWorker(o *Stats) {
	s.Reported += o.Reported
	s.Eliminated += o.Eliminated
	s.EarlyReported += o.EarlyReported
	s.EarlyEliminated += o.EarlyEliminated
	s.HullTests += o.HullTests
	s.GroupBatchHits += o.GroupBatchHits
	s.Iterations += o.Iterations
	s.Pivots += o.Pivots
	s.WarmHits += o.WarmHits
	s.WarmMisses += o.WarmMisses
	s.ColdSolves += o.ColdSolves
}
