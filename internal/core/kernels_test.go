package core

import (
	"math"
	"math/rand"
	"testing"
)

// TestKernelsOffByteIdentical pins the strongest determinism contract in
// the options surface: DisableKernels changes NOTHING observable. The
// blocked kernels reproduce the historical scalar loops bit for bit, so —
// unlike DisableWarmStart, which moves the pivot counters — the finished
// arrangement (leaf IDs, statuses, counts, depths), the exported region,
// and EVERY Stats counter, pivot counts included, must be byte-identical
// kernels on or off, across worker counts 1/2/4/8 and shard counts
// 1/2/4/8. The instance itself is built under each setting too, so the
// all-top-k index scoring and the shard prescreen bands are covered, not
// just the LP pivots.
func TestKernelsOffByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	cases := []struct {
		d, nP, nU, k int
		opts         Options
	}{
		{3, 400, 32, 6, Options{}},
		{2, 300, 40, 5, Options{}},
		{4, 300, 20, 5, Options{DisableFastTest: true}},
	}
	for ci, tc := range cases {
		onOpts := tc.opts
		onOpts.Workers = 1
		offOpts := onOpts
		offOpts.DisableKernels = true

		instOn := randomInstance(t, rng, tc.nP, tc.nU, tc.d, tc.k)
		// Rebuild the identical instance with scalar kernels: same
		// products and users, so the two instances must agree threshold
		// by threshold before any region work starts.
		instOff, err := NewInstanceOpts(instOn.Products, instOn.Users, offOpts)
		if err != nil {
			t.Fatalf("case %d: scalar instance: %v", ci, err)
		}
		if instOn.Prep != instOff.Prep {
			t.Fatalf("case %d: preprocessing effort diverged: on=%+v off=%+v",
				ci, instOn.Prep, instOff.Prep)
		}
		for i := range instOn.Kth {
			a, b := instOn.Kth[i], instOff.Kth[i]
			if a.Index != b.Index || math.Float64bits(a.Score) != math.Float64bits(b.Score) {
				t.Fatalf("case %d: user %d threshold diverged: %+v vs %+v", ci, i, a, b)
			}
		}

		m := tc.nU / 3
		onRef, err := runAA(instOn, m, onOpts)
		if err != nil {
			t.Fatalf("case %d kernels on: %v", ci, err)
		}
		offRef, err := runAA(instOff, m, offOpts)
		if err != nil {
			t.Fatalf("case %d kernels off: %v", ci, err)
		}
		onReg, offReg := onRef.region(), offRef.region()

		ol, sl := onRef.tr.Leaves(nil, nil), offRef.tr.Leaves(nil, nil)
		if len(ol) != len(sl) {
			t.Fatalf("case %d: %d leaves on, %d off", ci, len(ol), len(sl))
		}
		for i := range ol {
			a, b := ol[i], sl[i]
			if a.ID != b.ID || a.Depth != b.Depth || a.Status != b.Status ||
				a.InCount != b.InCount || a.OutCount != b.OutCount {
				t.Fatalf("case %d leaf %d diverges on/off: "+
					"id %d/%d depth %d/%d status %v/%v in %d/%d out %d/%d",
					ci, i, a.ID, b.ID, a.Depth, b.Depth,
					a.Status, b.Status, a.InCount, b.InCount, a.OutCount, b.OutCount)
			}
		}
		regionsIdentical(t, onReg, offReg)
		// FULL stats equality — no counter is exempt, pivots included.
		if onReg.Stats != offReg.Stats {
			t.Fatalf("case %d: stats diverge kernels on/off:\non  %+v\noff %+v",
				ci, onReg.Stats, offReg.Stats)
		}

		// Both settings commute with the frontier scheduler and the
		// space-sharded build: every worker count and every shard count
		// reproduces its own kernels-on twin exactly (scheduling-sensitive
		// counters excluded at Workers > 1; shard decompositions compared
		// within a fixed shard count, as the sharding contract requires).
		for _, workers := range []int{2, 4, 8} {
			po := onOpts
			po.Workers = workers
			want, err := AA(instOn, m, po)
			if err != nil {
				t.Fatalf("case %d workers=%d on: %v", ci, workers, err)
			}
			po.DisableKernels = true
			got, err := AA(instOff, m, po)
			if err != nil {
				t.Fatalf("case %d workers=%d off: %v", ci, workers, err)
			}
			regionsIdentical(t, want, got)
			sa, sb := want.Stats, got.Stats
			sa.StealCount, sb.StealCount = 0, 0
			sa.MaxFrontier, sb.MaxFrontier = 0, 0
			if sa != sb {
				t.Fatalf("case %d workers=%d: stats diverge kernels on/off:\non  %+v\noff %+v",
					ci, workers, sa, sb)
			}
		}
		for _, shards := range []int{2, 4, 8} {
			po := onOpts
			po.Shards = shards
			want, err := AA(instOn, m, po)
			if err != nil {
				t.Fatalf("case %d shards=%d on: %v", ci, shards, err)
			}
			po.DisableKernels = true
			got, err := AA(instOff, m, po)
			if err != nil {
				t.Fatalf("case %d shards=%d off: %v", ci, shards, err)
			}
			regionsIdentical(t, want, got)
			if want.Stats != got.Stats {
				t.Fatalf("case %d shards=%d: stats diverge kernels on/off:\non  %+v\noff %+v",
					ci, shards, want.Stats, got.Stats)
			}
		}
	}
}
