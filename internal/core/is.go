package core

import (
	"fmt"

	"mir/internal/celltree"
	"mir/internal/geom"
	"mir/internal/topk"
)

// ISResult is the outcome of an improvement-strategy (or budgeted-CO)
// computation.
type ISResult struct {
	// Point is the position maximizing coverage within budget.
	Point geom.Vector
	// Coverage is the number of users covered at Point.
	Coverage int
	// Cost is the (minimum) cost of reaching Point.
	Cost float64
	// BaseCoverage is the coverage of the unmodified base position (the
	// existing product for IS; the origin for budgeted CO).
	BaseCoverage int
	// Stats carries the arrangement counters of the search.
	Stats Stats
}

// SolveIS solves the improvement-strategies problem (Yang & Cai [66],
// solved exactly for the first time by the paper's Section 5.5): upgrade
// product pIdx so that it covers the maximum number of users, subject to
// the upgrade cost not exceeding budget. Upgrades are monotone, so the
// search space is the box [p, 1]^d; the top-k entry thresholds are
// computed against the competitor set P \ {p}.
func SolveIS(products []geom.Vector, users []topk.UserPref, pIdx int, budget float64, cost Cost, opts Options) (*ISResult, error) {
	sub, err := competitorInstance(products, users, pIdx)
	if err != nil {
		return nil, err
	}
	p := products[pIdx]
	return maxCoverage(sub, upgradeBox(p), p, budget, cost, opts)
}

// SolveBudgetedCO solves the budgeted cost-optimization crossbreed
// (Section 5.5): create a new product with maximum coverage subject to a
// creation budget. The base position is the origin.
func SolveBudgetedCO(inst *Instance, budget float64, cost Cost, opts Options) (*ISResult, error) {
	return maxCoverage(inst, geom.NewBox(inst.Dim, 0, 1), make(geom.Vector, inst.Dim), budget, cost, opts)
}

// competitorInstance builds the preprocessed instance over P \ {pIdx}.
func competitorInstance(products []geom.Vector, users []topk.UserPref, pIdx int) (*Instance, error) {
	if pIdx < 0 || pIdx >= len(products) {
		return nil, fmt.Errorf("core: product index %d out of range [0,%d)", pIdx, len(products))
	}
	others := make([]geom.Vector, 0, len(products)-1)
	others = append(others, products[:pIdx]...)
	others = append(others, products[pIdx+1:]...)
	return NewInstance(others, users)
}

// maxCoverage runs the Section 5.5 max-coverage search: grow the
// arrangement over the search box, prioritize cells by known coverage,
// prune cells whose cheapest point exceeds the budget or whose coverage
// upper bound cannot beat the incumbent, and finalize cells once every
// user is decided for them.
func maxCoverage(inst *Instance, box *geom.Polytope, base geom.Vector, budget float64, cost Cost, opts Options) (*ISResult, error) {
	if budget < 0 {
		return nil, fmt.Errorf("core: negative budget %g", budget)
	}
	run := &aaRun{
		inst:   inst,
		m:      1, // unused in max-coverage mode
		nU:     len(inst.Users),
		opts:   opts,
		tr:     celltree.New(box),
		mode:   modeMaxCov,
		budget: budget,
		costFn: cost,
		base:   base,
	}
	// Seed the incumbent with the base position itself (cost zero).
	run.bestPoint = base.Clone()
	run.bestCov = inst.CountCovering(base)
	run.bestCost = 0
	run.seedRoot()
	run.drain()
	return &ISResult{
		Point:        run.bestPoint,
		Coverage:     run.bestCov,
		Cost:         run.bestCost,
		BaseCoverage: inst.CountCovering(base),
		Stats:        run.statsFromTree(),
	}, nil
}

// statsFromTree merges arrangement counters into the run's stats.
func (r *aaRun) statsFromTree() Stats {
	st := r.st
	st.Cells = r.tr.Stats.CellsCreated
	st.Splits = r.tr.Stats.Splits
	st.ContainmentTests += r.tr.Stats.ContainmentTests
	st.FastTests = r.tr.Stats.FastTests
	st.Reported = r.tr.Stats.Reported
	st.Eliminated = r.tr.Stats.Eliminated
	return st
}

// pruneBudget eliminates the cell when even its cheapest point exceeds
// the budget: first the O(d) bounding-box bound, then the exact convex
// minimization (the paper computes "the minimum value of f() in c itself,
// not its MBB").
func (r *aaRun) pruneBudget(c *celltree.Cell) bool {
	const tol = 1e-9
	if r.costFn.LowerBound(c.MBBLo, r.base) > r.budget+tol {
		r.tr.Eliminate(c)
		return true
	}
	_, minCost, err := r.costFn.MinOverCell(c.Polytope(), r.base)
	if err != nil {
		r.tr.Eliminate(c) // numerically empty sliver
		return true
	}
	if minCost > r.budget+tol {
		r.tr.Eliminate(c)
		return true
	}
	return false
}

// pruneCost eliminates cells whose cost lower bound cannot beat the
// incumbent CO candidate.
func (r *aaRun) pruneCost(c *celltree.Cell) bool {
	if r.costFn.LowerBound(c.MBBLo, r.base) >= r.bestCost-1e-12 {
		r.tr.Eliminate(c)
		return true
	}
	return false
}

// finalize records a fully-decided cell as a coverage candidate: all
// users are decided for it, so every point of the cell covers exactly
// InCount users; the cheapest in-budget point is the representative.
func (r *aaRun) finalize(c *celltree.Cell) {
	if c.InCount > r.bestCov {
		point, minCost, err := r.costFn.MinOverCell(c.Polytope(), r.base)
		if err == nil && minCost <= r.budget+1e-9 {
			r.bestCov = c.InCount
			r.bestPoint = point
			r.bestCost = minCost
		}
	}
	r.tr.Report(c) // counts finalized candidates in the stats
}
