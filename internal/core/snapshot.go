package core

import (
	"math"

	"mir/internal/geom"
	"mir/internal/topk"
)

// MaintSnapshot is an immutable capture of a Maintainer's state. The
// Maintainer itself is single-threaded; a snapshot decouples readers from
// it — any number of goroutines may query a snapshot concurrently while
// the Maintainer keeps mutating, because everything the snapshot holds is
// either freshly built (the region's polytopes, the alive bitmap) or
// write-once for the run (product rows, halfspace entries).
type MaintSnapshot struct {
	region   *Region
	numUsers int
	products []geom.Vector
	hs       []geom.Halfspace
	alive    []bool
}

// Snapshot captures the Maintainer's current region and population for
// concurrent reading. The caller must not invoke it concurrently with
// AddUser/RemoveUser/ApplyBatch (the Maintainer stays single-threaded);
// the returned snapshot, however, is safe to read from any goroutine.
func (mt *Maintainer) Snapshot() *MaintSnapshot {
	return &MaintSnapshot{
		region:   mt.run.region(),
		numUsers: mt.nAlive,
		products: mt.products,
		hs:       append([]geom.Halfspace(nil), mt.run.inst.HS...),
		alive:    append([]bool(nil), mt.alive...),
	}
}

// Region returns the snapshot's m-impact region.
func (s *MaintSnapshot) Region() *Region { return s.region }

// NumUsers returns the alive population size at capture time.
func (s *MaintSnapshot) NumUsers() int { return s.numUsers }

// CountCovering returns how many alive users a product at p would cover.
func (s *MaintSnapshot) CountCovering(p geom.Vector) int {
	n := 0
	for i := range s.hs {
		if s.alive[i] && s.hs[i].Contains(p) {
			n++
		}
	}
	return n
}

// MinBoundaryGap mirrors Maintainer.MinBoundaryGap at capture time,
// including its empty-population contract: +Inf when no users are alive.
func (s *MaintSnapshot) MinBoundaryGap(p geom.Vector) float64 {
	best := math.Inf(1)
	for i := range s.hs {
		if !s.alive[i] {
			continue
		}
		g := s.hs[i].Eval(p)
		if g < 0 {
			g = -g
		}
		if g < best {
			best = g
		}
	}
	return best
}

// Influence pairs a product with its reverse top-k cardinality over the
// snapshot's alive population.
type Influence struct {
	Product  int
	Coverage int
}

// MostInfluential returns the n products with the largest alive-user
// reverse top-k sets, coverage descending with ties toward the smaller
// product index, selected with the shared top-k partial selection.
func (s *MaintSnapshot) MostInfluential(n int) []Influence {
	if n > len(s.products) {
		n = len(s.products)
	}
	if n <= 0 {
		return nil
	}
	counts := make([]int, len(s.products))
	for i := range s.hs {
		if !s.alive[i] {
			continue
		}
		for pi, p := range s.products {
			if s.hs[i].Contains(p) {
				counts[pi]++
			}
		}
	}
	idx := make([]int, len(counts))
	scores := make([]float64, len(counts))
	for i, c := range counts {
		idx[i] = i
		scores[i] = float64(c)
	}
	top := topk.SelectTop(idx, scores, n)
	out := make([]Influence, len(top))
	for i, pi := range top {
		out[i] = Influence{Product: pi, Coverage: counts[pi]}
	}
	return out
}
