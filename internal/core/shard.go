package core

import (
	"mir/internal/topk"

	"fmt"

	"sort"

	"mir/internal/celltree"
	"mir/internal/geom"
	"mir/internal/par"
)

// This file implements the space-sharded AA build: product space is
// pre-split into 2^j disjoint axis-aligned boxes and each box runs a
// fully independent AA — its own cell tree (rooted at the shard's
// virtual path ID), its own staging heap and frontier scheduler
// instance, its own per-worker scratch and LP workspaces, and a private
// stats accumulator. Shards share only the immutable instance. Before a
// shard's tree does any work its halfspace set is prescreened against
// the shard box with the banded corner bounds of topk.HalfspaceBands:
// a halfspace whose boundary provably misses the box is absorbed into
// the shard root's InCount/OutCount at O(d) cost, so a shard whose
// residual population can no longer reach m (or already covers m) dies
// — or reports whole — at the root without building anything. Shard
// regions concatenate in shard-ID order; stats merge order-free.

// effectiveShards resolves Options.Shards to the actual top-level shard
// count: the largest power of two <= Shards (the decomposition is a
// recursive bisection), or 1 when sharding is off or disabled.
func effectiveShards(opts Options) int {
	if opts.DisableSharding || opts.Shards <= 1 {
		return 1
	}
	n := 1
	for n*2 <= opts.Shards {
		n *= 2
	}
	return n
}

// EffectiveShards is the exported seam form of effectiveShards: executors
// outside core (internal/dist) must resolve Options.Shards exactly the
// way the in-process build does, or the two would disagree about how many
// fragments a build produces.
func EffectiveShards(opts Options) int { return effectiveShards(opts) }

// ShardBox is one top-level cell of the sharded decomposition. It is the
// unit of distribution: a shard build is a pure function of (instance, m,
// Options, ShardBox), so a box can be dispatched to another process — or
// re-dispatched after a worker crash — and must produce the identical
// fragment. Exported fields only; the box crosses the process boundary in
// internal/dist's job frames.
type ShardBox struct {
	Lo, Hi geom.Vector
	ID     int     // path-derived heap ID of the shard root (virtual splits)
	Depth  int     // bisection depth of this box in the virtual split tree
	Work   float64 // probe-estimated AA work inside the box
}

// PlanShards splits [0,1]^d into `shards` (a power of two) axis-aligned
// boxes by greedy heaviest-first bisection over a pilot work map: every
// cut bisects the box currently holding the most pilot work points, at
// the median work-point coordinate along the cycling axis, so shards
// end up with near-equal estimated work rather than near-equal volume —
// and a misjudged cut self-corrects, because the box that kept too much
// work simply gets cut again at a later step. Boxes are leaves of the
// resulting (generally uneven-depth) virtual bisection tree, enumerated
// in bisection-path order, and each carries the heap-numbered ID of its
// virtual tree node (lower child 2i+1, upper child 2i+2 from a virtual
// root 0), so shard-local cell IDs are globally unique and stable for a
// fixed shard count regardless of how shard or frontier work is
// scheduled.
//
// PlanShards depends only on the instance, m, and the shard count —
// never on Workers, scheduling, or which executor runs the shards — so
// every executor plans the identical decomposition.
//
// The work map is data-adaptive (pilotWorkPoints): mIR thresholds are
// top-k scores, so the arrangement's cells concentrate in a thin shell
// around the m-level surface of the in-count function near the top
// corner of product space, with density varying by orders of magnitude
// along the surface. Fixed midpoint cuts carve only dead space (one
// shard inherits the entire shell, the rest die at their roots), and
// geometric surface probes misjudge the density, so the cells of a
// cheap pilot AA over a deterministic user subsample serve as the work
// estimate instead — the pilot spends its cells exactly where the full
// build will. The pilot and every cut depend only on the instance, m,
// and the shard count, never on scheduling, so the per-shard-count
// determinism contract is untouched.
func PlanShards(inst *Instance, m, shards int) []ShardBox {
	dim := inst.Dim
	lo := make(geom.Vector, dim)
	hi := make(geom.Vector, dim)
	for j := range hi {
		hi[j] = 1
	}
	type node struct {
		box ShardBox
		pts []geom.Vector
	}
	nodes := []node{{box: ShardBox{Lo: lo, Hi: hi}, pts: pilotWorkPoints(inst, m)}}
	for len(nodes) < shards {
		// Heaviest box next; ties break to the lowest index so the greedy
		// order — and with it the decomposition — is deterministic.
		h := 0
		for i := range nodes {
			if len(nodes[i].pts) > len(nodes[h].pts) {
				h = i
			}
		}
		n := nodes[h]
		b := n.box
		axis := b.Depth % dim
		mid := splitCoord(n.pts, b.Lo, b.Hi, axis)
		lowHi := append(geom.Vector(nil), b.Hi...)
		lowHi[axis] = mid
		highLo := append(geom.Vector(nil), b.Lo...)
		highLo[axis] = mid
		low := node{box: ShardBox{Lo: b.Lo, Hi: lowHi, ID: 2*b.ID + 1, Depth: b.Depth + 1}}
		high := node{box: ShardBox{Lo: highLo, Hi: b.Hi, ID: 2*b.ID + 2, Depth: b.Depth + 1}}
		for _, p := range n.pts {
			if p[axis] < mid {
				low.pts = append(low.pts, p)
			} else {
				high.pts = append(high.pts, p)
			}
		}
		// Replace the parent with its children in place: the box list stays
		// in bisection-path (in-order) order.
		nodes = append(nodes[:h], append([]node{low, high}, nodes[h+1:]...)...)
	}
	boxes := make([]ShardBox, len(nodes))
	for i, n := range nodes {
		boxes[i] = n.box
		boxes[i].Work = float64(len(n.pts))
	}
	return boxes
}

// splitCoord picks the coordinate for bisecting [lo, hi] along axis: the
// median of the work points' axis coordinates (halving the estimated
// work), taken between the two middle points. Falls back to the box
// midpoint when there are too few points to estimate from — the box is
// all dead space, so any cut is as good as another — or when the median
// degenerates onto a face, where a cut would create an empty shard.
func splitCoord(pts []geom.Vector, lo, hi geom.Vector, axis int) float64 {
	if len(pts) < 2 {
		return (lo[axis] + hi[axis]) / 2
	}
	vs := make([]float64, len(pts))
	for i, p := range pts {
		vs[i] = p[axis]
	}
	sort.Float64s(vs)
	med := (vs[(len(vs)-1)/2] + vs[len(vs)/2]) / 2
	if med <= lo[axis]+geom.ClassifyTol || med >= hi[axis]-geom.ClassifyTol {
		return (lo[axis] + hi[axis]) / 2
	}
	return med
}

// pilotStride is the user-subsampling stride of the pilot AA: every
// pilotStride-th user enters the pilot, and m scales by the same factor,
// so the pilot's m-level surface tracks the full instance's while its
// arrangement stays a small fraction of the full build's cost.
const pilotStride = 4

// pilotWorkPoints runs the pilot AA and returns the centers of its
// reported cells as the work map for the shard decomposition. The pilot
// is built from a deterministic user subsample with a strictly
// sequential preprocessing and a single-tree, single-worker AA, so the
// map — and with it the decomposition — is a pure function of the
// instance and m. The pilot skips the layered product index (its
// skyband scan over a handful of users is cheaper than a second index
// build) and its counters are planning effort, deliberately left out of
// the merged region's arrangement stats. Returns nil when the instance
// is too small to subsample; the decomposition then falls back to
// midpoint cuts.
func pilotWorkPoints(inst *Instance, m int) []geom.Vector {
	nU := len(inst.Users)
	if nU < 2*pilotStride {
		return nil
	}
	users := make([]topk.UserPref, 0, (nU+pilotStride-1)/pilotStride)
	for i := 0; i < nU; i += pilotStride {
		users = append(users, inst.Users[i])
	}
	pm := (m*len(users) + nU/2) / nU
	if pm < 1 {
		pm = 1
	}
	if pm > len(users) {
		pm = len(users)
	}
	pilot, err := NewInstanceOpts(inst.Products, users, Options{Workers: 1, DisableTopKIndex: true})
	if err != nil {
		return nil
	}
	run, err := runAA(pilot, pm, Options{Workers: 1})
	if err != nil {
		return nil
	}
	reg := run.region()
	pts := make([]geom.Vector, len(reg.MBBs))
	for i, mbb := range reg.MBBs {
		c := make(geom.Vector, len(mbb[0]))
		for j := range c {
			c[j] = (mbb[0][j] + mbb[1][j]) / 2
		}
		pts[i] = c
	}
	return pts
}

// aaSharded is the sharded counterpart of runAA + region: it builds the
// shard fragments (concurrently when Workers allows — each run still
// spins its own frontier for Workers > 1) and merges them in shard-ID
// order. Only modeMIR ever reaches this path: max-coverage and min-cost
// runs prune against run-global incumbents and stay single-tree, as do
// maintained runs (NewMaintainer calls runAA). This is exactly what
// internal/dist's in-process executor runs through core.AA; the
// out-of-process pool replays the same three steps (PlanShards →
// RunShardPrescreened per box → MergeShardFragments) with the middle
// step in worker processes, which is why the two are byte-identical.
func aaSharded(inst *Instance, m int, opts Options, shards int) (*Region, error) {
	if err := inst.CheckM(m); err != nil {
		return nil, err
	}
	boxes := PlanShards(inst, m, shards)
	frags := make([]*Region, shards)
	par.For(shards, par.Resolve(opts.Workers), func(s int) {
		frags[s] = RunShardPrescreened(inst, m, opts, boxes[s], PrescreenShard(inst, boxes[s]))
	})
	if debugShards {
		for s, b := range boxes {
			fmt.Printf("  box %d id=%d depth=%d work=%.1f cells=%d lo=%.3v hi=%.3v\n",
				s, b.ID, b.Depth, b.Work, frags[s].Stats.Cells, b.Lo, b.Hi)
		}
	}
	return MergeShardFragments(inst, m, frags), nil
}

// PrescreenShard classifies every user halfspace against the shard box
// with the banded corner bounds (topk.HalfspaceBands): Covers/Excludes
// for halfspaces whose boundary provably misses the box, Cuts for the
// survivors that must be classified inside the shard's tree. The result
// is a pure function of (instance, box) — the pool computes it parent-
// side once per shard and ships it, so workers never rebuild the bands.
func PrescreenShard(inst *Instance, b ShardBox) []geom.Relation {
	rel := make([]geom.Relation, len(inst.Users))
	inst.HalfspaceBands().Prescreen(b.Lo, b.Hi, rel)
	return rel
}

// RunShardPrescreened executes one fully independent AA over a shard box
// and returns its region fragment: the shard's cells, their MBBs, and a
// per-shard Stats that deliberately excludes the instance-wide
// preprocessing counters (MergeShardFragments charges those once). rel
// must be PrescreenShard's classification for the same box; only the
// Cuts survivors enter the root's pending views. The fragment is a pure
// function of (instance, m, opts-modulo-Workers, box) — the property
// every retry and every cross-process dispatch in internal/dist leans
// on.
func RunShardPrescreened(inst *Instance, m int, opts Options, b ShardBox, rel []geom.Relation) *Region {
	run := &aaRun{
		inst: inst,
		m:    m,
		nU:   len(inst.Users),
		opts: opts,
		tr:   celltree.NewRooted(geom.NewBoxCorners(b.Lo, b.Hi), b.ID, b.Depth),
	}
	run.seedRootPrescreened(rel)
	run.drain()
	return run.region()
}

// MergeShardFragments concatenates the shard fragments in shard-ID
// (slice) order and merges their stats. Every stat merge is a sum except
// MaxFrontier (maximum), so the totals are independent of shard
// completion order; the instance-wide preprocessing effort is charged
// once to the merged region, never per shard — which is also what makes
// a worker process's private re-preprocessing invisible in the merged
// stats.
func MergeShardFragments(inst *Instance, m int, frags []*Region) *Region {
	merged := &Region{Dim: inst.Dim, M: m}
	var st Stats
	st.ScannedProducts = inst.Prep.ScannedProducts
	st.LayerPrunes = inst.Prep.LayerPrunes
	if inst.TopKIndex != nil {
		st.IndexPatches = inst.TopKIndex.Patches()
		st.IndexRebuilds = inst.TopKIndex.Rebuilds()
	}
	var sched *SchedStats
	merged.ShardCells = make([]int, 0, len(frags))
	for _, reg := range frags {
		merged.Cells = append(merged.Cells, reg.Cells...)
		merged.MBBs = append(merged.MBBs, reg.MBBs...)
		merged.ShardCells = append(merged.ShardCells, reg.Stats.Cells)
		st.merge(reg.Stats)
		sched = mergeSched(sched, reg.Sched)
	}
	merged.Stats = st
	merged.Sched = sched
	return merged
}

// merge folds a complete per-shard Stats into s: sums throughout except
// MaxFrontier, which merges by maximum. Commutative and associative, so
// merged totals do not depend on shard order. (mergeWorker, by contrast,
// folds only the counters a frontier worker touches mid-run.)
func (s *Stats) merge(o Stats) {
	s.Cells += o.Cells
	s.Splits += o.Splits
	s.ContainmentTests += o.ContainmentTests
	s.FastTests += o.FastTests
	s.Reported += o.Reported
	s.Eliminated += o.Eliminated
	s.EarlyReported += o.EarlyReported
	s.EarlyEliminated += o.EarlyEliminated
	s.HullTests += o.HullTests
	s.GroupBatchHits += o.GroupBatchHits
	s.PruneLPTests += o.PruneLPTests
	s.PrunedRows += o.PrunedRows
	s.Iterations += o.Iterations
	s.Pivots += o.Pivots
	s.WarmHits += o.WarmHits
	s.WarmMisses += o.WarmMisses
	s.ColdSolves += o.ColdSolves
	s.ScannedProducts += o.ScannedProducts
	s.LayerPrunes += o.LayerPrunes
	s.IndexPatches += o.IndexPatches
	s.IndexRebuilds += o.IndexRebuilds
	s.RoutedLeaves += o.RoutedLeaves
	s.SkippedSubtrees += o.SkippedSubtrees
	s.TouchedFrontier += o.TouchedFrontier
	s.CountDesyncs += o.CountDesyncs
	s.ShardHalfspaces += o.ShardHalfspaces
	s.PrescreenedOut += o.PrescreenedOut
	s.StealCount += o.StealCount
	if o.MaxFrontier > s.MaxFrontier {
		s.MaxFrontier = o.MaxFrontier
	}
	s.DispatchedShards += o.DispatchedShards
	s.RespawnedWorkers += o.RespawnedWorkers
	s.FallbackInProcess += o.FallbackInProcess
	s.ShippedBytes += o.ShippedBytes
}

// mergeSched folds one shard's scheduler profile into the merged
// region's: steal counts and per-worker loads sum, the frontier
// high-water mark merges by maximum (shards run concurrently but each
// frontier is private, so the true process-wide width is unknowable;
// the per-shard maximum is the honest bound). nil in, nil out: a shard
// decided at its root never starts a frontier.
func mergeSched(dst, src *SchedStats) *SchedStats {
	if src == nil {
		return dst
	}
	if dst == nil {
		dst = &SchedStats{Workers: src.Workers, PerWorkerCells: make([]int, len(src.PerWorkerCells))}
	}
	dst.Steals += src.Steals
	if src.MaxFrontier > dst.MaxFrontier {
		dst.MaxFrontier = src.MaxFrontier
	}
	for i, n := range src.PerWorkerCells {
		if i < len(dst.PerWorkerCells) {
			dst.PerWorkerCells[i] += n
		}
	}
	return dst
}

// debugShards, when set, prints each sharded build's decomposition with
// estimated vs. actual work. Calibration aid only.
var debugShards = false
