package core

import (
	"mir/internal/celltree"
	"mir/internal/geom"
)

// insertHS inserts influential halfspace h into the subtree rooted at c
// (Algorithm 1's InsertHS): decided leaves are skipped; leaves fully inside
// h gain an InCount, leaves fully outside gain an OutCount, and leaves the
// boundary cuts through are split (the inside child gains the InCount, the
// outside child the OutCount). onChange is invoked for every active leaf
// whose counts changed, letting callers verify early reporting/elimination
// immediately.
//
// All mutation and all test counting go through the shard, so concurrent
// insertions into disjoint subtrees are safe; sequential callers pass the
// tree's own shard (Tree.OwnShard).
//
// Classification happens at internal nodes too: when h covers or excludes
// an entire internal region, the counts of every active leaf below are
// bumped without further geometric tests.
func insertHS(sh *celltree.Shard, c *celltree.Cell, h geom.Halfspace, fast bool, onChange func(*celltree.Cell)) {
	if c.IsLeaf() && c.Status != celltree.Active {
		return
	}
	switch c.ClassifyInto(h, fast, sh.Stats()) {
	case geom.Covers:
		bumpSubtree(c, true, onChange)
	case geom.Excludes:
		bumpSubtree(c, false, onChange)
	case geom.Cuts:
		if c.IsLeaf() {
			l, r := sh.SplitBy(c, h)
			if l.Status == celltree.Active {
				l.OutCount++
				if onChange != nil {
					onChange(l)
				}
			}
			if r.Status == celltree.Active {
				r.InCount++
				if onChange != nil {
					onChange(r)
				}
			}
		} else {
			left, right := c.Children()
			insertHS(sh, left, h, fast, onChange)
			insertHS(sh, right, h, fast, onChange)
		}
	}
}

// bumpSubtree adds one covering (in=true) or excluding (in=false) user to
// every active leaf under c.
func bumpSubtree(c *celltree.Cell, in bool, onChange func(*celltree.Cell)) {
	if c.IsLeaf() {
		if c.Status != celltree.Active {
			return
		}
		if in {
			c.InCount++
		} else {
			c.OutCount++
		}
		if onChange != nil {
			onChange(c)
		}
		return
	}
	left, right := c.Children()
	bumpSubtree(left, in, onChange)
	bumpSubtree(right, in, onChange)
}
