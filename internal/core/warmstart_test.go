package core

import (
	"math/rand"
	"testing"
)

// TestWarmStartPreservesRegion pins the warm-start contract: re-entering
// parent-cell simplex bases changes only where each solve's pivot search
// begins, never what it answers. For every configuration, the finished
// arrangement (leaf IDs, statuses, counts, depths), the exported region,
// and every Stats counter except the four LP effort counters are
// byte-identical with warm starts on or off — and identical across worker
// counts 1/2/4/8 within each setting. The warm runs must additionally show
// the optimization doing real work: warm hits present and strictly fewer
// pivots than the cold runs.
func TestWarmStartPreservesRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	cases := []struct {
		d, nP, nU, k int
		opts         Options
	}{
		{3, 400, 32, 6, Options{}},
		{3, 300, 24, 6, Options{DisableFastTest: true}},
		{2, 300, 40, 5, Options{Disable2D: true}},
		{4, 300, 20, 5, Options{}},
	}
	for ci, tc := range cases {
		inst := randomInstance(t, rng, tc.nP, tc.nU, tc.d, tc.k)
		for _, m := range []int{1, tc.nU / 3} {
			if m < 1 {
				m = 1
			}
			warmOpts := tc.opts
			warmOpts.Workers = 1
			coldOpts := warmOpts
			coldOpts.DisableWarmStart = true

			warmRef, err := runAA(inst, m, warmOpts)
			if err != nil {
				t.Fatalf("case %d m=%d warm: %v", ci, m, err)
			}
			coldRef, err := runAA(inst, m, coldOpts)
			if err != nil {
				t.Fatalf("case %d m=%d cold: %v", ci, m, err)
			}
			warmReg, coldReg := warmRef.region(), coldRef.region()

			// Identical arrangements, leaf by leaf.
			wl, cl := warmRef.tr.Leaves(nil, nil), coldRef.tr.Leaves(nil, nil)
			if len(wl) != len(cl) {
				t.Fatalf("case %d m=%d: %d leaves warm, %d cold", ci, m, len(wl), len(cl))
			}
			for i := range wl {
				a, b := wl[i], cl[i]
				if a.ID != b.ID || a.Depth != b.Depth || a.Status != b.Status ||
					a.InCount != b.InCount || a.OutCount != b.OutCount {
					t.Fatalf("case %d m=%d leaf %d diverges warm/cold: "+
						"id %d/%d depth %d/%d status %v/%v in %d/%d out %d/%d",
						ci, m, i, a.ID, b.ID, a.Depth, b.Depth,
						a.Status, b.Status, a.InCount, b.InCount, a.OutCount, b.OutCount)
				}
			}
			regionsIdentical(t, coldReg, warmReg)

			// Identical stats except the LP effort counters.
			sw, sc := warmReg.Stats, coldReg.Stats
			sw.Pivots, sw.WarmHits, sw.WarmMisses, sw.ColdSolves = 0, 0, 0, 0
			sc.Pivots, sc.WarmHits, sc.WarmMisses, sc.ColdSolves = 0, 0, 0, 0
			if sw != sc {
				t.Fatalf("case %d m=%d: stats diverge beyond LP counters:\nwarm %+v\ncold %+v",
					ci, m, warmReg.Stats, coldReg.Stats)
			}

			// The optimization must do real work when the run splits at all.
			if warmReg.Stats.Splits > 0 {
				if warmReg.Stats.WarmHits == 0 {
					t.Fatalf("case %d m=%d: warm run scored no warm hits: %+v",
						ci, m, warmReg.Stats)
				}
				if warmReg.Stats.Pivots >= coldReg.Stats.Pivots {
					t.Fatalf("case %d m=%d: warm pivots %d not below cold %d",
						ci, m, warmReg.Stats.Pivots, coldReg.Stats.Pivots)
				}
			}
			if coldReg.Stats.WarmHits != 0 {
				t.Fatalf("case %d m=%d: cold run reports warm hits: %+v",
					ci, m, coldReg.Stats)
			}

			// Both settings commute with the frontier scheduler: every worker
			// count reproduces its own workers=1 run exactly, all LP counters
			// included (solve chains are cell-local).
			for _, workers := range []int{2, 4, 8} {
				for _, ref := range []struct {
					name string
					opts Options
					reg  *Region
				}{
					{"warm", warmOpts, warmReg},
					{"cold", coldOpts, coldReg},
				} {
					po := ref.opts
					po.Workers = workers
					got, err := AA(inst, m, po)
					if err != nil {
						t.Fatalf("case %d m=%d %s workers=%d: %v", ci, m, ref.name, workers, err)
					}
					regionsIdentical(t, ref.reg, got)
					sa, sb := ref.reg.Stats, got.Stats
					sa.StealCount, sb.StealCount = 0, 0
					sa.MaxFrontier, sb.MaxFrontier = 0, 0
					if sa != sb {
						t.Fatalf("case %d m=%d %s workers=%d: stats diverge:\nseq %+v\npar %+v",
							ci, m, ref.name, workers, sa, sb)
					}
				}
			}
		}
	}
}
