package core

import (
	"context"
	"fmt"
	"runtime/pprof"

	"mir/internal/celltree"
	"mir/internal/geom"
	"mir/internal/topk"
)

// Maintainer keeps an m-impact region up to date under a dynamic user set
// — the future-work direction sketched in the paper's conclusion (users
// currently online, real-time advertising). Instead of recomputing from
// scratch, it retains the finished arrangement and, on each user arrival
// or departure, re-verifies only the cells whose decision the update can
// invalidate, resuming the AA loop on those:
//
//   - Adding a user can only revive Eliminated cells (reported cells stay
//     reported: coverage counts only grow).
//   - Removing a user can only demote Reported cells (eliminated cells
//     stay eliminated: |U| and the cell's exclusion count drop together).
//
// User indices are stable: removed slots are tombstoned, and new users
// take fresh indices.
type Maintainer struct {
	products []geom.Vector
	dim      int
	m        int
	opts     Options

	users  []topk.UserPref
	alive  []bool
	nAlive int

	// search answers arriving users' top-k thresholds from the instance's
	// shared layered index (nil when the index is disabled, selecting the
	// historical full product scan). The Maintainer is single-threaded, so
	// one searcher suffices.
	search *topk.Searcher

	run *aaRun
}

// NewMaintainer computes the initial region and retains the arrangement.
//
// The 2-D specialized insertion is disabled for maintained runs: it
// reports cells on nesting arguments without materializing their coverage
// counts, and resumable decisions require count-faithful cells.
func NewMaintainer(inst *Instance, m int, opts Options) (*Maintainer, error) {
	opts.Disable2D = true
	run, err := runAA(inst, m, opts)
	if err != nil {
		return nil, err
	}
	mt := &Maintainer{
		products: inst.Products,
		dim:      inst.Dim,
		m:        m,
		opts:     opts,
		users:    inst.Users,
		alive:    make([]bool, len(inst.Users)),
		nAlive:   len(inst.Users),
		run:      run,
	}
	if inst.TopKIndex != nil {
		mt.search = topk.NewSearcher(inst.TopKIndex)
	}
	for i := range mt.alive {
		mt.alive[i] = true
	}
	return mt, nil
}

// NumUsers returns the current (alive) user count.
func (mt *Maintainer) NumUsers() int { return mt.nAlive }

// Region extracts the current m-impact region from the maintained
// arrangement.
func (mt *Maintainer) Region() *Region {
	return mt.run.region()
}

// CountCovering returns the number of alive users covering point p.
func (mt *Maintainer) CountCovering(p geom.Vector) int {
	n := 0
	for i, h := range mt.run.inst.HS {
		if mt.alive[i] && h.Contains(p) {
			n++
		}
	}
	return n
}

// MinBoundaryGap mirrors Instance.MinBoundaryGap over alive users.
func (mt *Maintainer) MinBoundaryGap(p geom.Vector) float64 {
	best := 1e18
	for i, h := range mt.run.inst.HS {
		if !mt.alive[i] {
			continue
		}
		g := h.Eval(p)
		if g < 0 {
			g = -g
		}
		if g < best {
			best = g
		}
	}
	return best
}

// AddUser registers a new user, updates the region incrementally, and
// returns the user's index (for a later RemoveUser). Valid indices are
// non-negative; on error the returned index is -1, so it can never be
// mistaken for the first user's index 0.
func (mt *Maintainer) AddUser(u topk.UserPref) (int, error) {
	if len(u.W) != mt.dim {
		return -1, fmt.Errorf("%w: new user has %d weights, want %d",
			ErrDimMismatch, len(u.W), mt.dim)
	}
	if u.K < 1 || u.K > len(mt.products) {
		return -1, fmt.Errorf("%w: new user has k=%d (|P|=%d)",
			ErrBadK, u.K, len(mt.products))
	}
	inst := mt.run.inst
	// Answer the arriving user's top-k-th threshold from the layered
	// index: the bounded-heap layer scan touches a handful of product
	// blocks where the historical path scored the entire product set.
	// Both selections are exact under the same (score desc, index asc)
	// ranking, so the result is byte-identical either way.
	var kth topk.KthResult
	if mt.search != nil {
		mt.search.Stats = topk.SearchStats{}
		kth = mt.search.Kth(u.W, u.K)
		mt.run.st.ScannedProducts += mt.search.Stats.ScannedProducts
		mt.run.st.LayerPrunes += mt.search.Stats.LayerPrunes
	} else {
		kth = topk.KthScore(mt.products, u.W, u.K)
	}
	idx := len(mt.users)

	mt.users = append(mt.users, u)
	mt.alive = append(mt.alive, true)
	mt.nAlive++
	inst.Users = append(inst.Users, u)
	inst.Kth = append(inst.Kth, kth)
	inst.HS = append(inst.HS, geom.Halfspace{W: u.W, T: kth.Score})
	if mt.dim > 1 {
		inst.WProj = append(inst.WProj, u.W[:mt.dim-1])
	} else {
		inst.WProj = append(inst.WProj, u.W)
	}

	// The new user becomes a singleton pending view on EVERY leaf, decided
	// or not, so that the accounting invariant (counts + pending = alive
	// users) survives future reactivations. Reported cells stay reported
	// (their coverage only grows); eliminated cells whose bound now allows
	// reaching m are revived and resume processing.
	g := &Group{Pivot: kth.Index, R: mt.products[kth.Index], Members: []int{idx}}

	mt.run.nU = mt.nAlive
	pprof.Do(context.Background(), pprof.Labels("mir_phase", "verify"), func(context.Context) {
		for _, leaf := range mt.run.tr.Leaves(nil, nil) {
			if leaf.Empty {
				continue
			}
			cg := pendingOf(leaf).clone()
			cg.views = append(cg.views, newView(g))
			leaf.Payload = cg
			if leaf.Status != celltree.Eliminated {
				continue
			}
			// Elimination condition with the larger population: still valid?
			if mt.nAlive-leaf.OutCount < mt.m {
				continue
			}
			mt.run.tr.Reactivate(leaf)
			if !mt.run.seq.verify(leaf) {
				mt.run.heap.Push(leaf, mt.run.priority(leaf))
			}
		}
	})
	mt.run.drain()
	return idx, nil
}

// RemoveUser retires the user at the given index and updates the region
// incrementally.
func (mt *Maintainer) RemoveUser(idx int) error {
	if idx < 0 || idx >= len(mt.users) || !mt.alive[idx] {
		return fmt.Errorf("core: user %d not present", idx)
	}
	mt.alive[idx] = false
	mt.nAlive--
	mt.run.nU = mt.nAlive
	h := mt.run.inst.HS[idx]

	pprof.Do(context.Background(), pprof.Labels("mir_phase", "verify"), func(context.Context) {
		mt.stripUser(idx, h)
	})
	mt.run.drain()
	return nil
}

// stripUser removes the departed user from every leaf's pending views and
// counts, re-queueing reported leaves whose decision the removal broke.
func (mt *Maintainer) stripUser(idx int, h geom.Halfspace) {
	for _, leaf := range mt.run.tr.Leaves(nil, nil) {
		if leaf.Empty {
			continue
		}
		// Strip the user from the leaf's pending views (views are shared
		// between sibling leaves, so replace rather than mutate).
		cg := pendingOf(leaf)
		stripped := false
		for vi, v := range cg.views {
			pos := -1
			for i, ui := range v.members {
				if ui == idx {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue
			}
			stripped = true
			nc := cg.clone()
			if len(v.members) == 1 {
				nc.remove(vi)
			} else {
				nc.views[vi] = v.withMembers(dropTwo(v.members, pos, pos))
			}
			leaf.Payload = nc
			break
		}
		if !stripped {
			// The user was decided for this leaf: undo the count.
			switch leaf.Classify(h, !mt.opts.DisableFastTest) {
			case geom.Covers:
				leaf.InCount--
			case geom.Excludes:
				leaf.OutCount--
			}
			// A Cuts answer would mean the user was never counted (it
			// should then have been pending); tolerate it silently — the
			// leaf's counts are left untouched.
		}
		// Re-verify decisions that removal can break.
		if leaf.Status == celltree.Reported && leaf.InCount < mt.m {
			mt.run.tr.Reactivate(leaf)
			if !mt.run.seq.verify(leaf) {
				mt.run.heap.Push(leaf, mt.run.priority(leaf))
			}
		}
	}
}

// pendingOf returns the leaf's pending group list (empty when absent).
func pendingOf(c *celltree.Cell) *cellGroups {
	if cg, ok := c.Payload.(*cellGroups); ok && cg != nil {
		return cg
	}
	cg := &cellGroups{}
	c.Payload = cg
	return cg
}
