package core

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"

	"mir/internal/celltree"
	"mir/internal/geom"
	"mir/internal/topk"
)

// Maintainer keeps an m-impact region up to date under a dynamic user set
// — the future-work direction sketched in the paper's conclusion (users
// currently online, real-time advertising). Instead of recomputing from
// scratch, it retains the finished arrangement and, on each user arrival
// or departure, re-verifies only the cells whose decision the update can
// invalidate, resuming the AA loop on those:
//
//   - Adding a user can only revive Eliminated cells (reported cells stay
//     reported: coverage counts only grow).
//   - Removing a user can only demote Reported cells (eliminated cells
//     stay eliminated: |U| and the cell's exclusion count drop together).
//
// User indices are stable: removed slots are tombstoned, and new users
// take fresh indices.
type Maintainer struct {
	products []geom.Vector
	dim      int
	m        int
	opts     Options

	users  []topk.UserPref
	alive  []bool
	nAlive int

	// search answers arriving users' top-k thresholds from the instance's
	// shared layered index (nil when the index is disabled, selecting the
	// historical full product scan). The Maintainer is single-threaded, so
	// one searcher suffices.
	search *topk.Searcher

	run *aaRun
}

// NewMaintainer computes the initial region and retains the arrangement.
//
// The 2-D specialized insertion is disabled for maintained runs: it
// reports cells on nesting arguments without materializing their coverage
// counts, and resumable decisions require count-faithful cells.
func NewMaintainer(inst *Instance, m int, opts Options) (*Maintainer, error) {
	opts.Disable2D = true
	run, err := runAA(inst, m, opts)
	if err != nil {
		return nil, err
	}
	mt := &Maintainer{
		products: inst.Products,
		dim:      inst.Dim,
		m:        m,
		opts:     opts,
		users:    inst.Users,
		alive:    make([]bool, len(inst.Users)),
		nAlive:   len(inst.Users),
		run:      run,
	}
	if inst.TopKIndex != nil {
		mt.search = topk.NewSearcher(inst.TopKIndex)
	}
	for i := range mt.alive {
		mt.alive[i] = true
	}
	return mt, nil
}

// NumUsers returns the current (alive) user count.
func (mt *Maintainer) NumUsers() int { return mt.nAlive }

// Region extracts the current m-impact region from the maintained
// arrangement.
func (mt *Maintainer) Region() *Region {
	return mt.run.region()
}

// CountCovering returns the number of alive users covering point p.
func (mt *Maintainer) CountCovering(p geom.Vector) int {
	n := 0
	for i, h := range mt.run.inst.HS {
		if mt.alive[i] && h.Contains(p) {
			n++
		}
	}
	return n
}

// MinBoundaryGap mirrors Instance.MinBoundaryGap over alive users. With
// no users alive there is no boundary, so the gap is +Inf (the identity
// of min), never a finite sentinel a caller could mistake for a distance.
func (mt *Maintainer) MinBoundaryGap(p geom.Vector) float64 {
	best := math.Inf(1)
	for i, h := range mt.run.inst.HS {
		if !mt.alive[i] {
			continue
		}
		g := h.Eval(p)
		if g < 0 {
			g = -g
		}
		if g < best {
			best = g
		}
	}
	return best
}

// AddUser registers a new user, updates the region incrementally, and
// returns the user's index (for a later RemoveUser). Valid indices are
// non-negative; on error the returned index is -1, so it can never be
// mistaken for the first user's index 0.
func (mt *Maintainer) AddUser(u topk.UserPref) (int, error) {
	if len(u.W) != mt.dim {
		return -1, fmt.Errorf("%w: new user has %d weights, want %d",
			ErrDimMismatch, len(u.W), mt.dim)
	}
	if u.K < 1 || u.K > len(mt.products) {
		return -1, fmt.Errorf("%w: new user has k=%d (|P|=%d)",
			ErrBadK, u.K, len(mt.products))
	}
	inst := mt.run.inst
	// Answer the arriving user's top-k-th threshold from the layered
	// index: the bounded-heap layer scan touches a handful of product
	// blocks where the historical path scored the entire product set.
	// Both selections are exact under the same (score desc, index asc)
	// ranking, so the result is byte-identical either way.
	var kth topk.KthResult
	if mt.search != nil {
		mt.search.Stats = topk.SearchStats{}
		kth = mt.search.Kth(u.W, u.K)
		mt.run.st.ScannedProducts += mt.search.Stats.ScannedProducts
		mt.run.st.LayerPrunes += mt.search.Stats.LayerPrunes
	} else {
		kth = topk.KthScore(mt.products, u.W, u.K)
	}
	idx := len(mt.users)

	mt.users = append(mt.users, u)
	mt.alive = append(mt.alive, true)
	mt.nAlive++
	inst.Users = append(inst.Users, u)
	inst.Kth = append(inst.Kth, kth)
	inst.HS = append(inst.HS, geom.Halfspace{W: u.W, T: kth.Score})
	if mt.dim > 1 {
		inst.WProj = append(inst.WProj, u.W[:mt.dim-1])
	} else {
		inst.WProj = append(inst.WProj, u.W)
	}

	// The new user becomes a singleton pending view on EVERY leaf, decided
	// or not, so that the accounting invariant (counts + pending = alive
	// users) survives future reactivations. Reported cells stay reported
	// (their coverage only grows); eliminated cells whose bound now allows
	// reaching m are revived and resume processing.
	g := &Group{Pivot: kth.Index, R: mt.products[kth.Index], Members: []int{idx}}

	mt.run.nU = mt.nAlive
	pprof.Do(context.Background(), pprof.Labels("mir_phase", "verify"), func(context.Context) {
		for _, leaf := range mt.run.tr.Leaves(nil, nil) {
			if leaf.Empty {
				continue
			}
			cg := pendingOf(leaf).clone()
			cg.views = append(cg.views, newView(g))
			leaf.Payload = cg
			if leaf.Status != celltree.Eliminated {
				continue
			}
			// Elimination condition with the larger population: still valid?
			if mt.nAlive-leaf.OutCount < mt.m {
				continue
			}
			mt.run.tr.Reactivate(leaf)
			if !mt.run.seq.verify(leaf) {
				mt.run.heap.Push(leaf, mt.run.priority(leaf))
			}
		}
	})
	mt.run.drain()
	return idx, nil
}

// RemoveUser retires the user at the given index and updates the region
// incrementally.
func (mt *Maintainer) RemoveUser(idx int) error {
	if idx < 0 || idx >= len(mt.users) || !mt.alive[idx] {
		return fmt.Errorf("core: user %d not present", idx)
	}
	mt.alive[idx] = false
	mt.nAlive--
	mt.run.nU = mt.nAlive
	h := mt.run.inst.HS[idx]

	pprof.Do(context.Background(), pprof.Labels("mir_phase", "verify"), func(context.Context) {
		mt.stripUser(idx, h)
	})
	mt.run.drain()
	return nil
}

// stripUser removes the departed user from every leaf's pending views and
// counts, re-queueing reported leaves whose decision the removal broke.
func (mt *Maintainer) stripUser(idx int, h geom.Halfspace) {
	for _, leaf := range mt.run.tr.Leaves(nil, nil) {
		if leaf.Empty {
			continue
		}
		// Strip the user from the leaf's pending views (views are shared
		// between sibling leaves, so replace rather than mutate).
		cg := pendingOf(leaf)
		stripped := false
		for vi, v := range cg.views {
			pos := -1
			for i, ui := range v.members {
				if ui == idx {
					pos = i
					break
				}
			}
			if pos < 0 {
				continue
			}
			stripped = true
			nc := cg.clone()
			if len(v.members) == 1 {
				nc.remove(vi)
			} else {
				nc.views[vi] = v.withMembers(dropTwo(v.members, pos, pos))
			}
			leaf.Payload = nc
			break
		}
		if !stripped {
			// The user was decided for this leaf: undo the count.
			switch leaf.Classify(h, !mt.opts.DisableFastTest) {
			case geom.Covers:
				leaf.InCount--
			case geom.Excludes:
				leaf.OutCount--
			case geom.Cuts:
				// A cutting halfspace means the user was never absorbed
				// into this leaf's counts — it should have been pending.
				// The counts are left untouched (there is nothing sound
				// to undo), but the desync is recorded: invariant tests
				// fail on a nonzero counter instead of letting
				// InCount/OutCount drift silently from the alive
				// population.
				mt.run.st.CountDesyncs++
			}
		}
		// Re-verify decisions that removal can break.
		if leaf.Status == celltree.Reported && leaf.InCount < mt.m {
			mt.run.tr.Reactivate(leaf)
			if !mt.run.seq.verify(leaf) {
				mt.run.heap.Push(leaf, mt.run.priority(leaf))
			}
		}
	}
}

// NextHandle returns the handle the next successful arrival will receive
// (handles are append-only; removed slots are tombstoned, never reused).
// An ingest layer queueing arrivals can therefore predict handles at
// enqueue time: with every event funneled through one FIFO queue, the
// i-th queued arrival gets NextHandle()+i.
func (mt *Maintainer) NextHandle() int { return len(mt.users) }

// EventKind discriminates the population events of a maintenance batch.
type EventKind uint8

const (
	// EventArrive registers Event.User as a new population member.
	EventArrive EventKind = iota
	// EventDepart retires the user with handle Event.Handle.
	EventDepart
)

// Event is one population change in an ApplyBatch sequence.
type Event struct {
	Kind   EventKind
	User   topk.UserPref // arrival payload (EventArrive)
	Handle int           // departure target (EventDepart)
}

// batchOp is an event in staged form: an arrival's singleton pending
// group or a departure's influential halfspace, plus the population size
// right after the event.
type batchOp struct {
	arrive bool
	idx    int
	g      *Group
	h      geom.Halfspace
	nAlive int
}

// ApplyBatch applies a sequence of arrivals and departures in one
// maintenance pass and returns one handle per event (the arrival's new
// handle, -1 for departures). The batch is atomic on error: every event
// is validated up front against the population as it evolves through the
// sequence (a departure may target an arrival earlier in the same batch),
// and an invalid event rejects the whole batch with the Maintainer
// untouched.
//
// The batch is coalesced, never reordered: the resulting arrangement —
// cells, counts, and the exported region — is byte-identical to applying
// the same events one at a time through AddUser/RemoveUser, for every
// worker count and group-choice strategy. The construction guarantees
// this rather than approximating it:
//
//   - Staging is fused. One sweep over the current leaves replays the
//     whole event sequence against each leaf (one payload clone per leaf
//     instead of one per leaf per event). This is sound because a decided
//     leaf's pending list is unobservable until the leaf is re-verified,
//     and per-leaf staging is a pure fold over the event sequence.
//   - Re-verification is bucketed by event. A leaf whose decision event e
//     breaks (a report demoted by a departure, an elimination revived by
//     an arrival) stops staging at e. Buckets then drain in event order:
//     each drain re-enumerates the tree in leaf order — reproducing the
//     push order of the sequential per-event sweep, which the round-robin
//     ablation strategy is sensitive to — and runs with the event-e
//     population and exactly the events 0..e applied to every cell it
//     touches: precisely the state the sequential drain for event e ran
//     under. Leaves produced or re-decided by a drain resume staging at
//     e+1, so every leaf sees every event exactly once.
//
// Cell processing commutes across independent cells (see processCell), so
// the only counter that may differ from the one-at-a-time path is the
// scheduling-sensitive Stats.MaxFrontier.
func (mt *Maintainer) ApplyBatch(events []Event) ([]int, error) {
	if len(events) == 0 {
		return nil, nil
	}
	// Validate the whole batch before mutating anything, simulating the
	// population overlay (arrivals and departures earlier in the batch).
	handles := make([]int, len(events))
	nAfter := make([]int, len(events))
	var born, dead map[int]bool
	next := len(mt.users)
	n := mt.nAlive
	for i, ev := range events {
		switch ev.Kind {
		case EventArrive:
			if len(ev.User.W) != mt.dim {
				return nil, fmt.Errorf("%w: event %d: new user has %d weights, want %d",
					ErrDimMismatch, i, len(ev.User.W), mt.dim)
			}
			if ev.User.K < 1 || ev.User.K > len(mt.products) {
				return nil, fmt.Errorf("%w: event %d: new user has k=%d (|P|=%d)",
					ErrBadK, i, ev.User.K, len(mt.products))
			}
			if born == nil {
				born = make(map[int]bool)
			}
			handles[i] = next
			born[next] = true
			next++
			n++
		case EventDepart:
			hd := ev.Handle
			present := hd >= 0 && ((hd < len(mt.users) && mt.alive[hd]) || born[hd]) && !dead[hd]
			if !present {
				return nil, fmt.Errorf("core: event %d: user %d not present", i, hd)
			}
			if dead == nil {
				dead = make(map[int]bool)
			}
			dead[hd] = true
			handles[i] = -1
			n--
		default:
			return nil, fmt.Errorf("core: event %d: unknown event kind %d", i, ev.Kind)
		}
		nAfter[i] = n
	}

	// Register arrivals (thresholds answered in event order, so the search
	// counters accumulate exactly as per-event AddUser calls would) and
	// capture departures' halfspaces. The instance arrays are append-only
	// and nothing reads a user's row before its arrival event is staged,
	// so appending all arrivals up front is equivalent to interleaving.
	inst := mt.run.inst
	ops := make([]batchOp, len(events))
	for i, ev := range events {
		if ev.Kind != EventArrive {
			continue
		}
		u := ev.User
		var kth topk.KthResult
		if mt.search != nil {
			mt.search.Stats = topk.SearchStats{}
			kth = mt.search.Kth(u.W, u.K)
			mt.run.st.ScannedProducts += mt.search.Stats.ScannedProducts
			mt.run.st.LayerPrunes += mt.search.Stats.LayerPrunes
		} else {
			kth = topk.KthScore(mt.products, u.W, u.K)
		}
		mt.users = append(mt.users, u)
		mt.alive = append(mt.alive, true)
		inst.Users = append(inst.Users, u)
		inst.Kth = append(inst.Kth, kth)
		inst.HS = append(inst.HS, geom.Halfspace{W: u.W, T: kth.Score})
		if mt.dim > 1 {
			inst.WProj = append(inst.WProj, u.W[:mt.dim-1])
		} else {
			inst.WProj = append(inst.WProj, u.W)
		}
		ops[i] = batchOp{arrive: true, idx: handles[i],
			g:      &Group{Pivot: kth.Index, R: mt.products[kth.Index], Members: []int{handles[i]}},
			nAlive: nAfter[i]}
	}
	for i, ev := range events {
		if ev.Kind != EventDepart {
			continue
		}
		mt.alive[ev.Handle] = false
		ops[i] = batchOp{idx: ev.Handle, h: inst.HS[ev.Handle], nAlive: nAfter[i]}
	}
	mt.nAlive = nAfter[len(events)-1]

	// stage replays events from..end against one leaf, cloning its payload
	// on first mutation and stopping (bucketed for re-verification) at the
	// first event that breaks the leaf's decision.
	buckets := make([][]*celltree.Cell, len(ops))
	stage := func(leaf *celltree.Cell, from int) {
		if leaf.Empty {
			return
		}
		var owned *cellGroups
		own := func() *cellGroups {
			if owned == nil {
				owned = pendingOf(leaf).clone()
				leaf.Payload = owned
			}
			return owned
		}
		for e := from; e < len(ops); e++ {
			op := &ops[e]
			if op.arrive {
				cg := own()
				cg.views = append(cg.views, newView(op.g))
				if leaf.Status == celltree.Eliminated && op.nAlive-leaf.OutCount >= mt.m {
					buckets[e] = append(buckets[e], leaf)
					return
				}
				continue
			}
			// Departure: replay stripUser's per-leaf step. The search runs
			// on the current list; the clone preserves order, so the found
			// positions stay valid on it.
			cur := pendingOf(leaf)
			stripped := false
			for vi, v := range cur.views {
				pos := -1
				for pi, ui := range v.members {
					if ui == op.idx {
						pos = pi
						break
					}
				}
				if pos < 0 {
					continue
				}
				stripped = true
				cg := own()
				if len(v.members) == 1 {
					cg.remove(vi)
				} else {
					cg.views[vi] = v.withMembers(dropTwo(v.members, pos, pos))
				}
				break
			}
			if !stripped {
				switch leaf.Classify(op.h, !mt.opts.DisableFastTest) {
				case geom.Covers:
					leaf.InCount--
				case geom.Excludes:
					leaf.OutCount--
				case geom.Cuts:
					mt.run.st.CountDesyncs++
				}
			}
			if leaf.Status == celltree.Reported && leaf.InCount < mt.m {
				buckets[e] = append(buckets[e], leaf)
				return
			}
		}
	}

	pprof.Do(context.Background(), pprof.Labels("mir_phase", "verify"), func(context.Context) {
		for _, leaf := range mt.run.tr.Leaves(nil, nil) {
			stage(leaf, 0)
		}
	})
	var sub []*celltree.Cell
	for e := range ops {
		cells := buckets[e]
		if len(cells) == 0 {
			continue
		}
		fired := make(map[*celltree.Cell]bool, len(cells))
		for _, c := range cells {
			fired[c] = true
		}
		mt.run.nU = ops[e].nAlive
		// Push in current leaf order — the order the per-event sweep would
		// have used — not bucket-append order.
		for _, leaf := range mt.run.tr.Leaves(nil, nil) {
			if !fired[leaf] {
				continue
			}
			mt.run.tr.Reactivate(leaf)
			if !mt.run.seq.verify(leaf) {
				mt.run.heap.Push(leaf, mt.run.priority(leaf))
			}
		}
		mt.run.drain()
		if e+1 < len(ops) {
			pprof.Do(context.Background(), pprof.Labels("mir_phase", "verify"), func(context.Context) {
				for _, c := range cells {
					sub = mt.run.tr.Leaves(c, sub[:0])
					for _, leaf := range sub {
						stage(leaf, e+1)
					}
				}
			})
		}
	}
	mt.run.nU = mt.nAlive
	return handles, nil
}

// pendingOf returns the leaf's pending group list (empty when absent).
func pendingOf(c *celltree.Cell) *cellGroups {
	if cg, ok := c.Payload.(*cellGroups); ok && cg != nil {
		return cg
	}
	cg := &cellGroups{}
	c.Payload = cg
	return cg
}
