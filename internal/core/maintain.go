package core

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"

	"mir/internal/celltree"
	"mir/internal/geom"
	"mir/internal/topk"
)

// Maintainer keeps an m-impact region up to date under a dynamic user set
// — the future-work direction sketched in the paper's conclusion (users
// currently online, real-time advertising). Instead of recomputing from
// scratch, it retains the finished arrangement and, on each user arrival
// or departure, re-verifies only the cells whose decision the update can
// invalidate, resuming the AA loop on those:
//
//   - Adding a user can only revive Eliminated cells (reported cells stay
//     reported: coverage counts only grow).
//   - Removing a user can only demote Reported cells (eliminated cells
//     stay eliminated: |U| and the cell's exclusion count drop together).
//
// User indices are stable: removed slots are tombstoned, and new users
// take fresh indices.
type Maintainer struct {
	products []geom.Vector
	dim      int
	m        int
	opts     Options

	users  []topk.UserPref
	alive  []bool
	nAlive int

	// search answers arriving users' top-k thresholds from the instance's
	// shared layered index (nil when the index is disabled, selecting the
	// historical full product scan). The Maintainer is single-threaded, so
	// one searcher suffices.
	search *topk.Searcher

	run *aaRun

	// log is the staged-event history (batchOp per event) and logBase the
	// absolute index of log[0]. Routed maintenance (routed=true, the
	// default) appends each batch, lets deferred subtrees lag behind it
	// (celltree.Cell.MaintSeq records how far each node has caught up), and
	// compacts once the backlog reaches routeLogCap; the full-sweep path
	// truncates the log every batch, since every leaf is staged to the end
	// before the batch returns. See route.go.
	log     []batchOp
	logBase int
	routed  bool

	// leavesBuf and subBuf are scratch for leaf enumerations (full-tree
	// sweeps and fired-subtree re-staging), reused across events and drains
	// so steady-state maintenance does not allocate a leaf slice per sweep.
	leavesBuf []*celltree.Cell
	subBuf    []*celltree.Cell
}

// NewMaintainer computes the initial region and retains the arrangement.
//
// The 2-D specialized insertion is disabled for maintained runs: it
// reports cells on nesting arguments without materializing their coverage
// counts, and resumable decisions require count-faithful cells.
func NewMaintainer(inst *Instance, m int, opts Options) (*Maintainer, error) {
	opts.Disable2D = true
	run, err := runAA(inst, m, opts)
	if err != nil {
		return nil, err
	}
	mt := &Maintainer{
		products: inst.Products,
		dim:      inst.Dim,
		m:        m,
		opts:     opts,
		users:    inst.Users,
		alive:    make([]bool, len(inst.Users)),
		nAlive:   len(inst.Users),
		run:      run,
	}
	if inst.TopKIndex != nil {
		mt.search = topk.NewSearcher(inst.TopKIndex)
	}
	for i := range mt.alive {
		mt.alive[i] = true
	}
	mt.routed = !opts.DisableRouting
	if mt.routed {
		// Settle the routing bounds of the freshly built arrangement so the
		// first batch's descent starts from exact per-subtree values.
		mt.refreshSubtree(mt.run.tr.Root)
	}
	return mt, nil
}

// NumUsers returns the current (alive) user count.
func (mt *Maintainer) NumUsers() int { return mt.nAlive }

// Region extracts the current m-impact region from the maintained
// arrangement.
func (mt *Maintainer) Region() *Region {
	return mt.run.region()
}

// CountCovering returns the number of alive users covering point p.
func (mt *Maintainer) CountCovering(p geom.Vector) int {
	n := 0
	for i, h := range mt.run.inst.HS {
		if mt.alive[i] && h.Contains(p) {
			n++
		}
	}
	return n
}

// MinBoundaryGap mirrors Instance.MinBoundaryGap over alive users. With
// no users alive there is no boundary, so the gap is +Inf (the identity
// of min), never a finite sentinel a caller could mistake for a distance.
func (mt *Maintainer) MinBoundaryGap(p geom.Vector) float64 {
	best := math.Inf(1)
	for i, h := range mt.run.inst.HS {
		if !mt.alive[i] {
			continue
		}
		g := h.Eval(p)
		if g < 0 {
			g = -g
		}
		if g < best {
			best = g
		}
	}
	return best
}

// AddUser registers a new user, updates the region incrementally, and
// returns the user's index (for a later RemoveUser). Valid indices are
// non-negative; on error the returned index is -1, so it can never be
// mistaken for the first user's index 0.
//
// The new user becomes a singleton pending view on every leaf, decided or
// not, so that the accounting invariant (counts + pending = alive users)
// survives future reactivations. Reported cells stay reported (their
// coverage only grows); eliminated cells whose bound now allows reaching m
// are revived and resume processing. AddUser is a single-event ApplyBatch —
// the batch path is byte-identical to the historical per-event sweep (see
// ApplyBatch), and funneling both through one staging pass is what lets
// routed maintenance serve singles and bursts with the same descent.
func (mt *Maintainer) AddUser(u topk.UserPref) (int, error) {
	handles, err := mt.ApplyBatch([]Event{{Kind: EventArrive, User: u}})
	if err != nil {
		return -1, err
	}
	return handles[0], nil
}

// RemoveUser retires the user at the given index and updates the region
// incrementally: the user is stripped from every leaf's pending views and
// counts, and reported leaves whose decision the removal broke are
// re-verified. Like AddUser, it is a single-event ApplyBatch.
func (mt *Maintainer) RemoveUser(idx int) error {
	_, err := mt.ApplyBatch([]Event{{Kind: EventDepart, Handle: idx}})
	return err
}

// NextHandle returns the handle the next successful arrival will receive
// (handles are append-only; removed slots are tombstoned, never reused).
// An ingest layer queueing arrivals can therefore predict handles at
// enqueue time: with every event funneled through one FIFO queue, the
// i-th queued arrival gets NextHandle()+i.
func (mt *Maintainer) NextHandle() int { return len(mt.users) }

// EventKind discriminates the population events of a maintenance batch.
type EventKind uint8

const (
	// EventArrive registers Event.User as a new population member.
	EventArrive EventKind = iota
	// EventDepart retires the user with handle Event.Handle.
	EventDepart
)

// Event is one population change in an ApplyBatch sequence.
type Event struct {
	Kind   EventKind
	User   topk.UserPref // arrival payload (EventArrive)
	Handle int           // departure target (EventDepart)
}

// batchOp is an event in staged form: an arrival's singleton pending
// group or a departure's influential halfspace, plus the population size
// right after the event.
type batchOp struct {
	arrive bool
	idx    int
	g      *Group
	h      geom.Halfspace
	nAlive int
}

// ApplyBatch applies a sequence of arrivals and departures in one
// maintenance pass and returns one handle per event (the arrival's new
// handle, -1 for departures). The batch is atomic on error: every event
// is validated up front against the population as it evolves through the
// sequence (a departure may target an arrival earlier in the same batch),
// and an invalid event rejects the whole batch with the Maintainer
// untouched.
//
// The batch is coalesced, never reordered: the resulting arrangement —
// cells, counts, and the exported region — is byte-identical to applying
// the same events one at a time through AddUser/RemoveUser, for every
// worker count and group-choice strategy. The construction guarantees
// this rather than approximating it:
//
//   - Staging is fused. One sweep over the current leaves replays the
//     whole event sequence against each leaf (one payload clone per leaf
//     instead of one per leaf per event). This is sound because a decided
//     leaf's pending list is unobservable until the leaf is re-verified,
//     and per-leaf staging is a pure fold over the event sequence.
//   - Re-verification is bucketed by event. A leaf whose decision event e
//     breaks (a report demoted by a departure, an elimination revived by
//     an arrival) stops staging at e. Buckets then drain in event order:
//     each drain re-enumerates the tree in leaf order — reproducing the
//     push order of the sequential per-event sweep, which the round-robin
//     ablation strategy is sensitive to — and runs with the event-e
//     population and exactly the events 0..e applied to every cell it
//     touches: precisely the state the sequential drain for event e ran
//     under. Leaves produced or re-decided by a drain resume staging at
//     e+1, so every leaf sees every event exactly once.
//
// Cell processing commutes across independent cells (see processCell), so
// the only counter that may differ from the one-at-a-time path is the
// scheduling-sensitive Stats.MaxFrontier.
func (mt *Maintainer) ApplyBatch(events []Event) ([]int, error) {
	if len(events) == 0 {
		return nil, nil
	}
	// Validate the whole batch before mutating anything, simulating the
	// population overlay (arrivals and departures earlier in the batch).
	handles := make([]int, len(events))
	nAfter := make([]int, len(events))
	var born, dead map[int]bool
	next := len(mt.users)
	n := mt.nAlive
	for i, ev := range events {
		switch ev.Kind {
		case EventArrive:
			if len(ev.User.W) != mt.dim {
				return nil, fmt.Errorf("%w: event %d: new user has %d weights, want %d",
					ErrDimMismatch, i, len(ev.User.W), mt.dim)
			}
			if ev.User.K < 1 || ev.User.K > len(mt.products) {
				return nil, fmt.Errorf("%w: event %d: new user has k=%d (|P|=%d)",
					ErrBadK, i, ev.User.K, len(mt.products))
			}
			if born == nil {
				born = make(map[int]bool)
			}
			handles[i] = next
			born[next] = true
			next++
			n++
		case EventDepart:
			hd := ev.Handle
			present := hd >= 0 && ((hd < len(mt.users) && mt.alive[hd]) || born[hd]) && !dead[hd]
			if !present {
				return nil, fmt.Errorf("core: event %d: user %d not present", i, hd)
			}
			if dead == nil {
				dead = make(map[int]bool)
			}
			dead[hd] = true
			handles[i] = -1
			n--
		default:
			return nil, fmt.Errorf("core: event %d: unknown event kind %d", i, ev.Kind)
		}
		nAfter[i] = n
	}

	// Register arrivals (thresholds answered in event order, so the search
	// counters accumulate exactly as per-event AddUser calls would) and
	// capture departures' halfspaces. The instance arrays are append-only
	// and nothing reads a user's row before its arrival event is staged,
	// so appending all arrivals up front is equivalent to interleaving.
	inst := mt.run.inst
	ops := make([]batchOp, len(events))
	for i, ev := range events {
		if ev.Kind != EventArrive {
			continue
		}
		u := ev.User
		var kth topk.KthResult
		if mt.search != nil {
			mt.search.Stats = topk.SearchStats{}
			kth = mt.search.Kth(u.W, u.K)
			mt.run.st.ScannedProducts += mt.search.Stats.ScannedProducts
			mt.run.st.LayerPrunes += mt.search.Stats.LayerPrunes
		} else {
			kth = topk.KthScore(mt.products, u.W, u.K)
		}
		mt.users = append(mt.users, u)
		mt.alive = append(mt.alive, true)
		inst.Users = append(inst.Users, u)
		inst.Kth = append(inst.Kth, kth)
		inst.HS = append(inst.HS, geom.Halfspace{W: u.W, T: kth.Score})
		if mt.dim > 1 {
			inst.WProj = append(inst.WProj, u.W[:mt.dim-1])
		} else {
			inst.WProj = append(inst.WProj, u.W)
		}
		ops[i] = batchOp{arrive: true, idx: handles[i],
			g:      &Group{Pivot: kth.Index, R: mt.products[kth.Index], Members: []int{handles[i]}},
			h:      geom.Halfspace{W: u.W, T: kth.Score},
			nAlive: nAfter[i]}
	}
	for i, ev := range events {
		if ev.Kind != EventDepart {
			continue
		}
		mt.alive[ev.Handle] = false
		ops[i] = batchOp{idx: ev.Handle, h: inst.HS[ev.Handle], nAlive: nAfter[i]}
	}
	mt.nAlive = nAfter[len(events)-1]

	mt.applyLog(ops)
	return handles, nil
}

// mineHeadroom is the padding the threshold miner adds beyond the bare
// decision proof. AA decides every leaf the moment the decision is provable,
// so decided leaves sit exactly at their threshold (revival slack m-1,
// coverage count m) and any event that moves the right count threatens all
// of them at once. Mining past the minimum by this many users leaves the
// proof able to absorb that many adverse events before the leaf is
// threatened again — which is what lets ancestor subtrees defer whole
// event windows instead of descending on every arrival.
const mineHeadroom = 8

// minePending classifies a leaf's pending users against the leaf until the
// decision proof is restored with headroom — OutCount reaching want when
// mineOut is set, InCount reaching it otherwise — or the pool is exhausted.
// Conclusive users move from the pending views into the counts — exactly
// the classification a re-verification drain would reach, reached now —
// and cut users stay pending. Mining is keyed to replayed log positions
// (stageLeaf calls it per op), never to when a leaf happens to be visited,
// which is what keeps the routed and swept modes byte-identical: the same
// op sequence mines the same users at the same events in both.
func (mt *Maintainer) minePending(leaf *celltree.Cell, own func() *cellGroups, mineOut bool, want int) {
	done := func() bool {
		if mineOut {
			return leaf.OutCount >= want
		}
		return leaf.InCount >= want
	}
	if len(pendingOf(leaf).views) == 0 {
		return
	}
	cg := own()
	for vi := 0; vi < len(cg.views) && !done(); {
		v := cg.views[vi]
		// kept is built lazily: views are shared between sibling leaves, so
		// a mutated member list must be a fresh slice, but a view that mines
		// nothing is kept as-is without copying.
		var kept []int
		mined := false
		for pos, ui := range v.members {
			if mined && done() {
				kept = append(kept, v.members[pos:]...)
				break
			}
			switch leaf.Classify(mt.run.inst.HS[ui], !mt.opts.DisableFastTest) {
			case geom.Covers:
				leaf.InCount++
			case geom.Excludes:
				leaf.OutCount++
			default: // Cuts: stays pending
				if mined {
					kept = append(kept, ui)
				}
				continue
			}
			if !mined {
				mined = true
				kept = append(make([]int, 0, len(v.members)-1), v.members[:pos]...)
			}
		}
		if !mined {
			vi++
			continue
		}
		if len(kept) == 0 {
			cg.remove(vi) // swap-delete: revisit index vi
			continue
		}
		cg.views[vi] = v.withMembers(kept)
		vi++
	}
}

// stageLeaf replays mt.log[from:] against one leaf, cloning its payload on
// first mutation and stopping — the event index and leaf handed to fire for
// re-verification bucketing — at the first event that breaks the leaf's
// decision. from indexes mt.log (subtract logBase from an absolute
// MaintSeq). The leaf is marked current through the end of the log up
// front: a fired remainder is completed by the caller's drain/re-stage loop
// before the pass returns, so the mark is true by the time anything reads
// it. Reports whether the leaf fired.
func (mt *Maintainer) stageLeaf(leaf *celltree.Cell, from int, fire func(e int, leaf *celltree.Cell)) bool {
	leaf.MaintSeq = mt.logBase + len(mt.log)
	leaf.StageSeq = leaf.MaintSeq
	if leaf.Empty {
		return false
	}
	mt.run.tr.Stats.RoutedLeaves++
	var owned *cellGroups
	own := func() *cellGroups {
		if owned == nil {
			owned = pendingOf(leaf).clone()
			leaf.Payload = owned
		}
		return owned
	}
	for e := from; e < len(mt.log); e++ {
		op := &mt.log[e]
		if op.arrive {
			// Absorb the arrival where its halfspace is conclusive for this
			// leaf: the decision is exactly what a drain's re-verification
			// would reach, reached now, so only cut leaves carry a pending
			// view. The geometry matters for the revival check too — an
			// excluded arrival raises the alive population and the
			// out-count together, so the revival slack nAlive − OutCount
			// does not move and the leaf cannot fire.
			switch leaf.Classify(op.h, !mt.opts.DisableFastTest) {
			case geom.Covers:
				leaf.InCount++
			case geom.Excludes:
				leaf.OutCount++
			default: // Cuts: pending until a drain resolves it (or splits)
				cg := own()
				cg.views = append(cg.views, newView(op.g))
			}
		} else {
			// Departure: strip the user from the leaf's pending views (views
			// are shared between sibling leaves, so replace rather than
			// mutate). The search runs on the current list; the clone
			// preserves order, so the found positions stay valid on it.
			cur := pendingOf(leaf)
			stripped := false
			for vi, v := range cur.views {
				pos := -1
				for pi, ui := range v.members {
					if ui == op.idx {
						pos = pi
						break
					}
				}
				if pos < 0 {
					continue
				}
				stripped = true
				cg := own()
				if len(v.members) == 1 {
					cg.remove(vi)
				} else {
					cg.views[vi] = v.withMembers(dropTwo(v.members, pos, pos))
				}
				break
			}
			if !stripped {
				// The user was decided for this leaf: undo the count.
				switch leaf.Classify(op.h, !mt.opts.DisableFastTest) {
				case geom.Covers:
					leaf.InCount--
				case geom.Excludes:
					leaf.OutCount--
				case geom.Cuts:
					// A cutting halfspace means the user was never absorbed
					// into this leaf's counts — it should have been pending.
					// The counts are left untouched (there is nothing sound
					// to undo), but the desync is recorded: invariant tests
					// fail on a nonzero counter instead of letting
					// InCount/OutCount drift silently from the alive
					// population.
					mt.run.st.CountDesyncs++
				}
			}
		}
		// Keep the decision proof padded: whenever the leaf's margin is
		// inside the headroom band, mine pending users back into the counts
		// before checking the fire condition. AA decides leaves exactly at
		// their threshold, and a zero-headroom leaf pins its whole ancestor
		// chain's routing bounds at the threshold too — one inconclusive
		// event per window would force the descent right back here. The
		// mined padding is what lets later windows defer above this leaf.
		// Only then can a fire still be warranted (arrivals alone raise
		// revival slack; departures alone lower coverage), meaning the
		// pending pool genuinely ran dry.
		switch leaf.Status {
		case celltree.Eliminated:
			if want := op.nAlive - mt.m + 1 + mineHeadroom; leaf.OutCount < want {
				mt.minePending(leaf, own, true, want)
			}
			if op.arrive && op.nAlive-leaf.OutCount >= mt.m {
				mt.run.tr.Stats.TouchedFrontier++
				fire(e, leaf)
				return true
			}
		case celltree.Reported:
			if want := mt.m + mineHeadroom; leaf.InCount < want {
				mt.minePending(leaf, own, false, want)
			}
			if !op.arrive && leaf.InCount < mt.m {
				mt.run.tr.Stats.TouchedFrontier++
				fire(e, leaf)
				return true
			}
		}
	}
	return false
}

// applyLog stages a validated, registered batch of ops against the
// arrangement and drains the re-verification buckets in event order. With
// routing enabled the staging phase is routeNode's pruned descent (leaves
// under deferred subtrees are not visited at all); otherwise it is the
// historical full sweep. Everything downstream of staging — bucket drains
// with the event-time population, fired-subtree re-staging at e+1 — is
// shared, which is the heart of the routing-on/off byte-identity argument:
// the two modes bucket the same leaves at the same events and push them in
// the same leaf order, so every drain runs under identical state.
func (mt *Maintainer) applyLog(ops []batchOp) {
	if mt.routed {
		mt.log = append(mt.log, ops...)
	} else {
		// The full sweep stages every leaf through the end of each batch, so
		// the processed prefix is dead: advance the base over it and let the
		// new batch reuse the backing array.
		mt.logBase += len(mt.log)
		mt.log = append(mt.log[:0], ops...)
	}
	// Buckets span the whole log, not just this batch: a routed leaf
	// settles its backlog right before the new ops. Deferral proofs
	// guarantee backlog events never fire (see route.go), so only the tail
	// batch's buckets can fill — but indexing the full range keeps that a
	// provable property rather than a structural assumption.
	buckets := make([][]*celltree.Cell, len(mt.log))
	fire := func(e int, leaf *celltree.Cell) {
		buckets[e] = append(buckets[e], leaf)
	}
	pprof.Do(context.Background(), pprof.Labels("mir_phase", "verify"), func(context.Context) {
		if mt.routed {
			mt.routeNode(mt.run.tr.Root, fire)
		} else {
			mt.leavesBuf = mt.run.tr.Leaves(nil, mt.leavesBuf[:0])
			for _, leaf := range mt.leavesBuf {
				mt.stageLeaf(leaf, 0, fire)
			}
		}
	})
	// refresh collects every fired cell once, in firing order: their
	// subtrees (splits included) need exact routing bounds again after the
	// drains. A slice, not a map, so the post-drain walk is deterministic.
	var refresh []*celltree.Cell
	var seen map[*celltree.Cell]bool
	for e := 0; e < len(mt.log); e++ {
		cells := buckets[e]
		if len(cells) == 0 {
			continue
		}
		mt.run.nU = mt.log[e].nAlive
		if mt.routed {
			mt.pushFired(cells)
			if seen == nil {
				seen = make(map[*celltree.Cell]bool, len(cells))
			}
			for _, c := range cells {
				if !seen[c] {
					seen[c] = true
					refresh = append(refresh, c)
				}
			}
		} else {
			fired := make(map[*celltree.Cell]bool, len(cells))
			for _, c := range cells {
				fired[c] = true
			}
			// Push in current leaf order — the order the per-event sweep
			// would have used — not bucket-append order.
			mt.leavesBuf = mt.run.tr.Leaves(nil, mt.leavesBuf[:0])
			for _, leaf := range mt.leavesBuf {
				if !fired[leaf] {
					continue
				}
				mt.run.tr.Reactivate(leaf)
				if !mt.run.seq.verify(leaf) {
					mt.run.heap.Push(leaf, mt.run.priority(leaf))
				}
			}
		}
		mt.run.drain()
		if e+1 < len(mt.log) {
			pprof.Do(context.Background(), pprof.Labels("mir_phase", "verify"), func(context.Context) {
				for _, c := range cells {
					mt.subBuf = mt.run.tr.Leaves(c, mt.subBuf[:0])
					for _, leaf := range mt.subBuf {
						mt.stageLeaf(leaf, e+1, fire)
					}
				}
			})
		}
	}
	mt.run.nU = mt.nAlive
	if mt.routed {
		for _, c := range refresh {
			mt.refreshSubtree(c)
			mt.pullUpChain(c.Parent())
		}
		if len(mt.log) >= routeLogCap {
			mt.settleAll()
		}
	}
}

// pendingOf returns the leaf's pending group list (empty when absent).
func pendingOf(c *celltree.Cell) *cellGroups {
	if cg, ok := c.Payload.(*cellGroups); ok && cg != nil {
		return cg
	}
	cg := &cellGroups{}
	c.Payload = cg
	return cg
}
