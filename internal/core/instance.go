// Package core implements the paper's algorithms for the m-impact region
// problem (mIR) and the standing top-k influence problems it solves:
//
//   - NVE: the naïve algorithm (Section 4.1) — intersect the influential
//     halfspaces of every m-sized user subset.
//   - BSL: the baseline (Section 4.2) — build the halfspace arrangement
//     incrementally with early reporting and early elimination.
//   - AA: the advanced approach (Section 5) — group users by common
//     top-k-th product, exploit convex-hull batch tests (Lemmas 3/4),
//     inner-group processing with delayed insertion, MBB filter-and-refine
//     fast tests, individualized cell partitioning, and a specialized
//     two-dimensional insertion (Lemmas 5/6).
//   - CO / IS / budgeted CO / thresholded IS adaptations (Section 5.5).
package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"mir/internal/geom"
	"mir/internal/par"
	"mir/internal/topk"
)

// Errors returned by input validation.
var (
	ErrNoUsers     = errors.New("core: empty user set")
	ErrNoProducts  = errors.New("core: empty product set")
	ErrBadM        = errors.New("core: m must satisfy 1 <= m <= |U|")
	ErrBadK        = errors.New("core: every user k must satisfy 1 <= k <= |P|")
	ErrDimMismatch = errors.New("core: product and user dimensionalities differ")
)

// Instance is a validated, preprocessed mIR problem: the products, users,
// every user's influential halfspace, and the user groups of Section 5.1.
type Instance struct {
	Products []geom.Vector
	Users    []topk.UserPref
	Dim      int

	// Kth[i] identifies user i's top-k-th product (personal k).
	Kth []topk.KthResult
	// HS[i] is user i's influential halfspace {p : w_i·p >= S^k_{w_i}}.
	// All normal vectors are rows of the contiguous wFlat backing, so the
	// halfspace scans (classification, coverage counting) walk memory
	// sequentially instead of chasing per-user heap vectors.
	HS []geom.Halfspace
	// WProj[i] is user i's weight vector projected to the (d-1)-dimensional
	// weight space (the simplex constraint makes the last coordinate
	// redundant); hull computations run in this space. Each is a prefix of
	// the corresponding wFlat row.
	WProj []geom.Vector
	// Groups partitions users by their top-k-th product.
	Groups []*Group

	// TopKIndex is the shared layered all-top-k product index: the
	// preprocessing answers every user's threshold from it, and the
	// dynamic path (Maintainer.AddUser) reuses it for arriving users
	// instead of scanning the full product set. Immutable under queries;
	// nil when Options.DisableTopKIndex selected the scan paths.
	TopKIndex *topk.Index
	// Prep records the preprocessing search effort of the indexed
	// all-top-k (zero when the index is disabled).
	Prep topk.SearchStats

	// wFlat is the row-major |U|×d backing of the halfspace normals.
	wFlat []float64

	// scalarKernels records Options.DisableKernels for the instance's
	// lazily built numeric structures (the halfspace bands): bit-identical
	// either way, it only selects which loops spend the wall time.
	scalarKernels bool

	// bands caches the banded box-corner prescreen bounds over the
	// halfspace normals and thresholds (built on first use; see
	// HalfspaceBands).
	bands     *topk.HalfspaceBands
	bandsOnce sync.Once
}

// HalfspaceBands returns the blocked band bounds over the instance's
// influential halfspaces (normals from wFlat, thresholds from HS), built
// lazily on first use. The space-sharded AA prescreens each shard box
// with them so a shard only classifies halfspaces whose boundary can
// intersect its box. The bands are immutable once built and safe for
// concurrent Prescreen calls.
func (inst *Instance) HalfspaceBands() *topk.HalfspaceBands {
	inst.bandsOnce.Do(func() {
		t := make([]float64, len(inst.HS))
		for i, h := range inst.HS {
			t[i] = h.T
		}
		inst.bands = topk.NewHalfspaceBandsKernels(inst.wFlat, inst.Dim, t, !inst.scalarKernels)
	})
	return inst.bands
}

// NewInstance validates the inputs and performs the all-top-k
// preprocessing: every user's top-k-th product, influential halfspace, and
// group assignment. The preprocessing fans across all cores; see
// NewInstanceWorkers for the worker knob.
func NewInstance(products []geom.Vector, users []topk.UserPref) (*Instance, error) {
	return NewInstanceWorkers(products, users, 0)
}

// NewInstanceWorkers is NewInstance with an explicit worker count
// (0 = all cores, 1 = strictly sequential); see NewInstanceOpts.
func NewInstanceWorkers(products []geom.Vector, users []topk.UserPref, workers int) (*Instance, error) {
	return NewInstanceOpts(products, users, Options{Workers: workers})
}

// NewInstanceOpts is NewInstance with full algorithm options. Three
// preprocessing stages parallelize under opts.Workers: the per-user
// all-top-k selection, the per-user halfspace and weight-projection
// construction, and the per-group convex-hull precomputation in
// projected weight space (the hulls that power AA's Lemma 3/4 batch
// tests). Every stage writes to index-addressed slots, so the resulting
// Instance is identical for every worker count.
//
// The all-top-k step runs through the layered product index by default
// (Kth results are byte-identical to the skyband-scan fallback that
// opts.DisableTopKIndex selects); the built index stays on the Instance
// for the dynamic path to reuse.
//
// After construction the Instance is read-only for query execution: AA
// runs (and therefore concurrent Analyzer queries) only read it.
func NewInstanceOpts(products []geom.Vector, users []topk.UserPref, opts Options) (*Instance, error) {
	if len(products) == 0 {
		return nil, ErrNoProducts
	}
	if len(users) == 0 {
		return nil, ErrNoUsers
	}
	d := len(products[0])
	for i, p := range products {
		if len(p) != d {
			return nil, fmt.Errorf("%w: product %d has %d attributes, want %d",
				ErrDimMismatch, i, len(p), d)
		}
	}
	for i, u := range users {
		if len(u.W) != d {
			return nil, fmt.Errorf("%w: user %d has %d weights, want %d",
				ErrDimMismatch, i, len(u.W), d)
		}
		if u.K < 1 || u.K > len(products) {
			return nil, fmt.Errorf("%w: user %d has k=%d (|P|=%d)",
				ErrBadK, i, u.K, len(products))
		}
	}

	workers := opts.Workers
	inst := &Instance{
		Products:      products,
		Users:         users,
		Dim:           d,
		scalarKernels: opts.DisableKernels,
	}
	if opts.DisableTopKIndex {
		inst.Kth = topk.AllTopKWorkers(products, users, workers)
	} else {
		inst.TopKIndex = topk.NewIndex(products)
		inst.TopKIndex.SetKernels(!opts.DisableKernels)
		inst.Kth, inst.Prep = inst.TopKIndex.AllTopKWorkers(users, workers)
	}
	inst.HS = make([]geom.Halfspace, len(users))
	inst.WProj = make([]geom.Vector, len(users))
	inst.wFlat = make([]float64, len(users)*d)
	par.For(len(users), workers, func(i int) {
		// Copy the user's weights into the instance's contiguous backing;
		// the capped three-index slice keeps rows from growing into their
		// neighbors.
		row := geom.Vector(inst.wFlat[i*d : (i+1)*d : (i+1)*d])
		copy(row, users[i].W)
		inst.HS[i] = geom.Halfspace{W: row, T: inst.Kth[i].Score}
		if d > 1 {
			inst.WProj[i] = row[: d-1 : d-1]
		} else {
			inst.WProj[i] = row
		}
	})
	inst.Groups = buildGroups(inst)
	// Precompute each group's weight-space hull (one LP per member for
	// d > 2) so queries start with the Lemma 3/4 vertex sets ready instead
	// of computing them lazily on the hot path.
	par.For(len(inst.Groups), workers, func(i int) {
		g := inst.Groups[i]
		g.Hull = hullPositionsOf(inst, g.Members)
	})
	return inst, nil
}

// CheckM validates an m value against the instance.
func (inst *Instance) CheckM(m int) error {
	if m < 1 || m > len(inst.Users) {
		return fmt.Errorf("%w: m=%d, |U|=%d", ErrBadM, m, len(inst.Users))
	}
	return nil
}

// CountCovering returns the number of users whose top-k result a
// (hypothetical) product at point p would enter — the brute-force coverage
// oracle used for verification and by the public API.
func (inst *Instance) CountCovering(p geom.Vector) int {
	n := 0
	for _, h := range inst.HS {
		if h.Contains(p) {
			n++
		}
	}
	return n
}

// MinBoundaryGap returns the smallest |w_i·p - t_i| over all users: the
// distance (in score units) of p from the nearest top-k entry boundary.
// Sampling-based tests use it to skip points too close to a boundary for
// float comparisons to be meaningful. With no users there is no boundary
// and the gap is +Inf (the identity of min).
func (inst *Instance) MinBoundaryGap(p geom.Vector) float64 {
	best := math.Inf(1)
	for _, h := range inst.HS {
		g := h.Eval(p)
		if g < 0 {
			g = -g
		}
		if g < best {
			best = g
		}
	}
	return best
}
