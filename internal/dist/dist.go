package dist

import (
	"mir/internal/core"
)

// ShardExecutor builds an m-impact region from an instance. The two
// implementations are InProcess (exactly core.AA: the historical path,
// sharded or not per Options) and ProcPool (the sharded build with the
// per-shard work dispatched to forked worker processes). The contract
// every executor must meet: for identical (instance, m, Options) the
// merged region and all algorithmic Stats are byte-identical across
// executors; only transport and scheduling counters may differ.
type ShardExecutor interface {
	Name() string
	BuildRegion(inst *core.Instance, m int, opts core.Options) (*core.Region, error)
}

// InProcess is the in-process executor: the sharded (or single-tree)
// build exactly as core.AA runs it today. It is the reference
// implementation the multi-process pool is gated against, and the path
// the pool degrades to when workers cannot be spawned.
type InProcess struct{}

// Name implements ShardExecutor.
func (InProcess) Name() string { return "inproc" }

// BuildRegion implements ShardExecutor.
func (InProcess) BuildRegion(inst *core.Instance, m int, opts core.Options) (*core.Region, error) {
	return core.AA(inst, m, opts)
}

// ExecInfo reports how a ProcPool build executed. All fields reset at
// the start of each BuildRegion; Info() returns the last build's values.
type ExecInfo struct {
	// Shards and PoolWorkers describe the build's shape: the resolved
	// shard count and the number of worker-process slots the pool ran.
	Shards      int
	PoolWorkers int
	// DispatchedShards counts shards whose fragment came back from a
	// worker process; FallbackInProcess counts shards computed in-process
	// after worker attempts were exhausted. The two always sum to Shards.
	DispatchedShards  int
	FallbackInProcess int
	// RespawnedWorkers counts worker processes started to replace one
	// that crashed, hung past the shard timeout, or broke protocol.
	// SpawnFailures counts spawn attempts that failed outright (bad
	// binary, exec error, instance ship failure).
	RespawnedWorkers int
	SpawnFailures    int
	// ShippedBytes totals frame bytes written to workers: the
	// once-encoded instance payload counted per worker it was shipped
	// to, plus every job frame. MaxWorkerRSSBytes is the largest
	// peak-RSS any worker process reached (0 where the platform does not
	// report rusage) — the per-process memory the GC-isolation argument
	// is about.
	ShippedBytes      int64
	MaxWorkerRSSBytes int64
}
