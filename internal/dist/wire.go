// Package dist executes the space-sharded AA build through pluggable
// shard executors: the in-process path (exactly core.AA) and an
// out-of-process worker pool that dispatches shard builds to forked
// worker processes over a framed gob protocol on stdin/stdout.
//
// The seam is core's shard triple — PlanShards, RunShardPrescreened,
// MergeShardFragments — which makes a shard build a pure function of
// (instance, m, Options, ShardBox). The pool ships the instance's raw
// inputs once per worker (encoded exactly once per build), then one job
// frame per shard carrying the box and its parent-side prescreen; the
// worker streams back the shard's region fragment plus its Stats.
// Purity is what buys the failure model: a crashed or hung worker's
// shard is simply re-dispatched (or, after bounded retries, computed
// in-process), and the merged result is byte-identical regardless.
//
// Determinism contract: for any shard count and any pool worker count,
// the merged region and every algorithmic Stats counter are
// byte-identical to the in-process executor's. Only the transport
// counters (DispatchedShards, RespawnedWorkers, FallbackInProcess,
// ShippedBytes) and the scheduling-sensitive pair
// (StealCount/MaxFrontier at Workers > 1) fall outside the contract.
package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"mir/internal/celltree"
	"mir/internal/core"
	"mir/internal/geom"
	"mir/internal/topk"
)

// protoVersion guards against a parent and worker built from different
// trees: the worker rejects an instance frame with the wrong version and
// the pool treats that worker as unspawnable (falling back in-process)
// rather than merging fragments from mismatched code.
const protoVersion = 1

// maxFrameBytes bounds a single frame (1 GiB). Frames near this size
// mean the instance or a fragment is far beyond anything the build can
// process anyway; the bound exists so a corrupted length prefix cannot
// drive a multi-gigabyte allocation.
const maxFrameBytes = 1 << 30

// instanceFrame is the first frame on a worker's stdin: everything
// needed to rebuild the instance. The raw inputs ship, not the
// preprocessed instance — instance construction is deterministic
// (property-pinned across worker counts and index settings), so the
// worker's rebuild yields bit-identical halfspaces, scores, and groups,
// and the wire stays independent of the instance's internal layout.
type instanceFrame struct {
	Proto    int
	Products []geom.Vector
	Users    []topk.UserPref
	Opts     core.Options
	M        int
}

// jobFrame dispatches one shard: its box and the parent-side prescreen
// (one geom.Relation byte per user). Rel ships because it is a pure
// function of (instance, box) that the parent has already paid for —
// workers never rebuild the halfspace bands.
//
// TestCrash and TestHang are fault-injection hooks for the pool's
// failure-path tests: a worker exits mid-shard (between accepting the
// job and producing its result) or blocks forever, exercising the
// respawn-and-retry and timeout paths deterministically. The pool only
// ever sets them under test.
type jobFrame struct {
	Seq       int
	Lo, Hi    geom.Vector
	ID, Depth int
	Rel       []byte
	TestCrash bool
	TestHang  bool
}

// resultFrame streams one shard's result back: the flattened region
// fragment, the shard's Stats delta (Stats.Cells is the per-shard cell
// count the merge records in ShardCells), and the scheduler profile.
// Err is set instead of a payload when the worker could not process the
// job; the pool treats that like a crash.
type resultFrame struct {
	Seq   int
	Err   string
	Frag  celltree.Fragment
	Stats core.Stats
	Sched *core.SchedStats
}

// encodeFrame gobs v into a self-contained payload: a fresh encoder per
// frame, so the payload carries its own type descriptors and can be
// replayed verbatim to any number of workers (the once-encoded instance
// buffer depends on this).
func encodeFrame(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeFrame writes a length-prefixed payload (4-byte big-endian length,
// then the gob bytes) and returns the total bytes on the wire.
func writeFrame(w io.Writer, payload []byte) (int64, error) {
	if len(payload) > maxFrameBytes {
		return 0, fmt.Errorf("dist: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(payload); err != nil {
		return 0, err
	}
	return int64(4 + len(payload)), nil
}

// readFrame reads one length-prefixed payload. io.EOF (clean, at a frame
// boundary) means the peer closed the stream deliberately.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("dist: reading frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("dist: frame length %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("dist: reading %d-byte frame: %w", n, err)
	}
	return payload, nil
}

// decodeFrame ungobs a self-contained payload into a fresh zero value —
// fresh because gob omits zero-valued fields, so decoding into a reused
// struct would leak the previous frame's contents into this one.
func decodeFrame[T any](payload []byte) (*T, error) {
	v := new(T)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(v); err != nil {
		return nil, fmt.Errorf("dist: decoding frame: %w", err)
	}
	return v, nil
}

// relBytes converts a prescreen classification to its wire form (one
// byte per user) and back. geom.Relation fits a byte by construction.
func relBytes(rel []geom.Relation) []byte {
	out := make([]byte, len(rel))
	for i, r := range rel {
		out[i] = byte(r)
	}
	return out
}

func bytesRel(b []byte) []geom.Relation {
	out := make([]geom.Relation, len(b))
	for i, v := range b {
		out[i] = geom.Relation(v)
	}
	return out
}
