package dist

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"mir/internal/core"
	"mir/internal/data"
)

// TestMain doubles this test binary as the shard worker: the pool
// spawns os.Executable() with the worker env marker set, so every test
// here exercises a worker built from the exact tree under test — no
// separate binary to stage or skew.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

func testInstance(t *testing.T, seed int64, nP, nU, d, k int) *core.Instance {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps := data.Independent(rng, nP, d)
	us := data.WithK(data.ClusteredUsers(rng, nU, d, 3, 0.08), k)
	inst, err := core.NewInstance(ps, us)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// scrubStats zeroes the counters outside the executor byte-identity
// contract: the scheduling-sensitive pair and the transport counters.
func scrubStats(s core.Stats) core.Stats {
	s.StealCount = 0
	s.MaxFrontier = 0
	s.DispatchedShards = 0
	s.RespawnedWorkers = 0
	s.FallbackInProcess = 0
	s.ShippedBytes = 0
	return s
}

// requireIdentical asserts the two regions are byte-identical: same
// cells in the same order, every halfspace coefficient and MBB corner
// bit-for-bit equal, same ShardCells, and (scrubbed) equal Stats.
func requireIdentical(t *testing.T, tag string, want, got *core.Region) {
	t.Helper()
	if want.Dim != got.Dim || want.M != got.M {
		t.Fatalf("%s: shape mismatch: dim %d/%d m %d/%d", tag, want.Dim, got.Dim, want.M, got.M)
	}
	if len(want.Cells) != len(got.Cells) {
		t.Fatalf("%s: %d cells, want %d", tag, len(got.Cells), len(want.Cells))
	}
	for i := range want.Cells {
		wc, gc := want.Cells[i], got.Cells[i]
		if len(wc.Hs) != len(gc.Hs) {
			t.Fatalf("%s: cell %d has %d halfspaces, want %d", tag, i, len(gc.Hs), len(wc.Hs))
		}
		for j := range wc.Hs {
			if math.Float64bits(wc.Hs[j].T) != math.Float64bits(gc.Hs[j].T) {
				t.Fatalf("%s: cell %d hs %d: T %v != %v", tag, i, j, gc.Hs[j].T, wc.Hs[j].T)
			}
			for d := range wc.Hs[j].W {
				if math.Float64bits(wc.Hs[j].W[d]) != math.Float64bits(gc.Hs[j].W[d]) {
					t.Fatalf("%s: cell %d hs %d coord %d: %v != %v", tag, i, j, d, gc.Hs[j].W[d], wc.Hs[j].W[d])
				}
			}
		}
		for s := 0; s < 2; s++ {
			for d := range want.MBBs[i][s] {
				if math.Float64bits(want.MBBs[i][s][d]) != math.Float64bits(got.MBBs[i][s][d]) {
					t.Fatalf("%s: cell %d MBB corner mismatch", tag, i)
				}
			}
		}
	}
	if len(want.ShardCells) != len(got.ShardCells) {
		t.Fatalf("%s: ShardCells %v, want %v", tag, got.ShardCells, want.ShardCells)
	}
	for i := range want.ShardCells {
		if want.ShardCells[i] != got.ShardCells[i] {
			t.Fatalf("%s: ShardCells %v, want %v", tag, got.ShardCells, want.ShardCells)
		}
	}
	if sw, sg := scrubStats(want.Stats), scrubStats(got.Stats); sw != sg {
		t.Fatalf("%s: stats diverge:\n got %+v\nwant %+v", tag, sg, sw)
	}
}

// TestProcPoolByteIdentical is the acceptance property: for every shard
// count and every pool worker count, the multi-process build merges to a
// region byte-identical to the in-process executor's, with identical
// algorithmic stats.
func TestProcPoolByteIdentical(t *testing.T) {
	inst := testInstance(t, 71, 300, 24, 3, 5)
	m := 12
	for _, shards := range []int{2, 4, 8} {
		opts := core.Options{Workers: 1, Shards: shards}
		want, err := InProcess{}.BuildRegion(inst, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, pw := range []int{1, 2, 4, 8} {
			pool := &ProcPool{Workers: pw}
			got, err := pool.BuildRegion(inst, m, opts)
			if err != nil {
				t.Fatalf("shards=%d pool=%d: %v", shards, pw, err)
			}
			requireIdentical(t, fmt.Sprintf("shards=%d pool=%d", shards, pw), want, got)
			info := pool.Info()
			if info.DispatchedShards != shards || info.FallbackInProcess != 0 {
				t.Fatalf("shards=%d pool=%d: dispatched %d fallback %d, want %d/0",
					shards, pw, info.DispatchedShards, info.FallbackInProcess, shards)
			}
			if got.Stats.DispatchedShards != shards || got.Stats.ShippedBytes <= 0 {
				t.Fatalf("shards=%d pool=%d: transport stats not surfaced: %+v", shards, pw, info)
			}
			if want.Stats.DispatchedShards != 0 || want.Stats.ShippedBytes != 0 {
				t.Fatalf("in-process build reported transport counters: %+v", want.Stats)
			}
		}
	}
}

// TestProcPoolParallelWorkersIdentical covers the frontier interaction:
// shard builds running Workers>1 inside each worker process still merge
// byte-identically (only the scheduling-sensitive counters may move).
func TestProcPoolParallelWorkersIdentical(t *testing.T) {
	inst := testInstance(t, 72, 300, 24, 3, 5)
	m := 12
	opts := core.Options{Workers: 4, Shards: 4}
	want, err := InProcess{}.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := &ProcPool{Workers: 2}
	got, err := pool.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "workers=4 shards=4", want, got)
}

// TestDistSmokeIdentity is the small matrix `make dist-smoke` runs under
// the race detector: shards 2 and 4 through a 2-process pool.
func TestDistSmokeIdentity(t *testing.T) {
	inst := testInstance(t, 73, 200, 16, 3, 4)
	m := 8
	for _, shards := range []int{2, 4} {
		opts := core.Options{Workers: 1, Shards: shards}
		want, err := InProcess{}.BuildRegion(inst, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		pool := &ProcPool{Workers: 2}
		got, err := pool.BuildRegion(inst, m, opts)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		requireIdentical(t, fmt.Sprintf("smoke shards=%d", shards), want, got)
	}
}

// TestDistSmokeCrashRetry injects a crash into shard 1's first dispatch:
// the worker dies mid-shard, the pool respawns and retries, and the
// merged region is byte-identical to the in-process build — the
// respawn visible only in the transport counters.
func TestDistSmokeCrashRetry(t *testing.T) {
	inst := testInstance(t, 74, 200, 16, 3, 4)
	m := 8
	opts := core.Options{Workers: 1, Shards: 4}
	want, err := InProcess{}.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := &ProcPool{Workers: 2, testCrashSeq: 2}
	got, err := pool.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "crash-retry", want, got)
	info := pool.Info()
	if info.RespawnedWorkers < 1 {
		t.Fatalf("no respawn recorded after injected crash: %+v", info)
	}
	if info.DispatchedShards != 4 || info.FallbackInProcess != 0 {
		t.Fatalf("crashed shard not retried through a worker: %+v", info)
	}
	if got.Stats.RespawnedWorkers != info.RespawnedWorkers {
		t.Fatalf("respawns not surfaced in Stats: %d != %d", got.Stats.RespawnedWorkers, info.RespawnedWorkers)
	}
}

// TestProcPoolTimeoutRespawn injects a hang: the shard times out, the
// worker is killed and replaced, and the retry succeeds.
func TestProcPoolTimeoutRespawn(t *testing.T) {
	inst := testInstance(t, 75, 200, 16, 3, 4)
	m := 8
	opts := core.Options{Workers: 1, Shards: 2}
	want, err := InProcess{}.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := &ProcPool{Workers: 2, ShardTimeout: 2 * time.Second, testHangSeq: 1}
	got, err := pool.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "timeout-respawn", want, got)
	info := pool.Info()
	if info.RespawnedWorkers < 1 || info.DispatchedShards != 2 {
		t.Fatalf("hung shard not recovered through a worker: %+v", info)
	}
}

// TestProcPoolSpawnFallback points the pool at a nonexistent worker
// binary: every shard degrades to the in-process seam, the result is
// still byte-identical, and the degradation is recorded in Stats.
func TestProcPoolSpawnFallback(t *testing.T) {
	inst := testInstance(t, 76, 200, 16, 3, 4)
	m := 8
	opts := core.Options{Workers: 1, Shards: 4}
	want, err := InProcess{}.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := &ProcPool{Workers: 2, WorkerBin: "/nonexistent/mir-dist-worker"}
	got, err := pool.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "spawn-fallback", want, got)
	info := pool.Info()
	if info.FallbackInProcess != 4 || info.DispatchedShards != 0 {
		t.Fatalf("expected full in-process degradation: %+v", info)
	}
	if info.SpawnFailures == 0 {
		t.Fatalf("spawn failures not counted: %+v", info)
	}
	if got.Stats.FallbackInProcess != 4 {
		t.Fatalf("fallback not surfaced in Stats: %+v", got.Stats)
	}
}

// TestProcPoolSingleShard pins that a build resolving to one shard runs
// in-process directly (nothing to distribute) with zero transport
// counters — byte-identical to the historical single-tree build.
func TestProcPoolSingleShard(t *testing.T) {
	inst := testInstance(t, 77, 200, 16, 3, 4)
	m := 8
	opts := core.Options{Workers: 1}
	want, err := InProcess{}.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	pool := &ProcPool{Workers: 2}
	got, err := pool.BuildRegion(inst, m, opts)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "single-shard", want, got)
	if info := pool.Info(); info.ShippedBytes != 0 || info.DispatchedShards != 0 {
		t.Fatalf("single-shard build shipped work: %+v", info)
	}
}

// TestProcPoolInstanceShippedOncePerWorker pins the satellite contract:
// the instance payload is encoded once and shipped once per worker
// process, so a 2-process build ships more than a 1-process build of
// the same instance by exactly one instance payload (job frames equal).
func TestProcPoolInstanceShippedOncePerWorker(t *testing.T) {
	inst := testInstance(t, 78, 200, 16, 3, 4)
	m := 8
	opts := core.Options{Workers: 1, Shards: 4}
	ship := func(pw int) int64 {
		pool := &ProcPool{Workers: pw}
		if _, err := pool.BuildRegion(inst, m, opts); err != nil {
			t.Fatal(err)
		}
		info := pool.Info()
		if info.DispatchedShards != 4 {
			t.Fatalf("pool=%d: %+v", pw, info)
		}
		return info.ShippedBytes
	}
	one, two := ship(1), ship(2)
	payload, err := encodeFrame(&instanceFrame{
		Proto: protoVersion, Products: inst.Products, Users: inst.Users, Opts: opts, M: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	instBytes := int64(4 + len(payload))
	if two-one != instBytes {
		t.Fatalf("2-worker build shipped %d more bytes than 1-worker; want exactly one instance payload (%d)",
			two-one, instBytes)
	}
}

// TestWorkerProtocolVersion pins that a worker rejects an instance frame
// from a different protocol version instead of computing with it.
func TestWorkerProtocolVersion(t *testing.T) {
	payload, err := encodeFrame(&instanceFrame{Proto: protoVersion + 1})
	if err != nil {
		t.Fatal(err)
	}
	var in, out bytes.Buffer
	if _, err := writeFrame(&in, payload); err != nil {
		t.Fatal(err)
	}
	if code := WorkerMain(&in, &out); code == 0 {
		t.Fatal("worker accepted a mismatched protocol version")
	}
	if out.Len() != 0 {
		t.Fatalf("worker wrote %d bytes before rejecting the handshake", out.Len())
	}
}
