//go:build linux

package dist

import (
	"os"
	"syscall"
)

// processMaxRSSBytes returns an exited process's peak resident set in
// bytes (Linux getrusage reports KiB), or 0 when unavailable.
func processMaxRSSBytes(st *os.ProcessState) int64 {
	if st == nil {
		return 0
	}
	ru, ok := st.SysUsage().(*syscall.Rusage)
	if !ok || ru == nil {
		return 0
	}
	return int64(ru.Maxrss) * 1024
}
