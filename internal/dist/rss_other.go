//go:build !linux

package dist

import "os"

// processMaxRSSBytes reports 0 on platforms where rusage accounting is
// not wired up; the RSS bench gate only runs where Linux reports it.
func processMaxRSSBytes(st *os.ProcessState) int64 { return 0 }
