package dist

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sync"
	"time"

	"mir/internal/core"
	"mir/internal/geom"
	"mir/internal/par"
)

// ProcPool is the out-of-process shard executor: it forks worker
// processes (its own executable by default, re-entered through
// MaybeWorker), ships each the instance once, then feeds them shard
// jobs — one outstanding job per worker — and merges the streamed
// fragments in shard-ID order.
//
// Failure model: a worker that crashes, hangs past ShardTimeout, or
// breaks protocol is killed and replaced, and its shard is re-dispatched
// (shard builds are pure functions of instance+box, so a retry is safe
// and byte-identical); after MaxAttempts worker tries the shard is
// computed in-process. If no worker can be spawned at all the whole
// build degrades to the in-process seam shard by shard. Every one of
// these events is counted in ExecInfo and surfaced in the merged
// region's transport Stats.
type ProcPool struct {
	// WorkerBin is the worker executable; "" uses os.Executable() (the
	// parent re-entered as a worker via MaybeWorker, so parent and
	// worker are always the same build).
	WorkerBin string
	// Workers is the number of worker processes; 0 defaults to
	// min(shards, max(2, NumCPU)).
	Workers int
	// ShardTimeout bounds one shard dispatch; 0 defaults to 2 minutes.
	ShardTimeout time.Duration
	// MaxAttempts is the number of worker tries per shard before the
	// pool computes it in-process; 0 defaults to 2 (one retry).
	MaxAttempts int

	mu   sync.Mutex
	info ExecInfo

	// Fault-injection hooks (tests only): inject a crash / hang into the
	// first dispatch attempt of shard seq-1 (0 = off).
	testCrashSeq int
	testHangSeq  int
}

// Name implements ShardExecutor.
func (p *ProcPool) Name() string { return "procpool" }

// Info returns the execution profile of the last BuildRegion.
func (p *ProcPool) Info() ExecInfo {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.info
}

// BuildRegion implements ShardExecutor. Builds resolving to a single
// shard run in-process directly — there is no parallelism to ship — and
// report zero transport counters, exactly like InProcess.
func (p *ProcPool) BuildRegion(inst *core.Instance, m int, opts core.Options) (*core.Region, error) {
	shards := core.EffectiveShards(opts)
	p.mu.Lock()
	p.info = ExecInfo{Shards: shards}
	p.mu.Unlock()
	if shards <= 1 {
		return core.AA(inst, m, opts)
	}
	if err := inst.CheckM(m); err != nil {
		return nil, err
	}
	boxes := core.PlanShards(inst, m, shards)
	rels := make([][]geom.Relation, shards)
	par.For(shards, par.Resolve(opts.Workers), func(s int) {
		rels[s] = core.PrescreenShard(inst, boxes[s])
	})
	// The instance is encoded exactly once per build; the self-contained
	// payload is replayed verbatim to every worker (re)spawned.
	instPayload, err := encodeFrame(&instanceFrame{
		Proto:    protoVersion,
		Products: inst.Products,
		Users:    inst.Users,
		Opts:     opts,
		M:        m,
	})
	if err != nil {
		return nil, fmt.Errorf("dist: encoding instance: %w", err)
	}
	nw := p.Workers
	if nw <= 0 {
		nw = max(2, runtime.NumCPU())
	}
	if nw > shards {
		nw = shards
	}
	b := &poolBuild{
		p:           p,
		inst:        inst,
		m:           m,
		opts:        opts,
		boxes:       boxes,
		rels:        rels,
		instPayload: instPayload,
		frags:       make([]*core.Region, shards),
		timeout:     p.ShardTimeout,
		maxAttempts: p.MaxAttempts,
	}
	if b.timeout <= 0 {
		b.timeout = 2 * time.Minute
	}
	if b.maxAttempts <= 0 {
		b.maxAttempts = 2
	}
	p.mu.Lock()
	p.info.PoolWorkers = nw
	p.mu.Unlock()

	jobs := make(chan int)
	go func() {
		for s := 0; s < shards; s++ {
			jobs <- s
		}
		close(jobs)
	}()
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.workerLoop(jobs)
		}()
	}
	wg.Wait()

	reg := core.MergeShardFragments(inst, m, b.frags)
	info := p.Info()
	reg.Stats.DispatchedShards = info.DispatchedShards
	reg.Stats.RespawnedWorkers = info.RespawnedWorkers
	reg.Stats.FallbackInProcess = info.FallbackInProcess
	reg.Stats.ShippedBytes = info.ShippedBytes
	return reg, nil
}

// poolBuild is the per-BuildRegion state shared by the worker-slot
// goroutines. frags is written disjointly (one index per shard).
type poolBuild struct {
	p           *ProcPool
	inst        *core.Instance
	m           int
	opts        core.Options
	boxes       []core.ShardBox
	rels        [][]geom.Relation
	instPayload []byte
	frags       []*core.Region
	timeout     time.Duration
	maxAttempts int
}

// workerLoop runs one worker slot: it owns at most one live worker
// process at a time and pulls shard indices until the queue drains. The
// process persists across shards (the instance ships once); it is only
// replaced after a failure.
func (b *poolBuild) workerLoop(jobs <-chan int) {
	var wk *workerProc
	spawned := 0
	defer func() {
		if wk != nil {
			b.retire(wk, false)
		}
	}()
	for seq := range jobs {
		b.frags[seq] = b.buildShard(&wk, &spawned, seq)
	}
}

// buildShard produces shard seq's fragment: through a worker process if
// possible, in-process after retries or when no worker can be spawned.
// It never fails — the in-process path is the same pure function.
func (b *poolBuild) buildShard(wk **workerProc, spawned *int, seq int) *core.Region {
	for attempt := 0; attempt < b.maxAttempts; attempt++ {
		if *wk == nil {
			w, err := b.spawn()
			if err != nil {
				fmt.Fprintf(os.Stderr, "mir dist: spawning worker: %v (computing shard %d in-process)\n", err, seq)
				b.note(func(i *ExecInfo) { i.SpawnFailures++ })
				break
			}
			*spawned++
			if *spawned > 1 {
				b.note(func(i *ExecInfo) { i.RespawnedWorkers++ })
			}
			*wk = w
		}
		frag, err := b.dispatch(*wk, seq, attempt)
		if err == nil {
			b.note(func(i *ExecInfo) { i.DispatchedShards++ })
			return frag
		}
		fmt.Fprintf(os.Stderr, "mir dist: shard %d attempt %d: %v\n", seq, attempt, err)
		b.retire(*wk, true)
		*wk = nil
	}
	b.note(func(i *ExecInfo) { i.FallbackInProcess++ })
	return core.RunShardPrescreened(b.inst, b.m, b.opts, b.boxes[seq], b.rels[seq])
}

// dispatch ships one job frame and waits for its result or the timeout.
func (b *poolBuild) dispatch(wk *workerProc, seq, attempt int) (*core.Region, error) {
	job := jobFrame{
		Seq:   seq,
		Lo:    b.boxes[seq].Lo,
		Hi:    b.boxes[seq].Hi,
		ID:    b.boxes[seq].ID,
		Depth: b.boxes[seq].Depth,
		Rel:   relBytes(b.rels[seq]),
	}
	if attempt == 0 {
		job.TestCrash = b.p.testCrashSeq == seq+1
		job.TestHang = b.p.testHangSeq == seq+1
	}
	payload, err := encodeFrame(&job)
	if err != nil {
		return nil, fmt.Errorf("encoding job: %w", err)
	}
	n, err := writeFrame(wk.stdin, payload)
	b.note(func(i *ExecInfo) { i.ShippedBytes += n })
	if err != nil {
		return nil, fmt.Errorf("shipping job: %w", err)
	}
	timer := time.NewTimer(b.timeout)
	defer timer.Stop()
	select {
	case r, ok := <-wk.results:
		if !ok {
			return nil, fmt.Errorf("worker exited mid-shard")
		}
		if r.err != nil {
			return nil, r.err
		}
		res := r.frame
		if res.Err != "" {
			return nil, fmt.Errorf("worker: %s", res.Err)
		}
		if res.Seq != seq {
			return nil, fmt.Errorf("worker answered shard %d, asked %d", res.Seq, seq)
		}
		cells, mbbs, err := res.Frag.Decode()
		if err != nil {
			return nil, err
		}
		return &core.Region{
			Dim:   b.inst.Dim,
			M:     b.m,
			Cells: cells,
			MBBs:  mbbs,
			Stats: res.Stats,
			Sched: res.Sched,
		}, nil
	case <-timer.C:
		return nil, fmt.Errorf("shard timed out after %v", b.timeout)
	}
}

func (b *poolBuild) note(f func(*ExecInfo)) {
	b.p.mu.Lock()
	f(&b.p.info)
	b.p.mu.Unlock()
}

// workerProc is one live worker process with its reader goroutine.
type workerProc struct {
	cmd        *exec.Cmd
	stdin      io.WriteCloser
	results    chan workerResult
	readerDone chan struct{}
}

type workerResult struct {
	frame *resultFrame
	err   error
}

// spawn starts a worker process and ships it the instance payload.
func (b *poolBuild) spawn() (*workerProc, error) {
	bin := b.p.WorkerBin
	if bin == "" {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("resolving worker binary: %w", err)
		}
		bin = exe
	}
	cmd := exec.Command(bin)
	cmd.Env = append(os.Environ(), workerEnv+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	wk := &workerProc{
		cmd:   cmd,
		stdin: stdin,
		// Buffered: at most one job is outstanding per worker, so the
		// reader never blocks publishing; the slack absorbs stray frames
		// from a worker being retired after a timeout.
		results:    make(chan workerResult, 16),
		readerDone: make(chan struct{}),
	}
	go func() {
		defer close(wk.readerDone)
		defer close(wk.results)
		for {
			payload, err := readFrame(stdout)
			if err != nil {
				return // EOF or broken pipe: channel close signals it
			}
			res, err := decodeFrame[resultFrame](payload)
			if err != nil {
				wk.results <- workerResult{err: err}
				return
			}
			wk.results <- workerResult{frame: res}
		}
	}()
	n, err := writeFrame(stdin, b.instPayload)
	b.note(func(i *ExecInfo) { i.ShippedBytes += n })
	if err != nil {
		b.retire(wk, true)
		return nil, fmt.Errorf("shipping instance: %w", err)
	}
	return wk, nil
}

// retire shuts a worker down — gracefully (close stdin, let it exit) or
// by force — waits it out, and records its peak RSS.
func (b *poolBuild) retire(wk *workerProc, kill bool) {
	wk.stdin.Close()
	if kill {
		wk.cmd.Process.Kill()
	}
	<-wk.readerDone
	wk.cmd.Wait()
	if rss := processMaxRSSBytes(wk.cmd.ProcessState); rss > 0 {
		b.note(func(i *ExecInfo) {
			if rss > i.MaxWorkerRSSBytes {
				i.MaxWorkerRSSBytes = rss
			}
		})
	}
}
