package dist

import (
	"fmt"
	"io"
	"os"

	"mir/internal/celltree"
	"mir/internal/core"
)

// workerEnv marks a process as a shard worker. The pool spawns its own
// executable (or an explicit worker binary) with this set, so the worker
// is always built from the same tree as the parent — there is no
// separate binary to version-skew against unless the caller asks for
// one.
const workerEnv = "MIR_DIST_WORKER"

// IsWorker reports whether this process was spawned as a shard worker.
func IsWorker() bool { return os.Getenv(workerEnv) == "1" }

// MaybeWorker turns the current process into a shard worker if it was
// spawned as one, never returning in that case. Call it first thing in
// main() (and in TestMain for packages whose test binary doubles as the
// worker) — before flag parsing, so the worker protocol stays
// independent of the host binary's CLI surface.
func MaybeWorker() {
	if IsWorker() {
		os.Exit(WorkerMain(os.Stdin, os.Stdout))
	}
}

// WorkerMain runs the shard-worker protocol: read the instance frame,
// rebuild the instance, then serve job frames until stdin closes.
// Anything the worker wants to log goes to stderr; stdout carries only
// result frames. Returns the process exit code.
func WorkerMain(in io.Reader, out io.Writer) int {
	if err := serveWorker(in, out); err != nil {
		fmt.Fprintf(os.Stderr, "mir dist worker: %v\n", err)
		return 1
	}
	return 0
}

func serveWorker(in io.Reader, out io.Writer) error {
	payload, err := readFrame(in)
	if err != nil {
		return fmt.Errorf("reading instance frame: %w", err)
	}
	hello, err := decodeFrame[instanceFrame](payload)
	if err != nil {
		return fmt.Errorf("decoding instance frame: %w", err)
	}
	if hello.Proto != protoVersion {
		return fmt.Errorf("protocol version %d, worker speaks %d (parent and worker built from different trees?)", hello.Proto, protoVersion)
	}
	// Rebuild the instance from raw inputs. Construction is deterministic
	// and property-pinned byte-identical across worker counts and index
	// settings, so the rebuilt halfspaces and thresholds match the
	// parent's bit for bit. The rebuild's preprocessing effort is charged
	// to this process's Prep, which per-shard fragments never include —
	// the parent charges its own Prep once at merge — so re-preprocessing
	// here is invisible in the merged stats.
	inst, err := core.NewInstanceOpts(hello.Products, hello.Users, hello.Opts)
	if err != nil {
		return fmt.Errorf("rebuilding instance: %w", err)
	}
	if err := inst.CheckM(hello.M); err != nil {
		return err
	}
	for {
		payload, err := readFrame(in)
		if err == io.EOF {
			return nil // parent closed the stream: clean shutdown
		}
		if err != nil {
			return fmt.Errorf("reading job frame: %w", err)
		}
		job, err := decodeFrame[jobFrame](payload)
		if err != nil {
			return fmt.Errorf("decoding job frame: %w", err)
		}
		if job.TestCrash {
			// Fault injection: die between accepting the job and producing
			// its result, exactly where a real crash is hardest (the parent
			// must detect the dead pipe and re-dispatch the shard).
			os.Exit(3)
		}
		if job.TestHang {
			select {} // fault injection: hold the job forever (timeout path)
		}
		res := runJob(inst, hello.M, hello.Opts, job)
		frame, err := encodeFrame(res)
		if err != nil {
			return fmt.Errorf("encoding result for shard %d: %w", job.Seq, err)
		}
		if _, err := writeFrame(out, frame); err != nil {
			return fmt.Errorf("writing result for shard %d: %w", job.Seq, err)
		}
	}
}

func runJob(inst *core.Instance, m int, opts core.Options, job *jobFrame) resultFrame {
	res := resultFrame{Seq: job.Seq}
	if len(job.Rel) != len(inst.Users) {
		res.Err = fmt.Sprintf("job %d: %d prescreen entries for %d users", job.Seq, len(job.Rel), len(inst.Users))
		return res
	}
	box := core.ShardBox{Lo: job.Lo, Hi: job.Hi, ID: job.ID, Depth: job.Depth}
	frag := core.RunShardPrescreened(inst, m, opts, box, bytesRel(job.Rel))
	enc, err := celltree.EncodeFragment(frag.Dim, frag.Cells, frag.MBBs)
	if err != nil {
		res.Err = fmt.Sprintf("job %d: %v", job.Seq, err)
		return res
	}
	res.Frag = enc
	res.Stats = frag.Stats
	res.Sched = frag.Sched
	return res
}
