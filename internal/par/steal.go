package par

import (
	"context"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
)

// This file implements the task-parallel frontier scheduler behind AA's
// arrangement construction: N workers, each owning a local priority queue,
// processing independent tasks and stealing from peers when idle.
//
// The scheduler makes no ordering promises beyond "every pushed task runs
// exactly once". It is therefore only appropriate for task systems whose
// outcome commutes — where processing order changes wall-clock time and
// scheduling counters, but never results. AA's mIR mode has exactly this
// property (a cell's fate depends only on its own payload); the caller is
// responsible for ensuring it.
//
// Priorities shape the traversal, not the answer: each worker pops its
// locally best (smallest-priority) task, which keeps the frontier biased
// toward cells closest to a decision and hence small. Steals take the
// back half of the victim's backing array — a trailing slice of a binary
// heap is cheap to detach (the remaining prefix is still a heap) and
// deliberately grabs the victim's *worse* half, leaving the near-decision
// cells with the worker that has them cached.

// FrontierStats describes one frontier execution. All fields except
// Workers are timing-dependent: they vary run to run and across worker
// counts, unlike the task results themselves. They exist for
// observability (scaling diagnosis), not for determinism contracts.
type FrontierStats struct {
	// Workers is the number of worker goroutines the frontier ran with.
	Workers int
	// Steals counts successful steal operations (not tasks moved).
	Steals int
	// MaxPending is the high-water mark of in-flight tasks (queued +
	// running), i.e. the widest the frontier ever got.
	MaxPending int
	// PerWorker[i] is the number of tasks worker i executed.
	PerWorker []int
}

// FrontierWorker is the per-worker handle passed to the task callback.
type FrontierWorker[T any] struct {
	f        *frontier[T]
	id       int
	executed int
}

// ID returns the worker's index in [0, workers).
func (fw *FrontierWorker[T]) ID() int { return fw.id }

// Push enqueues a new task on the calling worker's local queue (smaller
// priorities pop first locally). Idle peers may steal it.
func (fw *FrontierWorker[T]) Push(t T, pri float64) { fw.f.push(fw.id, t, pri) }

// RunFrontier executes a priority-ordered task-parallel frontier: the
// seed tasks are distributed round-robin over workers-many local queues,
// and each worker loops {pop local best | steal from a peer | park}
// running run(worker, task) until every task — seeds and tasks pushed
// during processing alike — has been executed. It returns once the
// frontier is empty and all workers have exited.
//
// workers is taken as given (callers resolve it first); workers <= 1 runs
// every task inline on the calling goroutine in strict priority order.
func RunFrontier[T any](workers int, seeds []T, pris []float64, run func(fw *FrontierWorker[T], task T)) FrontierStats {
	if len(seeds) != len(pris) {
		panic("par: RunFrontier seeds/pris length mismatch")
	}
	if workers <= 1 {
		return runFrontierInline(seeds, pris, run)
	}
	f := &frontier[T]{
		qs:  make([]frontierQueue[T], workers),
		run: run,
	}
	f.cond = sync.NewCond(&f.mu)
	f.pending.Store(int64(len(seeds)))
	f.queued.Store(int64(len(seeds)))
	f.maxPending.Store(int64(len(seeds)))
	for i := range seeds {
		f.qs[i%workers].push(seeds[i], pris[i])
	}
	var wg sync.WaitGroup
	workerStats := make([]int, workers)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			workerStats[w] = f.work(w)
		}(w)
	}
	wg.Wait()
	return FrontierStats{
		Workers:    workers,
		Steals:     int(f.steals.Load()),
		MaxPending: int(f.maxPending.Load()),
		PerWorker:  workerStats,
	}
}

// runFrontierInline is the single-worker degenerate case: one heap, strict
// best-first order, no synchronization — the same execution a sequential
// caller-owned loop would perform.
func runFrontierInline[T any](seeds []T, pris []float64, run func(fw *FrontierWorker[T], task T)) FrontierStats {
	f := &frontier[T]{qs: make([]frontierQueue[T], 1), run: run}
	q := &f.qs[0]
	for i := range seeds {
		q.push(seeds[i], pris[i])
	}
	fw := &FrontierWorker[T]{f: f, id: 0}
	max := len(q.items)
	for {
		t, _, ok := q.pop()
		if !ok {
			break
		}
		run(fw, t)
		fw.executed++
		if n := len(q.items) + 1; n > max {
			max = n
		}
	}
	return FrontierStats{Workers: 1, MaxPending: max, PerWorker: []int{fw.executed}}
}

// frontier is the shared scheduler state.
type frontier[T any] struct {
	qs  []frontierQueue[T]
	run func(fw *FrontierWorker[T], task T)

	// pending counts tasks not yet fully executed (queued or running);
	// the frontier terminates when it reaches zero. queued counts tasks
	// sitting in some local queue — the cheap "is there anything to
	// steal?" signal parked workers re-check.
	pending atomic.Int64
	queued  atomic.Int64

	maxPending atomic.Int64
	steals     atomic.Int64

	// sleepers is the number of workers at or past the pre-park recheck;
	// pushers only take the park mutex when it is non-zero, keeping the
	// push fast path lock-free beyond the local queue.
	sleepers atomic.Int32
	mu       sync.Mutex
	cond     *sync.Cond
}

// frontierQueue is one worker's local priority queue: a binary min-heap
// behind a mutex. The owner pops the front; thieves detach the back half
// of the backing array (any suffix removal preserves the heap property of
// the remaining prefix).
type frontierQueue[T any] struct {
	mu    sync.Mutex
	items []frontierItem[T]
}

type frontierItem[T any] struct {
	v   T
	pri float64
}

// push enqueues locked.
func (q *frontierQueue[T]) push(v T, pri float64) {
	q.items = append(q.items, frontierItem[T]{v, pri})
	i := len(q.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if q.items[p].pri <= q.items[i].pri {
			break
		}
		q.items[p], q.items[i] = q.items[i], q.items[p]
		i = p
	}
}

// pop removes the locked queue's minimum-priority item.
func (q *frontierQueue[T]) pop() (T, float64, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, 0, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = frontierItem[T]{} // release the popped task's reference
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && q.items[l].pri < q.items[small].pri {
			small = l
		}
		if r < last && q.items[r].pri < q.items[small].pri {
			small = r
		}
		if small == i {
			break
		}
		q.items[i], q.items[small] = q.items[small], q.items[i]
		i = small
	}
	return top.v, top.pri, true
}

// detachHalf removes and returns the back half (at least one item) of the
// locked queue's backing array. The remaining prefix is still a valid
// heap, so the victim needs no re-heapify.
func (q *frontierQueue[T]) detachHalf() []frontierItem[T] {
	n := len(q.items)
	if n == 0 {
		return nil
	}
	keep := n / 2
	stolen := make([]frontierItem[T], n-keep)
	copy(stolen, q.items[keep:])
	for i := keep; i < n; i++ {
		q.items[i] = frontierItem[T]{}
	}
	q.items = q.items[:keep]
	return stolen
}

// push enqueues a task on worker w's queue and wakes a parked worker if
// any.
func (f *frontier[T]) push(w int, v T, pri float64) {
	p := f.pending.Add(1)
	for {
		old := f.maxPending.Load()
		if p <= old || f.maxPending.CompareAndSwap(old, p) {
			break
		}
	}
	q := &f.qs[w]
	q.mu.Lock()
	q.push(v, pri)
	q.mu.Unlock()
	f.queued.Add(1)
	if f.sleepers.Load() > 0 {
		// Serialize with the sleeper's pre-park recheck (see park): taking
		// and releasing the park mutex guarantees the Signal cannot slip
		// between a sleeper's last queue scan and its Wait.
		f.mu.Lock()
		f.mu.Unlock() //nolint:staticcheck // empty critical section is the point
		f.cond.Signal()
	}
}

// popLocal takes the best task from the worker's own queue.
func (f *frontier[T]) popLocal(w int) (T, float64, bool) {
	q := &f.qs[w]
	q.mu.Lock()
	v, pri, ok := q.pop()
	q.mu.Unlock()
	if ok {
		f.queued.Add(-1)
	}
	return v, pri, ok
}

// steal scans the peers round-robin from w+1 and moves the back half of
// the first non-empty queue into w's own, returning the best of the loot.
func (f *frontier[T]) steal(w int) (T, float64, bool) {
	n := len(f.qs)
	for off := 1; off < n; off++ {
		victim := &f.qs[(w+off)%n]
		victim.mu.Lock()
		loot := victim.detachHalf()
		victim.mu.Unlock()
		if len(loot) == 0 {
			continue
		}
		f.steals.Add(1)
		own := &f.qs[w]
		own.mu.Lock()
		for _, it := range loot {
			own.push(it.v, it.pri)
		}
		v, pri, ok := own.pop()
		own.mu.Unlock()
		// The loot was already counted in queued (moving it between queues
		// is net zero); only the task popped for execution leaves the count.
		f.queued.Add(-1)
		return v, pri, ok
	}
	var zero T
	return zero, 0, false
}

// park blocks the worker until new work may exist or the frontier is
// done. It returns false when the frontier has terminated.
//
// Lost-wakeup safety: the worker publishes itself in sleepers *before*
// the final work recheck. A concurrent push either (a) completes its
// enqueue before our recheck reads queued — the recheck sees it — or
// (b) reads sleepers > 0 afterwards and then acquires the park mutex,
// which we hold until cond.Wait releases it, so its Signal lands while we
// are waiting.
func (f *frontier[T]) park() bool {
	f.mu.Lock()
	f.sleepers.Add(1)
	if f.pending.Load() == 0 {
		f.sleepers.Add(-1)
		f.mu.Unlock()
		return false
	}
	if f.queued.Load() > 0 {
		f.sleepers.Add(-1)
		f.mu.Unlock()
		return true
	}
	f.cond.Wait()
	f.sleepers.Add(-1)
	f.mu.Unlock()
	return f.pending.Load() > 0
}

// work is one worker's main loop; it returns the number of tasks the
// worker executed.
func (f *frontier[T]) work(w int) int {
	fw := &FrontierWorker[T]{f: f, id: w}
	base := pprof.Labels("mir_phase", "frontier", "mir_worker", strconv.Itoa(w))
	ctx := pprof.WithLabels(context.Background(), base)
	pprof.SetGoroutineLabels(ctx)
	stealCtx := pprof.WithLabels(context.Background(),
		pprof.Labels("mir_phase", "steal", "mir_worker", strconv.Itoa(w)))
	for {
		t, _, ok := f.popLocal(w)
		if !ok {
			// Hunting: tag the goroutine so profiles separate productive
			// frontier time from steal/idle time.
			pprof.SetGoroutineLabels(stealCtx)
			t, _, ok = f.steal(w)
			if !ok && f.park() {
				pprof.SetGoroutineLabels(ctx)
				continue
			}
			pprof.SetGoroutineLabels(ctx)
			if !ok {
				return fw.executed
			}
		}
		f.run(fw, t)
		fw.executed++
		if f.pending.Add(-1) == 0 {
			// Frontier drained: wake every parked worker so they observe
			// pending == 0 and exit. The empty critical section pairs with
			// park's publish-then-wait sequence.
			f.mu.Lock()
			f.mu.Unlock() //nolint:staticcheck
			f.cond.Broadcast()
		}
	}
}
