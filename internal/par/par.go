// Package par provides the worker-pool primitives behind the engine's
// multi-core execution layer: a Workers-option resolver shared by every
// layer of the stack, and a chunked index fan-out with deterministic
// assignment. The all-top-k preprocessing (internal/topk), instance
// construction, and AA's per-cell batch classification (internal/core)
// all fan their embarrassingly parallel loops through this package.
//
// Determinism contract: ForWorker partitions [0, n) into contiguous
// chunks with a fixed worker→range mapping, and callers write results
// into index-addressed slots. Output is therefore identical for every
// worker count; only wall-clock time changes. Per-worker accumulators
// (e.g. test counters) are merged by summation, which is
// order-independent, so merged counters are deterministic too.
package par

import (
	"runtime"
	"sync"
)

// Resolve maps an Options-style Workers value to a concrete parallelism
// degree: values below 1 select runtime.GOMAXPROCS(0) ("use every core"),
// 1 selects strictly sequential execution on the caller's goroutine, and
// larger values are taken as given.
func Resolve(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs fn(i) for every i in [0, n) across Resolve(workers) workers
// and blocks until every call has returned. See ForWorker for the
// scheduling and determinism guarantees.
func For(n, workers int, fn func(i int)) {
	ForWorker(n, workers, func(_, i int) { fn(i) })
}

// ForWorker fans the index range [0, n) across w = min(Resolve(workers), n)
// workers in contiguous chunks — worker id k handles [k·n/w, (k+1)·n/w) —
// and passes the worker id alongside each index, so callers can accumulate
// into per-worker state without locks. The chunk assignment is
// deterministic. With a single worker (or n <= 1) the loop runs inline on
// the caller's goroutine with no synchronization, reproducing the
// sequential execution exactly.
func ForWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func(k int) {
			defer wg.Done()
			for i := k * n / w; i < (k+1)*n/w; i++ {
				fn(k, i)
			}
		}(k)
	}
	wg.Wait()
}
