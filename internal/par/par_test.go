package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	for _, w := range []int{1, 2, 7} {
		if got := Resolve(w); got != w {
			t.Errorf("Resolve(%d) = %d, want %d", w, got, w)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 97} {
			hits := make([]int32, n)
			For(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForWorkerChunksAreContiguousAndDeterministic(t *testing.T) {
	const n, workers = 23, 4
	owner := make([]int, n)
	ForWorker(n, workers, func(w, i int) { owner[i] = w })
	// Chunked assignment: worker ids must be non-decreasing across the
	// index range, and every worker id below the cap must appear.
	seen := make(map[int]bool)
	for i := 1; i < n; i++ {
		if owner[i] < owner[i-1] {
			t.Fatalf("non-contiguous chunks: owner[%d]=%d < owner[%d]=%d",
				i, owner[i], i-1, owner[i-1])
		}
	}
	for _, w := range owner {
		seen[w] = true
	}
	if len(seen) != workers {
		t.Fatalf("expected %d distinct workers, saw %d", workers, len(seen))
	}
	// A second run must produce the identical assignment.
	again := make([]int, n)
	ForWorker(n, workers, func(w, i int) { again[w*0+i] = w })
	for i := range owner {
		if owner[i] != again[i] {
			t.Fatalf("chunk assignment not deterministic at index %d", i)
		}
	}
}

func TestForWorkerSingleWorkerRunsInline(t *testing.T) {
	// With workers=1 the indices must arrive strictly in order (inline
	// execution, no goroutines).
	var prev = -1
	ForWorker(10, 1, func(w, i int) {
		if w != 0 {
			t.Fatalf("worker id %d with a single worker", w)
		}
		if i != prev+1 {
			t.Fatalf("out-of-order index %d after %d", i, prev)
		}
		prev = i
	})
	if prev != 9 {
		t.Fatalf("visited %d indices, want 10", prev+1)
	}
}
