package par

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFrontierParallelRunsEveryTaskOnce checks the core contract: every
// seed and every task pushed during processing executes exactly once, for
// a range of worker counts.
func TestFrontierParallelRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		const seedN = 37
		const childrenPer = 3
		const depth = 3 // seeds spawn children, children spawn grandchildren, ...

		var mu sync.Mutex
		counts := make(map[int]int)

		type task struct {
			id    int
			level int
		}
		next := atomic.Int64{}
		next.Store(seedN)

		seeds := make([]task, seedN)
		pris := make([]float64, seedN)
		for i := range seeds {
			seeds[i] = task{id: i, level: 0}
			pris[i] = float64(seedN - i)
		}
		st := RunFrontier(workers, seeds, pris, func(fw *FrontierWorker[task], tk task) {
			mu.Lock()
			counts[tk.id]++
			mu.Unlock()
			if tk.level < depth {
				for c := 0; c < childrenPer; c++ {
					id := int(next.Add(1)) - 1
					fw.Push(task{id: id, level: tk.level + 1}, float64(id))
				}
			}
		})

		// seedN tasks at level 0, each spawning childrenPer at each of
		// `depth` further levels: a full childrenPer-ary expansion.
		want := 0
		per := seedN
		for l := 0; l <= depth; l++ {
			want += per
			per *= childrenPer
		}
		if len(counts) != want {
			t.Fatalf("workers=%d: executed %d distinct tasks, want %d", workers, len(counts), want)
		}
		for id, n := range counts {
			if n != 1 {
				t.Fatalf("workers=%d: task %d executed %d times", workers, id, n)
			}
		}
		if st.Workers != workers {
			t.Fatalf("workers=%d: stats.Workers=%d", workers, st.Workers)
		}
		total := 0
		for _, n := range st.PerWorker {
			total += n
		}
		if total != want {
			t.Fatalf("workers=%d: PerWorker sums to %d, want %d", workers, total, want)
		}
		if st.MaxPending < 1 {
			t.Fatalf("workers=%d: MaxPending=%d", workers, st.MaxPending)
		}
	}
}

// TestFrontierInlineOrderIsBestFirst pins the workers<=1 path to strict
// priority order — the same behaviour as a caller-owned sequential heap.
func TestFrontierInlineOrderIsBestFirst(t *testing.T) {
	seeds := []int{5, 1, 4, 2, 3}
	pris := []float64{5, 1, 4, 2, 3}
	var got []int
	RunFrontier(1, seeds, pris, func(fw *FrontierWorker[int], v int) {
		got = append(got, v)
		if v == 1 {
			// Pushed mid-run; must still be ordered among the remaining.
			fw.Push(0, 0.5)
		}
	})
	want := []int{1, 0, 2, 3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("position %d: got %v, want %v", i, got, want)
		}
	}
}

// TestFrontierStealHalfPreservesHeap exercises detachHalf directly: the
// victim's remaining prefix must still be a valid min-heap and the union
// of loot + remainder must equal the original contents.
func TestFrontierStealHalfPreservesHeap(t *testing.T) {
	var q frontierQueue[int]
	orig := []float64{9, 3, 7, 1, 8, 2, 6, 4, 5, 0}
	for i, p := range orig {
		q.push(i, p)
	}
	loot := q.detachHalf()
	if len(loot) == 0 {
		t.Fatal("detachHalf returned nothing from a full queue")
	}
	// Remaining prefix is a valid heap.
	for i := 1; i < len(q.items); i++ {
		p := (i - 1) / 2
		if q.items[p].pri > q.items[i].pri {
			t.Fatalf("heap violated at %d after detachHalf", i)
		}
	}
	// Nothing lost, nothing duplicated.
	var all []float64
	for _, it := range q.items {
		all = append(all, it.pri)
	}
	for _, it := range loot {
		all = append(all, it.pri)
	}
	sort.Float64s(all)
	sort.Float64s(orig)
	if len(all) != len(orig) {
		t.Fatalf("loot+remainder has %d items, want %d", len(all), len(orig))
	}
	for i := range orig {
		if all[i] != orig[i] {
			t.Fatalf("contents diverged: %v vs %v", all, orig)
		}
	}
	// Detached slots must be zeroed so stolen tasks are collectable.
	tail := q.items[:cap(q.items)]
	for i := len(q.items); i < len(tail) && i < len(orig); i++ {
		if tail[i].pri != 0 {
			t.Fatalf("slot %d not zeroed after detachHalf", i)
		}
	}
	// Singleton queue: the single item must be stealable.
	var q1 frontierQueue[int]
	q1.push(42, 1)
	if loot := q1.detachHalf(); len(loot) != 1 || loot[0].v != 42 {
		t.Fatalf("singleton steal got %v", loot)
	}
	if len(q1.items) != 0 {
		t.Fatal("singleton victim not emptied")
	}
}

// TestFrontierStealStarvedWorkers seeds only worker 0's queue (via a
// single seed) with a task that fans out; with many workers the only way
// the others get work is stealing.
func TestFrontierStealStarvedWorkers(t *testing.T) {
	workers := 4
	var executed atomic.Int64
	const fanout = 64
	st := RunFrontier(workers, []int{0}, []float64{0}, func(fw *FrontierWorker[int], v int) {
		executed.Add(1)
		if v == 0 {
			for i := 1; i <= fanout; i++ {
				fw.Push(i, float64(i))
			}
		}
	})
	if got := executed.Load(); got != fanout+1 {
		t.Fatalf("executed %d tasks, want %d", got, fanout+1)
	}
	if st.MaxPending < fanout {
		t.Fatalf("MaxPending=%d, want >= %d", st.MaxPending, fanout)
	}
}

// TestFrontierConcurrentPushHammer stresses the push/steal/park protocol
// under the race detector: many workers, bursty task production, repeated
// rounds so park/unpark cycles actually occur.
func TestFrontierConcurrentPushHammer(t *testing.T) {
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for r := 0; r < rounds; r++ {
		var executed atomic.Int64
		seeds := []int{3, 3} // two deep spawners
		pris := []float64{0, 1}
		RunFrontier(workers, seeds, pris, func(fw *FrontierWorker[int], depth int) {
			executed.Add(1)
			if depth > 0 {
				fw.Push(depth-1, float64(depth))
				fw.Push(depth-1, float64(depth))
			}
		})
		// Two seeds at depth 3, each a full binary expansion: 2*(2^4 - 1).
		if got := executed.Load(); got != 30 {
			t.Fatalf("round %d: executed %d, want 30", r, got)
		}
	}
}

// TestFrontierParallelEmptySeeds must terminate immediately.
func TestFrontierParallelEmptySeeds(t *testing.T) {
	for _, workers := range []int{1, 4} {
		st := RunFrontier(workers, nil, nil, func(fw *FrontierWorker[int], v int) {
			t.Fatal("task ran with no seeds")
		})
		if st.MaxPending != 0 {
			t.Fatalf("workers=%d: MaxPending=%d on empty frontier", workers, st.MaxPending)
		}
	}
}
