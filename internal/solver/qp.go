// Package solver implements the convex-optimization primitives that the
// standing top-k influence problems (CO, IS, and their crossbreeds) reduce
// to once the m-impact region is known: Euclidean projection onto an
// H-representation polytope (an active-set quadratic program) and L1-cost
// minimization (a linear program).
//
// The paper invokes an off-the-shelf QP solver for this step; we implement
// a primal active-set method, which is exact and fast for the small
// dimensionalities (d <= 8) of product spaces.
package solver

import (
	"errors"
	"math"

	"mir/internal/geom"
	"mir/internal/lp"
)

// tol is the numerical tolerance for activity, multiplier signs, and
// convergence tests.
const tol = 1e-9

// maxIter bounds active-set iterations; generous for d <= 8.
const maxIter = 500

// ErrEmpty is returned when the target polytope has no feasible point.
var ErrEmpty = errors.New("solver: empty polytope")

// ErrNumeric is returned when the active-set iteration fails to converge.
var ErrNumeric = errors.New("solver: active-set iteration did not converge")

// Project returns the point of the polytope closest (in L2) to x0, together
// with the distance ||x* - x0||. This solves
//
//	min ½||x - x0||²  s.t.  x in poly.
//
// With x0 = 0 this is the minimum-norm point, i.e. the paper's L2
// creation-cost optimum for CO; with x0 = p it is the cheapest upgrade
// position for IS-style problems.
func Project(poly *geom.Polytope, x0 geom.Vector) (geom.Vector, float64, error) {
	d := poly.Dim
	// Constraint rows a_i·x >= b_i: the polytope's halfspaces plus explicit
	// non-negativity (harmlessly redundant when the polytope already bounds
	// below).
	rows := make([]geom.Vector, 0, len(poly.Hs)+d)
	rhs := make([]float64, 0, len(poly.Hs)+d)
	for _, h := range poly.Hs {
		rows = append(rows, h.W)
		rhs = append(rhs, h.T)
	}
	for i := 0; i < d; i++ {
		e := make(geom.Vector, d)
		e[i] = 1
		rows = append(rows, e)
		rhs = append(rhs, 0)
	}

	feasible := func(x geom.Vector) bool {
		for i := range rows {
			if rows[i].Dot(x) < rhs[i]-1e-7 {
				return false
			}
		}
		return true
	}
	if feasible(x0) {
		return x0.Clone(), 0, nil
	}

	x, ok := poly.FeasiblePoint()
	if !ok {
		return nil, 0, ErrEmpty
	}

	active := activeSet(rows, rhs, x)
	for iter := 0; iter < maxIter; iter++ {
		g := x0.Sub(x) // descent direction before projection
		d0 := projectNull(g, rows, active)
		if d0.Norm() <= tol*(1+g.Norm()) {
			// Stationary on the active face: check KKT multipliers for
			// grad f = x - x0 = sum(lambda_i a_i), lambda >= 0.
			lam := multipliers(x.Sub(x0), rows, active)
			worst, worstIdx := 0.0, -1
			for i, l := range lam {
				if l < worst {
					worst = l
					worstIdx = i
				}
			}
			if worstIdx < 0 || worst > -tol {
				return x, x.Dist(x0), nil
			}
			active = append(active[:worstIdx], active[worstIdx+1:]...)
			continue
		}
		// Line search to the nearest blocking constraint.
		alpha := 1.0
		block := -1
		for i := range rows {
			if containsInt(active, i) {
				continue
			}
			ad := rows[i].Dot(d0)
			if ad >= -tol {
				continue
			}
			a := (rhs[i] - rows[i].Dot(x)) / ad
			if a < alpha {
				alpha = a
				block = i
			}
		}
		if alpha < 0 {
			alpha = 0
		}
		x = x.Add(d0.Scale(alpha))
		if block >= 0 {
			active = append(active, block)
		}
	}
	return nil, 0, ErrNumeric
}

// MinNorm returns the minimum-Euclidean-norm point of the polytope: the
// L2-cost-optimal product placement inside a region cell.
func MinNorm(poly *geom.Polytope) (geom.Vector, float64, error) {
	return Project(poly, make(geom.Vector, poly.Dim))
}

// activeSet returns the indices of constraints active at x.
func activeSet(rows []geom.Vector, rhs []float64, x geom.Vector) []int {
	var act []int
	for i := range rows {
		if math.Abs(rows[i].Dot(x)-rhs[i]) <= 1e-8 {
			act = append(act, i)
		}
	}
	return act
}

// projectNull projects g onto the null space of the active rows using
// modified Gram–Schmidt; linearly dependent rows are skipped automatically.
func projectNull(g geom.Vector, rows []geom.Vector, active []int) geom.Vector {
	basis := orthonormalize(rows, active)
	d := g.Clone()
	for _, q := range basis {
		d = d.Sub(q.Scale(d.Dot(q)))
	}
	return d
}

// orthonormalize returns an orthonormal basis for the span of the active
// rows.
func orthonormalize(rows []geom.Vector, active []int) []geom.Vector {
	var basis []geom.Vector
	for _, i := range active {
		v := rows[i].Clone()
		for _, q := range basis {
			v = v.Sub(q.Scale(v.Dot(q)))
		}
		n := v.Norm()
		if n > 1e-10 {
			basis = append(basis, v.Scale(1/n))
		}
	}
	return basis
}

// multipliers solves the least-squares system sum(lambda_i a_i) = grad for
// the active constraints via normal equations with Gaussian elimination.
// grad is the objective gradient x - x0 at the candidate point.
func multipliers(grad geom.Vector, rows []geom.Vector, active []int) []float64 {
	k := len(active)
	if k == 0 {
		return nil
	}
	// Normal equations: (A Aᵀ) λ = A grad, where A stacks active rows.
	M := make([][]float64, k)
	r := make([]float64, k)
	for i := 0; i < k; i++ {
		M[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			M[i][j] = rows[active[i]].Dot(rows[active[j]])
		}
		r[i] = rows[active[i]].Dot(grad)
	}
	lam := solveSymmetric(M, r)
	return lam
}

// solveSymmetric solves M x = r by Gaussian elimination with partial
// pivoting, regularizing (near-)singular pivots. M is destroyed.
func solveSymmetric(M [][]float64, r []float64) []float64 {
	k := len(r)
	for col := 0; col < k; col++ {
		// Pivot.
		p := col
		for i := col + 1; i < k; i++ {
			if math.Abs(M[i][col]) > math.Abs(M[p][col]) {
				p = i
			}
		}
		M[col], M[p] = M[p], M[col]
		r[col], r[p] = r[p], r[col]
		piv := M[col][col]
		if math.Abs(piv) < 1e-12 {
			M[col][col] += 1e-10 // Tikhonov nudge for dependent rows
			piv = M[col][col]
		}
		for i := col + 1; i < k; i++ {
			f := M[i][col] / piv
			if f == 0 {
				continue
			}
			for j := col; j < k; j++ {
				M[i][j] -= f * M[col][j]
			}
			r[i] -= f * r[col]
		}
	}
	x := make([]float64, k)
	for i := k - 1; i >= 0; i-- {
		s := r[i]
		for j := i + 1; j < k; j++ {
			s -= M[i][j] * x[j]
		}
		x[i] = s / M[i][i]
	}
	return x
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// MinL1 minimizes the L1 distance sum |x_i - x0_i| over the polytope,
// demonstrating the paper's claim that the mIR reduction extends beyond L2
// to any cost with an available solver. It returns the minimizer and cost.
//
// Formulated as an LP with auxiliary variables t >= |x - x0|: variables
// [x, t] (both non-negative by the orthant convention; x0 >= 0 keeps the
// reformulation exact).
func MinL1(poly *geom.Polytope, x0 geom.Vector) (geom.Vector, float64, error) {
	d := poly.Dim
	nv := 2 * d
	var A [][]float64
	var b []float64
	// Polytope rows on x: -W·x <= -T.
	for _, h := range poly.Hs {
		row := make([]float64, nv)
		for j := 0; j < d; j++ {
			row[j] = -h.W[j]
		}
		A = append(A, row)
		b = append(b, -h.T)
	}
	// x_i - t_i <= x0_i  and  -x_i - t_i <= -x0_i.
	for i := 0; i < d; i++ {
		r1 := make([]float64, nv)
		r1[i] = 1
		r1[d+i] = -1
		A = append(A, r1)
		b = append(b, x0[i])
		r2 := make([]float64, nv)
		r2[i] = -1
		r2[d+i] = -1
		A = append(A, r2)
		b = append(b, -x0[i])
	}
	c := make([]float64, nv)
	for i := 0; i < d; i++ {
		c[d+i] = 1
	}
	res := lp.Minimize(c, A, b)
	if res.Status != lp.Optimal {
		return nil, 0, ErrEmpty
	}
	x := make(geom.Vector, d)
	copy(x, res.X[:d])
	return x, res.Obj, nil
}
