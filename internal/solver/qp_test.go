package solver

import (
	"math"
	"math/rand"
	"testing"

	"mir/internal/geom"
)

func TestProjectInsideIsIdentity(t *testing.T) {
	box := geom.NewBox(3, 0, 1)
	x0 := geom.Vector{0.3, 0.4, 0.5}
	x, dist, err := Project(box, x0)
	if err != nil {
		t.Fatal(err)
	}
	if dist != 0 || !x.AlmostEqual(x0, 1e-12) {
		t.Errorf("Project of interior point moved it: %v (dist %g)", x, dist)
	}
}

func TestProjectOntoBox(t *testing.T) {
	box := geom.NewBox(2, 0, 1)
	tests := []struct {
		x0, want geom.Vector
	}{
		{geom.Vector{2, 0.5}, geom.Vector{1, 0.5}},
		{geom.Vector{2, 2}, geom.Vector{1, 1}},
		{geom.Vector{0.5, 3}, geom.Vector{0.5, 1}},
	}
	for i, tc := range tests {
		x, dist, err := Project(box, tc.x0)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !x.AlmostEqual(tc.want, 1e-6) {
			t.Errorf("case %d: got %v, want %v", i, x, tc.want)
		}
		if math.Abs(dist-tc.x0.Dist(tc.want)) > 1e-6 {
			t.Errorf("case %d: dist = %g", i, dist)
		}
	}
}

func TestProjectOntoHalfspaceFace(t *testing.T) {
	// Polytope: box intersect {x + y >= 1}. Projection of origin is the
	// closest point of the line x + y = 1: (0.5, 0.5), distance sqrt(2)/2.
	p := geom.NewBox(2, 0, 1).With(geom.Halfspace{W: geom.Vector{1, 1}, T: 1})
	x, dist, err := MinNorm(p)
	if err != nil {
		t.Fatal(err)
	}
	if !x.AlmostEqual(geom.Vector{0.5, 0.5}, 1e-6) {
		t.Errorf("MinNorm = %v, want (0.5,0.5)", x)
	}
	if math.Abs(dist-math.Sqrt2/2) > 1e-6 {
		t.Errorf("dist = %g, want %g", dist, math.Sqrt2/2)
	}
}

func TestProjectVertexSolution(t *testing.T) {
	// box intersect {x >= 0.8} intersect {y >= 0.9}: projection of origin
	// hits the corner (0.8, 0.9).
	p := geom.NewBox(2, 0, 1).
		With(geom.Halfspace{W: geom.Vector{1, 0}, T: 0.8}).
		With(geom.Halfspace{W: geom.Vector{0, 1}, T: 0.9})
	x, _, err := MinNorm(p)
	if err != nil {
		t.Fatal(err)
	}
	if !x.AlmostEqual(geom.Vector{0.8, 0.9}, 1e-6) {
		t.Errorf("MinNorm = %v, want (0.8,0.9)", x)
	}
}

func TestProjectEmpty(t *testing.T) {
	p := geom.NewBox(2, 0, 1).With(geom.Halfspace{W: geom.Vector{1, 1}, T: 5})
	if _, _, err := MinNorm(p); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

// TestProjectRandomOptimality cross-checks the active-set result against
// rejection-sampled competitors on random polytopes in 2..5 dimensions.
func TestProjectRandomOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		d := 2 + rng.Intn(4)
		p := geom.NewBox(d, 0, 1)
		for i := 0; i < 2+rng.Intn(3); i++ {
			w := make(geom.Vector, d)
			for j := range w {
				w[j] = rng.Float64()
			}
			s := w.Sum()
			for j := range w {
				w[j] /= s
			}
			p.Append(geom.Halfspace{W: w, T: 0.3 + 0.4*rng.Float64()})
		}
		x0 := make(geom.Vector, d)
		for j := range x0 {
			x0[j] = rng.Float64() * 0.3 // usually outside the constrained region
		}
		x, dist, err := Project(p, x0)
		if err == ErrEmpty {
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !p.ContainsPoint(x) {
			// allow boundary tolerance
			for _, h := range p.Hs {
				if h.Eval(x) < -1e-6 {
					t.Fatalf("trial %d: projection %v violates %v by %g",
						trial, x, h, -h.Eval(x))
				}
			}
		}
		for probe := 0; probe < 4000; probe++ {
			y := make(geom.Vector, d)
			for j := range y {
				y[j] = rng.Float64()
			}
			if !p.ContainsPoint(y) {
				continue
			}
			if y.Dist(x0) < dist-1e-6 {
				t.Fatalf("trial %d: sampled %v closer (%g) than projection (%g)",
					trial, y, y.Dist(x0), dist)
			}
		}
	}
}

func TestMinL1(t *testing.T) {
	// Over box intersect {x + y >= 1}, the L1 projection of the origin has
	// cost 1 (anywhere on the segment).
	p := geom.NewBox(2, 0, 1).With(geom.Halfspace{W: geom.Vector{1, 1}, T: 1})
	x, cost, err := MinL1(p, geom.Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cost-1) > 1e-7 {
		t.Errorf("L1 cost = %g, want 1", cost)
	}
	if !p.ContainsPoint(x) {
		t.Errorf("L1 minimizer %v infeasible", x)
	}

	// Interior start: zero cost.
	_, cost, err = MinL1(geom.NewBox(2, 0, 1), geom.Vector{0.5, 0.5})
	if err != nil || cost > 1e-9 {
		t.Errorf("interior L1 cost = %g (err %v)", cost, err)
	}

	// Empty polytope errors.
	empty := geom.NewBox(2, 0, 1).With(geom.Halfspace{W: geom.Vector{1, 0}, T: 3})
	if _, _, err := MinL1(empty, geom.Vector{0, 0}); err == nil {
		t.Error("expected error on empty polytope")
	}
}

// TestMinL1VsSampling cross-checks L1 optimality by sampling.
func TestMinL1VsSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(3)
		p := geom.NewBox(d, 0, 1)
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = 0.2 + rng.Float64()
		}
		s := w.Sum()
		for j := range w {
			w[j] /= s
		}
		p.Append(geom.Halfspace{W: w, T: 0.5 + 0.3*rng.Float64()})
		x0 := make(geom.Vector, d)
		_, cost, err := MinL1(p, x0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		l1 := func(y geom.Vector) float64 {
			t := 0.0
			for j := range y {
				t += math.Abs(y[j] - x0[j])
			}
			return t
		}
		for probe := 0; probe < 3000; probe++ {
			y := make(geom.Vector, d)
			for j := range y {
				y[j] = rng.Float64()
			}
			if p.ContainsPoint(y) && l1(y) < cost-1e-6 {
				t.Fatalf("trial %d: sampled L1 %g beats %g", trial, l1(y), cost)
			}
		}
	}
}

func BenchmarkProjectD4(b *testing.B) {
	p := geom.NewBox(4, 0, 1).
		With(geom.Halfspace{W: geom.Vector{0.25, 0.25, 0.25, 0.25}, T: 0.7}).
		With(geom.Halfspace{W: geom.Vector{0.4, 0.3, 0.2, 0.1}, T: 0.6})
	x0 := make(geom.Vector, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Project(p, x0); err != nil {
			b.Fatal(err)
		}
	}
}
