package celltree

import (
	"fmt"

	"mir/internal/geom"
)

// Fragment is the wire form of one shard's region fragment: the reported
// cells' H-representations and MBBs flattened into four numeric slices.
// The flattening exists for the process boundary (internal/dist ships
// fragments over framed gob), and it is deliberately lossless and
// order-preserving: cells round-trip in slice order with every float64
// bit-identical, because the executor byte-identity contract compares
// merged regions coordinate by coordinate. A flat layout also keeps gob
// from walking one descriptor per halfspace — encoding four []float64s
// is a single memcpy-ish pass per slice.
//
// Layout: cell i has Counts[i] halfspaces; its rows live consecutively
// in W (Counts[i]×Dim coefficients) with thresholds in T (Counts[i]
// values); MBB holds 2·Dim values per cell (lo corner then hi corner).
type Fragment struct {
	Dim    int
	Counts []int32
	T      []float64
	W      []float64
	MBB    []float64
}

// EncodeFragment flattens reported cells and their MBBs into a Fragment.
// mbbs must be parallel to cells (both may be empty: a shard that died
// at its root reports no cells).
func EncodeFragment(dim int, cells []*geom.Polytope, mbbs [][2]geom.Vector) (Fragment, error) {
	if len(mbbs) != len(cells) {
		return Fragment{}, fmt.Errorf("celltree: %d cells but %d MBBs", len(cells), len(mbbs))
	}
	f := Fragment{Dim: dim, Counts: make([]int32, len(cells))}
	nHs := 0
	for _, c := range cells {
		nHs += len(c.Hs)
	}
	f.T = make([]float64, 0, nHs)
	f.W = make([]float64, 0, nHs*dim)
	f.MBB = make([]float64, 0, 2*dim*len(cells))
	for i, c := range cells {
		if c.Dim != dim {
			return Fragment{}, fmt.Errorf("celltree: cell %d has dim %d, fragment dim %d", i, c.Dim, dim)
		}
		f.Counts[i] = int32(len(c.Hs))
		for _, h := range c.Hs {
			if len(h.W) != dim {
				return Fragment{}, fmt.Errorf("celltree: cell %d halfspace row has %d coords, want %d", i, len(h.W), dim)
			}
			f.W = append(f.W, h.W...)
			f.T = append(f.T, h.T)
		}
		if len(mbbs[i][0]) != dim || len(mbbs[i][1]) != dim {
			return Fragment{}, fmt.Errorf("celltree: cell %d MBB has dims %d/%d, want %d", i, len(mbbs[i][0]), len(mbbs[i][1]), dim)
		}
		f.MBB = append(f.MBB, mbbs[i][0]...)
		f.MBB = append(f.MBB, mbbs[i][1]...)
	}
	return f, nil
}

// Decode rebuilds the cells and MBBs from the flat layout, validating
// every length so a truncated or corrupted frame surfaces as an error
// instead of a panic deep in the merge. Halfspace rows sub-slice two
// backing arrays (one for W rows, one for MBB corners) — the same flat
// layout the instance keeps its own user matrix in — so a decoded
// fragment costs O(cells) allocations, not O(halfspaces).
func (f Fragment) Decode() ([]*geom.Polytope, [][2]geom.Vector, error) {
	if f.Dim <= 0 {
		return nil, nil, fmt.Errorf("celltree: fragment dim %d", f.Dim)
	}
	nHs := 0
	for i, c := range f.Counts {
		if c < 0 {
			return nil, nil, fmt.Errorf("celltree: fragment cell %d has negative count %d", i, c)
		}
		nHs += int(c)
	}
	if len(f.T) != nHs || len(f.W) != nHs*f.Dim {
		return nil, nil, fmt.Errorf("celltree: fragment length mismatch: %d counts total %d, |T|=%d |W|=%d dim=%d",
			len(f.Counts), nHs, len(f.T), len(f.W), f.Dim)
	}
	if len(f.MBB) != 2*f.Dim*len(f.Counts) {
		return nil, nil, fmt.Errorf("celltree: fragment MBB length %d, want %d", len(f.MBB), 2*f.Dim*len(f.Counts))
	}
	cells := make([]*geom.Polytope, len(f.Counts))
	mbbs := make([][2]geom.Vector, len(f.Counts))
	w, t, mb := f.W, f.T, f.MBB
	for i, c := range f.Counts {
		p := &geom.Polytope{Dim: f.Dim, Hs: make([]geom.Halfspace, c)}
		for j := range p.Hs {
			p.Hs[j] = geom.Halfspace{W: w[:f.Dim:f.Dim], T: t[j]}
			w = w[f.Dim:]
		}
		t = t[c:]
		cells[i] = p
		mbbs[i][0] = geom.Vector(mb[:f.Dim:f.Dim])
		mbbs[i][1] = geom.Vector(mb[f.Dim : 2*f.Dim : 2*f.Dim])
		mb = mb[2*f.Dim:]
	}
	return cells, mbbs, nil
}
