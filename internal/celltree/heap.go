package celltree

// Heap is a binary min-heap of cells keyed by a float priority fixed at
// push time. AA uses it to always process the cell closest to being
// reported or eliminated (Section 5.3); the IS adaptation reuses it with a
// negated key to prioritize high-coverage cells; the task-parallel
// frontier drains it to seed the per-worker queues.
type Heap struct {
	items []heapItem
}

type heapItem struct {
	c   *Cell
	pri float64
}

// Len returns the number of queued cells.
func (h *Heap) Len() int { return len(h.items) }

// Push enqueues c with the given priority (smaller pops first).
func (h *Heap) Push(c *Cell, pri float64) {
	h.items = append(h.items, heapItem{c, pri})
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].pri <= h.items[i].pri {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

// Pop removes and returns the minimum-priority cell; nil when empty. The
// vacated backing slot is zeroed so a popped (and possibly long-decided)
// cell is not kept reachable — and its subtree uncollectable — by the
// heap's spare capacity.
func (h *Heap) Pop() *Cell {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0].c
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = heapItem{}
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].pri < h.items[small].pri {
			small = l
		}
		if r < last && h.items[r].pri < h.items[small].pri {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}

// Drain invokes f for every queued cell (in backing-array order, which is
// heap order, not sorted order) and empties the heap, zeroing the backing
// slots. The frontier scheduler uses it to move staged cells into the
// per-worker queues; since cell processing commutes there, the enumeration
// order is irrelevant.
func (h *Heap) Drain(f func(c *Cell, pri float64)) {
	for i, it := range h.items {
		f(it.c, it.pri)
		h.items[i] = heapItem{}
	}
	h.items = h.items[:0]
}
