package celltree

import (
	"math/rand"
	"sort"
	"testing"

	"mir/internal/geom"
	"mir/internal/lp"
)

func unitTree(d int) *Tree { return New(geom.NewBox(d, 0, 1)) }

func TestNewTree(t *testing.T) {
	tr := unitTree(2)
	if !tr.Root.IsLeaf() || tr.Root.Status != Active {
		t.Fatal("fresh root should be an active leaf")
	}
	if !tr.Root.MBBLo.AlmostEqual(geom.Vector{0, 0}, 1e-7) ||
		!tr.Root.MBBHi.AlmostEqual(geom.Vector{1, 1}, 1e-7) {
		t.Errorf("root MBB = %v..%v", tr.Root.MBBLo, tr.Root.MBBHi)
	}
	if tr.Stats.CellsCreated != 1 {
		t.Errorf("CellsCreated = %d", tr.Stats.CellsCreated)
	}
}

func TestNewTreeEmptyBox(t *testing.T) {
	box := geom.NewBox(2, 0, 1)
	box.Append(geom.Halfspace{W: geom.Vector{1, 1}, T: 5})
	tr := New(box)
	if tr.Root.Status != Eliminated {
		t.Error("empty box should eliminate the root")
	}
}

func TestSplitBy(t *testing.T) {
	tr := unitTree(2)
	h := geom.Halfspace{W: geom.Vector{0.5, 0.5}, T: 0.5} // diagonal
	left, right := tr.SplitBy(tr.Root, h)
	if tr.Root.IsLeaf() {
		t.Fatal("root still leaf after split")
	}
	if left.Status != Active || right.Status != Active {
		t.Fatal("both halves should be non-empty")
	}
	// Right child is inside h: its region max of w·x is 1, min is 0.5.
	if !right.Polytope().ContainsPoint(geom.Vector{0.9, 0.9}) {
		t.Error("inside child missing inside point")
	}
	if right.Polytope().ContainsPoint(geom.Vector{0.1, 0.1}) {
		t.Error("inside child contains outside point")
	}
	if !left.Polytope().ContainsPoint(geom.Vector{0.1, 0.1}) {
		t.Error("outside child missing outside point")
	}
	if tr.Stats.Splits != 1 || tr.Stats.CellsCreated != 3 {
		t.Errorf("stats: %+v", tr.Stats)
	}
	if left.Depth != 1 || right.Depth != 1 || tr.Stats.MaxDepth != 1 {
		t.Error("depth bookkeeping wrong")
	}
}

func TestSplitInheritsCounts(t *testing.T) {
	tr := unitTree(2)
	tr.Root.InCount = 3
	tr.Root.OutCount = 2
	l, r := tr.SplitBy(tr.Root, geom.Halfspace{W: geom.Vector{1, 0}, T: 0.5})
	if l.InCount != 3 || l.OutCount != 2 || r.InCount != 3 || r.OutCount != 2 {
		t.Error("children did not inherit counts")
	}
}

func TestSplitEmptySide(t *testing.T) {
	tr := unitTree(2)
	// First restrict to x >= 0.8.
	_, right := tr.SplitBy(tr.Root, geom.Halfspace{W: geom.Vector{1, 0}, T: 0.8})
	// Now split that child by x >= 0.5: the outside part is empty.
	l, r := tr.SplitBy(right, geom.Halfspace{W: geom.Vector{1, 0}, T: 0.5})
	if l.Status != Eliminated {
		t.Error("empty outside child not eliminated")
	}
	if r.Status != Active {
		t.Error("inside child should be active")
	}
}

func TestFastClassify(t *testing.T) {
	tr := unitTree(2)
	c := tr.Root
	// Whole box inside w·x >= -1.
	if rel, ok := c.FastClassify(geom.Halfspace{W: geom.Vector{0.5, 0.5}, T: -1}); !ok || rel != geom.Covers {
		t.Errorf("covers: rel=%v ok=%v", rel, ok)
	}
	// Whole box outside w·x >= 2.
	if rel, ok := c.FastClassify(geom.Halfspace{W: geom.Vector{0.5, 0.5}, T: 2}); !ok || rel != geom.Excludes {
		t.Errorf("excludes: rel=%v ok=%v", rel, ok)
	}
	// Diagonal cut: inconclusive.
	if _, ok := c.FastClassify(geom.Halfspace{W: geom.Vector{0.5, 0.5}, T: 0.5}); ok {
		t.Error("cut should be inconclusive")
	}
	if tr.Stats.FastTests != 3 || tr.Stats.FastHits != 2 {
		t.Errorf("stats: %+v", tr.Stats)
	}
}

func TestFastClassifyNegativeWeights(t *testing.T) {
	tr := unitTree(2)
	// Flipped halfspace {-w·x >= -0.1}: box mostly outside, cut region near origin.
	h := geom.Halfspace{W: geom.Vector{0.5, 0.5}, T: 0.1}.Flip()
	if _, ok := tr.Root.FastClassify(h); ok {
		t.Error("should be inconclusive (boundary crosses box)")
	}
	// {-w·x >= 1}: impossible inside the box (w·x >= 0 always... min of -w·x is -1).
	h2 := geom.Halfspace{W: geom.Vector{-0.5, -0.5}, T: 0.5}
	if rel, ok := tr.Root.FastClassify(h2); !ok || rel != geom.Excludes {
		t.Errorf("rel=%v ok=%v, want excludes", rel, ok)
	}
}

// TestFastClassifyNeverContradictsLP: on random cells and halfspaces, a
// conclusive fast answer must match the exact LP classification.
func TestFastClassifyNeverContradictsLP(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		d := 2 + rng.Intn(3)
		tr := unitTree(d)
		leaf := tr.Root
		// Random splits to make a non-box cell.
		for i := 0; i < 2; i++ {
			w := make(geom.Vector, d)
			for j := range w {
				w[j] = rng.Float64()
			}
			s := w.Sum()
			for j := range w {
				w[j] /= s
			}
			l, r := tr.SplitBy(leaf, geom.Halfspace{W: w, T: 0.3 + 0.4*rng.Float64()})
			if r.Status == Active {
				leaf = r
			} else {
				leaf = l
			}
			if leaf.Status != Active {
				break
			}
		}
		if leaf.Status != Active {
			continue
		}
		for probe := 0; probe < 20; probe++ {
			w := make(geom.Vector, d)
			for j := range w {
				w[j] = rng.Float64()
			}
			s := w.Sum()
			for j := range w {
				w[j] /= s
			}
			h := geom.Halfspace{W: w, T: rng.Float64()}
			fast, ok := leaf.FastClassify(h)
			if !ok {
				continue
			}
			exact := leaf.Polytope().Classify(h)
			if fast != exact {
				t.Fatalf("trial %d: fast=%v exact=%v for %v", trial, fast, exact, h)
			}
		}
	}
}

func TestPolytopeReconstruction(t *testing.T) {
	tr := unitTree(2)
	h1 := geom.Halfspace{W: geom.Vector{1, 0}, T: 0.5}
	_, r1 := tr.SplitBy(tr.Root, h1)
	h2 := geom.Halfspace{W: geom.Vector{0, 1}, T: 0.5}
	l2, _ := tr.SplitBy(r1, h2)
	// l2: x >= 0.5, y <= 0.5.
	p := l2.Polytope()
	if !p.ContainsPoint(geom.Vector{0.7, 0.3}) {
		t.Error("missing interior point")
	}
	if p.ContainsPoint(geom.Vector{0.3, 0.3}) || p.ContainsPoint(geom.Vector{0.7, 0.7}) {
		t.Error("contains excluded point")
	}
}

func TestReportEliminateIdempotent(t *testing.T) {
	tr := unitTree(2)
	tr.Report(tr.Root)
	tr.Report(tr.Root)
	if tr.Stats.Reported != 1 {
		t.Errorf("Reported = %d", tr.Stats.Reported)
	}
	tr2 := unitTree(2)
	tr2.Eliminate(tr2.Root)
	tr2.Eliminate(tr2.Root)
	if tr2.Stats.Eliminated != 1 {
		t.Errorf("Eliminated = %d", tr2.Stats.Eliminated)
	}
	// Report after eliminate is a no-op.
	tr2.Report(tr2.Root)
	if tr2.Root.Status != Eliminated || tr2.Stats.Reported != 0 {
		t.Error("status transitioned after decision")
	}
}

func TestLeavesEnumeration(t *testing.T) {
	tr := unitTree(2)
	l, r := tr.SplitBy(tr.Root, geom.Halfspace{W: geom.Vector{1, 0}, T: 0.5})
	tr.SplitBy(r, geom.Halfspace{W: geom.Vector{0, 1}, T: 0.5})
	leaves := tr.Leaves(nil, nil)
	if len(leaves) != 3 {
		t.Fatalf("leaves = %d, want 3", len(leaves))
	}
	tr.Report(l)
	rep := tr.ReportedLeaves()
	if len(rep) != 1 || rep[0] != l {
		t.Error("ReportedLeaves wrong")
	}
}

func TestHeapOrdering(t *testing.T) {
	var h Heap
	tr := unitTree(2)
	cells := make([]*Cell, 10)
	pris := []float64{5, 3, 8, 1, 9, 2, 7, 4, 6, 0}
	for i := range cells {
		cells[i] = &Cell{ID: i, owner: tr}
		h.Push(cells[i], pris[i])
	}
	var got []float64
	for h.Len() > 0 {
		c := h.Pop()
		got = append(got, pris[c.ID])
	}
	if !sort.Float64sAreSorted(got) {
		t.Errorf("heap pop order not sorted: %v", got)
	}
	if h.Pop() != nil {
		t.Error("empty heap should pop nil")
	}
}

// TestPathDerivedIDs pins the deterministic ID scheme: the root is 0 and
// a split assigns 2·ID+1 / 2·ID+2, so IDs depend only on the split
// history, never on the order independent subtrees were processed in.
func TestPathDerivedIDs(t *testing.T) {
	tr := unitTree(2)
	l, r := tr.SplitBy(tr.Root, geom.Halfspace{W: geom.Vector{1, 0}, T: 0.5})
	if l.ID != 1 || r.ID != 2 {
		t.Fatalf("first-level IDs = %d, %d; want 1, 2", l.ID, r.ID)
	}
	ll, lr := tr.SplitBy(l, geom.Halfspace{W: geom.Vector{0, 1}, T: 0.5})
	rl, rr := tr.SplitBy(r, geom.Halfspace{W: geom.Vector{0, 1}, T: 0.5})
	if ll.ID != 3 || lr.ID != 4 || rl.ID != 5 || rr.ID != 6 {
		t.Fatalf("second-level IDs = %d, %d, %d, %d; want 3, 4, 5, 6",
			ll.ID, lr.ID, rl.ID, rr.ID)
	}
}

// TestShardSplitMatchesSequential splits two disjoint subtrees through
// worker shards and checks that the merged stats and the resulting
// arrangement are identical to the same splits performed sequentially.
func TestShardSplitMatchesSequential(t *testing.T) {
	build := func(viaShards bool) *Tree {
		tr := unitTree(2)
		l, r := tr.SplitBy(tr.Root, geom.Halfspace{W: geom.Vector{1, 0}, T: 0.5})
		h := geom.Halfspace{W: geom.Vector{0, 1}, T: 0.5}
		if viaShards {
			shA, shB := tr.NewShard(), tr.NewShard()
			shA.SplitBy(l, h)
			lb, rb := shB.SplitBy(r, h)
			shB.Report(rb)
			shB.Eliminate(lb)
			// Absorption order must not matter (sums and maxima commute).
			tr.AbsorbShard(shB)
			tr.AbsorbShard(shA)
		} else {
			tr.SplitBy(l, h)
			lb, rb := tr.SplitBy(r, h)
			tr.Report(rb)
			tr.Eliminate(lb)
		}
		return tr
	}
	seq, shd := build(false), build(true)
	if seq.Stats != shd.Stats {
		t.Fatalf("stats diverge:\nseq   %+v\nshard %+v", seq.Stats, shd.Stats)
	}
	sl, dl := seq.Leaves(nil, nil), shd.Leaves(nil, nil)
	if len(sl) != len(dl) {
		t.Fatalf("leaf counts differ: %d vs %d", len(sl), len(dl))
	}
	for i := range sl {
		if sl[i].ID != dl[i].ID || sl[i].Status != dl[i].Status {
			t.Fatalf("leaf %d: (%d,%v) vs (%d,%v)",
				i, sl[i].ID, sl[i].Status, dl[i].ID, dl[i].Status)
		}
	}
}

// TestAbsorbShardTwicePanics pins the double-absorb guard: folding the
// same worker shard into the tree twice would re-add counters that were
// already merged, so the second call must panic instead of silently
// corrupting Stats. The tree's own shard aliases Tree.Stats and stays
// absorbable any number of times (each fold is a no-op).
func TestAbsorbShardTwicePanics(t *testing.T) {
	tr := unitTree(2)
	sh := tr.NewShard()
	sh.SplitBy(tr.Root, geom.Halfspace{W: geom.Vector{1, 0}, T: 0.5})
	tr.AbsorbShard(sh)
	want := tr.Stats
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("second AbsorbShard did not panic")
			}
		}()
		tr.AbsorbShard(sh)
	}()
	if tr.Stats != want {
		t.Fatalf("stats changed across the panicking absorb:\nbefore %+v\nafter  %+v", want, tr.Stats)
	}
	// The built-in shard is exempt: it already writes through Tree.Stats.
	tr.AbsorbShard(tr.OwnShard())
	tr.AbsorbShard(tr.OwnShard())
	if tr.Stats != want {
		t.Fatalf("OwnShard absorb mutated stats:\nbefore %+v\nafter  %+v", want, tr.Stats)
	}
}

// TestNewRooted pins the shard-root constructor: the root takes the
// caller's virtual heap ID and depth, descendants derive path IDs from
// that prefix, and MaxDepth starts at the root's depth.
func TestNewRooted(t *testing.T) {
	tr := NewRooted(geom.NewBox(2, 0, 1), 4, 2)
	if tr.Root.ID != 4 || tr.Root.Depth != 2 {
		t.Fatalf("root = {ID %d, Depth %d}, want {4, 2}", tr.Root.ID, tr.Root.Depth)
	}
	if tr.Stats.MaxDepth != 2 {
		t.Fatalf("MaxDepth = %d, want 2", tr.Stats.MaxDepth)
	}
	l, r := tr.SplitBy(tr.Root, geom.Halfspace{W: geom.Vector{1, 0}, T: 0.5})
	if l.ID != 9 || r.ID != 10 {
		t.Fatalf("children of root 4 = %d, %d; want 9, 10", l.ID, r.ID)
	}
	if l.Depth != 3 || r.Depth != 3 || tr.Stats.MaxDepth != 3 {
		t.Fatalf("child depths %d/%d, MaxDepth %d; want 3/3/3", l.Depth, r.Depth, tr.Stats.MaxDepth)
	}
}

// TestHeapPopReleasesCell: the truncated backing array must not keep a
// popped cell alive — popped-and-eliminated cells should be collectable,
// so the vacated slot has to be zeroed.
func TestHeapPopReleasesCell(t *testing.T) {
	var h Heap
	tr := unitTree(2)
	for i := 0; i < 8; i++ {
		h.Push(&Cell{ID: i, owner: tr}, float64(i))
	}
	for i := 0; i < 5; i++ {
		if h.Pop() == nil {
			t.Fatal("unexpected empty heap")
		}
	}
	backing := h.items[:cap(h.items)]
	for i := h.Len(); i < len(backing); i++ {
		if backing[i].c != nil {
			t.Fatalf("backing slot %d still references cell %d after pop",
				i, backing[i].c.ID)
		}
	}
	h.Drain(func(*Cell, float64) {})
	backing = h.items[:cap(h.items)]
	for i := range backing {
		if backing[i].c != nil {
			t.Fatalf("backing slot %d still references a cell after Drain", i)
		}
	}
}

// TestHeapDrain: Drain yields every queued cell exactly once and leaves
// the heap empty.
func TestHeapDrain(t *testing.T) {
	var h Heap
	tr := unitTree(2)
	seen := map[int]bool{}
	for i := 0; i < 10; i++ {
		h.Push(&Cell{ID: i, owner: tr}, float64(10-i))
	}
	h.Drain(func(c *Cell, pri float64) {
		if seen[c.ID] {
			t.Fatalf("cell %d drained twice", c.ID)
		}
		if pri != float64(10-c.ID) {
			t.Fatalf("cell %d drained with priority %g, want %g", c.ID, pri, float64(10-c.ID))
		}
		seen[c.ID] = true
	})
	if len(seen) != 10 || h.Len() != 0 {
		t.Fatalf("drained %d cells, heap len %d", len(seen), h.Len())
	}
}

// TestClipBoxProperty: the analytic box-halfspace clip must bound every
// sampled feasible point and report emptiness only when the halfspace
// truly misses the box.
func TestClipBoxProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		d := 1 + rng.Intn(5)
		lo := make(geom.Vector, d)
		hi := make(geom.Vector, d)
		for j := 0; j < d; j++ {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			lo[j], hi[j] = a, b
		}
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		h := geom.Halfspace{W: w, T: rng.NormFloat64() * 0.5}
		nlo, nhi, ok := clipBox(lo, hi, h)
		hits := 0
		for probe := 0; probe < 400; probe++ {
			x := make(geom.Vector, d)
			for j := range x {
				x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
			}
			if h.Eval(x) < 1e-9 {
				continue // outside the halfspace
			}
			hits++
			if !ok {
				t.Fatalf("trial %d: clip reported empty but %v is feasible", trial, x)
			}
			for j := range x {
				if x[j] < nlo[j]-1e-7 || x[j] > nhi[j]+1e-7 {
					t.Fatalf("trial %d: feasible %v outside clipped box [%v, %v]",
						trial, x, nlo, nhi)
				}
			}
		}
		if ok {
			// The clipped box must stay inside the original.
			for j := 0; j < d; j++ {
				if nlo[j] < lo[j]-1e-12 || nhi[j] > hi[j]+1e-12 {
					t.Fatalf("trial %d: clipped box escapes the original", trial)
				}
			}
		}
	}
}

// TestClipBoxExactOnSingleConstraint: for a box and one halfspace the clip
// is the exact bounding box — cross-check against the LP-based MBB.
func TestClipBoxExactOnSingleConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(3)
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = rng.Float64()
		}
		s := w.Sum()
		for j := range w {
			w[j] /= s
		}
		h := geom.Halfspace{W: w, T: 0.2 + 0.6*rng.Float64()}
		lo := make(geom.Vector, d)
		hi := make(geom.Vector, d)
		for j := 0; j < d; j++ {
			hi[j] = 1
		}
		nlo, nhi, ok := clipBox(lo, hi, h)
		poly := geom.NewBox(d, 0, 1).With(h)
		plo, phi, pok := poly.MBB()
		if ok != pok {
			t.Fatalf("trial %d: clip ok=%v LP ok=%v", trial, ok, pok)
		}
		if !ok {
			continue
		}
		if !nlo.AlmostEqual(plo, 1e-6) || !nhi.AlmostEqual(phi, 1e-6) {
			t.Fatalf("trial %d: clip [%v,%v] vs LP [%v,%v]", trial, nlo, nhi, plo, phi)
		}
	}
}

// TestHeapRandomSequences: pops come out in nondecreasing priority for
// random interleavings of pushes and pops.
func TestHeapRandomSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	tr := unitTree(2)
	for trial := 0; trial < 60; trial++ {
		var h Heap
		pri := map[*Cell]float64{}
		prev := -1e18
		for step := 0; step < 200; step++ {
			if h.Len() == 0 || rng.Intn(3) > 0 {
				c := &Cell{ID: step, owner: tr}
				p := rng.NormFloat64()
				pri[c] = p
				h.Push(c, p)
				if p < prev {
					prev = -1e18 // a smaller priority legitimately resets the order
				}
			} else {
				c := h.Pop()
				p := pri[c]
				if p < prev-1e-12 {
					t.Fatalf("trial %d: popped %g after %g", trial, p, prev)
				}
				prev = p
			}
		}
	}
}

// TestStatsMergeOrderFree pins the commutativity/associativity contract
// Merge documents: folding per-worker shard stats in any order yields the
// same totals. Every counter — the routing trio RoutedLeaves /
// SkippedSubtrees / TouchedFrontier included — must merge by summation
// (MaxDepth by maximum, which is equally order-free), or worker-count
// determinism of the public Stats breaks.
func TestStatsMergeOrderFree(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	randStats := func() Stats {
		return Stats{
			CellsCreated:     rng.Intn(1000),
			Splits:           rng.Intn(1000),
			ContainmentTests: rng.Intn(1000),
			FastTests:        rng.Intn(1000),
			FastHits:         rng.Intn(1000),
			Reported:         rng.Intn(1000),
			Eliminated:       rng.Intn(1000),
			MaxDepth:         rng.Intn(64),
			PruneLPTests:     rng.Intn(1000),
			PrunedRows:       rng.Intn(1000),
			RoutedLeaves:     rng.Intn(1000),
			SkippedSubtrees:  rng.Intn(1000),
			TouchedFrontier:  rng.Intn(1000),
			LP: lp.Counters{
				Pivots:     int64(rng.Intn(1000)),
				WarmHits:   int64(rng.Intn(1000)),
				WarmMisses: int64(rng.Intn(1000)),
				ColdSolves: int64(rng.Intn(1000)),
			},
		}
	}
	for trial := 0; trial < 20; trial++ {
		shards := make([]Stats, 2+rng.Intn(7))
		for i := range shards {
			shards[i] = randStats()
		}
		var forward Stats
		for _, s := range shards {
			forward.Merge(s)
		}
		perm := rng.Perm(len(shards))
		var permuted Stats
		for _, i := range perm {
			permuted.Merge(shards[i])
		}
		if forward != permuted {
			t.Fatalf("trial %d: merge order changed totals:\n forward  %+v\n permuted %+v (order %v)",
				trial, forward, permuted, perm)
		}
	}
}
