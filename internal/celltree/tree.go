// Package celltree maintains the halfspace-arrangement cell tree used by
// the mIR algorithms (the "cell-tree" of Tang et al. [52], adopted by the
// paper's BSL and AA).
//
// The tree is binary: the root covers the whole product-space box, and
// each internal node records the halfspace whose boundary split it. A
// leaf's region is implicitly the intersection of the box with one
// (possibly flipped) halfspace per ancestor. Leaves carry the running
// counts of influential halfspaces known to cover (InCount) or exclude
// (OutCount) them, a cached minimum bounding box that powers the paper's
// filter-and-refine fast tests (Section 5.3), and an algorithm-specific
// payload (AA stores its individualized pending-group list there).
//
// Mutation model: the tree as a whole is not safe for concurrent use, but
// disjoint subtrees are. Every mutating operation (SplitBy, Report,
// Eliminate) lives on a Shard — a per-goroutine mutation context carrying
// its own scratch buffers and Stats accumulator. The Tree's own methods
// delegate to a built-in shard writing straight into Tree.Stats, so
// sequential callers see the original API; parallel callers take one
// NewShard per worker, confine each worker to cells of disjoint subtrees,
// and merge the shard stats after the join (Tree.AbsorbShard). Cell IDs
// are derived from the tree path, not a shared counter, so the arrangement
// — IDs included — is byte-identical no matter how subtree work is
// scheduled.
package celltree

import (
	"mir/internal/geom"
	"mir/internal/lp"
)

// Status is a leaf's lifecycle state.
type Status uint8

const (
	// Active leaves may still be split, reported, or eliminated.
	Active Status = iota
	// Reported leaves are part of the mIR result R.
	Reported
	// Eliminated leaves can no longer reach the coverage threshold.
	Eliminated
)

// String returns a readable status name.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Reported:
		return "reported"
	case Eliminated:
		return "eliminated"
	default:
		return "invalid"
	}
}

// Cell is a node of the arrangement tree. Leaves correspond to current
// arrangement cells; internal nodes record past splits.
type Cell struct {
	// ID is derived from the cell's tree path in heap numbering: the root
	// is 0 and a split assigns 2·ID+1 (outside child) and 2·ID+2 (inside
	// child). IDs therefore depend only on the split history, never on the
	// order in which independent subtrees were processed — the property
	// the task-parallel frontier relies on. They are unique up to depth
	// 62; beyond that the arithmetic wraps (still deterministically). IDs
	// are diagnostic: no algorithmic decision reads them.
	ID     int
	Depth  int
	Status Status

	// InCount users are known to cover the entire cell; OutCount users are
	// known to exclude it. Undecided users are tracked by the algorithm's
	// payload.
	InCount  int
	OutCount int

	// MBBLo/MBBHi cache the cell's minimum bounding box.
	MBBLo, MBBHi geom.Vector

	// Empty marks a split child whose region degenerated (borderline
	// numerics); such cells carry no geometry and are never revived.
	Empty bool

	// MaintSeq, StageSeq, ElimSlack, and RepIn are the routed-maintenance
	// bookkeeping of core's Maintainer (unused — zero — outside maintained
	// runs). MaintSeq is the absolute index into the maintenance event log
	// the node's subtree BOUNDS are current through; StageSeq (meaningful at
	// leaves only) is the index the leaf's PAYLOAD and counts are actually
	// staged through. A deferral folds a log window into the bounds and
	// advances MaintSeq without touching payloads, so StageSeq lags behind
	// until a descent or settle replays the leaf's backlog; StageSeq <=
	// MaintSeq always. ElimSlack bounds from above, over the eliminated
	// leaves of the subtree, the revival slack nAlive − OutCount (how close
	// the closest one is to revival); RepIn bounds from below, over the
	// reported leaves, the coverage count InCount (how close the closest one
	// is to demotion). Both are exact at leaves when freshly settled and
	// only loosen as deferred events are folded in conservatively; the
	// router skips a whole subtree when the bounds prove no deferred event
	// can flip a decision below it.
	MaintSeq  int
	StageSeq  int
	ElimSlack int
	RepIn     int

	// Payload carries algorithm state (e.g. AA's pending group views).
	Payload any

	parent      *Cell
	left, right *Cell
	split       geom.Halfspace
	splitFlip   geom.Halfspace // split.Flip(), cached (left-child paths reuse it)
	owner       *Tree
	poly        *geom.Polytope // lazily built H-rep, cached (cells are classified many times)

	// warm is the cell's LP basis snapshot, exported by the split-time
	// reduction chain (or inherited from the parent when the reduction had
	// nothing to export). Classification solves re-enter it. Ownership
	// rule: written exactly once, by the shard that created the cell,
	// before the cell is published to the scheduler; immutable afterwards,
	// so concurrent classification reads race-free. nil at the root and
	// whenever Tree.WarmStart is off.
	warm *lp.Basis
}

// Parent returns the parent node (nil at the root).
func (c *Cell) Parent() *Cell { return c.parent }

// Children returns the outside (left) and inside (right) children of an
// internal node; both nil for leaves.
func (c *Cell) Children() (left, right *Cell) { return c.left, c.right }

// IsLeaf reports whether c has not been split.
func (c *Cell) IsLeaf() bool { return c.left == nil }

// Split returns the halfspace that divided this internal node.
func (c *Cell) Split() geom.Halfspace { return c.split }

// Tree is the arrangement over a box-shaped product space.
type Tree struct {
	Root *Cell
	Dim  int
	Box  *geom.Polytope

	// Prune enables split-time redundancy elimination of child cell
	// H-representations (on by default). A cell's raw constraint path grows
	// by one row per ancestor, but deep cells are small and most ancestor
	// boundaries no longer touch them; pruning keeps the per-cell LP sizes
	// bounded by the cell's local geometry instead of its depth. Pruning
	// changes only the representation, never the point set, so classification
	// outcomes — and hence the reported region — are identical either way
	// (see FullPolytope for the export path).
	Prune bool

	// WarmStart enables warm-started LP solves (on by default): split-time
	// reduction chains basis snapshots test to test and leaves each child a
	// compact per-cell basis; classification re-enters it. Like Prune, the
	// flag changes only how solves start, never what they answer — regions
	// and all Stats except the LP pivot counters are byte-identical either
	// way (see TestWarmStartByteIdentical).
	WarmStart bool

	// Kernels enables the blocked pivot-elimination kernels inside the
	// tree's LP solves (on by default); off selects the historical scalar
	// loops (lp's DisableKernels path). Unlike WarmStart, the switch
	// changes NOTHING observable — not even the pivot counters, since the
	// kernels replay the identical pivot sequence bit for bit — only wall
	// time; it exists for benchmarking and the differential property
	// tests.
	Kernels bool

	Stats Stats

	// own is the built-in sequential shard: it writes into Tree.Stats
	// directly, so single-goroutine callers need no merge step.
	own Shard
}

// Stats aggregates arrangement counters; the paper's Figures 12b and 16
// report these.
type Stats struct {
	CellsCreated     int // leaves ever created (root included)
	Splits           int
	ContainmentTests int // LP-backed classifications
	FastTests        int // MBB filter tests
	FastHits         int // fast tests that were conclusive
	Reported         int
	Eliminated       int
	MaxDepth         int

	// PruneLPTests counts the redundancy-elimination LPs run at split time;
	// PrunedRows counts constraint rows dropped (by the interval prescreen
	// and the LP phase together). Both are kept separate from
	// ContainmentTests so the classification counters stay comparable with
	// pruning on or off.
	PruneLPTests int
	PrunedRows   int

	// RoutedLeaves, SkippedSubtrees, and TouchedFrontier profile routed
	// incremental maintenance (all zero outside maintained runs).
	// RoutedLeaves counts leaf visits by event application — a leaf whose
	// payload and counts were brought current by staging/settling events
	// onto it. SkippedSubtrees counts deferrals: nodes (subtree roots or
	// individual leaves) where the router proved from the MBB
	// classification of the pending events and the subtree bounds that no
	// decision below can flip, and moved on without descending.
	// TouchedFrontier counts leaves bucketed for re-verification (a report
	// demoted or an elimination revived by some event) — the cells a drain
	// actually reprocesses. All three merge by summation.
	RoutedLeaves    int
	SkippedSubtrees int
	TouchedFrontier int

	// LP aggregates the simplex-effort counters (pivots, warm hits/misses,
	// cold solves) of every classification and reduction solve charged to
	// this accumulator. Unlike every counter above, the pivot numbers are
	// NOT part of the determinism contract across WarmStart settings — that
	// is the point of the flag — but they merge order-free like the rest,
	// so totals are deterministic for a fixed configuration at workers=1.
	LP lp.Counters
}

// MergeTests adds o's classification counters (fast tests, fast hits, LP
// containment tests) into s. Parallel classification accumulates counters
// into per-worker Stats values and merges them here after the join; the
// merge is a sum, so totals are deterministic for any worker count and
// scheduling.
func (s *Stats) MergeTests(o Stats) {
	s.FastTests += o.FastTests
	s.FastHits += o.FastHits
	s.ContainmentTests += o.ContainmentTests
	s.LP.Add(o.LP)
}

// Merge folds every counter of o into s: sums throughout, except MaxDepth
// which merges by maximum. Both operations are commutative and
// associative, so merging per-worker shard stats in any order yields the
// same totals — the frontier scheduler's determinism depends on this.
func (s *Stats) Merge(o Stats) {
	s.CellsCreated += o.CellsCreated
	s.Splits += o.Splits
	s.ContainmentTests += o.ContainmentTests
	s.FastTests += o.FastTests
	s.FastHits += o.FastHits
	s.Reported += o.Reported
	s.Eliminated += o.Eliminated
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	s.PruneLPTests += o.PruneLPTests
	s.PrunedRows += o.PrunedRows
	s.RoutedLeaves += o.RoutedLeaves
	s.SkippedSubtrees += o.SkippedSubtrees
	s.TouchedFrontier += o.TouchedFrontier
	s.LP.Add(o.LP)
}

// New creates a tree over the given box polytope (normally [0,1]^d or, for
// IS-style problems, [p, 1]^d).
func New(box *geom.Polytope) *Tree {
	lo, hi, ok := box.MBB()
	t := &Tree{Dim: box.Dim, Box: box, Prune: true, WarmStart: true, Kernels: true}
	root := &Cell{ID: 0, MBBLo: lo, MBBHi: hi}
	if !ok {
		root.Status = Eliminated // empty search space
	}
	root.owner = t
	t.Root = root
	t.Stats.CellsCreated = 1
	t.own = Shard{tr: t, st: &t.Stats}
	return t
}

// NewRooted creates a tree over box whose root carries the given ID and
// depth instead of the canonical {0, 0}. It is the shard-root constructor
// of the space-sharded arrangement: the recursive bisection that carves
// the product space into 2^j shard boxes is a virtual top-level tree, and
// each shard's root takes the heap-numbered ID of its virtual node (lower
// child 2i+1, upper child 2i+2 from a virtual root 0) at depth j. Every
// descendant then derives its ID from that prefix exactly as New's trees
// do from 0, so for a fixed shard count the IDs across the whole shard
// forest stay path-derived, globally unique (up to depth 62), and
// independent of how shard or frontier work was scheduled.
func NewRooted(box *geom.Polytope, rootID, rootDepth int) *Tree {
	t := New(box)
	t.Root.ID = rootID
	t.Root.Depth = rootDepth
	if rootDepth > t.Stats.MaxDepth {
		t.Stats.MaxDepth = rootDepth
	}
	return t
}

// Shard is a mutation context for the tree: it owns the scratch buffers a
// split needs and a Stats accumulator for every counter the mutation
// updates. One shard must be used by at most one goroutine at a time, and
// concurrent shards must operate on disjoint subtrees (no cell may be an
// ancestor of a cell another shard mutates). Classification counters for
// read-side operations go through the same accumulator (Stats()).
type Shard struct {
	tr *Tree
	st *Stats

	// absorbed marks a worker shard whose stats were already folded into
	// the tree; AbsorbShard panics on a second fold (see there).
	absorbed bool

	// Reusable SplitBy scratch.
	pathBuf  []geom.Halfspace
	reduceIn []geom.Halfspace
}

// NewShard returns a fresh mutation context with a private Stats
// accumulator. Merge it back with AbsorbShard after the parallel phase.
func (tr *Tree) NewShard() *Shard {
	return &Shard{tr: tr, st: &Stats{}}
}

// AbsorbShard folds a worker shard's counters into the tree's Stats and
// retires the shard. Call it from a single goroutine after all shard work
// has completed; absorbing shards in any order yields identical totals
// (see Stats.Merge). Absorbing the same shard twice panics: a retired
// shard's accumulator is spent, so a second fold is always a lifecycle
// bug — either an aliased shard or a worker kept running past the join —
// that would silently corrupt whatever stats the shard had gathered since.
// The tree's built-in shard (OwnShard) writes into Tree.Stats directly and
// absorbing it is a harmless no-op.
func (tr *Tree) AbsorbShard(sh *Shard) {
	if sh.st == &tr.Stats {
		return
	}
	if sh.absorbed {
		panic("celltree: AbsorbShard called twice on the same shard")
	}
	sh.absorbed = true
	tr.Stats.Merge(*sh.st)
	*sh.st = Stats{}
}

// Stats returns the shard's counter accumulator; read-side classification
// helpers (Cell.ClassifyInto, Cell.FastClassifyInto) accept it so a
// worker's entire footprint lands in one mergeable struct.
func (sh *Shard) Stats() *Stats { return sh.st }

// OwnShard returns the tree's built-in sequential shard, whose accumulator
// is Tree.Stats itself (no merge step needed). It must not be used while
// any worker shard is active: it aliases the Stats every AbsorbShard
// writes.
func (tr *Tree) OwnShard() *Shard { return &tr.own }

// Polytope returns the H-representation of the cell: the box plus one
// oriented halfspace per ancestor split. The representation is built once
// (reusing the parent's cached representation) and cached; cells are
// classified against many halfspaces over their lifetime. SplitBy
// materializes the children's representations eagerly, so within a
// parallel phase the lazy path runs only for a root that was never split —
// a cell processed by exactly one goroutine.
func (c *Cell) Polytope() *geom.Polytope {
	if c.poly != nil {
		return c.poly
	}
	tr := c.owner
	var base []geom.Halfspace
	if c.parent == nil {
		base = tr.Box.Hs
	} else {
		h := c.parent.split
		if c == c.parent.left {
			h = c.parent.splitFlip
		}
		ph := c.parent.Polytope().Hs
		base = make([]geom.Halfspace, 0, len(ph)+1)
		base = append(base, ph...)
		base = append(base, h)
	}
	c.poly = &geom.Polytope{Dim: tr.Dim, Hs: base}
	return c.poly
}

// FullPolytope returns the cell's raw H-representation: the tree's box
// constraints followed by one oriented halfspace per ancestor split in
// root-to-leaf order. Unlike Polytope — whose cached representation is
// redundancy-pruned when Tree.Prune is set — the result depends only on
// the split history, so region export built on it is byte-identical
// whether pruning ran or not.
func (c *Cell) FullPolytope() *geom.Polytope {
	tr := c.owner
	hs := c.appendRawPath(make([]geom.Halfspace, 0, len(tr.Box.Hs)+c.Depth))
	return &geom.Polytope{Dim: tr.Dim, Hs: hs}
}

// appendRawPath appends the cell's raw constraint path — box rows, then one
// oriented split row per ancestor in root-to-leaf order — to dst.
func (c *Cell) appendRawPath(dst []geom.Halfspace) []geom.Halfspace {
	if c.parent == nil {
		return append(dst, c.owner.Box.Hs...)
	}
	dst = c.parent.appendRawPath(dst)
	h := c.parent.split
	if c == c.parent.left {
		h = c.parent.splitFlip
	}
	return append(dst, h)
}

// FastClassify runs the MBB-based filter test of Section 5.3. conclusive
// is false when the bounding box cannot decide the relation; callers then
// refine with an LP classification. The test is exact for Covers/Excludes
// answers it does give.
func (c *Cell) FastClassify(h geom.Halfspace) (rel geom.Relation, conclusive bool) {
	return c.FastClassifyInto(h, &c.owner.Stats)
}

// FastClassifyInto is FastClassify with the test counters accumulated into
// st instead of the tree's shared Stats. It reads only immutable cell
// state (the cached bounding box), so any number of goroutines may run it
// against the same cell concurrently, each with its own st; merge the
// per-worker counters afterward with Stats.MergeTests.
func (c *Cell) FastClassifyInto(h geom.Halfspace, st *Stats) (rel geom.Relation, conclusive bool) {
	st.FastTests++
	lo, hi := 0.0, 0.0
	for j, w := range h.W {
		if w >= 0 {
			lo += w * c.MBBLo[j]
			hi += w * c.MBBHi[j]
		} else {
			lo += w * c.MBBHi[j]
			hi += w * c.MBBLo[j]
		}
	}
	if lo >= h.T-geom.ClassifyTol {
		st.FastHits++
		return geom.Covers, true
	}
	if hi <= h.T+geom.ClassifyTol {
		st.FastHits++
		return geom.Excludes, true
	}
	return geom.Cuts, false
}

// Classify determines the cell-halfspace relation, using the fast MBB test
// first when useFast is set, then falling back to LP containment tests.
func (c *Cell) Classify(h geom.Halfspace, useFast bool) geom.Relation {
	return c.ClassifyInto(h, useFast, &c.owner.Stats)
}

// ClassifyInto is Classify with the test counters accumulated into st
// instead of the tree's shared Stats, enabling concurrent classification
// of one cell by multiple goroutines. Callers fanning out MUST call
// Prewarm on the cell first, so the lazily cached H-representation is
// materialized before being read concurrently; the LP scratch state
// itself is pooled per-goroutine (sync.Pool) and safe.
func (c *Cell) ClassifyInto(h geom.Halfspace, useFast bool, st *Stats) geom.Relation {
	if useFast {
		if rel, ok := c.FastClassifyInto(h, st); ok {
			return rel
		}
	}
	st.ContainmentTests++
	if c.owner.WarmStart {
		// Seed the slab solves from the cell's split-time basis (c.warm is
		// immutable once the cell is published, so concurrent classification
		// stays race-free; a nil seed still chains the two slab solves).
		return c.Polytope().ClassifyWarm(h, c.warm, &st.LP, !c.owner.Kernels)
	}
	return c.Polytope().ClassifyCounted(h, &st.LP, !c.owner.Kernels)
}

// Prewarm materializes the cell's cached H-representation (and, through
// the recursion, every ancestor's). Polytope() caches lazily on first use,
// which would race under concurrent classification; calling Prewarm from a
// single goroutine before fanning out makes subsequent Polytope() calls
// read-only.
func (c *Cell) Prewarm() { _ = c.Polytope() }

// SplitBy divides the leaf by h's boundary hyperplane using the tree's
// built-in sequential shard; see Shard.SplitBy.
func (tr *Tree) SplitBy(c *Cell, h geom.Halfspace) (left, right *Cell) {
	return tr.own.SplitBy(c, h)
}

// SplitBy divides the leaf by h's boundary hyperplane. The right child is
// the part inside h, the left child the part outside. Children inherit the
// parent's counts, receive path-derived IDs (2·ID+1 / 2·ID+2), and receive
// bounding boxes computed by analytically clipping the parent's box
// against the split halfspace — an O(d²) operation yielding a valid
// (possibly slightly loose) bounding box, which is all the
// filter-and-refine fast tests require, at a fraction of the cost of the
// 2d linear programs an exact box would take.
//
// Callers split only on halfspaces classified as Cuts, which certifies
// both sides non-empty; a child whose clipped box nevertheless degenerates
// (borderline numerics) is returned with Status Eliminated.
func (sh *Shard) SplitBy(c *Cell, h geom.Halfspace) (left, right *Cell) {
	if !c.IsLeaf() {
		panic("celltree: SplitBy on internal node")
	}
	tr := sh.tr
	c.split = h
	c.splitFlip = h.Flip()
	mk := func(side int) *Cell {
		return &Cell{
			ID:       2*c.ID + side,
			Depth:    c.Depth + 1,
			InCount:  c.InCount,
			OutCount: c.OutCount,
			// Children of a split are current through the same maintenance
			// event as their parent; the routing bounds are recomputed by the
			// maintainer's post-drain refresh (splits during maintenance only
			// happen inside re-verified subtrees).
			MaintSeq: c.MaintSeq,
			StageSeq: c.StageSeq,
			parent:   c,
			owner:    tr,
		}
	}
	left = mk(1)
	right = mk(2)
	c.left, c.right = left, right
	sh.st.Splits++
	if c.Depth+1 > sh.st.MaxDepth {
		sh.st.MaxDepth = c.Depth + 1
	}
	// The raw (unpruned) ancestor path. Bounding boxes are always derived
	// from it — interval propagation against a redundant row can tighten
	// bounds its implying rows cannot, so propagating over a pruned list
	// would yield looser (though still valid) boxes and perturb the fast
	// tests. Deriving from the raw path keeps MBBs, fast-test outcomes, and
	// Stats counters identical whether pruning is on or off.
	sh.pathBuf = c.appendRawPath(sh.pathBuf[:0])
	full := sh.pathBuf
	// Redundancy elimination, in contrast, starts from the parent's
	// already-reduced representation: redundancy is monotone down the tree
	// (a row implied over the parent cell stays implied over either child),
	// so rows the parent's reduction dropped never need re-testing.
	var base []geom.Halfspace
	if tr.Prune {
		base = c.Polytope().Hs
	}
	for _, ch := range [2]*Cell{left, right} {
		hs := h
		if ch == left {
			hs = c.splitFlip
		}
		lo, hi, ok := clipBox(c.MBBLo, c.MBBHi, hs)
		if ok {
			// Tighten by interval propagation over the cell's whole raw
			// constraint path (ancestors first, the new split row last):
			// each pass re-clips the box against every constraint, and a
			// shrunken box can make earlier constraints bite again. Two
			// passes capture most of the tightening at a fraction of the
			// cost of exact (LP-based) bounds.
			for pass := 0; pass < 2 && ok; pass++ {
				for _, hp := range full {
					if !clipBoxInPlace(lo, hi, hp) {
						ok = false
						break
					}
				}
				if ok && !clipBoxInPlace(lo, hi, hs) {
					ok = false
				}
			}
		}
		if !ok {
			ch.Status = Eliminated
			ch.Empty = true
			ch.MBBLo = c.MBBLo.Clone()
			ch.MBBHi = c.MBBLo.Clone() // degenerate box
			continue
		}
		ch.MBBLo, ch.MBBHi = lo, hi
		if tr.Prune {
			in := append(sh.reduceIn[:0], base...)
			in = append(in, hs)
			sh.reduceIn = in[:0]
			var red []geom.Halfspace
			var rst geom.ReduceStats
			if tr.WarmStart {
				// Warm-start the reduction chain from the parent's basis and
				// keep the last test's basis as the child's snapshot. Row keys
				// survive the hop because the child's system reuses the
				// parent's coefficient vectors (axis rows share the cached
				// unit normals, survivors alias the parent's rows). When the
				// chain exports nothing (no LP ran, or the final basis rested
				// on a transient row) the child shares the parent's snapshot —
				// a Basis is immutable, so sharing is safe.
				wb := &lp.Basis{}
				var wok bool
				red, rst, wok = geom.ReduceCellBasis(tr.Dim, in, lo, hi, c.warm, wb, &sh.st.LP, !tr.Kernels)
				if wok {
					ch.warm = wb
				} else {
					ch.warm = c.warm
				}
			} else {
				red, rst, _ = geom.ReduceCellBasis(tr.Dim, in, lo, hi, nil, nil, &sh.st.LP, !tr.Kernels)
			}
			sh.st.PruneLPTests += rst.LPTests
			sh.st.PrunedRows += rst.BoxDropped + rst.LPDropped
			ch.poly = &geom.Polytope{Dim: tr.Dim, Hs: red}
		} else {
			raw := make([]geom.Halfspace, 0, len(full)+1)
			raw = append(raw, full...)
			raw = append(raw, hs)
			ch.poly = &geom.Polytope{Dim: tr.Dim, Hs: raw}
		}
		sh.st.CellsCreated++
	}
	return left, right
}

// clipBoxInPlace tightens [lo, hi] against {x : W·x >= T} in place,
// returning false when the halfspace misses the box entirely. Same
// computation as clipBox without the allocations; used by the
// interval-propagation passes, which run once per constraint per split.
func clipBoxInPlace(lo, hi geom.Vector, h geom.Halfspace) bool {
	sMax := 0.0
	for j, w := range h.W {
		if w >= 0 {
			sMax += w * hi[j]
		} else {
			sMax += w * lo[j]
		}
	}
	if sMax < h.T-geom.Eps {
		return false
	}
	for j, w := range h.W {
		if w > geom.Eps {
			if bound := (h.T - (sMax - w*hi[j])) / w; bound > lo[j] {
				lo[j] = bound
			}
		} else if w < -geom.Eps {
			if bound := (h.T - (sMax - w*lo[j])) / w; bound < hi[j] {
				hi[j] = bound
			}
		}
		if lo[j] > hi[j]+geom.Eps {
			return false
		}
		if lo[j] > hi[j] {
			lo[j] = hi[j]
		}
	}
	return true
}

// clipBox returns the exact bounding box of [lo, hi] ∩ {x : W·x >= T},
// or ok=false when the intersection is empty. For each coordinate, the
// extreme feasible value is found by setting the other coordinates to
// their W-maximizing corner.
func clipBox(lo, hi geom.Vector, h geom.Halfspace) (nlo, nhi geom.Vector, ok bool) {
	// sMax = max of W·x over the box.
	sMax := 0.0
	for j, w := range h.W {
		if w >= 0 {
			sMax += w * hi[j]
		} else {
			sMax += w * lo[j]
		}
	}
	if sMax < h.T-geom.Eps {
		return nil, nil, false
	}
	backing := make([]float64, 2*len(lo))
	nlo = geom.Vector(backing[:len(lo):len(lo)])
	nhi = geom.Vector(backing[len(lo):])
	copy(nlo, lo)
	copy(nhi, hi)
	for j, w := range h.W {
		if w > geom.Eps {
			// Others at their max: w_j x_j >= T - (sMax - w_j hi_j).
			bound := (h.T - (sMax - w*hi[j])) / w
			if bound > nlo[j] {
				nlo[j] = bound
			}
		} else if w < -geom.Eps {
			// w_j < 0: x_j <= (T - otherMax)/w_j with otherMax = sMax - w_j lo_j.
			bound := (h.T - (sMax - w*lo[j])) / w
			if bound < nhi[j] {
				nhi[j] = bound
			}
		}
		if nlo[j] > nhi[j]+geom.Eps {
			return nil, nil, false
		}
		if nlo[j] > nhi[j] {
			nlo[j] = nhi[j]
		}
	}
	return nlo, nhi, true
}

// Report marks the leaf as part of the result region (sequential shard).
func (tr *Tree) Report(c *Cell) { tr.own.Report(c) }

// Eliminate marks the leaf as unable to reach the coverage threshold
// (sequential shard).
func (tr *Tree) Eliminate(c *Cell) { tr.own.Eliminate(c) }

// Report marks the leaf as part of the result region.
func (sh *Shard) Report(c *Cell) {
	if c.Status == Active {
		c.Status = Reported
		sh.st.Reported++
	}
}

// Eliminate marks the leaf as unable to reach the coverage threshold.
func (sh *Shard) Eliminate(c *Cell) {
	if c.Status == Active {
		c.Status = Eliminated
		sh.st.Eliminated++
	}
}

// Reactivate returns a decided leaf to the Active state. Incremental
// maintenance uses it when a user-set update invalidates an earlier
// report/elimination decision. Reactivation happens only between parallel
// phases, so it stays a Tree (sequential) operation.
func (tr *Tree) Reactivate(c *Cell) {
	switch c.Status {
	case Reported:
		tr.Stats.Reported--
	case Eliminated:
		tr.Stats.Eliminated--
	default:
		return
	}
	c.Status = Active
}

// Leaves appends all leaves under c (or the whole tree when c is nil) to
// dst and returns it.
func (tr *Tree) Leaves(c *Cell, dst []*Cell) []*Cell {
	if c == nil {
		c = tr.Root
	}
	if c.IsLeaf() {
		return append(dst, c)
	}
	dst = tr.Leaves(c.left, dst)
	dst = tr.Leaves(c.right, dst)
	return dst
}

// ReportedLeaves returns every leaf currently marked Reported.
func (tr *Tree) ReportedLeaves() []*Cell {
	var out []*Cell
	for _, l := range tr.Leaves(nil, nil) {
		if l.Status == Reported {
			out = append(out, l)
		}
	}
	return out
}
