package celltree

import (
	"math"
	"math/rand"
	"testing"

	"mir/internal/geom"
)

// TestFragmentRoundTrip pins the codec's core contract: cells and MBBs
// round-trip in order with every float64 bit-identical — including the
// awkward values (signed zero, subnormals, huge magnitudes) gob must
// carry exactly for the cross-process byte-identity gate to mean
// anything.
func TestFragmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	awkward := []float64{0, math.Copysign(0, -1), math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64, 1e300, -1e-300, math.Pi}
	for _, dim := range []int{2, 3, 5} {
		var cells []*geom.Polytope
		var mbbs [][2]geom.Vector
		for i := 0; i < 17; i++ {
			nHs := rng.Intn(6) // zero-halfspace cells are legal (an unsplit root)
			p := &geom.Polytope{Dim: dim}
			for j := 0; j < nHs; j++ {
				w := make(geom.Vector, dim)
				for d := range w {
					if rng.Intn(4) == 0 {
						w[d] = awkward[rng.Intn(len(awkward))]
					} else {
						w[d] = rng.NormFloat64()
					}
				}
				p.Hs = append(p.Hs, geom.Halfspace{W: w, T: rng.NormFloat64()})
			}
			cells = append(cells, p)
			lo := make(geom.Vector, dim)
			hi := make(geom.Vector, dim)
			for d := range lo {
				lo[d], hi[d] = rng.Float64(), rng.Float64()
			}
			mbbs = append(mbbs, [2]geom.Vector{lo, hi})
		}
		f, err := EncodeFragment(dim, cells, mbbs)
		if err != nil {
			t.Fatalf("dim=%d encode: %v", dim, err)
		}
		gotCells, gotMBBs, err := f.Decode()
		if err != nil {
			t.Fatalf("dim=%d decode: %v", dim, err)
		}
		if len(gotCells) != len(cells) || len(gotMBBs) != len(mbbs) {
			t.Fatalf("dim=%d: got %d cells / %d MBBs, want %d", dim, len(gotCells), len(gotMBBs), len(cells))
		}
		for i, want := range cells {
			got := gotCells[i]
			if got.Dim != want.Dim || len(got.Hs) != len(want.Hs) {
				t.Fatalf("dim=%d cell %d: shape mismatch", dim, i)
			}
			for j, h := range want.Hs {
				if math.Float64bits(got.Hs[j].T) != math.Float64bits(h.T) {
					t.Fatalf("dim=%d cell %d hs %d: T %v != %v", dim, i, j, got.Hs[j].T, h.T)
				}
				for d := range h.W {
					if math.Float64bits(got.Hs[j].W[d]) != math.Float64bits(h.W[d]) {
						t.Fatalf("dim=%d cell %d hs %d coord %d: %v != %v", dim, i, j, d, got.Hs[j].W[d], h.W[d])
					}
				}
			}
			for s := 0; s < 2; s++ {
				for d := range mbbs[i][s] {
					if math.Float64bits(gotMBBs[i][s][d]) != math.Float64bits(mbbs[i][s][d]) {
						t.Fatalf("dim=%d cell %d MBB[%d][%d] mismatch", dim, i, s, d)
					}
				}
			}
		}
	}
}

// TestFragmentEmpty pins that a shard reporting no cells (decided at its
// root) round-trips as an empty, valid fragment.
func TestFragmentEmpty(t *testing.T) {
	f, err := EncodeFragment(3, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cells, mbbs, err := f.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 || len(mbbs) != 0 {
		t.Fatalf("empty fragment decoded to %d cells / %d MBBs", len(cells), len(mbbs))
	}
}

// TestFragmentValidation pins that malformed fragments fail decode with
// an error instead of panicking in the merge.
func TestFragmentValidation(t *testing.T) {
	base := func() Fragment {
		return Fragment{Dim: 2, Counts: []int32{1}, T: []float64{1}, W: []float64{1, 2}, MBB: []float64{0, 0, 1, 1}}
	}
	if _, _, err := base().Decode(); err != nil {
		t.Fatalf("well-formed fragment rejected: %v", err)
	}
	cases := map[string]Fragment{}
	f := base()
	f.T = nil
	cases["missing T"] = f
	f = base()
	f.W = f.W[:1]
	cases["short W"] = f
	f = base()
	f.MBB = f.MBB[:3]
	cases["short MBB"] = f
	f = base()
	f.Counts[0] = -1
	cases["negative count"] = f
	f = base()
	f.Dim = 0
	cases["zero dim"] = f
	for name, frag := range cases {
		if _, _, err := frag.Decode(); err == nil {
			t.Errorf("%s: decode accepted malformed fragment", name)
		}
	}
	if _, err := EncodeFragment(2, []*geom.Polytope{{Dim: 2}}, nil); err == nil {
		t.Error("encode accepted mismatched cells/MBBs")
	}
	if _, err := EncodeFragment(2, []*geom.Polytope{{Dim: 3}}, make([][2]geom.Vector, 1)); err == nil {
		t.Error("encode accepted wrong-dim cell")
	}
}
