package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"mir/internal/geom"
	"mir/internal/topk"
)

// WriteVectors writes one vector per CSV row.
func WriteVectors(w io.Writer, vs []geom.Vector) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 0, 8)
	for _, v := range vs {
		rec = rec[:0]
		for _, x := range v {
			rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("data: write vector: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadVectors reads vectors (one per CSV row); all rows must have the same
// number of columns.
func ReadVectors(r io.Reader) ([]geom.Vector, error) {
	cr := csv.NewReader(r)
	var out []geom.Vector
	dim := -1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: read vector: %w", err)
		}
		if dim < 0 {
			dim = len(rec)
		} else if len(rec) != dim {
			return nil, fmt.Errorf("data: row %d has %d columns, want %d",
				len(out)+1, len(rec), dim)
		}
		v := make(geom.Vector, len(rec))
		for j, s := range rec {
			x, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("data: row %d col %d: %w", len(out)+1, j, err)
			}
			v[j] = x
		}
		out = append(out, v)
	}
	return out, nil
}

// WriteUsers writes user preferences as CSV rows of k followed by the
// weight coordinates.
func WriteUsers(w io.Writer, users []topk.UserPref) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 0, 9)
	for _, u := range users {
		rec = rec[:0]
		rec = append(rec, strconv.Itoa(u.K))
		for _, x := range u.W {
			rec = append(rec, strconv.FormatFloat(x, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("data: write user: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadUsers reads user preferences written by WriteUsers.
func ReadUsers(r io.Reader) ([]topk.UserPref, error) {
	cr := csv.NewReader(r)
	var out []topk.UserPref
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: read user: %w", err)
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("data: user row %d too short", len(out)+1)
		}
		k, err := strconv.Atoi(rec[0])
		if err != nil {
			return nil, fmt.Errorf("data: user row %d k: %w", len(out)+1, err)
		}
		w := make(geom.Vector, len(rec)-1)
		for j, s := range rec[1:] {
			x, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, fmt.Errorf("data: user row %d col %d: %w", len(out)+1, j+1, err)
			}
			w[j] = x
		}
		out = append(out, topk.UserPref{W: w, K: k})
	}
	return out, nil
}
