// Package data provides the dataset substrate for the mIR evaluation:
// the three synthetic product distributions standard in multi-criteria
// benchmarking (independent, correlated, anti-correlated; Börzsönyi et
// al.), the clustered and uniform user-vector generators used in the
// paper, synthetic stand-ins for the paper's real datasets (TripAdvisor,
// HOTEL, HOUSE, NBA — see DESIGN.md for the substitution rationale), and
// CSV persistence.
//
// All attributes are normalized to [0,1] with larger values better; user
// weight vectors lie on the unit simplex.
package data

import (
	"math"
	"math/rand"

	"mir/internal/geom"
	"mir/internal/topk"
)

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// softClamp confines x to (0, 1) without creating probability mass at the
// boundaries: out-of-range values are folded into a thin random band just
// inside. Hard clamping would make many products share attribute value
// exactly 1.0, turning the top corner itself into a top-k-th product and
// degenerating influential halfspaces to measure-zero sets — an artifact
// real rating data does not exhibit.
func softClamp(rng *rand.Rand, x float64) float64 {
	const edge = 0.996
	if x >= edge {
		return edge + (1-edge)*rng.Float64()*0.9
	}
	if x <= 1-edge {
		return (1 - edge) * (0.1 + 0.9*rng.Float64())
	}
	return x
}

// Independent generates n products with i.i.d. uniform attributes (IND).
func Independent(rng *rand.Rand, n, d int) []geom.Vector {
	ps := make([]geom.Vector, n)
	for i := range ps {
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = rng.Float64()
		}
		ps[i] = p
	}
	return ps
}

// Correlated generates n products whose attributes are positively
// correlated (COR): a product good in one attribute tends to be good in
// the others. Points concentrate around the main diagonal of the space.
func Correlated(rng *rand.Rand, n, d int) []geom.Vector {
	ps := make([]geom.Vector, n)
	for i := range ps {
		// Base quality peaked mid-scale (triangular), small per-attribute jitter.
		base := (rng.Float64() + rng.Float64()) / 2
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = softClamp(rng, base+rng.NormFloat64()*0.05)
		}
		ps[i] = p
	}
	return ps
}

// AntiCorrelated generates n products whose attributes trade off against
// each other (ANTI): points concentrate near a hyperplane of constant
// attribute sum, with strong negative correlation between attributes.
func AntiCorrelated(rng *rand.Rand, n, d int) []geom.Vector {
	ps := make([]geom.Vector, n)
	for i := range ps {
		total := float64(d) * clamp01(0.5+rng.NormFloat64()*0.05)
		// Split the total across attributes via a uniform Dirichlet draw.
		parts := make([]float64, d)
		s := 0.0
		for j := range parts {
			parts[j] = rng.ExpFloat64()
			s += parts[j]
		}
		p := make(geom.Vector, d)
		for j := range p {
			p[j] = softClamp(rng, total*parts[j]/s)
		}
		ps[i] = p
	}
	return ps
}

// simplexUniform draws a weight vector uniformly from the unit simplex.
func simplexUniform(rng *rand.Rand, d int) geom.Vector {
	w := make(geom.Vector, d)
	s := 0.0
	for j := range w {
		w[j] = rng.ExpFloat64()
		s += w[j]
	}
	for j := range w {
		w[j] /= s
	}
	return w
}

// normalizeSimplex clamps negatives to zero and rescales to sum one. A
// degenerate all-zero vector falls back to the uniform weight.
func normalizeSimplex(w geom.Vector) geom.Vector {
	s := 0.0
	for j := range w {
		if w[j] < 0 {
			w[j] = 0
		}
		s += w[j]
	}
	if s <= 0 {
		for j := range w {
			w[j] = 1 / float64(len(w))
		}
		return w
	}
	for j := range w {
		w[j] /= s
	}
	return w
}

// ClusteredUsers generates n user weight vectors forming nClusters Gaussian
// clusters of equal size with per-coordinate standard deviation sigma (CL).
// The paper's setting is 5 clusters with sigma = 0.05.
func ClusteredUsers(rng *rand.Rand, n, d, nClusters int, sigma float64) []geom.Vector {
	centers := make([]geom.Vector, nClusters)
	for i := range centers {
		centers[i] = simplexUniform(rng, d)
	}
	us := make([]geom.Vector, n)
	for i := range us {
		c := centers[i%nClusters]
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = c[j] + rng.NormFloat64()*sigma
		}
		us[i] = normalizeSimplex(w)
	}
	return us
}

// UniformUsers generates n user weight vectors uniformly distributed on the
// unit simplex (UN).
func UniformUsers(rng *rand.Rand, n, d int) []geom.Vector {
	us := make([]geom.Vector, n)
	for i := range us {
		us[i] = simplexUniform(rng, d)
	}
	return us
}

// WithK attaches the same k to every weight vector, producing the user
// preference records consumed by the top-k engine.
func WithK(weights []geom.Vector, k int) []topk.UserPref {
	us := make([]topk.UserPref, len(weights))
	for i, w := range weights {
		us[i] = topk.UserPref{W: w, K: k}
	}
	return us
}

// WithUniformK attaches to each user a k drawn uniformly from [lo, hi)
// (the paper's Figure 17b "uniform" diversity setting).
func WithUniformK(rng *rand.Rand, weights []geom.Vector, lo, hi int) []topk.UserPref {
	us := make([]topk.UserPref, len(weights))
	for i, w := range weights {
		us[i] = topk.UserPref{W: w, K: lo + rng.Intn(hi-lo)}
	}
	return us
}

// WithNormalK attaches to each user a k drawn from a normal distribution
// with the given mean and standard deviation, truncated to [1, max]
// (Figure 17b "normal" setting).
func WithNormalK(rng *rand.Rand, weights []geom.Vector, mean, stddev float64, max int) []topk.UserPref {
	us := make([]topk.UserPref, len(weights))
	for i, w := range weights {
		k := int(math.Round(mean + rng.NormFloat64()*stddev))
		if k < 1 {
			k = 1
		}
		if k > max {
			k = max
		}
		us[i] = topk.UserPref{W: w, K: k}
	}
	return us
}
