package data

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"mir/internal/geom"
	"mir/internal/topk"
)

func inUnitBox(t *testing.T, name string, ps []geom.Vector, d int) {
	t.Helper()
	for i, p := range ps {
		if len(p) != d {
			t.Fatalf("%s: point %d has dim %d, want %d", name, i, len(p), d)
		}
		for j, x := range p {
			if x < 0 || x > 1 {
				t.Fatalf("%s: point %d coord %d = %g out of [0,1]", name, i, j, x)
			}
		}
	}
}

func onSimplex(t *testing.T, name string, ws []geom.Vector, d int) {
	t.Helper()
	for i, w := range ws {
		if len(w) != d {
			t.Fatalf("%s: user %d has dim %d, want %d", name, i, len(w), d)
		}
		s := 0.0
		for _, x := range w {
			if x < -1e-12 {
				t.Fatalf("%s: user %d has negative weight %g", name, i, x)
			}
			s += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("%s: user %d weights sum to %g", name, i, s)
		}
	}
}

// pearson computes the average pairwise attribute correlation.
func pearson(ps []geom.Vector, a, b int) float64 {
	n := float64(len(ps))
	var ma, mb float64
	for _, p := range ps {
		ma += p[a]
		mb += p[b]
	}
	ma /= n
	mb /= n
	var cov, va, vb float64
	for _, p := range ps {
		cov += (p[a] - ma) * (p[b] - mb)
		va += (p[a] - ma) * (p[a] - ma)
		vb += (p[b] - mb) * (p[b] - mb)
	}
	return cov / math.Sqrt(va*vb)
}

func TestGeneratorsRangeAndShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	inUnitBox(t, "IND", Independent(rng, 500, 4), 4)
	inUnitBox(t, "COR", Correlated(rng, 500, 4), 4)
	inUnitBox(t, "ANTI", AntiCorrelated(rng, 500, 4), 4)
	onSimplex(t, "CL", ClusteredUsers(rng, 500, 4, 5, 0.05), 4)
	onSimplex(t, "UN", UniformUsers(rng, 500, 4), 4)
}

func TestCorrelationStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, d := 5000, 3
	cor := Correlated(rng, n, d)
	ind := Independent(rng, n, d)
	anti := AntiCorrelated(rng, n, d)
	rCor := pearson(cor, 0, 1)
	rInd := pearson(ind, 0, 1)
	rAnti := pearson(anti, 0, 1)
	if rCor < 0.5 {
		t.Errorf("COR correlation = %g, want strongly positive", rCor)
	}
	if math.Abs(rInd) > 0.1 {
		t.Errorf("IND correlation = %g, want near zero", rInd)
	}
	if rAnti > -0.2 {
		t.Errorf("ANTI correlation = %g, want negative", rAnti)
	}
}

// TestCorrelationAffectsSkyband: anti-correlated data must have a much
// larger skyband than correlated data — the property driving the paper's
// Figure 10a (365 vs 95 groups).
func TestCorrelationAffectsSkyband(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, d, k := 20000, 3, 10
	cor := len(topk.Skyband(Correlated(rng, n, d), k))
	anti := len(topk.Skyband(AntiCorrelated(rng, n, d), k))
	if anti <= cor {
		t.Errorf("skyband sizes: ANTI %d <= COR %d; expected ANTI much larger", anti, cor)
	}
}

func TestClusteredUsersCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	us := ClusteredUsers(rng, 1000, 3, 5, 0.05)
	// Users i and i+5 share a cluster; the average distance within a
	// cluster should be far below the global average distance.
	var within, across float64
	nw, na := 0, 0
	for i := 0; i+5 < 200; i++ {
		within += us[i].Dist(us[i+5])
		nw++
	}
	for i := 0; i < 200; i++ {
		across += us[i].Dist(us[(i+1)%1000])
		na++
	}
	if within/float64(nw) > across/float64(na) {
		t.Errorf("within-cluster dist %g not below global %g",
			within/float64(nw), across/float64(na))
	}
}

func TestTripAdvisorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps, ws := TripAdvisor(rng, 200, 500)
	inUnitBox(t, "TA products", ps, TripAdvisorDims)
	onSimplex(t, "TA users", ws, TripAdvisorDims)
	if r := pearson(ps, 0, 3); r < 0.3 {
		t.Errorf("TA aspect correlation = %g, want positive", r)
	}
	// Ratings skew high.
	mean := 0.0
	for _, p := range ps {
		mean += p.Sum() / float64(len(p))
	}
	mean /= float64(len(ps))
	if mean < 0.6 {
		t.Errorf("TA mean rating = %g, want skewed high", mean)
	}
}

func TestTripAdvisorProjected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ps, ws := TripAdvisorProjected(rng, 100, 200, []int{1, 2}) // room-location
	inUnitBox(t, "TA2 products", ps, 2)
	onSimplex(t, "TA2 users", ws, 2)
}

func TestRealStandIns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inUnitBox(t, "HOTEL", HotelSet(rng, 300), HotelD)
	inUnitBox(t, "HOUSE", HouseSet(rng, 300), HouseD)
	inUnitBox(t, "NBA", NBASet(rng, 300), NBAD)
}

func TestKAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ws := UniformUsers(rng, 100, 3)
	for _, u := range WithK(ws, 7) {
		if u.K != 7 {
			t.Fatalf("WithK: k = %d", u.K)
		}
	}
	for _, u := range WithUniformK(rng, ws, 1, 20) {
		if u.K < 1 || u.K >= 20 {
			t.Fatalf("WithUniformK: k = %d out of [1,20)", u.K)
		}
	}
	seen := map[int]bool{}
	for _, u := range WithNormalK(rng, ws, 10, 5, 40) {
		if u.K < 1 || u.K > 40 {
			t.Fatalf("WithNormalK: k = %d out of range", u.K)
		}
		seen[u.K] = true
	}
	if len(seen) < 5 {
		t.Errorf("WithNormalK produced only %d distinct k values", len(seen))
	}
}

func TestGammaDrawMean(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, alpha := range []float64{0.3, 0.7, 1.5} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += gammaDraw(rng, alpha)
		}
		mean := sum / n
		if math.Abs(mean-alpha) > 0.05*math.Max(1, alpha) {
			t.Errorf("Gamma(%g) sample mean = %g", alpha, mean)
		}
	}
}

func TestCSVRoundTripVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ps := Independent(rng, 50, 4)
	var buf bytes.Buffer
	if err := WriteVectors(&buf, ps); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVectors(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ps) {
		t.Fatalf("round trip: %d vs %d", len(back), len(ps))
	}
	for i := range ps {
		if !ps[i].AlmostEqual(back[i], 0) {
			t.Fatalf("vector %d differs: %v vs %v", i, ps[i], back[i])
		}
	}
}

func TestCSVRoundTripUsers(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	us := WithUniformK(rng, UniformUsers(rng, 30, 3), 1, 10)
	var buf bytes.Buffer
	if err := WriteUsers(&buf, us); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUsers(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range us {
		if back[i].K != us[i].K || !back[i].W.AlmostEqual(us[i].W, 0) {
			t.Fatalf("user %d differs", i)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadVectors(bytes.NewBufferString("1,2\n3\n")); err == nil {
		t.Error("ragged rows should error")
	}
	if _, err := ReadVectors(bytes.NewBufferString("1,abc\n")); err == nil {
		t.Error("non-numeric should error")
	}
	if _, err := ReadUsers(bytes.NewBufferString("x,0.5,0.5\n")); err == nil {
		t.Error("bad k should error")
	}
}
