package data

import (
	"math"
	"math/rand"

	"mir/internal/geom"
)

// The paper evaluates on one real preference dataset (TripAdvisor) and
// three real product sets (HOTEL, HOUSE, NBA). None are redistributable
// here, so this file provides synthetic stand-ins that preserve the
// properties the experiments exercise: cardinality, dimensionality, and
// correlation structure. DESIGN.md documents each substitution.

// TripAdvisorDims is the number of rating aspects the TripAdvisor dataset
// carries per hotel (value, room, location, cleanliness, front desk,
// service, business service).
const TripAdvisorDims = 7

// TripAdvisorHotels and TripAdvisorUsers are the cardinalities of the
// paper's TA dataset.
const (
	TripAdvisorHotels = 1850
	TripAdvisorUsers  = 137563
)

// TripAdvisor generates a TA-like dataset: nHotels hotels with 7 strongly
// correlated aspect ratings skewed toward the top of the scale (real
// review ratings cluster high, and a hotel good at one aspect tends to be
// good at all), and nUsers preference vectors mimicking weights extracted
// from review text: sparse emphasis on a few aspects, clustered around a
// handful of reviewer archetypes.
func TripAdvisor(rng *rand.Rand, nHotels, nUsers int) (products, weights []geom.Vector) {
	const d = TripAdvisorDims
	products = make([]geom.Vector, nHotels)
	for i := range products {
		// Overall hotel quality: skewed toward the upper-middle of the
		// scale (triangular on [0.45, 0.95]), like averaged star ratings;
		// only a thin tail reaches the top of the scale.
		q := 0.45 + 0.5*(rng.Float64()+rng.Float64())/2
		p := make(geom.Vector, d)
		// Room (1) and location (2) share an extra noise component beyond
		// the hotel-wide quality factor: premises and neighbourhood rise
		// and fall together more than, say, cleanliness and front desk do.
		// The paper's Figure 7 case study contrasts exactly these pairs.
		shared := rng.NormFloat64() * 0.07
		for j := range p {
			e := rng.NormFloat64() * 0.08
			if j == 1 || j == 2 {
				e = shared + rng.NormFloat64()*0.04
			}
			p[j] = softClamp(rng, q+e)
		}
		products[i] = p
	}

	// Reviewer archetypes: a business traveller weighs location and
	// service; a budget traveller weighs value; etc. Modeled as sparse
	// Dirichlet draws used as mixture centers.
	const nArchetypes = 8
	centers := make([]geom.Vector, nArchetypes)
	for a := range centers {
		centers[a] = sparseDirichlet(rng, d, 0.4)
	}
	weights = make([]geom.Vector, nUsers)
	for i := range weights {
		c := centers[rng.Intn(nArchetypes)]
		own := sparseDirichlet(rng, d, 0.6)
		w := make(geom.Vector, d)
		for j := range w {
			w[j] = 0.65*c[j] + 0.35*own[j]
		}
		weights[i] = normalizeSimplex(w)
	}
	return products, weights
}

// TripAdvisorProjected returns the TA-like dataset restricted to a chosen
// pair (or any subset) of the 7 aspects, renormalizing user weights over
// the kept aspects — the construction behind the paper's Figure 7 case
// study ("room-location space", "cleanliness-front desk space").
func TripAdvisorProjected(rng *rand.Rand, nHotels, nUsers int, dims []int) (products, weights []geom.Vector) {
	fullP, fullW := TripAdvisor(rng, nHotels, nUsers)
	products = make([]geom.Vector, len(fullP))
	for i, p := range fullP {
		q := make(geom.Vector, len(dims))
		for t, j := range dims {
			q[t] = p[j]
		}
		products[i] = q
	}
	weights = make([]geom.Vector, len(fullW))
	for i, w := range fullW {
		q := make(geom.Vector, len(dims))
		for t, j := range dims {
			q[t] = w[j]
		}
		weights[i] = normalizeSimplex(q)
	}
	return products, weights
}

// sparseDirichlet draws from a symmetric Dirichlet with concentration
// alpha < 1, yielding weight vectors dominated by a few coordinates — the
// shape of aspect weights mined from review text.
func sparseDirichlet(rng *rand.Rand, d int, alpha float64) geom.Vector {
	w := make(geom.Vector, d)
	s := 0.0
	for j := range w {
		g := gammaDraw(rng, alpha)
		w[j] = g
		s += g
	}
	if s <= 0 {
		return simplexUniform(rng, d)
	}
	for j := range w {
		w[j] /= s
	}
	return w
}

// gammaDraw samples Gamma(alpha, 1) for alpha <= 1 via the Ahrens-Dieter
// rejection method (sufficient for Dirichlet draws; alpha > 1 falls back
// to a sum of exponentials approximation, unused here).
func gammaDraw(rng *rand.Rand, alpha float64) float64 {
	if alpha >= 1 {
		// Sum of floor(alpha) exponentials plus fractional part.
		g := 0.0
		for i := 0; i < int(alpha); i++ {
			g += rng.ExpFloat64()
		}
		if frac := alpha - float64(int(alpha)); frac > 1e-12 {
			g += gammaDraw(rng, frac)
		}
		return g
	}
	// Ahrens-Dieter GS algorithm.
	for {
		u := rng.Float64()
		b := (alpha + math.E) / math.E
		p := b * u
		if p <= 1 {
			x := math.Pow(p, 1/alpha)
			if rng.ExpFloat64() >= x {
				return x
			}
		} else {
			x := -math.Log((b - p) / alpha)
			if rng.ExpFloat64() >= (1-alpha)*math.Log(x) {
				return x
			}
		}
	}
}

// HotelDefaults, HouseDefaults, NBADefaults mirror the cardinalities and
// dimensionalities of the paper's three real product sets.
const (
	HotelN, HotelD = 418843, 4
	HouseN, HouseD = 315265, 6
	NBAN, NBAD     = 21960, 8
)

// HotelSet generates a stand-in for the HOTEL dataset: n hotel records
// with d = 4 mildly correlated attributes (stars, price value, etc.).
func HotelSet(rng *rand.Rand, n int) []geom.Vector {
	ps := make([]geom.Vector, n)
	for i := range ps {
		base := rng.Float64()
		p := make(geom.Vector, HotelD)
		for j := range p {
			p[j] = softClamp(rng, 0.5*base+0.5*rng.Float64())
		}
		ps[i] = p
	}
	return ps
}

// HouseSet generates a stand-in for the HOUSE dataset: n household
// expenditure records with d = 6 near-independent attributes.
func HouseSet(rng *rand.Rand, n int) []geom.Vector {
	return Independent(rng, n, HouseD)
}

// NBASet generates a stand-in for the NBA dataset: n player-season records
// with d = 8 attributes correlated through overall player skill.
func NBASet(rng *rand.Rand, n int) []geom.Vector {
	ps := make([]geom.Vector, n)
	for i := range ps {
		skill := rng.Float64()
		p := make(geom.Vector, NBAD)
		for j := range p {
			p[j] = softClamp(rng, 0.6*skill+0.4*rng.Float64()+rng.NormFloat64()*0.05)
		}
		ps[i] = p
	}
	return ps
}
