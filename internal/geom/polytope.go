package geom

import (
	"mir/internal/lp"
)

// Relation classifies a halfspace against a convex region.
type Relation int

const (
	// Covers: the region lies entirely inside the halfspace.
	Covers Relation = iota
	// Excludes: the region lies entirely outside the halfspace.
	Excludes
	// Cuts: the halfspace boundary passes through the region.
	Cuts
)

// String returns a human-readable relation name.
func (r Relation) String() string {
	switch r {
	case Covers:
		return "covers"
	case Excludes:
		return "excludes"
	case Cuts:
		return "cuts"
	default:
		return "unknown"
	}
}

// ClassifyTol is the tolerance used when deciding whether a halfspace
// covers, excludes, or cuts a polytope. Intersections thinner than this are
// treated as boundary touches (measure zero) and do not count as cuts.
//
// ClassifyTol is the authoritative constant for geometric classification
// decisions, just as lp.Eps (1e-9) is the authoritative constant for
// numerical-zero questions inside the simplex solvers. The two are
// deliberately two orders of magnitude apart: every classification runs as
// feasibility tests on slabs of half-width ClassifyTol, so LP answers would
// have to be wrong by 100x their pivot tolerance to flip a relation.
// tolerance_test.go pins both the ordering and the boundary stability.
const ClassifyTol = 1e-7

// Polytope is a convex region in H-representation: the intersection of the
// non-negative orthant with a set of closed halfspaces {W·x >= T}. All
// regions manipulated by the mIR algorithms (arrangement cells, group
// intersections) are polytopes of this form.
type Polytope struct {
	Dim int
	Hs  []Halfspace
}

// NewBox returns the axis-aligned box [lo, hi]^dim as a polytope. The lower
// bounds are included explicitly even though the orthant implies lo >= 0,
// so the H-representation is self-describing.
func NewBox(dim int, lo, hi float64) *Polytope {
	p := &Polytope{Dim: dim, Hs: make([]Halfspace, 0, 2*dim)}
	for i := 0; i < dim; i++ {
		wLo := make(Vector, dim)
		wLo[i] = 1
		p.Hs = append(p.Hs, Halfspace{W: wLo, T: lo}) // x_i >= lo
		wHi := make(Vector, dim)
		wHi[i] = -1
		p.Hs = append(p.Hs, Halfspace{W: wHi, T: -hi}) // x_i <= hi
	}
	return p
}

// NewBoxCorners returns the axis-aligned box [lo[i], hi[i]] per dimension.
func NewBoxCorners(lo, hi Vector) *Polytope {
	dim := len(lo)
	p := &Polytope{Dim: dim, Hs: make([]Halfspace, 0, 2*dim)}
	for i := 0; i < dim; i++ {
		wLo := make(Vector, dim)
		wLo[i] = 1
		p.Hs = append(p.Hs, Halfspace{W: wLo, T: lo[i]})
		wHi := make(Vector, dim)
		wHi[i] = -1
		p.Hs = append(p.Hs, Halfspace{W: wHi, T: -hi[i]})
	}
	return p
}

// Clone returns a polytope sharing no mutable state with p. The halfspace
// slice is copied; the coefficient vectors themselves are immutable by
// convention and shared.
func (p *Polytope) Clone() *Polytope {
	hs := make([]Halfspace, len(p.Hs))
	copy(hs, p.Hs)
	return &Polytope{Dim: p.Dim, Hs: hs}
}

// With returns a new polytope further constrained by h, sharing the
// existing constraint storage where possible.
func (p *Polytope) With(h Halfspace) *Polytope {
	hs := make([]Halfspace, len(p.Hs)+1)
	copy(hs, p.Hs)
	hs[len(p.Hs)] = h
	return &Polytope{Dim: p.Dim, Hs: hs}
}

// Append adds h to p in place.
func (p *Polytope) Append(h Halfspace) { p.Hs = append(p.Hs, h) }

// IsEmpty reports whether the polytope has no points (up to tolerance).
func (p *Polytope) IsEmpty() bool {
	f := getScratch(false)
	feas := f.feasible(p)
	feaserPool.Put(f)
	return !feas
}

// FeasiblePoint returns a point of the polytope, or ok=false when empty.
// The returned vector is caller-owned.
func (p *Polytope) FeasiblePoint() (Vector, bool) {
	s := getScratch(false)
	defer feaserPool.Put(s)
	A, b := s.loadLP(p)
	ok, x := s.w.FeasibleFlat(p.Dim, A, b)
	if !ok {
		return nil, false
	}
	return Vector(append([]float64(nil), x...)), true
}

// Maximize returns max obj·x over the polytope along with a maximizer.
// ok is false when the polytope is empty or the program is unbounded
// (which cannot happen for the box-bounded cells used by mIR). The
// returned vector is caller-owned.
func (p *Polytope) Maximize(obj Vector) (val float64, arg Vector, ok bool) {
	s := getScratch(false)
	defer feaserPool.Put(s)
	A, b := s.loadLP(p)
	r := s.w.MaximizeFlat(obj, A, b)
	if r.Status != lp.Optimal {
		return 0, nil, false
	}
	return r.Obj, Vector(append([]float64(nil), r.X...)), true
}

// Minimize returns min obj·x over the polytope along with a minimizer.
// The returned vector is caller-owned.
func (p *Polytope) Minimize(obj Vector) (val float64, arg Vector, ok bool) {
	s := getScratch(false)
	defer feaserPool.Put(s)
	neg := growFloat(&s.cBuf, len(obj))
	for i, v := range obj {
		neg[i] = -v
	}
	A, b := s.loadLP(p)
	r := s.w.MaximizeFlat(neg, A, b)
	if r.Status != lp.Optimal {
		return 0, nil, false
	}
	return -r.Obj, Vector(append([]float64(nil), r.X...)), true
}

// Classify determines the relation between the polytope and halfspace h.
// An empty polytope classifies as Excludes, as does a degenerate sliver
// thinner than ClassifyTol around the boundary (measure zero for the mIR
// semantics).
//
// The test runs as two feasibility checks rather than min/max
// optimizations: "is any point of p more than ClassifyTol below the
// boundary?" and "... above the boundary?". Each check runs on the dual
// simplex (lp.Feaser), which has only d rows and no phase 1 — this is the
// hot path of the arrangement algorithms.
func (p *Polytope) Classify(h Halfspace) Relation {
	return p.classify(h, nil, nil, false, false)
}

// ClassifyCounted is Classify with LP effort accounting: the pivot and
// solve counters of the underlying solvers are accumulated into ctr. The
// solve path is exactly Classify's, on the historical scalar pivot loops
// when scalarLP is set (lp's DisableKernels path) — bit-identical either
// way, so the flag changes wall time and nothing else.
func (p *Polytope) ClassifyCounted(h Halfspace, ctr *lp.Counters, scalarLP bool) Relation {
	return p.classify(h, nil, ctr, false, scalarLP)
}

// ClassifyWarm is Classify with warm-started LPs: the below-slab solve
// re-enters seed (a basis snapshot from a related system — typically the
// cell's split-time reduction basis; nil is allowed), and the above-slab
// solve chains from the below solve's exported basis. The relation
// returned is identical to Classify's for any seed — warm starts change
// pivot paths, never verdicts; the seed is only read. scalarLP as in
// ClassifyCounted.
func (p *Polytope) ClassifyWarm(h Halfspace, seed *lp.Basis, ctr *lp.Counters, scalarLP bool) Relation {
	return p.classify(h, seed, ctr, true, scalarLP)
}

func (p *Polytope) classify(h Halfspace, seed *lp.Basis, ctr *lp.Counters, warm, scalarLP bool) Relation {
	f := getScratch(scalarLP)
	defer feaserPool.Put(f)
	f0, w0 := f.f.Counters, f.w.Counters
	if warm {
		f.loadKeyed(p)
	} else {
		f.load(p)
	}
	// below: p ∩ {W·x <= T - tol}, expressed as {-W·x >= -(T - tol)}.
	f.neg = f.neg[:0]
	for _, w := range h.W {
		f.neg = append(f.neg, -w)
	}
	f.ws = append(f.ws, f.neg)
	f.ts = append(f.ts, -(h.T - ClassifyTol))
	var belowEmpty, aboveEmpty bool
	if warm {
		// The slab rows are transient (f.neg is reused scratch; h's vector
		// appears with two different signs across the two solves), so they
		// carry nil keys: they can never anchor a cross-call snapshot.
		f.keys = append(f.keys, nil)
		belowEmpty = !f.solveSeeded(p.Dim, seed)
		chain := seed
		if f.f.ExportBasis(&f.basis) {
			chain = &f.basis
		}
		f.ws[len(f.ws)-1] = h.W
		f.ts[len(f.ts)-1] = h.T + ClassifyTol
		aboveEmpty = !f.solveSeeded(p.Dim, chain)
	} else {
		belowEmpty = !f.solve(p.Dim)
		f.ws[len(f.ws)-1] = h.W
		f.ts[len(f.ts)-1] = h.T + ClassifyTol
		aboveEmpty = !f.solve(p.Dim)
	}
	if ctr != nil {
		d := f.f.Counters.Sub(f0)
		d.Add(f.w.Counters.Sub(w0))
		ctr.Add(d)
	}
	switch {
	case belowEmpty && !aboveEmpty:
		return Covers
	case aboveEmpty && !belowEmpty:
		return Excludes
	case belowEmpty && aboveEmpty:
		return Excludes // empty or boundary-thin polytope
	default:
		return Cuts
	}
}

// MBB returns the minimum bounding box of the polytope as (lo, hi) corner
// vectors. ok is false when the polytope is empty. The 2d directional
// solves share one pooled workspace and constraint load: the first solve
// loads the program cold, the remaining 2d-1 re-enter its optimal basis
// with a new objective (lp.ResolveObjective) — the basis of one support
// direction is usually a pivot or two from the next. A pooled workspace
// may hold a stale program, so the cold first solve is mandatory; the
// re-entries fall back to a cold solve if refused.
func (p *Polytope) MBB() (lo, hi Vector, ok bool) {
	s := getScratch(false)
	defer feaserPool.Put(s)
	A, b := s.loadLP(p)
	lo = make(Vector, p.Dim)
	hi = make(Vector, p.Dim)
	obj := growFloat(&s.cBuf, p.Dim)
	for i := range obj {
		obj[i] = 0
	}
	first := true
	solveDir := func() lp.Result {
		if !first {
			if r, warm := s.w.ResolveObjective(obj); warm {
				return r
			}
		}
		first = false
		return s.w.MaximizeFlat(obj, A, b)
	}
	for i := 0; i < p.Dim; i++ {
		// min x_i = -max(-x_i).
		obj[i] = -1
		r := solveDir()
		if r.Status != lp.Optimal {
			return nil, nil, false
		}
		lo[i] = -r.Obj
		obj[i] = 1
		r = solveDir()
		if r.Status != lp.Optimal {
			return nil, nil, false
		}
		hi[i] = r.Obj
		obj[i] = 0
	}
	return lo, hi, true
}

// ContainsPoint reports whether x satisfies every constraint (within Eps)
// and lies in the non-negative orthant.
func (p *Polytope) ContainsPoint(x Vector) bool {
	for _, v := range x {
		if v < -Eps {
			return false
		}
	}
	for _, h := range p.Hs {
		if !h.Contains(x) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of p and q as a new polytope.
func (p *Polytope) Intersect(q *Polytope) *Polytope {
	hs := make([]Halfspace, 0, len(p.Hs)+len(q.Hs))
	hs = append(hs, p.Hs...)
	hs = append(hs, q.Hs...)
	return &Polytope{Dim: p.Dim, Hs: hs}
}
