package geom

import "math"

// Polygon2D is a convex polygon in the plane with vertices in
// counterclockwise order. It supports the two-dimensional visualizations of
// the paper (Figures 1, 6, 7): clipping the unit square by influential
// halfplanes and measuring the resulting regions.
type Polygon2D struct {
	Vs []Vector
}

// NewSquare returns the axis-aligned square [lo,hi]^2 as a polygon.
func NewSquare(lo, hi float64) *Polygon2D {
	return &Polygon2D{Vs: []Vector{
		{lo, lo}, {hi, lo}, {hi, hi}, {lo, hi},
	}}
}

// Clip returns the part of the polygon inside halfplane h (W·x >= T),
// using the Sutherland–Hodgman algorithm. The result may be empty.
func (pg *Polygon2D) Clip(h Halfspace) *Polygon2D {
	n := len(pg.Vs)
	if n == 0 {
		return &Polygon2D{}
	}
	out := make([]Vector, 0, n+1)
	for i := 0; i < n; i++ {
		cur := pg.Vs[i]
		nxt := pg.Vs[(i+1)%n]
		cIn := h.Eval(cur) >= -Eps
		nIn := h.Eval(nxt) >= -Eps
		switch {
		case cIn && nIn:
			out = append(out, nxt)
		case cIn && !nIn:
			out = append(out, intersect2D(cur, nxt, h))
		case !cIn && nIn:
			out = append(out, intersect2D(cur, nxt, h), nxt)
		}
	}
	return &Polygon2D{Vs: dedup2D(out)}
}

// intersect2D returns the point where segment a-b crosses the boundary of h.
func intersect2D(a, b Vector, h Halfspace) Vector {
	fa, fb := h.Eval(a), h.Eval(b)
	t := fa / (fa - fb)
	return Vector{a[0] + t*(b[0]-a[0]), a[1] + t*(b[1]-a[1])}
}

// dedup2D removes consecutive (near-)duplicate vertices.
func dedup2D(vs []Vector) []Vector {
	if len(vs) == 0 {
		return vs
	}
	out := vs[:0]
	for _, v := range vs {
		if len(out) == 0 || !out[len(out)-1].AlmostEqual(v, 1e-12) {
			out = append(out, v)
		}
	}
	if len(out) > 1 && out[0].AlmostEqual(out[len(out)-1], 1e-12) {
		out = out[:len(out)-1]
	}
	return out
}

// IsEmpty reports whether the polygon has vanished (fewer than 3 vertices).
func (pg *Polygon2D) IsEmpty() bool { return len(pg.Vs) < 3 }

// Area returns the polygon's area via the shoelace formula.
func (pg *Polygon2D) Area() float64 {
	n := len(pg.Vs)
	if n < 3 {
		return 0
	}
	s := 0.0
	for i := 0; i < n; i++ {
		a, b := pg.Vs[i], pg.Vs[(i+1)%n]
		s += a[0]*b[1] - b[0]*a[1]
	}
	return math.Abs(s) / 2
}

// Centroid returns the polygon's centroid; the zero vector when empty.
func (pg *Polygon2D) Centroid() Vector {
	n := len(pg.Vs)
	if n == 0 {
		return Vector{0, 0}
	}
	c := Vector{0, 0}
	for _, v := range pg.Vs {
		c[0] += v[0]
		c[1] += v[1]
	}
	c[0] /= float64(n)
	c[1] /= float64(n)
	return c
}

// ClipPolytope2D converts a two-dimensional H-rep polytope to its polygon,
// clipping the [lo,hi]^2 frame by each constraint. Used to render
// arrangement cells.
func ClipPolytope2D(p *Polytope, lo, hi float64) *Polygon2D {
	pg := NewSquare(lo, hi)
	for _, h := range p.Hs {
		pg = pg.Clip(h)
		if pg.IsEmpty() {
			return pg
		}
	}
	return pg
}
