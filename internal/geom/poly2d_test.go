package geom

import (
	"math"
	"testing"
)

func TestSquareArea(t *testing.T) {
	sq := NewSquare(0, 1)
	if a := sq.Area(); math.Abs(a-1) > 1e-12 {
		t.Errorf("area = %g, want 1", a)
	}
	if sq.IsEmpty() {
		t.Error("square reported empty")
	}
}

func TestClipDiagonal(t *testing.T) {
	sq := NewSquare(0, 1)
	// Keep x + y >= 1: upper-right triangle, area 1/2.
	tri := sq.Clip(Halfspace{W: Vector{1, 1}, T: 1})
	if a := tri.Area(); math.Abs(a-0.5) > 1e-9 {
		t.Errorf("triangle area = %g, want 0.5", a)
	}
	// Clip the complement: also 1/2.
	tri2 := sq.Clip(Halfspace{W: Vector{1, 1}, T: 1}.Flip())
	if a := tri2.Area(); math.Abs(a-0.5) > 1e-9 {
		t.Errorf("complement area = %g, want 0.5", a)
	}
	// Areas of the two halves sum to the square.
	if a := tri.Area() + tri2.Area(); math.Abs(a-1) > 1e-9 {
		t.Errorf("halves sum to %g", a)
	}
}

func TestClipToEmpty(t *testing.T) {
	sq := NewSquare(0, 1)
	gone := sq.Clip(Halfspace{W: Vector{1, 1}, T: 3})
	if !gone.IsEmpty() {
		t.Errorf("expected empty polygon, got %d vertices", len(gone.Vs))
	}
	if gone.Area() != 0 {
		t.Errorf("empty polygon area = %g", gone.Area())
	}
}

func TestClipSequence(t *testing.T) {
	// Clip to the band 0.25 <= x <= 0.75: area 1/2.
	sq := NewSquare(0, 1)
	band := sq.
		Clip(Halfspace{W: Vector{1, 0}, T: 0.25}).
		Clip(Halfspace{W: Vector{-1, 0}, T: -0.75})
	if a := band.Area(); math.Abs(a-0.5) > 1e-9 {
		t.Errorf("band area = %g, want 0.5", a)
	}
}

func TestCentroid(t *testing.T) {
	sq := NewSquare(0, 1)
	c := sq.Centroid()
	if !c.AlmostEqual(Vector{0.5, 0.5}, 1e-12) {
		t.Errorf("centroid = %v", c)
	}
}

func TestClipPolytope2D(t *testing.T) {
	p := NewBox(2, 0, 1).
		With(Halfspace{W: Vector{1, 1}, T: 1}). // x+y >= 1
		With(Halfspace{W: Vector{-1, 1}, T: 0}) // y >= x
	pg := ClipPolytope2D(p, 0, 1)
	// The region is the triangle (0.5,0.5), (1,1), (0,1): area 1/4.
	if a := pg.Area(); math.Abs(a-0.25) > 1e-9 {
		t.Errorf("area = %g, want 0.25", a)
	}
	// Empty polytope renders empty.
	p.Append(Halfspace{W: Vector{1, 0}, T: 2})
	if !ClipPolytope2D(p, 0, 1).IsEmpty() {
		t.Error("expected empty render")
	}
}
