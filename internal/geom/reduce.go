package geom

import (
	"sync"

	"mir/internal/lp"
)

// This file implements split-time redundancy elimination for arrangement
// cells. A cell's raw H-representation grows by one halfspace per ancestor
// split, so constraint counts grow linearly with tree depth while most
// ancestor boundaries end up far away from the (shrinking) cell. Reducing
// the representation at split time keeps every downstream feasibility and
// classification solve small.
//
// The reduction is exact as a point set, which is what lets AA's output
// stay byte-identical with pruning on or off:
//
//  1. The cell's bounding box [lo, hi] (a certified superset of the cell)
//     enters the representation explicitly as 2d axis rows. The axis rows
//     share globally cached unit normals, so they cost no per-cell vector
//     allocations.
//  2. O(d) interval prescreen: any original row whose minimum over the box
//     clears its threshold is satisfied everywhere in the box, hence
//     implied by the axis rows, and is dropped. Exactness: with the box
//     rows present, box ∩ survivors = box ∩ all rows = cell.
//  3. One small LP per surviving suspect row: a row is dropped when the
//     cell minus that row still lies strictly (by reduceLPTol) inside it —
//     i.e. {other rows, W·x <= T + reduceLPTol} is infeasible. The margin
//     makes the drop robust to the solver's own lp.Eps-scale noise.

// reduceBoxTol absorbs the interval arithmetic's floating-point roundoff:
// a row is treated as implied by the box when its minimum over the box
// falls short of the threshold by at most this much. The slack is five
// orders of magnitude below ClassifyTol, so the (at most) reduceBoxTol-thin
// sliver a drop can add to the region is invisible to classification.
const reduceBoxTol = 1e-12

// reduceLPTol is the implication margin of the LP-backed phase: a suspect
// row is dropped only when every point satisfying the remaining rows clears
// the suspect's threshold by more than this. It sits one order of magnitude
// above lp.Eps (pivot noise) and one below ClassifyTol.
const reduceLPTol = 1e-8

// unitCache shares the +e_j / -e_j normals of axis-aligned halfspaces
// across all cells, keyed by dimension. The vectors are immutable by the
// package's sharing convention.
var unitCache sync.Map // int -> [2][]Vector

func unitVectors(dim int) (pos, neg []Vector) {
	if v, ok := unitCache.Load(dim); ok {
		pair := v.([2][]Vector)
		return pair[0], pair[1]
	}
	pos = make([]Vector, dim)
	neg = make([]Vector, dim)
	backing := make([]float64, 2*dim*dim)
	for j := 0; j < dim; j++ {
		p := backing[2*j*dim : (2*j+1)*dim]
		n := backing[(2*j+1)*dim : (2*j+2)*dim]
		p[j] = 1
		n[j] = -1
		pos[j] = p
		neg[j] = n
	}
	actual, _ := unitCache.LoadOrStore(dim, [2][]Vector{pos, neg})
	pair := actual.([2][]Vector)
	return pair[0], pair[1]
}

// ReduceStats reports what a ReduceCell call did.
type ReduceStats struct {
	// BoxDropped rows were eliminated by the O(d) interval prescreen.
	BoxDropped int
	// LPTests counts the feasibility solves run by the LP phase.
	LPTests int
	// LPDropped rows were eliminated by the LP phase.
	LPDropped int
}

// ReduceCell returns an equivalent, typically much smaller
// H-representation for a cell with raw constraint rows hs and certified
// bounding box [lo, hi]: 2*dim axis rows encoding the box followed by the
// rows of hs that survive redundancy elimination, in their original order.
// The returned slice is freshly allocated; the axis rows share cached unit
// normals and the surviving rows share hs's coefficient vectors.
func ReduceCell(dim int, hs []Halfspace, lo, hi Vector) ([]Halfspace, ReduceStats) {
	out, st, _ := ReduceCellBasis(dim, hs, lo, hi, nil, nil, nil, false)
	return out, st
}

// ReduceCellBasis is ReduceCell with warm-started LPs and basis export.
// seed (optional) is a basis snapshot from a related system — the parent
// cell's — used to warm-start the first redundancy LP; each subsequent
// test warm-starts from the previous one's exported basis, monotone with
// the incremental reduction. When export is non-nil the last successful
// test's basis is left in it and ok reports whether it holds a usable
// snapshot (false when no LP ran or no basis was exportable) — the caller
// then keeps the parent's snapshot instead. ctr, when non-nil, accumulates
// the LP effort counters. The surviving rows are identical for every
// (seed, export) combination: warm starts change pivot paths, never the
// feasibility verdicts that decide a drop.
//
// With seed == nil and export == nil the solves run cold and unkeyed —
// exactly the legacy pivot sequence — so the cold path stays selectable
// (celltree gates it on Tree.WarmStart). scalarLP routes the solves
// through the historical scalar pivot loops (lp's DisableKernels path);
// bit-identical either way (celltree gates it on Tree.Kernels).
func ReduceCellBasis(dim int, hs []Halfspace, lo, hi Vector, seed, export *lp.Basis, ctr *lp.Counters, scalarLP bool) ([]Halfspace, ReduceStats, bool) {
	var st ReduceStats
	pos, neg := unitVectors(dim)
	out := make([]Halfspace, 0, 2*dim+len(hs))
	for j := 0; j < dim; j++ {
		out = append(out, Halfspace{W: pos[j], T: lo[j]})  // x_j >= lo_j
		out = append(out, Halfspace{W: neg[j], T: -hi[j]}) // x_j <= hi_j
	}
	nBox := len(out)

	// Phase A: interval prescreen against the box.
	for _, h := range hs {
		minOver := 0.0
		for j, w := range h.W {
			if w >= 0 {
				minOver += w * lo[j]
			} else {
				minOver += w * hi[j]
			}
		}
		if minOver >= h.T-reduceBoxTol {
			st.BoxDropped++
			continue
		}
		out = append(out, h)
	}

	// Phase B: one Feaser solve per surviving suspect row. Testing row i
	// against the current survivor set (rows already dropped excluded) in
	// ascending order is deterministic and never drops two rows that only
	// imply each other jointly.
	warm := export != nil
	chain := seed
	exported := false
	if len(out) > nBox+1 {
		s := getScratch(scalarLP)
		f0, w0 := s.f.Counters, s.w.Counters
		for i := nBox; i < len(out); {
			h := out[i]
			// Load every row except i, then ask for a point at or below the
			// suspect's boundary (W·x <= T + margin, i.e. -W·x >= -(T+margin)).
			s.ws = s.ws[:0]
			s.ts = s.ts[:0]
			s.keys = s.keys[:0]
			for k, o := range out {
				if k == i {
					continue
				}
				s.ws = append(s.ws, o.W)
				s.ts = append(s.ts, o.T)
				if warm {
					s.keys = append(s.keys, lp.KeyOf(o.W))
				}
			}
			nneg := growFloat(&s.neg, dim)
			for j, w := range h.W {
				nneg[j] = -w
			}
			s.ws = append(s.ws, nneg)
			s.ts = append(s.ts, -(h.T + reduceLPTol))
			st.LPTests++
			var reachable bool
			if warm {
				// The negated suspect is transient scratch: nil key.
				s.keys = append(s.keys, nil)
				reachable = s.solveSeeded(dim, chain)
				if s.f.ExportBasis(export) {
					chain = export
					exported = true
				}
			} else {
				reachable = s.solve(dim)
			}
			if !reachable {
				// No point of the other rows reaches the suspect's boundary:
				// the row is strictly implied — drop it (order-preserving).
				out = append(out[:i], out[i+1:]...)
				st.LPDropped++
				continue
			}
			i++
		}
		if ctr != nil {
			d := s.f.Counters.Sub(f0)
			d.Add(s.w.Counters.Sub(w0))
			ctr.Add(d)
		}
		feaserPool.Put(s)
	}
	return out, st, exported
}
