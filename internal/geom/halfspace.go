package geom

import "fmt"

// Halfspace is the closed region {x : W·x >= T}. In mIR, the influential
// halfspace of user w with top-k-th score t is Halfspace{W: w, T: t}: the
// part of product space where a product enters the user's top-k result.
type Halfspace struct {
	W Vector
	T float64
}

// Eval returns W·x - T: positive inside, negative outside, ~0 on the
// boundary hyperplane.
func (h Halfspace) Eval(x Vector) float64 { return h.W.Dot(x) - h.T }

// Contains reports whether x lies in the closed halfspace (within Eps).
func (h Halfspace) Contains(x Vector) bool { return h.Eval(x) >= -Eps }

// StrictlyContains reports whether x lies strictly inside (beyond Eps of
// the boundary).
func (h Halfspace) StrictlyContains(x Vector) bool { return h.Eval(x) > Eps }

// Flip returns the closed complement {x : W·x <= T}, represented with
// negated coefficients as {-W·x >= -T}. The shared boundary hyperplane
// belongs to both halves; the mIR algorithms treat it as measure zero.
func (h Halfspace) Flip() Halfspace {
	return Halfspace{W: h.W.Scale(-1), T: -h.T}
}

// String renders the halfspace inequality.
func (h Halfspace) String() string {
	return fmt.Sprintf("{x : %v·x >= %.4f}", h.W, h.T)
}
