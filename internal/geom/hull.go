package geom

import (
	"sort"
	"sync"

	"mir/internal/lp"
)

// ExtremePoints returns the indices of the points of pts that are vertices
// of the convex hull conv(pts), in arbitrary dimension.
//
// The result V satisfies conv(V) = conv(pts), which is the property Lemmas
// 3 and 4 of the paper require. Borderline points (on a hull facet) may be
// conservatively included; that enlarges V without breaking conv(V) =
// conv(pts).
//
// Dimensions 1 and 2 use direct methods (min/max scan, Andrew's monotone
// chain); higher dimensions use one small linear program per point ("is
// pts[i] a convex combination of the others?"), replacing the qhull
// dependency of the original implementation.
func ExtremePoints(pts []Vector) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if n <= 2 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	switch len(pts[0]) {
	case 1:
		return extreme1D(pts)
	case 2:
		return extreme2D(pts)
	default:
		return extremeLP(pts)
	}
}

// extreme1D returns the argmin and argmax of one-dimensional points.
func extreme1D(pts []Vector) []int {
	lo, hi := 0, 0
	for i, p := range pts {
		if p[0] < pts[lo][0] {
			lo = i
		}
		if p[0] > pts[hi][0] {
			hi = i
		}
	}
	if lo == hi {
		return []int{lo}
	}
	return []int{lo, hi}
}

// hull2DScratch holds the reusable working state of extreme2D; the sort
// runs through the sort.Interface implementation so no per-call closures
// escape. Only the returned vertex list is freshly allocated (callers cache
// it).
type hull2DScratch struct {
	pts          []Vector
	order        []int
	lower, upper []int
	seen         []bool
}

func (s *hull2DScratch) Len() int      { return len(s.order) }
func (s *hull2DScratch) Swap(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] }
func (s *hull2DScratch) Less(a, b int) bool {
	pa, pb := s.pts[s.order[a]], s.pts[s.order[b]]
	if pa[0] != pb[0] {
		return pa[0] < pb[0]
	}
	return pa[1] < pb[1]
}

var hull2DPool = sync.Pool{New: func() any { return new(hull2DScratch) }}

func cross2D(o, a, b Vector) float64 {
	return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
}

// chain2D appends the monotone-chain hull of s.pts over s.order (walked
// forward or backward) into hull and returns it.
func chain2D(pts []Vector, order []int, backward bool, hull []int) []int {
	for k := range order {
		i := order[k]
		if backward {
			i = order[len(order)-1-k]
		}
		for len(hull) >= 2 &&
			cross2D(pts[hull[len(hull)-2]], pts[hull[len(hull)-1]], pts[i]) < -Eps {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, i)
	}
	return hull
}

// extreme2D runs Andrew's monotone chain. Collinear boundary points are
// retained (safe over-approximation of the vertex set).
func extreme2D(pts []Vector) []int {
	n := len(pts)
	s := hull2DPool.Get().(*hull2DScratch)
	if cap(s.order) < n {
		s.order = make([]int, n)
		s.seen = make([]bool, n)
	}
	s.order = s.order[:n]
	s.seen = s.seen[:n]
	for i := range s.order {
		s.order[i] = i
		s.seen[i] = false
	}
	s.pts = pts
	sort.Sort(s)
	s.lower = chain2D(pts, s.order, false, s.lower[:0])
	s.upper = chain2D(pts, s.order, true, s.upper[:0])
	var out []int
	for _, i := range s.lower {
		if !s.seen[i] {
			s.seen[i] = true
			out = append(out, i)
		}
	}
	for _, i := range s.upper {
		if !s.seen[i] {
			s.seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	s.pts = nil
	hull2DPool.Put(s)
	return out
}

// extremeLP tests each point against the hull of the remaining points.
func extremeLP(pts []Vector) []int {
	var out []int
	others := make([]Vector, 0, len(pts)-1)
	for i, p := range pts {
		others = others[:0]
		for j, q := range pts {
			if j != i {
				others = append(others, q)
			}
		}
		if !InConvexHull(p, others) {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		// All points coincide (each is a combination of the duplicates);
		// keep one representative.
		out = append(out, 0)
	}
	return out
}

// InConvexHull reports whether q is a convex combination of pts. It solves
// the feasibility program: alpha >= 0, sum(alpha) = 1, sum(alpha_j pts_j) =
// q. Exact equalities are used, so borderline points round toward "not in
// hull" — the safe direction for vertex-set computations.
//
// The program is assembled into a pooled flat scratch and solved on the
// scratch's reusable workspace: this is AA's inner-group hot path and runs
// allocation-free in steady state.
func InConvexHull(q Vector, pts []Vector) bool {
	return InConvexHullCounted(q, pts, nil, false)
}

// InConvexHullCounted is InConvexHull with LP effort accounting: the
// underlying workspace's pivot and solve counters are accumulated into ctr
// when it is non-nil. The solve path is identical, on the historical
// scalar pivot loops when scalarLP is set (lp's DisableKernels path) —
// bit-identical either way.
func InConvexHullCounted(q Vector, pts []Vector, ctr *lp.Counters, scalarLP bool) bool {
	n := len(pts)
	if n == 0 {
		return false
	}
	dim := len(q)
	s := getScratch(scalarLP)
	defer feaserPool.Put(s)
	if ctr != nil {
		w0 := s.w.Counters
		defer func() { ctr.Add(s.w.Counters.Sub(w0)) }()
	}
	// 2*(dim+1) inequality rows encode the dim+1 equalities, in the same
	// row order as the original implementation (pos/neg pairs per
	// coordinate, then the two convexity rows).
	rows := 2 * (dim + 1)
	A := growFloat(&s.aFlat, rows*n)
	b := growFloat(&s.bBuf, rows)
	for t := 0; t < dim; t++ {
		pos := A[(2*t)*n : (2*t+1)*n]
		neg := A[(2*t+1)*n : (2*t+2)*n]
		for j := 0; j < n; j++ {
			v := pts[j][t]
			pos[j] = v
			neg[j] = -v
		}
		b[2*t] = q[t] + hullTol
		b[2*t+1] = -q[t] + hullTol
	}
	ones := A[2*dim*n : (2*dim+1)*n]
	negOnes := A[(2*dim+1)*n : (2*dim+2)*n]
	for j := 0; j < n; j++ {
		ones[j] = 1
		negOnes[j] = -1
	}
	b[2*dim] = 1 + hullTol
	b[2*dim+1] = -1 + hullTol
	ok, _ := s.w.FeasibleFlat(n, A, b)
	return ok
}

// hullTol relaxes the convex-combination equalities by a hair so that
// points numerically identical to a hull member are recognized as inside.
const hullTol = 1e-9

// InConvexHullIdx is InConvexHull over the subset pts[idx[0]], pts[idx[1]],
// ... without materializing the subset.
func InConvexHullIdx(q Vector, pts []Vector, idx []int) bool {
	sub := make([]Vector, len(idx))
	for i, j := range idx {
		sub[i] = pts[j]
	}
	return InConvexHull(q, sub)
}
