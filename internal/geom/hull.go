package geom

import (
	"sort"

	"mir/internal/lp"
)

// ExtremePoints returns the indices of the points of pts that are vertices
// of the convex hull conv(pts), in arbitrary dimension.
//
// The result V satisfies conv(V) = conv(pts), which is the property Lemmas
// 3 and 4 of the paper require. Borderline points (on a hull facet) may be
// conservatively included; that enlarges V without breaking conv(V) =
// conv(pts).
//
// Dimensions 1 and 2 use direct methods (min/max scan, Andrew's monotone
// chain); higher dimensions use one small linear program per point ("is
// pts[i] a convex combination of the others?"), replacing the qhull
// dependency of the original implementation.
func ExtremePoints(pts []Vector) []int {
	n := len(pts)
	if n == 0 {
		return nil
	}
	if n <= 2 {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		return idx
	}
	switch len(pts[0]) {
	case 1:
		return extreme1D(pts)
	case 2:
		return extreme2D(pts)
	default:
		return extremeLP(pts)
	}
}

// extreme1D returns the argmin and argmax of one-dimensional points.
func extreme1D(pts []Vector) []int {
	lo, hi := 0, 0
	for i, p := range pts {
		if p[0] < pts[lo][0] {
			lo = i
		}
		if p[0] > pts[hi][0] {
			hi = i
		}
	}
	if lo == hi {
		return []int{lo}
	}
	return []int{lo, hi}
}

// extreme2D runs Andrew's monotone chain. Collinear boundary points are
// retained (safe over-approximation of the vertex set).
func extreme2D(pts []Vector) []int {
	n := len(pts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := pts[order[a]], pts[order[b]]
		if pa[0] != pb[0] {
			return pa[0] < pb[0]
		}
		return pa[1] < pb[1]
	})
	cross := func(o, a, b Vector) float64 {
		return (a[0]-o[0])*(b[1]-o[1]) - (a[1]-o[1])*(b[0]-o[0])
	}
	build := func(seq []int) []int {
		var hull []int
		for _, i := range seq {
			for len(hull) >= 2 &&
				cross(pts[hull[len(hull)-2]], pts[hull[len(hull)-1]], pts[i]) < -Eps {
				hull = hull[:len(hull)-1]
			}
			hull = append(hull, i)
		}
		return hull
	}
	lower := build(order)
	rev := make([]int, n)
	for i := range order {
		rev[i] = order[n-1-i]
	}
	upper := build(rev)
	seen := make(map[int]bool, len(lower)+len(upper))
	var out []int
	for _, i := range lower {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	for _, i := range upper {
		if !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// extremeLP tests each point against the hull of the remaining points.
func extremeLP(pts []Vector) []int {
	var out []int
	others := make([]Vector, 0, len(pts)-1)
	for i, p := range pts {
		others = others[:0]
		for j, q := range pts {
			if j != i {
				others = append(others, q)
			}
		}
		if !InConvexHull(p, others) {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		// All points coincide (each is a combination of the duplicates);
		// keep one representative.
		out = append(out, 0)
	}
	return out
}

// InConvexHull reports whether q is a convex combination of pts. It solves
// the feasibility program: alpha >= 0, sum(alpha) = 1, sum(alpha_j pts_j) =
// q. Exact equalities are used, so borderline points round toward "not in
// hull" — the safe direction for vertex-set computations.
func InConvexHull(q Vector, pts []Vector) bool {
	n := len(pts)
	if n == 0 {
		return false
	}
	dim := len(q)
	// 2*(dim+1) inequality rows encode the dim+1 equalities.
	A := make([][]float64, 0, 2*(dim+1))
	b := make([]float64, 0, 2*(dim+1))
	for t := 0; t < dim; t++ {
		pos := make([]float64, n)
		neg := make([]float64, n)
		for j := 0; j < n; j++ {
			pos[j] = pts[j][t]
			neg[j] = -pts[j][t]
		}
		A = append(A, pos, neg)
		b = append(b, q[t]+hullTol, -q[t]+hullTol)
	}
	ones := make([]float64, n)
	negOnes := make([]float64, n)
	for j := 0; j < n; j++ {
		ones[j] = 1
		negOnes[j] = -1
	}
	A = append(A, ones, negOnes)
	b = append(b, 1+hullTol, -1+hullTol)
	ok, _ := lp.Feasible(A, b)
	return ok
}

// hullTol relaxes the convex-combination equalities by a hair so that
// points numerically identical to a hull member are recognized as inside.
const hullTol = 1e-9

// InConvexHullIdx is InConvexHull over the subset pts[idx[0]], pts[idx[1]],
// ... without materializing the subset.
func InConvexHullIdx(q Vector, pts []Vector, idx []int) bool {
	sub := make([]Vector, len(idx))
	for i, j := range idx {
		sub[i] = pts[j]
	}
	return InConvexHull(q, sub)
}
