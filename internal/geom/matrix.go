package geom

import "fmt"

// This file holds the flat-matrix scoring kernels behind the layered
// top-k index (internal/topk): batched inner products of one weight
// vector against the rows of a row-major d-column matrix. The kernels
// exist so the index can score whole product layers over contiguous
// memory instead of chasing per-product heap vectors.
//
// Bit-identity contract: for every row r, the result equals
// w.Dot(row_r) exactly — same multiplication pairs, same accumulation
// tree (the four-way-unrolled s0..s3 sums of dot, folded as
// (s0+s1)+(s2+s3)). The indexed and naive top-k paths therefore produce
// byte-identical scores, which the engine's index-on/off determinism
// guarantee rests on.

// DotRows computes out[r] = w · flat[r*d : (r+1)*d] for every r in
// [0, len(out)). flat must hold at least len(out)*d values and w must
// have length d. Rows are processed in pairs (two independent
// accumulator sets keep the FP units busy); each row's accumulation
// order is exactly that of Vector.Dot, so results are bit-identical to
// the per-vector kernel.
func DotRows(flat []float64, d int, w Vector, out []float64) {
	if len(w) != d {
		panic(fmt.Sprintf("geom: DotRows weight has %d components, want %d", len(w), d))
	}
	n := len(out)
	if n == 0 {
		return
	}
	if len(flat) < n*d {
		panic(fmt.Sprintf("geom: DotRows matrix has %d values, need %d", len(flat), n*d))
	}
	if d == 0 {
		for r := range out {
			out[r] = 0
		}
		return
	}
	r := 0
	for ; r+2 <= n; r += 2 {
		a := flat[r*d : r*d+d : r*d+d]
		b := flat[(r+1)*d : (r+1)*d+d : (r+1)*d+d]
		var a0, a1, a2, a3 float64
		var b0, b1, b2, b3 float64
		i := 0
		for ; i+4 <= d; i += 4 {
			a0 += w[i] * a[i]
			a1 += w[i+1] * a[i+1]
			a2 += w[i+2] * a[i+2]
			a3 += w[i+3] * a[i+3]
			b0 += w[i] * b[i]
			b1 += w[i+1] * b[i+1]
			b2 += w[i+2] * b[i+2]
			b3 += w[i+3] * b[i+3]
		}
		for ; i < d; i++ {
			a0 += w[i] * a[i]
			b0 += w[i] * b[i]
		}
		out[r] = (a0 + a1) + (a2 + a3)
		out[r+1] = (b0 + b1) + (b2 + b3)
	}
	if r < n {
		out[r] = dot(w, flat[r*d:r*d+d])
	}
}

// RowMax widens max (length d) to the componentwise maximum of itself
// and the rows of flat. It is the bound-maintenance helper of the
// layered index: a layer's per-dimension maxima, dotted with a
// non-negative weight vector, upper-bound every score in the layer.
// flat must hold whole rows (a multiple of d values) and max must have
// length d; like DotRows, RowMax panics on a mismatch rather than
// silently ignoring a ragged trailing partial row, which would leave
// the bound unsound for whatever the caller meant the tail to be.
func RowMax(flat []float64, d int, max []float64) {
	if d == 0 {
		return
	}
	if len(max) != d {
		panic(fmt.Sprintf("geom: RowMax bound has %d components, want %d", len(max), d))
	}
	if len(flat)%d != 0 {
		panic(fmt.Sprintf("geom: RowMax matrix has %d values, not a multiple of %d", len(flat), d))
	}
	for off := 0; off+d <= len(flat); off += d {
		row := flat[off : off+d : off+d]
		for j, x := range row {
			if x > max[j] {
				max[j] = x
			}
		}
	}
}

// RowMin widens min (length d) to the componentwise minimum of itself
// and the rows of flat: the lower-band counterpart of RowMax. The pair
// brackets every row of a block between two vectors, which is what the
// halfspace prescreen of the space-sharded arrangement dots against box
// corners to decide whole blocks at once. Same contract as RowMax: flat
// must hold whole rows and min must have length d, or RowMin panics.
func RowMin(flat []float64, d int, min []float64) {
	if d == 0 {
		return
	}
	if len(min) != d {
		panic(fmt.Sprintf("geom: RowMin bound has %d components, want %d", len(min), d))
	}
	if len(flat)%d != 0 {
		panic(fmt.Sprintf("geom: RowMin matrix has %d values, not a multiple of %d", len(flat), d))
	}
	for off := 0; off+d <= len(flat); off += d {
		row := flat[off : off+d : off+d]
		for j, x := range row {
			if x < min[j] {
				min[j] = x
			}
		}
	}
}
