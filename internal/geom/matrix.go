package geom

import (
	"fmt"

	"mir/internal/kern"
)

// This file holds the flat-matrix scoring entry points behind the
// layered top-k index (internal/topk) and the shard prescreen: batched
// inner products of one weight vector against the rows of a row-major
// d-column matrix, and componentwise row extrema. The batched forms
// exist so the index can score whole product layers over contiguous
// memory instead of chasing per-product heap vectors.
//
// The actual loops live in internal/kern. Each operation has two entry
// points: the default (DotRows, RowMax, RowMin) dispatches once per
// call to kern's width-specialized blocked kernels, and the *Scalar
// twin runs kern's verbatim copy of the historical loop — the path
// DisableKernels selects. The two are bit-identical (see kern's
// package comment for the exact contract and the NaN-payload caveat),
// so which one a caller picks changes wall time and nothing else.
//
// Bit-identity contract: for every row r, the result equals
// w.Dot(row_r) exactly — same multiplication pairs, same accumulation
// tree (the four-way-unrolled s0..s3 sums of dot, folded as
// (s0+s1)+(s2+s3)). The indexed and naive top-k paths therefore produce
// byte-identical scores, which the engine's index-on/off determinism
// guarantee rests on.

// DotRows computes out[r] = w · flat[r*d : (r+1)*d] for every r in
// [0, len(out)) via the blocked kernels. flat must hold at least
// len(out)*d values and w must have length d. out must not alias w
// (never the case in-repo: outputs are scratch buffers, weights are
// user vectors).
func DotRows(flat []float64, d int, w Vector, out []float64) {
	if dotRowsTrivial(flat, d, w, out) {
		return
	}
	kern.DotRows(flat, d, w, out)
}

// DotRowsScalar is DotRows on the historical pair-loop kernel: the
// path DisableKernels selects. Bit-identical to DotRows.
func DotRowsScalar(flat []float64, d int, w Vector, out []float64) {
	if dotRowsTrivial(flat, d, w, out) {
		return
	}
	kern.DotRowsScalar(flat, d, w, out)
}

// dotRowsTrivial validates the DotRows contract and handles the shapes
// the kernels assume away (no rows, zero-width rows), reporting true
// when the call is already complete.
func dotRowsTrivial(flat []float64, d int, w Vector, out []float64) bool {
	if len(w) != d {
		panic(fmt.Sprintf("geom: DotRows weight has %d components, want %d", len(w), d))
	}
	n := len(out)
	if n == 0 {
		return true
	}
	if len(flat) < n*d {
		panic(fmt.Sprintf("geom: DotRows matrix has %d values, need %d", len(flat), n*d))
	}
	if d == 0 {
		for r := range out {
			out[r] = 0
		}
		return true
	}
	return false
}

// RowMax widens max (length d) to the componentwise maximum of itself
// and the rows of flat, via the blocked kernels. It is the
// bound-maintenance helper of the layered index: a layer's
// per-dimension maxima, dotted with a non-negative weight vector,
// upper-bound every score in the layer. flat must hold whole rows (a
// multiple of d values) and max must have length d; like DotRows,
// RowMax panics on a mismatch rather than silently ignoring a ragged
// trailing partial row, which would leave the bound unsound for
// whatever the caller meant the tail to be. max must not alias flat.
func RowMax(flat []float64, d int, max []float64) {
	if rowBoundTrivial("RowMax", flat, d, max) {
		return
	}
	kern.RowMax(flat, d, max)
}

// RowMaxScalar is RowMax on the historical row-major loop: the path
// DisableKernels selects. Bit-identical to RowMax.
func RowMaxScalar(flat []float64, d int, max []float64) {
	if rowBoundTrivial("RowMax", flat, d, max) {
		return
	}
	kern.RowMaxScalar(flat, d, max)
}

// RowMin widens min (length d) to the componentwise minimum of itself
// and the rows of flat: the lower-band counterpart of RowMax. The pair
// brackets every row of a block between two vectors, which is what the
// halfspace prescreen of the space-sharded arrangement dots against box
// corners to decide whole blocks at once. Same contract as RowMax.
func RowMin(flat []float64, d int, min []float64) {
	if rowBoundTrivial("RowMin", flat, d, min) {
		return
	}
	kern.RowMin(flat, d, min)
}

// RowMinScalar is RowMin on the historical row-major loop: the path
// DisableKernels selects. Bit-identical to RowMin.
func RowMinScalar(flat []float64, d int, min []float64) {
	if rowBoundTrivial("RowMin", flat, d, min) {
		return
	}
	kern.RowMinScalar(flat, d, min)
}

// rowBoundTrivial validates the RowMax/RowMin contract — the bound
// length check runs BEFORE the d == 0 early return, so a caller
// passing a stale non-empty bound for a zero-dimensional matrix panics
// instead of silently getting no widening — and reports true when
// there is nothing to widen.
func rowBoundTrivial(name string, flat []float64, d int, bound []float64) bool {
	if len(bound) != d {
		panic(fmt.Sprintf("geom: %s bound has %d components, want %d", name, len(bound), d))
	}
	if d == 0 {
		if len(flat) != 0 {
			panic(fmt.Sprintf("geom: %s matrix has %d values with zero-width rows", name, len(flat)))
		}
		return true
	}
	if len(flat)%d != 0 {
		panic(fmt.Sprintf("geom: %s matrix has %d values, not a multiple of %d", name, len(flat), d))
	}
	return len(flat) == 0
}
