package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestDotRowsBitIdenticalToDot pins the kernel contract the indexed
// top-k engine's byte-identity rests on: DotRows over a flat row-major
// matrix returns, for every row, the exact bits Vector.Dot produces on
// the same values — across dimensionalities that exercise the unrolled
// pairs, the 4-wide inner loop, and the scalar tails.
func TestDotRowsBitIdenticalToDot(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 11} {
		for _, n := range []int{1, 2, 3, 7, 64, 65, 130} {
			flat := make([]float64, n*d)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			w := make(Vector, d)
			for j := range w {
				w[j] = rng.NormFloat64()
			}
			out := make([]float64, n)
			DotRows(flat, d, w, out)
			for r := 0; r < n; r++ {
				want := w.Dot(Vector(flat[r*d : (r+1)*d]))
				if math.Float64bits(out[r]) != math.Float64bits(want) {
					t.Fatalf("d=%d n=%d row %d: DotRows=%x Dot=%x", d, n, r,
						math.Float64bits(out[r]), math.Float64bits(want))
				}
			}
		}
	}
}

// TestDotRowsBoundMonotone checks the upper-bound property the layered
// index's early termination relies on: for non-negative weights, the
// kernel's score of a componentwise maxima row is >= the kernel's score
// of every row it was widened from, in float arithmetic, with no
// epsilon slack.
func TestDotRowsBoundMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 200; trial++ {
		d := 1 + rng.Intn(8)
		n := 1 + rng.Intn(100)
		flat := make([]float64, n*d)
		for i := range flat {
			flat[i] = rng.Float64()
		}
		max := make([]float64, d)
		copy(max, flat[:d])
		RowMax(flat[d:], d, max)
		w := make(Vector, d)
		for j := range w {
			w[j] = rng.Float64()
		}
		out := make([]float64, n)
		DotRows(flat, d, w, out)
		bound := Vector(max).Dot(w)
		for r, sc := range out {
			if sc > bound {
				t.Fatalf("trial %d row %d: score %v above maxima bound %v", trial, r, sc, bound)
			}
		}
	}
}

func TestRowMaxWidens(t *testing.T) {
	max := []float64{0.5, 0.5}
	RowMax([]float64{0.1, 0.9, 0.7, 0.2}, 2, max)
	if max[0] != 0.7 || max[1] != 0.9 {
		t.Fatalf("RowMax = %v, want [0.7 0.9]", max)
	}
}

// TestRowMaxValidates pins the length contract: a ragged trailing partial
// row or a mis-sized bound vector must panic like DotRows does, not be
// silently ignored (a dropped tail would leave the layer bound unsound for
// whatever the caller meant it to cover).
func TestRowMaxValidates(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: RowMax did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ragged matrix", func() {
		RowMax([]float64{0.1, 0.9, 0.7}, 2, []float64{0, 0})
	})
	mustPanic("short bound", func() {
		RowMax([]float64{0.1, 0.9}, 2, []float64{0})
	})
	// Whole rows with a matching bound stay accepted, empty input included.
	RowMax(nil, 2, []float64{0, 0})
	RowMax([]float64{0.3, 0.4}, 2, []float64{0, 0})
	RowMax(nil, 0, nil)
}

// TestRowBoundZeroDimValidates is the regression test for the d == 0
// early return that used to run BEFORE the bound-length validation:
// callers passing a stale non-empty bound (or leftover matrix values)
// with d == 0 silently got no panic and no widening. The length checks
// now run first, on both the fast and scalar entry points.
func TestRowBoundZeroDimValidates(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: did not panic", name)
			}
		}()
		f()
	}
	for name, rowMax := range map[string]func([]float64, int, []float64){
		"RowMax": RowMax, "RowMaxScalar": RowMaxScalar,
		"RowMin": RowMin, "RowMinScalar": RowMinScalar,
	} {
		mustPanic(name+" stale bound at d=0", func() {
			rowMax(nil, 0, []float64{0.5})
		})
		mustPanic(name+" leftover matrix at d=0", func() {
			rowMax([]float64{0.3}, 0, nil)
		})
		rowMax(nil, 0, nil) // the genuinely empty call stays accepted
	}
}

// TestMatrixKernelTwinsBitIdentical pins the geom-level dispatch: the
// fast entry points and their *Scalar twins (the DisableKernels path)
// return identical bits on identical inputs, across widths hitting the
// specialized kernels, the generic blocked path, and every tail shape.
func TestMatrixKernelTwinsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 8, 11, 16} {
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 64, 65, 130} {
			flat := make([]float64, n*d)
			for i := range flat {
				flat[i] = rng.NormFloat64()
			}
			w := make(Vector, d)
			for j := range w {
				w[j] = rng.NormFloat64()
			}
			fast := make([]float64, n)
			ref := make([]float64, n)
			DotRows(flat, d, w, fast)
			DotRowsScalar(flat, d, w, ref)
			for r := range fast {
				if math.Float64bits(fast[r]) != math.Float64bits(ref[r]) {
					t.Fatalf("DotRows d=%d n=%d row %d: fast=%x scalar=%x", d, n, r,
						math.Float64bits(fast[r]), math.Float64bits(ref[r]))
				}
			}
			fastMax := append([]float64(nil), w...)
			refMax := append([]float64(nil), w...)
			RowMax(flat, d, fastMax)
			RowMaxScalar(flat, d, refMax)
			fastMin := append([]float64(nil), w...)
			refMin := append([]float64(nil), w...)
			RowMin(flat, d, fastMin)
			RowMinScalar(flat, d, refMin)
			for j := 0; j < d; j++ {
				if math.Float64bits(fastMax[j]) != math.Float64bits(refMax[j]) {
					t.Fatalf("RowMax d=%d n=%d col %d: fast=%x scalar=%x", d, n, j,
						math.Float64bits(fastMax[j]), math.Float64bits(refMax[j]))
				}
				if math.Float64bits(fastMin[j]) != math.Float64bits(refMin[j]) {
					t.Fatalf("RowMin d=%d n=%d col %d: fast=%x scalar=%x", d, n, j,
						math.Float64bits(fastMin[j]), math.Float64bits(refMin[j]))
				}
			}
		}
	}
}
