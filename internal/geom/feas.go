package geom

import (
	"sync"

	"mir/internal/lp"
)

// feaserScratch bundles a dual-simplex feasibility solver with the
// row-pointer buffers needed to present a polytope's constraints to it
// without copying coefficient vectors.
type feaserScratch struct {
	f   lp.Feaser
	ws  [][]float64
	ts  []float64
	neg []float64 // scratch for negated coefficient rows
}

var feaserPool = sync.Pool{New: func() any { return new(feaserScratch) }}

// load fills the scratch buffers with the polytope's constraints plus any
// extra halfspaces.
func (s *feaserScratch) load(p *Polytope, extra ...Halfspace) {
	s.ws = s.ws[:0]
	s.ts = s.ts[:0]
	for _, h := range p.Hs {
		s.ws = append(s.ws, h.W)
		s.ts = append(s.ts, h.T)
	}
	for _, h := range extra {
		s.ws = append(s.ws, h.W)
		s.ts = append(s.ts, h.T)
	}
}

// solve runs the dual-simplex feasibility test on the currently loaded
// rows, falling back to the robust two-phase solver when the pivot budget
// is exceeded. The loaded rows may extend beyond a polytope's own
// constraints (extra rows appended by the caller); the fallback rebuilds
// the program from the loaded rows directly.
func (s *feaserScratch) solve(dim int) bool {
	feas, ok := s.f.FeasibleGE(dim, s.ws, s.ts)
	if ok {
		return feas
	}
	// Robust fallback (never hit in practice): rebuild A x <= b from the
	// loaded rows.
	A := make([][]float64, len(s.ws))
	b := make([]float64, len(s.ws))
	for i := range s.ws {
		row := make([]float64, dim)
		for j := 0; j < dim; j++ {
			row[j] = -s.ws[i][j]
		}
		A[i] = row
		b[i] = -s.ts[i]
	}
	got, _ := lp.Feasible(A, b)
	return got
}

// feasible reports whether the polytope (intersected with the orthant)
// has a point.
func (s *feaserScratch) feasible(p *Polytope, extra ...Halfspace) bool {
	s.load(p, extra...)
	return s.solve(p.Dim)
}
