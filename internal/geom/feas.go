package geom

import (
	"sync"

	"mir/internal/lp"
)

// feaserScratch bundles the LP state a goroutine needs to run geometric
// predicates without allocating: a dual-simplex feasibility solver plus the
// row-pointer buffers that present a polytope's constraints to it, and a
// two-phase simplex Workspace with flat row-major constraint scratch for
// the optimization entry points (Maximize, MBB, hull membership) and the
// robust fallback.
type feaserScratch struct {
	f    lp.Feaser
	ws   [][]float64
	ts   []float64
	keys []lp.Key  // row identity keys, parallel to ws (warm paths only)
	neg  []float64 // scratch for negated coefficient rows

	w     lp.Workspace // two-phase solves: optimization + robust fallback
	aFlat []float64    // row-major constraint scratch for the Workspace
	bBuf  []float64
	cBuf  []float64 // objective scratch

	// basis is the within-call warm-start chain buffer: exported after one
	// solve, re-entered by the next solve of the same call. It never seeds
	// a solve across entry points — the scratch is pooled and a later call
	// may present a different polytope, so cross-call seeds must come from
	// the caller (cell-attached snapshots), never from pooled state.
	basis lp.Basis
}

var feaserPool = sync.Pool{New: func() any { return new(feaserScratch) }}

// getScratch acquires a pooled scratch with its solvers' kernel
// dispatch set for this call: scalar selects the historical scalar
// pivot loops (the DisableKernels path), false the blocked kernels.
// The flag is set on every acquisition because the pool is shared
// across callers with different settings; it changes wall time and
// nothing else (see lp's elim.go), so pool reuse order never affects
// results. Every release goes back through feaserPool.Put as before.
func getScratch(scalar bool) *feaserScratch {
	s := feaserPool.Get().(*feaserScratch)
	s.f.DisableKernels = scalar
	s.w.DisableKernels = scalar
	return s
}

// growFloat resizes *buf to length n, reusing capacity.
func growFloat(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// load fills the scratch buffers with the polytope's constraints plus any
// extra halfspaces.
func (s *feaserScratch) load(p *Polytope, extra ...Halfspace) {
	s.ws = s.ws[:0]
	s.ts = s.ts[:0]
	for _, h := range p.Hs {
		s.ws = append(s.ws, h.W)
		s.ts = append(s.ts, h.T)
	}
	for _, h := range extra {
		s.ws = append(s.ws, h.W)
		s.ts = append(s.ts, h.T)
	}
}

// loadKeyed is load plus row identity keys: every polytope row is keyed by
// its coefficient vector (stable and shared down the cell tree by the
// package's immutability convention), so a basis snapshot taken on a
// related system can be re-entered. Rows appended by the caller afterwards
// must push a matching key (usually nil for transient scratch rows).
func (s *feaserScratch) loadKeyed(p *Polytope) {
	s.ws = s.ws[:0]
	s.ts = s.ts[:0]
	s.keys = s.keys[:0]
	for _, h := range p.Hs {
		s.ws = append(s.ws, h.W)
		s.ts = append(s.ts, h.T)
		s.keys = append(s.keys, lp.KeyOf(h.W))
	}
}

// solveSeeded is solve with warm-start: the keyed rows are solved from the
// given basis snapshot (nil = cold), with the same robust two-phase
// fallback. Verdicts are independent of the seed; only the pivot path
// changes.
func (s *feaserScratch) solveSeeded(dim int, seed *lp.Basis) bool {
	feas, ok := s.f.FeasibleGEKeyed(dim, s.ws, s.ts, s.keys, seed)
	if ok {
		return feas
	}
	return s.solveFallback(dim)
}

// solve runs the dual-simplex feasibility test on the currently loaded
// rows, falling back to the robust two-phase solver when the pivot budget
// is exceeded. The loaded rows may extend beyond a polytope's own
// constraints (extra rows appended by the caller); the fallback rebuilds
// the program from the loaded rows directly, into the scratch's reusable
// flat buffers.
func (s *feaserScratch) solve(dim int) bool {
	feas, ok := s.f.FeasibleGE(dim, s.ws, s.ts)
	if ok {
		return feas
	}
	return s.solveFallback(dim)
}

func (s *feaserScratch) solveFallback(dim int) bool {
	// Robust fallback (never hit in practice): rebuild A x <= b from the
	// loaded rows in the flat scratch — W·x >= T becomes -W·x <= -T.
	m := len(s.ws)
	A := growFloat(&s.aFlat, m*dim)
	b := growFloat(&s.bBuf, m)
	for i := range s.ws {
		row := A[i*dim : (i+1)*dim]
		for j := 0; j < dim; j++ {
			row[j] = -s.ws[i][j]
		}
		b[i] = -s.ts[i]
	}
	got, _ := s.w.FeasibleFlat(dim, A, b)
	return got
}

// feasible reports whether the polytope (intersected with the orthant)
// has a point.
func (s *feaserScratch) feasible(p *Polytope, extra ...Halfspace) bool {
	s.load(p, extra...)
	return s.solve(p.Dim)
}

// loadLP fills the flat two-phase scratch with the polytope's constraints
// in A x <= b form (W·x >= T becomes -W·x <= -T) and returns the A and b
// views.
func (s *feaserScratch) loadLP(p *Polytope) (A, b []float64) {
	m := len(p.Hs)
	A = growFloat(&s.aFlat, m*p.Dim)
	b = growFloat(&s.bBuf, m)
	for i, h := range p.Hs {
		row := A[i*p.Dim : (i+1)*p.Dim]
		for j := 0; j < p.Dim; j++ {
			row[j] = -h.W[j]
		}
		b[i] = -h.T
	}
	return A, b
}
