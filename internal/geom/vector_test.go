package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	v := Vector{1, 2, 3}
	u := Vector{4, 5, 6}
	if got := v.Dot(u); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := v.Add(u); !got.AlmostEqual(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := u.Sub(v); !got.AlmostEqual(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); !got.AlmostEqual(Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := (Vector{3, 4}).Norm(); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
	if got := (Vector{1, 1}).Dist(Vector{4, 5}); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %g, want 6", got)
	}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original")
	}
}

func TestDominates(t *testing.T) {
	tests := []struct {
		v, u      Vector
		dom, weak bool
	}{
		{Vector{1, 1}, Vector{0.5, 0.5}, true, true},
		{Vector{1, 0.5}, Vector{0.5, 1}, false, false},
		{Vector{1, 1}, Vector{1, 1}, false, true},
		{Vector{1, 0.5}, Vector{1, 0.5}, false, true},
		{Vector{0.5, 1}, Vector{0.5, 0.5}, true, true},
		{Vector{0.4, 0.4}, Vector{0.5, 0.5}, false, false},
	}
	for i, tc := range tests {
		if got := tc.v.Dominates(tc.u); got != tc.dom {
			t.Errorf("case %d: Dominates = %v, want %v", i, got, tc.dom)
		}
		if got := tc.v.WeakDominates(tc.u); got != tc.weak {
			t.Errorf("case %d: WeakDominates = %v, want %v", i, got, tc.weak)
		}
	}
}

func TestDominanceProperties(t *testing.T) {
	// Antisymmetry of strict dominance, and transitivity, on random pairs.
	f := func(a, b, c [3]float64) bool {
		va := Vector{abs01(a[0]), abs01(a[1]), abs01(a[2])}
		vb := Vector{abs01(b[0]), abs01(b[1]), abs01(b[2])}
		vc := Vector{abs01(c[0]), abs01(c[1]), abs01(c[2])}
		if va.Dominates(vb) && vb.Dominates(va) {
			return false
		}
		if va.Dominates(vb) && vb.Dominates(vc) && !va.Dominates(vc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func abs01(x float64) float64 {
	x = math.Abs(x)
	return x - math.Floor(x)
}

func TestHalfspace(t *testing.T) {
	h := Halfspace{W: Vector{0.5, 0.5}, T: 0.5}
	if !h.Contains(Vector{1, 1}) {
		t.Error("(1,1) should be inside")
	}
	if !h.Contains(Vector{0.5, 0.5}) {
		t.Error("boundary point should be inside (closed)")
	}
	if h.Contains(Vector{0.1, 0.1}) {
		t.Error("(0.1,0.1) should be outside")
	}
	if h.StrictlyContains(Vector{0.5, 0.5}) {
		t.Error("boundary point is not strictly inside")
	}
	f := h.Flip()
	if !f.Contains(Vector{0.1, 0.1}) {
		t.Error("flip should contain (0.1,0.1)")
	}
	if f.Contains(Vector{1, 1}) {
		t.Error("flip should exclude (1,1)")
	}
	if got := h.Eval(Vector{1, 0}); math.Abs(got-0) > 1e-12 {
		t.Errorf("Eval = %g", got)
	}
}
