package geom

import (
	"testing"

	"mir/internal/lp"
)

// TestToleranceOrdering pins the relationship between the package's
// numerical constants, which the correctness argument in each doc comment
// depends on: solver pivot noise (lp.Eps) must sit far below the geometric
// classification slab (ClassifyTol), with the redundancy-elimination
// margins strictly in between (reduceLPTol) or below (reduceBoxTol).
func TestToleranceOrdering(t *testing.T) {
	if ClassifyTol < 100*lp.Eps {
		t.Fatalf("ClassifyTol=%g must be at least 100x lp.Eps=%g", ClassifyTol, lp.Eps)
	}
	if !(lp.Eps < reduceLPTol && reduceLPTol < ClassifyTol) {
		t.Fatalf("want lp.Eps(%g) < reduceLPTol(%g) < ClassifyTol(%g)",
			lp.Eps, reduceLPTol, ClassifyTol)
	}
	if reduceBoxTol >= lp.Eps {
		t.Fatalf("reduceBoxTol=%g must sit below lp.Eps=%g", reduceBoxTol, lp.Eps)
	}
}

// TestClassifyBoundaryStability drives Classify with halfspaces whose
// boundaries sit exactly on, or within solver-noise distance of, polytope
// faces. The relation must be decided by the ClassifyTol slab, not by
// which side of lp.Eps a pivot lands on: perturbing the threshold by
// amounts far below ClassifyTol never flips the answer.
func TestClassifyBoundaryStability(t *testing.T) {
	const d = 3
	box := NewBox(d, 0, 1)
	e0 := make(Vector, d)
	e0[0] = 1

	// Perturbations well inside the slab (up to ClassifyTol/2) in both
	// directions, including exact coincidence.
	deltas := []float64{0, lp.Eps, -lp.Eps, 10 * lp.Eps, -10 * lp.Eps,
		ClassifyTol / 2, -ClassifyTol / 2}
	for _, dl := range deltas {
		// Boundary on the lower face: the box satisfies x0 >= dl everywhere
		// up to slab thickness.
		if got := box.Classify(Halfspace{W: e0, T: dl}); got != Covers {
			t.Errorf("x0 >= %g vs unit box: got %v, want Covers", dl, got)
		}
		// Boundary on the upper face: only a sliver of the box satisfies
		// x0 >= 1+dl, which classification treats as measure zero.
		if got := box.Classify(Halfspace{W: e0, T: 1 + dl}); got != Excludes {
			t.Errorf("x0 >= %g vs unit box: got %v, want Excludes", 1+dl, got)
		}
		// Boundary through the interior: robustly Cuts.
		if got := box.Classify(Halfspace{W: e0, T: 0.5 + dl}); got != Cuts {
			t.Errorf("x0 >= %g vs unit box: got %v, want Cuts", 0.5+dl, got)
		}
	}

	// A polytope thinner than the slab classifies as Excludes against a
	// halfspace through it: boundary-thin slivers never count as cuts.
	sliver := box.With(Halfspace{W: e0, T: 1 - ClassifyTol/2})
	if got := sliver.Classify(Halfspace{W: e0, T: 1}); got != Excludes {
		t.Errorf("slab-thin polytope: got %v, want Excludes", got)
	}

	// An empty polytope classifies as Excludes regardless of the halfspace.
	neg := make(Vector, d)
	neg[0] = -1
	empty := box.With(Halfspace{W: e0, T: 2})
	if got := empty.Classify(Halfspace{W: neg, T: -0.5}); got != Excludes {
		t.Errorf("empty polytope: got %v, want Excludes", got)
	}
}

// TestReduceCellKeepsPointSet checks the redundancy-elimination exactness
// claim directly: with the box rows included in the output, the reduced
// representation admits exactly the same points as box ∩ raw rows.
func TestReduceCellKeepsPointSet(t *testing.T) {
	const d = 3
	lo := Vector{0.1, 0.2, 0.05}
	hi := Vector{0.6, 0.7, 0.55}
	hs := []Halfspace{
		{W: Vector{1, 1, 0}, T: 0.5},   // cuts the box
		{W: Vector{1, 0, 0}, T: 0.0},   // implied by lo[0] (box prescreen)
		{W: Vector{-1, -1, -1}, T: -5}, // implied far away (box prescreen)
		{W: Vector{2, 2, 0}, T: 0.9},   // implied by the first row (LP phase)
		{W: Vector{0, 1, -1}, T: -0.3}, // cuts the box
	}
	red, st := ReduceCell(d, hs, lo, hi)
	if st.BoxDropped != 2 {
		t.Fatalf("BoxDropped = %d, want 2 (stats %+v)", st.BoxDropped, st)
	}
	if st.LPDropped != 1 {
		t.Fatalf("LPDropped = %d, want 1 (stats %+v)", st.LPDropped, st)
	}
	if want := 2*d + 2; len(red) != want {
		t.Fatalf("reduced to %d rows, want %d", len(red), want)
	}

	raw := &Polytope{Dim: d, Hs: append(NewBoxCorners(lo, hi).Hs, hs...)}
	got := &Polytope{Dim: d, Hs: red}
	pts := []Vector{
		{0.1, 0.2, 0.05}, {0.6, 0.7, 0.55}, {0.3, 0.3, 0.3},
		{0.1, 0.15, 0.5}, {0.2, 0.2, 0.5}, {0.12, 0.13, 0.4},
		{0.5, 0.2, 0.5}, {0.1, 0.7, 0.05},
	}
	for _, p := range pts {
		if raw.ContainsPoint(p) != got.ContainsPoint(p) {
			t.Errorf("point %v: raw containment %v, reduced %v",
				p, raw.ContainsPoint(p), got.ContainsPoint(p))
		}
	}
}
