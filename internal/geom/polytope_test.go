package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestBoxBasics(t *testing.T) {
	box := NewBox(3, 0, 1)
	if box.IsEmpty() {
		t.Fatal("unit box reported empty")
	}
	if !box.ContainsPoint(Vector{0.5, 0.5, 0.5}) {
		t.Error("center not contained")
	}
	if box.ContainsPoint(Vector{1.5, 0.5, 0.5}) {
		t.Error("outside point contained")
	}
	lo, hi, ok := box.MBB()
	if !ok {
		t.Fatal("MBB failed")
	}
	if !lo.AlmostEqual(Vector{0, 0, 0}, 1e-7) || !hi.AlmostEqual(Vector{1, 1, 1}, 1e-7) {
		t.Errorf("MBB = %v..%v", lo, hi)
	}
}

func TestMaximizeMinimize(t *testing.T) {
	box := NewBox(2, 0, 1)
	v, arg, ok := box.Maximize(Vector{1, 2})
	if !ok || math.Abs(v-3) > 1e-7 {
		t.Errorf("max = %g (ok=%v), want 3", v, ok)
	}
	if !arg.AlmostEqual(Vector{1, 1}, 1e-7) {
		t.Errorf("argmax = %v", arg)
	}
	v, _, ok = box.Minimize(Vector{1, 2})
	if !ok || math.Abs(v) > 1e-7 {
		t.Errorf("min = %g, want 0", v)
	}

	// Constrain with x + y >= 1.
	p := box.With(Halfspace{W: Vector{1, 1}, T: 1})
	v, _, ok = p.Minimize(Vector{1, 1})
	if !ok || math.Abs(v-1) > 1e-7 {
		t.Errorf("min over constrained = %g, want 1", v)
	}
}

func TestClassify(t *testing.T) {
	box := NewBox(2, 0, 1)
	tests := []struct {
		name string
		h    Halfspace
		want Relation
	}{
		{"cuts diagonal", Halfspace{W: Vector{1, 1}, T: 1}, Cuts},
		{"covers everything", Halfspace{W: Vector{1, 1}, T: -0.5}, Covers},
		{"covers at corner touch", Halfspace{W: Vector{1, 1}, T: 0}, Covers},
		{"excludes", Halfspace{W: Vector{1, 1}, T: 3}, Excludes},
		{"excludes at corner touch", Halfspace{W: Vector{1, 1}, T: 2}, Covers}, // touch within tolerance counts as covers of boundary... see below
	}
	for _, tc := range tests[:4] {
		t.Run(tc.name, func(t *testing.T) {
			if got := box.Classify(tc.h); got != tc.want {
				t.Errorf("Classify = %v, want %v", got, tc.want)
			}
		})
	}
	// The corner-touch case {x+y >= 2} intersects the box only at (1,1):
	// a measure-zero touch must NOT classify as Cuts.
	if got := box.Classify(Halfspace{W: Vector{1, 1}, T: 2}); got == Cuts {
		t.Error("corner touch classified as Cuts")
	}
}

func TestClassifyEmpty(t *testing.T) {
	empty := NewBox(2, 0, 1)
	empty.Append(Halfspace{W: Vector{1, 1}, T: 5})
	if !empty.IsEmpty() {
		t.Fatal("expected empty")
	}
	if got := empty.Classify(Halfspace{W: Vector{1, 0}, T: 0.5}); got != Excludes {
		t.Errorf("empty polytope Classify = %v, want Excludes", got)
	}
}

func TestWithDoesNotMutate(t *testing.T) {
	box := NewBox(2, 0, 1)
	n := len(box.Hs)
	q := box.With(Halfspace{W: Vector{1, 1}, T: 1.5})
	if len(box.Hs) != n {
		t.Error("With mutated the receiver")
	}
	if len(q.Hs) != n+1 {
		t.Error("With did not add the constraint")
	}
}

func TestIntersect(t *testing.T) {
	a := NewBox(2, 0, 1).With(Halfspace{W: Vector{1, 0}, T: 0.6}) // x >= 0.6
	b := NewBox(2, 0, 1).With(Halfspace{W: Vector{-1, 0}, T: -0.4})
	// a requires x>=0.6, b requires x<=0.4: intersection empty.
	if !a.Intersect(b).IsEmpty() {
		t.Error("disjoint intersection not empty")
	}
	c := NewBox(2, 0, 1).With(Halfspace{W: Vector{0, 1}, T: 0.5})
	if a.Intersect(c).IsEmpty() {
		t.Error("overlapping intersection reported empty")
	}
}

// TestMBBRandomCells builds random cells (box + random halfspace path) and
// checks the MBB via dense sampling: every sampled feasible point must lie
// inside the MBB, and the MBB must be within tolerance of the sampled hull.
func TestMBBRandomCells(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		d := 2 + rng.Intn(3)
		p := NewBox(d, 0, 1)
		for i := 0; i < 3; i++ {
			w := make(Vector, d)
			for j := range w {
				w[j] = rng.Float64()
			}
			sum := w.Sum()
			for j := range w {
				w[j] /= sum
			}
			h := Halfspace{W: w, T: 0.2 + 0.5*rng.Float64()}
			if rng.Intn(2) == 0 {
				h = h.Flip()
			}
			p.Append(h)
		}
		lo, hi, ok := p.MBB()
		if !ok {
			continue // empty cell: nothing to verify
		}
		for probe := 0; probe < 2000; probe++ {
			x := make(Vector, d)
			for j := range x {
				x[j] = rng.Float64()
			}
			if !p.ContainsPoint(x) {
				continue
			}
			for j := range x {
				if x[j] < lo[j]-1e-6 || x[j] > hi[j]+1e-6 {
					t.Fatalf("trial %d: feasible point %v outside MBB [%v, %v]",
						trial, x, lo, hi)
				}
			}
		}
	}
}

// TestClassifyAgainstSampling cross-checks Classify against a brute-force
// sampling oracle on random cells and halfspaces.
func TestClassifyAgainstSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		d := 2 + rng.Intn(2)
		cell := NewBox(d, 0, 1)
		w := make(Vector, d)
		for j := range w {
			w[j] = 0.1 + rng.Float64()
		}
		sum := w.Sum()
		for j := range w {
			w[j] /= sum
		}
		h := Halfspace{W: w, T: rng.Float64() * 1.2}
		rel := cell.Classify(h)
		in, out := 0, 0
		for probe := 0; probe < 3000; probe++ {
			x := make(Vector, d)
			for j := range x {
				x[j] = rng.Float64()
			}
			e := h.Eval(x)
			if math.Abs(e) < 1e-6 {
				continue // skip boundary band
			}
			if e > 0 {
				in++
			} else {
				out++
			}
		}
		switch rel {
		case Covers:
			if out > 0 {
				t.Errorf("trial %d: Covers but %d sampled points outside", trial, out)
			}
		case Excludes:
			if in > 0 {
				t.Errorf("trial %d: Excludes but %d sampled points inside", trial, in)
			}
		case Cuts:
			// Sampling can miss a thin sliver; verify with LP witnesses:
			// the cell must contain points strictly on both sides.
			lo, amin, ok1 := cell.Minimize(h.W)
			hi2, amax, ok2 := cell.Maximize(h.W)
			if !ok1 || !ok2 {
				t.Fatalf("trial %d: witness LPs failed on non-empty cell", trial)
			}
			if lo >= h.T-ClassifyTol || hi2 <= h.T+ClassifyTol {
				t.Errorf("trial %d: Cuts but range [%g,%g] vs T=%g", trial, lo, hi2, h.T)
			}
			if !cell.ContainsPoint(amin) || !cell.ContainsPoint(amax) {
				t.Errorf("trial %d: witnesses outside cell", trial)
			}
		}
	}
}

func TestFeasiblePoint(t *testing.T) {
	p := NewBox(3, 0, 1).With(Halfspace{W: Vector{1, 1, 1}, T: 2.5})
	x, ok := p.FeasiblePoint()
	if !ok {
		t.Fatal("feasible polytope reported empty")
	}
	if !p.ContainsPoint(x) {
		t.Errorf("witness %v not in polytope", x)
	}
	p.Append(Halfspace{W: Vector{-1, -1, -1}, T: -1}) // x+y+z <= 1: conflict
	if _, ok := p.FeasiblePoint(); ok {
		t.Error("infeasible polytope returned a point")
	}
}
