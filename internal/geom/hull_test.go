package geom

import (
	"math/rand"
	"sort"
	"testing"
)

func TestExtremePoints1D(t *testing.T) {
	pts := []Vector{{0.5}, {0.1}, {0.9}, {0.3}, {0.9}}
	got := ExtremePoints(pts)
	sort.Ints(got)
	if len(got) != 2 || pts[got[0]][0] != 0.1 || pts[got[1]][0] != 0.9 {
		t.Errorf("ExtremePoints = %v", got)
	}

	same := []Vector{{0.4}, {0.4}, {0.4}}
	if got := ExtremePoints(same); len(got) != 1 {
		t.Errorf("identical points: got %v, want one representative", got)
	}
}

func TestExtremePoints2DSquare(t *testing.T) {
	pts := []Vector{
		{0, 0}, {1, 0}, {1, 1}, {0, 1}, // corners
		{0.5, 0.5}, {0.25, 0.75}, {0.9, 0.1}, // interior
	}
	got := ExtremePoints(pts)
	want := map[int]bool{0: true, 1: true, 2: true, 3: true}
	for _, i := range got {
		if !want[i] {
			// Collinear/interior points may only appear if they lie on the
			// boundary; interior ones must not.
			t.Errorf("interior point %d reported extreme", i)
		}
		delete(want, i)
	}
	if len(want) != 0 {
		t.Errorf("missing corners: %v", want)
	}
}

func TestExtremePointsHigherDim(t *testing.T) {
	// Simplex corners in 3D plus the centroid: corners are extreme, the
	// centroid is not.
	pts := []Vector{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {0, 0, 0},
		{0.25, 0.25, 0.25},
	}
	got := ExtremePoints(pts)
	sort.Ints(got)
	if len(got) != 4 || got[0] != 0 || got[3] != 3 {
		t.Errorf("ExtremePoints = %v, want [0 1 2 3]", got)
	}
}

func TestInConvexHull(t *testing.T) {
	tri := []Vector{{0, 0}, {1, 0}, {0, 1}}
	if !InConvexHull(Vector{0.25, 0.25}, tri) {
		t.Error("interior point not in hull")
	}
	if !InConvexHull(Vector{0.5, 0.5}, tri) {
		t.Error("edge midpoint not in hull")
	}
	if !InConvexHull(Vector{1, 0}, tri) {
		t.Error("vertex not in hull")
	}
	if InConvexHull(Vector{0.6, 0.6}, tri) {
		t.Error("outside point in hull")
	}
	if InConvexHull(Vector{0.5, 0.5}, nil) {
		t.Error("empty point set contains nothing")
	}
}

func TestInConvexHullIdx(t *testing.T) {
	pts := []Vector{{0, 0}, {9, 9}, {1, 0}, {0, 1}}
	idx := []int{0, 2, 3} // the unit triangle, skipping the decoy
	if !InConvexHullIdx(Vector{0.3, 0.3}, pts, idx) {
		t.Error("point should be in sub-hull")
	}
	if InConvexHullIdx(Vector{2, 2}, pts, idx) {
		t.Error("point should be outside sub-hull")
	}
}

// TestHullInvariant checks conv(V) = conv(pts): every original point must be
// a convex combination of the reported extreme points, in dims 2..4 (the
// weight-space dimensionalities exercised by the paper's d = 3..5).
func TestHullInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 25; trial++ {
		dim := 2 + rng.Intn(3)
		n := 5 + rng.Intn(20)
		pts := make([]Vector, n)
		for i := range pts {
			pts[i] = make(Vector, dim)
			for j := range pts[i] {
				pts[i][j] = rng.Float64()
			}
		}
		vIdx := ExtremePoints(pts)
		hull := make([]Vector, len(vIdx))
		for i, j := range vIdx {
			hull[i] = pts[j]
		}
		for i, p := range pts {
			if !InConvexHull(p, hull) {
				t.Errorf("trial %d (dim %d): point %d not in conv(V); |V|=%d",
					trial, dim, i, len(vIdx))
			}
		}
	}
}

// TestHullAgreement2D cross-checks the monotone-chain fast path against the
// LP-based method: the LP vertex set must be a subset of the chain's
// (the chain may retain collinear boundary points).
func TestHullAgreement2D(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(15)
		pts := make([]Vector, n)
		for i := range pts {
			pts[i] = Vector{rng.Float64(), rng.Float64()}
		}
		chain := map[int]bool{}
		for _, i := range extreme2D(pts) {
			chain[i] = true
		}
		for _, i := range extremeLP(pts) {
			if !chain[i] {
				t.Errorf("trial %d: LP vertex %d missing from monotone chain", trial, i)
			}
		}
	}
}

func BenchmarkExtremePoints3D(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Vector, 60)
	for i := range pts {
		pts[i] = Vector{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtremePoints(pts)
	}
}
