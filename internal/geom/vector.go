// Package geom provides the computational-geometry kernel used by the mIR
// algorithms: vectors, halfspaces, H-representation polytopes with
// LP-backed predicates (emptiness, containment, classification, bounding
// boxes), convex-hull vertex sets in arbitrary dimension, and a
// two-dimensional polygon clipper for visualization.
//
// The paper relied on qhull/qhalf and lp_solve for these operations; this
// package implements them from scratch on top of the internal simplex
// solver. All geometry lives in the non-negative orthant — product
// attributes are in [0,1] and convex-combination coefficients are
// non-negative — which lets every linear program stay in the standard
// form max c·x, Ax <= b, x >= 0.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Eps is the geometric tolerance used for all boundary comparisons.
const Eps = 1e-9

// Vector is a point or direction in d-dimensional space.
type Vector []float64

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dot returns the inner product v·u. The vectors must have equal length.
func (v Vector) Dot(u Vector) float64 {
	if len(v) != len(u) {
		panic(fmt.Sprintf("geom: dot of %d-dim and %d-dim vectors", len(v), len(u)))
	}
	return dot(v, u)
}

// dot is the bounds-check-friendly inner-product kernel shared by Vector.Dot
// and Halfspace.Eval. Reslicing b to len(a) lets the compiler hoist the
// bounds check out of the loop; the four-way unroll keeps the FP units busy
// on the d = 4..8 vectors the workloads use without hurting d = 2..3.
func dot(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Add returns v + u as a new vector.
func (v Vector) Add(u Vector) Vector {
	r := make(Vector, len(v))
	for i := range v {
		r[i] = v[i] + u[i]
	}
	return r
}

// Sub returns v - u as a new vector.
func (v Vector) Sub(u Vector) Vector {
	r := make(Vector, len(v))
	for i := range v {
		r[i] = v[i] - u[i]
	}
	return r
}

// Scale returns s·v as a new vector.
func (v Vector) Scale(s float64) Vector {
	r := make(Vector, len(v))
	for i := range v {
		r[i] = s * v[i]
	}
	return r
}

// Norm returns the Euclidean length of v.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Dist returns the Euclidean distance between v and u.
func (v Vector) Dist(u Vector) float64 {
	s := 0.0
	for i := range v {
		d := v[i] - u[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Dominates reports whether v dominates u in the skyline sense adopted by
// the paper (larger is better): v >= u in every coordinate and v > u in at
// least one, with tolerance Eps on the strict part.
func (v Vector) Dominates(u Vector) bool {
	strict := false
	for i := range v {
		if v[i] < u[i]-Eps {
			return false
		}
		if v[i] > u[i]+Eps {
			strict = true
		}
	}
	return strict
}

// WeakDominates reports whether v >= u componentwise (within Eps).
func (v Vector) WeakDominates(u Vector) bool {
	for i := range v {
		if v[i] < u[i]-Eps {
			return false
		}
	}
	return true
}

// AlmostEqual reports componentwise equality within tol.
func (v Vector) AlmostEqual(u Vector, tol float64) bool {
	if len(v) != len(u) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-u[i]) > tol {
			return false
		}
	}
	return true
}

// Sum returns the sum of v's components.
func (v Vector) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// String renders v with 4-decimal precision, e.g. "(0.2500, 0.7500)".
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, x := range v {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.4f", x)
	}
	b.WriteByte(')')
	return b.String()
}
