package geom

import (
	"math/rand"
	"sync"
	"testing"
)

// TestPooledScratchConcurrency hammers every pooled-scratch entry point —
// Classify, MBB, FeasiblePoint, Maximize, InConvexHull, ExtremePoints,
// ReduceCell — from many goroutines at once. All of them draw workspaces
// from the shared sync.Pools (feaserPool, the LP workspace pool, the 2D
// hull scratch pool) and the axis-normal unitCache, so a scratch buffer
// leaking between borrowers shows up here as a -race report or as a
// deviation from the sequentially computed baseline.
func TestPooledScratchConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	type fixture struct {
		p   *Polytope
		h   Halfspace
		obj Vector
		pts []Vector
		q   Vector
		lo  Vector
		hi  Vector
	}
	var fixtures []fixture
	for trial := 0; trial < 24; trial++ {
		d := 2 + rng.Intn(3)
		p := NewBox(d, 0, 1)
		for i := 0; i < 4; i++ {
			w := make(Vector, d)
			for j := range w {
				w[j] = rng.Float64() - 0.5
			}
			p.Append(Halfspace{W: w, T: 0.3*rng.Float64() - 0.15})
		}
		f := fixture{p: p}
		f.h.W = make(Vector, d)
		for j := range f.h.W {
			f.h.W[j] = rng.Float64()
		}
		f.h.T = 0.2 + 0.6*rng.Float64()
		f.obj = make(Vector, d)
		f.obj[rng.Intn(d)] = 1
		for i := 0; i < 12; i++ {
			v := make(Vector, d)
			for j := range v {
				v[j] = rng.Float64()
			}
			f.pts = append(f.pts, v)
		}
		f.q = make(Vector, d)
		for j := range f.q {
			f.q[j] = rng.Float64()
		}
		f.lo = make(Vector, d)
		f.hi = make(Vector, d)
		for j := range f.lo {
			a, b := rng.Float64(), rng.Float64()
			if a > b {
				a, b = b, a
			}
			f.lo[j], f.hi[j] = a, b+0.05
		}
		fixtures = append(fixtures, f)
	}

	// Sequential baseline: every operation's answer must be reproduced
	// exactly by every goroutine.
	type answer struct {
		rel      Relation
		mbbLo    Vector
		mbbHi    Vector
		mbbOK    bool
		feasOK   bool
		maxVal   float64
		maxOK    bool
		inHull   bool
		hull     []int
		redRows  int
		redStats ReduceStats
	}
	run := func(f fixture) answer {
		var a answer
		a.rel = f.p.Classify(f.h)
		a.mbbLo, a.mbbHi, a.mbbOK = f.p.MBB()
		_, a.feasOK = f.p.FeasiblePoint()
		a.maxVal, _, a.maxOK = f.p.Maximize(f.obj)
		a.inHull = InConvexHull(f.q, f.pts)
		a.hull = ExtremePoints(f.pts)
		red, st := ReduceCell(len(f.lo), f.p.Hs, f.lo, f.hi)
		a.redRows, a.redStats = len(red), st
		return a
	}
	base := make([]answer, len(fixtures))
	for i, f := range fixtures {
		base[i] = run(f)
	}

	const goroutines = 8
	const rounds = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger the starting fixture so borrowing patterns differ
				// across goroutines.
				for off := 0; off < len(fixtures); off++ {
					i := (g + off) % len(fixtures)
					got := run(fixtures[i])
					want := base[i]
					if got.rel != want.rel || got.mbbOK != want.mbbOK ||
						got.feasOK != want.feasOK || got.maxOK != want.maxOK ||
						got.maxVal != want.maxVal || got.inHull != want.inHull ||
						got.redRows != want.redRows || got.redStats != want.redStats ||
						len(got.hull) != len(want.hull) {
						errs <- "concurrent result diverged from sequential baseline"
						return
					}
					for j := range got.hull {
						if got.hull[j] != want.hull[j] {
							errs <- "hull vertex set diverged under concurrency"
							return
						}
					}
					if want.mbbOK {
						for j := range got.mbbLo {
							if got.mbbLo[j] != want.mbbLo[j] || got.mbbHi[j] != want.mbbHi[j] {
								errs <- "MBB diverged under concurrency"
								return
							}
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
