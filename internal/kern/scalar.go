package kern

// This file holds the scalar reference kernels: verbatim copies of the
// historical loops the fast paths replaced (geom.DotRows / RowMax /
// RowMin as of the layered-index PR, and geom's dot). They are what
// DisableKernels selects at runtime, and what the differential tests
// and fuzzers in this package compare the fast kernels against — so
// they must never be "improved"; any change here moves the bit-identity
// anchor itself.

// dotScalar is the four-way-unrolled inner-product kernel (verbatim
// geom.dot): stride-4 lanes s0..s3, remainder into s0, folded as
// (s0+s1)+(s2+s3).
func dotScalar(a, b []float64) float64 {
	if len(a) == 0 {
		return 0
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// DotRowsScalar is the historical DotRows loop: rows in pairs, two
// independent accumulator sets, odd row via dotScalar. Same validated-
// input assumptions as DotRows (d >= 1, len(w) == d,
// len(flat) >= len(out)*d).
func DotRowsScalar(flat []float64, d int, w, out []float64) {
	n := len(out)
	r := 0
	for ; r+2 <= n; r += 2 {
		a := flat[r*d : r*d+d : r*d+d]
		b := flat[(r+1)*d : (r+1)*d+d : (r+1)*d+d]
		var a0, a1, a2, a3 float64
		var b0, b1, b2, b3 float64
		i := 0
		for ; i+4 <= d; i += 4 {
			a0 += w[i] * a[i]
			a1 += w[i+1] * a[i+1]
			a2 += w[i+2] * a[i+2]
			a3 += w[i+3] * a[i+3]
			b0 += w[i] * b[i]
			b1 += w[i+1] * b[i+1]
			b2 += w[i+2] * b[i+2]
			b3 += w[i+3] * b[i+3]
		}
		for ; i < d; i++ {
			a0 += w[i] * a[i]
			b0 += w[i] * b[i]
		}
		out[r] = (a0 + a1) + (a2 + a3)
		out[r+1] = (b0 + b1) + (b2 + b3)
	}
	if r < n {
		out[r] = dotScalar(w, flat[r*d:r*d+d])
	}
}

// RowMaxScalar is the historical RowMax loop: row-major, one
// strictly-greater comparison per element.
func RowMaxScalar(flat []float64, d int, max []float64) {
	for off := 0; off+d <= len(flat); off += d {
		row := flat[off : off+d : off+d]
		for j, x := range row {
			if x > max[j] {
				max[j] = x
			}
		}
	}
}

// RowMinScalar is the historical RowMin loop.
func RowMinScalar(flat []float64, d int, min []float64) {
	for off := 0; off+d <= len(flat); off += d {
		row := flat[off : off+d : off+d]
		for j, x := range row {
			if x < min[j] {
				min[j] = x
			}
		}
	}
}

// ScaleRowScalar is the historical pivot-row normalization loop
// (Workspace.pivot / Feaser.pivot): row[j] *= inv one element at a
// time.
func ScaleRowScalar(row []float64, inv float64) {
	for j := range row {
		row[j] *= inv
	}
}

// SubScaledScalar is the historical row-elimination loop:
// dst[j] -= f*src[j] over the first len(src) elements, one at a time.
func SubScaledScalar(dst, src []float64, f float64) {
	dst = dst[:len(src)]
	for j, v := range src {
		dst[j] -= f * v
	}
}
