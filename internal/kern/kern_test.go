package kern

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// trickyValues are the float64s most likely to expose an accumulation-
// order or comparison-direction divergence between a fast kernel and
// its scalar reference: signed zeros (0 + -0 = +0, so a folded bare
// product differs from an accumulated one), infinities (Inf - Inf =
// NaN orders matter), NaNs (comparisons all false; arithmetic
// propagates), subnormals (double rounding hazards), and magnitudes
// whose sums round differently under reassociation.
var trickyValues = []float64{
	0, math.Copysign(0, -1),
	1, -1, 0.5, -0.5,
	math.Inf(1), math.Inf(-1), math.NaN(),
	math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
	math.MaxFloat64, -math.MaxFloat64,
	1e-300, -1e-300, 1e300, -1e300,
	1 + math.Pow(2, -52), 1 - math.Pow(2, -53),
	3, 1.0 / 3.0, 0.1, -0.1,
}

// fillTricky fills dst from trickyValues and rng-perturbed mixes so
// every slice carries both special values and ordinary noise.
func fillTricky(dst []float64, rng *rand.Rand) {
	for i := range dst {
		switch rng.Intn(3) {
		case 0:
			dst[i] = trickyValues[rng.Intn(len(trickyValues))]
		case 1:
			dst[i] = rng.NormFloat64()
		default:
			dst[i] = math.Float64frombits(rng.Uint64())
		}
	}
}

// bitsEqual requires exact bit equality — signed zeros, infinities,
// and subnormals included — except that two NaNs always match: when
// both operands of a hardware add/multiply are NaN, x86 propagates
// whichever the compiler put first, and Go leaves that operand order
// unspecified, so payload bits may differ between code shapes even
// though NaN-ness itself (determined by the values, which follow the
// identical operation tree) cannot. See the package comment.
func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) &&
			!(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return i, false
		}
	}
	return -1, true
}

// TestDotRowsMatchesScalar pins the dispatcher bit-identical to the
// historical pair loop across every specialized width, the generic
// path, and row counts that exercise all block tails.
func TestDotRowsMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for d := 1; d <= 20; d++ {
		for _, n := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 63, 64, 65, 257} {
			flat := make([]float64, n*d)
			w := make([]float64, d)
			for trial := 0; trial < 8; trial++ {
				fillTricky(flat, rng)
				fillTricky(w, rng)
				fast := make([]float64, n)
				ref := make([]float64, n)
				DotRows(flat, d, w, fast)
				DotRowsScalar(flat, d, w, ref)
				if i, ok := bitsEqual(fast, ref); !ok {
					t.Fatalf("d=%d n=%d trial=%d: row %d fast=%x scalar=%x",
						d, n, trial, i,
						math.Float64bits(fast[i]), math.Float64bits(ref[i]))
				}
			}
		}
	}
}

// TestRowMaxMinMatchesScalar pins the blocked extrema kernels
// bit-identical to the scalar loops, seeded bounds included (the
// kernels widen, not overwrite).
func TestRowMaxMinMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for d := 1; d <= 20; d++ {
		for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 17, 65} {
			flat := make([]float64, n*d)
			seed := make([]float64, d)
			for trial := 0; trial < 8; trial++ {
				fillTricky(flat, rng)
				fillTricky(seed, rng)

				fastMax := append([]float64(nil), seed...)
				refMax := append([]float64(nil), seed...)
				RowMax(flat, d, fastMax)
				RowMaxScalar(flat, d, refMax)
				if i, ok := bitsEqual(fastMax, refMax); !ok {
					t.Fatalf("RowMax d=%d n=%d trial=%d: col %d fast=%x scalar=%x",
						d, n, trial, i,
						math.Float64bits(fastMax[i]), math.Float64bits(refMax[i]))
				}

				fastMin := append([]float64(nil), seed...)
				refMin := append([]float64(nil), seed...)
				RowMin(flat, d, fastMin)
				RowMinScalar(flat, d, refMin)
				if i, ok := bitsEqual(fastMin, refMin); !ok {
					t.Fatalf("RowMin d=%d n=%d trial=%d: col %d fast=%x scalar=%x",
						d, n, trial, i,
						math.Float64bits(fastMin[i]), math.Float64bits(refMin[i]))
				}
			}
		}
	}
}

// TestPivotKernelsMatchScalar pins ScaleRow and SubScaled bit-identical
// to the historical elementwise loops, including the dst-longer-than-src
// shape the simplex z-row update uses.
func TestPivotKernelsMatchScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 33, 100} {
		for trial := 0; trial < 16; trial++ {
			src := make([]float64, n)
			fillTricky(src, rng)
			f := trickyValues[rng.Intn(len(trickyValues))]

			fastRow := append([]float64(nil), src...)
			refRow := append([]float64(nil), src...)
			ScaleRow(fastRow, f)
			ScaleRowScalar(refRow, f)
			if i, ok := bitsEqual(fastRow, refRow); !ok {
				t.Fatalf("ScaleRow n=%d trial=%d: elem %d fast=%x scalar=%x",
					n, trial, i,
					math.Float64bits(fastRow[i]), math.Float64bits(refRow[i]))
			}

			dst := make([]float64, n+3) // longer than src: tail must stay put
			fillTricky(dst, rng)
			fastDst := append([]float64(nil), dst...)
			refDst := append([]float64(nil), dst...)
			SubScaled(fastDst, src, f)
			SubScaledScalar(refDst, src, f)
			if i, ok := bitsEqual(fastDst, refDst); !ok {
				t.Fatalf("SubScaled n=%d trial=%d: elem %d fast=%x scalar=%x",
					n, trial, i,
					math.Float64bits(fastDst[i]), math.Float64bits(refDst[i]))
			}
		}
	}
}

// decodeFloats turns fuzz bytes into a float64 slice of length n,
// cycling over the input so short seeds still produce full slices.
func decodeFloats(data []byte, n int) []float64 {
	out := make([]float64, n)
	if len(data) == 0 {
		return out
	}
	for i := range out {
		var buf [8]byte
		for j := 0; j < 8; j++ {
			buf[j] = data[(i*8+j)%len(data)]
		}
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return out
}

// FuzzKernelDotRows differentially fuzzes the DotRows dispatcher
// against the scalar reference over arbitrary float bit patterns,
// widths, and row counts.
func FuzzKernelDotRows(f *testing.F) {
	f.Add([]byte{0x01, 0x02}, uint8(3), uint8(9))
	f.Add([]byte{0xff, 0xf0, 0, 0, 0, 0, 0, 0x80}, uint8(4), uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, dRaw, nRaw uint8) {
		d := int(dRaw)%20 + 1
		n := int(nRaw) % 70
		vals := decodeFloats(data, n*d+d)
		flat, w := vals[:n*d], vals[n*d:]
		fast := make([]float64, n)
		ref := make([]float64, n)
		DotRows(flat, d, w, fast)
		DotRowsScalar(flat, d, w, ref)
		if i, ok := bitsEqual(fast, ref); !ok {
			t.Fatalf("d=%d n=%d: row %d fast=%x scalar=%x",
				d, n, i, math.Float64bits(fast[i]), math.Float64bits(ref[i]))
		}
	})
}

// FuzzKernelRowMaxMin differentially fuzzes the blocked extrema
// kernels against the scalar references.
func FuzzKernelRowMaxMin(f *testing.F) {
	f.Add([]byte{0x80, 0x01}, uint8(3), uint8(13))
	f.Add([]byte{0x7f, 0xf8, 0, 0, 0, 0, 0, 0}, uint8(5), uint8(4))
	f.Fuzz(func(t *testing.T, data []byte, dRaw, nRaw uint8) {
		d := int(dRaw)%20 + 1
		n := int(nRaw) % 70
		vals := decodeFloats(data, n*d+d)
		flat, seed := vals[:n*d], vals[n*d:]

		fastMax := append([]float64(nil), seed...)
		refMax := append([]float64(nil), seed...)
		RowMax(flat, d, fastMax)
		RowMaxScalar(flat, d, refMax)
		if i, ok := bitsEqual(fastMax, refMax); !ok {
			t.Fatalf("RowMax d=%d n=%d: col %d fast=%x scalar=%x",
				d, n, i, math.Float64bits(fastMax[i]), math.Float64bits(refMax[i]))
		}

		fastMin := append([]float64(nil), seed...)
		refMin := append([]float64(nil), seed...)
		RowMin(flat, d, fastMin)
		RowMinScalar(flat, d, refMin)
		if i, ok := bitsEqual(fastMin, refMin); !ok {
			t.Fatalf("RowMin d=%d n=%d: col %d fast=%x scalar=%x",
				d, n, i, math.Float64bits(fastMin[i]), math.Float64bits(refMin[i]))
		}
	})
}

// FuzzKernelEliminate differentially fuzzes the pivot-row kernels
// (scale + subtract-scaled) against the scalar references.
func FuzzKernelEliminate(f *testing.F) {
	f.Add([]byte{0x01}, uint8(7), uint64(0x3ff0000000000000))
	f.Add([]byte{0xff}, uint8(12), uint64(0x8000000000000000))
	f.Fuzz(func(t *testing.T, data []byte, nRaw uint8, fBits uint64) {
		n := int(nRaw) % 100
		fac := math.Float64frombits(fBits)
		vals := decodeFloats(data, 2*n)
		src, dst := vals[:n], vals[n:]

		fastRow := append([]float64(nil), src...)
		refRow := append([]float64(nil), src...)
		ScaleRow(fastRow, fac)
		ScaleRowScalar(refRow, fac)
		if i, ok := bitsEqual(fastRow, refRow); !ok {
			t.Fatalf("ScaleRow n=%d: elem %d fast=%x scalar=%x",
				n, i, math.Float64bits(fastRow[i]), math.Float64bits(refRow[i]))
		}

		fastDst := append([]float64(nil), dst...)
		refDst := append([]float64(nil), dst...)
		SubScaled(fastDst, src, fac)
		SubScaledScalar(refDst, src, fac)
		if i, ok := bitsEqual(fastDst, refDst); !ok {
			t.Fatalf("SubScaled n=%d: elem %d fast=%x scalar=%x",
				n, i, math.Float64bits(fastDst[i]), math.Float64bits(refDst[i]))
		}
	})
}

// BenchmarkKernels covers the three kernel families across the widths
// the workloads use (3..5 specialized, 8 and 16 blocked) and two row
// scales; the .../scalar variants measure the historical loops for the
// speedup ratio quoted in EXPERIMENTS.md.
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range []int{3, 4, 5, 8, 16} {
		for _, rows := range []int{256, 4096} {
			flat := make([]float64, rows*d)
			w := make([]float64, d)
			out := make([]float64, rows)
			bound := make([]float64, d)
			for i := range flat {
				flat[i] = rng.Float64()
			}
			for i := range w {
				w[i] = rng.Float64()
			}
			name := fmt.Sprintf("d=%d/rows=%d", d, rows)

			b.Run("DotRows/"+name, func(b *testing.B) {
				b.SetBytes(int64(rows * d * 8))
				for i := 0; i < b.N; i++ {
					DotRows(flat, d, w, out)
				}
			})
			b.Run("DotRows/"+name+"/scalar", func(b *testing.B) {
				b.SetBytes(int64(rows * d * 8))
				for i := 0; i < b.N; i++ {
					DotRowsScalar(flat, d, w, out)
				}
			})
			b.Run("RowMax/"+name, func(b *testing.B) {
				b.SetBytes(int64(rows * d * 8))
				for i := 0; i < b.N; i++ {
					copy(bound, flat[:d])
					RowMax(flat, d, bound)
				}
			})
			b.Run("RowMax/"+name+"/scalar", func(b *testing.B) {
				b.SetBytes(int64(rows * d * 8))
				for i := 0; i < b.N; i++ {
					copy(bound, flat[:d])
					RowMaxScalar(flat, d, bound)
				}
			})
		}
	}
	// Pivot elimination at tableau widths: one ScaleRow + rows SubScaled
	// per iteration, the shape of a whole simplex pivot.
	for _, width := range []int{16, 64, 256} {
		rows := 32
		tab := make([]float64, rows*width)
		for i := range tab {
			tab[i] = rng.NormFloat64()
		}
		pr := make([]float64, width)
		for i := range pr {
			pr[i] = rng.NormFloat64()
		}
		name := fmt.Sprintf("width=%d/rows=%d", width, rows)
		b.Run("Eliminate/"+name, func(b *testing.B) {
			b.SetBytes(int64(rows * width * 8))
			for i := 0; i < b.N; i++ {
				ScaleRow(pr, 1.0000001)
				for r := 0; r < rows; r++ {
					SubScaled(tab[r*width:(r+1)*width], pr, 0.5)
				}
			}
		})
		b.Run("Eliminate/"+name+"/scalar", func(b *testing.B) {
			b.SetBytes(int64(rows * width * 8))
			for i := 0; i < b.N; i++ {
				ScaleRowScalar(pr, 1.0000001)
				for r := 0; r < rows; r++ {
					SubScaledScalar(tab[r*width:(r+1)*width], pr, 0.5)
				}
			}
		})
	}
}
