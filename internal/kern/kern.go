// Package kern holds the blocked, SIMD-friendly numeric kernels behind
// the engine's two hottest inner loops: batched weight-vector-times-row
// scoring (the layered top-k index, the shard prescreen) and simplex
// pivot row elimination (the LP substrate). It is a leaf package — no
// imports beyond the standard library — so both internal/geom and
// internal/lp can sit on top of it.
//
// # Bit-identity contract
//
// Every fast kernel in this package reproduces its scalar reference
// (the *Scalar twin, a verbatim copy of the historical loop) bit for
// bit on every input — infinities, subnormals, and signed zeros
// included. The single exception is NaN payload bits: when both
// operands of a hardware add or multiply are NaNs, x86 propagates
// whichever operand the compiler scheduled first, and Go leaves that
// order unspecified — so two code shapes computing the identical
// operation tree can return NaNs with different payloads. NaN-ness
// itself is value-determined and therefore identical (the differential
// fuzzers pin exact bits for every non-NaN result and NaN ⇔ NaN
// otherwise), and the engine's finite-data paths never produce NaNs.
// The engine's determinism guarantees rest on this: regions,
// arrangements, and all algorithmic stats must be byte-identical with
// kernels on or off, so a kernel may only reorganize work that IEEE 754
// arithmetic is indifferent to:
//
//   - Dot products keep the exact association order of the scalar
//     kernel: the same multiplication pairs, accumulated into the same
//     four-way-unrolled partial sums s0..s3 (stride-4 lanes, remainder
//     into s0, each starting from +0 so the first accumulation is
//     0 + w·x, not a bare product — the two differ on a -0 product),
//     folded as (s0+s1)+(s2+s3). Blocking happens only ACROSS rows:
//     processing four rows per trip changes instruction interleaving,
//     never any row's own accumulation tree.
//   - Componentwise extrema are order-insensitive only under a fixed
//     comparison direction; the kernels keep the scalar's exact
//     strictly-greater (strictly-less) update per column in row order,
//     so ties, -0 vs +0, and NaN behavior match the reference.
//   - Pivot row updates (scale, subtract-scaled) are elementwise with
//     no cross-element accumulation, so unrolling is trivially exact.
//     What would NOT be exact is folding the pivot-row scale into the
//     elimination factor (f*(inv*p_j) vs (f*inv)*p_j round
//     differently), which is why the elimination kernel takes the
//     already-scaled pivot row instead of fusing the multiply.
//
// # Aliasing
//
// The fast kernels hoist the weight vector (and extrema) into locals
// once per call, which is only equivalent to the scalar reference when
// the output does not alias the weights/bounds. No caller in this
// repository aliases them; the contract is documented on each kernel.
//
// # Dispatch
//
// DotRows, RowMax, and RowMin dispatch once per call (per matrix, not
// per row) on the column count, with dedicated fully-unrolled variants
// for the d ∈ {3, 4, 5, 8} the workloads use and a 4-row-blocked
// generic path for the rest. The differential fuzzers in this package
// (FuzzKernel*) pin fast-vs-scalar byte identity over arbitrary float
// bit patterns; see also lp's pivot parity fuzzer.
package kern

// DotRows computes out[r] = w · flat[r*d : (r+1)*d] for every r in
// [0, len(out)), bit-identical to DotRowsScalar. It assumes validated
// inputs: len(w) == d >= 1 and len(flat) >= len(out)*d (internal/geom
// wraps it with the panicking checks). out must not alias w.
func DotRows(flat []float64, d int, w, out []float64) {
	switch d {
	case 3:
		dotRows3(flat, w, out)
	case 4:
		dotRows4(flat, w, out)
	case 5:
		dotRows5(flat, w, out)
	case 8:
		dotRows8(flat, w, out)
	default:
		dotRowsBlocked(flat, d, w, out)
	}
}

// dot1 accumulates one stride-4 remainder term the way the scalar
// kernel does: into the s0 lane.
//
// The dotN helpers below mirror the scalar accumulation tree exactly —
// var-declared lanes starting at +0, `+=` per multiplication pair in
// stride order, (s0+s1)+(s2+s3) fold — and are small enough for the
// compiler to inline into the row loops.

func dot3(w0, w1, w2, x0, x1, x2 float64) float64 {
	var s0, s1, s2, s3 float64
	s0 += w0 * x0
	s0 += w1 * x1
	s0 += w2 * x2
	return (s0 + s1) + (s2 + s3)
}

func dot4(w0, w1, w2, w3, x0, x1, x2, x3 float64) float64 {
	var s0, s1, s2, s3 float64
	s0 += w0 * x0
	s1 += w1 * x1
	s2 += w2 * x2
	s3 += w3 * x3
	return (s0 + s1) + (s2 + s3)
}

func dot5(w0, w1, w2, w3, w4, x0, x1, x2, x3, x4 float64) float64 {
	var s0, s1, s2, s3 float64
	s0 += w0 * x0
	s1 += w1 * x1
	s2 += w2 * x2
	s3 += w3 * x3
	s0 += w4 * x4 // remainder lane, after the blocked quad like the scalar loop
	return (s0 + s1) + (s2 + s3)
}

func dot8(w0, w1, w2, w3, w4, w5, w6, w7, x0, x1, x2, x3, x4, x5, x6, x7 float64) float64 {
	var s0, s1, s2, s3 float64
	s0 += w0 * x0
	s1 += w1 * x1
	s2 += w2 * x2
	s3 += w3 * x3
	s0 += w4 * x4
	s1 += w5 * x5
	s2 += w6 * x6
	s3 += w7 * x7
	return (s0 + s1) + (s2 + s3)
}

func dotRows3(flat, w, out []float64) {
	w0, w1, w2 := w[0], w[1], w[2]
	n := len(out)
	r := 0
	for ; r+4 <= n; r += 4 {
		f := flat[r*3 : r*3+12]
		o := out[r : r+4]
		o[0] = dot3(w0, w1, w2, f[0], f[1], f[2])
		o[1] = dot3(w0, w1, w2, f[3], f[4], f[5])
		o[2] = dot3(w0, w1, w2, f[6], f[7], f[8])
		o[3] = dot3(w0, w1, w2, f[9], f[10], f[11])
	}
	for ; r < n; r++ {
		f := flat[r*3 : r*3+3]
		out[r] = dot3(w0, w1, w2, f[0], f[1], f[2])
	}
}

func dotRows4(flat, w, out []float64) {
	w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
	n := len(out)
	r := 0
	for ; r+4 <= n; r += 4 {
		f := flat[r*4 : r*4+16]
		o := out[r : r+4]
		o[0] = dot4(w0, w1, w2, w3, f[0], f[1], f[2], f[3])
		o[1] = dot4(w0, w1, w2, w3, f[4], f[5], f[6], f[7])
		o[2] = dot4(w0, w1, w2, w3, f[8], f[9], f[10], f[11])
		o[3] = dot4(w0, w1, w2, w3, f[12], f[13], f[14], f[15])
	}
	for ; r < n; r++ {
		f := flat[r*4 : r*4+4]
		out[r] = dot4(w0, w1, w2, w3, f[0], f[1], f[2], f[3])
	}
}

func dotRows5(flat, w, out []float64) {
	w0, w1, w2, w3, w4 := w[0], w[1], w[2], w[3], w[4]
	n := len(out)
	r := 0
	for ; r+4 <= n; r += 4 {
		f := flat[r*5 : r*5+20]
		o := out[r : r+4]
		o[0] = dot5(w0, w1, w2, w3, w4, f[0], f[1], f[2], f[3], f[4])
		o[1] = dot5(w0, w1, w2, w3, w4, f[5], f[6], f[7], f[8], f[9])
		o[2] = dot5(w0, w1, w2, w3, w4, f[10], f[11], f[12], f[13], f[14])
		o[3] = dot5(w0, w1, w2, w3, w4, f[15], f[16], f[17], f[18], f[19])
	}
	for ; r < n; r++ {
		f := flat[r*5 : r*5+5]
		out[r] = dot5(w0, w1, w2, w3, w4, f[0], f[1], f[2], f[3], f[4])
	}
}

func dotRows8(flat, w, out []float64) {
	w0, w1, w2, w3 := w[0], w[1], w[2], w[3]
	w4, w5, w6, w7 := w[4], w[5], w[6], w[7]
	n := len(out)
	r := 0
	for ; r+2 <= n; r += 2 {
		f := flat[r*8 : r*8+16]
		o := out[r : r+2]
		o[0] = dot8(w0, w1, w2, w3, w4, w5, w6, w7,
			f[0], f[1], f[2], f[3], f[4], f[5], f[6], f[7])
		o[1] = dot8(w0, w1, w2, w3, w4, w5, w6, w7,
			f[8], f[9], f[10], f[11], f[12], f[13], f[14], f[15])
	}
	if r < n {
		f := flat[r*8 : r*8+8]
		out[r] = dot8(w0, w1, w2, w3, w4, w5, w6, w7,
			f[0], f[1], f[2], f[3], f[4], f[5], f[6], f[7])
	}
}

// dotRowsBlocked is the generic-width fast path: four rows per trip,
// each keeping the scalar's four-lane accumulation, with the weight
// quad loaded once per stride for all four rows.
func dotRowsBlocked(flat []float64, d int, w, out []float64) {
	n := len(out)
	r := 0
	for ; r+4 <= n; r += 4 {
		f0 := flat[r*d : r*d+d : r*d+d]
		f1 := flat[(r+1)*d : (r+1)*d+d : (r+1)*d+d]
		f2 := flat[(r+2)*d : (r+2)*d+d : (r+2)*d+d]
		f3 := flat[(r+3)*d : (r+3)*d+d : (r+3)*d+d]
		var a0, a1, a2, a3 float64
		var b0, b1, b2, b3 float64
		var c0, c1, c2, c3 float64
		var e0, e1, e2, e3 float64
		i := 0
		for ; i+4 <= d; i += 4 {
			w0, w1, w2, w3 := w[i], w[i+1], w[i+2], w[i+3]
			a0 += w0 * f0[i]
			a1 += w1 * f0[i+1]
			a2 += w2 * f0[i+2]
			a3 += w3 * f0[i+3]
			b0 += w0 * f1[i]
			b1 += w1 * f1[i+1]
			b2 += w2 * f1[i+2]
			b3 += w3 * f1[i+3]
			c0 += w0 * f2[i]
			c1 += w1 * f2[i+1]
			c2 += w2 * f2[i+2]
			c3 += w3 * f2[i+3]
			e0 += w0 * f3[i]
			e1 += w1 * f3[i+1]
			e2 += w2 * f3[i+2]
			e3 += w3 * f3[i+3]
		}
		for ; i < d; i++ {
			wi := w[i]
			a0 += wi * f0[i]
			b0 += wi * f1[i]
			c0 += wi * f2[i]
			e0 += wi * f3[i]
		}
		o := out[r : r+4]
		o[0] = (a0 + a1) + (a2 + a3)
		o[1] = (b0 + b1) + (b2 + b3)
		o[2] = (c0 + c1) + (c2 + c3)
		o[3] = (e0 + e1) + (e2 + e3)
	}
	for ; r < n; r++ {
		out[r] = dotScalar(w, flat[r*d:r*d+d])
	}
}

// RowMax widens max (length d >= 1) to the componentwise maximum of
// itself and the rows of flat (len a multiple of d), bit-identical to
// RowMaxScalar: the same strictly-greater update per column, in row
// order. max must not alias flat.
func RowMax(flat []float64, d int, max []float64) {
	switch d {
	case 3:
		rowMax3(flat, max)
	case 4:
		rowMax4(flat, max)
	case 5:
		rowMax5(flat, max)
	default:
		rowMaxBlocked(flat, d, max)
	}
}

// RowMin is the componentwise-minimum counterpart of RowMax,
// bit-identical to RowMinScalar. min must not alias flat.
func RowMin(flat []float64, d int, min []float64) {
	switch d {
	case 3:
		rowMin3(flat, min)
	case 4:
		rowMin4(flat, min)
	case 5:
		rowMin5(flat, min)
	default:
		rowMinBlocked(flat, d, min)
	}
}

func rowMax3(flat, max []float64) {
	m0, m1, m2 := max[0], max[1], max[2]
	n := len(flat) / 3
	r := 0
	for ; r+4 <= n; r += 4 {
		f := flat[r*3 : r*3+12]
		if f[0] > m0 {
			m0 = f[0]
		}
		if f[1] > m1 {
			m1 = f[1]
		}
		if f[2] > m2 {
			m2 = f[2]
		}
		if f[3] > m0 {
			m0 = f[3]
		}
		if f[4] > m1 {
			m1 = f[4]
		}
		if f[5] > m2 {
			m2 = f[5]
		}
		if f[6] > m0 {
			m0 = f[6]
		}
		if f[7] > m1 {
			m1 = f[7]
		}
		if f[8] > m2 {
			m2 = f[8]
		}
		if f[9] > m0 {
			m0 = f[9]
		}
		if f[10] > m1 {
			m1 = f[10]
		}
		if f[11] > m2 {
			m2 = f[11]
		}
	}
	for ; r < n; r++ {
		f := flat[r*3 : r*3+3]
		if f[0] > m0 {
			m0 = f[0]
		}
		if f[1] > m1 {
			m1 = f[1]
		}
		if f[2] > m2 {
			m2 = f[2]
		}
	}
	max[0], max[1], max[2] = m0, m1, m2
}

func rowMax4(flat, max []float64) {
	m0, m1, m2, m3 := max[0], max[1], max[2], max[3]
	n := len(flat) / 4
	r := 0
	for ; r+2 <= n; r += 2 {
		f := flat[r*4 : r*4+8]
		if f[0] > m0 {
			m0 = f[0]
		}
		if f[1] > m1 {
			m1 = f[1]
		}
		if f[2] > m2 {
			m2 = f[2]
		}
		if f[3] > m3 {
			m3 = f[3]
		}
		if f[4] > m0 {
			m0 = f[4]
		}
		if f[5] > m1 {
			m1 = f[5]
		}
		if f[6] > m2 {
			m2 = f[6]
		}
		if f[7] > m3 {
			m3 = f[7]
		}
	}
	if r < n {
		f := flat[r*4 : r*4+4]
		if f[0] > m0 {
			m0 = f[0]
		}
		if f[1] > m1 {
			m1 = f[1]
		}
		if f[2] > m2 {
			m2 = f[2]
		}
		if f[3] > m3 {
			m3 = f[3]
		}
	}
	max[0], max[1], max[2], max[3] = m0, m1, m2, m3
}

func rowMax5(flat, max []float64) {
	m0, m1, m2, m3, m4 := max[0], max[1], max[2], max[3], max[4]
	n := len(flat) / 5
	r := 0
	for ; r+2 <= n; r += 2 {
		f := flat[r*5 : r*5+10]
		if f[0] > m0 {
			m0 = f[0]
		}
		if f[1] > m1 {
			m1 = f[1]
		}
		if f[2] > m2 {
			m2 = f[2]
		}
		if f[3] > m3 {
			m3 = f[3]
		}
		if f[4] > m4 {
			m4 = f[4]
		}
		if f[5] > m0 {
			m0 = f[5]
		}
		if f[6] > m1 {
			m1 = f[6]
		}
		if f[7] > m2 {
			m2 = f[7]
		}
		if f[8] > m3 {
			m3 = f[8]
		}
		if f[9] > m4 {
			m4 = f[9]
		}
	}
	if r < n {
		f := flat[r*5 : r*5+5]
		if f[0] > m0 {
			m0 = f[0]
		}
		if f[1] > m1 {
			m1 = f[1]
		}
		if f[2] > m2 {
			m2 = f[2]
		}
		if f[3] > m3 {
			m3 = f[3]
		}
		if f[4] > m4 {
			m4 = f[4]
		}
	}
	max[0], max[1], max[2], max[3], max[4] = m0, m1, m2, m3, m4
}

// rowMaxBlocked processes four rows per trip column-wise: per column
// the running maximum is held in a register across the four rows, with
// the comparisons in the scalar's row order.
func rowMaxBlocked(flat []float64, d int, max []float64) {
	n := len(flat) / d
	r := 0
	for ; r+4 <= n; r += 4 {
		f := flat[r*d : r*d+4*d]
		for j := 0; j < d; j++ {
			m := max[j]
			if v := f[j]; v > m {
				m = v
			}
			if v := f[d+j]; v > m {
				m = v
			}
			if v := f[2*d+j]; v > m {
				m = v
			}
			if v := f[3*d+j]; v > m {
				m = v
			}
			max[j] = m
		}
	}
	for ; r < n; r++ {
		f := flat[r*d : r*d+d]
		for j, x := range f {
			if x > max[j] {
				max[j] = x
			}
		}
	}
}

func rowMin3(flat, min []float64) {
	m0, m1, m2 := min[0], min[1], min[2]
	n := len(flat) / 3
	r := 0
	for ; r+4 <= n; r += 4 {
		f := flat[r*3 : r*3+12]
		if f[0] < m0 {
			m0 = f[0]
		}
		if f[1] < m1 {
			m1 = f[1]
		}
		if f[2] < m2 {
			m2 = f[2]
		}
		if f[3] < m0 {
			m0 = f[3]
		}
		if f[4] < m1 {
			m1 = f[4]
		}
		if f[5] < m2 {
			m2 = f[5]
		}
		if f[6] < m0 {
			m0 = f[6]
		}
		if f[7] < m1 {
			m1 = f[7]
		}
		if f[8] < m2 {
			m2 = f[8]
		}
		if f[9] < m0 {
			m0 = f[9]
		}
		if f[10] < m1 {
			m1 = f[10]
		}
		if f[11] < m2 {
			m2 = f[11]
		}
	}
	for ; r < n; r++ {
		f := flat[r*3 : r*3+3]
		if f[0] < m0 {
			m0 = f[0]
		}
		if f[1] < m1 {
			m1 = f[1]
		}
		if f[2] < m2 {
			m2 = f[2]
		}
	}
	min[0], min[1], min[2] = m0, m1, m2
}

func rowMin4(flat, min []float64) {
	m0, m1, m2, m3 := min[0], min[1], min[2], min[3]
	n := len(flat) / 4
	r := 0
	for ; r+2 <= n; r += 2 {
		f := flat[r*4 : r*4+8]
		if f[0] < m0 {
			m0 = f[0]
		}
		if f[1] < m1 {
			m1 = f[1]
		}
		if f[2] < m2 {
			m2 = f[2]
		}
		if f[3] < m3 {
			m3 = f[3]
		}
		if f[4] < m0 {
			m0 = f[4]
		}
		if f[5] < m1 {
			m1 = f[5]
		}
		if f[6] < m2 {
			m2 = f[6]
		}
		if f[7] < m3 {
			m3 = f[7]
		}
	}
	if r < n {
		f := flat[r*4 : r*4+4]
		if f[0] < m0 {
			m0 = f[0]
		}
		if f[1] < m1 {
			m1 = f[1]
		}
		if f[2] < m2 {
			m2 = f[2]
		}
		if f[3] < m3 {
			m3 = f[3]
		}
	}
	min[0], min[1], min[2], min[3] = m0, m1, m2, m3
}

func rowMin5(flat, min []float64) {
	m0, m1, m2, m3, m4 := min[0], min[1], min[2], min[3], min[4]
	n := len(flat) / 5
	r := 0
	for ; r+2 <= n; r += 2 {
		f := flat[r*5 : r*5+10]
		if f[0] < m0 {
			m0 = f[0]
		}
		if f[1] < m1 {
			m1 = f[1]
		}
		if f[2] < m2 {
			m2 = f[2]
		}
		if f[3] < m3 {
			m3 = f[3]
		}
		if f[4] < m4 {
			m4 = f[4]
		}
		if f[5] < m0 {
			m0 = f[5]
		}
		if f[6] < m1 {
			m1 = f[6]
		}
		if f[7] < m2 {
			m2 = f[7]
		}
		if f[8] < m3 {
			m3 = f[8]
		}
		if f[9] < m4 {
			m4 = f[9]
		}
	}
	if r < n {
		f := flat[r*5 : r*5+5]
		if f[0] < m0 {
			m0 = f[0]
		}
		if f[1] < m1 {
			m1 = f[1]
		}
		if f[2] < m2 {
			m2 = f[2]
		}
		if f[3] < m3 {
			m3 = f[3]
		}
		if f[4] < m4 {
			m4 = f[4]
		}
	}
	min[0], min[1], min[2], min[3], min[4] = m0, m1, m2, m3, m4
}

func rowMinBlocked(flat []float64, d int, min []float64) {
	n := len(flat) / d
	r := 0
	for ; r+4 <= n; r += 4 {
		f := flat[r*d : r*d+4*d]
		for j := 0; j < d; j++ {
			m := min[j]
			if v := f[j]; v < m {
				m = v
			}
			if v := f[d+j]; v < m {
				m = v
			}
			if v := f[2*d+j]; v < m {
				m = v
			}
			if v := f[3*d+j]; v < m {
				m = v
			}
			min[j] = m
		}
	}
	for ; r < n; r++ {
		f := flat[r*d : r*d+d]
		for j, x := range f {
			if x < min[j] {
				min[j] = x
			}
		}
	}
}

// ScaleRow multiplies every element of row by inv in place: the pivot
// normalization of a simplex tableau row. Elementwise, so the 4-wide
// unroll is trivially bit-identical to ScaleRowScalar.
func ScaleRow(row []float64, inv float64) {
	i := 0
	for ; i+4 <= len(row); i += 4 {
		r := row[i : i+4 : i+4]
		r[0] *= inv
		r[1] *= inv
		r[2] *= inv
		r[3] *= inv
	}
	for ; i < len(row); i++ {
		row[i] *= inv
	}
}

// SubScaled subtracts f times src from dst elementwise over
// len(src) entries: the simplex row elimination (an axpy). dst must
// hold at least len(src) values and not overlap src. Elementwise, so
// the 4-wide unroll is trivially bit-identical to SubScaledScalar.
// The pivot-row scale is deliberately NOT folded into f — see the
// package comment.
func SubScaled(dst, src []float64, f float64) {
	dst = dst[:len(src)]
	i := 0
	for ; i+4 <= len(src); i += 4 {
		s := src[i : i+4 : i+4]
		d := dst[i : i+4 : i+4]
		d[0] -= f * s[0]
		d[1] -= f * s[1]
		d[2] -= f * s[2]
		d[3] -= f * s[3]
	}
	for ; i < len(src); i++ {
		dst[i] -= f * src[i]
	}
}
