package lp

// Differential tests for the warm-start paths: random LP *families* —
// clusters of related programs, the shape the cell tree produces — solved
// warm (basis reinstatement) and cold must agree on every verdict, and on
// certificates within tolerance. Only pivot counts may differ.

import (
	"math"
	"math/rand"
	"testing"
)

// randomGEFamily draws a base system {x >= 0 : W_j·x >= T_j} plus a
// sequence of derived systems built the way the cell tree builds children:
// append a row, drop a row, perturb thresholds. Rows keep their identity
// (the same backing slice) across derivations, exactly as the geometry
// layer shares coefficient vectors down the tree.
type geFamily struct {
	n    int
	rows [][]float64 // identity-stable coefficient vectors
	ts   []float64
}

func randomGEFamily(rng *rand.Rand) geFamily {
	n := 2 + rng.Intn(4) // 2..5 variables
	m := 1 + rng.Intn(8) // 1..8 rows
	f := geFamily{n: n}
	for j := 0; j < m; j++ {
		f.rows = append(f.rows, randomRow(rng, n))
		f.ts = append(f.ts, randomThreshold(rng))
	}
	return f
}

func randomRow(rng *rand.Rand, n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = rng.NormFloat64()
	}
	return w
}

func randomThreshold(rng *rand.Rand) float64 {
	// Mix signs so both feasible and infeasible systems appear; the
	// all-positive-threshold case (every row active at the origin) is the
	// common one in the geometry workloads.
	return rng.NormFloat64() * 2
}

// mutate derives the next family member: append, drop, or re-threshold.
func (f *geFamily) mutate(rng *rand.Rand) {
	switch op := rng.Intn(3); {
	case op == 0 || len(f.rows) <= 1:
		f.rows = append(f.rows, randomRow(rng, f.n))
		f.ts = append(f.ts, randomThreshold(rng))
	case op == 1:
		i := rng.Intn(len(f.rows))
		f.rows = append(f.rows[:i], f.rows[i+1:]...)
		f.ts = append(f.ts[:i], f.ts[i+1:]...)
	default:
		i := rng.Intn(len(f.ts))
		f.ts[i] = randomThreshold(rng)
	}
}

func (f *geFamily) keys(buf []Key) []Key {
	buf = buf[:0]
	for _, r := range f.rows {
		buf = append(buf, KeyOf(r))
	}
	return buf
}

// TestFeaserWarmVsColdFamilies is the differential property test required
// by the issue: 1k+ random LP families, every member solved three ways —
// cold, warm-chained from the previous member's exported basis, and warm
// from a freshly re-exported basis — must produce identical verdicts.
func TestFeaserWarmVsColdFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	var cold, warm Feaser
	var basis Basis
	families := 0
	solves := 0
	for families < 1200 {
		families++
		f := randomGEFamily(rng)
		steps := 1 + rng.Intn(6)
		var keys []Key
		haveBasis := false
		for s := 0; s < steps; s++ {
			keys = f.keys(keys)
			wantFeas, wantOK := cold.FeasibleGE(f.n, f.rows, f.ts)
			var seed *Basis
			if haveBasis {
				seed = &basis
			}
			gotFeas, gotOK := warm.FeasibleGEKeyed(f.n, f.rows, f.ts, keys, seed)
			solves++
			if wantOK != gotOK || (wantOK && wantFeas != gotFeas) {
				t.Fatalf("family %d step %d: cold (%v,%v) vs warm (%v,%v)\nrows=%v\nts=%v",
					families, s, wantFeas, wantOK, gotFeas, gotOK, f.rows, f.ts)
			}
			haveBasis = warm.ExportBasis(&basis)
			f.mutate(rng)
		}
		// A fresh family must not be contaminated by the previous one's
		// basis: row identities differ, so the seed must miss, not mislead.
		haveBasis = false
	}
	if solves < 1000 {
		t.Fatalf("only %d differential solves, want >= 1000", solves)
	}
	hits := warm.Counters.WarmHits
	if hits == 0 {
		t.Fatal("warm path never engaged; the test exercised nothing")
	}
	if cold.Counters.Pivots <= warm.Counters.Pivots {
		t.Logf("note: warm pivots %d not below cold %d on random families (expected on adversarial mutations)",
			warm.Counters.Pivots, cold.Counters.Pivots)
	}
	t.Logf("families=%d solves=%d warm hits=%d misses=%d pivots cold=%d warm=%d",
		families, solves, hits, warm.Counters.WarmMisses,
		cold.Counters.Pivots, warm.Counters.Pivots)
}

// TestFeaserWarmParentChild pins the hot-path shape directly: a feasible
// parent system, then a child = parent + one appended >= row, re-entered
// from the parent's basis. Verdicts must match a cold solve and the warm
// chain must save pivots in aggregate — this is the ≥2x mechanism.
func TestFeaserWarmParentChild(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	var cold, warm Feaser
	var basis Basis
	var keys []Key
	for it := 0; it < 2000; it++ {
		n := 2 + rng.Intn(3)
		f := geFamily{n: n}
		m := 3 + rng.Intn(6)
		for j := 0; j < m; j++ {
			f.rows = append(f.rows, randomRow(rng, n))
			f.ts = append(f.ts, -math.Abs(randomThreshold(rng))) // feasible-leaning parent
		}
		keys = f.keys(keys)
		pf, _ := warm.FeasibleGEKeyed(n, f.rows, f.ts, keys, nil)
		if !warm.ExportBasis(&basis) {
			t.Fatalf("it %d: parent basis export failed (feasible=%v)", it, pf)
		}
		// Child: parent + one appended row.
		f.rows = append(f.rows, randomRow(rng, n))
		f.ts = append(f.ts, randomThreshold(rng))
		keys = f.keys(keys)
		wantFeas, wantOK := cold.FeasibleGE(n, f.rows, f.ts)
		gotFeas, gotOK := warm.FeasibleGEKeyed(n, f.rows, f.ts, keys, &basis)
		if wantOK != gotOK || (wantOK && wantFeas != gotFeas) {
			t.Fatalf("it %d: child verdict cold (%v,%v) vs warm (%v,%v)",
				it, wantFeas, wantOK, gotFeas, gotOK)
		}
	}
	if warm.Counters.WarmHits == 0 {
		t.Fatal("no warm hits on the parent+appended-row shape")
	}
	t.Logf("warm hits=%d misses=%d", warm.Counters.WarmHits, warm.Counters.WarmMisses)
}

// TestWorkspaceResolveObjective: chained directional solves over one
// feasible region (the MBB pattern) must match cold solves exactly in
// status and within tolerance in optimum and witness objective.
func TestWorkspaceResolveObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	var warm, cold Workspace
	chains := 0
	for it := 0; it < 2000 && chains < 1500; it++ {
		c, A, b := randomLP(rng)
		n := len(c)
		first := warm.Maximize(c, A, b)
		want := cold.Maximize(c, A, b)
		if first.Status != want.Status {
			t.Fatalf("it %d: base status %v vs %v", it, first.Status, want.Status)
		}
		if first.Status == Infeasible {
			continue
		}
		for dir := 0; dir < 2*n; dir++ {
			c2 := make([]float64, n)
			c2[dir/2] = 1
			if dir%2 == 1 {
				c2[dir/2] = -1
			}
			got, ok := warm.ResolveObjective(c2)
			if !ok {
				t.Fatalf("it %d dir %d: re-entry refused after status %v", it, dir, first.Status)
			}
			wantd := cold.Maximize(c2, A, b)
			if got.Status != wantd.Status {
				t.Fatalf("it %d dir %d: status %v vs %v", it, dir, got.Status, wantd.Status)
			}
			if got.Status == Optimal && !almostEqual(got.Obj, wantd.Obj, 1e-6) {
				t.Fatalf("it %d dir %d: obj %v vs %v", it, dir, got.Obj, wantd.Obj)
			}
			chains++
		}
	}
	if chains < 1000 {
		t.Fatalf("only %d chained re-solves, want >= 1000", chains)
	}
	if warm.Counters.Pivots >= cold.Counters.Pivots {
		t.Errorf("objective re-entry saved no pivots: warm %d vs cold %d",
			warm.Counters.Pivots, cold.Counters.Pivots)
	}
	t.Logf("chains=%d pivots warm=%d cold=%d", chains, warm.Counters.Pivots, cold.Counters.Pivots)
}

// TestWorkspaceReSolveRHS: the dual-simplex reinstatement must agree with
// cold solves across random RHS perturbations of one program (the hull
// membership pattern: same matrix, query-dependent b).
func TestWorkspaceReSolveRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	var warm, cold Workspace
	chains := 0
	for it := 0; it < 4000 && chains < 1500; it++ {
		c, A, b := randomLP(rng)
		first := warm.Maximize(c, A, b)
		if first.Status != Optimal {
			continue
		}
		for step := 0; step < 4; step++ {
			b2 := make([]float64, len(b))
			for i := range b2 {
				b2[i] = b[i] + rng.NormFloat64()
			}
			got, ok := warm.ReSolveRHS(b2)
			if !ok {
				// Legal refusal (inert row from phase 1, budget); re-seed.
				break
			}
			want := cold.Maximize(c, A, b2)
			if got.Status != want.Status {
				t.Fatalf("it %d step %d: status %v vs %v\nc=%v A=%v b2=%v",
					it, step, got.Status, want.Status, c, A, b2)
			}
			if got.Status == Optimal && !almostEqual(got.Obj, want.Obj, 1e-6) {
				t.Fatalf("it %d step %d: obj %v vs %v", it, step, got.Obj, want.Obj)
			}
			chains++
		}
	}
	if chains < 1000 {
		t.Fatalf("only %d RHS re-solves, want >= 1000", chains)
	}
	t.Logf("chains=%d pivots warm=%d cold=%d hits=%d misses=%d",
		chains, warm.Counters.Pivots, cold.Counters.Pivots,
		warm.Counters.WarmHits, warm.Counters.WarmMisses)
}

// TestFeaserCountersAccount checks the accounting identities: every keyed
// solve is exactly one of {warm hit, warm miss + cold, cold}, and Sub/Add
// round-trip deltas.
func TestFeaserCountersAccount(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	var f Feaser
	var basis Basis
	var keys []Key
	have := false
	for it := 0; it < 200; it++ {
		fam := randomGEFamily(rng)
		keys = fam.keys(keys)
		before := f.Counters
		var seed *Basis
		if have && rng.Intn(2) == 0 {
			seed = &basis
		}
		f.FeasibleGEKeyed(fam.n, fam.rows, fam.ts, keys, seed)
		d := f.Counters.Sub(before)
		if d.WarmHits+d.ColdSolves != 1 {
			t.Fatalf("it %d: solve accounted as %+v", it, d)
		}
		if d.WarmMisses > 0 && d.ColdSolves != 1 {
			t.Fatalf("it %d: miss without cold fallback: %+v", it, d)
		}
		have = f.ExportBasis(&basis)
	}
	var total Counters
	total.Add(f.Counters)
	if total != f.Counters {
		t.Fatalf("Add round-trip: %+v vs %+v", total, f.Counters)
	}
}
