package lp

// Feaser answers feasibility queries for systems
//
//	{ x >= 0 : W_j·x >= T_j  for j = 1..m }
//
// by running the simplex method on the dual program, which has only n
// rows (n = dimension of x, small for the geometric workloads here) and
// needs no phase 1: by Farkas' lemma the system is infeasible iff there
// is y >= 0 with sum_j y_j W_j <= 0 (componentwise) and sum_j y_j T_j > 0,
// i.e. iff the dual max sum T_j y_j s.t. sum y_j W_j[i] <= 0 is unbounded;
// y = 0 is always dual-feasible, so the search starts immediately.
//
// Every right-hand side of the dual is zero, so the tableau carries no
// RHS column and every pivot is degenerate; Bland's rule guarantees
// termination. A Feaser reuses its buffers across calls — the hot path of
// the arrangement algorithms runs millions of these queries.
//
// A Feaser is not safe for concurrent use.
type Feaser struct {
	tab   []float64 // n rows x width cols, row-major
	z     []float64 // reduced-cost row, length width
	basis []int     // basis[i] = column basic in row i
}

// feaserMaxIter caps pivots; on overflow the caller should fall back to
// the two-phase solver (never observed in practice, pure safety).
const feaserMaxIter = 5000

// FeasibleGE reports whether {x >= 0 : ws[j]·x >= ts[j] for all j} has a
// solution, and whether the simplex run stayed within its iteration
// budget (ok=false means "answer unreliable, use the robust path").
func (f *Feaser) FeasibleGE(n int, ws [][]float64, ts []float64) (feasible, ok bool) {
	m := len(ws)
	if m == 0 {
		return true, true
	}
	width := m + n
	if cap(f.tab) < n*width {
		f.tab = make([]float64, n*width)
	}
	f.tab = f.tab[:n*width]
	if cap(f.z) < width {
		f.z = make([]float64, width)
	}
	f.z = f.z[:width]
	if cap(f.basis) < n {
		f.basis = make([]int, n)
	}
	f.basis = f.basis[:n]

	// Dual constraint row i: sum_j y_j W_j[i] + s_i = 0.
	for i := 0; i < n; i++ {
		row := f.tab[i*width : (i+1)*width]
		for j := 0; j < m; j++ {
			row[j] = ws[j][i]
		}
		for s := 0; s < n; s++ {
			if s == i {
				row[m+s] = 1
			} else {
				row[m+s] = 0
			}
		}
		f.basis[i] = m + i
	}
	// Reduced costs for max sum T_j y_j: z_j = -T_j on y columns.
	for j := 0; j < m; j++ {
		f.z[j] = -ts[j]
	}
	for s := 0; s < n; s++ {
		f.z[m+s] = 0
	}

	for iter := 0; iter < feaserMaxIter; iter++ {
		// Bland's rule: first column with negative reduced cost.
		col := -1
		for j := 0; j < width; j++ {
			if f.z[j] < -Eps {
				col = j
				break
			}
		}
		if col < 0 {
			return true, true // dual optimum 0: primal feasible
		}
		// Ratio test (all RHS zero): any row with a positive pivot element;
		// Bland tie-break on smallest basis index.
		rowIdx := -1
		for i := 0; i < n; i++ {
			if f.tab[i*width+col] > Eps {
				if rowIdx < 0 || f.basis[i] < f.basis[rowIdx] {
					rowIdx = i
				}
			}
		}
		if rowIdx < 0 {
			return false, true // unbounded dual ray: primal infeasible
		}
		f.pivot(n, width, rowIdx, col)
	}
	return false, false // iteration cap: unreliable
}

func (f *Feaser) pivot(n, width, row, col int) {
	pr := f.tab[row*width : (row+1)*width]
	inv := 1 / pr[col]
	for j := 0; j < width; j++ {
		pr[j] *= inv
	}
	pr[col] = 1
	for i := 0; i < n; i++ {
		if i == row {
			continue
		}
		ri := f.tab[i*width : (i+1)*width]
		fac := ri[col]
		if fac == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			ri[j] -= fac * pr[j]
		}
		ri[col] = 0
	}
	fac := f.z[col]
	if fac != 0 {
		for j := 0; j < width; j++ {
			f.z[j] -= fac * pr[j]
		}
		f.z[col] = 0
	}
	f.basis[row] = col
}
