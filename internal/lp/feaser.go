package lp

// Feaser answers feasibility queries for systems
//
//	{ x >= 0 : W_j·x >= T_j  for j = 1..m }
//
// by running the simplex method on the dual program, which has only n
// rows (n = dimension of x, small for the geometric workloads here) and
// needs no phase 1: by Farkas' lemma the system is infeasible iff there
// is y >= 0 with sum_j y_j W_j <= 0 (componentwise) and sum_j y_j T_j > 0,
// i.e. iff the dual max sum T_j y_j s.t. sum y_j W_j[i] <= 0 is unbounded;
// y = 0 is always dual-feasible, so the search starts immediately.
//
// Every right-hand side of the dual is zero, so the tableau carries no
// RHS column and every pivot is degenerate; Bland's rule guarantees
// termination. A Feaser reuses its buffers across calls — the hot path of
// the arrangement algorithms runs millions of these queries.
//
// # Warm starts
//
// Because every RHS is zero, EVERY basis is primal-feasible in the dual
// tableau — re-entering a saved basis needs no phase 1 and no feasibility
// repair, only a reduced-cost refresh. In primal terms this is the
// dual-simplex reinstatement of a parent cell's basis in a child system
// ("parent rows + one appended >= row" becomes "parent columns + one
// appended column" here): FeasibleGEKeyed maps the snapshot's basic
// columns into the new system by coefficient-vector identity (see Key),
// prices the dual objective with y = cB·B⁻¹, and scans reduced costs. If
// the saved basis is still optimal the verdict is returned after that one
// scan with zero pivots and without materializing a tableau; otherwise the
// tableau is reconstructed as B⁻¹·A and the usual Bland iteration resumes
// from there. Thresholds T never enter the tableau — only the reduced-cost
// row — so a snapshot stays re-enterable across arbitrary threshold
// changes (the cell tree's axis-interval updates are free).
//
// A Feaser is not safe for concurrent use.
type Feaser struct {
	tab   []float64 // n rows x width cols, row-major
	z     []float64 // reduced-cost row, length width
	basis []int     // basis[i] = column basic in row i
	y     []float64 // dual prices scratch for warm re-entry, length n

	// Counters accumulates pivot and warm-start statistics across solves;
	// callers take deltas around call sites they want to attribute.
	Counters Counters

	// DisableKernels routes every pivot elimination through the
	// historical scalar loops instead of internal/kern's blocked row
	// kernels; bit-identical either way (see elim.go), so it changes
	// wall time and nothing else.
	DisableKernels bool

	n, m, width int
	keys        []Key  // caller's row keys for the last solve (aliased; may be nil)
	live        bool   // tab/z/basis hold a materialized, consistent state
	lastOK      bool   // last solve terminated within budget
	seedHit     *Basis // non-nil: last solve was a zero-pivot warm hit on this seed
}

// feaserMaxIter caps pivots; on overflow the caller should fall back to
// the two-phase solver (never observed in practice, pure safety).
const feaserMaxIter = 5000

// FeasibleGE reports whether {x >= 0 : ws[j]·x >= ts[j] for all j} has a
// solution, and whether the simplex run stayed within its iteration
// budget (ok=false means "answer unreliable, use the robust path").
func (f *Feaser) FeasibleGE(n int, ws [][]float64, ts []float64) (feasible, ok bool) {
	return f.FeasibleGEKeyed(n, ws, ts, nil, nil)
}

// FeasibleGEKeyed is FeasibleGE with warm-start support. keys[j] identifies
// row j across solves (nil entries mark transient rows; a nil slice
// disables key matching entirely), and seed is a basis snapshot from a
// related system to re-enter, or nil for a cold start. Verdicts are
// identical warm or cold — a warm start changes the pivot path, never the
// answer: both paths terminate at the same LP's optimality/unboundedness
// condition under the same Eps tolerances.
func (f *Feaser) FeasibleGEKeyed(n int, ws [][]float64, ts []float64, keys []Key, seed *Basis) (feasible, ok bool) {
	m := len(ws)
	if m == 0 {
		f.lastOK = false
		f.seedHit = nil
		return true, true
	}
	f.n, f.m, f.width = n, m, m+n
	f.keys = keys
	f.seedHit = nil
	f.live = false
	f.lastOK = false
	if seed.Valid(n) && len(keys) == m {
		feas, decided := f.enterWarm(ws, ts, keys, seed)
		if decided {
			// Zero pivots: the seed basis is already optimal (hence the
			// system feasible); no tableau was materialized.
			f.Counters.WarmHits++
			f.seedHit = seed
			f.lastOK = true
			return feas, true
		}
		if f.live {
			f.Counters.WarmHits++
			return f.run()
		}
		f.Counters.WarmMisses++
	}
	f.Counters.ColdSolves++
	f.loadCold(ws, ts)
	return f.run()
}

// ExportBasis snapshots the current basis into dst and reports success.
// Export requires the last keyed solve to have terminated within budget
// with every basic constraint column carrying a non-nil key (transient
// rows may not anchor a snapshot — their buffers get rewritten). After a
// zero-pivot warm hit the seed itself is copied, since the basis did not
// move. dst must not be shared with another goroutine yet; publishing it
// (e.g. storing it on a cell) freezes it.
func (f *Feaser) ExportBasis(dst *Basis) bool {
	if !f.lastOK {
		return false
	}
	if f.seedHit != nil {
		dst.copyFrom(f.seedHit)
		return true
	}
	if !f.live || f.keys == nil {
		return false
	}
	n, m, width := f.n, f.m, f.width
	for i := 0; i < n; i++ {
		if b := f.basis[i]; b < m && f.keys[b] == nil {
			return false
		}
	}
	dst.Dim = n
	if cap(dst.binv) < n*n {
		dst.binv = make([]float64, n*n)
	}
	dst.binv = dst.binv[:n*n]
	if cap(dst.ent) < n {
		dst.ent = make([]basisEntry, n)
	}
	dst.ent = dst.ent[:n]
	for i := 0; i < n; i++ {
		// The slack block of the dual tableau is exactly B⁻¹: the slack
		// columns start as the identity and every pivot applies B⁻¹'s row
		// operations to them.
		copy(dst.binv[i*n:(i+1)*n], f.tab[i*width+m:i*width+m+n])
		if b := f.basis[i]; b < m {
			dst.ent[i] = basisEntry{key: f.keys[b]}
		} else {
			dst.ent[i] = basisEntry{key: nil, slack: int32(b - m)}
		}
	}
	return true
}

// enterWarm attempts to reinstate seed in the (ws, ts) system. On success
// it either decides the solve outright (decided=true: the seed basis is
// optimal, zero pivots) or leaves a materialized tableau behind
// (f.live=true) for run() to finish. A failed mapping leaves f.live false.
func (f *Feaser) enterWarm(ws [][]float64, ts []float64, keys []Key, seed *Basis) (feasible, decided bool) {
	n, m, width := f.n, f.m, f.width
	if cap(f.basis) < n {
		f.basis = make([]int, n)
	}
	f.basis = f.basis[:n]
	// Map each basic column of the snapshot into the new system.
	for i := 0; i < n; i++ {
		e := seed.ent[i]
		if e.key == nil {
			f.basis[i] = m + int(e.slack)
			continue
		}
		col := -1
		for j := 0; j < m; j++ {
			if keys[j] == e.key {
				col = j
				break
			}
		}
		if col < 0 {
			return false, false
		}
		f.basis[i] = col
	}
	// A duplicated mapping would make the basis singular; refuse (can only
	// happen if the caller keyed two distinct rows identically).
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			if f.basis[i] == f.basis[j] {
				return false, false
			}
		}
	}
	// Dual prices y = cB·B⁻¹ with cB[r] = T of the basic constraint column
	// (slacks cost zero), then reduced costs z_j = y·W_j - T_j on constraint
	// columns and z_{m+s} = y_s on slack columns. Thresholds enter only
	// here, never the tableau.
	y := growFloats(&f.y, n)
	for i := range y {
		y[i] = 0
	}
	for r := 0; r < n; r++ {
		b := f.basis[r]
		if b >= m {
			continue
		}
		cb := ts[b]
		if cb == 0 {
			continue
		}
		brow := seed.binv[r*n : (r+1)*n]
		for i, v := range brow {
			y[i] += cb * v
		}
	}
	z := growFloats(&f.z, width)
	opt := true
	for j := 0; j < m; j++ {
		wj := ws[j]
		acc := -ts[j]
		for i := 0; i < n; i++ {
			acc += y[i] * wj[i]
		}
		z[j] = acc
		if acc < -Eps {
			opt = false
		}
	}
	for s := 0; s < n; s++ {
		z[m+s] = y[s]
		if y[s] < -Eps {
			opt = false
		}
	}
	if opt {
		return true, true
	}
	// Materialize the tableau B⁻¹·A (constraint column j is B⁻¹·W_j, slack
	// block is B⁻¹ itself) and let the ordinary iteration finish.
	if cap(f.tab) < n*width {
		f.tab = make([]float64, n*width)
	}
	f.tab = f.tab[:n*width]
	for i := 0; i < n; i++ {
		row := f.tab[i*width : (i+1)*width]
		bi := seed.binv[i*n : (i+1)*n]
		for j := 0; j < m; j++ {
			wj := ws[j]
			acc := 0.0
			for r := 0; r < n; r++ {
				acc += bi[r] * wj[r]
			}
			row[j] = acc
		}
		copy(row[m:m+n], bi)
	}
	f.live = true
	return false, false
}

// loadCold fills the tableau from the slack basis exactly as the original
// implementation did.
func (f *Feaser) loadCold(ws [][]float64, ts []float64) {
	n, m, width := f.n, f.m, f.width
	if cap(f.tab) < n*width {
		f.tab = make([]float64, n*width)
	}
	f.tab = f.tab[:n*width]
	growFloats(&f.z, width)
	if cap(f.basis) < n {
		f.basis = make([]int, n)
	}
	f.basis = f.basis[:n]

	// Dual constraint row i: sum_j y_j W_j[i] + s_i = 0.
	for i := 0; i < n; i++ {
		row := f.tab[i*width : (i+1)*width]
		for j := 0; j < m; j++ {
			row[j] = ws[j][i]
		}
		for s := 0; s < n; s++ {
			if s == i {
				row[m+s] = 1
			} else {
				row[m+s] = 0
			}
		}
		f.basis[i] = m + i
	}
	// Reduced costs for max sum T_j y_j: z_j = -T_j on y columns.
	for j := 0; j < m; j++ {
		f.z[j] = -ts[j]
	}
	for s := 0; s < n; s++ {
		f.z[m+s] = 0
	}
	f.live = true
}

// run iterates Bland pivots on the loaded (or warm-materialized) tableau
// to the verdict. The pivot sequence from a cold load is identical to the
// pre-warm-start implementation.
func (f *Feaser) run() (feasible, ok bool) {
	n, width := f.n, f.width
	for iter := 0; iter < feaserMaxIter; iter++ {
		// Bland's rule: first column with negative reduced cost.
		col := -1
		for j := 0; j < width; j++ {
			if f.z[j] < -Eps {
				col = j
				break
			}
		}
		if col < 0 {
			f.lastOK = true
			return true, true // dual optimum 0: primal feasible
		}
		// Ratio test (all RHS zero): any row with a positive pivot element;
		// Bland tie-break on smallest basis index.
		rowIdx := -1
		for i := 0; i < n; i++ {
			if f.tab[i*width+col] > Eps {
				if rowIdx < 0 || f.basis[i] < f.basis[rowIdx] {
					rowIdx = i
				}
			}
		}
		if rowIdx < 0 {
			f.lastOK = true
			return false, true // unbounded dual ray: primal infeasible
		}
		f.Counters.Pivots++
		f.pivot(n, width, rowIdx, col)
	}
	return false, false // iteration cap: unreliable
}

// growFloats resizes *buf to length want, reusing capacity.
func growFloats(buf *[]float64, want int) []float64 {
	if cap(*buf) < want {
		*buf = make([]float64, want)
	}
	*buf = (*buf)[:want]
	return *buf
}

func (f *Feaser) pivot(n, width, row, col int) {
	eliminate(f.tab, width, n, row, col, f.DisableKernels)
	pr := f.tab[row*width : (row+1)*width]
	eliminateAux(f.z, pr, col, f.DisableKernels)
	f.basis[row] = col
}
