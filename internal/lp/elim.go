package lp

import "mir/internal/kern"

// This file is the single home of the Gauss-Jordan pivot elimination
// both simplex engines run: Workspace.pivot (the two-phase primal
// solver) and Feaser.pivot (the dual feasibility solver) were
// copy-paste divergent scalar loops before the kernel layer; they now
// share eliminate/eliminateAux, which dispatch between internal/kern's
// blocked row kernels and the verbatim historical scalar loops.
//
// Bit-identity: the pivot-row normalization and the per-row
// subtract-scaled update are elementwise (no cross-element
// accumulation), so the blocked kernels are exact. The one transform
// that would NOT be exact — folding the pivot-row scale into the
// elimination factor, f*(inv*p_j) vs (f*inv)*p_j — is deliberately
// absent: the pivot row is scaled once, in place, and every
// elimination reads the already-scaled row, exactly as the historical
// loops did. The fac == 0 skip is likewise preserved (those whole-row
// passes are the dominant saving on sparse columns, and skipping them
// is exact: subtracting 0*pr is not a bit-level no-op on NaN/Inf rows,
// so the skip itself is part of the pinned historical semantics).

// eliminate performs the shared Gauss-Jordan pivot on tab (row-major,
// rows x stride): normalize the pivot row by 1/tab[row,col] and set
// its pivot column to exactly 1, then for every other row with a
// nonzero pivot-column factor subtract factor*pivotRow and zero its
// pivot column. scalar selects the historical loops (DisableKernels).
func eliminate(tab []float64, stride, rows, row, col int, scalar bool) {
	pr := tab[row*stride : (row+1)*stride]
	inv := 1 / pr[col]
	if scalar {
		kern.ScaleRowScalar(pr, inv)
	} else {
		kern.ScaleRow(pr, inv)
	}
	pr[col] = 1
	for i := 0; i < rows; i++ {
		if i == row {
			continue
		}
		ri := tab[i*stride : (i+1)*stride]
		fac := ri[col]
		if fac == 0 {
			continue
		}
		if scalar {
			kern.SubScaledScalar(ri, pr, fac)
		} else {
			kern.SubScaled(ri, pr, fac)
		}
		ri[col] = 0
	}
}

// eliminateAux applies the same elimination to an auxiliary row — the
// reduced-cost row of either engine — against the already-scaled pivot
// row pr, preserving the historical fac == 0 skip. z must hold at
// least len(pr) values; only the first len(pr) are touched.
func eliminateAux(z, pr []float64, col int, scalar bool) {
	fac := z[col]
	if fac == 0 {
		return
	}
	if scalar {
		kern.SubScaledScalar(z, pr, fac)
	} else {
		kern.SubScaled(z, pr, fac)
	}
	z[col] = 0
}
