// Package lp implements a dense two-phase simplex solver for small linear
// programs in standard inequality form:
//
//	maximize   c·x
//	subject to A x <= b,  x >= 0.
//
// The solver targets the geometric workloads of this repository: programs
// with a handful of variables (the product-space dimensionality, or the
// cardinality of a convex-combination test) and up to a few hundred
// constraints. It favours robustness over asymptotic speed: Bland's rule is
// used whenever degeneracy is detected, which guarantees termination.
//
// Equality constraints are expressed by the caller as a pair of opposing
// inequalities. Free variables are not supported; every geometric quantity
// in this repository (product coordinates, convex-combination coefficients)
// is naturally non-negative.
//
// # Memory model
//
// The solver state (tableau, reduced-cost row, basis) lives in a Workspace:
// one flat row-major float64 backing array plus two small side slices, all
// reused across solves. The hot paths of the arrangement algorithms run
// millions of solves; with a Workspace (typically drawn from a sync.Pool by
// the caller, see internal/geom) the steady state allocates nothing. The
// package-level Maximize/Minimize/Feasible wrappers draw from an internal
// pool and copy the solution out, so they remain safe for callers that
// retain Result.X indefinitely.
package lp

import (
	"fmt"
	"math"
	"sync"
)

// Status reports the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution with x >= 0.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("lp.Status(%d)", int(s))
	}
}

// Result holds the outcome of a linear program.
type Result struct {
	Status Status
	// X is the optimal point (length = number of variables) when Status
	// is Optimal; nil otherwise. Results returned by Workspace methods
	// alias the workspace's internal buffer and are valid only until the
	// next solve on that workspace; the package-level wrappers return a
	// fresh copy.
	X []float64
	// Obj is the optimal objective value when Status is Optimal.
	Obj float64
}

// Eps is the pivot / feasibility tolerance used throughout the solver (both
// the two-phase primal simplex here and the dual-simplex Feaser). It is the
// authoritative constant for "is this number zero" questions inside an LP:
// pivot admissibility, reduced-cost optimality, ratio-test ties. Geometric
// decisions built on top of LP answers use the much coarser
// geom.ClassifyTol (1e-7); the two-orders-of-magnitude gap guarantees that
// solver noise at the Eps scale can never flip a cover/exclude/cut
// classification. See internal/geom/polytope.go and the cross-check in
// internal/geom/tolerance_test.go.
const Eps = 1e-9

// maxIter bounds the total number of pivots per phase as a safety net; the
// bound is generous for the problem sizes in this repository.
const maxIter = 10000

// degenerateRunFactor scales the anti-cycling threshold: after
// degenerateRunFactor*(m+n) consecutive degenerate pivots the pivot rules
// switch from Dantzig's rule to Bland's rule, whose termination guarantee
// breaks cycles (see TestBealeCycling). The same threshold governs the
// primal iteration in chooseEntering and the dual-simplex re-entry path in
// ReSolveRHS.
const degenerateRunFactor = 2

// blandSwitchAfter returns the degenerate-pivot run length after which a
// solve with m constraints and n variables falls back to Bland's rule.
func blandSwitchAfter(m, n int) int {
	return degenerateRunFactor * (m + n)
}

// Workspace holds the reusable solver state: a dense simplex tableau laid
// out in one flat row-major backing array, the reduced-cost row, and the
// basis bookkeeping. The zero value is ready to use; buffers grow to the
// high-water mark of the programs solved and are then reused without
// further allocation.
//
// A Workspace is not safe for concurrent use.
type Workspace struct {
	// tab is the m x nCols tableau, row-major. Columns 0..n-1 are the
	// structural variables, n..n+m-1 the slacks, then the artificials, and
	// the last column is the right-hand side.
	tab   []float64
	z     []float64 // reduced-cost row, length nCols
	x     []float64 // solution buffer, length n
	zeroC []float64 // all-zero objective for feasibility solves
	basis []int     // basis[i] = column basic in row i

	m, n    int // constraints, structural variables
	nSlack  int
	nArt    int
	nCols   int
	rhsCol  int
	obj     []float64 // caller's objective (aliased, read-only)
	degIter int       // consecutive degenerate pivots; switches to Bland's rule

	// Counters accumulates pivot and warm-start statistics across solves;
	// callers take deltas around call sites they want to attribute.
	Counters Counters

	// DisableKernels routes every pivot elimination through the
	// historical scalar loops instead of internal/kern's blocked row
	// kernels. The two are bit-identical (see elim.go), so the switch
	// changes wall time and nothing else — no result, no counter, no
	// pivot sequence; it exists for benchmarking and the differential
	// property tests.
	DisableKernels bool

	// canPrimal: the basis is primal-feasible for the loaded program, so
	// ResolveObjective may re-enter it with a new objective. canDual: the
	// reduced-cost row is dual-feasible for the loaded objective, so
	// ReSolveRHS may re-enter with a new right-hand side. inert: phase 1
	// zeroed at least one redundant row, which hard-wired the old b into
	// the tableau and forbids RHS re-entry.
	canPrimal bool
	canDual   bool
	inert     bool
}

// pool backs the package-level convenience wrappers.
var pool = sync.Pool{New: func() any { return new(Workspace) }}

// Maximize solves max c·x subject to A x <= b, x >= 0.
//
// A is given row-major; every row must have len(c) entries. b entries may be
// negative (phase 1 handles them). The returned Result.X has len(c) entries
// and is owned by the caller.
func Maximize(c []float64, A [][]float64, b []float64) Result {
	w := pool.Get().(*Workspace)
	r := w.Maximize(c, A, b)
	r = r.detach()
	pool.Put(w)
	return r
}

// Minimize solves min c·x subject to A x <= b, x >= 0 by negating the
// objective. The returned Result.X is owned by the caller.
func Minimize(c []float64, A [][]float64, b []float64) Result {
	w := pool.Get().(*Workspace)
	neg := make([]float64, len(c))
	for i, v := range c {
		neg[i] = -v
	}
	r := w.Maximize(neg, A, b)
	if r.Status == Optimal {
		r.Obj = -r.Obj
	}
	r = r.detach()
	pool.Put(w)
	return r
}

// Feasible reports whether {x : A x <= b, x >= 0} is non-empty, and returns
// a caller-owned witness point when it is.
func Feasible(A [][]float64, b []float64) (bool, []float64) {
	n := 0
	if len(A) > 0 {
		n = len(A[0])
	}
	w := pool.Get().(*Workspace)
	r := w.maximizeZero(n, func(i int) []float64 { return A[i] }, b)
	r = r.detach()
	pool.Put(w)
	if r.Status != Optimal {
		return false, nil
	}
	return true, r.X
}

// detach copies X out of the workspace buffer so the Result survives the
// workspace's return to the pool.
func (r Result) detach() Result {
	if r.X != nil {
		r.X = append([]float64(nil), r.X...)
	}
	return r
}

// Maximize solves max c·x subject to A x <= b, x >= 0 using the
// workspace's buffers. Result.X aliases the workspace and is valid only
// until the next solve.
func (w *Workspace) Maximize(c []float64, A [][]float64, b []float64) Result {
	n := len(c)
	for i, row := range A {
		if len(row) != n {
			panic(fmt.Sprintf("lp: row %d has %d entries, want %d", i, len(row), n))
		}
	}
	if len(b) != len(A) {
		panic(fmt.Sprintf("lp: len(b)=%d, want %d", len(b), len(A)))
	}
	return w.solve(c, func(i int) []float64 { return A[i] }, b)
}

// MaximizeFlat is Maximize with the constraint matrix given as one
// row-major flat slice of len(b) rows x len(c) columns. Result.X aliases
// the workspace and is valid only until the next solve.
func (w *Workspace) MaximizeFlat(c []float64, aFlat []float64, b []float64) Result {
	n := len(c)
	if len(aFlat) != n*len(b) {
		panic(fmt.Sprintf("lp: len(aFlat)=%d, want %d rows x %d cols", len(aFlat), len(b), n))
	}
	return w.solve(c, func(i int) []float64 { return aFlat[i*n : (i+1)*n] }, b)
}

// FeasibleFlat reports whether {x : A x <= b, x >= 0} is non-empty for a
// flat row-major A of len(b) rows x n columns. The witness aliases the
// workspace and is valid only until the next solve.
func (w *Workspace) FeasibleFlat(n int, aFlat []float64, b []float64) (bool, []float64) {
	if len(aFlat) != n*len(b) {
		panic(fmt.Sprintf("lp: len(aFlat)=%d, want %d rows x %d cols", len(aFlat), len(b), n))
	}
	r := w.maximizeZero(n, func(i int) []float64 { return aFlat[i*n : (i+1)*n] }, b)
	if r.Status != Optimal {
		return false, nil
	}
	return true, r.X
}

// maximizeZero runs a feasibility solve (zero objective) without
// materializing the zero vector: the phase-2 reduced-cost row starts
// all-zero, so phase 2 terminates immediately once phase 1 succeeds.
func (w *Workspace) maximizeZero(n int, row func(int) []float64, b []float64) Result {
	c := w.grow(&w.zeroC, n)
	for j := range c {
		c[j] = 0
	}
	return w.solve(c, row, b)
}

// grow resizes *buf to length want, reusing capacity.
func (w *Workspace) grow(buf *[]float64, want int) []float64 {
	if cap(*buf) < want {
		*buf = make([]float64, want)
	}
	*buf = (*buf)[:want]
	return *buf
}

// solve runs the two-phase simplex over constraints presented by the row
// accessor. It fills the workspace tableau, runs phase 1 when any
// right-hand side is negative, then optimizes c·x.
func (w *Workspace) solve(c []float64, row func(int) []float64, b []float64) Result {
	w.Counters.ColdSolves++
	w.load(c, row, b)
	if w.nArt > 0 {
		if !w.phase1() {
			return Result{Status: Infeasible}
		}
	}
	return w.finishPhase2()
}

// finishPhase2 runs phase 2 and records the re-entry capabilities the end
// state supports.
func (w *Workspace) finishPhase2() Result {
	r := w.phase2()
	switch r.Status {
	case Optimal:
		w.canPrimal = true
		w.canDual = !w.inert
	case Unbounded:
		// The basis is still primal-feasible — only the objective escaped —
		// so a different objective may re-enter it; the reduced-cost row is
		// not dual-feasible, so RHS re-entry may not.
		w.canPrimal = true
		w.canDual = false
	default:
		w.canPrimal = false
		w.canDual = false
	}
	return r
}

// ResolveObjective re-solves the loaded program with a new objective from
// the current basis, skipping the load and phase 1 entirely (the basis is
// already primal-feasible; only reduced costs change). It returns ok=false
// — and touches nothing — when the workspace's last solve did not leave a
// re-enterable basis; the caller should then solve cold. Verdicts and
// optima are identical to a cold solve of the same program: both terminate
// at the same optimality condition under the same tolerances, only the
// pivot path (and count) differs.
func (w *Workspace) ResolveObjective(c []float64) (Result, bool) {
	if !w.canPrimal || len(c) != w.n {
		w.Counters.WarmMisses++
		return Result{}, false
	}
	w.Counters.WarmHits++
	w.obj = c
	w.degIter = 0
	return w.finishPhase2(), true
}

// ReSolveRHS re-solves the loaded program with a new right-hand side b
// from the current basis by dual simplex: the reduced-cost row is already
// dual-feasible, so only primal feasibility needs repair — the classic
// reinstatement that needs no phase 1. It returns ok=false — and touches
// nothing — when the last solve did not end Optimal (or phase 1 zeroed a
// redundant row, which bakes the old b into the tableau). len(b) must
// equal the loaded constraint count. Verdicts match a cold solve of the
// same program; only the pivot path differs.
func (w *Workspace) ReSolveRHS(b []float64) (Result, bool) {
	if !w.canDual || len(b) != w.m {
		w.Counters.WarmMisses++
		return Result{}, false
	}
	w.Counters.WarmHits++
	// New transformed RHS: the slack block of the tableau is B⁻¹·S (S the
	// load-time row-sign matrix) and the stored RHS is B⁻¹·S·b, so
	// rhs'_i = Σ_j tab[i][n+j]·b_j — computable in place, row by row, from
	// columns the update never touches.
	for i := 0; i < w.m; i++ {
		ri := w.tab[i*w.nCols : (i+1)*w.nCols]
		acc := 0.0
		for j := 0; j < w.nSlack; j++ {
			acc += ri[w.n+j] * b[j]
		}
		ri[w.rhsCol] = acc
	}
	w.degIter = 0
	limit := w.n + w.nSlack
	for iter := 0; iter < maxIter; iter++ {
		// Leaving row: most negative RHS (Dantzig), smallest basis index
		// (Bland) after a degenerate run — the same switchover rule, with
		// the same named threshold, as the primal iteration.
		row := -1
		if w.degIter > blandSwitchAfter(w.m, w.n) {
			for i := 0; i < w.m; i++ {
				if w.tab[i*w.nCols+w.rhsCol] < -Eps &&
					(row < 0 || w.basis[i] < w.basis[row]) {
					row = i
				}
			}
		} else {
			worst := -Eps
			for i := 0; i < w.m; i++ {
				if v := w.tab[i*w.nCols+w.rhsCol]; v < worst {
					worst = v
					row = i
				}
			}
		}
		if row < 0 {
			// Primal feasibility restored; the unchanged reduced-cost row is
			// still dual-feasible, so the basis is optimal for the new b.
			return w.dualOptimal(), true
		}
		// Entering column: dual ratio test over negative row entries,
		// minimizing z_j / -tab[row][j]; ties break on smallest column
		// index (Bland), preserving dual feasibility of z.
		ri := w.tab[row*w.nCols : (row+1)*w.nCols]
		col := -1
		bestRatio := math.Inf(1)
		for j := 0; j < limit; j++ {
			a := ri[j]
			if a >= -Eps {
				continue
			}
			ratio := w.z[j] / -a
			if ratio < bestRatio-Eps {
				bestRatio = ratio
				col = j
			}
		}
		if col < 0 {
			// A row demands a negative value but every coefficient is
			// non-negative: the new system is infeasible. The reduced-cost
			// row is untouched, so further ReSolveRHS chains remain legal.
			w.canPrimal = false
			return Result{Status: Infeasible}, true
		}
		if bestRatio <= Eps {
			w.degIter++
		} else {
			w.degIter = 0
		}
		w.pivot(row, col)
		eliminateAux(w.z, w.tab[row*w.nCols:(row+1)*w.nCols], col, w.DisableKernels)
	}
	w.canPrimal = false
	w.canDual = false
	return Result{}, false
}

// dualOptimal packages the solution after a successful dual-simplex
// re-entry (mirrors the tail of phase2).
func (w *Workspace) dualOptimal() Result {
	x := w.grow(&w.x, w.n)
	for j := range x {
		x[j] = 0
	}
	for i := 0; i < w.m; i++ {
		if w.basis[i] < w.n {
			x[w.basis[i]] = w.tab[i*w.nCols+w.rhsCol]
		}
	}
	obj := 0.0
	for j := 0; j < w.n; j++ {
		if x[j] < 0 && x[j] > -Eps {
			x[j] = 0
		}
		obj += w.obj[j] * x[j]
	}
	w.canPrimal = true
	w.canDual = true
	return Result{Status: Optimal, X: x, Obj: obj}
}

// load fills the tableau for the given program. One artificial variable is
// introduced per row whose (sign-normalized) RHS forces an infeasible slack
// start, exactly as the original slice-of-slices implementation did.
func (w *Workspace) load(c []float64, row func(int) []float64, b []float64) {
	m, n := len(b), len(c)
	w.m, w.n = m, n
	w.nSlack = m
	w.nArt = 0
	w.degIter = 0
	w.obj = c
	w.canPrimal = false
	w.canDual = false
	w.inert = false
	for i := 0; i < m; i++ {
		if b[i] < -Eps {
			w.nArt++
		}
	}
	w.nCols = n + w.nSlack + w.nArt + 1
	w.rhsCol = w.nCols - 1

	need := m * w.nCols
	if cap(w.tab) < need {
		w.tab = make([]float64, need)
	}
	w.tab = w.tab[:need]
	if cap(w.basis) < m {
		w.basis = make([]int, m)
	}
	w.basis = w.basis[:m]
	w.grow(&w.z, w.nCols)

	art := 0
	for i := 0; i < m; i++ {
		r := w.tab[i*w.nCols : (i+1)*w.nCols]
		for j := range r {
			r[j] = 0
		}
		src := row(i)
		sign := 1.0
		if b[i] < -Eps {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			r[j] = sign * src[j]
		}
		r[n+i] = sign // slack (surplus when sign = -1)
		r[w.rhsCol] = sign * b[i]
		if sign < 0 {
			col := n + w.nSlack + art
			r[col] = 1
			w.basis[i] = col
			art++
		} else {
			w.basis[i] = n + i
		}
	}
}

// phase1 drives the artificial variables to zero. It returns false when the
// original system is infeasible.
func (w *Workspace) phase1() bool {
	// Phase-1 objective: minimize the sum of artificials, i.e. maximize
	// their negated sum. With cost -1 on each artificial, the reduced-cost
	// row is z = cB·B⁻¹A - c, which for the initial basis equals minus the
	// sum of the rows holding artificial basics (and zero on the artificial
	// columns themselves, which iterate never enters anyway).
	z := w.z
	for j := range z {
		z[j] = 0
	}
	for i := 0; i < w.m; i++ {
		if w.basis[i] >= w.n+w.nSlack {
			r := w.tab[i*w.nCols : (i+1)*w.nCols]
			for j, v := range r {
				z[j] -= v
			}
		}
	}
	if !w.iterate(z, w.n+w.nSlack) {
		// Phase 1 is bounded, so a false return signals numerical trouble;
		// the safe answer is infeasible.
		return false
	}
	// z[rhsCol] tracks the phase-1 objective (minus the artificial sum);
	// the system is feasible iff it reached (numerically) zero.
	if z[w.rhsCol] < -1e-7 {
		return false
	}
	// Pivot any artificial variables that remain basic (at zero level) out of
	// the basis so that phase 2 never re-enters them.
	for i := 0; i < w.m; i++ {
		if w.basis[i] < w.n+w.nSlack {
			continue
		}
		r := w.tab[i*w.nCols : (i+1)*w.nCols]
		pivoted := false
		for j := 0; j < w.n+w.nSlack; j++ {
			if math.Abs(r[j]) > Eps {
				w.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// The row is all-zero over real variables: redundant constraint.
			// Leave the artificial basic at level zero; mark the row inert by
			// zeroing it (it can never be chosen as a ratio-test row with a
			// positive pivot element). Zeroing discards the row's dependence
			// on b, so RHS re-entry is off the table for this solve.
			for j := range r {
				r[j] = 0
			}
			w.inert = true
		}
	}
	return true
}

// phase2 optimizes the true objective from the current feasible basis.
func (w *Workspace) phase2() Result {
	// Build the reduced-cost row for max c·x: z[j] = cB·B^-1 A_j - c_j, kept
	// implicitly by starting from -c and adding multiples of basic rows.
	z := w.z
	for j := range z {
		z[j] = 0
	}
	for j := 0; j < w.n; j++ {
		z[j] = -w.obj[j]
	}
	for i := 0; i < w.m; i++ {
		bj := w.basis[i]
		if bj < w.n && w.obj[bj] != 0 {
			coef := w.obj[bj]
			r := w.tab[i*w.nCols : (i+1)*w.nCols]
			for j, v := range r {
				z[j] += coef * v
			}
		}
	}
	if !w.iterate(z, w.n+w.nSlack) {
		return Result{Status: Unbounded}
	}
	x := w.grow(&w.x, w.n)
	for j := range x {
		x[j] = 0
	}
	for i := 0; i < w.m; i++ {
		if w.basis[i] < w.n {
			x[w.basis[i]] = w.tab[i*w.nCols+w.rhsCol]
		}
	}
	obj := 0.0
	for j := 0; j < w.n; j++ {
		if x[j] < 0 && x[j] > -Eps {
			x[j] = 0
		}
		obj += w.obj[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Obj: obj}
}

// iterate runs simplex pivots on the given reduced-cost row until optimality
// (returns true) or unboundedness (returns false). Columns >= limit (the
// artificials during phase 2) are never entered.
func (w *Workspace) iterate(z []float64, limit int) bool {
	for iter := 0; iter < maxIter; iter++ {
		col := w.chooseEntering(z, limit)
		if col < 0 {
			return true // optimal
		}
		row := w.ratioTest(col)
		if row < 0 {
			return false // unbounded
		}
		if w.tab[row*w.nCols+w.rhsCol] < Eps {
			w.degIter++
		} else {
			w.degIter = 0
		}
		w.pivot(row, col)
		// Update the reduced-cost row with the same elimination.
		eliminateAux(z, w.tab[row*w.nCols:(row+1)*w.nCols], col, w.DisableKernels)
	}
	// Hitting the iteration cap on these tiny programs indicates numerical
	// trouble; report the safest answer for each phase. Phase 1 treats it as
	// infeasible, phase 2 as unbounded — both surface as errors upstream.
	return false
}

// chooseEntering picks the entering column: Dantzig's rule normally, Bland's
// rule after a run of degenerate pivots (anti-cycling).
func (w *Workspace) chooseEntering(z []float64, limit int) int {
	if w.degIter > blandSwitchAfter(w.m, w.n) {
		for j := 0; j < limit; j++ {
			if z[j] < -Eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -Eps
	for j := 0; j < limit; j++ {
		if z[j] < bestVal {
			bestVal = z[j]
			best = j
		}
	}
	return best
}

// ratioTest picks the leaving row for the entering column, breaking ties by
// smallest basis index (part of Bland's anti-cycling guarantee).
func (w *Workspace) ratioTest(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := 0; i < w.m; i++ {
		a := w.tab[i*w.nCols+col]
		if a <= Eps {
			continue
		}
		ratio := w.tab[i*w.nCols+w.rhsCol] / a
		if ratio < bestRatio-Eps ||
			(ratio < bestRatio+Eps && bestRow >= 0 && w.basis[i] < w.basis[bestRow]) {
			bestRatio = ratio
			bestRow = i
		}
	}
	return bestRow
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the
// basis, via the shared elimination kernel (see elim.go).
func (w *Workspace) pivot(row, col int) {
	w.Counters.Pivots++
	eliminate(w.tab, w.nCols, w.m, row, col, w.DisableKernels)
	w.basis[row] = col
}
