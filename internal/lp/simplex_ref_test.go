package lp

// This file preserves the seed's slice-of-slices two-phase simplex verbatim
// (renamed ref*) as a differential-testing oracle for the flat Workspace
// implementation in simplex.go. It exists only under test; see
// simplex_diff_test.go for the property and fuzz harnesses that pit the two
// against each other.

import (
	"fmt"
	"math"
)

// refMinimize is referenced only to keep the oracle surface complete.
var _ = refMinimize

// refTableau is a dense simplex refTableau. Rows 0..m-1 are constraints, row m is
// the objective. Columns 0..nCols-2 are variables (structural, slack,
// artificial), column nCols-1 is the right-hand side.
type refTableau struct {
	m, n    int // constraints, structural variables
	nSlack  int
	nArt    int
	rows    [][]float64
	basis   []int // basis[i] = column basic in row i
	obj     []float64
	rhsCol  int
	degIter int // consecutive degenerate pivots; switches to Bland's rule
}

// Maximize solves max c·x subject to A x <= b, x >= 0.
//
// A is given row-major; every row must have len(c) entries. b entries may be
// negative (phase 1 handles them). The returned Result.X has len(c) entries.
func refMaximize(c []float64, A [][]float64, b []float64) Result {
	n := len(c)
	m := len(A)
	for i, row := range A {
		if len(row) != n {
			panic(fmt.Sprintf("lp: row %d has %d entries, want %d", i, len(row), n))
		}
	}
	if len(b) != m {
		panic(fmt.Sprintf("lp: len(b)=%d, want %d", len(b), m))
	}

	t := refNewTableau(c, A, b)
	if t.nArt > 0 {
		if !t.phase1() {
			return Result{Status: Infeasible}
		}
	}
	return t.phase2()
}

// Minimize solves min c·x subject to A x <= b, x >= 0 by negating the
// objective.
func refMinimize(c []float64, A [][]float64, b []float64) Result {
	neg := make([]float64, len(c))
	for i, v := range c {
		neg[i] = -v
	}
	r := refMaximize(neg, A, b)
	if r.Status == Optimal {
		r.Obj = -r.Obj
	}
	return r
}

// Feasible reports whether {x : A x <= b, x >= 0} is non-empty, and returns
// a witness point when it is.
func refFeasible(A [][]float64, b []float64) (bool, []float64) {
	n := 0
	if len(A) > 0 {
		n = len(A[0])
	}
	r := refMaximize(make([]float64, n), A, b)
	if r.Status != Optimal {
		return false, nil
	}
	return true, r.X
}

func refNewTableau(c []float64, A [][]float64, b []float64) *refTableau {
	m, n := len(A), len(c)
	t := &refTableau{m: m, n: n, nSlack: m}
	// Count artificials: one per row whose (sign-normalized) RHS forces an
	// infeasible slack start.
	for i := 0; i < m; i++ {
		if b[i] < -Eps {
			t.nArt++
		}
	}
	nCols := n + t.nSlack + t.nArt + 1
	t.rhsCol = nCols - 1
	t.rows = make([][]float64, m)
	t.basis = make([]int, m)
	art := 0
	for i := 0; i < m; i++ {
		row := make([]float64, nCols)
		sign := 1.0
		if b[i] < -Eps {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			row[j] = sign * A[i][j]
		}
		row[n+i] = sign // slack (surplus when sign = -1)
		row[t.rhsCol] = sign * b[i]
		if sign < 0 {
			col := n + t.nSlack + art
			row[col] = 1
			t.basis[i] = col
			art++
		} else {
			t.basis[i] = n + i
		}
		t.rows[i] = row
	}
	t.obj = c
	return t
}

// phase1 drives the artificial variables to zero. It returns false when the
// original system is infeasible.
func (t *refTableau) phase1() bool {
	nCols := t.rhsCol + 1
	// Phase-1 objective: minimize the sum of artificials, i.e. maximize
	// their negated sum. With cost -1 on each artificial, the reduced-cost
	// row is z = cB·B⁻¹A - c, which for the initial basis equals minus the
	// sum of the rows holding artificial basics (and zero on the artificial
	// columns themselves, which iterate never enters anyway).
	z := make([]float64, nCols)
	for i := 0; i < t.m; i++ {
		if t.basis[i] >= t.n+t.nSlack {
			for j := 0; j < nCols; j++ {
				z[j] -= t.rows[i][j]
			}
		}
	}
	if !t.iterate(z, t.n+t.nSlack) {
		// Phase 1 is bounded, so a false return signals numerical trouble;
		// the safe answer is infeasible.
		return false
	}
	// z[rhsCol] tracks the phase-1 objective (minus the artificial sum);
	// the system is feasible iff it reached (numerically) zero.
	if z[t.rhsCol] < -1e-7 {
		return false
	}
	// Pivot any artificial variables that remain basic (at zero level) out of
	// the basis so that phase 2 never re-enters them.
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n+t.nSlack {
			continue
		}
		pivoted := false
		for j := 0; j < t.n+t.nSlack; j++ {
			if math.Abs(t.rows[i][j]) > Eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// The row is all-zero over real variables: redundant constraint.
			// Leave the artificial basic at level zero; mark the row inert by
			// zeroing it (it can never be chosen as a ratio-test row with a
			// positive pivot element).
			for j := 0; j <= t.rhsCol; j++ {
				t.rows[i][j] = 0
			}
		}
	}
	return true
}

// phase2 optimizes the true objective from the current feasible basis.
func (t *refTableau) phase2() Result {
	nCols := t.rhsCol + 1
	// Build the reduced-cost row for max c·x: z[j] = cB·B^-1 A_j - c_j, kept
	// implicitly by starting from -c and adding multiples of basic rows.
	z := make([]float64, nCols)
	for j := 0; j < t.n; j++ {
		z[j] = -t.obj[j]
	}
	for i := 0; i < t.m; i++ {
		bj := t.basis[i]
		if bj < t.n && t.obj[bj] != 0 {
			coef := t.obj[bj]
			for j := 0; j < nCols; j++ {
				z[j] += coef * t.rows[i][j]
			}
		}
	}
	if !t.iterate(z, t.n+t.nSlack) {
		return Result{Status: Unbounded}
	}
	x := make([]float64, t.n)
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.n {
			x[t.basis[i]] = t.rows[i][t.rhsCol]
		}
	}
	obj := 0.0
	for j := 0; j < t.n; j++ {
		if x[j] < 0 && x[j] > -Eps {
			x[j] = 0
		}
		obj += t.obj[j] * x[j]
	}
	return Result{Status: Optimal, X: x, Obj: obj}
}

// iterate runs simplex pivots on the given reduced-cost row until optimality
// (returns true) or unboundedness (returns false). Columns >= limit (the
// artificials during phase 2) are never entered.
func (t *refTableau) iterate(z []float64, limit int) bool {
	for iter := 0; iter < maxIter; iter++ {
		col := t.chooseEntering(z, limit)
		if col < 0 {
			return true // optimal
		}
		row := t.ratioTest(col)
		if row < 0 {
			return false // unbounded
		}
		if t.rows[row][t.rhsCol] < Eps {
			t.degIter++
		} else {
			t.degIter = 0
		}
		t.pivot(row, col)
		// Update the reduced-cost row with the same elimination.
		coef := z[col]
		if coef != 0 {
			for j := 0; j <= t.rhsCol; j++ {
				z[j] -= coef * t.rows[row][j]
			}
			z[col] = 0
		}
	}
	// Hitting the iteration cap on these tiny programs indicates numerical
	// trouble; report the safest answer for each phase. Phase 1 treats it as
	// infeasible, phase 2 as unbounded — both surface as errors upstream.
	return false
}

// chooseEntering picks the entering column: Dantzig's rule normally, Bland's
// rule after a run of degenerate pivots (anti-cycling).
func (t *refTableau) chooseEntering(z []float64, limit int) int {
	if t.degIter > 2*(t.m+t.n) {
		for j := 0; j < limit; j++ {
			if z[j] < -Eps {
				return j
			}
		}
		return -1
	}
	best, bestVal := -1, -Eps
	for j := 0; j < limit; j++ {
		if z[j] < bestVal {
			bestVal = z[j]
			best = j
		}
	}
	return best
}

// ratioTest picks the leaving row for the entering column, breaking ties by
// smallest basis index (part of Bland's anti-cycling guarantee).
func (t *refTableau) ratioTest(col int) int {
	bestRow := -1
	bestRatio := math.Inf(1)
	for i := 0; i < t.m; i++ {
		a := t.rows[i][col]
		if a <= Eps {
			continue
		}
		ratio := t.rows[i][t.rhsCol] / a
		if ratio < bestRatio-Eps ||
			(ratio < bestRatio+Eps && bestRow >= 0 && t.basis[i] < t.basis[bestRow]) {
			bestRatio = ratio
			bestRow = i
		}
	}
	return bestRow
}

// pivot performs a Gauss-Jordan pivot on (row, col) and updates the basis.
func (t *refTableau) pivot(row, col int) {
	pr := t.rows[row]
	p := pr[col]
	inv := 1 / p
	for j := 0; j <= t.rhsCol; j++ {
		pr[j] *= inv
	}
	pr[col] = 1
	for i := 0; i < t.m; i++ {
		if i == row {
			continue
		}
		f := t.rows[i][col]
		if f == 0 {
			continue
		}
		ri := t.rows[i]
		for j := 0; j <= t.rhsCol; j++ {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	t.basis[row] = col
}
