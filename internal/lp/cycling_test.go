package lp

// Cycling regression: Beale's classic example cycles forever under the
// textbook Dantzig entering rule with standard tie-breaking. The solver
// must detect the degenerate run, switch to Bland's rule at the named
// blandSwitchAfter threshold, and terminate at the true optimum.

import (
	"math"
	"testing"
)

// bealeLP is Beale's 1955 cycling example:
//
//	max 0.75 x1 − 150 x2 + 0.02 x3 − 6 x4
//	s.t. 0.25 x1 −  60 x2 − 0.04 x3 + 9 x4 <= 0
//	     0.50 x1 −  90 x2 − 0.02 x3 + 3 x4 <= 0
//	                              x3       <= 1
//
// Every basic feasible solution before the optimum is degenerate (both
// resource rows bind at the origin), which makes Dantzig's rule cycle.
// The optimum is 0.05 at x = (0.04, 0, 1, 0).
func bealeLP() (c []float64, A [][]float64, b []float64) {
	c = []float64{0.75, -150, 0.02, -6}
	A = [][]float64{
		{0.25, -60, -0.04, 9},
		{0.5, -90, -0.02, 3},
		{0, 0, 1, 0},
	}
	b = []float64{0, 0, 1}
	return
}

func TestBealeCycling(t *testing.T) {
	c, A, b := bealeLP()
	var w Workspace
	r := w.Maximize(c, A, b)
	if r.Status != Optimal {
		t.Fatalf("status = %v, want Optimal", r.Status)
	}
	if !almostEqual(r.Obj, 0.05, 1e-9) {
		t.Fatalf("obj = %v, want 0.05", r.Obj)
	}
	want := []float64{0.04, 0, 1, 0}
	for j, v := range want {
		if !almostEqual(r.X[j], v, 1e-9) {
			t.Fatalf("x[%d] = %v, want %v (x=%v)", j, r.X[j], v, r.X)
		}
	}
	// The run must actually have tripped the anti-cycling switchover:
	// fewer pivots than the Bland threshold would mean the example no
	// longer forces degeneracy and the regression test tests nothing.
	if int(w.Counters.Pivots) <= blandSwitchAfter(len(b), len(c)) {
		t.Fatalf("only %d pivots; Beale's example should exceed the Bland threshold %d",
			w.Counters.Pivots, blandSwitchAfter(len(b), len(c)))
	}
}

// TestBlandThresholdShared pins the named constant's value and its use by
// both pivot rules: the threshold is the single tunable shared by the
// primal entering rule and the dual-simplex leaving rule.
func TestBlandThresholdShared(t *testing.T) {
	if got := blandSwitchAfter(3, 4); got != degenerateRunFactor*(3+4) {
		t.Fatalf("blandSwitchAfter(3,4) = %d, want %d", got, degenerateRunFactor*7)
	}
	// A degenerate program driven through the dual path must also
	// terminate (the dual leaving rule falls back to Bland's smallest-
	// basis-index choice after the same threshold).
	c, A, b := bealeLP()
	var w Workspace
	if r := w.Maximize(c, A, b); r.Status != Optimal {
		t.Fatalf("base solve: %v", r.Status)
	}
	// Tighten then relax the degenerate rows; every re-entry must return.
	for _, d := range []float64{0.5, 0, 1, 0.25, 0} {
		b2 := []float64{d, d, 1}
		r, ok := w.ReSolveRHS(b2)
		if !ok {
			t.Fatalf("ReSolveRHS(%v) refused", b2)
		}
		want := Maximize(c, A, b2)
		if r.Status != want.Status || (r.Status == Optimal && !almostEqual(r.Obj, want.Obj, 1e-7)) {
			t.Fatalf("ReSolveRHS(%v): got (%v, %v), want (%v, %v)",
				b2, r.Status, r.Obj, want.Status, want.Obj)
		}
	}
}

// TestBealeUnderFeaser drives the same degenerate geometry through the
// dual-form Feaser (every pivot there is degenerate by construction) as a
// termination sanity check.
func TestBealeUnderFeaser(t *testing.T) {
	// Rows of Beale's polytope as >= constraints: -A_i·x >= -b_i.
	c, A, b := bealeLP()
	_ = c
	ws := make([][]float64, len(A))
	ts := make([]float64, len(A))
	for i, row := range A {
		neg := make([]float64, len(row))
		for j, v := range row {
			neg[j] = -v
		}
		ws[i] = neg
		ts[i] = -b[i]
	}
	var f Feaser
	feas, ok := f.FeasibleGE(4, ws, ts)
	if !ok || !feas {
		t.Fatalf("Beale polytope: feasible=%v ok=%v, want true,true (origin is a point)", feas, ok)
	}
	if math.IsNaN(float64(f.Counters.Pivots)) || f.Counters.Pivots < 0 {
		t.Fatalf("bad pivot counter %d", f.Counters.Pivots)
	}
}
