package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMaximizeTextbook(t *testing.T) {
	tests := []struct {
		name string
		c    []float64
		A    [][]float64
		b    []float64
		want Result
	}{
		{
			name: "classic 2-var",
			// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
			c:    []float64{3, 5},
			A:    [][]float64{{1, 0}, {0, 2}, {3, 2}},
			b:    []float64{4, 12, 18},
			want: Result{Status: Optimal, X: []float64{2, 6}, Obj: 36},
		},
		{
			name: "degenerate vertex",
			// Three constraints meet at (1,1); optimum is there.
			c:    []float64{1, 1},
			A:    [][]float64{{1, 0}, {0, 1}, {1, 1}},
			b:    []float64{1, 1, 2},
			want: Result{Status: Optimal, X: []float64{1, 1}, Obj: 2},
		},
		{
			name: "negative rhs needs phase 1",
			// x >= 0.5 expressed as -x <= -0.5; max -x gives x = 0.5.
			c:    []float64{-1},
			A:    [][]float64{{-1}},
			b:    []float64{-0.5},
			want: Result{Status: Optimal, X: []float64{0.5}, Obj: -0.5},
		},
		{
			name: "infeasible",
			// x <= 1 and x >= 2.
			c:    []float64{1},
			A:    [][]float64{{1}, {-1}},
			b:    []float64{1, -2},
			want: Result{Status: Infeasible},
		},
		{
			name: "unbounded",
			c:    []float64{1, 0},
			A:    [][]float64{{0, 1}},
			b:    []float64{1},
			want: Result{Status: Unbounded},
		},
		{
			name: "zero objective feasibility",
			c:    []float64{0, 0},
			A:    [][]float64{{1, 1}},
			b:    []float64{1},
			want: Result{Status: Optimal, X: []float64{0, 0}, Obj: 0},
		},
		{
			name: "equality via inequality pair",
			// x + y = 1 and max x -> x = 1.
			c:    []float64{1, 0},
			A:    [][]float64{{1, 1}, {-1, -1}},
			b:    []float64{1, -1},
			want: Result{Status: Optimal, X: []float64{1, 0}, Obj: 1},
		},
		{
			name: "redundant constraints",
			c:    []float64{2, 3},
			A:    [][]float64{{1, 1}, {1, 1}, {2, 2}, {1, 0}},
			b:    []float64{1, 1, 2, 1},
			want: Result{Status: Optimal, X: []float64{0, 1}, Obj: 3},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Maximize(tc.c, tc.A, tc.b)
			if got.Status != tc.want.Status {
				t.Fatalf("status = %v, want %v", got.Status, tc.want.Status)
			}
			if got.Status != Optimal {
				return
			}
			if !almostEqual(got.Obj, tc.want.Obj, 1e-7) {
				t.Errorf("obj = %g, want %g", got.Obj, tc.want.Obj)
			}
			if tc.want.X != nil {
				for j := range tc.want.X {
					if !almostEqual(got.X[j], tc.want.X[j], 1e-7) {
						t.Errorf("x[%d] = %g, want %g", j, got.X[j], tc.want.X[j])
					}
				}
			}
		})
	}
}

func TestMinimize(t *testing.T) {
	// min x + y s.t. x + 2y >= 2, 2x + y >= 2 -> x = y = 2/3.
	r := Minimize(
		[]float64{1, 1},
		[][]float64{{-1, -2}, {-2, -1}},
		[]float64{-2, -2},
	)
	if r.Status != Optimal {
		t.Fatalf("status = %v", r.Status)
	}
	if !almostEqual(r.Obj, 4.0/3.0, 1e-7) {
		t.Errorf("obj = %g, want 4/3", r.Obj)
	}
}

func TestFeasibleWitness(t *testing.T) {
	A := [][]float64{{1, 1}, {-1, 0}}
	b := []float64{1, -0.25} // x >= 0.25, x + y <= 1
	ok, x := Feasible(A, b)
	if !ok {
		t.Fatal("expected feasible")
	}
	if x[0] < 0.25-1e-9 || x[0]+x[1] > 1+1e-9 || x[0] < 0 || x[1] < 0 {
		t.Errorf("witness %v violates constraints", x)
	}

	ok, _ = Feasible([][]float64{{1}, {-1}}, []float64{0.5, -1})
	if ok {
		t.Error("expected infeasible")
	}
}

// checkSolution verifies primal feasibility and that the objective is not
// beaten by any of a set of random feasible candidates (a weak optimality
// probe that catches gross solver errors).
func checkSolution(t *testing.T, c []float64, A [][]float64, b []float64, r Result, rng *rand.Rand) {
	t.Helper()
	for j, v := range r.X {
		if v < -1e-7 {
			t.Fatalf("x[%d] = %g < 0", j, v)
		}
	}
	for i := range A {
		dot := 0.0
		for j := range c {
			dot += A[i][j] * r.X[j]
		}
		if dot > b[i]+1e-6 {
			t.Fatalf("constraint %d violated: %g > %g", i, dot, b[i])
		}
	}
	// Random rejection sampling for competitors.
	for trial := 0; trial < 200; trial++ {
		x := make([]float64, len(c))
		for j := range x {
			x[j] = rng.Float64() * 2
		}
		ok := true
		for i := range A {
			dot := 0.0
			for j := range x {
				dot += A[i][j] * x[j]
			}
			if dot > b[i] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		obj := 0.0
		for j := range x {
			obj += c[j] * x[j]
		}
		if obj > r.Obj+1e-6 {
			t.Fatalf("sampled point %v beats reported optimum: %g > %g", x, obj, r.Obj)
		}
	}
}

func TestRandomBoundedLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(8)
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.NormFloat64()
		}
		A := make([][]float64, 0, m+n)
		b := make([]float64, 0, m+n)
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			A = append(A, row)
			b = append(b, rng.Float64()*2-0.5)
		}
		// Bounding box keeps every instance bounded.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			A = append(A, row)
			b = append(b, 2)
		}
		r := Maximize(c, A, b)
		switch r.Status {
		case Optimal:
			checkSolution(t, c, A, b, r, rng)
		case Infeasible:
			// Verify infeasibility by sampling.
			for probe := 0; probe < 500; probe++ {
				x := make([]float64, n)
				for j := range x {
					x[j] = rng.Float64() * 2
				}
				ok := true
				for i := range A {
					dot := 0.0
					for j := range x {
						dot += A[i][j] * x[j]
					}
					if dot > b[i]-1e-9 {
						ok = false
						break
					}
				}
				if ok {
					t.Fatalf("trial %d: reported infeasible but %v is strictly feasible", trial, x)
				}
			}
		case Unbounded:
			t.Fatalf("trial %d: box-bounded LP reported unbounded", trial)
		}
	}
}

// TestQuickScaleInvariance: scaling the objective scales the optimum.
func TestQuickScaleInvariance(t *testing.T) {
	A := [][]float64{{1, 2}, {3, 1}, {1, 1}}
	b := []float64{4, 6, 3}
	f := func(c1, c2 float64, scaleRaw uint8) bool {
		scale := 0.1 + float64(scaleRaw%50)
		c := []float64{c1, c2}
		if math.Abs(c1) > 1e3 || math.Abs(c2) > 1e3 {
			return true
		}
		r1 := Maximize(c, A, b)
		r2 := Maximize([]float64{scale * c1, scale * c2}, A, b)
		if r1.Status != Optimal || r2.Status != Optimal {
			return r1.Status == r2.Status
		}
		return almostEqual(r2.Obj, scale*r1.Obj, 1e-5*(1+math.Abs(scale*r1.Obj)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDualityGap: for feasible bounded LPs built at random, the optimum
// of max c·x over {Ax<=b, x>=0} must satisfy weak duality against randomly
// sampled dual-feasible y (y>=0, yA >= c componentwise): c·x* <= y·b.
func TestQuickDualityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(4)
		m := n + rng.Intn(4)
		A := make([][]float64, m)
		b := make([]float64, m)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = rng.Float64() // non-negative A keeps duals easy to sample
			}
			b[i] = 0.5 + rng.Float64()
		}
		c := make([]float64, n)
		for j := range c {
			c[j] = rng.Float64()
		}
		r := Maximize(c, A, b)
		if r.Status != Optimal {
			t.Fatalf("trial %d: status %v for feasible bounded LP", trial, r.Status)
		}
		// Sample dual candidates.
		for probe := 0; probe < 100; probe++ {
			y := make([]float64, m)
			for i := range y {
				y[i] = rng.Float64() * 3
			}
			feas := true
			for j := 0; j < n; j++ {
				dot := 0.0
				for i := 0; i < m; i++ {
					dot += y[i] * A[i][j]
				}
				if dot < c[j]-1e-12 {
					feas = false
					break
				}
			}
			if !feas {
				continue
			}
			yb := 0.0
			for i := range y {
				yb += y[i] * b[i]
			}
			if r.Obj > yb+1e-6 {
				t.Fatalf("weak duality violated: primal %g > dual %g", r.Obj, yb)
			}
		}
	}
}

func TestHighlyDegenerate(t *testing.T) {
	// Many constraints through the origin; exercises Bland's rule fallback.
	n := 3
	A := make([][]float64, 0)
	b := make([]float64, 0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		A = append(A, row)
		b = append(b, 0) // all pass through origin
	}
	for j := 0; j < n; j++ {
		row := make([]float64, n)
		row[j] = 1
		A = append(A, row)
		b = append(b, 1)
	}
	r := Maximize([]float64{1, 1, 1}, A, b)
	if r.Status == Unbounded {
		t.Fatal("bounded problem reported unbounded")
	}
}

func BenchmarkMaximizeD4(bch *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 4, 40
	c := make([]float64, n)
	A := make([][]float64, m)
	b := make([]float64, m)
	for j := range c {
		c[j] = rng.NormFloat64()
	}
	for i := range A {
		A[i] = make([]float64, n)
		for j := range A[i] {
			A[i][j] = rng.NormFloat64()
		}
		b[i] = 1 + rng.Float64()
	}
	bch.ResetTimer()
	for i := 0; i < bch.N; i++ {
		Maximize(c, A, b)
	}
}

// TestFeaserAgreesWithTwoPhase cross-checks the dual-simplex feasibility
// solver against the two-phase primal simplex on random systems
// {x >= 0 : W x >= T} — the exact query shape the geometry kernel issues.
func TestFeaserAgreesWithTwoPhase(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var f Feaser
	for trial := 0; trial < 400; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(20)
		ws := make([][]float64, m)
		ts := make([]float64, m)
		for j := range ws {
			row := make([]float64, n)
			for i := range row {
				row[i] = rng.NormFloat64()
			}
			ws[j] = row
			ts[j] = rng.NormFloat64()
		}
		feas, ok := f.FeasibleGE(n, ws, ts)
		if !ok {
			t.Fatalf("trial %d: feaser hit its pivot cap", trial)
		}
		// Two-phase reference: A = -W, b = -T.
		A := make([][]float64, m)
		b := make([]float64, m)
		for j := range ws {
			row := make([]float64, n)
			for i := range row {
				row[i] = -ws[j][i]
			}
			A[j] = row
			b[j] = -ts[j]
		}
		ref, _ := Feasible(A, b)
		if feas != ref {
			// Discard knife-edge instances where the two solvers disagree
			// purely on tolerance: verify with a perturbed system.
			margin := 0.0
			if x := refWitness(A, b); x != nil {
				margin = 1 // strictly feasible witness exists
			}
			if feas != ref && margin != 0 {
				t.Fatalf("trial %d: feaser=%v two-phase=%v", trial, feas, ref)
			}
		}
	}
}

// refWitness returns a strictly feasible point of {Ax <= b, x >= 0} with
// slack > 1e-6, or nil.
func refWitness(A [][]float64, b []float64) []float64 {
	ok, x := Feasible(A, b)
	if !ok {
		return nil
	}
	for i := range A {
		dot := 0.0
		for j := range x {
			dot += A[i][j] * x[j]
		}
		if dot > b[i]-1e-6 {
			return nil
		}
	}
	return x
}

// TestFeaserKnownSystems pins down concrete answers.
func TestFeaserKnownSystems(t *testing.T) {
	var f Feaser
	// x >= 0.5 and x <= 1 (i.e. -x >= -1): feasible.
	feas, ok := f.FeasibleGE(1, [][]float64{{1}, {-1}}, []float64{0.5, -1})
	if !ok || !feas {
		t.Errorf("interval [0.5,1]: feas=%v ok=%v", feas, ok)
	}
	// x >= 2 and x <= 1: infeasible.
	feas, ok = f.FeasibleGE(1, [][]float64{{1}, {-1}}, []float64{2, -1})
	if !ok || feas {
		t.Errorf("empty interval: feas=%v ok=%v", feas, ok)
	}
	// No constraints: trivially feasible.
	feas, ok = f.FeasibleGE(3, nil, nil)
	if !ok || !feas {
		t.Errorf("unconstrained: feas=%v ok=%v", feas, ok)
	}
	// x + y >= -1 with x, y >= 0: feasible at origin.
	feas, ok = f.FeasibleGE(2, [][]float64{{1, 1}}, []float64{-1})
	if !ok || !feas {
		t.Errorf("origin-feasible: feas=%v ok=%v", feas, ok)
	}
}

func BenchmarkFeaser(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n, m := 4, 40
	ws := make([][]float64, m)
	ts := make([]float64, m)
	for j := range ws {
		row := make([]float64, n)
		for i := range row {
			row[i] = rng.Float64()
		}
		ws[j] = row
		ts[j] = rng.Float64() * 0.5
	}
	var f Feaser
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FeasibleGE(n, ws, ts)
	}
}
