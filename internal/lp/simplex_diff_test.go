package lp

// Differential tests: the flat, allocation-free Workspace simplex against
// the seed's slice-of-slices implementation (simplex_ref_test.go). Both
// implement the identical pivoting rules, so statuses must agree exactly
// and optimal objectives within 1e-7 on every random program.

import (
	"math"
	"math/rand"
	"testing"
)

// randomLP draws a small random program in the shape the geometry kernel
// issues: n in [1,6], m in [1,24], Gaussian rows, box rows appended with
// probability 3/4 (bounded programs), mixed-sign right-hand sides (phase-1
// coverage).
func randomLP(rng *rand.Rand) (c []float64, A [][]float64, b []float64) {
	n := 1 + rng.Intn(6)
	m := 1 + rng.Intn(24)
	c = make([]float64, n)
	for j := range c {
		c[j] = rng.NormFloat64()
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		A = append(A, row)
		b = append(b, rng.NormFloat64())
	}
	if rng.Intn(4) > 0 {
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			A = append(A, row)
			b = append(b, 1+rng.Float64())
		}
	}
	return c, A, b
}

func compareResults(t *testing.T, trial int, got, want Result) {
	t.Helper()
	if got.Status != want.Status {
		t.Fatalf("trial %d: status %v, ref %v", trial, got.Status, want.Status)
	}
	if got.Status != Optimal {
		return
	}
	if math.Abs(got.Obj-want.Obj) > 1e-7*(1+math.Abs(want.Obj)) {
		t.Fatalf("trial %d: obj %.12g, ref %.12g", trial, got.Obj, want.Obj)
	}
}

// TestWorkspaceMatchesSeedImplementation reuses one Workspace across every
// trial, so any state leaking between solves diverges from the
// fresh-tableau reference.
func TestWorkspaceMatchesSeedImplementation(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	var w Workspace
	for trial := 0; trial < 1500; trial++ {
		c, A, b := randomLP(rng)
		got := w.Maximize(c, A, b)
		ref := refMaximize(c, A, b)
		compareResults(t, trial, got, ref)
		if got.Status == Optimal {
			for j := range got.X {
				if math.Abs(got.X[j]-ref.X[j]) > 1e-7 {
					t.Fatalf("trial %d: x[%d] = %.12g, ref %.12g", trial, j, got.X[j], ref.X[j])
				}
			}
		}
	}
}

// TestFlatEntryPointsMatchSeed drives the flat-matrix entry points
// (MaximizeFlat, FeasibleFlat) against the reference on the same programs.
func TestFlatEntryPointsMatchSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	var w Workspace
	for trial := 0; trial < 800; trial++ {
		c, A, b := randomLP(rng)
		n := len(c)
		flat := make([]float64, 0, n*len(A))
		for _, row := range A {
			flat = append(flat, row...)
		}
		got := w.MaximizeFlat(c, flat, b)
		ref := refMaximize(c, A, b)
		compareResults(t, trial, got, ref)

		gotFeas, _ := w.FeasibleFlat(n, flat, b)
		refFeas, _ := refFeasible(A, b)
		if gotFeas != refFeas {
			t.Fatalf("trial %d: FeasibleFlat=%v, ref=%v", trial, gotFeas, refFeas)
		}
	}
}

// TestPackageWrappersDetachX checks that the pooled package-level wrappers
// hand back caller-owned solution vectors: a second solve must not clobber
// an earlier result.
func TestPackageWrappersDetachX(t *testing.T) {
	A := [][]float64{{1, 0}, {0, 2}, {3, 2}}
	b := []float64{4, 12, 18}
	r1 := Maximize([]float64{3, 5}, A, b)
	saved := append([]float64(nil), r1.X...)
	for i := 0; i < 50; i++ {
		Maximize([]float64{float64(i), 1}, A, b)
		Feasible(A, b)
	}
	for j := range saved {
		if r1.X[j] != saved[j] {
			t.Fatalf("Result.X mutated by later pooled solves: %v vs %v", r1.X, saved)
		}
	}
}

// FuzzWorkspaceVsSeed is the fuzz form of the differential test: the fuzzer
// mutates a seed stream that deterministically expands into a small LP.
func FuzzWorkspaceVsSeed(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(42))
	f.Add(int64(-7))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		c, A, b := randomLP(rng)
		var w Workspace
		got := w.Maximize(c, A, b)
		ref := refMaximize(c, A, b)
		if got.Status != ref.Status {
			t.Fatalf("status %v, ref %v (seed %d)", got.Status, ref.Status, seed)
		}
		if got.Status == Optimal && math.Abs(got.Obj-ref.Obj) > 1e-7*(1+math.Abs(ref.Obj)) {
			t.Fatalf("obj %.12g, ref %.12g (seed %d)", got.Obj, ref.Obj, seed)
		}
	})
}

// TestWorkspaceSteadyStateAllocs pins the tentpole property: after warm-up,
// solves on a reused workspace allocate nothing.
func TestWorkspaceSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	c, A, b := randomLP(rng)
	n := len(c)
	flat := make([]float64, 0, n*len(A))
	for _, row := range A {
		flat = append(flat, row...)
	}
	var w Workspace
	w.MaximizeFlat(c, flat, b) // warm-up sizes the buffers
	allocs := testing.AllocsPerRun(200, func() {
		w.MaximizeFlat(c, flat, b)
	})
	if allocs != 0 {
		t.Fatalf("MaximizeFlat allocates %.1f objects per solve on a warm workspace, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		w.FeasibleFlat(n, flat, b)
	})
	if allocs != 0 {
		t.Fatalf("FeasibleFlat allocates %.1f objects per solve on a warm workspace, want 0", allocs)
	}
}
