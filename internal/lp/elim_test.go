package lp

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
)

// oldWorkspacePivot is a verbatim copy of the scalar loops
// Workspace.pivot ran before the shared elimination kernel (pivot-row
// scale, per-row range elimination with the fac == 0 skip) — the
// reference the kernel path is pinned against. oldFeaserPivot is the
// same for Feaser.pivot, z-row elimination included, preserving its
// historically divergent indexed-loop style.
func oldWorkspacePivot(tab []float64, nCols, m, row, col int) {
	pr := tab[row*nCols : (row+1)*nCols]
	p := pr[col]
	inv := 1 / p
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1
	for i := 0; i < m; i++ {
		if i == row {
			continue
		}
		ri := tab[i*nCols : (i+1)*nCols]
		f := ri[col]
		if f == 0 {
			continue
		}
		for j, v := range pr {
			ri[j] -= f * v
		}
		ri[col] = 0
	}
}

func oldFeaserPivot(tab, z []float64, width, n, row, col int) {
	pr := tab[row*width : (row+1)*width]
	inv := 1 / pr[col]
	for j := 0; j < width; j++ {
		pr[j] *= inv
	}
	pr[col] = 1
	for i := 0; i < n; i++ {
		if i == row {
			continue
		}
		ri := tab[i*width : (i+1)*width]
		fac := ri[col]
		if fac == 0 {
			continue
		}
		for j := 0; j < width; j++ {
			ri[j] -= fac * pr[j]
		}
		ri[col] = 0
	}
	fac := z[col]
	if fac != 0 {
		for j := 0; j < width; j++ {
			z[j] -= fac * pr[j]
		}
		z[col] = 0
	}
}

func tabEqualBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) &&
			!(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Fatalf("%s: elem %d got=%x want=%x", name, i,
				math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestPivotMatchesHistoricalLoops pins the deduplicated elimination —
// kernels on AND off — byte-identical to verbatim copies of the two
// old pivot loops, over tableaus mixing ordinary values with zeros
// (exercising the fac == 0 skip), across widths hitting the blocked
// kernels and their tails.
func TestPivotMatchesHistoricalLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	fill := func(dst []float64) {
		for i := range dst {
			switch rng.Intn(4) {
			case 0:
				dst[i] = 0
			case 1:
				dst[i] = math.Copysign(0, -1)
			default:
				dst[i] = rng.NormFloat64()
			}
		}
	}
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(12)
		width := 1 + rng.Intn(24)
		row := rng.Intn(m)
		col := rng.Intn(width)
		tab := make([]float64, m*width)
		fill(tab)
		if tab[row*width+col] == 0 {
			tab[row*width+col] = 1 + rng.Float64() // a real pivot element
		}
		z := make([]float64, width)
		fill(z)

		wantTab := append([]float64(nil), tab...)
		oldWorkspacePivot(wantTab, width, m, row, col)
		for _, scalar := range []bool{false, true} {
			gotTab := append([]float64(nil), tab...)
			eliminate(gotTab, width, m, row, col, scalar)
			tabEqualBits(t, "workspace pivot", gotTab, wantTab)
		}

		wantFTab := append([]float64(nil), tab...)
		wantZ := append([]float64(nil), z...)
		oldFeaserPivot(wantFTab, wantZ, width, m, row, col)
		for _, scalar := range []bool{false, true} {
			gotTab := append([]float64(nil), tab...)
			gotZ := append([]float64(nil), z...)
			eliminate(gotTab, width, m, row, col, scalar)
			eliminateAux(gotZ, gotTab[row*width:(row+1)*width], col, scalar)
			tabEqualBits(t, "feaser pivot tab", gotTab, wantFTab)
			tabEqualBits(t, "feaser pivot z", gotZ, wantZ)
		}
	}
}

// TestSolversKernelsOnOffIdentical runs whole solves — the two-phase
// primal solver and the dual Feaser — with DisableKernels on and off
// and requires identical results, identical solution bits, and
// identical pivot counts: the switch must change nothing observable.
func TestSolversKernelsOnOffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(4)
		m := 1 + rng.Intn(6)
		A := make([][]float64, m)
		b := make([]float64, m)
		c := make([]float64, n)
		for i := range A {
			A[i] = make([]float64, n)
			for j := range A[i] {
				A[i][j] = rng.NormFloat64()
			}
			b[i] = rng.Float64() * 2
		}
		for j := range c {
			c[j] = rng.NormFloat64()
		}

		var on, off Workspace
		off.DisableKernels = true
		resOn := on.Maximize(c, A, b)
		resOff := off.Maximize(c, A, b)
		if resOn.Status != resOff.Status {
			t.Fatalf("trial %d: status on=%v off=%v", trial, resOn.Status, resOff.Status)
		}
		if on.Counters.Pivots != off.Counters.Pivots {
			t.Fatalf("trial %d: pivots on=%d off=%d", trial, on.Counters.Pivots, off.Counters.Pivots)
		}
		if resOn.Status == Optimal {
			if math.Float64bits(resOn.Obj) != math.Float64bits(resOff.Obj) {
				t.Fatalf("trial %d: obj on=%x off=%x", trial,
					math.Float64bits(resOn.Obj), math.Float64bits(resOff.Obj))
			}
			tabEqualBits(t, "solution", resOn.X, resOff.X)
		}

		// Feaser: random GE system over the same shapes.
		ws := make([][]float64, m)
		ts := make([]float64, m)
		for i := range ws {
			ws[i] = make([]float64, n)
			for j := range ws[i] {
				ws[i][j] = rng.NormFloat64()
			}
			ts[i] = rng.NormFloat64()
		}
		var fOn, fOff Feaser
		fOff.DisableKernels = true
		feasOn, okOn := fOn.FeasibleGE(n, ws, ts)
		feasOff, okOff := fOff.FeasibleGE(n, ws, ts)
		if feasOn != feasOff || okOn != okOff {
			t.Fatalf("trial %d: feaser on=(%v,%v) off=(%v,%v)", trial, feasOn, okOn, feasOff, okOff)
		}
		if fOn.Counters.Pivots != fOff.Counters.Pivots {
			t.Fatalf("trial %d: feaser pivots on=%d off=%d", trial,
				fOn.Counters.Pivots, fOff.Counters.Pivots)
		}
	}
}

// FuzzKernelPivotParity differentially fuzzes the shared elimination
// (kernels on and off) against the verbatim historical loops over
// arbitrary float bit patterns.
func FuzzKernelPivotParity(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03}, uint8(3), uint8(5), uint8(1), uint8(2))
	f.Add([]byte{0xff, 0x00, 0x80}, uint8(2), uint8(9), uint8(0), uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, mRaw, widthRaw, rowRaw, colRaw uint8) {
		m := int(mRaw)%12 + 1
		width := int(widthRaw)%24 + 1
		row := int(rowRaw) % m
		col := int(colRaw) % width
		tab := make([]float64, m*width)
		z := make([]float64, width)
		if len(data) > 0 {
			for i := range tab {
				var buf [8]byte
				for j := 0; j < 8; j++ {
					buf[j] = data[(i*8+j)%len(data)]
				}
				tab[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			}
			for i := range z {
				var buf [8]byte
				for j := 0; j < 8; j++ {
					buf[j] = data[((len(tab)+i)*8+j)%len(data)]
				}
				z[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
			}
		}

		wantTab := append([]float64(nil), tab...)
		wantZ := append([]float64(nil), z...)
		oldFeaserPivot(wantTab, wantZ, width, m, row, col)
		for _, scalar := range []bool{false, true} {
			gotTab := append([]float64(nil), tab...)
			gotZ := append([]float64(nil), z...)
			eliminate(gotTab, width, m, row, col, scalar)
			eliminateAux(gotZ, gotTab[row*width:(row+1)*width], col, scalar)
			tabEqualBits(t, "tab", gotTab, wantTab)
			tabEqualBits(t, "z", gotZ, wantZ)
		}
	})
}
