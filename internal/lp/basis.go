package lp

// This file implements warm-started (incremental) solves.
//
// # Why warm starts fit the arrangement workloads
//
// Arrangement construction solves long chains of nearly identical programs:
// a child cell's constraint system is its parent's rows plus one appended
// `>=` row (minus the rows split-time reduction discarded), and the two
// slab tests of one classification differ only in their last row. The
// Feaser runs the primal simplex on the dual of these systems, where
// constraint rows become columns — so "parent rows + one appended >= row"
// becomes "parent columns + one appended column", and the parent's optimal
// basis remains a valid (all-zero RHS, hence feasible) starting basis for
// the child. Re-entering it is the dual-simplex reinstatement of the
// appended-row case: no phase 1, and when the parent's basis is still
// optimal for the child the solve finishes after a single reduced-cost
// scan with zero pivots.
//
// # The snapshot
//
// A Basis captures everything needed to re-enter: which column is basic in
// each tableau row, and the basis inverse B⁻¹ (the "factorized" tableau
// state — the full tableau is B⁻¹·A, reconstructible column by column).
// Columns are identified by caller-supplied keys: the address of the
// constraint's coefficient vector. The geometry layer shares coefficient
// backing arrays down the cell tree (axis rows use globally cached unit
// normals, surviving rows alias the parent's vectors), so a key matches
// exactly when the child system contains the very same constraint row —
// thresholds may differ (they never enter B), coefficients may not.
// Transient rows whose buffers are reused with different contents must be
// keyed nil; nil never matches and blocks export, so a stale pointer can
// never smuggle a wrong B⁻¹ into a later solve.
//
// A Basis is immutable once published (the cell tree shares parent
// snapshots with children); re-entry only reads it.

// Counters aggregates a solver's work across solves. Pivots is the
// universal effort metric (one Gauss-Jordan elimination of the tableau);
// WarmHits / WarmMisses split the warm-start attempts into basis
// reinstatements and fallbacks to a cold load, and ColdSolves counts loads
// that started from the slack basis (misses included). The counters are
// plain fields on each solver — solvers are single-goroutine objects, and
// callers fold deltas into their own per-worker accumulators, which merge
// by summation (order-free) after a parallel phase.
type Counters struct {
	Pivots     int64
	WarmHits   int64
	WarmMisses int64
	ColdSolves int64
}

// Add folds o into c (summation; commutative and associative, so
// per-worker counters merge deterministically in any order).
func (c *Counters) Add(o Counters) {
	c.Pivots += o.Pivots
	c.WarmHits += o.WarmHits
	c.WarmMisses += o.WarmMisses
	c.ColdSolves += o.ColdSolves
}

// Sub returns c - o; used to take before/after deltas around a solve.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		Pivots:     c.Pivots - o.Pivots,
		WarmHits:   c.WarmHits - o.WarmHits,
		WarmMisses: c.WarmMisses - o.WarmMisses,
		ColdSolves: c.ColdSolves - o.ColdSolves,
	}
}

// Key identifies a constraint row across solves: the address of its
// coefficient vector's first element. Keys compare by pointer identity —
// the coefficient storage conventions of the caller (immutable, shared
// down the cell tree) make identity equivalent to "the same constraint".
// A nil Key marks a transient row that can never match.
type Key = *float64

// KeyOf returns the identity key of a coefficient vector, or nil for an
// empty one.
func KeyOf(w []float64) Key {
	if len(w) == 0 {
		return nil
	}
	return &w[0]
}

// basisEntry records what is basic in one tableau row: a constraint column
// (Key non-nil) or a slack (Key nil, Slack = the slack's row index).
type basisEntry struct {
	key   Key
	slack int32
}

// Basis is a compact snapshot of a Feaser simplex basis: the basic-variable
// set (one entry per tableau row) plus the basis inverse. It is exported
// after a solve with ExportBasis and re-entered with FeasibleGEKeyed.
// Snapshots are immutable once published and may be shared freely across
// goroutines; the cell tree stores one per cell and hands it to every
// child.
type Basis struct {
	// Dim is the tableau's row count (the primal dimensionality n).
	Dim int
	// binv is the Dim x Dim basis inverse, row-major.
	binv []float64
	// ent[i] identifies the column basic in tableau row i.
	ent []basisEntry
}

// Valid reports whether b holds a snapshot for an n-row tableau.
func (b *Basis) Valid(n int) bool {
	return b != nil && b.Dim == n && len(b.ent) == n && len(b.binv) == n*n
}

// copyFrom makes dst an independent copy of src (no-op when identical).
func (b *Basis) copyFrom(src *Basis) {
	if b == src {
		return
	}
	b.Dim = src.Dim
	if cap(b.binv) < len(src.binv) {
		b.binv = make([]float64, len(src.binv))
	}
	b.binv = b.binv[:len(src.binv)]
	copy(b.binv, src.binv)
	if cap(b.ent) < len(src.ent) {
		b.ent = make([]basisEntry, len(src.ent))
	}
	b.ent = b.ent[:len(src.ent)]
	copy(b.ent, src.ent)
}
