package topk

import (
	"math/rand"
	"testing"

	"mir/internal/geom"
)

// referencePrescreen is the unblocked per-row oracle: the sign-split MBB
// corner bound under the ClassifyTol slab convention, row by row.
func referencePrescreen(flat []float64, d int, t []float64, lo, hi geom.Vector) []geom.Relation {
	out := make([]geom.Relation, len(t))
	for i := range t {
		row := flat[i*d : (i+1)*d]
		l, h := 0.0, 0.0
		for j, w := range row {
			if w >= 0 {
				l += w * lo[j]
				h += w * hi[j]
			} else {
				l += w * hi[j]
				h += w * lo[j]
			}
		}
		switch {
		case l >= t[i]-geom.ClassifyTol:
			out[i] = geom.Covers
		case h <= t[i]+geom.ClassifyTol:
			out[i] = geom.Excludes
		default:
			out[i] = geom.Cuts
		}
	}
	return out
}

// TestPrescreenMatchesReference is the differential property: for random
// normals (mixed sign), thresholds, and boxes, the banded prescreen must
// agree with the per-row oracle on every halfspace — block skips and the
// DotRows fast path may only change the work, never the answer.
func TestPrescreenMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		d := 2 + rng.Intn(4)
		n := 1 + rng.Intn(300)
		flat := make([]float64, n*d)
		for i := range flat {
			flat[i] = rng.Float64()
			if trial%3 == 0 { // every third trial exercises mixed signs
				flat[i] = rng.Float64()*2 - 1
			}
		}
		th := make([]float64, n)
		for i := range th {
			th[i] = rng.Float64() * float64(d) * 0.7
		}
		b := NewHalfspaceBands(flat, d, th)
		lo := make(geom.Vector, d)
		hi := make(geom.Vector, d)
		for j := 0; j < d; j++ {
			a, c := rng.Float64(), rng.Float64()
			if a > c {
				a, c = c, a
			}
			lo[j], hi[j] = a, c
		}
		out := make([]geom.Relation, n)
		st := b.Prescreen(lo, hi, out)
		want := referencePrescreen(flat, d, th, lo, hi)
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("trial %d (n=%d d=%d) row %d: prescreen %v, reference %v",
					trial, n, d, i, out[i], want[i])
			}
		}
		covers, excludes, cuts := 0, 0, 0
		for _, rl := range want {
			switch rl {
			case geom.Covers:
				covers++
			case geom.Excludes:
				excludes++
			default:
				cuts++
			}
		}
		// Block-skipped rows are counted under Covers/Excludes, never Cuts.
		if st.Covers != covers || st.Excludes != excludes || st.Cuts != cuts {
			t.Fatalf("trial %d: stats %+v, want covers=%d excludes=%d cuts=%d",
				trial, st, covers, excludes, cuts)
		}
	}
}

// TestPrescreenBlockSkip pins that uniform blocks are decided whole: a
// matrix of near-identical nonnegative rows against a box far inside (or
// outside) the halfspaces must skip every block.
func TestPrescreenBlockSkip(t *testing.T) {
	const d, n = 3, 256
	flat := make([]float64, n*d)
	th := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			flat[i*d+j] = 0.3 + 0.001*float64(i%7)
		}
		th[i] = 0.1 + 0.0001*float64(i%5)
	}
	b := NewHalfspaceBands(flat, d, th)
	out := make([]geom.Relation, n)

	// Box at the high corner: every score >= 3 × 0.3 × 0.8 = 0.72 > tMax.
	st := b.Prescreen(geom.Vector{0.8, 0.8, 0.8}, geom.Vector{1, 1, 1}, out)
	if st.BlockSkips != (n+prescreenBlockRows-1)/prescreenBlockRows || st.Covers != n {
		t.Fatalf("cover case: %+v", st)
	}
	// Box at the origin: every score <= 3 × 0.307 × 0.05 < tMin.
	st = b.Prescreen(geom.Vector{0, 0, 0}, geom.Vector{0.05, 0.05, 0.05}, out)
	if st.BlockSkips != (n+prescreenBlockRows-1)/prescreenBlockRows || st.Excludes != n {
		t.Fatalf("exclude case: %+v", st)
	}
}

// TestPrescreenPanics pins the input validation.
func TestPrescreenPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: no panic", name)
			}
		}()
		f()
	}
	expectPanic("ragged matrix", func() {
		NewHalfspaceBands(make([]float64, 5), 2, make([]float64, 3))
	})
	b := NewHalfspaceBands(make([]float64, 6), 2, make([]float64, 3))
	expectPanic("bad box", func() {
		b.Prescreen(geom.Vector{0}, geom.Vector{1, 1}, make([]geom.Relation, 3))
	})
	expectPanic("bad out", func() {
		b.Prescreen(geom.Vector{0, 0}, geom.Vector{1, 1}, make([]geom.Relation, 2))
	})
}
