package topk

import (
	"math"
	"math/rand"
	"testing"

	"mir/internal/geom"
)

// TestIndexKernelsOnOffIdentical pins the package's half of the
// DisableKernels contract: an index scored through the blocked kernels
// and one scored through the historical scalar loops return
// byte-identical answers AND byte-identical effort counters — the same
// granule bounds mean the same prune/scan decisions, so
// ScannedProducts and LayerPrunes cannot move either.
func TestIndexKernelsOnOffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(500)
		d := 1 + rng.Intn(6)
		ps := randomProducts(rng, n, d)
		maxLayers := 1 + rng.Intn(5)

		fast := NewIndexLayers(ps, maxLayers)
		slow := NewIndexLayers(ps, maxLayers)
		slow.SetKernels(false)

		sf := NewSearcher(fast)
		ss := NewSearcher(slow)
		for q := 0; q < 15; q++ {
			w := randomWeight(rng, d)
			k := 1 + rng.Intn(n)
			sameKth(t, "kernels on/off", sf.Kth(w, k), ss.Kth(w, k))

			t0 := 0.2 + 0.6*rng.Float64()
			got := append([]int(nil), sf.AtLeast(w, t0, nil)...)
			want := append([]int(nil), ss.AtLeast(w, t0, nil)...)
			if len(got) != len(want) {
				t.Fatalf("AtLeast kernels on/off: %d vs %d ids", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("AtLeast kernels on/off: id[%d] %d vs %d", i, got[i], want[i])
				}
			}
		}
		if sf.Stats != ss.Stats {
			t.Fatalf("SearchStats diverged across kernel settings: on=%+v off=%+v",
				sf.Stats, ss.Stats)
		}
	}
}

// TestHalfspaceBandsKernelsOnOffIdentical pins the prescreen's half:
// band extrema built through the blocked kernels equal the scalar
// build bit for bit, and every Prescreen call returns the same
// relations and the same PrescreenStats.
func TestHalfspaceBandsKernelsOnOffIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(908))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(300)
		d := 1 + rng.Intn(5)
		flat := make([]float64, n*d)
		ts := make([]float64, n)
		for i := range flat {
			flat[i] = rng.NormFloat64()
			if rng.Intn(8) == 0 {
				flat[i] = 0 // exercise the nonneg fast path's boundary
			}
		}
		for i := range ts {
			ts[i] = rng.NormFloat64()
		}

		fast := NewHalfspaceBandsKernels(flat, d, ts, true)
		slow := NewHalfspaceBandsKernels(flat, d, ts, false)
		for i := range fast.wMin {
			if math.Float64bits(fast.wMin[i]) != math.Float64bits(slow.wMin[i]) ||
				math.Float64bits(fast.wMax[i]) != math.Float64bits(slow.wMax[i]) {
				t.Fatalf("band extrema diverged at %d: [%x,%x] vs [%x,%x]", i,
					math.Float64bits(fast.wMin[i]), math.Float64bits(fast.wMax[i]),
					math.Float64bits(slow.wMin[i]), math.Float64bits(slow.wMax[i]))
			}
		}

		outF := make([]geom.Relation, n)
		outS := make([]geom.Relation, n)
		for q := 0; q < 10; q++ {
			lo := make(geom.Vector, d)
			hi := make(geom.Vector, d)
			for j := 0; j < d; j++ {
				a, b := rng.Float64(), rng.Float64()
				if a > b {
					a, b = b, a
				}
				lo[j], hi[j] = a, b
			}
			stF := fast.Prescreen(lo, hi, outF)
			stS := slow.Prescreen(lo, hi, outS)
			if stF != stS {
				t.Fatalf("PrescreenStats diverged: on=%+v off=%+v", stF, stS)
			}
			for i := range outF {
				if outF[i] != outS[i] {
					t.Fatalf("relation %d diverged: %v vs %v", i, outF[i], outS[i])
				}
			}
		}
	}
}
