package topk

import (
	"math/rand"
	"sort"
	"testing"

	"mir/internal/geom"
)

func randProducts(rng *rand.Rand, n, d int) []geom.Vector {
	ps := make([]geom.Vector, n)
	for i := range ps {
		v := make(geom.Vector, d)
		for j := range v {
			v[j] = rng.Float64()
		}
		ps[i] = v
	}
	return ps
}

func randWeight(rng *rand.Rand, d int) geom.Vector {
	w := make(geom.Vector, d)
	s := 0.0
	for j := range w {
		w[j] = rng.Float64() + 1e-3
		s += w[j]
	}
	for j := range w {
		w[j] /= s
	}
	return w
}

// naiveAtLeast is the reference predicate set, in ascending id order.
func naiveAtLeast(ps []geom.Vector, alive []bool, w geom.Vector, t float64) []int {
	var out []int
	for i, p := range ps {
		if alive != nil && !alive[i] {
			continue
		}
		if w.Dot(p) >= t {
			out = append(out, i)
		}
	}
	return out
}

func TestAtLeastMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 17, 300, 1500} {
		for _, d := range []int{2, 4} {
			ps := randProducts(rng, n, d)
			ix := NewIndex(ps)
			s := NewSearcher(ix)
			for trial := 0; trial < 20; trial++ {
				w := randWeight(rng, d)
				// Thresholds spanning none..all of the product set.
				th := []float64{-1, 0.2, 0.5, 0.7, 2}
				for _, t0 := range th {
					got := append([]int(nil), s.AtLeast(w, t0, nil)...)
					sort.Ints(got)
					want := naiveAtLeast(ps, nil, w, t0)
					if len(got) != len(want) {
						t.Fatalf("n=%d d=%d t=%g: got %d ids, want %d", n, d, t0, len(got), len(want))
					}
					for i := range got {
						if got[i] != want[i] {
							t.Fatalf("n=%d d=%d t=%g: id[%d]=%d, want %d", n, d, t0, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestAtLeastNegativeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := randProducts(rng, 400, 3)
	ix := NewIndex(ps)
	s := NewSearcher(ix)
	w := geom.Vector{0.5, -0.3, 0.8}
	got := s.AtLeast(w, 0.1, nil)
	sort.Ints(got)
	want := naiveAtLeast(ps, nil, w, 0.1)
	if len(got) != len(want) {
		t.Fatalf("negative weights: got %d ids, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("negative weights: id[%d]=%d, want %d", i, got[i], want[i])
		}
	}
}

func TestAtLeastAfterPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := randProducts(rng, 600, 3)
	ix := NewIndex(ps)
	alive := make([]bool, len(ps))
	for i := range alive {
		alive[i] = true
	}
	// Interleave removals and insertions, checking the scan after each.
	s := NewSearcher(ix)
	for step := 0; step < 30; step++ {
		if step%3 == 2 {
			v := make(geom.Vector, 3)
			for j := range v {
				v[j] = rng.Float64()
			}
			id := ix.Insert(v)
			ps = append(ps, v)
			alive = append(alive, true)
			if id != len(ps)-1 {
				t.Fatalf("insert id %d, want %d", id, len(ps)-1)
			}
		} else {
			for {
				id := rng.Intn(len(ps))
				if alive[id] {
					ix.Remove(id)
					alive[id] = false
					break
				}
			}
		}
		w := randWeight(rng, 3)
		got := append([]int(nil), s.AtLeast(w, 0.45, nil)...)
		sort.Ints(got)
		want := naiveAtLeast(ps, alive, w, 0.45)
		if len(got) != len(want) {
			t.Fatalf("step %d: got %d ids, want %d", step, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: id[%d]=%d, want %d", step, i, got[i], want[i])
			}
		}
	}
}

func TestAtLeastPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ps := randProducts(rng, 4000, 3)
	ix := NewIndex(ps)
	s := NewSearcher(ix)
	w := randWeight(rng, 3)
	s.Stats = SearchStats{}
	s.AtLeast(w, 0.9, nil)
	if s.Stats.LayerPrunes == 0 {
		t.Fatalf("high threshold over 4000 products pruned no blocks (scanned %d rows)", s.Stats.ScannedProducts)
	}
	if s.Stats.ScannedProducts >= int64(len(ps)) {
		t.Fatalf("scanned %d rows of %d: no block skipped", s.Stats.ScannedProducts, len(ps))
	}
}

func TestSelectTop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(7)) // heavy ties
		}
		for _, k := range []int{0, 1, n / 2, n, n + 5} {
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			got := SelectTop(idx, scores, k)
			ref := make([]int, n)
			for i := range ref {
				ref[i] = i
			}
			sort.Slice(ref, func(a, b int) bool {
				if scores[ref[a]] != scores[ref[b]] {
					return scores[ref[a]] > scores[ref[b]]
				}
				return ref[a] < ref[b]
			})
			want := k
			if want > n {
				want = n
			}
			if want < 0 {
				want = 0
			}
			if len(got) != want {
				t.Fatalf("k=%d n=%d: got %d entries", k, n, len(got))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("k=%d n=%d: entry %d = %d, want %d", k, n, i, got[i], ref[i])
				}
			}
		}
	}
}
