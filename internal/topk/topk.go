// Package topk implements the top-k query substrate that mIR builds on:
// linear scoring, per-user top-k retrieval, the k-skyband, the skyline, and
// a batched all-top-k computation that yields every user's top-k-th product
// (the entry threshold that defines the user's influential halfspace).
//
// The paper uses the all-top-k algorithm of Ge et al. [26] for this step;
// we implement the standard skyband-pruned formulation: the top-k product
// of any linear preference lies in the k-skyband, so per-user selection
// only scans skyband members.
package topk

import (
	"fmt"
	"sort"

	"mir/internal/geom"
	"mir/internal/par"
)

// Score returns the weighted-sum suitability S(p, w) = w·p of product p for
// a user with weight vector w.
func Score(p, w geom.Vector) float64 { return w.Dot(p) }

// UserPref is a user's preference profile: a weight vector on the unit
// simplex and a personal result size k.
type UserPref struct {
	W geom.Vector
	K int
}

// KthResult identifies a user's top-k-th product.
type KthResult struct {
	Index int     // index into the product slice
	Score float64 // the top-k-th score, i.e. the top-k entry threshold
}

// TopK returns the indices of the k highest-scoring products for weight w,
// in descending score order. Ties break toward the smaller index, making
// results deterministic. It panics if k exceeds the product count.
func TopK(products []geom.Vector, w geom.Vector, k int) []int {
	if k > len(products) {
		panic(fmt.Sprintf("topk: k=%d exceeds |P|=%d", k, len(products)))
	}
	idx := make([]int, len(products))
	scores := make([]float64, len(products))
	for i, p := range products {
		idx[i] = i
		scores[i] = w.Dot(p)
	}
	return SelectTop(idx, scores, k)
}

// SelectTop partitions idx in place and returns its k best entries under
// the engine-wide ranking (scores[i] descending, index ascending), sorted
// in that order. It is the shared partial-selection primitive behind TopK
// and the reverse-influence queries: O(n + k log k) instead of a full
// sort. k is clamped to len(idx); k <= 0 returns an empty prefix.
func SelectTop(idx []int, scores []float64, k int) []int {
	if k > len(idx) {
		k = len(idx)
	}
	if k <= 0 {
		return idx[:0]
	}
	partialSelect(idx, scores, k)
	top := idx[:k]
	sort.Slice(top, func(a, b int) bool {
		if scores[top[a]] != scores[top[b]] {
			return scores[top[a]] > scores[top[b]]
		}
		return top[a] < top[b]
	})
	return top
}

// KthScore returns the top-k-th product (index and score) for weight w.
func KthScore(products []geom.Vector, w geom.Vector, k int) KthResult {
	top := TopK(products, w, k)
	i := top[k-1]
	return KthResult{Index: i, Score: w.Dot(products[i])}
}

// better reports whether product a ranks above product b under scores
// (higher score first, smaller index on ties).
func better(a, b int, scores []float64) bool {
	if scores[a] != scores[b] {
		return scores[a] > scores[b]
	}
	return a < b
}

// partialSelect partitions idx so that its first k entries are the k
// best-ranked products (in arbitrary internal order), using quickselect.
func partialSelect(idx []int, scores []float64, k int) {
	lo, hi := 0, len(idx)
	for hi-lo > 1 && k > 0 && k < hi-lo {
		pivot := idx[lo+(hi-lo)/2]
		i, j := lo, hi-1
		for i <= j {
			for better(idx[i], pivot, scores) {
				i++
			}
			for better(pivot, idx[j], scores) {
				j--
			}
			if i <= j {
				idx[i], idx[j] = idx[j], idx[i]
				i++
				j--
			}
		}
		if lo+k <= j+1 {
			hi = j + 1
		} else if lo+k >= i {
			k -= i - lo
			lo = i
		} else {
			return
		}
	}
}

// Skyband returns the indices of the k-skyband of the product set: the
// products dominated by fewer than k others. The 1-skyband is the skyline.
//
// Implementation: sort-filter-skyband. Products are scanned in descending
// attribute-sum order, so every dominator of a product precedes it; a
// product belongs to the k-skyband iff fewer than k current skyband members
// dominate it (a non-member dominator would imply >= k member dominators).
func Skyband(products []geom.Vector, k int) []int {
	n := len(products)
	order := make([]int, n)
	sums := make([]float64, n)
	for i, p := range products {
		order[i] = i
		sums[i] = p.Sum()
	}
	sort.Slice(order, func(a, b int) bool {
		if sums[order[a]] != sums[order[b]] {
			return sums[order[a]] > sums[order[b]]
		}
		return order[a] < order[b]
	})
	var band []int
	d := 0
	if n > 0 {
		d = len(products[0])
	}
	// Dominance requires q >= p - Eps componentwise, so any dominator of p
	// has attribute sum >= p.Sum() - d*Eps. Band members are appended in
	// descending-sum order, so the dominance scan can stop at the first
	// member whose sum drops below that floor.
	for _, i := range order {
		p := products[i]
		pFloor := sums[i] - float64(d)*geom.Eps
		dominators := 0
		for _, j := range band {
			if sums[j] < pFloor {
				break
			}
			if products[j].Dominates(p) {
				dominators++
				if dominators >= k {
					break
				}
			}
		}
		if dominators < k {
			band = append(band, i)
		}
	}
	sort.Ints(band)
	return band
}

// Skyline returns the indices of the non-dominated products.
func Skyline(products []geom.Vector) []int { return Skyband(products, 1) }

// AllTopK returns, for every user, the identity and score of that user's
// top-k-th product (with the user's personal k). The computation prunes to
// the kmax-skyband first; per-user work then touches only skyband members.
// It parallelizes across all cores; see AllTopKWorkers for the worker knob.
func AllTopK(products []geom.Vector, users []UserPref) []KthResult {
	return AllTopKWorkers(products, users, 0)
}

// AllTopKWorkers is AllTopK with an explicit worker count (0 = all cores,
// 1 = strictly sequential). The per-user selections are independent, so
// they are fanned across workers in contiguous chunks with each result
// written to its user's slot; the output is identical for every worker
// count. The skyband pruning itself stays sequential — it is a tiny
// fraction of the work and its scan order is semantic.
func AllTopKWorkers(products []geom.Vector, users []UserPref, workers int) []KthResult {
	kmax := 0
	for _, u := range users {
		if u.K > kmax {
			kmax = u.K
		}
		if u.K < 1 {
			panic(fmt.Sprintf("topk: user k=%d < 1", u.K))
		}
	}
	if kmax > len(products) {
		panic(fmt.Sprintf("topk: max k=%d exceeds |P|=%d", kmax, len(products)))
	}
	band := Skyband(products, kmax)
	sub := make([]geom.Vector, len(band))
	for i, j := range band {
		sub[i] = products[j]
	}
	out := make([]KthResult, len(users))
	par.For(len(users), workers, func(ui int) {
		u := users[ui]
		r := KthScore(sub, u.W, u.K)
		out[ui] = KthResult{Index: band[r.Index], Score: r.Score}
	})
	return out
}
