package topk

import (
	"fmt"
	"math"

	"mir/internal/geom"
)

// This file exports the layered index's blocked band-maxima idea for a
// second consumer: the space-sharded arrangement. Before a shard's AA
// run starts, every influential halfspace {x : w·x >= t} is classified
// against the shard's box — if the boundary provably misses the box the
// halfspace is absorbed into the shard root's counts at O(d) cost and
// never enters per-cell classification. The bounds are the same
// componentwise extrema the index keeps per product block, here taken
// over blocks of halfspace normal rows and dotted against box corners
// with the geom.DotRows kernel.

// prescreenBlockRows is the band granularity of HalfspaceBands: per
// block of this many normal rows the bands keep componentwise
// weight extrema and threshold extrema, so a block whose whole band
// provably covers or misses a box is decided in O(d) instead of
// O(rows·d).
const prescreenBlockRows = 64

// HalfspaceBands holds blocked bounds over a set of halfspaces
// {x : w_i·x >= t_i} whose normals are the rows of a flat row-major
// n×d matrix: per block, the componentwise minimum and maximum of the
// normal rows and the minimum and maximum threshold. The structure is
// immutable once built and safe for concurrent Prescreen calls (each
// shard of a sharded AA build prescreens its own box concurrently).
type HalfspaceBands struct {
	n, d int
	flat []float64 // row-major n×d normals (aliases the caller's backing)
	t    []float64 // thresholds, len n

	// Per block b: wMin/wMax[b*d : (b+1)*d] bracket every normal row of
	// the block componentwise; tMin/tMax[b] bracket its thresholds;
	// nonneg[b] records that every bracketed component is >= 0, enabling
	// the DotRows fast path for per-row refinement (a nonnegative row's
	// score over a box is minimized at the low corner and maximized at
	// the high corner).
	wMin, wMax []float64
	tMin, tMax []float64
	nonneg     []bool

	// scalar routes band construction and per-row refinement through the
	// historical scalar loops (geom's *Scalar twins); bit-identical to
	// the blocked kernels, so it changes wall time and nothing else.
	scalar bool
}

// NewHalfspaceBands builds the blocked bounds over n = len(t) halfspaces
// whose normals are the rows of flat (row-major, d columns). flat is
// retained, not copied; callers must not mutate it afterwards.
func NewHalfspaceBands(flat []float64, d int, t []float64) *HalfspaceBands {
	return NewHalfspaceBandsKernels(flat, d, t, true)
}

// NewHalfspaceBandsKernels is NewHalfspaceBands with an explicit kernel
// selection: kernels=false routes the extrema and scoring loops through
// the historical scalar paths (core.Options.DisableKernels). The bands,
// and every Prescreen answer, are bit-identical either way.
func NewHalfspaceBandsKernels(flat []float64, d int, t []float64, kernels bool) *HalfspaceBands {
	n := len(t)
	if len(flat) != n*d {
		panic(fmt.Sprintf("topk: HalfspaceBands matrix has %d values, want %d (n=%d d=%d)", len(flat), n*d, n, d))
	}
	blocks := (n + prescreenBlockRows - 1) / prescreenBlockRows
	b := &HalfspaceBands{
		n: n, d: d, flat: flat, t: t,
		wMin:   make([]float64, blocks*d),
		wMax:   make([]float64, blocks*d),
		tMin:   make([]float64, blocks),
		tMax:   make([]float64, blocks),
		nonneg: make([]bool, blocks),
		scalar: !kernels,
	}
	rowMin, rowMax := geom.RowMin, geom.RowMax
	if b.scalar {
		rowMin, rowMax = geom.RowMinScalar, geom.RowMaxScalar
	}
	for bi := 0; bi < blocks; bi++ {
		lo, hi := bi*prescreenBlockRows, (bi+1)*prescreenBlockRows
		if hi > n {
			hi = n
		}
		wMin := b.wMin[bi*d : (bi+1)*d]
		wMax := b.wMax[bi*d : (bi+1)*d]
		for j := 0; j < d; j++ {
			wMin[j] = math.Inf(1)
			wMax[j] = math.Inf(-1)
		}
		rows := flat[lo*d : hi*d]
		rowMin(rows, d, wMin)
		rowMax(rows, d, wMax)
		b.nonneg[bi] = true
		for j := 0; j < d; j++ {
			if wMin[j] < 0 {
				b.nonneg[bi] = false
				break
			}
		}
		b.tMin[bi], b.tMax[bi] = t[lo], t[lo]
		for i := lo + 1; i < hi; i++ {
			if t[i] < b.tMin[bi] {
				b.tMin[bi] = t[i]
			}
			if t[i] > b.tMax[bi] {
				b.tMax[bi] = t[i]
			}
		}
	}
	return b
}

// Len returns the number of halfspaces the bands cover.
func (b *HalfspaceBands) Len() int { return b.n }

// PrescreenStats profiles one Prescreen call.
type PrescreenStats struct {
	// BlockSkips counts blocks decided whole by the band bounds (no
	// per-row work); Covers/Excludes/Cuts partition the classified rows.
	BlockSkips int
	Covers     int
	Excludes   int
	Cuts       int
}

// Prescreen classifies every halfspace against the box [lo, hi]:
// out[i] = Covers when the box provably lies inside halfspace i
// (min over the box of w_i·x >= t_i within tolerance), Excludes when it
// provably lies outside, Cuts when the boundary may intersect the box.
// The per-row bound is the corner bound of the arrangement's MBB fast
// test (celltree.Cell.FastClassifyInto) under the same ClassifyTol slab
// convention — a conclusive prescreen answer is one the per-cell
// classifier would also accept on the shard root, so absorbing it early
// is sound. (Accumulation association may differ from the fast test's
// by ulps, which the 1e-7 tolerance dwarfs.)
// Blocks are first tested whole against the band bounds; only blocks
// the bands cannot decide are refined row by row.
func (b *HalfspaceBands) Prescreen(lo, hi geom.Vector, out []geom.Relation) PrescreenStats {
	if len(lo) != b.d || len(hi) != b.d {
		panic(fmt.Sprintf("topk: Prescreen box has %d/%d components, want %d", len(lo), len(hi), b.d))
	}
	if len(out) != b.n {
		panic(fmt.Sprintf("topk: Prescreen output has %d slots, want %d", len(out), b.n))
	}
	var st PrescreenStats
	var rowLo, rowHi [prescreenBlockRows]float64
	blocks := len(b.tMin)
	for bi := 0; bi < blocks; bi++ {
		rlo, rhi := bi*prescreenBlockRows, (bi+1)*prescreenBlockRows
		if rhi > b.n {
			rhi = b.n
		}
		wMin := b.wMin[bi*b.d : (bi+1)*b.d]
		wMax := b.wMax[bi*b.d : (bi+1)*b.d]
		// Band bound: for every row w of the block and every x in the box,
		// w·x lies in [bandLo, bandHi]. Each component's contribution is
		// bracketed by the four products of its weight extremes with the
		// box corner coordinates, which needs no sign analysis and stays
		// valid for mixed-sign bands and boxes.
		bandLo, bandHi := 0.0, 0.0
		for j := 0; j < b.d; j++ {
			a0, a1 := wMin[j]*lo[j], wMin[j]*hi[j]
			a2, a3 := wMax[j]*lo[j], wMax[j]*hi[j]
			bandLo += min4(a0, a1, a2, a3)
			bandHi += max4(a0, a1, a2, a3)
		}
		if bandLo >= b.tMax[bi]-geom.ClassifyTol {
			for i := rlo; i < rhi; i++ {
				out[i] = geom.Covers
			}
			st.BlockSkips++
			st.Covers += rhi - rlo
			continue
		}
		if bandHi <= b.tMin[bi]+geom.ClassifyTol {
			for i := rlo; i < rhi; i++ {
				out[i] = geom.Excludes
			}
			st.BlockSkips++
			st.Excludes += rhi - rlo
			continue
		}
		// Per-row refinement. Nonnegative bands score-minimize at the low
		// corner and maximize at the high corner uniformly, so two DotRows
		// sweeps bound the whole block; mixed-sign bands fall back to the
		// per-row sign split of the MBB fast test.
		rows := rhi - rlo
		if b.nonneg[bi] {
			dotRows := geom.DotRows
			if b.scalar {
				dotRows = geom.DotRowsScalar
			}
			dotRows(b.flat[rlo*b.d:], b.d, lo, rowLo[:rows])
			dotRows(b.flat[rlo*b.d:], b.d, hi, rowHi[:rows])
		} else {
			for i := 0; i < rows; i++ {
				row := b.flat[(rlo+i)*b.d : (rlo+i+1)*b.d]
				l, h := 0.0, 0.0
				for j, w := range row {
					if w >= 0 {
						l += w * lo[j]
						h += w * hi[j]
					} else {
						l += w * hi[j]
						h += w * lo[j]
					}
				}
				rowLo[i], rowHi[i] = l, h
			}
		}
		for i := 0; i < rows; i++ {
			switch {
			case rowLo[i] >= b.t[rlo+i]-geom.ClassifyTol:
				out[rlo+i] = geom.Covers
				st.Covers++
			case rowHi[i] <= b.t[rlo+i]+geom.ClassifyTol:
				out[rlo+i] = geom.Excludes
				st.Excludes++
			default:
				out[rlo+i] = geom.Cuts
				st.Cuts++
			}
		}
	}
	return st
}

func min4(a, b, c, d float64) float64 {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	if d < a {
		a = d
	}
	return a
}

func max4(a, b, c, d float64) float64 {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	if d > a {
		a = d
	}
	return a
}
