package topk

import (
	"fmt"
	"sort"

	"mir/internal/geom"
	"mir/internal/par"
)

// This file implements the indexed all-top-k engine: a layered product
// index in the style of the onion technique / the layered indexes of the
// reverse top-k literature (Vlachou et al.), plus a per-user
// threshold-algorithm search with Fagin-style early termination.
//
// Structure. Products are peeled into dominance rounds — round 0 is the
// skyline, round i the skyline of what remains after rounds 0..i-1 are
// removed — and consecutive rounds are banded into layers of a minimum
// thickness (the peel is capped; the remainder forms a final tail
// layer). Within a layer, rows are kd-ordered (recursive median splits
// on the widest attribute), then packed into a flat row-major matrix and
// cut into fixed-size blocks and superblocks, each storing its
// componentwise maxima. Peel order plus kd order make every block a
// small box of similar-depth, similar-direction rows, which is what
// keeps a block's maxima close to its best member and the threshold
// bound tight. (A block of scattered anti-correlated skyline points
// would bound near the corner of the space and never prune.)
//
// Search. A user's top-k query keeps a bounded k-heap whose root is the
// current k-th best candidate under the engine-wide ranking
// (score descending, product id ascending). For a non-negative weight
// vector w, w · max(granule) upper bounds every score in the granule, so
// the query runs a best-first expansion over a priority queue of bounds:
// it seeds the queue with one bound per superblock, expands a popped
// superblock into its blocks' bounds, scans a popped block, and stops
// the moment the best queued bound drops strictly below the heap root —
// everything unexpanded is provably worse. The two-level queue is what
// keeps the bound arithmetic itself sublinear: block bounds are only
// ever evaluated under superblocks that survived the threshold. Bounds
// are computed with the same dot kernel as scores and componentwise
// maxima only ever round monotonically, so a bound below the root proves
// no unseen product can beat it — no epsilon slack is needed, and
// results are byte-identical to the naive full-scan selection. (Stopping
// on a tie would not be: an equal-bound block can hide an equal-score
// product with a smaller id.)
//
// Dynamics. Product arrival appends a row and patches it into the first
// layer none of whose members dominate it; departure swap-removes the
// row from its layer. Both repair the affected layer's block maxima in
// place. Patching degrades the sort invariants (layers stay a correct
// partition and blocks keep true maxima, which is all correctness needs,
// but block coherence — hence bound tightness — decays), so after enough
// patches the index re-peels from scratch; the Patches and Rebuilds
// counters expose that lifecycle.

// blockRows and superRows are the two bound granularities of the index.
// Blocks (the scan unit) are kept small so their maxima hug their rows;
// superblocks amortize the per-query bound evaluations — the search
// seeds its queue with one bound per superblock and only evaluates a
// superblock's block bounds when the superblock itself survives the
// threshold. superRows must be a multiple of blockRows.
const (
	blockRows = 8
	superRows = 256
)

// DefaultMaxLayers caps the dominance peel. Beyond the cap the remaining
// products form a single tail layer: deep layers are touched so rarely
// that finer peeling is not worth the build time.
const DefaultMaxLayers = 8

// layerBandRows is the minimum layer thickness: consecutive peel rounds
// are merged into one layer until it holds at least this many rows. A
// user's top-k is spread across the first ~k peel rounds, and with
// one-round layers each of those rounds costs at least one block scan;
// banding lets same-direction candidates from neighboring depths share a
// kd box, so the whole answer comes out of a handful of blocks.
const layerBandRows = 2 * superRows

// indexRebuildMinPatches and indexRebuildFrac set the re-peel policy: a
// rebuild triggers once more than indexRebuildMinPatches patches have
// accumulated AND the patch count exceeds indexRebuildFrac of the live
// product count. Patches keep the index exactly correct either way; the
// rebuild only restores the sort invariants that make the bounds tight.
const (
	indexRebuildMinPatches = 64
	indexRebuildFrac       = 0.25
)

// indexLayer is one dominance layer: packed member rows plus per-block
// and per-superblock componentwise maxima.
type indexLayer struct {
	flat []float64 // row-major member attributes, len(ids)*d values
	ids  []int     // global product id per row
	// blockMax[b] bounds rows [b*blockRows, (b+1)*blockRows);
	// superMax[sb] bounds rows [sb*superRows, (sb+1)*superRows).
	blockMax [][]float64
	superMax [][]float64
	// blockFlat and superFlat are contiguous row-major views of the same
	// maxima (the backing slab recomputeBounds fills): blockFlat row b ==
	// blockMax[b], superFlat row sb == superMax[sb]. They exist so a
	// query can score a whole layer's bounds with one batched DotRows
	// call — dispatch once per matrix, not once per granule.
	blockFlat []float64
	superFlat []float64
}

func (ly *indexLayer) rows() int { return len(ly.ids) }

// Index is the layered all-top-k product index. It is immutable under
// queries — any number of goroutines may search concurrently — while
// Insert, Remove, and Rebuild require external synchronization (the
// engine mutates it only from the single-threaded dynamic path).
type Index struct {
	dim    int
	nAlive int

	// scalar routes every batched scoring and bound-maintenance call
	// through the historical scalar loops (geom's *Scalar twins) instead
	// of the blocked kernels. The two are bit-identical, so the flag —
	// core.Options.DisableKernels threaded per instance — changes wall
	// time and nothing else: scores, selections, and every SearchStats
	// counter are byte-identical either way.
	scalar bool

	// rowData is the append-only master matrix of every product ever
	// added (dead rows included); row id i lives at rows [i*dim, (i+1)*dim).
	// Layers hold packed copies; the master is the rebuild source.
	rowData []float64
	alive   []bool

	layers []*indexLayer
	// rowLayer/rowPos locate a live product id inside the layer set
	// (-1 when dead).
	rowLayer []int32
	rowPos   []int32

	maxLayers int
	patches   int64
	rebuilds  int64
	// patchesSinceRebuild drives the re-peel policy.
	patchesSinceRebuild int
}

// NewIndex builds the layered index over the product set with the
// default peel cap. Product ids are the slice positions.
func NewIndex(products []geom.Vector) *Index {
	return NewIndexLayers(products, DefaultMaxLayers)
}

// NewIndexLayers is NewIndex with an explicit cap on the number of
// dominance layers (minimum 1: everything in one tail layer).
func NewIndexLayers(products []geom.Vector, maxLayers int) *Index {
	if maxLayers < 1 {
		maxLayers = 1
	}
	d := 0
	if len(products) > 0 {
		d = len(products[0])
	}
	ix := &Index{dim: d, maxLayers: maxLayers}
	ix.rowData = make([]float64, 0, len(products)*d)
	ix.alive = make([]bool, 0, len(products))
	for i, p := range products {
		if len(p) != d {
			panic(fmt.Sprintf("topk: index product %d has %d attributes, want %d", i, len(p), d))
		}
		ix.rowData = append(ix.rowData, p...)
		ix.alive = append(ix.alive, true)
	}
	ix.nAlive = len(products)
	ix.build()
	return ix
}

// SetKernels selects the scoring path: on (the default) uses the
// blocked kernels, off the historical scalar loops. Bit-identical
// either way — bounds built before the switch flips remain exact — so
// the call may happen any time, though the engine sets it once at
// construction.
func (ix *Index) SetKernels(on bool) { ix.scalar = !on }

// dotRows scores rows of flat against w on the instance's selected
// kernel path.
func (ix *Index) dotRows(flat []float64, d int, w geom.Vector, out []float64) {
	if ix.scalar {
		geom.DotRowsScalar(flat, d, w, out)
	} else {
		geom.DotRows(flat, d, w, out)
	}
}

// Dim returns the attribute dimensionality.
func (ix *Index) Dim() int { return ix.dim }

// Len returns the number of live products.
func (ix *Index) Len() int { return ix.nAlive }

// NumLayers returns the current layer count (tail layer included).
func (ix *Index) NumLayers() int { return len(ix.layers) }

// LayerSizes returns the row count of every layer, peel order.
func (ix *Index) LayerSizes() []int {
	out := make([]int, len(ix.layers))
	for i, ly := range ix.layers {
		out[i] = ly.rows()
	}
	return out
}

// Patches returns the cumulative count of incremental layer patches
// (product arrivals + departures applied without a re-peel).
func (ix *Index) Patches() int64 { return ix.patches }

// Rebuilds returns the cumulative count of full re-peels triggered by
// the patch policy (the initial build is not counted).
func (ix *Index) Rebuilds() int64 { return ix.rebuilds }

// row returns the master-matrix row of product id as a Vector view.
func (ix *Index) row(id int) geom.Vector {
	return geom.Vector(ix.rowData[id*ix.dim : (id+1)*ix.dim : (id+1)*ix.dim])
}

// build peels the live rows into dominance layers and rebuilds every
// bound structure. The peel scans candidates in (attribute-sum
// descending, id ascending) order — the same order Skyband uses — so a
// candidate's dominators always precede it and the per-round skyline
// falls out of a sort-filter pass.
func (ix *Index) build() {
	d := ix.dim
	remaining := make([]int, 0, ix.nAlive)
	for id, ok := range ix.alive {
		if ok {
			remaining = append(remaining, id)
		}
	}
	sums := make([]float64, len(ix.alive))
	for _, id := range remaining {
		sums[id] = ix.row(id).Sum()
	}
	sort.Slice(remaining, func(a, b int) bool {
		if sums[remaining[a]] != sums[remaining[b]] {
			return sums[remaining[a]] > sums[remaining[b]]
		}
		return remaining[a] < remaining[b]
	})

	ix.layers = ix.layers[:0]
	next := make([]int, 0, len(remaining))
	var layerIDs, band []int
	band = band[:0]
	for len(remaining) > 0 {
		if len(ix.layers) == ix.maxLayers-1 {
			// Peel cap reached: everything left joins the tail layer.
			band = append(band, remaining...)
			remaining = remaining[:0]
			break
		}
		layerIDs, next = layerIDs[:0], next[:0]
		for _, id := range remaining {
			p := ix.row(id)
			pSum := sums[id]
			dominated := false
			// Members were appended in descending-sum order; a dominator q
			// satisfies q >= p - Eps componentwise, hence
			// sum(q) >= sum(p) - d*Eps, so the scan can stop early.
			for _, j := range layerIDs {
				if sums[j] < pSum-float64(d)*geom.Eps {
					break
				}
				if ix.row(j).Dominates(p) {
					dominated = true
					break
				}
			}
			if dominated {
				next = append(next, id)
			} else {
				layerIDs = append(layerIDs, id)
			}
		}
		// Bands: close the layer only once it is thick enough.
		band = append(band, layerIDs...)
		if len(band) >= layerBandRows {
			ix.pushLayer(band)
			band = band[:0]
		}
		remaining, next = next, remaining[:0]
	}
	if len(band) > 0 {
		ix.pushLayer(band)
	}
	ix.rebuildRowMaps()
}

// pushLayer appends a layer holding the given product ids, reordered so
// row blocks are spatially tight boxes, and computes the per-block
// maxima.
func (ix *Index) pushLayer(ids []int) {
	d := ix.dim
	ly := &indexLayer{
		flat: make([]float64, len(ids)*d),
		ids:  append([]int(nil), ids...),
	}
	// kd-order the members: a layer's rows share a dominance depth but
	// fan across the whole attribute range, and a block of scattered rows
	// would bound near the corner of the space and never prune. The
	// recursive median partition groups each block's rows into a small
	// box in every dimension, which is what keeps a block's componentwise
	// maxima close to its best member — i.e. the threshold bound tight.
	ix.kdOrder(ly.ids)
	for i, id := range ly.ids {
		copy(ly.flat[i*d:(i+1)*d], ix.row(id))
	}
	ly.recomputeBounds(d, ix.scalar)
	ix.layers = append(ix.layers, ly)
}

// kdOrder permutes ids so that every aligned blockRows-sized run forms a
// tight box: recursively, the widest attribute dimension is sorted on
// and the ids split at the median, rounded to a block multiple so the
// recursion cells and the fixed-stride blocks coincide. Determinism:
// every sort tie-breaks on id, so the final order is a pure function of
// the id set and the row data.
func (ix *Index) kdOrder(ids []int) {
	if len(ids) <= blockRows {
		return
	}
	d := ix.dim
	widest, spread := 0, -1.0
	for j := 0; j < d; j++ {
		lo, hi := ix.rowData[ids[0]*d+j], ix.rowData[ids[0]*d+j]
		for _, id := range ids[1:] {
			v := ix.rowData[id*d+j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if s := hi - lo; s > spread {
			widest, spread = j, s
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		va, vb := ix.rowData[ids[a]*d+widest], ix.rowData[ids[b]*d+widest]
		if va != vb {
			return va < vb
		}
		return ids[a] < ids[b]
	})
	// Round the split to a bound-granule multiple so the recursion cells
	// and the fixed-stride blocks (and, while the cell is large enough,
	// superblocks) coincide — a granule never straddles two kd boxes.
	unit := blockRows
	if len(ids) > superRows {
		unit = superRows
	}
	mid := len(ids) / 2 / unit * unit
	if mid == 0 {
		mid = unit
	}
	ix.kdOrder(ids[:mid])
	ix.kdOrder(ids[mid:])
}

// recomputeBounds rebuilds the layer's per-block and per-superblock
// maxima from its rows.
func (ly *indexLayer) recomputeBounds(d int, scalar bool) {
	rowMax := geom.RowMax
	if scalar {
		rowMax = geom.RowMaxScalar
	}
	n := ly.rows()
	if n == 0 {
		ly.blockMax, ly.superMax = nil, nil
		ly.blockFlat, ly.superFlat = nil, nil
		return
	}
	nb := (n + blockRows - 1) / blockRows
	ns := (n + superRows - 1) / superRows
	// One backing slab keeps the per-layer allocation count flat — and
	// doubles as the contiguous bound matrices the batched queries score
	// (blockFlat, then superFlat).
	slab := make([]float64, (nb+ns)*d)
	ly.blockFlat = slab[:nb*d:nb*d]
	ly.superFlat = slab[nb*d:]
	ly.blockMax = ly.blockMax[:0]
	for b := 0; b < nb; b++ {
		lo, hi := b*blockRows, (b+1)*blockRows
		if hi > n {
			hi = n
		}
		bm := slab[b*d : (b+1)*d : (b+1)*d]
		copy(bm, ly.flat[lo*d:lo*d+d])
		rowMax(ly.flat[(lo+1)*d:hi*d], d, bm)
		ly.blockMax = append(ly.blockMax, bm)
	}
	ly.superMax = ly.superMax[:0]
	for sb := 0; sb < ns; sb++ {
		lo, hi := sb*superRows, (sb+1)*superRows
		if hi > n {
			hi = n
		}
		sm := slab[(nb+sb)*d : (nb+sb+1)*d : (nb+sb+1)*d]
		copy(sm, ly.flat[lo*d:lo*d+d])
		rowMax(ly.flat[(lo+1)*d:hi*d], d, sm)
		ly.superMax = append(ly.superMax, sm)
	}
}

// rebuildRowMaps recomputes the id -> (layer, position) locators.
func (ix *Index) rebuildRowMaps() {
	if cap(ix.rowLayer) < len(ix.alive) {
		ix.rowLayer = make([]int32, len(ix.alive))
		ix.rowPos = make([]int32, len(ix.alive))
	}
	ix.rowLayer = ix.rowLayer[:len(ix.alive)]
	ix.rowPos = ix.rowPos[:len(ix.alive)]
	for i := range ix.rowLayer {
		ix.rowLayer[i], ix.rowPos[i] = -1, -1
	}
	for l, ly := range ix.layers {
		for p, id := range ly.ids {
			ix.rowLayer[id] = int32(l)
			ix.rowPos[id] = int32(p)
		}
	}
}

// Insert adds a product to the index and returns its id (the next
// global row index, matching the append position of the engine's
// product slice). The new row is patched into the first layer none of
// whose members dominate it; the affected bounds are repaired in place.
func (ix *Index) Insert(p geom.Vector) int {
	if len(p) != ix.dim {
		panic(fmt.Sprintf("topk: index insert of %d-dim product, want %d", len(p), ix.dim))
	}
	id := len(ix.alive)
	ix.rowData = append(ix.rowData, p...)
	ix.alive = append(ix.alive, true)
	ix.rowLayer = append(ix.rowLayer, -1)
	ix.rowPos = append(ix.rowPos, -1)
	ix.nAlive++
	ix.patches++
	ix.patchesSinceRebuild++
	if ix.maybeRebuild() {
		return id
	}

	target := len(ix.layers) - 1
	row := ix.row(id)
	for l, ly := range ix.layers {
		if l == len(ix.layers)-1 {
			target = l // tail layer accepts everything
			break
		}
		dominated := false
		for i := 0; i < ly.rows(); i++ {
			q := geom.Vector(ly.flat[i*ix.dim : (i+1)*ix.dim])
			if q.Dominates(row) {
				dominated = true
				break
			}
		}
		if !dominated {
			target = l
			break
		}
	}
	if len(ix.layers) == 0 {
		ix.pushLayer([]int{id})
		ix.rowLayer[id], ix.rowPos[id] = 0, 0
		return id
	}
	ly := ix.layers[target]
	ix.rowLayer[id], ix.rowPos[id] = int32(target), int32(ly.rows())
	ly.flat = append(ly.flat, row...)
	ly.ids = append(ly.ids, id)
	ix.repairLayer(target)
	return id
}

// Remove deletes the product with the given id from the index (the id
// stays burned: future inserts never reuse it).
func (ix *Index) Remove(id int) {
	if id < 0 || id >= len(ix.alive) || !ix.alive[id] {
		panic(fmt.Sprintf("topk: index remove of absent product %d", id))
	}
	ix.alive[id] = false
	ix.nAlive--
	ix.patches++
	ix.patchesSinceRebuild++
	if ix.maybeRebuild() {
		return
	}
	l, pos := int(ix.rowLayer[id]), int(ix.rowPos[id])
	ix.rowLayer[id], ix.rowPos[id] = -1, -1
	ly := ix.layers[l]
	d := ix.dim
	last := ly.rows() - 1
	if pos != last {
		copy(ly.flat[pos*d:(pos+1)*d], ly.flat[last*d:(last+1)*d])
		moved := ly.ids[last]
		ly.ids[pos] = moved
		ix.rowPos[moved] = int32(pos)
	}
	ly.flat = ly.flat[:last*d]
	ly.ids = ly.ids[:last]
	ix.repairLayer(l)
}

// repairLayer recomputes layer l's block maxima after a row landed in or
// left it. The recompute is O(rows·d); maxima cannot be shrunk
// incrementally anyway (a removed row may have defined the max), and the
// simple full recompute keeps the patch logic obviously correct.
func (ix *Index) repairLayer(l int) {
	ix.layers[l].recomputeBounds(ix.dim, ix.scalar)
}

// maybeRebuild applies the re-peel policy; reports whether it rebuilt.
func (ix *Index) maybeRebuild() bool {
	if ix.patchesSinceRebuild <= indexRebuildMinPatches {
		return false
	}
	if float64(ix.patchesSinceRebuild) <= indexRebuildFrac*float64(ix.nAlive) {
		return false
	}
	ix.Rebuild()
	return true
}

// Rebuild re-peels the index from the live rows, restoring the sort
// invariants the bounds are tightest under.
func (ix *Index) Rebuild() {
	ix.rebuilds++
	ix.patchesSinceRebuild = 0
	ix.build()
}

// SearchStats aggregates the search-effort counters of indexed top-k
// queries. All fields merge by summation (order-free), so per-worker
// accumulators combine deterministically.
type SearchStats struct {
	// ScannedProducts counts product rows actually scored.
	ScannedProducts int64
	// LayerPrunes counts index blocks (the layers' bound granules)
	// skipped whole by the threshold bound.
	LayerPrunes int64
}

// Add folds o into s.
func (s *SearchStats) Add(o SearchStats) {
	s.ScannedProducts += o.ScannedProducts
	s.LayerPrunes += o.LayerPrunes
}

// granuleRef is one entry of the per-query bound queue: a granule's
// bound for the query weights plus its address. idx is the superblock
// index when super is true, the block index otherwise.
type granuleRef struct {
	bound float64
	layer int32
	idx   int32
	super bool
}

// granuleBefore orders the per-query bound queue: higher bound first,
// then (layer, kind, idx) ascending — a total order, so the scan
// sequence (and with it every stats counter) is deterministic.
func granuleBefore(a, b granuleRef) bool {
	if a.bound != b.bound {
		return a.bound > b.bound
	}
	if a.layer != b.layer {
		return a.layer < b.layer
	}
	if a.super != b.super {
		return b.super
	}
	return a.idx < b.idx
}

// Searcher runs top-k queries against an Index, reusing its heaps and
// score scratch across calls and accumulating SearchStats. A Searcher
// is not safe for concurrent use; run one per goroutine (the Index
// itself is).
type Searcher struct {
	ix    *Index
	Stats SearchStats

	hScore []float64
	hID    []int
	queue  []granuleRef
	scores [blockRows]float64
	// bound-scoring scratch for the batched granule dots: one slot per
	// superblock of the largest layer (grown on demand), and a fixed
	// block-bound buffer for one superblock's expansion.
	sBounds []float64
	bBounds [superRows / blockRows]float64
}

// growBounds returns the superblock-bound scratch resized to n.
func (s *Searcher) growBounds(n int) []float64 {
	if cap(s.sBounds) < n {
		s.sBounds = make([]float64, n)
	}
	return s.sBounds[:n]
}

// NewSearcher returns a Searcher over ix.
func NewSearcher(ix *Index) *Searcher { return &Searcher{ix: ix} }

// heapWorse reports whether candidate a ranks strictly below candidate b
// under the engine ranking (score descending, id ascending) — the heap
// keeps its worst kept candidate at the root.
func heapWorse(sa float64, ia int, sb float64, ib int) bool {
	if sa != sb {
		return sa < sb
	}
	return ia > ib
}

// Kth returns the top-k-th product (global id and score) for weight w,
// byte-identical to KthScore over the live product set: same ranking,
// same tie-break, same float scores. It panics if k < 1 or k exceeds
// the live product count.
func (s *Searcher) Kth(w geom.Vector, k int) KthResult {
	ix := s.ix
	if len(w) != ix.dim {
		panic(fmt.Sprintf("topk: index query with %d weights, want %d", len(w), ix.dim))
	}
	if k < 1 {
		panic(fmt.Sprintf("topk: user k=%d < 1", k))
	}
	if k > ix.nAlive {
		panic(fmt.Sprintf("topk: k=%d exceeds |P|=%d", k, ix.nAlive))
	}
	// The bounds assume non-negative weights (w · maxima dominates every
	// w · row only then). Preference vectors live on the unit simplex so
	// this always holds in the engine; a hostile caller just loses the
	// pruning, never correctness.
	canPrune := true
	for _, x := range w {
		if x < 0 {
			canPrune = false
			break
		}
	}

	if cap(s.hScore) < k {
		s.hScore = make([]float64, 0, k)
		s.hID = make([]int, 0, k)
	}
	s.hScore, s.hID = s.hScore[:0], s.hID[:0]
	full := false

	if !canPrune {
		// No valid bounds: scan every block in layer order.
		for _, ly := range ix.layers {
			for b := 0; b*blockRows < ly.rows(); b++ {
				full = s.scanBlock(ly, b, w, k, full)
			}
		}
		return KthResult{Index: s.hID[0], Score: s.hScore[0]}
	}

	// Seed the queue with one bound per superblock, then expand
	// best-first: popping a superblock queues its blocks' bounds, popping
	// a block scans it. The heap root rises as fast as possible, and the
	// first queued bound strictly below it proves everything unexpanded
	// worse — superblock maxima dominate their blocks' maxima, so a
	// pruned superblock soundly prunes every block under it.
	s.queue = s.queue[:0]
	for l, ly := range ix.layers {
		ns := len(ly.superMax)
		if ns == 0 {
			continue
		}
		// One batched dot over the layer's contiguous superblock maxima:
		// bit-identical to w.Dot per row, dispatched once per matrix.
		bounds := s.growBounds(ns)
		ix.dotRows(ly.superFlat, ix.dim, w, bounds)
		for sb, bd := range bounds {
			s.queue = append(s.queue, granuleRef{
				bound: bd,
				layer: int32(l),
				idx:   int32(sb),
				super: true,
			})
		}
	}
	for i := len(s.queue)/2 - 1; i >= 0; i-- {
		granuleSiftDown(s.queue, i)
	}
	for len(s.queue) > 0 {
		best := s.queue[0]
		if full && best.bound < s.hScore[0] {
			s.Stats.LayerPrunes += s.prunedBlocks()
			break
		}
		n := len(s.queue) - 1
		s.queue[0] = s.queue[n]
		s.queue = s.queue[:n]
		granuleSiftDown(s.queue, 0)
		ly := ix.layers[best.layer]
		if !best.super {
			full = s.scanBlock(ly, int(best.idx), w, k, full)
			continue
		}
		lo := int(best.idx) * (superRows / blockRows)
		hi := lo + superRows/blockRows
		if nb := len(ly.blockMax); hi > nb {
			hi = nb
		}
		bb := s.bBounds[:hi-lo]
		ix.dotRows(ly.blockFlat[lo*ix.dim:hi*ix.dim], ix.dim, w, bb)
		for i, bd := range bb {
			s.queuePush(granuleRef{
				bound: bd,
				layer: best.layer,
				idx:   int32(lo + i),
			})
		}
	}
	return KthResult{Index: s.hID[0], Score: s.hScore[0]}
}

// prunedBlocks counts the block granules the remaining queue covers —
// one per queued block, a superblock's full block span otherwise.
func (s *Searcher) prunedBlocks() int64 {
	var n int64
	for _, g := range s.queue {
		if !g.super {
			n++
			continue
		}
		ly := s.ix.layers[g.layer]
		lo := int(g.idx) * (superRows / blockRows)
		hi := lo + superRows/blockRows
		if nb := len(ly.blockMax); hi > nb {
			hi = nb
		}
		n += int64(hi - lo)
	}
	return n
}

// queuePush appends a granule to the bound queue and sifts it up.
func (s *Searcher) queuePush(g granuleRef) {
	s.queue = append(s.queue, g)
	q := s.queue
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !granuleBefore(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// scanBlock scores block b of layer ly into the k-heap; it returns
// whether the heap is full afterwards.
func (s *Searcher) scanBlock(ly *indexLayer, b int, w geom.Vector, k int, full bool) bool {
	d := s.ix.dim
	lo, hi := b*blockRows, (b+1)*blockRows
	if n := ly.rows(); hi > n {
		hi = n
	}
	rows := hi - lo
	out := s.scores[:rows]
	s.ix.dotRows(ly.flat[lo*d:hi*d], d, w, out)
	s.Stats.ScannedProducts += int64(rows)
	for i, sc := range out {
		id := ly.ids[lo+i]
		if !full {
			s.heapPush(sc, id)
			full = len(s.hID) == k
		} else if heapWorse(s.hScore[0], s.hID[0], sc, id) {
			s.heapReplaceRoot(sc, id)
		}
	}
	return full
}

// AtLeast appends to dst the ids of every live product whose score w·p
// reaches at least t and returns the extended slice — the threshold scan
// behind reverse-influence queries (a product covers a user exactly when
// it scores at least the user's top-k entry threshold). Whole blocks are
// skipped when their componentwise-maxima bound falls below t; bounds and
// scores use the same dot kernel and maxima only round monotonically, so
// no product with score >= t is ever pruned and the result is exactly the
// predicate set, byte-identical to a full scan. For weight vectors with a
// negative component the bounds are invalid, so pruning is disabled and
// every block is scanned. Output order is layer/row order, not sorted.
// Skipped blocks count into Stats.LayerPrunes, scored rows into
// Stats.ScannedProducts.
func (s *Searcher) AtLeast(w geom.Vector, t float64, dst []int) []int {
	ix := s.ix
	if len(w) != ix.dim {
		panic(fmt.Sprintf("topk: index query with %d weights, want %d", len(w), ix.dim))
	}
	canPrune := true
	for _, x := range w {
		if x < 0 {
			canPrune = false
			break
		}
	}
	d := ix.dim
	for _, ly := range ix.layers {
		nb := len(ly.blockMax)
		ns := len(ly.superMax)
		var sBounds []float64
		if canPrune && ns > 0 {
			// Batched superblock bounds for the whole layer, then batched
			// block bounds per surviving superblock: the same bound values
			// (and hence the same prune/scan decisions and counters) as the
			// per-granule dots, one matrix dispatch per batch.
			sBounds = s.growBounds(ns)
			ix.dotRows(ly.superFlat, d, w, sBounds)
		}
		for sb := 0; sb < ns; sb++ {
			lo := sb * (superRows / blockRows)
			hi := lo + superRows/blockRows
			if hi > nb {
				hi = nb
			}
			if canPrune && sBounds[sb] < t {
				s.Stats.LayerPrunes += int64(hi - lo)
				continue
			}
			var bBounds []float64
			if canPrune {
				bBounds = s.bBounds[:hi-lo]
				ix.dotRows(ly.blockFlat[lo*d:hi*d], d, w, bBounds)
			}
			for b := lo; b < hi; b++ {
				if canPrune && bBounds[b-lo] < t {
					s.Stats.LayerPrunes++
					continue
				}
				rlo, rhi := b*blockRows, (b+1)*blockRows
				if n := ly.rows(); rhi > n {
					rhi = n
				}
				out := s.scores[:rhi-rlo]
				s.ix.dotRows(ly.flat[rlo*d:rhi*d], d, w, out)
				s.Stats.ScannedProducts += int64(rhi - rlo)
				for i, sc := range out {
					if sc >= t {
						dst = append(dst, ly.ids[rlo+i])
					}
				}
			}
		}
	}
	return dst
}

// granuleSiftDown restores the bound queue's heap order below position i
// (best granule at the root).
func granuleSiftDown(q []granuleRef, i int) {
	n := len(q)
	for {
		c := 2*i + 1
		if c >= n {
			return
		}
		if r := c + 1; r < n && granuleBefore(q[r], q[c]) {
			c = r
		}
		if !granuleBefore(q[c], q[i]) {
			return
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
}

// heapPush appends a candidate and sifts it up (heap ordered with the
// worst kept candidate at the root).
func (s *Searcher) heapPush(score float64, id int) {
	s.hScore = append(s.hScore, score)
	s.hID = append(s.hID, id)
	i := len(s.hID) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapWorse(s.hScore[i], s.hID[i], s.hScore[p], s.hID[p]) {
			break
		}
		s.hScore[i], s.hScore[p] = s.hScore[p], s.hScore[i]
		s.hID[i], s.hID[p] = s.hID[p], s.hID[i]
		i = p
	}
}

// heapReplaceRoot overwrites the root (the current k-th) and sifts down.
func (s *Searcher) heapReplaceRoot(score float64, id int) {
	s.hScore[0], s.hID[0] = score, id
	n := len(s.hID)
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && heapWorse(s.hScore[r], s.hID[r], s.hScore[c], s.hID[c]) {
			c = r
		}
		if !heapWorse(s.hScore[c], s.hID[c], s.hScore[i], s.hID[i]) {
			break
		}
		s.hScore[i], s.hScore[c] = s.hScore[c], s.hScore[i]
		s.hID[i], s.hID[c] = s.hID[c], s.hID[i]
		i = c
	}
}

// AllTopKWorkers answers every user's top-k-th product from the index,
// fanning users across workers in contiguous chunks (0 = all cores,
// 1 = strictly sequential). The output is byte-identical to the naive
// AllTopKWorkers for every worker count; the returned SearchStats sum
// the per-worker counters order-free, so they are deterministic too.
func (ix *Index) AllTopKWorkers(users []UserPref, workers int) ([]KthResult, SearchStats) {
	kmax := 0
	for _, u := range users {
		if u.K > kmax {
			kmax = u.K
		}
		if u.K < 1 {
			panic(fmt.Sprintf("topk: user k=%d < 1", u.K))
		}
	}
	if kmax > ix.nAlive {
		panic(fmt.Sprintf("topk: max k=%d exceeds |P|=%d", kmax, ix.nAlive))
	}
	out := make([]KthResult, len(users))
	nw := par.Resolve(workers)
	if nw > len(users) {
		nw = len(users)
	}
	searchers := make([]*Searcher, nw)
	par.ForWorker(len(users), workers, func(worker, ui int) {
		s := searchers[worker]
		if s == nil {
			s = NewSearcher(ix)
			searchers[worker] = s
		}
		out[ui] = s.Kth(users[ui].W, users[ui].K)
	})
	var st SearchStats
	for _, s := range searchers {
		if s != nil {
			st.Add(s.Stats)
		}
	}
	return out, st
}
