package topk

import (
	"math"
	"math/rand"
	"testing"

	"mir/internal/geom"
)

// sameKth asserts bitwise equality of two KthResults: same product id and
// the exact same score bits.
func sameKth(t *testing.T, ctx string, got, want KthResult) {
	t.Helper()
	if got.Index != want.Index ||
		math.Float64bits(got.Score) != math.Float64bits(want.Score) {
		t.Fatalf("%s: indexed %+v (score bits %x) vs reference %+v (score bits %x)",
			ctx, got, math.Float64bits(got.Score), want, math.Float64bits(want.Score))
	}
}

// gridWeight draws strictly positive lattice weights normalized to the
// simplex — scores collide often, but no component is zero, so dominance
// still forces strict score order and every selection rule agrees.
func gridWeight(rng *rand.Rand, d int) geom.Vector {
	w := make(geom.Vector, d)
	s := 0.0
	for j := range w {
		w[j] = float64(1 + rng.Intn(4))
		s += w[j]
	}
	for j := range w {
		w[j] /= s
	}
	return w
}

// TestSearcherKthMatchesFullScan is the core byte-identity property: the
// indexed search must return the exact result of the naive full product
// scan — identity and score bits — across dimensionalities, sizes spanning
// multiple blocks and layers, every k, and regardless of the peel cap
// (any layer partition must be query-correct, only pruning quality may
// differ).
func TestSearcherKthMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(400)
		d := 1 + rng.Intn(5)
		ps := randomProducts(rng, n, d)
		maxLayers := 1 + rng.Intn(6) // exercise tiny caps: tail-heavy indexes
		ix := NewIndexLayers(ps, maxLayers)
		s := NewSearcher(ix)
		for q := 0; q < 20; q++ {
			w := randomWeight(rng, d)
			k := 1 + rng.Intn(n)
			sameKth(t, "random", s.Kth(w, k), KthScore(ps, w, k))
		}
	}
}

// TestSearcherKthTieHeavy drives the indexed search through the tie-break
// branches: grid-valued attributes with forced exact duplicates, grid
// weights, and per-user heterogeneous k. The reference is the naive full
// scan; the skyband-pruned AllTopK must also agree (strictly positive
// weights make dominators strictly better, so the prune is exact here).
func TestSearcherKthTieHeavy(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(200)
		d := 1 + rng.Intn(4)
		ps := gridProducts(rng, n, d, 3)
		for c := 0; c < n/4; c++ {
			ps[rng.Intn(n)] = ps[rng.Intn(n)].Clone()
		}
		ix := NewIndex(ps)
		s := NewSearcher(ix)
		users := make([]UserPref, 30)
		for i := range users {
			users[i] = UserPref{W: gridWeight(rng, d), K: 1 + (i*7)%minInt(19, n)}
		}
		naive := AllTopKWorkers(ps, users, 1)
		for ui, u := range users {
			want := KthScore(ps, u.W, u.K)
			sameKth(t, "ties/full-scan", s.Kth(u.W, u.K), want)
			sameKth(t, "ties/skyband", naive[ui], want)
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestIndexAllTopKWorkersByteIdentical pins the satellite acceptance
// criterion: Instance-level results are byte-identical with the index on
// or off, for workers 1, 2, 4, and 8 — on a tie-heavy fixture with
// duplicate products and heterogeneous per-user k.
func TestIndexAllTopKWorkersByteIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	n := 1500
	ps := gridProducts(rng, n, 3, 4)
	for c := 0; c < n/5; c++ {
		ps[rng.Intn(n)] = ps[rng.Intn(n)].Clone()
	}
	users := make([]UserPref, 211)
	for i := range users {
		users[i] = UserPref{W: gridWeight(rng, 3), K: 1 + (i*7)%19}
	}
	want := AllTopKWorkers(ps, users, 1) // naive, sequential
	ix := NewIndex(ps)
	var statsAt1 SearchStats
	for _, workers := range []int{1, 2, 4, 8} {
		got, st := ix.AllTopKWorkers(users, workers)
		for ui := range want {
			if got[ui].Index != want[ui].Index ||
				math.Float64bits(got[ui].Score) != math.Float64bits(want[ui].Score) {
				t.Fatalf("workers=%d user %d: indexed %+v vs naive %+v",
					workers, ui, got[ui], want[ui])
			}
		}
		if workers == 1 {
			statsAt1 = st
		} else if st != statsAt1 {
			// Per-user searches are independent and the counters merge by
			// summation, so the totals must not depend on the fan-out.
			t.Fatalf("workers=%d: stats %+v differ from sequential %+v", workers, st, statsAt1)
		}
	}
}

// TestSearcherKthZeroAndNegativeWeights checks exactness where the naive
// skyband prune is NOT trusted: zero weight components make dominated
// products tie with their dominators, and negative components (a hostile
// caller) disable pruning entirely. The indexed search must still equal
// the full scan bit for bit.
func TestSearcherKthZeroAndNegativeWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(150)
		d := 2 + rng.Intn(3)
		ps := gridProducts(rng, n, d, 3)
		ix := NewIndex(ps)
		s := NewSearcher(ix)
		for q := 0; q < 10; q++ {
			w := randomWeight(rng, d)
			w[rng.Intn(d)] = 0 // ties across dominance become possible
			k := 1 + rng.Intn(n)
			sameKth(t, "zero-weight", s.Kth(w, k), KthScore(ps, w, k))

			h := randomWeight(rng, d)
			h[rng.Intn(d)] = -0.3
			sameKth(t, "negative-weight", s.Kth(h, k), KthScore(ps, h, k))
		}
	}
}

// liveRef answers the reference top-k-th over the live rows of a mutated
// index: a naive full scan over the live products in ascending global-id
// order (position tie-break there = global-id tie-break).
func liveRef(ix *Index, alive map[int]geom.Vector, w geom.Vector, k int) KthResult {
	ids := make([]int, 0, len(alive))
	for id := range alive {
		ids = append(ids, id)
	}
	// Insertion order is map-random; sort ascending for the tie-break.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	ps := make([]geom.Vector, len(ids))
	for i, id := range ids {
		ps[i] = alive[id]
	}
	r := KthScore(ps, w, k)
	return KthResult{Index: ids[r.Index], Score: r.Score}
}

// TestIndexPatchVsRebuild drives the index through a random product
// arrival/departure sequence and, at every step, checks three-way
// equivalence: the patched index, a rebuilt-from-scratch index, and the
// naive full scan over the live set all return identical results.
func TestIndexPatchVsRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	d := 3
	ps := randomProducts(rng, 120, d)
	ix := NewIndexLayers(ps, 4) // small cap: the tail layer sees patches too
	alive := map[int]geom.Vector{}
	for id, p := range ps {
		alive[id] = p
	}
	liveIDs := make([]int, 0, 256)
	for id := range alive {
		liveIDs = append(liveIDs, id)
	}
	check := func(step string) {
		t.Helper()
		s := NewSearcher(ix)
		for q := 0; q < 8; q++ {
			w := randomWeight(rng, d)
			k := 1 + rng.Intn(ix.Len())
			sameKth(t, step+"/patched", s.Kth(w, k), liveRef(ix, alive, w, k))
		}
	}
	check("initial")
	for step := 0; step < 150; step++ {
		if rng.Intn(2) == 0 || len(alive) < 10 {
			p := make(geom.Vector, d)
			for j := range p {
				p[j] = rng.Float64()
			}
			id := ix.Insert(p)
			if _, used := alive[id]; used {
				t.Fatalf("step %d: Insert reused live id %d", step, id)
			}
			alive[id] = p
			liveIDs = append(liveIDs, id)
		} else {
			victim := liveIDs[rng.Intn(len(liveIDs))]
			for _, ok := alive[victim]; !ok; _, ok = alive[victim] {
				victim = liveIDs[rng.Intn(len(liveIDs))]
			}
			ix.Remove(victim)
			delete(alive, victim)
		}
		if ix.Len() != len(alive) {
			t.Fatalf("step %d: index Len=%d, oracle has %d live", step, ix.Len(), len(alive))
		}
		check("churn")
	}
	patchedLayers := ix.LayerSizes()
	ix.Rebuild()
	check("rebuilt")
	// A rebuild restores the peel: layer row totals must still cover every
	// live product exactly once.
	total := 0
	for _, n := range ix.LayerSizes() {
		total += n
	}
	if total != len(alive) {
		t.Fatalf("rebuilt layers hold %d rows, want %d (patched layout was %v)",
			total, len(alive), patchedLayers)
	}
	if ix.Patches() == 0 {
		t.Error("churn produced no patch counts")
	}
}

// TestIndexRebuildPolicy checks the re-peel trigger: enough patches on a
// small live set must cross both policy thresholds and bump Rebuilds,
// while a huge live set absorbs the same patch count without rebuilding.
func TestIndexRebuildPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	small := NewIndex(randomProducts(rng, 100, 3))
	for i := 0; i < 80; i++ {
		p := make(geom.Vector, 3)
		for j := range p {
			p[j] = rng.Float64()
		}
		small.Insert(p)
	}
	if small.Rebuilds() == 0 {
		t.Errorf("80 patches on 100 live products triggered no rebuild (patches=%d)", small.Patches())
	}

	big := NewIndex(randomProducts(rng, 2000, 3))
	for i := 0; i < 80; i++ {
		p := make(geom.Vector, 3)
		for j := range p {
			p[j] = rng.Float64()
		}
		big.Insert(p)
	}
	if big.Rebuilds() != 0 {
		t.Errorf("80 patches on 2000 live products rebuilt %d times — policy too eager", big.Rebuilds())
	}
	if big.Patches() != 80 {
		t.Errorf("Patches = %d, want 80", big.Patches())
	}
}

// TestIndexPruningEffective asserts the perf property the index exists
// for, on a fixed seed: answering top-10 queries scans far fewer products
// than the naive skyband scan (|10-skyband| rows per user), and whole
// layers get pruned by the threshold bound.
func TestIndexPruningEffective(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	ps := randomProducts(rng, 20000, 3)
	users := make([]UserPref, 200)
	for i := range users {
		users[i] = UserPref{W: randomWeight(rng, 3), K: 10}
	}
	ix := NewIndex(ps)
	_, st := ix.AllTopKWorkers(users, 1)
	bandRows := len(Skyband(ps, 10))
	avgScanned := float64(st.ScannedProducts) / float64(len(users))
	if avgScanned*5 > float64(bandRows) {
		t.Errorf("avg scanned %.1f products/user; naive skyband scan is %d — under 5x",
			avgScanned, bandRows)
	}
	if st.LayerPrunes == 0 {
		t.Error("no layer prunes on a 20k-product index")
	}
	t.Logf("scanned/user %.1f, skyband %d (%.1fx), layer prunes %d, layers %v",
		avgScanned, bandRows, float64(bandRows)/avgScanned, st.LayerPrunes, ix.LayerSizes())
}

// TestIndexLayerPartition checks structural invariants of the build:
// layers partition the products, the first layer contains the whole
// skyline, and every row outside it has a dominator in an earlier-or-
// same layer (the banded peel keeps dominators at lower or equal depth).
func TestIndexLayerPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	ps := randomProducts(rng, 5000, 3)
	ix := NewIndex(ps)
	seen := make([]bool, len(ps))
	layerOf := make([]int, len(ps))
	for l, sz := range ix.LayerSizes() {
		ly := ix.layers[l]
		if ly.rows() != sz {
			t.Fatalf("layer %d: LayerSizes says %d, rows() says %d", l, sz, ly.rows())
		}
		for _, id := range ly.ids {
			if seen[id] {
				t.Fatalf("product %d appears in two layers", id)
			}
			seen[id] = true
			layerOf[id] = l
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("product %d missing from every layer", id)
		}
	}
	for _, i := range Skyline(ps) {
		if layerOf[i] != 0 {
			t.Fatalf("skyline product %d landed in layer %d", i, layerOf[i])
		}
	}
	for id := range ps {
		if layerOf[id] == 0 {
			continue
		}
		best := -1
		for j := range ps {
			if j != id && ps[j].Dominates(ps[id]) && (best < 0 || layerOf[j] < best) {
				best = layerOf[j]
			}
		}
		if best < 0 || best > layerOf[id] {
			t.Fatalf("product %d in layer %d: closest dominator layer %d", id, layerOf[id], best)
		}
	}
}

func TestIndexPanics(t *testing.T) {
	ix := NewIndex([]geom.Vector{{0.5, 0.5}})
	s := NewSearcher(ix)
	expectPanic(t, "k=0", func() { s.Kth(geom.Vector{1, 0}, 0) })
	expectPanic(t, "k>|P|", func() { s.Kth(geom.Vector{1, 0}, 2) })
	expectPanic(t, "query dim", func() { s.Kth(geom.Vector{1}, 1) })
	expectPanic(t, "insert dim", func() { ix.Insert(geom.Vector{1, 2, 3}) })
	expectPanic(t, "remove absent", func() { ix.Remove(7) })
	ix.Remove(0)
	expectPanic(t, "double remove", func() { ix.Remove(0) })
}

func expectPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func BenchmarkIndexedAllTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ps := randomProducts(rng, 100000, 4)
	users := make([]UserPref, 1000)
	for i := range users {
		users[i] = UserPref{W: randomWeight(rng, 4), K: 10}
	}
	ix := NewIndex(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.AllTopKWorkers(users, 0)
	}
}

func BenchmarkIndexBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ps := randomProducts(rng, 100000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewIndex(ps)
	}
}
