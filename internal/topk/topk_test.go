package topk

import (
	"math/rand"
	"sort"
	"testing"

	"mir/internal/geom"
)

func randomProducts(rng *rand.Rand, n, d int) []geom.Vector {
	ps := make([]geom.Vector, n)
	for i := range ps {
		ps[i] = make(geom.Vector, d)
		for j := range ps[i] {
			ps[i][j] = rng.Float64()
		}
	}
	return ps
}

func randomWeight(rng *rand.Rand, d int) geom.Vector {
	w := make(geom.Vector, d)
	s := 0.0
	for j := range w {
		w[j] = rng.Float64()
		s += w[j]
	}
	for j := range w {
		w[j] /= s
	}
	return w
}

// naiveTopK sorts all products by (score desc, index asc).
func naiveTopK(products []geom.Vector, w geom.Vector, k int) []int {
	idx := make([]int, len(products))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := w.Dot(products[idx[a]]), w.Dot(products[idx[b]])
		if sa != sb {
			return sa > sb
		}
		return idx[a] < idx[b]
	})
	return idx[:k]
}

func TestTopKSmall(t *testing.T) {
	ps := []geom.Vector{
		{0.9, 0.1}, // 0
		{0.5, 0.5}, // 1
		{0.1, 0.9}, // 2
		{0.8, 0.8}, // 3
	}
	w := geom.Vector{0.5, 0.5}
	got := TopK(ps, w, 2)
	if len(got) != 2 || got[0] != 3 {
		t.Fatalf("TopK = %v, want [3 ...]", got)
	}
	// Products 0, 1, 2 all score 0.5; smallest index wins second place.
	if got[1] != 0 {
		t.Errorf("tie-break: got %d, want 0", got[1])
	}
	r := KthScore(ps, w, 2)
	if r.Index != 0 || r.Score != 0.5 {
		t.Errorf("KthScore = %+v", r)
	}
}

func TestTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(100)
		d := 2 + rng.Intn(4)
		ps := randomProducts(rng, n, d)
		w := randomWeight(rng, d)
		k := 1 + rng.Intn(n)
		got := TopK(ps, w, k)
		want := naiveTopK(ps, w, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d vs %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: TopK=%v naive=%v", trial, got, want)
			}
		}
	}
}

func TestSkybandDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 20 + rng.Intn(100)
		d := 2 + rng.Intn(3)
		k := 1 + rng.Intn(4)
		ps := randomProducts(rng, n, d)
		band := map[int]bool{}
		for _, i := range Skyband(ps, k) {
			band[i] = true
		}
		// Definition check: i in band iff dominated by fewer than k points.
		for i := range ps {
			dom := 0
			for j := range ps {
				if j != i && ps[j].Dominates(ps[i]) {
					dom++
				}
			}
			if (dom < k) != band[i] {
				t.Fatalf("trial %d (k=%d): product %d has %d dominators, band=%v",
					trial, k, i, dom, band[i])
			}
		}
	}
}

func TestSkylineIsSkyband1(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := randomProducts(rng, 200, 3)
	a := Skyline(ps)
	b := Skyband(ps, 1)
	if len(a) != len(b) {
		t.Fatalf("skyline %d vs skyband(1) %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("skyline != skyband(1)")
		}
	}
}

func TestSkybandMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := randomProducts(rng, 300, 4)
	prev := map[int]bool{}
	for k := 1; k <= 5; k++ {
		cur := Skyband(ps, k)
		for i := range prev {
			found := false
			for _, j := range cur {
				if j == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("k=%d lost member %d of (k-1)-skyband", k, i)
			}
		}
		prev = map[int]bool{}
		for _, j := range cur {
			prev[j] = true
		}
	}
}

func TestAllTopKMatchesPerUser(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		d := 2 + rng.Intn(3)
		ps := randomProducts(rng, n, d)
		users := make([]UserPref, 30)
		for i := range users {
			users[i] = UserPref{W: randomWeight(rng, d), K: 1 + rng.Intn(10)}
		}
		got := AllTopK(ps, users)
		for ui, u := range users {
			want := KthScore(ps, u.W, u.K)
			if got[ui].Score != want.Score {
				t.Fatalf("trial %d user %d: score %g vs naive %g",
					trial, ui, got[ui].Score, want.Score)
			}
			// The identity must agree whenever the k-th score is unique.
			ties := 0
			for _, p := range ps {
				if u.W.Dot(p) == want.Score {
					ties++
				}
			}
			if ties == 1 && got[ui].Index != want.Index {
				t.Fatalf("trial %d user %d: index %d vs naive %d",
					trial, ui, got[ui].Index, want.Index)
			}
		}
	}
}

func TestAllTopKTopCornerAlwaysWins(t *testing.T) {
	// A product with maximal attributes must be every user's top-1, so with
	// k=1 every user's threshold equals that product's score.
	rng := rand.New(rand.NewSource(7))
	ps := randomProducts(rng, 50, 3)
	for i := range ps {
		ps[i] = ps[i].Scale(0.9)
	}
	ps = append(ps, geom.Vector{1, 1, 1})
	users := make([]UserPref, 10)
	for i := range users {
		users[i] = UserPref{W: randomWeight(rng, 3), K: 1}
	}
	for _, r := range AllTopK(ps, users) {
		if r.Index != len(ps)-1 {
			t.Fatalf("top corner not top-1: got %d", r.Index)
		}
	}
}

// gridProducts draws attribute values from a coarse grid, so exact score
// ties and duplicate points are common — the regime where tie-breaking
// and dominance-count bugs hide.
func gridProducts(rng *rand.Rand, n, d, levels int) []geom.Vector {
	ps := make([]geom.Vector, n)
	for i := range ps {
		ps[i] = make(geom.Vector, d)
		for j := range ps[i] {
			ps[i][j] = float64(rng.Intn(levels)) / float64(levels-1)
		}
	}
	return ps
}

// TestTopKMatchesOracleWithTies is the property test of the quickselect
// path (TopK/partialSelect) against a full-sort oracle on inputs with
// heavy score ties: grid-valued attributes and grid-valued weights make
// exact float equality frequent, so the (score desc, index asc) ranking is
// exercised through its tie-break branches.
func TestTopKMatchesOracleWithTies(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(60)
		d := 1 + rng.Intn(4)
		ps := gridProducts(rng, n, d, 3)
		// Grid weights keep scores on a lattice (many exact ties).
		w := make(geom.Vector, d)
		s := 0.0
		for j := range w {
			w[j] = float64(1 + rng.Intn(4))
			s += w[j]
		}
		for j := range w {
			w[j] /= s
		}
		k := 1 + rng.Intn(n)
		got := TopK(ps, w, k)
		want := naiveTopK(ps, w, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d d=%d k=%d): TopK=%v oracle=%v",
					trial, n, d, k, got, want)
			}
		}
		// KthScore must name the oracle's k-th element and its exact score.
		r := KthScore(ps, w, k)
		if r.Index != want[k-1] || r.Score != w.Dot(ps[want[k-1]]) {
			t.Fatalf("trial %d: KthScore=%+v, oracle k-th=%d", trial, r, want[k-1])
		}
	}
}

// TestSkybandMatchesNaiveWithDuplicates is the Skyband oracle test: a
// naive O(n²) dominance count over grid-valued inputs where duplicate
// points are guaranteed. Duplicates never dominate each other (dominance
// requires a strictly better coordinate), so both copies must appear in
// the band together.
func TestSkybandMatchesNaiveWithDuplicates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 60; trial++ {
		n := 10 + rng.Intn(120)
		d := 2 + rng.Intn(3)
		ps := gridProducts(rng, n, d, 3)
		// Force exact duplicates beyond what the grid already produces.
		for c := 0; c < n/5; c++ {
			ps[rng.Intn(n)] = ps[rng.Intn(n)].Clone()
		}
		k := 1 + rng.Intn(5)
		want := map[int]bool{}
		for i := range ps {
			dom := 0
			for j := range ps {
				if j != i && ps[j].Dominates(ps[i]) {
					dom++
				}
			}
			if dom < k {
				want[i] = true
			}
		}
		got := Skyband(ps, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d (k=%d): band size %d, oracle %d", trial, k, len(got), len(want))
		}
		if !sort.IntsAreSorted(got) {
			t.Fatalf("trial %d: band not sorted: %v", trial, got)
		}
		for _, i := range got {
			if !want[i] {
				t.Fatalf("trial %d (k=%d): product %d in band but oracle says out", trial, k, i)
			}
		}
	}
}

// TestAllTopKWorkersMatch pins that the parallel fan-out returns exactly
// the sequential results for every worker count.
func TestAllTopKWorkersMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ps := randomProducts(rng, 2000, 4)
	users := make([]UserPref, 123)
	for i := range users {
		users[i] = UserPref{W: randomWeight(rng, 4), K: 1 + rng.Intn(20)}
	}
	want := AllTopKWorkers(ps, users, 1)
	for _, w := range []int{0, 2, 3, 16} {
		got := AllTopKWorkers(ps, users, w)
		for ui := range want {
			if got[ui] != want[ui] {
				t.Fatalf("workers=%d user %d: %+v vs sequential %+v", w, ui, got[ui], want[ui])
			}
		}
	}
}

func TestTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > |P|")
		}
	}()
	TopK([]geom.Vector{{1}}, geom.Vector{1}, 2)
}

func BenchmarkSkyband1M(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ps := randomProducts(rng, 100000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Skyband(ps, 10)
	}
}

func BenchmarkAllTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ps := randomProducts(rng, 100000, 4)
	users := make([]UserPref, 1000)
	for i := range users {
		users[i] = UserPref{W: randomWeight(rng, 4), K: 10}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllTopK(ps, users)
	}
}
