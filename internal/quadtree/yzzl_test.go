package quadtree

import (
	"math"
	"math/rand"
	"testing"

	"mir/internal/core"
	"mir/internal/data"
)

func buildInstance(t *testing.T, rng *rand.Rand, nP, nU, d, k int) *core.Instance {
	t.Helper()
	ps := data.Independent(rng, nP, d)
	us := data.WithK(data.ClusteredUsers(rng, nU, d, 3, 0.08), k)
	inst, err := core.NewInstance(ps, us)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestAgreesWithMIRCO: the quadtree baseline and the mIR-based CO solver
// must find the same optimal cost (both are exact).
func TestAgreesWithMIRCO(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 6; trial++ {
		d := 2 + trial%2
		inst := buildInstance(t, rng, 200, 16, d, 1)
		m := 4 + 2*(trial%3)
		qt, err := DefaultSolver().SolveCO(inst, m)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		co, err := core.SolveCO(inst, m, core.L2Cost{}, core.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(qt.Cost-co.Cost) > 1e-5 {
			t.Errorf("trial %d: quadtree cost %g vs mIR cost %g", trial, qt.Cost, co.Cost)
		}
		if got := inst.CountCovering(qt.Point); got < m {
			t.Errorf("trial %d: baseline point covers %d < m=%d", trial, got, m)
		}
	}
}

// TestGeneralKSupported: the bounds are k-agnostic even though the
// original YZZL is k=1 only.
func TestGeneralKSupported(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	inst := buildInstance(t, rng, 200, 12, 2, 5)
	qt, err := DefaultSolver().SolveCO(inst, 6)
	if err != nil {
		t.Fatal(err)
	}
	co, err := core.SolveCO(inst, 6, core.L2Cost{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qt.Cost-co.Cost) > 1e-5 {
		t.Errorf("cost %g vs %g", qt.Cost, co.Cost)
	}
}

// TestNodeBudget: a tiny budget triggers ErrBudget, mirroring the paper's
// observation that YZZL fails to terminate for higher d.
func TestNodeBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	inst := buildInstance(t, rng, 300, 30, 4, 1)
	s := Solver{MinLeaf: 1.0 / 64, MaxNodes: 10}
	if _, err := s.SolveCO(inst, 15); err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// TestValidation: bad m is rejected.
func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := buildInstance(t, rng, 50, 5, 2, 1)
	if _, err := DefaultSolver().SolveCO(inst, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := DefaultSolver().SolveCO(inst, 6); err == nil {
		t.Error("m>|U| accepted")
	}
}

// TestBaselineSlower: the baseline must process far more geometric units
// of work than AA-based CO on the same instance (the Figure 14 trend).
func TestBaselineDoesMoreWork(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := buildInstance(t, rng, 400, 40, 3, 1)
	qt, err := DefaultSolver().SolveCO(inst, 20)
	if err != nil {
		t.Fatal(err)
	}
	co, err := core.SolveCO(inst, 20, core.L2Cost{}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if qt.Nodes < co.Region.Stats.Cells {
		t.Logf("note: quadtree nodes %d < AA cells %d (small instance)",
			qt.Nodes, co.Region.Stats.Cells)
	}
}
