// Package quadtree implements a quadtree branch-and-bound baseline for the
// influence-based cost-optimization problem (CO), standing in for the
// exact algorithm of Yang et al. [67] ("YZZL") that the paper compares
// against in Figure 14.
//
// Like the original, it partitions the product space into quads, prunes
// quads with influence and cost bounds, and resolves undecided leaf quads
// with an exact geometric computation. Where the original reduces leaves
// to Mulmuley's k-level construction, this implementation resolves them
// with a local halfspace arrangement — exact, and (as in the paper)
// asymptotically far more expensive than the mIR-based approach,
// especially as dimensionality grows.
package quadtree

import (
	"container/heap"
	"errors"
	"math"

	"mir/internal/celltree"
	"mir/internal/core"
	"mir/internal/geom"
	"mir/internal/solver"
)

// ErrBudget is returned when the node budget is exhausted before the
// search completes (the analogue of YZZL "failing to terminate within a
// day" for d >= 5 in the paper).
var ErrBudget = errors.New("quadtree: node budget exhausted")

// Solver configures the baseline.
type Solver struct {
	// MinLeaf is the edge length below which an undecided quad is resolved
	// exactly by a local arrangement instead of being split further.
	MinLeaf float64
	// MaxNodes bounds the number of processed quads; 0 means unlimited.
	MaxNodes int
}

// DefaultSolver mirrors a practical YZZL configuration.
func DefaultSolver() Solver { return Solver{MinLeaf: 1.0 / 16, MaxNodes: 2_000_000} }

// Result is the baseline's answer.
type Result struct {
	Point geom.Vector
	Cost  float64
	// Nodes is the number of quads processed (the baseline's work metric).
	Nodes int
}

type quad struct {
	lo, hi geom.Vector
	costLB float64
}

// quadHeap is a min-heap of quads by cost lower bound.
type quadHeap []quad

func (h quadHeap) Len() int            { return len(h) }
func (h quadHeap) Less(a, b int) bool  { return h[a].costLB < h[b].costLB }
func (h quadHeap) Swap(a, b int)       { h[a], h[b] = h[b], h[a] }
func (h *quadHeap) Push(x interface{}) { *h = append(*h, x.(quad)) }
func (h *quadHeap) Pop() interface{} {
	old := *h
	n := len(old)
	q := old[n-1]
	*h = old[:n-1]
	return q
}

// SolveCO finds the minimum-L2-cost position covering at least m users.
// It is exact up to the solver tolerances. The instance provides the
// influential halfspaces (built for each user's personal k; the original
// YZZL supports only k = 1, but the bounds are k-agnostic).
func (s Solver) SolveCO(inst *core.Instance, m int) (*Result, error) {
	if err := inst.CheckM(m); err != nil {
		return nil, err
	}
	d := inst.Dim
	root := quad{lo: make(geom.Vector, d), hi: ones(d)}
	h := &quadHeap{root}
	bestCost := math.Inf(1)
	var bestPoint geom.Vector
	nodes := 0

	for h.Len() > 0 {
		// Best-first by cost lower bound.
		q := heap.Pop(h).(quad)
		nodes++
		if s.MaxNodes > 0 && nodes > s.MaxNodes {
			return nil, ErrBudget
		}
		if q.costLB >= bestCost {
			continue
		}
		covering, crossing := s.countBounds(inst, q)
		if covering+crossing < m {
			continue // influence upper bound too small
		}
		if covering >= m {
			// The min-cost corner of the quad covers >= m users; it is the
			// cheapest point of the quad, hence optimal within it.
			if q.costLB < bestCost {
				bestCost = q.costLB
				bestPoint = q.lo.Clone()
			}
			continue
		}
		if edge(q) <= s.MinLeaf {
			pt, c, ok := s.resolveLeaf(inst, q, m, covering, bestCost)
			if ok && c < bestCost {
				bestCost = c
				bestPoint = pt
			}
			continue
		}
		for _, child := range split(q) {
			heap.Push(h, child)
		}
	}
	if bestPoint == nil {
		return nil, core.ErrNoSolution
	}
	return &Result{Point: bestPoint, Cost: bestCost, Nodes: nodes}, nil
}

// countBounds returns how many users certainly cover the quad (their
// halfspace contains its min corner) and how many might (halfspace
// contains the max corner but not the min corner). Weights are
// non-negative, so the corners bound the score range over the quad.
func (s Solver) countBounds(inst *core.Instance, q quad) (covering, crossing int) {
	for _, h := range inst.HS {
		loScore := h.W.Dot(q.lo)
		if loScore >= h.T-geom.Eps {
			covering++
			continue
		}
		if h.W.Dot(q.hi) >= h.T-geom.Eps {
			crossing++
		}
	}
	return covering, crossing
}

// resolveLeaf resolves an undecided quad exactly: it builds the local
// arrangement of the halfspaces crossing the quad and minimizes the cost
// over cells that reach m covering users (the stand-in for YZZL's k-level
// module).
func (s Solver) resolveLeaf(inst *core.Instance, q quad, m, covering int, incumbent float64) (geom.Vector, float64, bool) {
	box := geom.NewBoxCorners(q.lo, q.hi)
	tr := celltree.New(box)
	if tr.Root.Status != celltree.Active {
		return nil, 0, false
	}
	tr.Root.InCount = covering
	var crossing []geom.Halfspace
	for _, h := range inst.HS {
		if h.W.Dot(q.lo) < h.T-geom.Eps && h.W.Dot(q.hi) >= h.T-geom.Eps {
			crossing = append(crossing, h)
		}
	}
	for _, h := range crossing {
		insertLocal(tr, tr.Root, h)
	}
	best := incumbent
	var bestPt geom.Vector
	for _, leaf := range tr.Leaves(nil, nil) {
		if leaf.Status != celltree.Active || leaf.InCount < m {
			continue
		}
		lb := leaf.MBBLo.Norm()
		if lb >= best {
			continue
		}
		pt, c, err := solver.MinNorm(leaf.Polytope())
		if err != nil {
			continue
		}
		if c < best {
			best = c
			bestPt = pt
		}
	}
	return bestPt, best, bestPt != nil
}

// insertLocal inserts h into the local arrangement (no early decisions:
// the baseline enumerates the full local arrangement, as the k-level
// reduction does).
func insertLocal(tr *celltree.Tree, c *celltree.Cell, h geom.Halfspace) {
	if c.IsLeaf() {
		if c.Status != celltree.Active {
			return
		}
		switch c.Classify(h, true) {
		case geom.Covers:
			c.InCount++
		case geom.Excludes:
			c.OutCount++
		case geom.Cuts:
			l, r := tr.SplitBy(c, h)
			if r.Status == celltree.Active {
				r.InCount++
			}
			if l.Status == celltree.Active {
				l.OutCount++
			}
		}
		return
	}
	left, right := c.Children()
	insertLocal(tr, left, h)
	insertLocal(tr, right, h)
}

// split cuts the quad into 2^d children at its center.
func split(q quad) []quad {
	d := len(q.lo)
	mid := make(geom.Vector, d)
	for i := range mid {
		mid[i] = (q.lo[i] + q.hi[i]) / 2
	}
	n := 1 << d
	out := make([]quad, 0, n)
	for mask := 0; mask < n; mask++ {
		lo := make(geom.Vector, d)
		hi := make(geom.Vector, d)
		for i := 0; i < d; i++ {
			if mask&(1<<i) != 0 {
				lo[i], hi[i] = mid[i], q.hi[i]
			} else {
				lo[i], hi[i] = q.lo[i], mid[i]
			}
		}
		out = append(out, quad{lo: lo, hi: hi, costLB: lo.Norm()})
	}
	return out
}

func edge(q quad) float64 { return q.hi[0] - q.lo[0] }

func ones(d int) geom.Vector {
	v := make(geom.Vector, d)
	for i := range v {
		v[i] = 1
	}
	return v
}
