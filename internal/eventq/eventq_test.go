package eventq

import (
	"sync"
	"testing"
	"time"
)

func TestEnqueueDrainOrder(t *testing.T) {
	q := New[int](8)
	for i := 0; i < 5; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	got, ok := q.Drain(nil)
	if !ok || len(got) != 5 {
		t.Fatalf("Drain = %v, %v", got, ok)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("order broken: %v", got)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestWraparound(t *testing.T) {
	q := New[int](4)
	next, want := 0, 0
	for round := 0; round < 10; round++ {
		for i := 0; i < 3; i++ {
			if err := q.Enqueue(next); err != nil {
				t.Fatal(err)
			}
			next++
		}
		burst, ok := q.Drain(nil)
		if !ok {
			t.Fatal("Drain reported done on open queue")
		}
		for _, v := range burst {
			if v != want {
				t.Fatalf("round %d: got %d, want %d", round, v, want)
			}
			want++
		}
	}
	if want != next {
		t.Fatalf("drained %d of %d", want, next)
	}
}

func TestBackpressure(t *testing.T) {
	q := New[int](3)
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Enqueue(99); err != ErrFull {
		t.Fatalf("overfull Enqueue = %v, want ErrFull", err)
	}
	// Draining frees the whole capacity again.
	if _, ok := q.Drain(nil); !ok {
		t.Fatal("Drain failed")
	}
	for i := 0; i < 3; i++ {
		if err := q.Enqueue(i); err != nil {
			t.Fatalf("after drain: %v", err)
		}
	}
}

func TestDrainBlocksUntilEnqueue(t *testing.T) {
	q := New[string](2)
	done := make(chan []string)
	go func() {
		burst, ok := q.Drain(nil)
		if !ok {
			t.Error("Drain reported done")
		}
		done <- burst
	}()
	select {
	case <-done:
		t.Fatal("Drain returned with nothing queued")
	case <-time.After(20 * time.Millisecond):
	}
	if err := q.Enqueue("x"); err != nil {
		t.Fatal(err)
	}
	select {
	case burst := <-done:
		if len(burst) != 1 || burst[0] != "x" {
			t.Fatalf("burst = %v", burst)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not wake")
	}
}

func TestCloseSemantics(t *testing.T) {
	q := New[int](4)
	if err := q.Enqueue(1); err != nil {
		t.Fatal(err)
	}
	q.Close()
	q.Close() // idempotent
	if err := q.Enqueue(2); err != ErrClosed {
		t.Fatalf("Enqueue after Close = %v, want ErrClosed", err)
	}
	// Queued elements still drain after Close...
	burst, ok := q.Drain(nil)
	if !ok || len(burst) != 1 || burst[0] != 1 {
		t.Fatalf("post-close Drain = %v, %v", burst, ok)
	}
	// ...and only then does Drain report done.
	if burst, ok := q.Drain(nil); ok || len(burst) != 0 {
		t.Fatalf("empty closed Drain = %v, %v", burst, ok)
	}
}

func TestCloseWakesBlockedDrain(t *testing.T) {
	q := New[int](1)
	done := make(chan bool)
	go func() {
		_, ok := q.Drain(nil)
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond)
	q.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Drain on closed empty queue reported more work")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not wake Drain")
	}
}

// TestConcurrentProducers hammers Enqueue from many goroutines against
// one draining consumer (run under -race in CI): every successfully
// enqueued value must be drained exactly once, and per-producer order
// must be preserved in the drained stream.
func TestConcurrentProducers(t *testing.T) {
	const producers, perProducer = 8, 500
	q := New[[2]int](64)
	var wg sync.WaitGroup
	sent := make([]int, producers) // successful sends per producer
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				for {
					err := q.Enqueue([2]int{p, i})
					if err == nil {
						sent[p]++
						break
					}
					if err != ErrFull {
						t.Errorf("producer %d: %v", p, err)
						return
					}
					time.Sleep(time.Microsecond) // backpressure: retry
				}
			}
		}(p)
	}
	go func() {
		wg.Wait()
		q.Close()
	}()

	lastSeen := make([]int, producers)
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	got := 0
	var buf [][2]int
	for {
		var more bool
		buf, more = q.Drain(buf[:0])
		for _, ev := range buf {
			p, i := ev[0], ev[1]
			if i <= lastSeen[p] {
				t.Fatalf("producer %d: saw %d after %d", p, i, lastSeen[p])
			}
			lastSeen[p] = i
			got++
		}
		if !more {
			break
		}
	}
	want := 0
	for _, n := range sent {
		want += n
	}
	if got != want || got != producers*perProducer {
		t.Fatalf("drained %d events, sent %d, expected %d", got, want, producers*perProducer)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New[int](0)
}
