// Package eventq provides the bounded coalescing event queue behind the
// standing daemon's ingest path. Producers (HTTP handlers) enqueue
// population events without blocking; a single consumer drains whatever
// has accumulated since its last visit in one call and applies the whole
// burst as one maintenance pass. The bound is the backpressure mechanism:
// when maintenance falls behind the arrival rate the ring fills, Enqueue
// reports ErrFull, and the ingest layer surfaces 429 + Retry-After
// instead of buffering without limit.
package eventq

import (
	"errors"
	"sync"
)

// Errors returned by Enqueue.
var (
	// ErrFull means the ring is at capacity: the consumer is behind.
	// Retryable — capacity frees as soon as the consumer drains.
	ErrFull = errors.New("eventq: queue full")
	// ErrClosed means the queue was closed; no further events are
	// accepted. Not retryable.
	ErrClosed = errors.New("eventq: queue closed")
)

// Queue is a bounded MPSC ring buffer with burst draining. Any number of
// goroutines may Enqueue; one consumer calls Drain in a loop. All methods
// are safe for concurrent use (a single mutex guards the ring — events
// are small and drains move whole bursts, so the critical sections stay
// short).
//
// The zero Queue is not ready; use New.
type Queue[T any] struct {
	mu     sync.Mutex
	nonEmp sync.Cond // signaled when the ring gains an element or closes
	buf    []T
	head   int // index of the oldest element
	n      int // number of elements
	closed bool
}

// New returns a queue holding at most capacity elements. It panics if
// capacity < 1.
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		panic("eventq: capacity must be at least 1")
	}
	q := &Queue[T]{buf: make([]T, capacity)}
	q.nonEmp.L = &q.mu
	return q
}

// Cap returns the queue's fixed capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// Enqueue appends ev to the ring. It never blocks: when the ring is at
// capacity it returns ErrFull immediately (the caller's backpressure
// signal), and after Close it returns ErrClosed.
func (q *Queue[T]) Enqueue(ev T) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.n == len(q.buf) {
		return ErrFull
	}
	q.buf[(q.head+q.n)%len(q.buf)] = ev
	q.n++
	if q.n == 1 {
		q.nonEmp.Signal()
	}
	return nil
}

// Drain blocks until at least one element is queued (or the queue is
// closed), then removes and returns the entire accumulated burst in
// arrival order, appended to dst. The second result is false only when
// the queue is closed AND empty — the consumer's signal to exit after it
// has applied everything. Drain is written for a single consumer; the
// burst semantics (everything since the last visit, in order) are only
// meaningful with one drainer.
func (q *Queue[T]) Drain(dst []T) ([]T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.nonEmp.Wait()
	}
	if q.n == 0 {
		return dst, false
	}
	var zero T
	for i := 0; i < q.n; i++ {
		j := (q.head + i) % len(q.buf)
		dst = append(dst, q.buf[j])
		q.buf[j] = zero // release references held by vacated slots
	}
	q.head, q.n = 0, 0
	return dst, true
}

// Close stops the queue: subsequent Enqueues fail with ErrClosed, while
// Drain keeps returning queued elements until the ring is empty and then
// reports done. Closing twice is a no-op.
func (q *Queue[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.closed = true
	q.nonEmp.Broadcast()
}
