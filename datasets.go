package mir

import (
	"fmt"
	"math/rand"
	"os"

	"mir/internal/data"
	"mir/internal/geom"
	"mir/internal/topk"
)

// ProductDist selects a synthetic product distribution (the standard
// benchmark families of the multi-criteria literature).
type ProductDist int

const (
	// Independent: i.i.d. uniform attributes (IND).
	Independent ProductDist = iota
	// Correlated: attributes positively correlated (COR).
	Correlated
	// AntiCorrelated: attributes trade off against each other (ANTI).
	AntiCorrelated
)

// UserDist selects a synthetic preference distribution.
type UserDist int

const (
	// Clustered: five Gaussian preference clusters (CL, the paper's
	// default user workload).
	Clustered UserDist = iota
	// Uniform: weights uniform on the simplex (UN).
	Uniform
)

// SynthProducts generates n synthetic products with d attributes in
// [0,1], reproducibly from the seed.
func SynthProducts(dist ProductDist, n, d int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	var ps []geom.Vector
	switch dist {
	case Correlated:
		ps = data.Correlated(rng, n, d)
	case AntiCorrelated:
		ps = data.AntiCorrelated(rng, n, d)
	default:
		ps = data.Independent(rng, n, d)
	}
	return toFloats(ps)
}

// SynthUsers generates n synthetic users with d-dimensional simplex
// weights and the given k, reproducibly from the seed.
func SynthUsers(dist UserDist, n, d, k int, seed int64) []User {
	rng := rand.New(rand.NewSource(seed))
	var ws []geom.Vector
	switch dist {
	case Uniform:
		ws = data.UniformUsers(rng, n, d)
	default:
		ws = data.ClusteredUsers(rng, n, d, 5, 0.05)
	}
	us := make([]User, n)
	for i, w := range ws {
		us[i] = User{Weights: w, K: k}
	}
	return us
}

// TripAdvisorLike generates a hotel-market dataset modeled on the paper's
// TripAdvisor case study: nHotels hotels rated on seven aspects (value,
// room, location, cleanliness, front desk, service, business service) and
// nUsers preference vectors with the skewed, archetype-clustered shape of
// weights mined from review text. See DESIGN.md for how this stands in
// for the original (non-redistributable) dataset.
func TripAdvisorLike(nHotels, nUsers, k int, seed int64) ([][]float64, []User) {
	rng := rand.New(rand.NewSource(seed))
	ps, ws := data.TripAdvisor(rng, nHotels, nUsers)
	return toFloats(ps), withK(ws, k)
}

// TripAdvisorAspects names the seven rating aspects, in attribute order.
func TripAdvisorAspects() []string {
	return []string{"value", "room", "location", "cleanliness", "front desk", "service", "business service"}
}

// TripAdvisorLikePair generates the TA-like dataset restricted to two
// chosen aspects (by index into TripAdvisorAspects), with user weights
// renormalized — the construction behind the paper's Figure 7 case study.
func TripAdvisorLikePair(nHotels, nUsers, k int, aspectA, aspectB int, seed int64) ([][]float64, []User, error) {
	if aspectA < 0 || aspectA >= data.TripAdvisorDims || aspectB < 0 || aspectB >= data.TripAdvisorDims || aspectA == aspectB {
		return nil, nil, fmt.Errorf("mir: invalid aspect pair (%d, %d)", aspectA, aspectB)
	}
	rng := rand.New(rand.NewSource(seed))
	ps, ws := data.TripAdvisorProjected(rng, nHotels, nUsers, []int{aspectA, aspectB})
	return toFloats(ps), withK(ws, k), nil
}

func toFloats(vs []geom.Vector) [][]float64 {
	out := make([][]float64, len(vs))
	for i, v := range vs {
		out[i] = v
	}
	return out
}

func withK(ws []geom.Vector, k int) []User {
	us := make([]User, len(ws))
	for i, w := range ws {
		us[i] = User{Weights: w, K: k}
	}
	return us
}

// LoadProductsCSV reads a product catalog from a CSV file: one product
// per row, one attribute per column, values in [0,1].
func LoadProductsCSV(path string) ([][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	defer f.Close()
	vs, err := data.ReadVectors(f)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return toFloats(vs), nil
}

// LoadUsersCSV reads a user population from a CSV file: one user per row,
// the first column the user's k, the remaining columns simplex weights.
func LoadUsersCSV(path string) ([]User, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	defer f.Close()
	prefs, err := data.ReadUsers(f)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	us := make([]User, len(prefs))
	for i, p := range prefs {
		us[i] = User{Weights: p.W, K: p.K}
	}
	return us, nil
}

// SaveProductsCSV writes a product catalog to a CSV file.
func SaveProductsCSV(path string, products [][]float64) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mir: %w", err)
	}
	defer f.Close()
	vs := make([]geom.Vector, len(products))
	for i, p := range products {
		vs[i] = geom.Vector(p)
	}
	if err := data.WriteVectors(f, vs); err != nil {
		return fmt.Errorf("mir: %w", err)
	}
	return nil
}

// SaveUsersCSV writes a user population to a CSV file.
func SaveUsersCSV(path string, users []User) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mir: %w", err)
	}
	defer f.Close()
	prefs := make([]topk.UserPref, len(users))
	for i, u := range users {
		prefs[i] = topk.UserPref{W: geom.Vector(u.Weights), K: u.K}
	}
	if err := data.WriteUsers(f, prefs); err != nil {
		return fmt.Errorf("mir: %w", err)
	}
	return nil
}
