// Command quickstart walks through the core mir API on a small
// two-dimensional market, mirroring the worked example of the paper's
// Figure 1: a handful of products, a handful of users with personal top-k
// sizes, and the m-impact region that results.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mir"
)

func main() {
	// A toy market: products rated on (value, service), higher is better.
	products := [][]float64{
		{0.20, 0.80}, // boutique: great service, pricey
		{0.45, 0.70},
		{0.60, 0.60}, // balanced mid-market
		{0.80, 0.40},
		{0.90, 0.15}, // budget champion
		{0.30, 0.30}, // dominated straggler
		{0.55, 0.35},
	}
	// Four users with different value/service trade-offs and personal k.
	users := []mir.User{
		{Weights: []float64{0.2, 0.8}, K: 1}, // service seeker
		{Weights: []float64{0.4, 0.6}, K: 2},
		{Weights: []float64{0.6, 0.4}, K: 2},
		{Weights: []float64{0.8, 0.2}, K: 1}, // bargain hunter
	}

	const m = 3 // want to be in the top-k of at least 3 of the 4 users

	region, err := mir.ImpactRegion(products, users, m)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("m-impact region for m=%d:\n", m)
	fmt.Printf("  cells: %d   area: %.4f of the product space\n",
		region.NumCells(), region.Area())

	// Probe a few hypothetical products.
	an, err := mir.NewAnalyzer(products, users, nil)
	if err != nil {
		log.Fatal(err)
	}
	probes := [][]float64{
		{0.95, 0.95}, // near-perfect product
		{0.70, 0.70},
		{0.50, 0.50},
		{0.20, 0.20}, // weak product
	}
	fmt.Println("\nhypothetical placements:")
	for _, p := range probes {
		fmt.Printf("  value=%.2f service=%.2f -> covers %d users, in region: %v\n",
			p[0], p[1], an.Coverage(p), region.Contains(p))
	}

	// Where is the cheapest position that still covers m users?
	placement, err := an.CostOptimal(m, mir.L2())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncheapest influential product (CO, L2 cost):\n")
	fmt.Printf("  value=%.3f service=%.3f  cost=%.3f  covers %d users\n",
		placement.Point[0], placement.Point[1], placement.Cost, placement.Coverage)

	// Inspect the region's convex cells.
	fmt.Println("\nregion cells (bounding boxes):")
	for i, cell := range region.Cells() {
		lo, hi := cell.BoundingBox()
		fmt.Printf("  cell %d: value [%.2f, %.2f] x service [%.2f, %.2f]\n",
			i, lo[0], hi[0], lo[1], hi[1])
	}
}
