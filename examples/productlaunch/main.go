// Command productlaunch demonstrates the standing top-k influence
// problems on a product-design scenario: a manufacturer planning a new
// product wants (a) the cheapest attribute configuration that lands in
// the top-k of a target fraction of the market (CO), and (b) the most
// influential configuration achievable within a fixed design budget
// (budgeted CO). Costs are modeled per-attribute: some attributes are
// more expensive to provide than others.
//
// Run with:
//
//	go run ./examples/productlaunch [-products 2000] [-users 300] [-m 120]
package main

import (
	"flag"
	"fmt"
	"log"

	"mir"
)

func main() {
	nP := flag.Int("products", 2000, "existing products on the market")
	nU := flag.Int("users", 150, "user population")
	d := flag.Int("d", 3, "product attributes")
	k := flag.Int("k", 10, "top-k size")
	m := flag.Int("m", 60, "coverage target (users)")
	seed := flag.Int64("seed", 7, "dataset seed")
	flag.Parse()

	products := mir.SynthProducts(mir.Independent, *nP, *d, *seed)
	users := mir.SynthUsers(mir.Clustered, *nU, *d, *k, *seed+1)

	an, err := mir.NewAnalyzer(products, users, nil)
	if err != nil {
		log.Fatal(err)
	}
	groups, avg := an.Groups()
	fmt.Printf("market: %d products, %d users (%d preference groups, avg %.1f users each)\n\n",
		an.NumProducts(), an.NumUsers(), groups, avg)

	// (a) Cheapest influential design, under three cost models.
	fmt.Printf("cheapest design covering at least %d users:\n", *m)
	weighted, err := mir.WeightedL2([]float64{3, 1, 1}) // attribute 0 costs 3x
	if err != nil {
		log.Fatal(err)
	}
	for _, cost := range []mir.CostModel{mir.L2(), mir.L1(), weighted} {
		pl, err := an.CostOptimalFast(*m, cost)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s cost %.4f at %s  (covers %d users)\n",
			cost.Name()+":", pl.Cost, fmtVec(pl.Point), pl.Coverage)
	}

	// (b) Most influential design within a budget sweep.
	fmt.Println("\nmaximum influence by design budget (L2 cost):")
	for _, budget := range []float64{1.2, 1.4, 1.6} {
		pl, err := an.BudgetedCostOptimal(budget, mir.L2())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %.1f -> covers %3d/%d users  (spent %.3f at %s)\n",
			budget, pl.Coverage, an.NumUsers(), pl.Cost, fmtVec(pl.Point))
	}

	// Context: how big is the viable region for the coverage target?
	region, err := an.ImpactRegion(*m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe m=%d impact region consists of %d convex cells\n", *m, region.NumCells())
	fmt.Printf("(computation: %d arrangement cells, %d geometric tests, %d fast tests)\n",
		region.Stats().Cells, region.Stats().ContainmentTests, region.Stats().FastTests)
}

func fmtVec(v []float64) string {
	s := "("
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + ")"
}
