// Command livecampaign demonstrates incremental maintenance of an
// m-impact region over a dynamic user population (the paper's future-work
// scenario): an ad platform tracks, in real time, where in the product
// space a promoted offer must sit to reach at least m of the users
// currently online, as users keep arriving and leaving.
//
// Run with:
//
//	go run ./examples/livecampaign [-products 1500] [-users 120] [-events 20]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"mir"
)

func main() {
	nP := flag.Int("products", 1500, "products on the market")
	nU := flag.Int("users", 120, "initially online users")
	events := flag.Int("events", 20, "arrival/departure events to simulate")
	mFrac := flag.Float64("m", 0.4, "coverage target as a fraction of the initial population")
	seed := flag.Int64("seed", 99, "simulation seed")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	products := mir.SynthProducts(mir.Independent, *nP, 3, *seed)
	users := mir.SynthUsers(mir.Clustered, *nU, 3, 10, *seed+1)
	m := int(*mFrac * float64(*nU))

	start := time.Now()
	mo, err := mir.NewMonitor(products, users, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial region for m=%d over %d online users: %d cells (%.2fs)\n\n",
		m, mo.NumUsers(), mo.Region().NumCells(), time.Since(start).Seconds())

	// The offer the campaign would promote: track whether it stays viable.
	offer := []float64{0.92, 0.88, 0.95}
	fmt.Printf("campaign offer at (%.2f, %.2f, %.2f)\n\n", offer[0], offer[1], offer[2])

	online := make(map[int]bool, *nU)
	for i := 0; i < *nU; i++ {
		online[i] = true
	}
	for ev := 0; ev < *events; ev++ {
		var action string
		t0 := time.Now()
		if rng.Intn(2) == 0 || len(online) <= m {
			// A user comes online with fresh preferences.
			w := mir.SynthUsers(mir.Uniform, 1, 3, 1+rng.Intn(20), rng.Int63())[0]
			h, err := mo.UserArrived(w)
			if err != nil {
				log.Fatal(err)
			}
			online[h] = true
			action = fmt.Sprintf("user %3d arrived (k=%d)", h, w.K)
		} else {
			var victim int
			n := rng.Intn(len(online))
			for h := range online {
				if n == 0 {
					victim = h
					break
				}
				n--
			}
			delete(online, victim)
			if err := mo.UserDeparted(victim); err != nil {
				log.Fatal(err)
			}
			action = fmt.Sprintf("user %3d departed     ", victim)
		}
		reg := mo.Region()
		fmt.Printf("event %2d: %s | online %3d | region %5d cells | offer reaches %3d (in region: %-5v) | %6.0fms\n",
			ev+1, action, mo.NumUsers(), reg.NumCells(),
			mo.Coverage(offer), reg.Contains(offer),
			time.Since(t0).Seconds()*1000)
	}

	fmt.Printf("\neach event reuses the maintained arrangement instead of recomputing the region\n")
	fmt.Printf("from scratch (%.2fs for the initial computation).\n", time.Since(start).Seconds())
}
