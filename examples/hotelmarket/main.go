// Command hotelmarket reproduces the paper's TripAdvisor case study
// (Figure 7) on the TA-like synthetic dataset: it computes the m-impact
// region of a hotel market in a chosen pair of rating aspects, renders it
// as ASCII art, and reports which hotels already sit inside the hottest
// part of the market.
//
// Run with:
//
//	go run ./examples/hotelmarket [-hotels 400] [-users 2000] [-m 0.5]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"mir"
)

func main() {
	nHotels := flag.Int("hotels", 400, "number of hotels")
	nUsers := flag.Int("users", 2000, "number of users (review-mined preferences)")
	k := flag.Int("k", 10, "top-k size per user")
	mFrac := flag.Float64("m", 0.5, "coverage target as a fraction of the users")
	aspectA := flag.Int("a", 1, "first aspect index (see list below)")
	aspectB := flag.Int("b", 2, "second aspect index")
	seed := flag.Int64("seed", 42, "dataset seed")
	flag.Parse()

	aspects := mir.TripAdvisorAspects()
	hotels, users, err := mir.TripAdvisorLikePair(*nHotels, *nUsers, *k, *aspectA, *aspectB, *seed)
	if err != nil {
		log.Fatal(err)
	}
	m := int(*mFrac * float64(len(users)))
	if m < 1 {
		m = 1
	}
	fmt.Printf("market: %d hotels, %d users, k=%d, aspects %q x %q, m=%d\n\n",
		len(hotels), len(users), *k, aspects[*aspectA], aspects[*aspectB], m)

	region, err := mir.ImpactRegion(hotels, users, m)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("m-impact region: %d cells, %.4f%% of the rating space\n\n",
		region.NumCells(), 100*region.Area())

	// ASCII rendering of the top corner of the rating space, as in the
	// paper's figure: '#' = inside the region, '*' = a hotel inside,
	// 'o' = a hotel outside. The window adapts to where the region lives.
	const grid = 36
	window := 0.8
	for _, cell := range region.Cells() {
		lo, _ := cell.BoundingBox()
		for _, x := range lo {
			if x-0.05 < window {
				window = x - 0.05
			}
		}
	}
	if window < 0 {
		window = 0
	}
	canvas := make([][]byte, grid)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(".", grid))
		for c := 0; c < grid; c++ {
			x := window + (1-window)*(float64(c)+0.5)/grid
			y := window + (1-window)*(float64(grid-1-r)+0.5)/grid
			if region.Contains([]float64{x, y}) {
				canvas[r][c] = '#'
			}
		}
	}
	insideCount := 0
	for _, h := range hotels {
		if h[0] < window || h[1] < window {
			continue
		}
		c := int((h[0] - window) / (1 - window) * grid)
		r := grid - 1 - int((h[1]-window)/(1-window)*grid)
		if c >= grid {
			c = grid - 1
		}
		if r < 0 {
			r = 0
		}
		if region.Contains(h) {
			canvas[r][c] = '*'
			insideCount++
		} else {
			canvas[r][c] = 'o'
		}
	}
	fmt.Printf("the [%.1f,1]^2 corner of %s x %s space ('#': region, '*': hotel in region, 'o': hotel outside):\n\n",
		window, aspects[*aspectA], aspects[*aspectB])
	for _, row := range canvas {
		fmt.Printf("  %s\n", row)
	}

	total := 0
	for _, h := range hotels {
		if region.Contains(h) {
			total++
		}
	}
	fmt.Printf("\n%d of %d hotels are already inside the m-impact region —\n", total, len(hotels))
	fmt.Printf("these are the hotels competing for the attention of at least %d users.\n", m)

	// A travel agency exploring the market would re-run for several m.
	fmt.Println("\nexploratory sweep (area of the hottest region by coverage target):")
	an, err := mir.NewAnalyzer(hotels, users, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		mm := int(frac * float64(len(users)))
		if mm < 1 {
			mm = 1
		}
		reg, err := an.ImpactRegion(mm)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  m=%4.0f%% of users: area %.6f, %d cells\n",
			100*frac, reg.Area(), reg.NumCells())
	}
}
