// Command upgrade demonstrates the improvement-strategies problems on a
// hotel-renovation scenario: a hotel manager with a renovation budget
// asks which aspects to improve to appear in as many travellers' top-k
// shortlists as possible (IS), and what the cheapest renovation reaching
// a fixed popularity target would be (thresholded IS).
//
// Run with:
//
//	go run ./examples/upgrade [-hotels 300] [-users 150] [-budget 0.3]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"mir"
)

func main() {
	nHotels := flag.Int("hotels", 300, "hotels on the market")
	nUsers := flag.Int("users", 150, "traveller population")
	k := flag.Int("k", 10, "shortlist size")
	budget := flag.Float64("budget", 0.3, "renovation budget (L2 units)")
	target := flag.Int("target", 0, "coverage target for the cheapest-upgrade query (default: users/3)")
	seed := flag.Int64("seed", 11, "dataset seed")
	flag.Parse()

	// A 3-aspect market (e.g. value, rooms, service) so the trade-offs are
	// easy to read.
	hotels := mir.SynthProducts(mir.Independent, *nHotels, 3, *seed)
	users := mir.SynthUsers(mir.Clustered, *nUsers, 3, *k, *seed+1)
	if *target == 0 {
		*target = *nUsers / 3
	}

	// Pick a struggling hotel: the one with the lowest current coverage
	// among a sample.
	an, err := mir.NewAnalyzer(hotels, users, nil)
	if err != nil {
		log.Fatal(err)
	}
	type cand struct{ idx, cov int }
	cands := make([]cand, 0, 50)
	for i := 0; i < 50; i++ {
		cands = append(cands, cand{i, an.Coverage(hotels[i])})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].cov < cands[b].cov })
	h := cands[0].idx
	fmt.Printf("struggling hotel #%d at %s currently shortlisted by ~%d of %d travellers\n\n",
		h, fmtVec(hotels[h]), cands[0].cov, *nUsers)

	// IS: best renovation within budget.
	up, err := mir.Improve(hotels, users, h, *budget, mir.L2())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best renovation within budget %.2f:\n", *budget)
	fmt.Printf("  move to %s (spend %.3f)\n", fmtVec(up.Point), up.Cost)
	fmt.Printf("  shortlists: %d -> %d travellers\n\n", up.BaseCoverage, up.Coverage)
	printDelta(hotels[h], up.Point)

	// Budget sweep: diminishing returns become visible.
	fmt.Println("\ncoverage reachable by renovation budget:")
	for _, b := range []float64{0.1, 0.2, 0.4, 0.8} {
		u, err := mir.Improve(hotels, users, h, b, mir.L2())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  budget %.1f -> %3d travellers (spend %.3f)\n", b, u.Coverage, u.Cost)
	}

	// Thresholded IS: cheapest way to a popularity target.
	cheap, err := mir.CheapestUpgrade(hotels, users, h, *target, mir.L2())
	if err != nil {
		fmt.Printf("\nno renovation reaches %d travellers: %v\n", *target, err)
		return
	}
	fmt.Printf("\ncheapest renovation reaching %d travellers: spend %.3f to move to %s (covers %d)\n",
		*target, cheap.Cost, fmtVec(cheap.Point), cheap.Coverage)
}

func printDelta(from, to []float64) {
	aspects := []string{"value", "rooms", "service"}
	fmt.Println("  per-aspect plan:")
	for i := range from {
		d := to[i] - from[i]
		bar := ""
		for j := 0; j < int(d*40); j++ {
			bar += "+"
		}
		fmt.Printf("    %-8s %.3f -> %.3f  %s\n", aspects[i], from[i], to[i], bar)
	}
}

func fmtVec(v []float64) string {
	s := "("
	for i, x := range v {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.3f", x)
	}
	return s + ")"
}
