package mir

import (
	"mir/internal/core"
	"mir/internal/geom"
)

// Region is an m-impact region: a union of convex cells in product space.
// Any point inside covers at least M users; any point outside covers
// fewer (the region is maximal).
type Region struct {
	reg *core.Region
}

func newRegion(reg *core.Region) *Region { return &Region{reg: reg} }

// M returns the coverage threshold the region was computed for.
func (r *Region) M() int { return r.reg.M }

// Dim returns the dimensionality of the product space.
func (r *Region) Dim() int { return r.reg.Dim }

// Contains reports whether the given attribute vector lies in the region,
// i.e. whether a product there would cover at least M users.
func (r *Region) Contains(point []float64) bool {
	return r.reg.Contains(geom.Vector(point))
}

// NumCells returns the number of convex cells forming the region.
func (r *Region) NumCells() int { return len(r.reg.Cells) }

// ShardCells returns the arrangement-cell count each shard of a
// space-sharded build created, in shard-ID order, or nil for single-tree
// runs. Deterministic for a fixed shard count; the total/max ratio is the
// parallel-speedup bound the shard decomposition admits.
func (r *Region) ShardCells() []int {
	return append([]int(nil), r.reg.ShardCells...)
}

// IsEmpty reports whether the region is empty (possible only in
// restricted search boxes; over the full product space the top corner
// always covers every user).
func (r *Region) IsEmpty() bool { return r.reg.IsEmpty() }

// Area returns the region's area for two-dimensional product spaces; it
// panics for other dimensionalities.
func (r *Region) Area() float64 { return r.reg.Area2D() }

// Cell describes one convex piece of the region.
type Cell struct {
	poly *geom.Polytope
	lo   geom.Vector
	hi   geom.Vector
}

// Cells returns the region's convex cells.
func (r *Region) Cells() []Cell {
	out := make([]Cell, len(r.reg.Cells))
	for i, c := range r.reg.Cells {
		out[i] = Cell{poly: c}
		if r.reg.MBBs != nil {
			out[i].lo = r.reg.MBBs[i][0]
			out[i].hi = r.reg.MBBs[i][1]
		}
	}
	return out
}

// Constraint is one linear face of a cell: the halfspace W·x >= T.
type Constraint struct {
	W []float64
	T float64
}

// Constraints returns the halfspaces whose intersection forms the cell
// (the H-representation; some constraints may be redundant).
func (c Cell) Constraints() []Constraint {
	out := make([]Constraint, len(c.poly.Hs))
	for i, h := range c.poly.Hs {
		out[i] = Constraint{W: h.W, T: h.T}
	}
	return out
}

// Contains reports whether the point lies in this cell.
func (c Cell) Contains(point []float64) bool {
	return c.poly.ContainsPoint(geom.Vector(point))
}

// BoundingBox returns the cell's minimum bounding box corners, or nil
// slices when unavailable.
func (c Cell) BoundingBox() (lo, hi []float64) { return c.lo, c.hi }

// AnyPoint returns some point of the cell (ok=false if the cell is
// numerically empty).
func (c Cell) AnyPoint() (point []float64, ok bool) {
	p, ok := c.poly.FeasiblePoint()
	return p, ok
}

// Stats exposes the work counters of the computation that produced the
// region (cells created, splits, geometric tests, early decisions).
type Stats struct {
	Cells            int
	Splits           int
	ContainmentTests int
	FastTests        int
	Reported         int
	Eliminated       int
	EarlyReported    int
	EarlyEliminated  int
	Iterations       int
	// Pivots, WarmHits, WarmMisses, and ColdSolves aggregate the simplex
	// solvers' effort across the run's classification, redundancy, and
	// convex-hull LPs. Pivots is the cost metric of the warm-start
	// optimization: it drops when solves re-enter parent-cell bases
	// (Options.DisableWarmStart selects the cold path) while every other
	// counter — and the region itself — stays identical.
	Pivots     int64
	WarmHits   int64
	WarmMisses int64
	ColdSolves int64
	// ScannedProducts and LayerPrunes profile the layered all-top-k
	// index behind the preprocessing and the Monitor's arrival path:
	// product rows actually scored, and index blocks (the layers' bound
	// granules) skipped whole by the threshold bound. IndexPatches and IndexRebuilds count the index's
	// incremental product-dynamics operations. All four are zero when
	// Options.DisableTopKIndex selected the scan paths, and — like the
	// counters above — deterministic for every worker count.
	ScannedProducts int64
	LayerPrunes     int64
	IndexPatches    int64
	IndexRebuilds   int64
	// RoutedLeaves, SkippedSubtrees, and TouchedFrontier profile the
	// Monitor's routed incremental maintenance (zero outside maintained
	// runs): leaves actually visited by event application, subtrees (or
	// single leaves) skipped whole because the routing bounds proved no
	// decision below could flip, and leaves bucketed for re-verification.
	// RoutedLeaves per event is the locality metric of the routing
	// optimization: it collapses when routing is on (Options.DisableRouting
	// selects the historical every-leaf sweep) while the maintained region
	// stays byte-identical. All three merge by summation and are
	// deterministic for every worker count.
	RoutedLeaves    int
	SkippedSubtrees int
	TouchedFrontier int
	// CountDesyncs counts user removals the maintained arrangement could
	// not account for: the departing user was neither pending nor cleanly
	// classified on some leaf. It must stay zero; a nonzero value signals
	// cell counts drifting from the alive population.
	CountDesyncs int64
	// ShardHalfspaces and PrescreenedOut profile the space-sharded build
	// (zero on single-tree runs). Summed over shards: PrescreenedOut
	// counts halfspaces the banded box-corner prescreen absorbed at a
	// shard root (their boundary provably misses the shard box), and
	// ShardHalfspaces counts the survivors that entered the shard's
	// pending views. Their sum is Shards × |U|; both are deterministic
	// for a fixed shard count.
	ShardHalfspaces int64
	PrescreenedOut  int64
	// StealCount and MaxFrontier profile the task-parallel frontier
	// scheduler (zero for sequential runs). Unlike the counters above they
	// are scheduling-sensitive: they vary run to run at Workers > 1.
	StealCount  int
	MaxFrontier int
	// DispatchedShards, RespawnedWorkers, FallbackInProcess, and
	// ShippedBytes profile the multi-process shard executor (all zero on
	// in-process builds): shard fragments computed in worker processes,
	// workers respawned after a crash or timeout, shards that fell back
	// to an in-process build after retries were exhausted, and total
	// frame bytes shipped to workers. Transport counters: excluded from
	// the executor byte-identity contract, like StealCount/MaxFrontier.
	DispatchedShards  int
	RespawnedWorkers  int
	FallbackInProcess int
	ShippedBytes      int64
}

// Stats returns the computation counters.
func (r *Region) Stats() Stats {
	s := r.reg.Stats
	return Stats{
		Cells:            s.Cells,
		Splits:           s.Splits,
		ContainmentTests: s.ContainmentTests,
		FastTests:        s.FastTests,
		Reported:         s.Reported,
		Eliminated:       s.Eliminated,
		EarlyReported:    s.EarlyReported,
		EarlyEliminated:  s.EarlyEliminated,
		Iterations:       s.Iterations,
		Pivots:           s.Pivots,
		WarmHits:         s.WarmHits,
		WarmMisses:       s.WarmMisses,
		ColdSolves:       s.ColdSolves,
		ScannedProducts:  s.ScannedProducts,
		LayerPrunes:      s.LayerPrunes,
		IndexPatches:     s.IndexPatches,
		IndexRebuilds:    s.IndexRebuilds,
		RoutedLeaves:     s.RoutedLeaves,
		SkippedSubtrees:  s.SkippedSubtrees,
		TouchedFrontier:  s.TouchedFrontier,
		CountDesyncs:     s.CountDesyncs,
		ShardHalfspaces:  s.ShardHalfspaces,
		PrescreenedOut:   s.PrescreenedOut,
		StealCount:       s.StealCount,
		MaxFrontier:      s.MaxFrontier,

		DispatchedShards:  s.DispatchedShards,
		RespawnedWorkers:  s.RespawnedWorkers,
		FallbackInProcess: s.FallbackInProcess,
		ShippedBytes:      s.ShippedBytes,
	}
}

// SchedStats describes how the task-parallel frontier executed: worker
// count, steal traffic, frontier width, and the per-worker cell load.
// Every field except Workers varies run to run — the scheduler promises
// identical results, not identical schedules.
type SchedStats struct {
	Workers        int
	Steals         int
	MaxFrontier    int
	PerWorkerCells []int
}

// Sched returns the frontier scheduler's execution profile, or nil when
// the region was computed sequentially.
func (r *Region) Sched() *SchedStats {
	s := r.reg.Sched
	if s == nil {
		return nil
	}
	per := append([]int(nil), s.PerWorkerCells...)
	return &SchedStats{Workers: s.Workers, Steals: s.Steals, MaxFrontier: s.MaxFrontier, PerWorkerCells: per}
}
