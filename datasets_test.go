package mir

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestSynthGenerators(t *testing.T) {
	for _, pd := range []ProductDist{Independent, Correlated, AntiCorrelated} {
		ps := SynthProducts(pd, 200, 3, 7)
		if len(ps) != 200 {
			t.Fatalf("dist %d: got %d products", pd, len(ps))
		}
		for _, p := range ps {
			if len(p) != 3 {
				t.Fatal("wrong dimensionality")
			}
			for _, x := range p {
				if x < 0 || x > 1 {
					t.Fatalf("attribute %g out of range", x)
				}
			}
		}
		// Determinism by seed.
		again := SynthProducts(pd, 200, 3, 7)
		for i := range ps {
			for j := range ps[i] {
				if ps[i][j] != again[i][j] {
					t.Fatal("generation not deterministic")
				}
			}
		}
	}
	for _, ud := range []UserDist{Clustered, Uniform} {
		us := SynthUsers(ud, 100, 4, 6, 9)
		if len(us) != 100 {
			t.Fatalf("user dist %d: got %d", ud, len(us))
		}
		for _, u := range us {
			if u.K != 6 || len(u.Weights) != 4 {
				t.Fatal("user shape wrong")
			}
			s := 0.0
			for _, w := range u.Weights {
				if w < 0 {
					t.Fatal("negative weight")
				}
				s += w
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("weights sum to %g", s)
			}
		}
	}
}

func TestTripAdvisorLikeAPI(t *testing.T) {
	ps, us := TripAdvisorLike(120, 300, 10, 5)
	if len(ps) != 120 || len(us) != 300 {
		t.Fatalf("cardinalities %d/%d", len(ps), len(us))
	}
	if len(ps[0]) != 7 || len(us[0].Weights) != 7 {
		t.Fatal("TA data must have 7 aspects")
	}
	if len(TripAdvisorAspects()) != 7 {
		t.Fatal("aspect list wrong")
	}

	p2, u2, err := TripAdvisorLikePair(80, 100, 5, 1, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(p2[0]) != 2 || len(u2[0].Weights) != 2 {
		t.Fatal("pair projection wrong")
	}
	if _, _, err := TripAdvisorLikePair(80, 100, 5, 3, 3, 5); err == nil {
		t.Error("identical aspects accepted")
	}
	if _, _, err := TripAdvisorLikePair(80, 100, 5, -1, 2, 5); err == nil {
		t.Error("negative aspect accepted")
	}
	if _, _, err := TripAdvisorLikePair(80, 100, 5, 0, 9, 5); err == nil {
		t.Error("out-of-range aspect accepted")
	}
}

func TestCSVRoundTripAPI(t *testing.T) {
	dir := t.TempDir()
	pPath := filepath.Join(dir, "p.csv")
	uPath := filepath.Join(dir, "u.csv")

	ps := SynthProducts(Independent, 40, 3, 1)
	us := SynthUsers(Clustered, 25, 3, 4, 2)
	if err := SaveProductsCSV(pPath, ps); err != nil {
		t.Fatal(err)
	}
	if err := SaveUsersCSV(uPath, us); err != nil {
		t.Fatal(err)
	}
	psBack, err := LoadProductsCSV(pPath)
	if err != nil {
		t.Fatal(err)
	}
	usBack, err := LoadUsersCSV(uPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(psBack) != len(ps) || len(usBack) != len(us) {
		t.Fatal("round trip lost rows")
	}
	for i := range ps {
		for j := range ps[i] {
			if ps[i][j] != psBack[i][j] {
				t.Fatal("product value changed in round trip")
			}
		}
	}
	for i := range us {
		if us[i].K != usBack[i].K {
			t.Fatal("user k changed in round trip")
		}
		for j := range us[i].Weights {
			if us[i].Weights[j] != usBack[i].Weights[j] {
				t.Fatal("user weight changed in round trip")
			}
		}
	}

	if _, err := LoadProductsCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := LoadUsersCSV(filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("missing users file accepted")
	}
	if err := os.WriteFile(pPath, []byte("a,b\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadProductsCSV(pPath); err == nil {
		t.Error("malformed CSV accepted")
	}
}

func TestCostModelNamesAndEval(t *testing.T) {
	if L2().Name() != "L2" || L1().Name() != "L1" {
		t.Error("cost names wrong")
	}
	w, err := WeightedL2([]float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "weighted-L2" {
		t.Error("weighted name wrong")
	}
	if got := L1().Eval([]float64{0.3, 0.4}); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("L1 eval = %g", got)
	}
	if got := L2().Eval([]float64{0.3, 0.4}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("L2 eval = %g", got)
	}
	if got := w.Eval([]float64{0.3, 0.4}); math.Abs(got-0.5*math.Sqrt2) > 1e-9 {
		t.Errorf("weighted eval = %g", got)
	}
}

func TestCostOptimalFastAPI(t *testing.T) {
	ps := SynthProducts(Independent, 300, 3, 11)
	us := SynthUsers(Clustered, 20, 3, 5, 12)
	a, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := a.CostOptimalFast(10, L2())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := a.CostOptimal(10, L2())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fast.Cost-slow.Cost) > 1e-5 {
		t.Errorf("fast %g vs slow %g", fast.Cost, slow.Cost)
	}
	if fast.Coverage < 10 {
		t.Errorf("coverage %d < 10", fast.Coverage)
	}
	if _, err := a.CostOptimalFast(0, L2()); err == nil {
		t.Error("m=0 accepted")
	}
}
