package mir

import (
	"fmt"

	"mir/internal/core"
	"mir/internal/geom"
	"mir/internal/topk"
)

// Monitor keeps an m-impact region continuously up to date while users
// arrive and depart — the dynamic-population scenario the paper sketches
// as future work (e.g. "users currently online" for real-time
// advertising). Rather than recomputing on every change, it retains the
// computed arrangement and re-examines only the cells whose decision the
// change can affect.
//
// A Monitor is not safe for concurrent use.
type Monitor struct {
	mt  *core.Maintainer
	dim int
}

// NewMonitor computes the initial m-impact region for the product catalog
// and user population and prepares for incremental updates.
//
// The inputs are deep-copied: callers may mutate or reuse their slices
// after NewMonitor returns without corrupting the Monitor.
func NewMonitor(products [][]float64, users []User, m int) (*Monitor, error) {
	return NewMonitorOptions(products, users, m, nil)
}

// NewMonitorOptions is NewMonitor with algorithm options. The computed
// region is identical for every Options.Workers setting — the incremental
// updates run through the same deterministic task-parallel frontier as
// full computations — so the knob trades only latency for cores.
func NewMonitorOptions(products [][]float64, users []User, m int, opts *Options) (*Monitor, error) {
	ps, us := convert(products, users)
	co := opts.toCore()
	inst, err := core.NewInstanceOpts(ps, us, co)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	if err := inst.CheckM(m); err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	mt, err := core.NewMaintainer(inst, m, co)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return &Monitor{mt: mt, dim: inst.Dim}, nil
}

// Region returns the current m-impact region.
func (mo *Monitor) Region() *Region { return newRegion(mo.mt.Region()) }

// NumUsers returns the current population size.
func (mo *Monitor) NumUsers() int { return mo.mt.NumUsers() }

// Coverage returns how many current users a product at the given point
// would cover.
func (mo *Monitor) Coverage(point []float64) int {
	return mo.mt.CountCovering(geom.Vector(point))
}

// UserArrived registers a new user and updates the region. The returned
// handle identifies the user for a later UserDeparted call.
//
// Handle contract: valid handles are non-negative and unique for the
// Monitor's lifetime — initial users carry handles 0..len(users)-1 in
// input order, and each successful UserArrived returns the next unused
// integer. On error the returned handle is -1, which never collides with
// a valid handle. The weight slice is deep-copied; the caller may reuse
// it afterward.
func (mo *Monitor) UserArrived(u User) (handle int, err error) {
	w := append(make(geom.Vector, 0, len(u.Weights)), u.Weights...)
	h, err := mo.mt.AddUser(topk.UserPref{W: w, K: u.K})
	if err != nil {
		return -1, fmt.Errorf("mir: %w", err)
	}
	return h, nil
}

// UserDeparted retires a user previously registered (initial users carry
// handles 0..len(users)-1 in input order) and updates the region.
func (mo *Monitor) UserDeparted(handle int) error {
	if err := mo.mt.RemoveUser(handle); err != nil {
		return fmt.Errorf("mir: %w", err)
	}
	return nil
}

// NextHandle returns the handle the next successful arrival will receive.
// Handles are assigned sequentially, so the i-th arrival of a batch (or of
// any run of successful UserArrived calls) gets NextHandle()+i; queueing
// layers use this to hand out handles before the event is applied.
func (mo *Monitor) NextHandle() int { return mo.mt.NextHandle() }

// MinBoundaryGap returns the smallest |w·p - t| over the current users:
// how far (in score units) the point sits from the nearest top-k entry
// boundary. With no users there is no boundary and the gap is +Inf (the
// identity of min) — callers comparing against a finite threshold treat
// an empty population as "far from every boundary", never as near one.
func (mo *Monitor) MinBoundaryGap(point []float64) float64 {
	return mo.mt.MinBoundaryGap(geom.Vector(point))
}

// MonitorEvent is one population change for Monitor.ApplyEvents. Use
// Arrival and Departure to construct them.
type MonitorEvent struct {
	// Arrive selects between an arrival (User is read) and a departure
	// (Handle is read).
	Arrive bool
	User   User
	Handle int
}

// Arrival returns an arrival event for u.
func Arrival(u User) MonitorEvent { return MonitorEvent{Arrive: true, User: u} }

// Departure returns a departure event for the given handle.
func Departure(handle int) MonitorEvent { return MonitorEvent{Handle: handle} }

// ApplyEvents applies a batch of arrivals and departures as one
// maintenance pass and returns one handle per event: the assigned handle
// for arrivals (NextHandle()+i for the i-th arrival, exactly as if applied
// one at a time), -1 for departures.
//
// The batch is atomic: every event is validated up front against the
// population state it would see in sequence — a departure may name an
// arrival earlier in the same batch — and any invalid event rejects the
// whole batch with no state change. The resulting region is byte-identical
// to applying the events one at a time through UserArrived/UserDeparted;
// coalescing changes only the work done, never the answer. Weight slices
// are deep-copied; callers may reuse them afterward.
func (mo *Monitor) ApplyEvents(events []MonitorEvent) ([]int, error) {
	evs := make([]core.Event, len(events))
	for i, ev := range events {
		if ev.Arrive {
			w := append(make(geom.Vector, 0, len(ev.User.Weights)), ev.User.Weights...)
			evs[i] = core.Event{Kind: core.EventArrive, User: topk.UserPref{W: w, K: ev.User.K}}
		} else {
			evs[i] = core.Event{Kind: core.EventDepart, Handle: ev.Handle}
		}
	}
	handles, err := mo.mt.ApplyBatch(evs)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return handles, nil
}

// Snapshot is an immutable capture of a Monitor's state. The Monitor
// itself is not safe for concurrent use; a Snapshot is — any number of
// goroutines may query it while the Monitor keeps mutating. The standing
// daemon serves all reads from the latest snapshot and swaps in a fresh
// one after each maintenance pass.
type Snapshot struct {
	s   *core.MaintSnapshot
	reg *Region
}

// Snapshot captures the current region and population for concurrent
// reading. Must not be called concurrently with mutations (it is a
// Monitor method); the returned Snapshot is goroutine-safe.
func (mo *Monitor) Snapshot() *Snapshot {
	s := mo.mt.Snapshot()
	return &Snapshot{s: s, reg: newRegion(s.Region())}
}

// Region returns the snapshot's m-impact region.
func (s *Snapshot) Region() *Region { return s.reg }

// NumUsers returns the population size at capture time.
func (s *Snapshot) NumUsers() int { return s.s.NumUsers() }

// Coverage returns how many capture-time users a product at the given
// point would cover.
func (s *Snapshot) Coverage(point []float64) int {
	return s.s.CountCovering(geom.Vector(point))
}

// MinBoundaryGap mirrors Monitor.MinBoundaryGap at capture time,
// including its empty-population contract (+Inf with no users).
func (s *Snapshot) MinBoundaryGap(point []float64) float64 {
	return s.s.MinBoundaryGap(geom.Vector(point))
}

// MostInfluential returns the n products with the largest reverse top-k
// sets over the capture-time population, coverage descending with ties
// toward the smaller product index.
func (s *Snapshot) MostInfluential(n int) []Influence {
	top := s.s.MostInfluential(n)
	out := make([]Influence, len(top))
	for i, in := range top {
		out[i] = Influence{ProductIndex: in.Product, Coverage: in.Coverage}
	}
	return out
}
