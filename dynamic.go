package mir

import (
	"fmt"

	"mir/internal/core"
	"mir/internal/geom"
	"mir/internal/topk"
)

// Monitor keeps an m-impact region continuously up to date while users
// arrive and depart — the dynamic-population scenario the paper sketches
// as future work (e.g. "users currently online" for real-time
// advertising). Rather than recomputing on every change, it retains the
// computed arrangement and re-examines only the cells whose decision the
// change can affect.
//
// A Monitor is not safe for concurrent use.
type Monitor struct {
	mt  *core.Maintainer
	dim int
}

// NewMonitor computes the initial m-impact region for the product catalog
// and user population and prepares for incremental updates.
//
// The inputs are deep-copied: callers may mutate or reuse their slices
// after NewMonitor returns without corrupting the Monitor.
func NewMonitor(products [][]float64, users []User, m int) (*Monitor, error) {
	return NewMonitorOptions(products, users, m, nil)
}

// NewMonitorOptions is NewMonitor with algorithm options. The computed
// region is identical for every Options.Workers setting — the incremental
// updates run through the same deterministic task-parallel frontier as
// full computations — so the knob trades only latency for cores.
func NewMonitorOptions(products [][]float64, users []User, m int, opts *Options) (*Monitor, error) {
	ps, us := convert(products, users)
	co := opts.toCore()
	inst, err := core.NewInstanceOpts(ps, us, co)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	if err := inst.CheckM(m); err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	mt, err := core.NewMaintainer(inst, m, co)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return &Monitor{mt: mt, dim: inst.Dim}, nil
}

// Region returns the current m-impact region.
func (mo *Monitor) Region() *Region { return newRegion(mo.mt.Region()) }

// NumUsers returns the current population size.
func (mo *Monitor) NumUsers() int { return mo.mt.NumUsers() }

// Coverage returns how many current users a product at the given point
// would cover.
func (mo *Monitor) Coverage(point []float64) int {
	return mo.mt.CountCovering(geom.Vector(point))
}

// UserArrived registers a new user and updates the region. The returned
// handle identifies the user for a later UserDeparted call.
//
// Handle contract: valid handles are non-negative and unique for the
// Monitor's lifetime — initial users carry handles 0..len(users)-1 in
// input order, and each successful UserArrived returns the next unused
// integer. On error the returned handle is -1, which never collides with
// a valid handle. The weight slice is deep-copied; the caller may reuse
// it afterward.
func (mo *Monitor) UserArrived(u User) (handle int, err error) {
	w := append(make(geom.Vector, 0, len(u.Weights)), u.Weights...)
	h, err := mo.mt.AddUser(topk.UserPref{W: w, K: u.K})
	if err != nil {
		return -1, fmt.Errorf("mir: %w", err)
	}
	return h, nil
}

// UserDeparted retires a user previously registered (initial users carry
// handles 0..len(users)-1 in input order) and updates the region.
func (mo *Monitor) UserDeparted(handle int) error {
	if err := mo.mt.RemoveUser(handle); err != nil {
		return fmt.Errorf("mir: %w", err)
	}
	return nil
}
