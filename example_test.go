package mir_test

import (
	"fmt"

	"mir"
)

// The market of the package examples: products rated on (value, service).
func exampleMarket() ([][]float64, []mir.User) {
	products := [][]float64{
		{0.20, 0.80},
		{0.45, 0.70},
		{0.60, 0.60},
		{0.80, 0.40},
		{0.90, 0.15},
	}
	users := []mir.User{
		{Weights: []float64{0.2, 0.8}, K: 1},
		{Weights: []float64{0.5, 0.5}, K: 2},
		{Weights: []float64{0.8, 0.2}, K: 1},
	}
	return products, users
}

func ExampleImpactRegion() {
	products, users := exampleMarket()
	region, err := mir.ImpactRegion(products, users, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("top corner in region:", region.Contains([]float64{1, 1}))
	fmt.Println("origin in region:", region.Contains([]float64{0, 0}))
	// Output:
	// top corner in region: true
	// origin in region: false
}

func ExampleAnalyzer_Coverage() {
	products, users := exampleMarket()
	an, err := mir.NewAnalyzer(products, users, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println(an.Coverage([]float64{1, 1}), "of", an.NumUsers())
	// Output:
	// 3 of 3
}

func ExampleAnalyzer_CostOptimal() {
	products, users := exampleMarket()
	an, err := mir.NewAnalyzer(products, users, nil)
	if err != nil {
		panic(err)
	}
	placement, err := an.CostOptimal(2, mir.L2())
	if err != nil {
		panic(err)
	}
	fmt.Println("covers:", placement.Coverage)
	fmt.Println("cheaper than the perfect product:", placement.Cost < mir.L2().Eval([]float64{1, 1}))
	// Output:
	// covers: 2
	// cheaper than the perfect product: true
}

func ExampleImprove() {
	products, users := exampleMarket()
	up, err := mir.Improve(products, users, 4, 0.5, mir.L2())
	if err != nil {
		panic(err)
	}
	fmt.Println("coverage gained:", up.Coverage >= up.BaseCoverage)
	fmt.Println("within budget:", up.Cost <= 0.5+1e-9)
	// Output:
	// coverage gained: true
	// within budget: true
}

func ExampleMonitor() {
	products, users := exampleMarket()
	mo, err := mir.NewMonitor(products, users, 2)
	if err != nil {
		panic(err)
	}
	// A fourth user comes online.
	handle, err := mo.UserArrived(mir.User{Weights: []float64{0.3, 0.7}, K: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("online:", mo.NumUsers())
	// ... and leaves again.
	if err := mo.UserDeparted(handle); err != nil {
		panic(err)
	}
	fmt.Println("online:", mo.NumUsers())
	// Output:
	// online: 4
	// online: 3
}
