// Package mir computes m-impact regions and solves standing top-k
// influence problems over multi-attribute product sets, implementing
//
//	Bo Tang, Kyriakos Mouratidis, Mingji Han.
//	"On m-Impact Regions and Standing Top-k Influence Problems."
//	SIGMOD 2021.
//
// # Model
//
// Products have d attributes in [0,1] (larger is better). A user is a
// preference vector w on the unit simplex plus a personal result size k;
// the suitability of product p for the user is the weighted sum w·p, and
// the user "sees" the k highest-scoring products. A product covers a user
// when it belongs to her top-k result.
//
// # Queries
//
//   - ImpactRegion (mIR): the maximal region of product space where any
//     existing or hypothetical product covers at least m users.
//   - CostOptimal (CO): the cheapest position for a new product that
//     covers at least m users, for a convex cost model.
//   - Improve (IS): the upgrade of an existing product that maximizes
//     coverage within an upgrade budget.
//   - BudgetedCostOptimal and CheapestUpgrade: the two crossbreeds
//     (maximum coverage under a creation budget; cheapest upgrade
//     reaching a coverage target).
//
// All answers are exact (up to floating-point tolerance), computed by the
// paper's advanced algorithm (AA) over a halfspace-arrangement cell tree.
//
// # Usage
//
// For one-off queries use the package-level functions. For exploratory
// analysis — many queries over the same catalog and population, varying m
// or the cost model — build an Analyzer once; it caches the all-top-k
// preprocessing:
//
//	an, err := mir.NewAnalyzer(products, users)
//	region, err := an.ImpactRegion(m)
//	placement, err := an.CostOptimal(m, mir.L2())
package mir

import (
	"fmt"

	"mir/internal/core"
	"mir/internal/geom"
)

// User is a member of the population: a preference weight per product
// attribute (weights should be non-negative and sum to 1) and the size k
// of the top-k result the user considers.
type User struct {
	Weights []float64
	K       int
}

// Options tunes the algorithms. The zero value enables every optimization
// from the paper, uses every core, and is the right choice outside of
// benchmarking.
type Options struct {
	// Workers caps the engine's parallel execution layer: the all-top-k
	// preprocessing, instance construction, and AA's concurrent batch
	// classification of pending user groups against arrangement cells.
	// 0 (the default) uses every core (runtime.GOMAXPROCS); 1 reproduces
	// the original single-threaded execution exactly (ablations and the
	// EXPERIMENTS.md numbers were measured that way). Regions, placements,
	// and coverage counts are identical for every setting.
	Workers int
	// Shards pre-splits product space into 2^j disjoint axis-aligned
	// boxes (the largest power of two <= Shards) and runs a fully
	// independent impact-region build per box: its own arrangement,
	// scheduler, and stats, with the box's halfspace set prescreened by
	// banded corner bounds so a shard only classifies halfspaces whose
	// boundary can intersect its box. Shard regions concatenate in
	// shard-ID order. 0 or 1 (the default) selects the single-tree build.
	// Sharding applies to one-shot region computation (ImpactRegion and
	// the queries built on it); Monitor maintenance always builds
	// single-tree.
	//
	// For a fixed shard count the result is byte-identical for every
	// Workers setting, and Shards <= 1 is byte-identical to the unsharded
	// build. Across shard counts the region covers exactly the same point
	// set, but its cell decomposition differs (shard boundaries are
	// midplane cuts the unsharded arrangement never makes).
	Shards int
	// DisableSharding forces the single-tree build regardless of Shards —
	// the escape hatch when Shards is set globally but one run needs the
	// historical path.
	DisableSharding bool
	// Strategy selects which pending user group is opened first when a
	// cell remains undecided; see the Strategy constants.
	Strategy Strategy
	// DisableFastTests turns off the bounding-box filter-and-refine tests.
	DisableFastTests bool
	// DisableInnerGroupProcessing classifies group members one by one.
	DisableInnerGroupProcessing bool
	// Disable2DSpecialization forces the generic insertion path for d = 2.
	Disable2DSpecialization bool
	// DisableGrouping treats every user as a singleton group.
	DisableGrouping bool
	// DisableRedundancyPruning turns off the arrangement's split-time
	// redundancy elimination of cell H-representations. The computed region
	// is identical either way; the switch exists for benchmarking.
	DisableRedundancyPruning bool
	// DisableWarmStart turns off warm-started LP solving: every feasibility
	// and redundancy solve cold-starts instead of re-entering the parent
	// cell's simplex basis. Warm starts change only where the simplex search
	// begins, never what it answers — regions and all stats except the pivot
	// counters are identical either way; the switch exists for benchmarking.
	DisableWarmStart bool
	// DisableKernels turns off the blocked numeric kernels
	// (internal/kern) everywhere the engine threads them: the pivot
	// eliminations inside every LP solve, the layered index's batched
	// scoring and bound maintenance, and the shard prescreen's band
	// construction. The scalar paths selected instead are the verbatim
	// historical loops, and the kernels reproduce them bit for bit —
	// so unlike every other Disable* switch this one changes NOTHING
	// observable: regions, placements, and every stats counter (pivot
	// counts included) are byte-identical either way; only wall time
	// moves. The switch exists for benchmarking and the differential
	// property tests.
	DisableKernels bool
	// DisableTopKIndex turns off the layered all-top-k product index: the
	// preprocessing falls back to the skyband-pruned full scan and a
	// Monitor's UserArrived recomputes thresholds by scanning every
	// product. The index changes only which products get scored, never
	// the selection — every user's top-k-th product (identity and score)
	// is byte-identical either way; the switch exists for benchmarking.
	DisableTopKIndex bool
	// DisableRouting turns off MBB-routed incremental maintenance on the
	// dynamic path (Monitor): every arrival/departure falls back to a full
	// sweep over the arrangement's leaves instead of a pruned descent that
	// skips subtrees the event provably cannot affect. Routing changes only
	// when per-leaf bookkeeping is brought current, never what any
	// re-verification computes — maintained regions are byte-identical
	// either way for every worker count; the switch exists for
	// benchmarking.
	DisableRouting bool
}

// Strategy selects AA's group-insertion order.
type Strategy int

const (
	// LargestFirst is the paper's strategy and the default.
	LargestFirst Strategy = iota
	// SmallestFirst exists for ablation studies.
	SmallestFirst
	// RoundRobin exists for ablation studies.
	RoundRobin
)

func (o *Options) toCore() core.Options {
	if o == nil {
		return core.Options{}
	}
	return core.Options{
		Workers:           o.Workers,
		Shards:            o.Shards,
		DisableSharding:   o.DisableSharding,
		GroupChoice:       core.GroupChoice(o.Strategy),
		DisableFastTest:   o.DisableFastTests,
		DisableInnerGroup: o.DisableInnerGroupProcessing,
		Disable2D:         o.Disable2DSpecialization,
		DisableGrouping:   o.DisableGrouping,
		DisablePruning:    o.DisableRedundancyPruning,
		DisableWarmStart:  o.DisableWarmStart,
		DisableKernels:    o.DisableKernels,
		DisableTopKIndex:  o.DisableTopKIndex,
		DisableRouting:    o.DisableRouting,
	}
}

// Analyzer holds a preprocessed product catalog and user population,
// ready to answer impact queries. Preprocessing computes every user's
// top-k-th product (the all-top-k step) once; individual queries reuse
// it.
//
// An Analyzer is safe for concurrent use: the preprocessed instance is
// read-only after construction, every query builds its own arrangement
// cell tree, and the shared LP scratch state is pooled per goroutine.
// Queries may themselves run multi-core (see Options.Workers).
type Analyzer struct {
	inst *core.Instance
	opts core.Options
}

// NewAnalyzer validates the inputs and runs the all-top-k preprocessing.
// Products are rows of attribute values in [0,1]; users supply simplex
// weights of the same dimensionality and k between 1 and len(products).
//
// The inputs are deep-copied: callers may mutate or reuse their slices
// after NewAnalyzer returns without corrupting the Analyzer.
func NewAnalyzer(products [][]float64, users []User, opts *Options) (*Analyzer, error) {
	ps, us := convert(products, users)
	co := opts.toCore()
	inst, err := core.NewInstanceOpts(ps, us, co)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return &Analyzer{inst: inst, opts: co}, nil
}

// NumProducts returns the catalog size.
func (a *Analyzer) NumProducts() int { return len(a.inst.Products) }

// NumUsers returns the population size.
func (a *Analyzer) NumUsers() int { return len(a.inst.Users) }

// Dim returns the number of product attributes.
func (a *Analyzer) Dim() int { return a.inst.Dim }

// Coverage returns how many users a (hypothetical) product at the given
// attribute vector would cover.
func (a *Analyzer) Coverage(point []float64) int {
	return a.inst.CountCovering(geom.Vector(point))
}

// Groups returns grouping statistics: the number of distinct top-k-th
// products across the population and the average users per group.
func (a *Analyzer) Groups() (num int, avgSize float64) {
	gs := a.inst.GroupStats()
	return gs.NumGroups, gs.AvgSize
}

// ImpactRegion computes the m-impact region: the maximal part of product
// space where any product covers at least m users.
func (a *Analyzer) ImpactRegion(m int) (*Region, error) {
	reg, err := core.AA(a.inst, m, a.opts)
	if err != nil {
		return nil, fmt.Errorf("mir: %w", err)
	}
	return newRegion(reg), nil
}

// ImpactRegion is the one-shot form of Analyzer.ImpactRegion.
func ImpactRegion(products [][]float64, users []User, m int) (*Region, error) {
	a, err := NewAnalyzer(products, users, nil)
	if err != nil {
		return nil, err
	}
	return a.ImpactRegion(m)
}
