GO ?= go

.PHONY: all vet build test race race-hammer bench-smoke bench bench-json bench-check ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Hammer the concurrency surface under the race detector: the frontier
# scheduler, the steal deque, and every cross-worker-count determinism
# property. `race` already runs these once; the hammer re-runs just them
# with -count=3 so scheduling-dependent interleavings get more chances to
# bite.
race-hammer:
	$(GO) test -race -count=3 -run 'Parallel|Steal|Concurrent|Frontier' ./...

# One iteration of the sequential-vs-parallel benchmark pair, as a smoke
# test that the instrumented paths still run (timings are not meaningful at
# -benchtime=1x).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAllTopK|BenchmarkAAParallel' -benchtime 1x .

# Full in-repo Go benchmarks with allocation reporting (the numbers quoted
# in EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Machine-readable AA benchmark matrix (wall time, allocs/op, LP-call,
# simplex-pivot, and scheduler counters per dataset, pruning setting,
# warm-start setting, and worker count). CI regenerates and uploads this;
# the committed copy is the reference point for regressions.
bench-json:
	$(GO) run ./cmd/mirbench -json BENCH_AA.json

# Regenerate the matrix to a scratch path and gate it against the
# committed BENCH_AA.json: fails if any workers=1 row allocates more than
# 10% over the reference, or runs more than 10% more simplex pivots/op
# (both counters are deterministic at one worker, so those margins are
# pure headroom; the pivot gate catches warm starts silently going cold).
# Wall times never gate.
bench-check:
	$(GO) run ./cmd/mirbench -json BENCH_AA.ci.json -baseline BENCH_AA.json

ci: vet build race race-hammer bench-smoke
