GO ?= go

.PHONY: all vet build test race bench-smoke ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the sequential-vs-parallel benchmark pair, as a smoke
# test that the instrumented paths still run (timings are not meaningful at
# -benchtime=1x).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAllTopK|BenchmarkAAParallel' -benchtime 1x .

ci: vet build race bench-smoke
