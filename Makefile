GO ?= go

.PHONY: all vet build test race race-hammer mird-smoke dist-smoke bench-smoke fuzz-smoke bench bench-json bench-topk bench-dyn bench-shard bench-dist bench-check ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# vet is part of the tier-1 gate: `make test` never passes on code vet
# would reject. -shuffle=on randomizes test order within each package so
# accidental test-order coupling (shared globals, leaked state) surfaces
# in CI instead of lying dormant.
test: vet
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race ./...

# Hammer the concurrency surface under the race detector: the frontier
# scheduler, the steal deque, and every cross-worker-count determinism
# property. `race` already runs these once; the hammer re-runs just them
# with -count=3 so scheduling-dependent interleavings get more chances to
# bite.
race-hammer:
	$(GO) test -race -count=3 -run 'Parallel|Steal|Concurrent|Frontier' ./...

# Standing-daemon smoke under the race detector: concurrent reads during
# write bursts with 429-retry, coalesced-vs-sequential region identity,
# ingest validation/backpressure status codes, and the SSE watch path.
mird-smoke:
	$(GO) test -race -count=1 -run 'MirdSmoke' ./cmd/mird

# Multi-process executor smoke under the race detector: the test binary
# re-execs itself as shard workers (so the worker is always built from
# this tree), covering the small shard matrix (2 and 4 shards), an
# injected worker crash retried to a byte-identical region, and the
# spawn-failure fallback to in-process execution.
dist-smoke:
	$(GO) test -race -count=1 -run 'DistSmoke' ./internal/dist

# One iteration of the sequential-vs-parallel benchmark pair plus the
# numeric-kernel suite, as a smoke test that the instrumented paths still
# run (timings are not meaningful at -benchtime=1x).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAllTopK|BenchmarkAAParallel' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkKernels' -benchtime 1x -benchmem ./internal/kern

# Differential fuzzing of the numeric kernels against their verbatim
# scalar references (10s per fuzzer; the committed corpora under
# testdata/fuzz seed the tricky float shapes — signed zeros, Inf, NaN,
# subnormals). `go test -fuzz` accepts one fuzz target per invocation, so
# each fuzzer gets its own anchored run.
fuzz-smoke:
	$(GO) test -fuzz '^FuzzKernelDotRows$$' -fuzztime 10s ./internal/kern
	$(GO) test -fuzz '^FuzzKernelRowMaxMin$$' -fuzztime 10s ./internal/kern
	$(GO) test -fuzz '^FuzzKernelEliminate$$' -fuzztime 10s ./internal/kern
	$(GO) test -fuzz '^FuzzKernelPivotParity$$' -fuzztime 10s ./internal/lp

# Full in-repo Go benchmarks with allocation reporting (the numbers quoted
# in EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Machine-readable AA benchmark matrix (wall time, allocs/op, LP-call,
# simplex-pivot, and scheduler counters per dataset, pruning setting,
# warm-start setting, and worker count). CI regenerates and uploads this;
# the committed copy is the reference point for regressions.
bench-json:
	$(GO) run ./cmd/mirbench -json BENCH_AA.json

# Machine-readable preprocessing benchmark matrix for the indexed
# all-top-k engine (index build time, indexed vs full-skyband wall time,
# and the scanned-products / layer-prune counters per dataset,
# dimensionality, and user cardinality up to 10^6). The committed copy is
# the reference point for scan-volume regressions.
bench-topk:
	$(GO) run ./cmd/mirbench -json-topk BENCH_TOPK.json

# Machine-readable dynamic-maintenance matrix for the standing path
# (sustained events/sec and touched-leaves/event under session streams,
# per dataset, user tier, worker count, and routing mode). The committed
# copy is the reference point for locality regressions.
bench-dyn:
	$(GO) run ./cmd/mirbench -json-dyn BENCH_DYN.json

# Regenerate every matrix to scratch paths and gate them against the
# committed references (the AA matrix, shard axis included, runs through
# the bench-shard prerequisite): fails if any workers=1 AA row allocates more than
# 10% over BENCH_AA.json or runs more than 10% more simplex pivots/op
# (both counters are deterministic at one worker, so those margins are
# pure headroom; the pivot gate catches warm starts silently going cold),
# or if any indexed all-top-k cell scans more than 10% more products/user
# than BENCH_TOPK.json, or if the aggregate scan reduction over the
# full-skyband path drops below 5x, or if any dynamic-maintenance row
# touches more than 10% more leaves/event than BENCH_DYN.json, loses more
# than 10% events/sec at workers=1, or lets the routed/sweep locality
# ratio on the largest user tier drop below 5x. Wall times never gate,
# with the one deliberate exception of the standing events/sec floor —
# that number is the tentpole's contract. (touched-leaves/event is
# deterministic per configuration, so its margin is pure headroom.)
# Shard-scaling axis of the AA matrix: regenerates BENCH_AA.ci.json —
# which includes the Shards ∈ {1,2,4,8} rows at Workers=8 — and gates it.
# The shard gates (checkShardScaling) run fresh-vs-fresh on every -json
# invocation: prescreen must absorb a nonzero halfspace fraction on every
# multi-shard row, the Shards=8 decomposition must keep the largest
# shard's cell share low enough to admit a >=3x parallel speedup
# (total/max shard cells — deterministic, so it gates on any machine),
# each shard's mean allocation footprint must stay under half the
# single-tree build's, and on hosts with >=8 CPUs the >=3x wall-clock
# speedup at Shards=8/Workers=8 vs Shards=1 is enforced directly (on
# smaller hosts there is no parallelism to measure, so wall never gates —
# the balance bound is the machine-independent form of the same
# contract). The AA run also gates kernel identity fresh-vs-fresh: the
# scalar-kernels ablation row's stats (pivots included) must equal its
# kernels-on twin exactly. The TOPK run gates the kernel scan-wall sweep:
# scoring the full product matrix through the blocked kernels must beat
# the historical scalar loops by >=2x in aggregate (both sides measured
# in the same process, so machine speed divides out).
bench-shard:
	$(GO) run ./cmd/mirbench -json BENCH_AA.ci.json -baseline BENCH_AA.json

# Executor axis of the AA matrix on its own: in-process vs multi-process
# twins at Shards ∈ {2,4}, gated fresh-vs-fresh by checkDistExecutor —
# algorithmic stats byte-identical across executors, every shard
# dispatched to a worker process, pool wall time within a bounded factor
# of the in-process twin, and per-worker peak RSS under the ceiling.
bench-dist:
	$(GO) run ./cmd/mirbench -json-dist BENCH_DIST.json

bench-check: bench-shard bench-dist
	$(GO) run ./cmd/mirbench -json-topk BENCH_TOPK.ci.json -baseline-topk BENCH_TOPK.json
	$(GO) run ./cmd/mirbench -json-dyn BENCH_DYN.ci.json -baseline-dyn BENCH_DYN.json

ci: vet build race race-hammer mird-smoke dist-smoke bench-smoke fuzz-smoke
