GO ?= go

.PHONY: all vet build test race bench-smoke bench bench-json ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of the sequential-vs-parallel benchmark pair, as a smoke
# test that the instrumented paths still run (timings are not meaningful at
# -benchtime=1x).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkAllTopK|BenchmarkAAParallel' -benchtime 1x .

# Full in-repo Go benchmarks with allocation reporting (the numbers quoted
# in EXPERIMENTS.md).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# Machine-readable AA benchmark matrix (wall time, allocs/op, LP-call
# counters per dataset and pruning setting). CI regenerates and uploads
# this; the committed copy is the reference point for regressions.
bench-json:
	$(GO) run ./cmd/mirbench -json BENCH_AA.json

ci: vet build race bench-smoke
