package mir

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// deepCopyFixture clones a fixture so one copy can be mutated while the
// other stays pristine.
func deepCopyFixture(ps [][]float64, us []User) ([][]float64, []User) {
	cps := make([][]float64, len(ps))
	for i, p := range ps {
		cps[i] = append([]float64(nil), p...)
	}
	cus := make([]User, len(us))
	for i, u := range us {
		cus[i] = User{Weights: append([]float64(nil), u.Weights...), K: u.K}
	}
	return cps, cus
}

// TestNewAnalyzerCopiesInputs is the regression test for the API aliasing
// bug: NewAnalyzer used to retain the caller's product rows and weight
// slices, so mutating them after construction silently corrupted every
// later query.
func TestNewAnalyzerCopiesInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ps, us := fixture(rng, 250, 18, 3, 5)
	pristinePs, pristineUs := deepCopyFixture(ps, us)

	an, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Trash the caller-owned slices after construction.
	for i := range ps {
		for j := range ps[i] {
			ps[i][j] = 99.9
		}
	}
	for i := range us {
		for j := range us[i].Weights {
			us[i].Weights[j] = -7
		}
	}

	ref, err := NewAnalyzer(pristinePs, pristineUs, nil)
	if err != nil {
		t.Fatal(err)
	}
	const m = 9
	got, err := an.ImpactRegion(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.ImpactRegion(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cells()) != len(want.Cells()) {
		t.Fatalf("region corrupted by input mutation: %d cells, want %d",
			len(got.Cells()), len(want.Cells()))
	}
	for i := 0; i < 200; i++ {
		p := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		if an.Coverage(p) != ref.Coverage(p) {
			t.Fatalf("coverage corrupted by input mutation at %v: %d vs %d",
				p, an.Coverage(p), ref.Coverage(p))
		}
	}
}

// TestNewMonitorCopiesInputs is the same regression for the dynamic API.
func TestNewMonitorCopiesInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	ps, us := fixture(rng, 150, 12, 2, 4)
	pristinePs, pristineUs := deepCopyFixture(ps, us)

	mo, err := NewMonitor(ps, us, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		for j := range ps[i] {
			ps[i][j] = 42
		}
	}
	for i := range us {
		us[i].Weights[0] = 1e9
	}
	ref, err := NewMonitor(pristinePs, pristineUs, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		if mo.Coverage(p) != ref.Coverage(p) {
			t.Fatalf("monitor coverage corrupted by input mutation at %v", p)
		}
	}

	// UserArrived must also copy the weights it is handed.
	w := []float64{0.5, 0.5}
	h, err := mo.UserArrived(User{Weights: w, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if h < 0 {
		t.Fatalf("valid arrival returned handle %d", h)
	}
	w[0], w[1] = 1e9, -1e9
	if _, err := ref.UserArrived(User{Weights: []float64{0.5, 0.5}, K: 3}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p := []float64{rng.Float64(), rng.Float64()}
		if mo.Coverage(p) != ref.Coverage(p) {
			t.Fatalf("arrival weights aliased: coverage differs at %v", p)
		}
	}
}

// TestUserArrivedErrorHandle pins the handle contract: the error path
// returns -1, never a value colliding with the first initial user's
// handle 0.
func TestUserArrivedErrorHandle(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	ps, us := fixture(rng, 100, 8, 2, 3)
	mo, err := NewMonitor(ps, us, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong dimensionality: must fail with handle -1.
	h, err := mo.UserArrived(User{Weights: []float64{0.2, 0.3, 0.5}, K: 3})
	if err == nil {
		t.Fatal("expected error for wrong-dimension user")
	}
	if h != -1 {
		t.Fatalf("error-path handle = %d, want -1", h)
	}
	// Bad k: same contract.
	h, err = mo.UserArrived(User{Weights: []float64{0.5, 0.5}, K: 0})
	if err == nil {
		t.Fatal("expected error for k=0")
	}
	if h != -1 {
		t.Fatalf("error-path handle = %d, want -1", h)
	}
	// The monitor must still be usable, and the next valid handle is the
	// next unused non-negative integer (8 initial users -> handle 8).
	h, err = mo.UserArrived(User{Weights: []float64{0.4, 0.6}, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h != 8 {
		t.Fatalf("first valid arrival handle = %d, want 8", h)
	}
}

// TestAnalyzerConcurrentQueries exercises the documented guarantee that
// Analyzer methods are safe to call from multiple goroutines: every query
// builds its own cell tree over the shared read-only instance. Run with
// -race (CI does) to surface any shared mutable state.
func TestAnalyzerConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ps, us := fixture(rng, 300, 16, 3, 6)
	an, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	const m = 8
	want, err := an.ImpactRegion(m)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	cellCounts := make([]int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reg, err := an.ImpactRegion(m)
			if err != nil {
				errs <- err
				return
			}
			cellCounts[g] = len(reg.Cells())
			if _, err := an.CostOptimalFast(m, L2()); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g, n := range cellCounts {
		if n != len(want.Cells()) {
			t.Fatalf("goroutine %d: %d cells, want %d", g, n, len(want.Cells()))
		}
	}
}

// TestConcurrentQueriesSharedPools stresses the pooled LP scratch layers
// (workspace pool, feasibility scratch, hull scratch, axis-normal cache)
// through the public API: goroutines with different worker counts, m
// values, and pruning settings run against one shared Analyzer while
// others run on their own analyzers. Under -race this surfaces any
// scratch buffer escaping its borrower; without -race it still checks
// every goroutine reproduces the sequential answer exactly.
func TestConcurrentQueriesSharedPools(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ps, us := fixture(rng, 300, 16, 3, 6)
	shared, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		t.Fatal(err)
	}
	ms := []int{1, 4, 8, 12}
	want := make(map[int]int)
	for _, m := range ms {
		reg, err := shared.ImpactRegion(m)
		if err != nil {
			t.Fatal(err)
		}
		want[m] = len(reg.Cells())
	}

	variants := []*Options{
		nil,
		{Workers: 1},
		{Workers: 4},
		{Workers: 2, DisableRedundancyPruning: true},
		{Workers: 1, DisableRedundancyPruning: true},
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			an := shared
			if g%3 == 0 {
				// A third of the goroutines construct their own analyzer
				// concurrently (construction uses the same pools).
				var err error
				an, err = NewAnalyzer(ps, us, variants[g%len(variants)])
				if err != nil {
					errs <- err
					return
				}
			}
			for r := 0; r < 3; r++ {
				m := ms[(g+r)%len(ms)]
				reg, err := an.ImpactRegion(m)
				if err != nil {
					errs <- err
					return
				}
				if len(reg.Cells()) != want[m] {
					errs <- fmt.Errorf("goroutine %d m=%d: %d cells, want %d",
						g, m, len(reg.Cells()), want[m])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestWorkersOptionPlumbed checks the Workers knob reaches the engine and
// that sequential and parallel configurations agree on the answer.
func TestWorkersOptionPlumbed(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	ps, us := fixture(rng, 300, 16, 3, 6)
	seq, err := NewAnalyzer(ps, us, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := NewAnalyzer(ps, us, &Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{1, 5, 8} {
		a, err := seq.ImpactRegion(m)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.ImpactRegion(m)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Cells()) != len(b.Cells()) {
			t.Fatalf("m=%d: sequential %d cells, parallel %d", m, len(a.Cells()), len(b.Cells()))
		}
	}
}
