package mir

// One testing.B benchmark per table/figure of the paper's evaluation
// (Section 6), at a reduced scale so `go test -bench=.` completes in
// minutes. The full series — with the paper's sweeps and the scaled
// cardinalities — are produced by `go run ./cmd/mirbench -fig <id>`;
// EXPERIMENTS.md records the measured trends against the paper's.

import (
	"fmt"
	"runtime"
	"testing"

	"mir/internal/geom"
	"mir/internal/topk"
)

// benchSizes keeps every benchmark on the same small footing.
const (
	benchP = 5000
	benchU = 80
	benchD = 3
	benchK = 10
)

func benchAnalyzer(b *testing.B, pd ProductDist, ud UserDist, nP, nU, d, k int, opts *Options) *Analyzer {
	b.Helper()
	ps := SynthProducts(pd, nP, d, 1)
	us := SynthUsers(ud, nU, d, k, 2)
	an, err := NewAnalyzer(ps, us, opts)
	if err != nil {
		b.Fatal(err)
	}
	return an
}

func runRegion(b *testing.B, an *Analyzer, m int) {
	b.Helper()
	b.ResetTimer()
	var pivots int64
	for i := 0; i < b.N; i++ {
		reg, err := an.ImpactRegion(m)
		if err != nil {
			b.Fatal(err)
		}
		pivots += reg.Stats().Pivots
	}
	// Simplex pivots are the deterministic cost metric behind the wall
	// clock: they expose the warm-start savings independent of machine
	// noise (compare against a -test.benchtime run with DisableWarmStart).
	b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
}

// BenchmarkFig7TripAdvisorCaseStudy: the 2-D TA-like case study.
func BenchmarkFig7TripAdvisorCaseStudy(b *testing.B) {
	ps, us, err := TripAdvisorLikePair(300, 400, benchK, 1, 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	an, err := NewAnalyzer(ps, us, nil)
	if err != nil {
		b.Fatal(err)
	}
	runRegion(b, an, 200)
}

// BenchmarkFig8AAvsBSL: AA and BSL on the TA-like workload (Figure 8).
func BenchmarkFig8AAvsBSL(b *testing.B) {
	ps, us, err := TripAdvisorLikePair(300, 60, benchK, 1, 2, 3)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []string{"AA", "BSL"} {
		b.Run(algo, func(b *testing.B) {
			opts := &Options{}
			if algo == "BSL" {
				// BSL is approximated by AA with every optimization off:
				// one-by-one insertion without grouping or batch tests.
				opts = &Options{
					DisableGrouping: true, DisableInnerGroupProcessing: true,
					Disable2DSpecialization: true,
				}
			}
			an, err := NewAnalyzer(ps, us, opts)
			if err != nil {
				b.Fatal(err)
			}
			runRegion(b, an, 30)
		})
	}
}

// BenchmarkFig9RealSets: the HOTEL/HOUSE/NBA stand-ins (Figure 9).
func BenchmarkFig9RealSets(b *testing.B) {
	for _, cfg := range []struct {
		name string
		d    int
		pd   ProductDist
	}{
		{"HOTEL-d4", 4, Correlated},
		{"HOUSE-d6", 6, Independent},
		{"NBA-d8", 8, Correlated},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			nU := benchU
			if cfg.d >= 6 {
				nU = 16 // higher d: the arrangement grows steeply
			}
			an := benchAnalyzer(b, cfg.pd, Clustered, benchP, nU, cfg.d, benchK, nil)
			runRegion(b, an, nU/2)
		})
	}
}

// BenchmarkFig10aProductDistribution: IND/COR/ANTI (Figure 10a).
func BenchmarkFig10aProductDistribution(b *testing.B) {
	for _, cfg := range []struct {
		name string
		pd   ProductDist
	}{{"IND", Independent}, {"COR", Correlated}, {"ANTI", AntiCorrelated}} {
		b.Run(cfg.name, func(b *testing.B) {
			an := benchAnalyzer(b, cfg.pd, Clustered, benchP, benchU, benchD, benchK, nil)
			runRegion(b, an, benchU/2)
		})
	}
}

// BenchmarkFig10bUserDistribution: CL vs UN users (Figure 10b).
func BenchmarkFig10bUserDistribution(b *testing.B) {
	for _, cfg := range []struct {
		name string
		ud   UserDist
	}{{"CL", Clustered}, {"UN", Uniform}} {
		b.Run(cfg.name, func(b *testing.B) {
			an := benchAnalyzer(b, Independent, cfg.ud, benchP, benchU, benchD, benchK, nil)
			runRegion(b, an, benchU/2)
		})
	}
}

// BenchmarkFig11VaryK (Figures 11a/11b).
func BenchmarkFig11VaryK(b *testing.B) {
	for _, k := range []int{1, 10, 40} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			an := benchAnalyzer(b, Independent, Clustered, benchP, benchU, benchD, k, nil)
			runRegion(b, an, benchU/2)
		})
	}
}

// BenchmarkFig12VaryD (Figures 12a/12b).
func BenchmarkFig12VaryD(b *testing.B) {
	for _, d := range []int{2, 3, 4} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			an := benchAnalyzer(b, Independent, Clustered, benchP, benchU/2, d, benchK, nil)
			runRegion(b, an, benchU/4)
		})
	}
}

// BenchmarkFig13Cardinalities (Figures 13a/13b).
func BenchmarkFig13Cardinalities(b *testing.B) {
	for _, nP := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("P=%d", nP), func(b *testing.B) {
			an := benchAnalyzer(b, Independent, Clustered, nP, benchU/2, benchD, benchK, nil)
			runRegion(b, an, benchU/4)
		})
	}
	for _, nU := range []int{40, 120} {
		b.Run(fmt.Sprintf("U=%d", nU), func(b *testing.B) {
			an := benchAnalyzer(b, Independent, Clustered, benchP, nU, benchD, benchK, nil)
			runRegion(b, an, nU/2)
		})
	}
}

// BenchmarkFig14CostOptimization: the CO adaptation (Figure 14; the YZZL
// baseline comparison runs in mirbench).
func BenchmarkFig14CostOptimization(b *testing.B) {
	an := benchAnalyzer(b, Independent, Clustered, benchP, benchU, benchD, 1, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.CostOptimal(benchU/4, L2()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15aImprovement: the IS adaptation (Figure 15a).
func BenchmarkFig15aImprovement(b *testing.B) {
	ps := SynthProducts(Independent, 2000, benchD, 1)
	us := SynthUsers(Clustered, 40, benchD, benchK, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Improve(ps, us, 7, 0.3, L2()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig15bBudgetedCO (Figure 15b).
func BenchmarkFig15bBudgetedCO(b *testing.B) {
	an := benchAnalyzer(b, Independent, Clustered, 2000, 40, benchD, benchK, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := an.BudgetedCostOptimal(1.0, L2()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig16Optimizations: each optimization on vs off (Figure 16).
func BenchmarkFig16Optimizations(b *testing.B) {
	variants := []struct {
		name string
		d    int
		opts *Options
	}{
		{"2d-special-on", 2, &Options{}},
		{"2d-special-off", 2, &Options{Disable2DSpecialization: true}},
		{"inner-group-on", 3, &Options{}},
		{"inner-group-off", 3, &Options{DisableInnerGroupProcessing: true}},
		{"fast-test-on", 3, &Options{}},
		{"fast-test-off", 3, &Options{DisableFastTests: true}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			an := benchAnalyzer(b, Independent, Clustered, benchP, benchU, v.d, benchK, v.opts)
			runRegion(b, an, benchU/2)
		})
	}
}

// BenchmarkFig17aGroupStrategy (Figure 17a).
func BenchmarkFig17aGroupStrategy(b *testing.B) {
	for _, v := range []struct {
		name string
		s    Strategy
	}{{"largest", LargestFirst}, {"smallest", SmallestFirst}, {"round-robin", RoundRobin}} {
		b.Run(v.name, func(b *testing.B) {
			an := benchAnalyzer(b, Independent, Clustered, benchP, benchU, benchD, benchK, &Options{Strategy: v.s})
			runRegion(b, an, benchU/2)
		})
	}
}

// BenchmarkFig17bDiverseK (Figure 17b): per-user k values.
func BenchmarkFig17bDiverseK(b *testing.B) {
	ps := SynthProducts(Independent, benchP, benchD, 1)
	for _, v := range []struct {
		name string
		mk   func() []User
	}{
		{"fixed", func() []User { return SynthUsers(Clustered, benchU, benchD, benchK, 2) }},
		{"mixed", func() []User {
			us := SynthUsers(Clustered, benchU, benchD, benchK, 2)
			for i := range us {
				us[i].K = 1 + (i*7)%19 // deterministic spread over [1, 20)
			}
			return us
		}},
	} {
		b.Run(v.name, func(b *testing.B) {
			an, err := NewAnalyzer(ps, v.mk(), nil)
			if err != nil {
				b.Fatal(err)
			}
			runRegion(b, an, benchU/2)
		})
	}
}

// BenchmarkAllTopK compares the sequential and parallel all-top-k fan-out
// (Section 5.1 preprocessing) on the IND workload. The sub-benchmark names
// report the worker count; divide workers=1 time by workers=N time for the
// speedup.
func BenchmarkAllTopK(b *testing.B) {
	ps := SynthProducts(Independent, 50000, 4, 1)
	raw := SynthUsers(Clustered, 2000, 4, benchK, 2)
	gps := make([]geom.Vector, len(ps))
	for i, p := range ps {
		gps[i] = geom.Vector(p)
	}
	users := make([]topk.UserPref, len(raw))
	for i, u := range raw {
		users[i] = topk.UserPref{W: geom.Vector(u.Weights), K: u.K}
	}
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				topk.AllTopKWorkers(gps, users, w)
			}
		})
	}
}

// BenchmarkAAParallel sweeps a full ImpactRegion query across worker
// counts on the IND workload: 1 worker runs the historical sequential
// best-first loop, >1 workers run the task-parallel frontier scheduler.
// The answers are byte-identical at every count (see
// TestFrontierParallelByteIdentical); only the wall clock differs. The
// speedup curve is only meaningful up to runtime.NumCPU() — on fewer
// cores the extra workers just take turns.
func BenchmarkAAParallel(b *testing.B) {
	workerCounts := []int{1, 2, 4, 8}
	if max := runtime.GOMAXPROCS(0); max != 1 && max != 2 && max != 4 && max != 8 {
		workerCounts = append(workerCounts, max)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			an := benchAnalyzer(b, Independent, Clustered, benchP, benchU, benchD, benchK,
				&Options{Workers: w})
			runRegion(b, an, benchU/2)
		})
	}
}

// BenchmarkPreprocessing: the all-top-k step (grouping input; Section 5.1).
func BenchmarkPreprocessing(b *testing.B) {
	ps := SynthProducts(Independent, 100000, 4, 1)
	us := SynthUsers(Clustered, 1000, 4, benchK, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewAnalyzer(ps, us, nil); err != nil {
			b.Fatal(err)
		}
	}
}
